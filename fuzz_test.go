package hcpath

// FuzzEnumerate is the differential oracle harness the early-exit paths
// are proven against: random small graphs and query batches, run
// through all four batch engines (sequential and parallel) and both KSP
// baselines, are checked against internal/oracle's unpruned DFS — in
// full, under a per-query Limit, and under cancellation. The invariants
// are exactly the partial-result contract: a full run matches the
// oracle's path set; a limited run emits min(limit, total) distinct
// oracle paths and reports truncation iff paths were dropped; a
// cancelled run emits only genuine oracle paths, never a duplicate, and
// returns the context's error.

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"testing"
	"time"

	"repro/internal/batchenum"
	"repro/internal/graph"
	"repro/internal/hcindex"
	"repro/internal/ksp"
	"repro/internal/oracle"
	"repro/internal/query"
)

// noDeadline marks runs stoppable only by ctx or limit.
var noDeadline time.Time

// overridePlanner drives per-group engine overrides from the fuzz
// input: the engine of a sharing group is a deterministic function of a
// fuzz-chosen salt, the group's first member, and its size, so the
// fuzzer sweeps arbitrary single/shared/splice-parallel assignments.
// Whatever it picks, results must match the fixed-engine path — the
// planner contract is that plans change work, never answers.
type overridePlanner struct{ salt byte }

func (p overridePlanner) PlanGroup(_, _ *graph.Graph, _ *hcindex.Index, _ []query.Query, group []int) batchenum.GroupEngine {
	engines := [...]batchenum.GroupEngine{
		batchenum.GroupSingle, batchenum.GroupShared, batchenum.GroupSpliceParallel, batchenum.GroupAuto,
	}
	return engines[(int(p.salt)+group[0]+3*len(group))%len(engines)]
}

func (overridePlanner) ObserveGroup(batchenum.GroupEngine, int, int64) {}

// fuzzInput decodes the fuzz bytes into a graph and a batch of up to
// three valid queries. Returns ok=false when the bytes cannot yield at
// least one valid query.
func fuzzInput(data []byte) (g *graph.Graph, qs []query.Query, limit int64, ok bool) {
	if len(data) < 8 {
		return nil, nil, 0, false
	}
	n := 2 + int(data[0]%7) // 2..8 vertices
	limit = int64(data[1] % 5)
	b := graph.NewBuilder(n)
	if len(data) > 64 {
		data = data[:64] // bound the oracle's O(n^k) work
	}
	for i := 8; i+1 < len(data); i += 2 {
		u := graph.VertexID(int(data[i]) % n)
		v := graph.VertexID(int(data[i+1]) % n)
		b.AddEdge(u, v) // builder drops self-loops and duplicates
	}
	g = b.Build()
	for qi := 0; qi < 3; qi++ {
		s := graph.VertexID(int(data[2+2*qi]) % n)
		t := graph.VertexID(int(data[3+2*qi]) % n)
		k := uint8(1 + int(data[2+2*qi]>>4)%6) // 1..6 hops
		if s == t {
			continue
		}
		qs = append(qs, query.Query{S: s, T: t, K: k})
	}
	return g, qs, limit, len(qs) > 0
}

// canonicalStrings renders a path set in sorted string form.
func canonicalStrings(paths [][]graph.VertexID) []string {
	out := make([]string, len(paths))
	for i, p := range paths {
		out[i] = fmt.Sprint(p)
	}
	sort.Strings(out)
	return out
}

// checkSubset verifies every got path is a distinct member of the
// oracle's set for the query.
func checkSubset(t *testing.T, label string, qi int, oracleSet map[string]bool, got [][]graph.VertexID) {
	t.Helper()
	seen := map[string]bool{}
	for _, p := range got {
		k := fmt.Sprint(p)
		if !oracleSet[k] {
			t.Fatalf("%s: query %d emitted non-result %s", label, qi, k)
		}
		if seen[k] {
			t.Fatalf("%s: query %d emitted duplicate %s", label, qi, k)
		}
		seen[k] = true
	}
}

func FuzzEnumerate(f *testing.F) {
	f.Add([]byte{3, 2, 0x10, 3, 0x21, 2, 0x30, 1, 0, 1, 1, 2, 2, 3, 0, 2, 1, 3, 0, 3})
	f.Add([]byte{6, 0, 0x57, 6, 0x43, 5, 0x62, 4, 0, 1, 1, 2, 2, 0, 3, 4, 4, 5, 5, 6, 6, 0, 1, 4, 2, 5})
	f.Add([]byte{1, 1, 0x20, 1, 0x12, 0, 0x21, 2, 0, 1, 1, 0, 0, 2, 2, 0, 1, 2, 2, 1})
	f.Add([]byte{7, 3, 0x70, 7, 0x15, 3, 0x36, 5, 0, 1, 0, 2, 0, 3, 1, 4, 2, 4, 3, 4, 4, 5, 4, 6, 5, 7, 6, 7, 1, 7, 2, 6})

	algorithms := []batchenum.Algorithm{
		batchenum.Basic, batchenum.BasicPlus, batchenum.Batch, batchenum.BatchPlus,
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		g, qs, limit, ok := fuzzInput(data)
		if !ok {
			return
		}
		gr := g.Reverse()

		// Ground truth per query position: want is string-sorted for set
		// comparisons, ordered keeps the oracle's (hops, lex) listing for
		// the KSP baselines' output-order checks.
		want := make([][]string, len(qs))
		ordered := make([][]string, len(qs))
		wantSet := make([]map[string]bool, len(qs))
		for i, q := range qs {
			ps := oracle.Paths(g, q)
			ordered[i] = make([]string, len(ps))
			for j, p := range ps {
				ordered[i][j] = fmt.Sprint(p)
			}
			want[i] = canonicalStrings(ps)
			wantSet[i] = map[string]bool{}
			for _, s := range want[i] {
				wantSet[i][s] = true
			}
		}

		for _, alg := range algorithms {
			opts := batchenum.Options{Algorithm: alg, Gamma: 0.5}
			label := alg.String()

			// 1. Full sequential run: exact per-query equality.
			full := query.NewCollectSink(len(qs))
			if _, err := batchenum.Run(g, gr, qs, opts, full); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			for i := range qs {
				if got := canonicalStrings(full.Paths[i]); !slices.Equal(want[i], got) {
					t.Fatalf("%s: query %d: engine %v != oracle %v", label, i, got, want[i])
				}
			}

			// 1b. Planner-driven runs (sharing engines only): random
			// per-group engine overrides, sequential and parallel, must
			// reproduce the fixed-engine results exactly.
			if alg.Shared() {
				popts := opts
				popts.Planner = overridePlanner{salt: data[7]}
				for mode, run := range map[string]func(query.Sink) (*batchenum.Stats, error){
					"seq": func(sink query.Sink) (*batchenum.Stats, error) {
						return batchenum.Run(g, gr, qs, popts, sink)
					},
					"par": func(sink query.Sink) (*batchenum.Stats, error) {
						return batchenum.RunParallel(g, gr, qs,
							batchenum.ParallelOptions{Options: popts, Workers: 2}, sink)
					},
				} {
					planned := query.NewCollectSink(len(qs))
					st, err := run(planned)
					if err != nil {
						t.Fatalf("%s/planned-%s: %v", label, mode, err)
					}
					for i := range qs {
						if got := canonicalStrings(planned.Paths[i]); !slices.Equal(want[i], got) {
							t.Fatalf("%s/planned-%s: query %d: engine %v != oracle %v", label, mode, i, got, want[i])
						}
					}
					if groups := st.Plan.SingleGroups + st.Plan.SharedGroups + st.Plan.SpliceGroups; groups != int64(st.NumGroups) {
						t.Fatalf("%s/planned-%s: plan stats cover %d groups, run had %d", label, mode, groups, st.NumGroups)
					}
				}
			}

			// 2. Limited run (sequential and parallel): min(limit, total)
			// distinct oracle paths, truncation reported iff dropped.
			if limit > 0 {
				runLimited := func(mode string, run func(*query.Control, query.Sink) (*batchenum.Stats, error)) {
					ctrl := query.NewControl(context.Background(), noDeadline, limit, len(qs))
					sink := query.NewCollectSink(len(qs))
					st, err := run(ctrl, sink)
					if err != nil {
						t.Fatalf("%s/%s limited: %v", label, mode, err)
					}
					wantTrunc := 0
					for i := range qs {
						total := int64(len(want[i]))
						wantLen := total
						if limit < total {
							wantLen = limit
							wantTrunc++
						}
						if int64(len(sink.Paths[i])) != wantLen {
							t.Fatalf("%s/%s limited: query %d emitted %d paths, want %d (total %d, limit %d)",
								label, mode, i, len(sink.Paths[i]), wantLen, total, limit)
						}
						checkSubset(t, label+"/"+mode+" limited", i, wantSet[i], sink.Paths[i])
						if trunc := ctrl.Truncated(i); trunc != (limit < total) {
							t.Fatalf("%s/%s limited: query %d Truncated=%v, want %v", label, mode, i, trunc, limit < total)
						}
						if limit < total && !errors.Is(ctrl.QueryErr(i), query.ErrLimitReached) {
							t.Fatalf("%s/%s limited: query %d QueryErr=%v, want ErrLimitReached", label, mode, i, ctrl.QueryErr(i))
						}
					}
					if st.Truncated != wantTrunc {
						t.Fatalf("%s/%s limited: Stats.Truncated=%d, want %d", label, mode, st.Truncated, wantTrunc)
					}
				}
				runLimited("seq", func(ctrl *query.Control, sink query.Sink) (*batchenum.Stats, error) {
					return batchenum.RunControlled(g, gr, qs, opts, ctrl, sink)
				})
				runLimited("par", func(ctrl *query.Control, sink query.Sink) (*batchenum.Stats, error) {
					return batchenum.RunParallelControlled(g, gr, qs,
						batchenum.ParallelOptions{Options: opts, Workers: 2}, ctrl, sink)
				})
			}

			// 3. Cancelled mid-run (after the first emission): only
			// genuine oracle paths, no duplicates, ctx error returned.
			ctx, cancel := context.WithCancel(context.Background())
			ctrl := query.NewControl(ctx, noDeadline, 0, len(qs))
			part := query.NewCollectSink(len(qs))
			_, err := batchenum.RunControlled(g, gr, qs, opts, ctrl,
				query.FuncSink(func(id int, p []graph.VertexID) {
					part.Emit(id, p)
					cancel()
				}))
			cancel()
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("%s cancelled: err = %v", label, err)
			}
			for i := range qs {
				checkSubset(t, label+" cancelled", i, wantSet[i], part.Paths[i])
			}
		}

		// 4. KSP baselines on the first query: full equality in
		// canonical order; limited = canonical prefix.
		q0 := qs[0]
		q0.ID = 0
		for _, base := range []struct {
			name string
			run  func(ctrl *query.Control, emit func([]graph.VertexID)) bool
		}{
			{"DkSP", func(ctrl *query.Control, emit func([]graph.VertexID)) bool {
				return ksp.DkSPControlled(g, q0, nil, ctrl, emit)
			}},
			{"OnePass", func(ctrl *query.Control, emit func([]graph.VertexID)) bool {
				return ksp.OnePassControlled(g, gr, q0, nil, ctrl, emit)
			}},
		} {
			var got []string
			if done := base.run(nil, func(p []graph.VertexID) {
				got = append(got, fmt.Sprint(p))
			}); !done {
				t.Fatalf("%s: incomplete without budget", base.name)
			}
			// Both baselines emit in (hops, lex) order, the oracle's
			// canonical order — compare listings directly.
			if !slices.Equal(ordered[0], got) {
				t.Fatalf("%s: %v != oracle %v", base.name, got, ordered[0])
			}
			if limit > 0 {
				ctrl := query.NewControl(context.Background(), noDeadline, limit, 1)
				var lim []string
				if done := base.run(ctrl, func(p []graph.VertexID) {
					lim = append(lim, fmt.Sprint(p))
				}); !done {
					t.Fatalf("%s limited: reported incomplete", base.name)
				}
				wantLen := int64(len(ordered[0]))
				if limit < wantLen {
					wantLen = limit
				}
				if int64(len(lim)) != wantLen || !slices.Equal(ordered[0][:wantLen], lim) {
					t.Fatalf("%s limited: %v != canonical prefix %v", base.name, lim, ordered[0][:wantLen])
				}
			}
		}
	})
}
