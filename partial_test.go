package hcpath

// Partial-result semantics of the public API: deadlines unwind the
// enumeration loops promptly, Options.Limit truncates to exactly the
// requested number of genuine results, and out-of-range Result lookups
// degrade to zero values instead of panicking.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/query"
	"repro/internal/testgraphs"
)

// denseGraph returns a dense random graph whose K=15 queries have
// astronomically many paths — enumeration to completion is infeasible,
// which is exactly what the cancellation tests need.
func denseGraph() *Graph {
	return wrap(graph.GenErdosRenyi(400, 20000, 42))
}

// TestCancelledEnumerationReturnsQuickly is the acceptance bound: a
// K=15 query on a dense graph, cancelled after 10ms, must return the
// context's error in well under 500ms for every algorithm, sequential
// and parallel.
func TestCancelledEnumerationReturnsQuickly(t *testing.T) {
	g := denseGraph()
	qs := []Query{{S: 0, T: 1, K: 15}}
	for _, alg := range []Algorithm{BatchEnumPlus, BatchEnum, BasicEnumPlus, BasicEnum} {
		for _, workers := range []int{0, 4} {
			t.Run(fmt.Sprintf("%v/workers=%d", alg, workers), func(t *testing.T) {
				eng := NewEngine(g, &Options{Algorithm: alg, Workers: workers})
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
				defer cancel()
				t0 := time.Now()
				counts, st, err := eng.CountContext(ctx, qs)
				elapsed := time.Since(t0)
				if elapsed > 500*time.Millisecond {
					t.Fatalf("cancelled enumeration took %v, want < 500ms", elapsed)
				}
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("err = %v, want context.DeadlineExceeded", err)
				}
				if counts == nil {
					t.Fatal("partial counts not returned alongside the context error")
				}
				if st.Truncated != 1 {
					t.Fatalf("Stats.Truncated = %d, want 1", st.Truncated)
				}
			})
		}
	}
}

// TestCancelledStreamEmitsOnlyGenuinePaths cancels mid-stream and
// checks every path already emitted is a real result.
func TestCancelledStreamEmitsOnlyGenuinePaths(t *testing.T) {
	g := testgraphs.CompleteDAG(7)
	oracleSet := map[string]bool{}
	oracle.Enumerate(g, query.Query{S: 0, T: 6, K: 6}, func(p []graph.VertexID) {
		oracleSet[fmt.Sprint(p)] = true
	})
	eng := NewEngine(&Graph{g: g, gr: g.Reverse()}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	emitted := 0
	_, err := eng.StreamContext(ctx, []Query{{S: 0, T: 6, K: 6}}, func(i int, p Path) {
		if !oracleSet[fmt.Sprint([]graph.VertexID(p))] {
			t.Fatalf("emitted non-result %v", p)
		}
		emitted++
		cancel()
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled or nil", err)
	}
	if emitted == 0 {
		t.Fatal("stream emitted nothing before the cancel")
	}
}

// TestLimitYieldsExactlyN is the acceptance check for Options.Limit:
// exactly n paths, Stats.Truncated set, per-query ErrLimitReached, and
// every delivered path genuine.
func TestLimitYieldsExactlyN(t *testing.T) {
	g := testgraphs.CompleteDAG(7)
	q := query.Query{S: 0, T: 6, K: 6} // 32 paths
	oracleSet := map[string]bool{}
	oracle.Enumerate(g, q, func(p []graph.VertexID) { oracleSet[fmt.Sprint(p)] = true })

	for _, alg := range []Algorithm{BatchEnumPlus, BatchEnum, BasicEnumPlus, BasicEnum} {
		for _, workers := range []int{0, 4} {
			t.Run(fmt.Sprintf("%v/workers=%d", alg, workers), func(t *testing.T) {
				const n = 5
				eng := NewEngine(&Graph{g: g, gr: g.Reverse()},
					&Options{Algorithm: alg, Workers: workers, Limit: n})
				res, err := eng.Enumerate([]Query{{S: 0, T: 6, K: 6}})
				if err != nil {
					t.Fatalf("limit truncation must not be a run error: %v", err)
				}
				if got := res.Count(0); got != n {
					t.Fatalf("Count = %d, want exactly %d", got, n)
				}
				seen := map[string]bool{}
				for _, p := range res.Paths(0) {
					k := fmt.Sprint([]graph.VertexID(p))
					if !oracleSet[k] {
						t.Fatalf("delivered non-result %s", k)
					}
					if seen[k] {
						t.Fatalf("delivered duplicate %s", k)
					}
					seen[k] = true
				}
				if res.Stats().Truncated != 1 {
					t.Fatalf("Stats.Truncated = %d, want 1", res.Stats().Truncated)
				}
				if !res.Truncated(0) || !errors.Is(res.Err(0), ErrLimitReached) {
					t.Fatalf("Truncated=%v Err=%v, want true/ErrLimitReached", res.Truncated(0), res.Err(0))
				}
			})
		}
	}
}

// TestLimitNotHitIsComplete: a limit equal to the exact result count is
// never reported as truncation.
func TestLimitNotHitIsComplete(t *testing.T) {
	g := testgraphs.CompleteDAG(7)
	eng := NewEngine(&Graph{g: g, gr: g.Reverse()}, &Options{Limit: 32})
	res, err := eng.Enumerate([]Query{{S: 0, T: 6, K: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count(0) != 32 || res.Stats().Truncated != 0 || res.Truncated(0) || res.Err(0) != nil {
		t.Fatalf("limit == |P(q)|: count=%d truncated=%d err=%v, want complete",
			res.Count(0), res.Stats().Truncated, res.Err(0))
	}
}

// TestCountContextSaturatesAtLimit: count mode honours the same budget.
func TestCountContextSaturatesAtLimit(t *testing.T) {
	g := testgraphs.CompleteDAG(7)
	eng := NewEngine(&Graph{g: g, gr: g.Reverse()}, &Options{Limit: 7})
	counts, st, err := eng.Count([]Query{{S: 0, T: 6, K: 6}, {S: 0, T: 6, K: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 7 {
		t.Fatalf("counts[0] = %d, want saturation at 7", counts[0])
	}
	if counts[1] != 1 { // the single direct edge, below the limit
		t.Fatalf("counts[1] = %d, want 1", counts[1])
	}
	if st.Truncated != 1 {
		t.Fatalf("Stats.Truncated = %d, want 1", st.Truncated)
	}
}

// TestResultBounds is the regression test for out-of-range query
// positions: nil/zero instead of a panic.
func TestResultBounds(t *testing.T) {
	g := testgraphs.Diamond()
	eng := NewEngine(&Graph{g: g, gr: g.Reverse()}, nil)
	res, err := eng.Enumerate([]Query{{S: 0, T: 3, K: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count(0) == 0 {
		t.Fatal("sanity: query 0 has paths")
	}
	for _, i := range []int{-1, 1, 99} {
		if got := res.Paths(i); got != nil {
			t.Errorf("Paths(%d) = %v, want nil", i, got)
		}
		if got := res.Count(i); got != 0 {
			t.Errorf("Count(%d) = %d, want 0", i, got)
		}
		if res.Truncated(i) {
			t.Errorf("Truncated(%d) = true, want false", i)
		}
		if got := res.Err(i); got != nil {
			t.Errorf("Err(%d) = %v, want nil", i, got)
		}
	}
}
