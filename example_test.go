package hcpath_test

import (
	"context"
	"errors"
	"fmt"
	"time"

	hcpath "repro"
)

// ExampleEngine_EnumerateContext bounds a query two ways at once: a
// per-query result limit and a context deadline. The diamond-plus-chord
// graph has three 0→3 paths within two hops; Limit 2 truncates the
// result set to exactly two genuine paths and reports why.
func ExampleEngine_EnumerateContext() {
	g, err := hcpath.NewGraph(4, []hcpath.Edge{
		{0, 1}, {1, 3}, {0, 2}, {2, 3}, {0, 3},
	})
	if err != nil {
		panic(err)
	}
	eng := hcpath.NewEngine(g, &hcpath.Options{Limit: 2})

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	res, err := eng.EnumerateContext(ctx, []hcpath.Query{{S: 0, T: 3, K: 2}})
	if err != nil {
		// Only cancellation surfaces here; limit truncation is reported
		// per query below.
		panic(err)
	}

	fmt.Println("paths delivered:", res.Count(0))
	fmt.Println("truncated:", res.Truncated(0))
	fmt.Println("limit reached:", errors.Is(res.Err(0), hcpath.ErrLimitReached))
	// Output:
	// paths delivered: 2
	// truncated: true
	// limit reached: true
}
