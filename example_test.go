package hcpath_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	hcpath "repro"
)

// ExampleEngine_EnumerateContext bounds a query two ways at once: a
// per-query result limit and a context deadline. The diamond-plus-chord
// graph has three 0→3 paths within two hops; Limit 2 truncates the
// result set to exactly two genuine paths and reports why.
func ExampleEngine_EnumerateContext() {
	g, err := hcpath.NewGraph(4, []hcpath.Edge{
		{0, 1}, {1, 3}, {0, 2}, {2, 3}, {0, 3},
	})
	if err != nil {
		panic(err)
	}
	eng := hcpath.NewEngine(g, &hcpath.Options{Limit: 2})

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	res, err := eng.EnumerateContext(ctx, []hcpath.Query{{S: 0, T: 3, K: 2}})
	if err != nil {
		// Only cancellation surfaces here; limit truncation is reported
		// per query below.
		panic(err)
	}

	fmt.Println("paths delivered:", res.Count(0))
	fmt.Println("truncated:", res.Truncated(0))
	fmt.Println("limit reached:", errors.Is(res.Err(0), hcpath.ErrLimitReached))
	// Output:
	// paths delivered: 2
	// truncated: true
	// limit reached: true
}

// ExampleOpenService runs the durable service through its whole
// lifecycle: open with a DataDir, mutate the graph (every update is
// WAL-logged before it is acknowledged), close, and reopen with a nil
// graph — the store rebuilds the exact pre-shutdown state from the
// snapshot and WAL tail, so the same query answers identically.
func ExampleOpenService() {
	dir, err := os.MkdirTemp("", "hcpath-example-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	g, err := hcpath.NewGraph(4, []hcpath.Edge{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		panic(err)
	}
	svc, err := hcpath.OpenService(g, &hcpath.ServiceOptions{DataDir: dir})
	if err != nil {
		panic(err)
	}
	if _, err := svc.ApplyUpdates([]hcpath.Edge{{0, 3}}, nil); err != nil {
		panic(err)
	}
	paths, _, err := svc.Query(context.Background(), hcpath.Query{S: 0, T: 3, K: 3})
	if err != nil {
		panic(err)
	}
	fmt.Println("paths before restart:", len(paths))
	if err := svc.Close(); err != nil {
		panic(err)
	}

	// Warm restart: nil graph — state comes from disk alone.
	svc2, err := hcpath.OpenService(nil, &hcpath.ServiceOptions{DataDir: dir})
	if err != nil {
		panic(err)
	}
	defer svc2.Close()
	st := svc2.State()
	fmt.Printf("restored: epoch=%d vertices=%d edges=%d\n", st.Epoch, st.NumVertices, st.NumEdges)
	paths, _, err = svc2.Query(context.Background(), hcpath.Query{S: 0, T: 3, K: 3})
	if err != nil {
		panic(err)
	}
	fmt.Println("paths after restart:", len(paths))
	// Output:
	// paths before restart: 2
	// restored: epoch=1 vertices=4 edges=4
	// paths after restart: 2
}
