// Knowledge-graph completion features (the paper's third motivating
// application): entities connected by many short paths tend to be
// related, so link-prediction models use hop-constrained path counts
// between candidate entity pairs as features. Missing relations exist
// between many pairs at once, so the path queries arrive as a batch —
// and because candidate pairs concentrate around popular entities, the
// batch is exactly the high-overlap workload BatchEnum+ shares.
//
//	go run ./examples/knowledgegraph
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	hcpath "repro"
)

const (
	numEntities = 4000
	numFacts    = 24000
	hubEntities = 12 // popular entities most candidates involve
	numPairs    = 60
	maxHops     = 4
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// Knowledge graph: facts (head → tail). Popular entities (hubs)
	// participate in a disproportionate share of facts, as in real KGs.
	var edges []hcpath.Edge
	for i := 0; i < numFacts; i++ {
		h := hcpath.VertexID(rng.Intn(numEntities))
		if rng.Intn(3) == 0 {
			h = hcpath.VertexID(rng.Intn(hubEntities))
		}
		t := hcpath.VertexID(rng.Intn(numEntities))
		if rng.Intn(3) == 0 {
			t = hcpath.VertexID(rng.Intn(hubEntities))
		}
		if h != t {
			edges = append(edges, hcpath.Edge{Src: h, Dst: t})
		}
	}
	g, err := hcpath.NewGraph(numEntities, edges)
	if err != nil {
		log.Fatal(err)
	}

	// Candidate pairs for relation prediction: most involve a hub on
	// one side (the entities whose pages are being completed).
	type pair struct{ a, b hcpath.VertexID }
	var pairs []pair
	var queries []hcpath.Query
	for len(pairs) < numPairs {
		a := hcpath.VertexID(rng.Intn(hubEntities))
		b := hcpath.VertexID(rng.Intn(numEntities))
		if a == b {
			continue
		}
		pairs = append(pairs, pair{a, b})
		queries = append(queries, hcpath.Query{S: a, T: b, K: maxHops})
	}

	eng := hcpath.NewEngine(g, &hcpath.Options{Gamma: 0.4})
	counts, st, err := eng.Count(queries)
	if err != nil {
		log.Fatal(err)
	}

	// Rank candidates by path-count feature: more short paths → higher
	// relatedness score.
	order := make([]int, len(pairs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return counts[order[x]] > counts[order[y]] })

	fmt.Printf("top candidate relations by ≤%d-hop path count:\n", maxHops)
	for rank := 0; rank < 10 && rank < len(order); rank++ {
		i := order[rank]
		fmt.Printf("%2d. entity %4d — entity %4d: %6d paths\n", rank+1, pairs[i].a, pairs[i].b, counts[i])
	}
	fmt.Printf("\nbatch of %d pair queries: %d groups, %d shared sub-queries, %d spliced partial paths\n",
		len(queries), st.Groups, st.SharedQueries, st.SplicedPaths)
}
