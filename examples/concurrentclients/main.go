// Concurrent clients: the serving scenario the paper opens with — many
// users issue HC-s-t path queries at the same time, and instead of
// answering them one by one (or "deploying more servers"), the service
// micro-batches whatever arrives inside a small time window and lets
// BatchEnum+ share the common sub-queries of the coalesced batch.
//
// Forty client goroutines fire similar queries at one Service; the
// OnBatch hook shows each batch's coalescing and sharing as it happens.
//
//	go run ./examples/concurrentclients
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	hcpath "repro"
)

func main() {
	// A random directed graph standing in for a social network.
	const n = 2000
	rng := rand.New(rand.NewSource(7))
	var edges []hcpath.Edge
	for i := 0; i < 6*n; i++ {
		edges = append(edges, hcpath.Edge{
			Src: hcpath.VertexID(rng.Intn(n)),
			Dst: hcpath.VertexID(rng.Intn(n)),
		})
	}
	g, err := hcpath.NewGraph(n, edges)
	if err != nil {
		log.Fatal(err)
	}

	svc := hcpath.NewService(g, &hcpath.ServiceOptions{
		Options:  hcpath.Options{Gamma: 0.8}, // BatchEnum+, parallel across sharing groups
		MaxBatch: 64,
		MaxWait:  2 * time.Millisecond,
		OnBatch: func(b hcpath.BatchStats) {
			fmt.Printf("batch: %2d queries coalesced → %2d groups (sharing %.2f), %d shared sub-queries, %d paths in %v\n",
				b.Queries, b.Groups, b.SharingRatio(), b.SharedQueries, b.Paths,
				time.Duration(b.EnumerateNanos).Round(time.Microsecond))
		},
	})
	defer svc.Close()

	// Forty clients, each asking for paths around a handful of popular
	// hubs — the high-similarity traffic batch sharing thrives on.
	hubs := []hcpath.VertexID{11, 42, 99, 250}
	const clients, queriesPerClient = 40, 5
	var wg sync.WaitGroup
	var mu sync.Mutex
	totalPaths := 0
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < queriesPerClient; i++ {
				q := hcpath.Query{
					S: hubs[rng.Intn(len(hubs))],
					T: hcpath.VertexID(rng.Intn(n)),
					K: 4 + rng.Intn(2),
				}
				if q.S == q.T {
					continue
				}
				paths, _, err := svc.Query(context.Background(), q)
				if err != nil {
					log.Fatal(err)
				}
				mu.Lock()
				totalPaths += len(paths)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	tot := svc.Totals()
	fmt.Printf("\n%d queries answered in %d batches (largest %d, mean %.1f queries/batch), %d paths\n",
		tot.Queries, tot.Batches, tot.LargestBatch,
		float64(tot.Queries)/float64(tot.Batches), totalPaths)
	fmt.Printf("sharing across batches: %d groups, %d shared sub-queries, %d partial paths spliced from cache\n",
		tot.Groups, tot.SharedQueries, tot.SplicedPaths)
}
