// Overload protection: a burst of greedy clients hits a service with
// bounded concurrency, a bounded queue, and a per-caller fairness
// quota. Submissions beyond the bounds are shed at admission with the
// typed ErrOverloaded — nothing ran for them, so the right client-side
// response is exponential backoff and retry, which is exactly what the
// clients here do. Admitted queries are always answered: the summary
// shows every query eventually completing, the service reporting how
// many attempts it shed, and the adaptive planner reporting where the
// batches' sharing groups went.
//
//	go run ./examples/overload
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	hcpath "repro"
)

func main() {
	// A random directed graph standing in for a social network.
	const n = 2000
	rng := rand.New(rand.NewSource(11))
	var edges []hcpath.Edge
	for i := 0; i < 6*n; i++ {
		edges = append(edges, hcpath.Edge{
			Src: hcpath.VertexID(rng.Intn(n)),
			Dst: hcpath.VertexID(rng.Intn(n)),
		})
	}
	g, err := hcpath.NewGraph(n, edges)
	if err != nil {
		log.Fatal(err)
	}

	// Tight bounds so the burst below actually overloads the service:
	// two batches in flight, a six-seat queue, four outstanding queries
	// per caller.
	svc := hcpath.NewService(g, &hcpath.ServiceOptions{
		Planner:      &hcpath.PlannerOptions{},
		MaxBatch:     8,
		MaxWait:      2 * time.Millisecond,
		MaxInFlight:  2,
		MaxQueued:    6,
		MaxPerCaller: 4,
	})
	defer svc.Close()

	const clients = 12
	const queriesPerClient = 25
	var backoffs, answered atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			caller := fmt.Sprintf("client-%d", c)
			crng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < queriesPerClient; i++ {
				q := hcpath.Query{
					S: hcpath.VertexID(crng.Intn(n)),
					T: hcpath.VertexID(crng.Intn(n-1) + 1),
					K: 3 + crng.Intn(2),
				}
				if q.S == q.T {
					continue
				}
				// Backoff loop: ErrOverloaded means "nothing ran, try
				// later" — wait a growing interval and resubmit.
				delay := time.Millisecond
				for {
					_, _, err := svc.CountFrom(context.Background(), caller, q)
					if errors.Is(err, hcpath.ErrOverloaded) {
						backoffs.Add(1)
						time.Sleep(delay)
						if delay < 32*time.Millisecond {
							delay *= 2
						}
						continue
					}
					if err != nil {
						log.Fatalf("%s: %v", caller, err)
					}
					answered.Add(1)
					break
				}
			}
		}(c)
	}
	wg.Wait()

	tot := svc.Totals()
	fmt.Printf("answered %d queries from %d clients in %v\n",
		answered.Load(), clients, time.Since(start).Round(time.Millisecond))
	fmt.Printf("service shed %d submissions; clients backed off %d times and lost nothing\n",
		tot.Shed, backoffs.Load())
	fmt.Printf("%d batches (largest %d); plan: %d single / %d shared / %d spliced groups\n",
		tot.Batches, tot.LargestBatch,
		tot.Plan.SingleGroups, tot.Plan.SharedGroups, tot.Plan.SpliceGroups)
	if tot.Queries != answered.Load() {
		log.Fatalf("service answered %d but clients counted %d", tot.Queries, answered.Load())
	}
}
