// Quickstart: build a small graph, run a batch of hop-constrained s-t
// simple path queries with the default engine (BatchEnum+), and print
// every result path together with the sharing statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	hcpath "repro"
)

func main() {
	// The running-example graph of the paper's Fig. 1.
	g, err := hcpath.NewGraph(16, []hcpath.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 4},
		{Src: 2, Dst: 1}, {Src: 2, Dst: 4},
		{Src: 5, Dst: 1},
		{Src: 1, Dst: 7}, {Src: 1, Dst: 8},
		{Src: 4, Dst: 9},
		{Src: 9, Dst: 3}, {Src: 9, Dst: 15}, {Src: 9, Dst: 8},
		{Src: 3, Dst: 15},
		{Src: 7, Dst: 10}, {Src: 7, Dst: 8},
		{Src: 3, Dst: 6}, {Src: 15, Dst: 6},
		{Src: 10, Dst: 12},
		{Src: 12, Dst: 11}, {Src: 12, Dst: 13},
		{Src: 6, Dst: 11}, {Src: 6, Dst: 13}, {Src: 6, Dst: 14},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The batch Q of Fig. 1: five HC-s-t path queries processed
	// together so common sub-paths are enumerated once.
	queries := []hcpath.Query{
		{S: 0, T: 11, K: 5}, // q0
		{S: 2, T: 13, K: 5}, // q1
		{S: 5, T: 12, K: 5}, // q2
		{S: 4, T: 14, K: 4}, // q3
		{S: 9, T: 14, K: 3}, // q4
	}

	eng := hcpath.NewEngine(g, &hcpath.Options{Gamma: 0.8})
	res, err := eng.Enumerate(queries)
	if err != nil {
		log.Fatal(err)
	}

	for i, q := range queries {
		fmt.Printf("q%d(v%d, v%d, %d): %d paths\n", i, q.S, q.T, q.K, res.Count(i))
		for _, p := range res.Paths(i) {
			fmt.Printf("   %s\n", p)
		}
	}

	st := res.Stats()
	fmt.Printf("\n%d query groups, %d shared HC-s path queries detected, %d partial paths spliced from cache\n",
		st.Groups, st.SharedQueries, st.SplicedPaths)
}
