// Pathway queries in a biological interaction network (the paper's
// second motivating application, after Leser's pathway query language):
// biologists ask for the chains of interactions between multiple pairs
// of substances at once, bounded to a few reaction steps — a batch of
// HC-s-t path queries. This example builds a synthetic metabolic-style
// network of substrate/enzyme/product layers, asks for all interaction
// chains between chosen substance pairs, and prints the chains grouped
// by length.
//
//	go run ./examples/biopathways
package main

import (
	"fmt"
	"log"
	"math/rand"

	hcpath "repro"
)

const (
	numSubstances = 1500
	layerSize     = 100 // substances per pathway layer
	maxSteps      = 6   // bound on interaction-chain length
)

func main() {
	rng := rand.New(rand.NewSource(5))

	// Layered reaction network: substances in layer L mostly convert
	// into substances of layer L+1 (metabolic flow), with occasional
	// feedback edges — this yields many alternative chains between
	// substances a few layers apart.
	numLayers := numSubstances / layerSize
	var edges []hcpath.Edge
	for v := 0; v < numSubstances; v++ {
		layer := v / layerSize
		outDeg := 2 + rng.Intn(3)
		for e := 0; e < outDeg; e++ {
			var target int
			if layer+1 < numLayers && rng.Float64() < 0.85 {
				target = (layer+1)*layerSize + rng.Intn(layerSize) // forward reaction
			} else if layer > 0 && rng.Float64() < 0.5 {
				target = (layer-1)*layerSize + rng.Intn(layerSize) // feedback
			} else {
				target = layer*layerSize + rng.Intn(layerSize) // isomerisation
			}
			if target != v {
				edges = append(edges, hcpath.Edge{Src: hcpath.VertexID(v), Dst: hcpath.VertexID(target)})
			}
		}
	}
	g, err := hcpath.NewGraph(numSubstances, edges)
	if err != nil {
		log.Fatal(err)
	}

	// The biologist's batch: interaction chains between substrate
	// candidates in layer 0-1 and products 3-4 layers downstream. The
	// pairs share intermediate layers, so their chains overlap heavily.
	var queries []hcpath.Query
	var labels []string
	for i := 0; i < 12; i++ {
		src := hcpath.VertexID(rng.Intn(2 * layerSize))
		dstLayer := 3 + rng.Intn(2)
		dst := hcpath.VertexID(dstLayer*layerSize + rng.Intn(layerSize))
		queries = append(queries, hcpath.Query{S: src, T: dst, K: maxSteps})
		labels = append(labels, fmt.Sprintf("substance %d ⇝ substance %d", src, dst))
	}

	eng := hcpath.NewEngine(g, &hcpath.Options{Gamma: 0.3})
	byLength := make([]map[int]int, len(queries)) // query → chain length → count
	for i := range byLength {
		byLength[i] = map[int]int{}
	}
	st, err := eng.Stream(queries, func(i int, p hcpath.Path) {
		byLength[i][p.Len()]++
	})
	if err != nil {
		log.Fatal(err)
	}

	for i, label := range labels {
		total := 0
		for _, c := range byLength[i] {
			total += c
		}
		fmt.Printf("%s: %d chains within %d steps", label, total, maxSteps)
		if total > 0 {
			fmt.Print(" (by length:")
			for l := 1; l <= maxSteps; l++ {
				if c := byLength[i][l]; c > 0 {
					fmt.Printf(" %d×len%d", c, l)
				}
			}
			fmt.Print(")")
		}
		fmt.Println()
	}
	fmt.Printf("\nbatch pathway analysis: %d groups, %d shared sub-queries, %d spliced partial chains\n",
		st.Groups, st.SharedQueries, st.SplicedPaths)
}
