// Sharded deployment: the same paper-Fig.1 workload served by an
// in-process sharded deployment instead of a single service. Vertices
// are hash-partitioned across N shard workers, each with its own
// versioned store, index cache, and batch pipeline. A query whose
// endpoints hash to the same shard is forwarded unchanged; a
// cross-shard query is answered by scatter-gather — the owning shards
// enumerate forward and backward half-paths up to ⌈K/2⌉ hops and the
// coordinator joins them at the boundary vertices, so results are
// bit-identical to the single-process service.
//
//	go run ./examples/sharded
package main

import (
	"context"
	"fmt"
	"log"

	hcpath "repro"
)

const shards = 3

func main() {
	// The running-example graph of the paper's Fig. 1.
	g, err := hcpath.NewGraph(16, []hcpath.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 4},
		{Src: 2, Dst: 1}, {Src: 2, Dst: 4},
		{Src: 5, Dst: 1},
		{Src: 1, Dst: 7}, {Src: 1, Dst: 8},
		{Src: 4, Dst: 9},
		{Src: 9, Dst: 3}, {Src: 9, Dst: 15}, {Src: 9, Dst: 8},
		{Src: 3, Dst: 15},
		{Src: 7, Dst: 10}, {Src: 7, Dst: 8},
		{Src: 3, Dst: 6}, {Src: 15, Dst: 6},
		{Src: 10, Dst: 12},
		{Src: 12, Dst: 11}, {Src: 12, Dst: 13},
		{Src: 6, Dst: 11}, {Src: 6, Dst: 13}, {Src: 6, Dst: 14},
	})
	if err != nil {
		log.Fatal(err)
	}

	svc := hcpath.NewService(g, &hcpath.ServiceOptions{Shards: shards})
	defer svc.Close()
	fmt.Printf("deployment: %d shard workers\n\n", svc.NumShards())

	// Pick one query of each routing class using the public placement
	// function: ShardOf tells us which worker owns each endpoint.
	queries := []hcpath.Query{
		{S: 0, T: 11, K: 5},
		{S: 2, T: 13, K: 5},
		{S: 5, T: 12, K: 5},
		{S: 4, T: 14, K: 4},
		{S: 9, T: 14, K: 3},
		{S: 9, T: 11, K: 3}, // both endpoints hash to one shard
	}
	for _, q := range queries {
		sa, sb := hcpath.ShardOf(q.S, shards), hcpath.ShardOf(q.T, shards)
		class := "cross-shard (scatter-gather + boundary join)"
		if sa == sb {
			class = "single-shard (forwarded unchanged)"
		}
		paths, _, err := svc.Query(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("q(v%d→v%d, k=%d): shards %d/%d, %s, %d paths\n",
			q.S, q.T, q.K, sa, sb, class, len(paths))
		for _, p := range paths {
			fmt.Printf("   %s\n", p)
		}
	}

	// Live updates fan out to every worker atomically per epoch, so the
	// shards never answer from diverging graph versions.
	if _, err := svc.ApplyUpdates([]hcpath.Edge{{Src: 8, Dst: 10}}, nil); err != nil {
		log.Fatal(err)
	}
	paths, _, err := svc.Query(context.Background(), hcpath.Query{S: 1, T: 12, K: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter update (+8→10): q(v1→v12, k=3) has %d paths at epoch %d\n",
		len(paths), svc.Epoch())

	rs := svc.Sharding()
	fmt.Printf("routing: %d single-shard, %d cross-shard, %d shed\n",
		rs.SingleShard, rs.CrossShard, rs.CrossShed)
}
