// Warm restart: a durable query service surviving a crash. The
// liveupdates example keeps its graph in memory — stop the process and
// every settled update is gone. Here the service is opened with a
// DataDir instead: each ApplyUpdates is appended to a CRC-framed
// write-ahead log before its epoch publishes, background checkpoints
// capture the full CSR, and reopening the directory warm-restarts the
// service at the exact pre-crash epoch and edge set.
//
// The demo runs three "process lifetimes" over one data directory:
//
//	life 0  bootstraps the store from a seed graph and applies updates
//	life 1  crashes — updates applied, but no Close, no checkpoint
//	life 2  reopens and proves the crash lost nothing
//
// Each lifetime records the store's State (epoch, sizes, and a
// checksum over the canonical CSR serialization); the recovery must
// reproduce the pre-crash state field for field.
//
//	go run ./examples/warmrestart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"

	hcpath "repro"
)

const (
	numVertices = 500
	numEdges    = 2500
	waves       = 40 // update waves per lifetime
	waveSize    = 8  // edge changes per wave
)

func main() {
	dir, err := os.MkdirTemp("", "hcpath-warmrestart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	rng := rand.New(rand.NewSource(7))
	randomVertex := func() hcpath.VertexID { return hcpath.VertexID(rng.Intn(numVertices)) }
	var edges []hcpath.Edge
	for i := 0; i < numEdges; i++ {
		if a, b := randomVertex(), randomVertex(); a != b {
			edges = append(edges, hcpath.Edge{Src: a, Dst: b})
		}
	}
	seed, err := hcpath.NewGraph(numVertices, edges)
	if err != nil {
		log.Fatal(err)
	}

	opts := &hcpath.ServiceOptions{
		DataDir: dir,
		// FsyncAlways (the default) makes every acknowledged update
		// crash-proof; FsyncInterval trades a bounded window of recent
		// updates for near-in-memory append latency.
		Fsync: hcpath.FsyncAlways,
		// A real crash kills background compaction with the process;
		// this demo only abandons the service in-process, so background
		// work must be off for the "crash" to be faithful.
		CompactAfter: -1,
	}

	// Life 0: bootstrap from the seed graph, apply updates, close
	// cleanly (Close writes a final checkpoint).
	svc, err := hcpath.OpenService(seed, opts)
	if err != nil {
		log.Fatal(err)
	}
	applyWaves(svc, rng, "life 0")
	st0 := svc.State()
	if err := svc.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("life 0 closed at  %s\n", fmtState(st0))

	// Life 1: reopen (the seed graph is ignored — the directory wins),
	// apply more updates, then "crash": the process keeps running, but
	// the service is simply abandoned. No Close, no final checkpoint;
	// the WAL alone carries everything since the last snapshot.
	svc, err = hcpath.OpenService(nil, opts)
	if err != nil {
		log.Fatal(err)
	}
	if got := svc.State(); got != st0 {
		log.Fatalf("clean reopen diverged: %s vs %s", fmtState(got), fmtState(st0))
	}
	applyWaves(svc, rng, "life 1")
	st1 := svc.State()
	fmt.Printf("life 1 crashed at %s\n", fmtState(st1))
	// (crash: svc leaks, exactly like a killed process)

	// Life 2: warm restart. Recovery loads the newest valid snapshot
	// and replays the WAL tail, reaching the pre-crash state exactly.
	svc, err = hcpath.OpenService(nil, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	st2 := svc.State()
	fmt.Printf("life 2 recovered  %s\n", fmtState(st2))
	if st2 != st1 {
		log.Fatalf("recovery lost data: %s vs %s", fmtState(st2), fmtState(st1))
	}

	// The recovered service answers queries like any other.
	q := hcpath.Query{S: 0, T: 11, K: 4}
	count, _, err := svc.Count(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	tot := svc.Totals()
	fmt.Printf("recovered service: %d paths for (s=%d, t=%d, k=%d); %d WAL records, snapshot epoch %d\n",
		count, q.S, q.T, q.K, tot.WALRecords, tot.SnapshotEpoch)
	fmt.Println("warm restart: pre-crash and recovered states match")
}

// applyWaves pushes `waves` random update waves through the service.
func applyWaves(svc *hcpath.Service, rng *rand.Rand, label string) {
	for w := 0; w < waves; w++ {
		var adds, dels []hcpath.Edge
		for i := 0; i < waveSize; i++ {
			a, b := hcpath.VertexID(rng.Intn(numVertices)), hcpath.VertexID(rng.Intn(numVertices))
			if a == b {
				continue
			}
			if i%4 == 3 {
				dels = append(dels, hcpath.Edge{Src: a, Dst: b})
			} else {
				adds = append(adds, hcpath.Edge{Src: a, Dst: b})
			}
		}
		if _, err := svc.ApplyUpdates(adds, dels); err != nil {
			log.Fatalf("%s wave %d: %v", label, w, err)
		}
	}
}

func fmtState(st hcpath.StoreState) string {
	return fmt.Sprintf("epoch %d, n %d, m %d, crc %08x", st.Epoch, st.NumVertices, st.NumEdges, st.Checksum)
}
