// Live graph updates: the fraud-detection workload without the process
// restart. Real transaction networks mutate continuously — every
// settled payment is a new edge, chargebacks remove them — while cycle
// checks keep arriving. The versioned store behind Service.ApplyUpdates
// makes both sides cheap: an update merges only the touched adjacency
// rows into a compact delta and swaps the new epoch in atomically, so
// queries in flight finish on their snapshot, the next micro-batch sees
// the new graph, and the cross-batch index cache can never serve a
// stale (pre-update) distance map. When the delta grows past a
// threshold it is folded into a fresh CSR in the background.
//
//	go run ./examples/liveupdates
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"

	hcpath "repro"
)

const (
	numAccounts = 2000
	numPayments = 8000
	maxHops     = 4
	windows     = 6  // settlement windows to process
	windowTxns  = 30 // new payments (edge adds) per window
	windowDrops = 10 // chargebacks (edge deletes) per window
	checks      = 25 // concurrent cycle checks per window
)

func main() {
	rng := rand.New(rand.NewSource(42))
	randomAccount := func() hcpath.VertexID { return hcpath.VertexID(rng.Intn(numAccounts)) }

	var edges []hcpath.Edge
	for i := 0; i < numPayments; i++ {
		if a, b := randomAccount(), randomAccount(); a != b {
			edges = append(edges, hcpath.Edge{Src: a, Dst: b})
		}
	}
	g, err := hcpath.NewGraph(numAccounts, edges)
	if err != nil {
		log.Fatal(err)
	}

	svc := hcpath.NewService(g, &hcpath.ServiceOptions{
		MaxBatch:     checks,
		CompactAfter: 100, // small threshold so the demo shows a fold
	})
	defer svc.Close()

	for w := 0; w < windows; w++ {
		// The window settles: new payments land, some earlier ones are
		// charged back. One ApplyUpdates publishes the whole window.
		var adds, dels []hcpath.Edge
		for i := 0; i < windowTxns; i++ {
			adds = append(adds, hcpath.Edge{Src: randomAccount(), Dst: randomAccount()})
		}
		for i := 0; i < windowDrops; i++ {
			e := edges[rng.Intn(len(edges))]
			dels = append(dels, e)
		}
		epoch, err := svc.ApplyUpdates(adds, dels)
		if err != nil {
			log.Fatal(err)
		}

		// Concurrent cycle checks against the freshly published epoch:
		// each new payment (t → s) asks for s ⇝ t paths; the service
		// micro-batches whatever arrives together.
		var wg sync.WaitGroup
		var mu sync.Mutex
		flagged := 0
		for i := 0; i < checks; i++ {
			tx := adds[rng.Intn(len(adds))]
			if tx.Src == tx.Dst {
				continue
			}
			wg.Add(1)
			go func(q hcpath.Query) {
				defer wg.Done()
				count, _, err := svc.Count(context.Background(), q)
				if err != nil {
					log.Print(err)
					return
				}
				if count > 0 {
					mu.Lock()
					flagged++
					mu.Unlock()
				}
			}(hcpath.Query{S: tx.Dst, T: tx.Src, K: maxHops})
		}
		wg.Wait()
		fmt.Printf("window %d: +%d/−%d edges → epoch %d; %d/%d checks closed a cycle\n",
			w, len(adds), len(dels), epoch, flagged, checks)
	}

	tot := svc.Totals()
	fmt.Printf("\nfinal epoch %d: %d effective edge changes, %d compactions, %d delta edges pending\n",
		tot.Epoch, tot.UpdatesApplied, tot.Compactions, tot.DeltaEdges)
	fmt.Printf("index cache across epochs: %d hits, %d misses (stale generations evict, never serve)\n",
		tot.IndexHits, tot.IndexMisses)
}
