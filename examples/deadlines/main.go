// Command deadlines demonstrates the partial-result machinery on an
// adversarial workload: a dense random graph where a K=15 query has far
// too many paths to enumerate, bounded three ways —
//
//  1. Options.Limit caps a query's delivered paths (offline engine),
//  2. a context deadline cancels an offline enumeration mid-flight,
//  3. ServiceOptions.QueryTimeout bounds every micro-batch of the
//     online service, so one runaway query cannot hold a batch hostage.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"time"

	hcpath "repro"
)

func main() {
	// A dense random graph: 400 vertices, ~20k edges. Hop-constrained
	// path counts explode combinatorially here.
	const n = 400
	rng := rand.New(rand.NewSource(7))
	var edges []hcpath.Edge
	for i := 0; i < 20000; i++ {
		edges = append(edges, hcpath.Edge{
			Src: hcpath.VertexID(rng.Intn(n)),
			Dst: hcpath.VertexID(rng.Intn(n)),
		})
	}
	g, err := hcpath.NewGraph(n, edges)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Result limit: ask for at most 10 paths of a query with an
	// astronomical result set. The engine stops early, so this is fast.
	eng := hcpath.NewEngine(g, &hcpath.Options{Limit: 10})
	res, err := eng.Enumerate([]hcpath.Query{{S: 0, T: 1, K: 6}})
	if err != nil {
		panic(err)
	}
	fmt.Printf("limit:    %d paths delivered, truncated=%v (%v)\n",
		res.Count(0), res.Truncated(0), res.Err(0))

	// 2. Deadline: give an unbounded K=15 enumeration 25ms. The count
	// returned is a valid lower bound on the true result count.
	unbounded := hcpath.NewEngine(g, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	counts, st, err := unbounded.CountContext(ctx, []hcpath.Query{{S: 0, T: 1, K: 15}})
	fmt.Printf("deadline: stopped after %v with %v; %d paths counted so far, %d queries truncated\n",
		time.Since(t0).Round(time.Millisecond), err, counts[0], st.Truncated)

	// 3. Service QueryTimeout: the online layer bounds every batch.
	svc := hcpath.NewService(g, &hcpath.ServiceOptions{
		QueryTimeout: 50 * time.Millisecond,
	})
	defer svc.Close()
	count, bs, err := svc.Count(context.Background(), hcpath.Query{S: 0, T: 1, K: 15})
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Printf("service:  batch deadline fired; partial count %d (batch truncated %d)\n",
			count, bs.Truncated)
	case err != nil:
		panic(err)
	default:
		fmt.Printf("service:  completed with %d paths\n", count)
	}
}
