// Fraud detection on an e-commerce transaction network (the paper's
// first motivating application, after Qiu et al., VLDB'18): a cycle
// through a new transaction is a strong fraud signal, so when a payment
// from account t to account s arrives, every HC-s-t path from s to t
// closes a constrained cycle with the new edge.
//
// A settlement window delivers transactions in batches, so the cycle
// checks for all of them are issued together — exactly the batch
// HC-s-t path workload BatchEnum+ accelerates.
//
//	go run ./examples/frauddetection
package main

import (
	"fmt"
	"log"
	"math/rand"

	hcpath "repro"
)

const (
	numAccounts  = 3000
	numPayments  = 12000
	ringSize     = 6  // planted fraud rings
	numRings     = 5  //
	batchSize    = 40 // transactions per settlement window
	maxCycleHops = 6  // flag cycles of at most this many edges
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Historic payment graph: mostly organic transfers plus a few
	// planted rings (money moving in a circle through mule accounts).
	var edges []hcpath.Edge
	for i := 0; i < numPayments; i++ {
		a := hcpath.VertexID(rng.Intn(numAccounts))
		b := hcpath.VertexID(rng.Intn(numAccounts))
		if a != b {
			edges = append(edges, hcpath.Edge{Src: a, Dst: b})
		}
	}
	ringMembers := make(map[hcpath.VertexID]bool)
	for r := 0; r < numRings; r++ {
		base := hcpath.VertexID(rng.Intn(numAccounts - ringSize))
		for i := 0; i < ringSize-1; i++ {
			edges = append(edges, hcpath.Edge{Src: base + hcpath.VertexID(i), Dst: base + hcpath.VertexID(i+1)})
			ringMembers[base+hcpath.VertexID(i)] = true
		}
		ringMembers[base+hcpath.VertexID(ringSize-1)] = true
	}
	g, err := hcpath.NewGraph(numAccounts, edges)
	if err != nil {
		log.Fatal(err)
	}

	// Incoming settlement batch: each transaction (t → s) asks whether
	// paths s ⇝ t already exist; if so, the transaction closes a cycle.
	// Ring closures are planted among organic transactions.
	type txn struct{ from, to hcpath.VertexID }
	var batch []txn
	var queries []hcpath.Query
	for i := 0; i < batchSize; i++ {
		var tx txn
		if i < numRings { // the ring's closing payment: last → first
			var members []hcpath.VertexID
			for m := range ringMembers {
				members = append(members, m)
			}
			tx = txn{from: members[rng.Intn(len(members))], to: members[rng.Intn(len(members))]}
		} else {
			tx = txn{from: hcpath.VertexID(rng.Intn(numAccounts)), to: hcpath.VertexID(rng.Intn(numAccounts))}
		}
		if tx.from == tx.to {
			continue
		}
		batch = append(batch, tx)
		// The cycle through edge (from → to) is a path to ⇝ from plus
		// the new edge: query s = tx.to, t = tx.from.
		queries = append(queries, hcpath.Query{S: tx.to, T: tx.from, K: maxCycleHops - 1})
	}

	eng := hcpath.NewEngine(g, nil)
	counts, st, err := eng.Count(queries)
	if err != nil {
		log.Fatal(err)
	}

	flagged := 0
	for i, c := range counts {
		if c > 0 {
			flagged++
			if flagged <= 8 {
				fmt.Printf("FLAG txn %d (account %d → %d): closes %d cycle(s) of ≤ %d hops\n",
					i, batch[i].from, batch[i].to, c, maxCycleHops)
			}
		}
	}
	fmt.Printf("\nsettlement window: %d transactions, %d flagged as cycle-closing\n", len(batch), flagged)
	fmt.Printf("batch processing: %d groups, %d shared sub-queries, %d spliced partial paths\n",
		st.Groups, st.SharedQueries, st.SplicedPaths)
}
