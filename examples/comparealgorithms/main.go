// Compare the paper's four engines (and parallel execution) on one
// batch: a transaction-network-style graph with a duplicate-heavy
// workload, the regime where batch sharing pays. Prints a small table of
// wall-clock times and sharing statistics so adopters can judge which
// engine fits their workload.
//
//	go run ./examples/comparealgorithms
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	hcpath "repro"
)

const (
	numVertices = 4000
	numEdges    = 20000
	batchSize   = 80
	hotPairs    = 6 // recurring (s,t) pairs, as in fraud re-checks
	maxHops     = 5
)

func main() {
	rng := rand.New(rand.NewSource(42))
	edges := make([]hcpath.Edge, 0, numEdges)
	for i := 0; i < numEdges; i++ {
		a := hcpath.VertexID(rng.Intn(numVertices))
		b := hcpath.VertexID(rng.Intn(numVertices))
		if a != b {
			edges = append(edges, hcpath.Edge{Src: a, Dst: b})
		}
	}
	g, err := hcpath.NewGraph(numVertices, edges)
	if err != nil {
		log.Fatal(err)
	}

	// The batch: most queries revisit a few hot (s, t) pairs — the
	// shape produced by recurring fraud checks or hub-entity features.
	hot := make([]hcpath.Query, hotPairs)
	for i := range hot {
		hot[i] = hcpath.Query{
			S: hcpath.VertexID(rng.Intn(numVertices)),
			T: hcpath.VertexID(rng.Intn(numVertices)),
			K: maxHops,
		}
	}
	queries := make([]hcpath.Query, batchSize)
	for i := range queries {
		if rng.Intn(4) > 0 { // 75% hot repeats
			queries[i] = hot[rng.Intn(hotPairs)]
		} else {
			queries[i] = hcpath.Query{
				S: hcpath.VertexID(rng.Intn(numVertices)),
				T: hcpath.VertexID(rng.Intn(numVertices)),
				K: maxHops,
			}
		}
		if queries[i].S == queries[i].T {
			queries[i].T = (queries[i].T + 1) % numVertices
		}
	}

	type config struct {
		name string
		opts hcpath.Options
	}
	configs := []config{
		{"BasicEnum", hcpath.Options{Algorithm: hcpath.BasicEnum}},
		{"BasicEnum+", hcpath.Options{Algorithm: hcpath.BasicEnumPlus}},
		{"BatchEnum", hcpath.Options{Algorithm: hcpath.BatchEnum}},
		{"BatchEnum+", hcpath.Options{Algorithm: hcpath.BatchEnumPlus}},
		{"BatchEnum+ (no sharing)", hcpath.Options{Algorithm: hcpath.BatchEnumPlus, DisableSharing: true}},
		{"BatchEnum+ (parallel)", hcpath.Options{Algorithm: hcpath.BatchEnumPlus, Workers: -1}},
	}

	fmt.Printf("%-26s %12s %10s %8s %8s\n", "engine", "time", "paths", "shared", "spliced")
	for _, c := range configs {
		eng := hcpath.NewEngine(g, &c.opts)
		t0 := time.Now()
		counts, st, err := eng.Count(queries)
		if err != nil {
			log.Fatal(err)
		}
		var total int64
		for _, n := range counts {
			total += n
		}
		fmt.Printf("%-26s %12s %10d %8d %8d\n",
			c.name, time.Since(t0).Round(10*time.Microsecond), total, st.SharedQueries, st.SplicedPaths)
	}
}
