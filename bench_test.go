// Benchmarks regenerating every table and figure of the paper's
// evaluation (§V), one benchmark per artifact, at a reduced scale that
// keeps a full `go test -bench=. -benchmem` run tractable. The
// cmd/experiments binary runs the same drivers at full stand-in scale;
// EXPERIMENTS.md records paper-vs-measured results.
//
// The BenchmarkEngines group is the ablation the paper's evaluation
// implies: the four engines on one shared workload, plus BatchEnum+
// with sharing disabled (isolating the gain from dominating HC-s path
// query reuse).
package hcpath

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/batchenum"
	"repro/internal/datasets"
	"repro/internal/exps"
	"repro/internal/query"
	"repro/internal/sharegraph"
	"repro/internal/workload"
)

// benchCfg is the reduced-scale configuration every figure bench uses:
// two contrasting stand-ins (dense EP, sparse BK), small batches.
func benchCfg() exps.Config {
	return exps.Config{
		Datasets:         []string{"EP", "BK"},
		Scale:            0.25,
		QuerySetSize:     20,
		KMin:             3,
		KMax:             5,
		Seed:             1,
		MaxKSPExpansions: 200_000,
	}
}

// BenchmarkTable1Stats regenerates Table I (dataset statistics).
func BenchmarkTable1Stats(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := exps.Table1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3cMaterialize regenerates Fig. 3(c): per-query
// enumeration vs materialised-scan time.
func BenchmarkFig3cMaterialize(b *testing.B) {
	cfg := benchCfg()
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := exps.Fig3c(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ratio = rows[0].Ratio
	}
	b.ReportMetric(ratio, "enum/scan-ratio")
}

// BenchmarkExp1Similarity regenerates Fig. 7: the similarity sweep with
// all five algorithms.
func BenchmarkExp1Similarity(b *testing.B) {
	cfg := benchCfg()
	cfg.Datasets = []string{"EP"}
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := exps.Exp1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		speedup = rows[len(rows)-1].Speedup
	}
	b.ReportMetric(speedup, "speedup@0.9")
}

// BenchmarkExp2QuerySetSize regenerates Fig. 8: time vs |Q|.
func BenchmarkExp2QuerySetSize(b *testing.B) {
	cfg := benchCfg()
	cfg.Datasets = []string{"EP"}
	cfg.QuerySetSize = 10 // sweep runs 1x..5x this
	for i := 0; i < b.N; i++ {
		if _, err := exps.Exp2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExp3Decomposition regenerates Fig. 9: the four-phase time
// decomposition of BatchEnum+.
func BenchmarkExp3Decomposition(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := exps.Exp3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExp4Gamma regenerates Fig. 10: the γ sweep.
func BenchmarkExp4Gamma(b *testing.B) {
	cfg := benchCfg()
	cfg.Datasets = []string{"EP"}
	for i := 0; i < b.N; i++ {
		if _, err := exps.Exp4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExp5Scalability regenerates Fig. 11: the vertex-sampling
// scalability sweep.
func BenchmarkExp5Scalability(b *testing.B) {
	cfg := benchCfg()
	cfg.Datasets = []string{"EP"}
	for i := 0; i < b.N; i++ {
		if _, err := exps.Exp5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExp6KSP regenerates Fig. 12: the adapted k-shortest-path
// baselines against BatchEnum+.
func BenchmarkExp6KSP(b *testing.B) {
	cfg := benchCfg()
	cfg.Datasets = []string{"BK"}
	cfg.QuerySetSize = 10
	for i := 0; i < b.N; i++ {
		if _, err := exps.Exp6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExp7PathCounts regenerates Fig. 13: result-set growth vs k.
func BenchmarkExp7PathCounts(b *testing.B) {
	cfg := benchCfg()
	cfg.Datasets = []string{"EP"}
	cfg.QuerySetSize = 10
	for i := 0; i < b.N; i++ {
		if _, err := exps.Exp7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFixture caches one graph and one similarity-heavy workload
// shared by the engine ablation benches.
type benchFixture struct {
	g  *Graph
	qs []query.Query
}

var fixture *benchFixture

func engineFixture(b *testing.B) (*Graph, []query.Query) {
	b.Helper()
	if fixture == nil {
		spec, err := datasets.ByCode("EP")
		if err != nil {
			b.Fatal(err)
		}
		raw := spec.Build(0.25)
		qs, _, err := workload.WithSimilarity(raw, raw.Reverse(), workload.SimilarityConfig{
			Config:   workload.Config{N: 20, KMin: 3, KMax: 5, Seed: 1},
			TargetMu: 0.8,
		})
		if err != nil {
			b.Fatal(err)
		}
		fixture = &benchFixture{g: wrap(raw), qs: qs}
	}
	return fixture.g, fixture.qs
}

// serviceFixture caches a larger similarity-heavy workload, in public
// Query form, for the serving benchmarks.
type serviceFixtureT struct {
	g  *Graph
	qs []Query
}

var svcFixture *serviceFixtureT

func serviceWorkload(b *testing.B) (*Graph, []Query) {
	b.Helper()
	if svcFixture == nil {
		spec, err := datasets.ByCode("EP")
		if err != nil {
			b.Fatal(err)
		}
		raw := spec.Build(0.25)
		iqs, _, err := workload.WithSimilarity(raw, raw.Reverse(), workload.SimilarityConfig{
			Config:   workload.Config{N: 200, KMin: 3, KMax: 5, Seed: 1},
			TargetMu: 0.8,
		})
		if err != nil {
			b.Fatal(err)
		}
		qs := make([]Query, len(iqs))
		for i, q := range iqs {
			qs[i] = Query{S: q.S, T: q.T, K: int(q.K)}
		}
		svcFixture = &serviceFixtureT{g: wrap(raw), qs: qs}
	}
	return svcFixture.g, svcFixture.qs
}

// BenchmarkServiceThroughput is the serving ablation the paper's
// motivation implies: the same concurrent clients answered one query at
// a time (each paying its own index build and sharing nothing) versus
// through the micro-batching Service (concurrent queries coalesced and
// answered by BatchEnum+ with shared sub-queries). Both sides run in
// count mode; queries/s is the headline metric, and the service side
// also reports its mean coalescing and sharing ratio.
func BenchmarkServiceThroughput(b *testing.B) {
	g, qs := serviceWorkload(b)
	const clients = 16

	b.Run("OneAtATime", func(b *testing.B) {
		eng := NewEngine(g, nil) // BatchEnum+ degenerates to one group of one
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for j := c; j < len(qs); j += clients {
						if _, _, err := eng.Count(qs[j : j+1]); err != nil {
							b.Error(err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
		}
		b.ReportMetric(float64(b.N)*float64(len(qs))/b.Elapsed().Seconds(), "queries/s")
	})

	b.Run("Microbatched", func(b *testing.B) {
		var queries, batches, groups int64
		for i := 0; i < b.N; i++ {
			// MaxBatch matched to the closed-loop concurrency so batches
			// dispatch on the size trigger, not the wait window.
			svc := NewService(g, &ServiceOptions{
				MaxBatch: clients,
				MaxWait:  time.Millisecond,
			})
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for j := c; j < len(qs); j += clients {
						if _, _, err := svc.Count(context.Background(), qs[j]); err != nil {
							b.Error(err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			tot := svc.Totals()
			svc.Close()
			queries += tot.Queries
			batches += tot.Batches
			groups += tot.Groups
		}
		b.ReportMetric(float64(b.N)*float64(len(qs))/b.Elapsed().Seconds(), "queries/s")
		b.ReportMetric(float64(queries)/float64(batches), "queries/batch")
		b.ReportMetric(1-float64(groups)/float64(queries), "sharing-ratio")
	})
}

// zipfFixture caches a repeated-endpoint (Zipfian popularity) workload,
// the traffic shape the cross-batch index cache targets.
type zipfFixtureT struct {
	g  *Graph
	qs []Query
}

var zipfFixture *zipfFixtureT

func zipfWorkload(b *testing.B) (*Graph, []Query) {
	b.Helper()
	if zipfFixture == nil {
		spec, err := datasets.ByCode("EP")
		if err != nil {
			b.Fatal(err)
		}
		raw := spec.Build(0.25)
		iqs, err := workload.Zipfian(raw, workload.ZipfianConfig{
			Config: workload.Config{N: 320, KMin: 4, KMax: 5, Seed: 3},
			Hot:    24,
		})
		if err != nil {
			b.Fatal(err)
		}
		qs := make([]Query, len(iqs))
		for i, q := range iqs {
			qs[i] = Query{S: q.S, T: q.T, K: int(q.K)}
		}
		zipfFixture = &zipfFixtureT{g: wrap(raw), qs: qs}
	}
	return zipfFixture.g, zipfFixture.qs
}

// BenchmarkServiceCachedThroughput isolates the cross-batch index
// cache: the same repeated-endpoint traffic served by a cold service
// (every micro-batch rebuilds its hop-distance maps) versus a cached
// one (popular endpoints reuse maps built by earlier batches). Both
// sides run the identical micro-batching pipeline in count mode, so the
// queries/s delta is the index provider's contribution alone; the
// cached side also reports its probe hit ratio.
func BenchmarkServiceCachedThroughput(b *testing.B) {
	g, qs := zipfWorkload(b)
	const clients = 16

	run := func(b *testing.B, cacheBytes int64) (hits, misses int64) {
		for i := 0; i < b.N; i++ {
			svc := NewService(g, &ServiceOptions{
				Options:  Options{IndexCacheBytes: cacheBytes},
				MaxBatch: clients,
				MaxWait:  time.Millisecond,
			})
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for j := c; j < len(qs); j += clients {
						if _, _, err := svc.Count(context.Background(), qs[j]); err != nil {
							b.Error(err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			tot := svc.Totals()
			svc.Close()
			hits += tot.IndexHits
			misses += tot.IndexMisses
		}
		b.ReportMetric(float64(b.N)*float64(len(qs))/b.Elapsed().Seconds(), "queries/s")
		return hits, misses
	}

	b.Run("Cold", func(b *testing.B) {
		if hits, _ := run(b, -1); hits != 0 {
			b.Fatalf("cold service reported %d cache hits", hits)
		}
	})
	b.Run("Cached", func(b *testing.B) {
		hits, misses := run(b, 0) // default budget
		b.ReportMetric(float64(hits)/float64(max(hits+misses, 1)), "hit-ratio")
	})
}

// mixedFixtureT caches the planner benchmark's workload: a mix of
// repeated-endpoint hot traffic (high Γ-overlap, the sharing engines'
// best case — these queries cluster into large groups) and independent
// random queries (low overlap — mostly singleton groups where the
// sharing pipeline's detection is pure overhead). No fixed engine wins
// both halves; the planner's job is to route each group to the engine
// that wins its half.
type mixedFixtureT struct {
	g  *Graph
	qs []Query
}

var mixedFixture *mixedFixtureT

func mixedWorkload(b *testing.B) (*Graph, []Query) {
	b.Helper()
	if mixedFixture == nil {
		spec, err := datasets.ByCode("EP")
		if err != nil {
			b.Fatal(err)
		}
		raw := spec.Build(0.25)
		hot, err := workload.Zipfian(raw, workload.ZipfianConfig{
			Config: workload.Config{N: 160, KMin: 4, KMax: 5, Seed: 5},
			Hot:    12,
		})
		if err != nil {
			b.Fatal(err)
		}
		rnd, err := workload.Random(raw, workload.Config{N: 160, KMin: 3, KMax: 5, Seed: 6})
		if err != nil {
			b.Fatal(err)
		}
		qs := make([]Query, 0, len(hot)+len(rnd))
		for i := range hot { // interleave so every micro-batch mixes both shapes
			qs = append(qs,
				Query{S: hot[i].S, T: hot[i].T, K: int(hot[i].K)},
				Query{S: rnd[i].S, T: rnd[i].T, K: int(rnd[i].K)})
		}
		mixedFixture = &mixedFixtureT{g: wrap(raw), qs: qs}
	}
	return mixedFixture.g, mixedFixture.qs
}

// BenchmarkServicePlannedThroughput is the planner ablation on the
// mixed workload: the identical micro-batching service in count mode,
// fixed BatchEnum+ for every group versus adaptive per-group planning.
// queries/s is the headline metric; the planned side also reports how
// its groups were routed. Result sets are equal by construction (the
// scenario and fuzz differential suites prove it); only the work
// differs.
func BenchmarkServicePlannedThroughput(b *testing.B) {
	g, qs := mixedWorkload(b)
	const clients = 16

	run := func(b *testing.B, popts *PlannerOptions) PlanStats {
		var plan PlanStats
		for i := 0; i < b.N; i++ {
			svc := NewService(g, &ServiceOptions{
				MaxBatch: clients,
				MaxWait:  time.Millisecond,
				Planner:  popts,
			})
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for j := c; j < len(qs); j += clients {
						if _, _, err := svc.Count(context.Background(), qs[j]); err != nil {
							b.Error(err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			tot := svc.Totals()
			svc.Close()
			plan.Add(tot.Plan)
		}
		b.ReportMetric(float64(b.N)*float64(len(qs))/b.Elapsed().Seconds(), "queries/s")
		return plan
	}

	b.Run("Fixed", func(b *testing.B) {
		plan := run(b, nil)
		if plan.SingleGroups+plan.SpliceGroups != 0 {
			b.Fatalf("fixed service routed groups through the planner: %+v", plan)
		}
	})
	b.Run("Planned", func(b *testing.B) {
		plan := run(b, &PlannerOptions{})
		total := plan.SingleGroups + plan.SharedGroups + plan.SpliceGroups
		b.ReportMetric(float64(plan.SingleGroups)/float64(max(total, 1)), "single-group-ratio")
	})
}

// BenchmarkShardedThroughput measures the in-process sharded
// deployment against the single-process service on the same concurrent
// closed-loop workload: identical clients, count mode, the service's
// default engine. The sharded side reports how its traffic split
// between forwarded single-shard queries (which micro-batch per
// worker) and scatter-gather cross-shard joins.
func BenchmarkShardedThroughput(b *testing.B) {
	g, qs := serviceWorkload(b)
	const clients = 16

	run := func(b *testing.B, shards int) ShardingStats {
		var rs ShardingStats
		for i := 0; i < b.N; i++ {
			svc := NewService(g, &ServiceOptions{
				MaxBatch: clients,
				MaxWait:  time.Millisecond,
				Shards:   shards,
			})
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for j := c; j < len(qs); j += clients {
						if _, _, err := svc.Count(context.Background(), qs[j]); err != nil {
							b.Error(err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			cur := svc.Sharding()
			svc.Close()
			rs.Shards = cur.Shards
			rs.SingleShard += cur.SingleShard
			rs.CrossShard += cur.CrossShard
			rs.CrossShed += cur.CrossShed
		}
		b.ReportMetric(float64(b.N)*float64(len(qs))/b.Elapsed().Seconds(), "queries/s")
		return rs
	}

	b.Run("Unsharded", func(b *testing.B) {
		if rs := run(b, 0); rs.Shards != 0 {
			b.Fatalf("unsharded run reported shard routing: %+v", rs)
		}
	})
	b.Run("Shards4", func(b *testing.B) {
		rs := run(b, 4)
		total := rs.SingleShard + rs.CrossShard
		if total != int64(b.N)*int64(len(qs)) {
			b.Fatalf("routing lost queries: %+v, want %d total", rs, int64(b.N)*int64(len(qs)))
		}
		b.ReportMetric(float64(rs.CrossShard)/float64(max(total, 1)), "cross-shard-ratio")
	})
}

// BenchmarkEngines compares the four engines plus the no-sharing
// ablation on one high-similarity workload.
func BenchmarkEngines(b *testing.B) {
	g, qs := engineFixture(b)
	cases := []struct {
		name string
		opts batchenum.Options
	}{
		{"BasicEnum", batchenum.Options{Algorithm: batchenum.Basic}},
		{"BasicEnum+", batchenum.Options{Algorithm: batchenum.BasicPlus}},
		{"BatchEnum", batchenum.Options{Algorithm: batchenum.Batch}},
		{"BatchEnum+", batchenum.Options{Algorithm: batchenum.BatchPlus}},
		{"BatchEnum+NoSharing", batchenum.Options{
			Algorithm: batchenum.BatchPlus,
			Detect:    sharegraph.Options{DisableSharing: true},
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink := query.NewCountSink(len(qs))
				if _, err := batchenum.Run(g.g, g.gr, qs, c.opts, sink); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
