// Command genqueries samples an HC-s-t path query workload from a graph
// file and writes it as "s t k" lines for cmd/hcpath:
//
//	genqueries -graph g.txt -n 100 -o q.txt
//	genqueries -graph g.txt -n 100 -similarity 0.8 -o q.txt
//
// With -similarity the batch's average pairwise similarity µ_Q is
// steered to the target (the Exp-1 workload shape); the achieved µ_Q is
// reported on stderr.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/workload"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file (edge list or .bin)")
		n         = flag.Int("n", 100, "number of queries")
		kmin      = flag.Int("kmin", 4, "minimum hop constraint")
		kmax      = flag.Int("kmax", 7, "maximum hop constraint")
		sim       = flag.Float64("similarity", -1, "target µ_Q in [0,1); negative = plain random")
		seed      = flag.Int64("seed", 1, "workload seed")
		out       = flag.String("o", "", "output path (default stdout)")
	)
	flag.Parse()
	if *graphPath == "" {
		fail("missing -graph")
	}
	g, err := graph.LoadFile(*graphPath)
	if err != nil {
		fail("load graph: %v", err)
	}

	cfg := workload.Config{N: *n, KMin: *kmin, KMax: *kmax, Seed: *seed}
	qs, mu, err := generate(g, cfg, *sim)
	if err != nil {
		fail("%v", err)
	}
	if mu >= 0 {
		fmt.Fprintf(os.Stderr, "generated %d queries, measured µ_Q = %.3f\n", len(qs), mu)
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail("create %s: %v", *out, err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()
	fmt.Fprintf(w, "# %d HC-s-t path queries: s t k\n", len(qs))
	for _, q := range qs {
		fmt.Fprintf(w, "%d %d %d\n", q.S, q.T, q.K)
	}
}

func generate(g *graph.Graph, cfg workload.Config, sim float64) ([]query.Query, float64, error) {
	if sim < 0 {
		qs, err := workload.Random(g, cfg)
		return qs, -1, err
	}
	gr := g.Reverse()
	return workload.WithSimilarity(g, gr, workload.SimilarityConfig{Config: cfg, TargetMu: sim})
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "genqueries: "+format+"\n", args...)
	os.Exit(1)
}
