// Command gengraph writes a synthetic graph to disk, either one of the
// twelve Table I stand-ins or a raw generator invocation:
//
//	gengraph -dataset TW -o tw.txt            # stand-in, edge list
//	gengraph -dataset EP -scale 0.5 -o ep.bin # smaller, binary format
//	gengraph -gen powerlaw -n 10000 -deg 4 -o g.txt
//
// The output format follows the file extension: ".bin" is the compact
// binary CSR format, everything else an edge list.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datasets"
	"repro/internal/graph"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "Table I stand-in code (EP, SL, ...)")
		gen     = flag.String("gen", "", "raw generator: powerlaw, community, cpl, er, grid")
		n       = flag.Int("n", 10000, "vertex count (raw generators)")
		deg     = flag.Int("deg", 4, "out-degree / density parameter")
		comm    = flag.Int("comm", 150, "community size (community/cpl)")
		pin     = flag.Float64("pin", 0.95, "intra-community edge fraction")
		scale   = flag.Float64("scale", 1.0, "stand-in scale factor")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output path (.bin for binary, else edge list)")
	)
	flag.Parse()
	if *out == "" {
		fail("missing -o")
	}

	var g *graph.Graph
	switch {
	case *dataset != "":
		spec, err := datasets.ByCode(*dataset)
		if err != nil {
			fail("%v", err)
		}
		g = spec.Build(*scale)
	case *gen != "":
		switch *gen {
		case "powerlaw":
			g = graph.GenPowerLaw(*n, *deg, *seed)
		case "community":
			g = graph.GenCommunity(*n, (*n+*comm-1) / *comm, *deg, *pin, *seed)
		case "cpl":
			g = graph.GenCommunityPowerLaw(*n, *comm, *deg, *pin, *seed)
		case "er":
			g = graph.GenErdosRenyi(*n, *n**deg, *seed)
		case "grid":
			g = graph.GenGrid(*n, *n)
		default:
			fail("unknown generator %q (want powerlaw, community, cpl, er, grid)", *gen)
		}
	default:
		fail("need -dataset or -gen")
	}

	if err := graph.SaveFile(*out, g); err != nil {
		fail("write %s: %v", *out, err)
	}
	st := graph.ComputeStats(g)
	fmt.Printf("wrote %s: %s\n", *out, st)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "gengraph: "+format+"\n", args...)
	os.Exit(1)
}
