// Command experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic stand-in datasets:
//
//	experiments -exp all                 # the full evaluation
//	experiments -exp exp1 -datasets EP   # one experiment, one dataset
//	experiments -exp table1,fig3c        # a comma-separated subset
//
// Available experiments: table1, fig3c, exp1 (similarity sweep, Fig. 7),
// exp2 (query set size, Fig. 8), exp3 (time decomposition, Fig. 9),
// exp4 (γ sweep, Fig. 10), exp5 (scalability, Fig. 11), exp6 (KSP
// comparison, Fig. 12), exp7 (path counts vs k, Fig. 13).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exps"
)

var runners = []struct {
	name string
	desc string
	run  func(exps.Config) error
}{
	{"table1", "Table I: dataset statistics", func(c exps.Config) error { _, err := exps.Table1(c); return err }},
	{"fig3c", "Fig. 3(c): enumeration vs materialisation", func(c exps.Config) error { _, err := exps.Fig3c(c); return err }},
	{"exp1", "Fig. 7: time and speedup vs query similarity", func(c exps.Config) error { _, err := exps.Exp1(c); return err }},
	{"exp2", "Fig. 8: time vs query set size", func(c exps.Config) error { _, err := exps.Exp2(c); return err }},
	{"exp3", "Fig. 9: processing time decomposition", func(c exps.Config) error { _, err := exps.Exp3(c); return err }},
	{"exp4", "Fig. 10: impact of γ", func(c exps.Config) error { _, err := exps.Exp4(c); return err }},
	{"exp5", "Fig. 11: scalability vs graph size", func(c exps.Config) error { _, err := exps.Exp5(c); return err }},
	{"exp6", "Fig. 12: comparison with KSP algorithms", func(c exps.Config) error { _, err := exps.Exp6(c); return err }},
	{"exp7", "Fig. 13: number of paths vs k", func(c exps.Config) error { _, err := exps.Exp7(c); return err }},
}

func main() {
	var (
		expList  = flag.String("exp", "all", "experiments to run: all, or comma-separated names (table1, fig3c, exp1..exp7)")
		dsList   = flag.String("datasets", "", "comma-separated Table I codes (EP, SL, ...); empty = all twelve")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor")
		querySet = flag.Int("queries", 100, "query set size |Q|")
		kmin     = flag.Int("kmin", 4, "minimum hop constraint")
		kmax     = flag.Int("kmax", 7, "maximum hop constraint")
		gamma    = flag.Float64("gamma", 0.5, "clustering threshold γ")
		seed     = flag.Int64("seed", 1, "workload seed")
		kspCap   = flag.Int64("ksp-budget", 0, "Exp-6 baseline expansion budget (0 = default 10M)")
	)
	flag.Parse()

	cfg := exps.Config{
		Scale:            *scale,
		QuerySetSize:     *querySet,
		KMin:             *kmin,
		KMax:             *kmax,
		Gamma:            *gamma,
		Seed:             *seed,
		MaxKSPExpansions: *kspCap,
		Out:              os.Stdout,
	}
	if *dsList != "" {
		cfg.Datasets = strings.Split(*dsList, ",")
	}

	want := map[string]bool{}
	if *expList == "all" {
		for _, r := range runners {
			want[r.name] = true
		}
	} else {
		for _, name := range strings.Split(*expList, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	known := map[string]bool{}
	for _, r := range runners {
		known[r.name] = true
	}
	for name := range want {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available:\n", name)
			for _, r := range runners {
				fmt.Fprintf(os.Stderr, "  %-7s %s\n", r.name, r.desc)
			}
			os.Exit(2)
		}
	}

	for _, r := range runners {
		if !want[r.name] {
			continue
		}
		t0 := time.Now()
		if err := r.run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "[%s completed in %v]\n", r.name, time.Since(t0).Round(time.Millisecond))
	}
}
