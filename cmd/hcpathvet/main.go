// Command hcpathvet runs the repository's custom static analyzers —
// ctrlpoll, epochbind, statsmerge, locksend, hotalloc — over package
// patterns, printing one line per finding and exiting non-zero when any
// invariant is violated. It is the local pre-push check:
//
//	go run ./cmd/hcpathvet ./...
//
// and the CI lint job runs the same command. See CONTRIBUTING ("Static
// analysis invariants") for what each analyzer enforces and how to
// annotate deliberate exceptions.
//
// The binary also speaks the go vet unitchecker protocol (-V=full and
// a single *.cfg argument), so a compiled hcpathvet works as
//
//	go vet -vettool=$(which hcpathvet) ./...
//
// In that mode imports are resolved from the export data the go command
// supplies; the standalone mode type-checks everything from source and
// needs no prior build.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/ctrlpoll"
	"repro/internal/analysis/epochbind"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/locksend"
	"repro/internal/analysis/statsmerge"
)

// analyzers is the full suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	ctrlpoll.Analyzer,
	epochbind.Analyzer,
	statsmerge.Analyzer,
	locksend.Analyzer,
	hotalloc.Analyzer,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("hcpathvet: ")

	args := os.Args[1:]
	if len(args) == 1 && args[0] == "-V=full" {
		printVersion()
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		// The go command probes for tool-specific flags before the cfg
		// pass; this suite exposes none.
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}

	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hcpathvet [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(standalone(patterns))
}

// standalone resolves patterns with the go command and type-checks each
// package from source.
func standalone(patterns []string) int {
	pkgs, err := goList(patterns)
	if err != nil {
		log.Print(err)
		return 1
	}
	loader := analysis.NewLoader()
	exit := 0
	for _, p := range pkgs {
		pkg, err := loader.LoadDir(p.dir, p.importPath, false)
		if err != nil {
			log.Print(err)
			exit = 1
			continue
		}
		findings, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			log.Print(err)
			exit = 1
			continue
		}
		for _, f := range findings {
			fmt.Println(f)
			exit = 1
		}
	}
	return exit
}

type listedPkg struct {
	importPath string
	dir        string
}

// goList expands package patterns via `go list`, skipping packages with
// no non-test Go files.
func goList(patterns []string) ([]listedPkg, error) {
	cmdArgs := append([]string{"list", "-f", "{{.ImportPath}}\t{{.Dir}}\t{{len .GoFiles}}"}, patterns...)
	cmd := exec.Command("go", cmdArgs...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []listedPkg
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		parts := strings.Split(line, "\t")
		if len(parts) != 3 || parts[2] == "0" {
			continue
		}
		pkgs = append(pkgs, listedPkg{importPath: parts[0], dir: parts[1]})
	}
	return pkgs, nil
}

// ---------------------------------------------------------------------
// go vet unitchecker protocol
// ---------------------------------------------------------------------

// printVersion answers `hcpathvet -V=full`, which the go command uses
// to key its analysis cache on the tool's identity.
func printVersion() {
	name := filepath.Base(os.Args[0])
	data, err := os.ReadFile(os.Args[0])
	if err != nil {
		fmt.Printf("%s version devel\n", name)
		return
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", name, sha256.Sum256(data))
}

// vetConfig mirrors the JSON the go command hands a -vettool for each
// compilation unit.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck runs the suite over one compilation unit described by a
// vet .cfg file, resolving imports from the export data the go command
// already built.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Print(err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Printf("parsing %s: %v", cfgPath, err)
		return 1
	}
	// The driver requires the facts file to exist even though these
	// analyzers exchange none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Print(err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			log.Print(err)
			return 1
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Print(err)
		return 1
	}
	pkg := &analysis.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	findings, err := analysis.RunAnalyzers(pkg, analyzers)
	if err != nil {
		log.Print(err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
