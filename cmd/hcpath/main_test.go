package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	hcpath "repro"
)

func TestParseAlgo(t *testing.T) {
	cases := map[string]hcpath.Algorithm{
		"batch+":     hcpath.BatchEnumPlus,
		"BatchEnum+": hcpath.BatchEnumPlus,
		"batch":      hcpath.BatchEnum,
		"basic+":     hcpath.BasicEnumPlus,
		"BASIC":      hcpath.BasicEnum,
	}
	for name, want := range cases {
		got, err := parseAlgo(name)
		if err != nil || got != want {
			t.Errorf("parseAlgo(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := parseAlgo("dijkstra"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestLoadQueriesInline(t *testing.T) {
	qs, err := loadQueries("", "4, 14, 4")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 1 || qs[0].S != 4 || qs[0].T != 14 || qs[0].K != 4 {
		t.Fatalf("parsed %+v", qs)
	}
	for _, bad := range []string{"1,2", "a,b,c", "1,2,3,4"} {
		if _, err := loadQueries("", bad); err == nil {
			t.Errorf("inline query %q accepted", bad)
		}
	}
}

func TestLoadQueriesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.txt")
	content := "# header\n0 11 5\n\n2 13 5\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	qs, err := loadQueries(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs[1].S != 2 || qs[1].K != 5 {
		t.Fatalf("parsed %+v", qs)
	}
	// Malformed line.
	badPath := filepath.Join(dir, "bad.txt")
	os.WriteFile(badPath, []byte("1 2\n"), 0o644)
	if _, err := loadQueries(badPath, ""); err == nil {
		t.Error("malformed query file accepted")
	}
	// Empty file.
	emptyPath := filepath.Join(dir, "empty.txt")
	os.WriteFile(emptyPath, []byte("# nothing\n"), 0o644)
	if _, err := loadQueries(emptyPath, ""); err == nil {
		t.Error("empty query file accepted")
	}
	// Missing both sources.
	if _, err := loadQueries("", ""); err == nil {
		t.Error("missing query sources accepted")
	}
}

func TestCacheLine(t *testing.T) {
	if got := cacheLine(hcpath.ServiceTotals{}); got != "index cache: no probes" {
		t.Errorf("empty totals: %q", got)
	}
	got := cacheLine(hcpath.ServiceTotals{
		IndexHits: 150, IndexMisses: 50, IndexWidened: 10,
		IndexEvictions: 3, IndexCacheBytes: 2 << 20,
	})
	want := "index cache: 75.0% hit ratio (150 hits, 50 misses, 10 widened), 3 evictions, 2.0 MiB"
	if got != want {
		t.Errorf("cacheLine = %q, want %q", got, want)
	}
}

func TestLoadOps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ops.txt")
	content := "# warmup\nquery 0 11 5\nadd 3 7\na 7 3\ndel 0 1\nq 0 11 5\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	ops, err := loadOps(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 5 {
		t.Fatalf("parsed %d ops, want 5", len(ops))
	}
	if !ops[1].add || ops[1].edge != (hcpath.Edge{Src: 3, Dst: 7}) {
		t.Fatalf("op 1 = %+v", ops[1])
	}
	if !ops[3].del || ops[3].edge != (hcpath.Edge{Src: 0, Dst: 1}) {
		t.Fatalf("op 3 = %+v", ops[3])
	}
	if ops[4].add || ops[4].del || ops[4].q.K != 5 {
		t.Fatalf("op 4 = %+v", ops[4])
	}
	for _, bad := range []string{"swap 1 2\n", "add 1\n", "query 1 2\n", "add x y\n"} {
		badPath := filepath.Join(dir, "bad.txt")
		if err := os.WriteFile(badPath, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := loadOps(badPath); err == nil {
			t.Errorf("ops %q accepted", bad)
		}
	}
}

// TestHelperProcess re-enters main() when the parent test execs this
// binary, turning the test executable into the real CLI. The standard
// helper-process pattern: guarded by an env var so a normal test run
// skips it.
func TestHelperProcess(t *testing.T) {
	if os.Getenv("HCPATH_HELPER") != "1" {
		t.Skip("helper process only")
	}
	os.Args = append([]string{"hcpath"}, strings.Split(os.Getenv("HCPATH_ARGS"), "\n")...)
	flag.CommandLine = flag.NewFlagSet("hcpath", flag.ExitOnError)
	main()
	os.Exit(0) // a clean main() must not fall through to other tests
}

// runCLI execs the CLI (via TestHelperProcess) and returns its combined
// output and exit code.
func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperProcess")
	cmd.Env = append(os.Environ(), "HCPATH_HELPER=1", "HCPATH_ARGS="+strings.Join(args, "\n"))
	out, err := cmd.CombinedOutput()
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("exec: %v\n%s", err, out)
		}
		return string(out), ee.ExitCode()
	}
	return string(out), 0
}

// stateLine extracts the final "state: ..." report from a CLI run.
func stateLine(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "state: ") {
			return line
		}
	}
	t.Fatalf("no state line in output:\n%s", out)
	return ""
}

// TestUpdateReplayRestart is the CLI acceptance test for durability: an
// update replay killed mid-run (repeatedly — crash, resume, crash
// again) must, after its final restart, report exactly the state of an
// uninterrupted run over the same file.
func TestUpdateReplayRestart(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.txt")
	opsPath := filepath.Join(dir, "ops.txt")
	if err := os.WriteFile(graphPath, []byte("0 1\n1 2\n2 3\n3 4\n0 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Four mutation blocks separated by query waves.
	ops := `query 0 3 4
add 1 3
add 2 4
query 0 4 4
del 0 2
query 0 3 4
add 0 4
del 1 2
query 0 4 5
add 3 0
query 2 0 4
`
	if err := os.WriteFile(opsPath, []byte(ops), 0o644); err != nil {
		t.Fatal(err)
	}
	// Compaction epochs depend on timing unless disabled, and the state
	// comparison needs bit-identical epochs across processes.
	common := []string{"-updates", opsPath, "-compactafter", "-1", "-fsync", "always"}

	fullOut, code := runCLI(t, append([]string{"-graph", graphPath, "-datadir", filepath.Join(dir, "d-full")}, common...)...)
	if code != 0 {
		t.Fatalf("uninterrupted run exited %d:\n%s", code, fullOut)
	}
	want := stateLine(t, fullOut)

	// Crash after every single applied block, resuming each time.
	crashDir := filepath.Join(dir, "d-crash")
	for round := 0; ; round++ {
		if round > 8 {
			t.Fatal("replay never finished despite resuming")
		}
		args := append([]string{"-datadir", crashDir, "-crashafter", "1"}, common...)
		if round == 0 {
			args = append([]string{"-graph", graphPath}, args...)
		}
		out, code := runCLI(t, args...)
		if code == 0 {
			if got := stateLine(t, out); got != want {
				t.Fatalf("state after %d crash/restart rounds:\n  %s\nuninterrupted run:\n  %s", round, got, want)
			}
			if round == 0 {
				t.Fatal("first run finished without crashing; -crashafter did not fire")
			}
			if !strings.Contains(out, "recovered: ") {
				t.Fatalf("final resume did not report recovery:\n%s", out)
			}
			break
		}
		if code != 137 {
			t.Fatalf("round %d exited %d, want 137 (simulated crash):\n%s", round, code, out)
		}
		if !strings.Contains(out, "crash: exiting after 1 applied update blocks") {
			t.Fatalf("round %d crashed without the crash report:\n%s", round, out)
		}
	}
}

// TestUpdateReplaySurvivesSIGKILL is the same property under a real
// kill -9: no simulated exit path, the process is killed from outside
// while applying updates, and the restart must still converge to the
// uninterrupted run's state.
func TestUpdateReplaySurvivesSIGKILL(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.txt")
	opsPath := filepath.Join(dir, "ops.txt")
	if err := os.WriteFile(graphPath, []byte("0 1\n1 2\n2 3\n3 4\n0 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Many small blocks so the kill lands mid-replay; a trailing marker
	// block distinguishes a finished run.
	var sb strings.Builder
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&sb, "add %d %d\nquery 0 4 4\n", i%5, 5+i%7)
		fmt.Fprintf(&sb, "del %d %d\nquery 0 4 4\n", i%5, 5+i%7)
	}
	sb.WriteString("add 4 11\nquery 0 4 4\n")
	if err := os.WriteFile(opsPath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	common := []string{"-updates", opsPath, "-compactafter", "-1", "-fsync", "always"}

	fullOut, code := runCLI(t, append([]string{"-graph", graphPath, "-datadir", filepath.Join(dir, "d-full")}, common...)...)
	if code != 0 {
		t.Fatalf("uninterrupted run exited %d:\n%s", code, fullOut)
	}
	want := stateLine(t, fullOut)

	crashDir := filepath.Join(dir, "d-kill")
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperProcess")
	args := append([]string{"-graph", graphPath, "-datadir", crashDir}, common...)
	cmd.Env = append(os.Environ(), "HCPATH_HELPER=1", "HCPATH_ARGS="+strings.Join(args, "\n"))
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Give the replay time to apply some blocks, then kill -9.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(crashDir, "wal-00000000000000000000.log")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("replay never created its WAL")
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(300 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // reap; exit status is the signal, not interesting

	out, code := runCLI(t, append([]string{"-datadir", crashDir}, common...)...)
	if code != 0 {
		t.Fatalf("restart exited %d:\n%s", code, out)
	}
	if got := stateLine(t, out); got != want {
		t.Fatalf("state after kill -9 and restart:\n  %s\nuninterrupted run:\n  %s", got, want)
	}
}
