package main

import (
	"os"
	"path/filepath"
	"testing"

	hcpath "repro"
)

func TestParseAlgo(t *testing.T) {
	cases := map[string]hcpath.Algorithm{
		"batch+":     hcpath.BatchEnumPlus,
		"BatchEnum+": hcpath.BatchEnumPlus,
		"batch":      hcpath.BatchEnum,
		"basic+":     hcpath.BasicEnumPlus,
		"BASIC":      hcpath.BasicEnum,
	}
	for name, want := range cases {
		got, err := parseAlgo(name)
		if err != nil || got != want {
			t.Errorf("parseAlgo(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := parseAlgo("dijkstra"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestLoadQueriesInline(t *testing.T) {
	qs, err := loadQueries("", "4, 14, 4")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 1 || qs[0].S != 4 || qs[0].T != 14 || qs[0].K != 4 {
		t.Fatalf("parsed %+v", qs)
	}
	for _, bad := range []string{"1,2", "a,b,c", "1,2,3,4"} {
		if _, err := loadQueries("", bad); err == nil {
			t.Errorf("inline query %q accepted", bad)
		}
	}
}

func TestLoadQueriesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.txt")
	content := "# header\n0 11 5\n\n2 13 5\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	qs, err := loadQueries(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs[1].S != 2 || qs[1].K != 5 {
		t.Fatalf("parsed %+v", qs)
	}
	// Malformed line.
	badPath := filepath.Join(dir, "bad.txt")
	os.WriteFile(badPath, []byte("1 2\n"), 0o644)
	if _, err := loadQueries(badPath, ""); err == nil {
		t.Error("malformed query file accepted")
	}
	// Empty file.
	emptyPath := filepath.Join(dir, "empty.txt")
	os.WriteFile(emptyPath, []byte("# nothing\n"), 0o644)
	if _, err := loadQueries(emptyPath, ""); err == nil {
		t.Error("empty query file accepted")
	}
	// Missing both sources.
	if _, err := loadQueries("", ""); err == nil {
		t.Error("missing query sources accepted")
	}
}

func TestCacheLine(t *testing.T) {
	if got := cacheLine(hcpath.ServiceTotals{}); got != "index cache: no probes" {
		t.Errorf("empty totals: %q", got)
	}
	got := cacheLine(hcpath.ServiceTotals{
		IndexHits: 150, IndexMisses: 50, IndexWidened: 10,
		IndexEvictions: 3, IndexCacheBytes: 2 << 20,
	})
	want := "index cache: 75.0% hit ratio (150 hits, 50 misses, 10 widened), 3 evictions, 2.0 MiB"
	if got != want {
		t.Errorf("cacheLine = %q, want %q", got, want)
	}
}

func TestLoadOps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ops.txt")
	content := "# warmup\nquery 0 11 5\nadd 3 7\na 7 3\ndel 0 1\nq 0 11 5\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	ops, err := loadOps(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 5 {
		t.Fatalf("parsed %d ops, want 5", len(ops))
	}
	if !ops[1].add || ops[1].edge != (hcpath.Edge{Src: 3, Dst: 7}) {
		t.Fatalf("op 1 = %+v", ops[1])
	}
	if !ops[3].del || ops[3].edge != (hcpath.Edge{Src: 0, Dst: 1}) {
		t.Fatalf("op 3 = %+v", ops[3])
	}
	if ops[4].add || ops[4].del || ops[4].q.K != 5 {
		t.Fatalf("op 4 = %+v", ops[4])
	}
	for _, bad := range []string{"swap 1 2\n", "add 1\n", "query 1 2\n", "add x y\n"} {
		badPath := filepath.Join(dir, "bad.txt")
		if err := os.WriteFile(badPath, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := loadOps(badPath); err == nil {
			t.Errorf("ops %q accepted", bad)
		}
	}
}
