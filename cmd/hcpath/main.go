// Command hcpath answers batches of hop-constrained s-t simple path
// queries on a graph file:
//
//	hcpath -graph g.txt -queries q.txt            # print every path
//	hcpath -graph g.bin -queries q.txt -count     # counts only
//	hcpath -graph g.txt -query 0,11,5             # one ad-hoc query
//
// Replay mode drives the micro-batching query service instead of one
// offline batch: the query file is replayed from -clients concurrent
// goroutines, the service coalesces whatever arrives inside the
// -maxbatch/-maxwait window, and per-batch sharing statistics plus the
// end-to-end throughput are reported:
//
//	hcpath -graph g.txt -queries q.txt -replay -clients 32
//
// Update-replay mode drives the service against a live graph: an
// updates file interleaves mutations with queries, consecutive queries
// are submitted concurrently (so they micro-batch), and each mutation
// block is applied with ApplyUpdates before the next wave — later
// queries see the updated graph, earlier ones their original snapshot:
//
//	hcpath -graph g.txt -updates ops.txt
//
// The updates file holds one operation per line: "add u v" ("a u v"),
// "del u v" ("d u v"), or "query s t k" ("q s t k"); '#' comments.
//
// The graph file is an edge list ("src dst" per line, '#' comments) or
// the repository's binary format (.bin). The query file holds one
// "s t k" triple per line. The engine defaults to BatchEnum+, the
// paper's headline algorithm; -algo selects a baseline.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	hcpath "repro"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file (edge list or .bin)")
		queryPath = flag.String("queries", "", "query file: one 's t k' per line")
		oneQuery  = flag.String("query", "", "single query as 's,t,k'")
		algoName  = flag.String("algo", "batch+", "algorithm: batch+, batch, basic+, basic")
		gamma     = flag.Float64("gamma", 0.5, "clustering threshold γ")
		countOnly = flag.Bool("count", false, "print per-query counts instead of paths")
		maxHops   = flag.Int("maxhops", 15, "maximum accepted hop constraint")
		limit     = flag.Int64("limit", 0, "max result paths per query (0 = unlimited)")
		buildWork = flag.Int("buildworkers", 0, "index-build MS-BFS goroutines (0 = sequential, -1 = GOMAXPROCS)")
		timeout   = flag.Duration("timeout", 0, "total enumeration deadline; replay: per-batch QueryTimeout (0 = none)")

		replay      = flag.Bool("replay", false, "replay queries through the micro-batching service")
		updates     = flag.String("updates", "", "update-replay: file interleaving add/del/query operations")
		compact     = flag.Int("compactafter", 0, "update-replay: fold the delta after this many edge changes (0 = default, <0 = never)")
		dataDir     = flag.String("datadir", "", "update-replay: durable store directory (WAL + snapshots); an existing directory warm-restarts and resumes the replay")
		fsyncMode   = flag.String("fsync", "always", "update-replay with -datadir: WAL durability — always, interval, or off")
		ckptEvery   = flag.Int("checkpointevery", 0, "update-replay with -datadir: snapshot after this many logged update blocks (0 = default, <0 = only at exit)")
		crashAfter  = flag.Int("crashafter", 0, "update-replay: exit without cleanup after applying this many update blocks, simulating a crash (0 = never)")
		clients     = flag.Int("clients", 16, "replay: concurrent client goroutines")
		maxBatch    = flag.Int("maxbatch", 64, "replay: max queries coalesced per batch")
		maxWait     = flag.Duration("maxwait", 2*time.Millisecond, "replay: batch formation window")
		cacheMB     = flag.Int("cachemb", 64, "replay: cross-batch index cache budget in MiB (0 disables)")
		usePlanner  = flag.Bool("planner", false, "replay: plan each batch's groups adaptively (single/shared/splice per group)")
		maxInFlight = flag.Int("maxinflight", 0, "replay: max concurrent batches (0 = unlimited)")
		maxQueued   = flag.Int("maxqueued", 0, "replay: max admitted-but-undispatched queries; excess shed with ErrOverloaded (0 = unlimited)")
		shards      = flag.Int("shards", 0, "replay/update-replay: shard workers in the in-process sharded deployment (0 or 1 = unsharded)")
		verbose     = flag.Bool("v", false, "replay: print every batch's stats")
	)
	flag.Parse()

	if *dataDir != "" && *updates == "" {
		fail("-datadir requires -updates (update-replay is the durable mode)")
	}
	if *shards > 1 {
		if *dataDir != "" {
			fail("-shards with -datadir is not supported yet: sharded durability lands with the wire protocol (see docs/OPERATIONS.md)")
		}
		if !*replay && *updates == "" {
			fail("-shards requires -replay or -updates (the sharded deployment serves live traffic)")
		}
	}
	// With -datadir an existing data directory is the graph source; a
	// -graph only seeds an empty directory.
	var g *hcpath.Graph
	if *graphPath != "" {
		var err error
		g, err = hcpath.LoadGraph(*graphPath)
		if err != nil {
			fail("load graph: %v", err)
		}
	} else if *dataDir == "" {
		fail("missing -graph")
	}
	fsync, err := hcpath.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		fail("-fsync: %v", err)
	}
	algo, err := parseAlgo(*algoName)
	if err != nil {
		fail("%v", err)
	}
	cacheBytes := int64(-1) // 0 MiB: caching off
	if *cacheMB > 0 {
		cacheBytes = int64(*cacheMB) << 20
	}
	opts := hcpath.Options{
		Algorithm:       algo,
		Gamma:           *gamma,
		MaxHops:         *maxHops,
		Limit:           *limit,
		IndexCacheBytes: cacheBytes,
		BuildWorkers:    *buildWork,
	}

	if *updates != "" {
		if g != nil {
			fmt.Fprintf(os.Stderr, "graph: %d vertices, %d edges; %s\n",
				g.NumVertices(), g.NumEdges(), algo)
		} else {
			fmt.Fprintf(os.Stderr, "graph: warm restart from %s; %s\n", *dataDir, algo)
		}
		runUpdateReplay(g, *updates, opts, updateReplayConfig{
			maxBatch:        *maxBatch,
			maxWait:         *maxWait,
			queryTimeout:    *timeout,
			compactAfter:    *compact,
			shards:          *shards,
			verbose:         *verbose,
			dataDir:         *dataDir,
			fsync:           fsync,
			checkpointEvery: *ckptEvery,
			crashAfter:      *crashAfter,
		})
		return
	}

	qs, err := loadQueries(*queryPath, *oneQuery)
	if err != nil {
		fail("load queries: %v", err)
	}

	fmt.Fprintf(os.Stderr, "graph: %d vertices, %d edges; %d queries; %s\n",
		g.NumVertices(), g.NumEdges(), len(qs), algo)

	if *replay {
		runReplay(g, qs, opts, replayConfig{
			clients:     *clients,
			maxBatch:    *maxBatch,
			maxWait:     *maxWait,
			timeout:     *timeout,
			planner:     *usePlanner,
			maxInFlight: *maxInFlight,
			maxQueued:   *maxQueued,
			shards:      *shards,
			verbose:     *verbose,
		})
		return
	}
	opts.IndexCacheBytes = 0 // one offline batch: cold build
	eng := hcpath.NewEngine(g, &opts)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	t0 := time.Now()
	if *countOnly {
		counts, st, err := eng.CountContext(ctx, qs)
		if err != nil && !cancellation(err) {
			fail("%v", err)
		}
		for i, c := range counts {
			fmt.Printf("q%d(s=%d,t=%d,k=%d): %d paths\n", i, qs[i].S, qs[i].T, qs[i].K, c)
		}
		reportPartial(st, err)
		report(st, time.Since(t0))
		return
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	st, err := eng.StreamContext(ctx, qs, func(i int, p hcpath.Path) {
		fmt.Fprintf(w, "q%d: %s\n", i, p)
	})
	if err != nil && !cancellation(err) {
		fail("%v", err)
	}
	w.Flush()
	reportPartial(st, err)
	report(st, time.Since(t0))
}

// cancellation distinguishes a -timeout (or interrupt) cutting a run
// short — partial results worth printing — from a validation or load
// error, which aborts.
func cancellation(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// reportPartial warns on stderr when the run was cut short — cancelled
// by -timeout or truncated by -limit — so a partial listing is never
// mistaken for the full result set.
func reportPartial(st hcpath.Stats, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "hcpath: enumeration stopped early: %v (%d queries truncated)\n", err, st.Truncated)
	} else if st.Truncated > 0 {
		fmt.Fprintf(os.Stderr, "hcpath: %d queries truncated at -limit\n", st.Truncated)
	}
}

// replayConfig carries runReplay's knobs.
type replayConfig struct {
	clients, maxBatch      int
	maxWait, timeout       time.Duration
	planner                bool
	maxInFlight, maxQueued int
	shards                 int
	verbose                bool
}

// runReplay pushes the query file through a Service from concurrent
// client goroutines (client i replays queries i, i+clients, …) in count
// mode, then reports batching and throughput statistics. Clients back
// off and retry when admission control sheds them, the behaviour
// ErrOverloaded asks real callers for.
func runReplay(g *hcpath.Graph, qs []hcpath.Query, opts hcpath.Options, rc replayConfig) {
	so := &hcpath.ServiceOptions{
		Options:      opts,
		MaxBatch:     rc.maxBatch,
		MaxWait:      rc.maxWait,
		QueryTimeout: rc.timeout,
		MaxInFlight:  rc.maxInFlight,
		MaxQueued:    rc.maxQueued,
		Shards:       rc.shards,
		OnBatch: func(b hcpath.BatchStats) {
			if rc.verbose {
				fmt.Fprintf(os.Stderr,
					"batch: %d queries, %d groups, sharing %.2f, plan %d/%d/%d, %d paths, wait %v, enumerate %v\n",
					b.Queries, b.Groups, b.SharingRatio(),
					b.Plan.SingleGroups, b.Plan.SharedGroups, b.Plan.SpliceGroups, b.Paths,
					time.Duration(b.WaitNanos).Round(time.Microsecond),
					time.Duration(b.EnumerateNanos).Round(time.Microsecond))
			}
		},
	}
	if rc.planner {
		so.Planner = &hcpath.PlannerOptions{}
	}
	svc := hcpath.NewService(g, so)
	clients := rc.clients
	if clients < 1 {
		clients = 1
	}
	if n := svc.NumShards(); n > 1 {
		fmt.Fprintf(os.Stderr, "replay: %d clients, %d shard workers, batches of ≤%d formed over ≤%v windows\n",
			clients, n, rc.maxBatch, rc.maxWait)
	} else {
		fmt.Fprintf(os.Stderr, "replay: %d clients, batches of ≤%d formed over ≤%v windows\n",
			clients, rc.maxBatch, rc.maxWait)
	}

	var failed, truncated, backoffs atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			caller := fmt.Sprintf("client-%d", c)
			for i := c; i < len(qs); i += clients {
				delay := time.Millisecond
				for {
					_, _, err := svc.CountFrom(context.Background(), caller, qs[i])
					switch {
					case err == nil:
					case errors.Is(err, hcpath.ErrLimitReached) || errors.Is(err, context.DeadlineExceeded):
						truncated.Add(1) // partial count delivered, not a failure
					case errors.Is(err, hcpath.ErrOverloaded):
						// Shed at admission: exponential backoff, retry.
						backoffs.Add(1)
						time.Sleep(delay)
						if delay < 64*time.Millisecond {
							delay *= 2
						}
						continue
					default:
						fmt.Fprintf(os.Stderr, "hcpath: query %d: %v\n", i, err)
						failed.Add(1)
					}
					break
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	svc.Close()

	tot := svc.Totals()
	fmt.Printf("replayed %d queries in %v (%.0f q/s), %d failed, %d truncated (%d deadline batches)\n",
		tot.Queries, elapsed.Round(time.Microsecond),
		float64(tot.Queries)/elapsed.Seconds(), failed.Load(), truncated.Load(), tot.DeadlineBatches)
	fmt.Printf("%d batches (largest %d, mean %.1f queries/batch), %d paths\n",
		tot.Batches, tot.LargestBatch,
		float64(tot.Queries)/float64(max(tot.Batches, 1)), tot.Paths)
	fmt.Printf("%d groups, %d shared sub-queries, %d spliced paths; mean wait %v, mean enumerate %v\n",
		tot.Groups, tot.SharedQueries, tot.SplicedPaths,
		(time.Duration(tot.WaitNanos) / time.Duration(max(tot.Batches, 1))).Round(time.Microsecond),
		(time.Duration(tot.EnumerateNanos) / time.Duration(max(tot.Batches, 1))).Round(time.Microsecond))
	if rc.planner || tot.Shed > 0 || tot.Plan.SingleGroups > 0 {
		fmt.Println(planLine(tot, backoffs.Load()))
	}
	fmt.Println(cacheLine(tot))
	if line := shardLine(svc); line != "" {
		fmt.Println(line)
	}
}

// shardLine renders the sharded deployment's routing summary; empty on
// an unsharded service.
func shardLine(svc *hcpath.Service) string {
	rs := svc.Sharding()
	if rs.Shards <= 1 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "shards: %d workers, %d single-shard, %d cross-shard, %d cross-shard shed; queries/shard:",
		rs.Shards, rs.SingleShard, rs.CrossShard, rs.CrossShed)
	for _, t := range svc.ShardTotals() {
		fmt.Fprintf(&b, " %d", t.Queries)
	}
	return b.String()
}

// planLine renders the replay report's planner and admission summary.
func planLine(tot hcpath.ServiceTotals, backoffs int64) string {
	p := tot.Plan
	return fmt.Sprintf("plan: %d single / %d shared / %d spliced groups (%v / %v / %v); %d shed, %d backoffs",
		p.SingleGroups, p.SharedGroups, p.SpliceGroups,
		time.Duration(p.SingleNanos).Round(time.Microsecond),
		time.Duration(p.SharedNanos).Round(time.Microsecond),
		time.Duration(p.SpliceNanos).Round(time.Microsecond),
		tot.Shed, backoffs)
}

// op is one line of an update-replay file: either a mutation or a query.
type op struct {
	add, del bool
	edge     hcpath.Edge
	q        hcpath.Query
}

// loadOps parses an update-replay file: "add|a u v", "del|d u v",
// "query|q s t k", '#' comments.
func loadOps(path string) ([]op, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ops []op
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		parse := func(want int) ([]uint64, error) {
			if len(fields) != want+1 {
				return nil, fmt.Errorf("%s:%d: want %d operands, got %q", path, line, want, text)
			}
			vals := make([]uint64, want)
			for i := range vals {
				v, err := strconv.ParseUint(fields[i+1], 10, 32)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: operand %d: %v", path, line, i+1, err)
				}
				vals[i] = v
			}
			return vals, nil
		}
		switch strings.ToLower(fields[0]) {
		case "add", "a", "del", "d":
			vals, err := parse(2)
			if err != nil {
				return nil, err
			}
			mut := op{edge: hcpath.Edge{Src: hcpath.VertexID(vals[0]), Dst: hcpath.VertexID(vals[1])}}
			if fields[0][0] == 'a' {
				mut.add = true
			} else {
				mut.del = true
			}
			ops = append(ops, mut)
		case "query", "q":
			vals, err := parse(3)
			if err != nil {
				return nil, err
			}
			ops = append(ops, op{q: hcpath.Query{
				S: hcpath.VertexID(vals[0]), T: hcpath.VertexID(vals[1]), K: int(vals[2])}})
		default:
			return nil, fmt.Errorf("%s:%d: unknown op %q (want add/del/query)", path, line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("%s: no operations", path)
	}
	return ops, nil
}

// updateReplayConfig carries runUpdateReplay's knobs.
type updateReplayConfig struct {
	maxBatch              int
	maxWait, queryTimeout time.Duration
	compactAfter          int
	shards                int
	verbose               bool

	dataDir         string
	fsync           hcpath.FsyncPolicy
	checkpointEvery int
	crashAfter      int // exit uncleanly after this many applied blocks
}

// runUpdateReplay drives the service against a live graph: consecutive
// queries form a wave submitted concurrently (so they micro-batch);
// consecutive mutations form a block applied with one ApplyUpdates.
// Waves complete before the next mutation block applies, so every query
// deterministically sees the graph version current when its wave began.
//
// With a -datadir, every applied block is one WAL record, so on a warm
// restart the store's WALRecords count is exactly the replay cursor:
// the first WALRecords blocks of the file (and the queries before them,
// answered pre-crash) are skipped and the replay resumes where the
// previous process stopped — surviving even a kill -9 mid-run.
func runUpdateReplay(g *hcpath.Graph, path string, opts hcpath.Options, cfg updateReplayConfig) {
	ops, err := loadOps(path)
	if err != nil {
		fail("load updates: %v", err)
	}
	so := &hcpath.ServiceOptions{
		Options:      opts,
		MaxBatch:     cfg.maxBatch,
		MaxWait:      cfg.maxWait,
		QueryTimeout: cfg.queryTimeout,
		CompactAfter: cfg.compactAfter,
		Shards:       cfg.shards,
	}
	var svc *hcpath.Service
	var skip int64 // update blocks a previous run already applied
	if cfg.dataDir != "" {
		so.DataDir = cfg.dataDir
		so.Fsync = cfg.fsync
		so.CheckpointEvery = cfg.checkpointEvery
		svc, err = hcpath.OpenService(g, so)
		if err != nil {
			fail("open durable service: %v", err)
		}
		if tot := svc.Totals(); tot.WALRecords > 0 {
			skip = tot.WALRecords
			st := svc.State()
			fmt.Fprintf(os.Stderr, "recovered: epoch %d, %d vertices, %d edges, %d update blocks already applied\n",
				st.Epoch, st.NumVertices, st.NumEdges, skip)
		}
	} else {
		svc = hcpath.NewService(g, so)
	}

	var queries, failed, truncated, updates int64
	var skipped, applied int64 // update blocks: caught up vs applied this run
	t0 := time.Now()

	var wave sync.WaitGroup
	flushWave := func() { wave.Wait() }
	var adds, dels []hcpath.Edge
	pendingAdd := map[hcpath.Edge]bool{}
	pendingDel := map[hcpath.Edge]bool{}
	discardBlock := func() {
		adds, dels = nil, nil
		clear(pendingAdd)
		clear(pendingDel)
	}
	flushUpdates := func() {
		if len(adds) == 0 && len(dels) == 0 {
			return
		}
		if skipped < skip {
			// This block is already in the recovered state; consume it
			// without re-applying.
			skipped++
			discardBlock()
			return
		}
		epoch, err := svc.ApplyUpdates(adds, dels)
		if err != nil {
			fail("apply updates: %v", err)
		}
		applied++
		updates += int64(len(adds) + len(dels))
		if cfg.verbose {
			fmt.Fprintf(os.Stderr, "applied %d adds, %d dels → epoch %d\n", len(adds), len(dels), epoch)
		}
		discardBlock()
		if cfg.crashAfter > 0 && applied >= int64(cfg.crashAfter) {
			// Simulated crash: no Close, no final checkpoint, no WAL
			// drain beyond what the fsync policy already guaranteed.
			fmt.Fprintf(os.Stderr, "crash: exiting after %d applied update blocks at epoch %d\n", applied, epoch)
			os.Exit(137)
		}
	}

	for _, o := range ops {
		switch {
		case o.add:
			flushWave()
			// ApplyUpdates applies a block's dels before its adds, so an
			// edge already pending deletion must flush first to keep the
			// file's sequential semantics.
			if pendingDel[o.edge] {
				flushUpdates()
			}
			adds = append(adds, o.edge)
			pendingAdd[o.edge] = true
		case o.del:
			flushWave()
			if pendingAdd[o.edge] {
				flushUpdates()
			}
			dels = append(dels, o.edge)
			pendingDel[o.edge] = true
		default:
			flushUpdates()
			if skipped < skip {
				continue // answered by the previous run, before the crash
			}
			queries++
			wave.Add(1)
			waveEpoch := svc.Epoch()
			go func(q hcpath.Query, i int64) {
				defer wave.Done()
				switch count, _, err := svc.Count(context.Background(), q); {
				case err == nil:
					if cfg.verbose {
						fmt.Fprintf(os.Stderr, "q(s=%d,t=%d,k=%d) @epoch %d: %d paths\n",
							q.S, q.T, q.K, waveEpoch, count)
					}
				case errors.Is(err, hcpath.ErrLimitReached) || errors.Is(err, context.DeadlineExceeded):
					atomic.AddInt64(&truncated, 1)
				default:
					fmt.Fprintf(os.Stderr, "hcpath: query %d: %v\n", i, err)
					atomic.AddInt64(&failed, 1)
				}
			}(o.q, queries)
		}
	}
	flushWave()
	flushUpdates()
	elapsed := time.Since(t0)

	tot := svc.Totals()
	fmt.Printf("replayed %d queries and %d updates in %v, %d failed, %d truncated\n",
		queries, updates, elapsed.Round(time.Microsecond), failed, truncated)
	fmt.Printf("epoch %d (%d effective edge changes, %d compactions, %d delta edges pending), %d batches, %d paths\n",
		tot.Epoch, tot.UpdatesApplied, tot.Compactions, tot.DeltaEdges, tot.Batches, tot.Paths)
	fmt.Println(cacheLine(tot))
	if line := shardLine(svc); line != "" {
		fmt.Println(line)
	}
	if cfg.dataDir != "" {
		st := svc.State()
		if err := svc.Close(); err != nil {
			fail("close durable service: %v", err)
		}
		fmt.Printf("wal: %d records, %d checkpoints, snapshot epoch %d\n",
			tot.WALRecords, tot.Checkpoints, tot.SnapshotEpoch)
		fmt.Printf("state: epoch %d, n %d, m %d, crc %08x\n",
			st.Epoch, st.NumVertices, st.NumEdges, st.Checksum)
	} else {
		svc.Close()
	}
}

// cacheLine renders the replay report's index-cache summary from the
// service's lifetime totals.
func cacheLine(tot hcpath.ServiceTotals) string {
	if tot.IndexHits+tot.IndexMisses == 0 {
		return "index cache: no probes"
	}
	return fmt.Sprintf("index cache: %.1f%% hit ratio (%d hits, %d misses, %d widened), %d evictions, %.1f MiB",
		100*tot.IndexHitRatio(), tot.IndexHits, tot.IndexMisses, tot.IndexWidened,
		tot.IndexEvictions, float64(tot.IndexCacheBytes)/(1<<20))
}

func report(st hcpath.Stats, elapsed time.Duration) {
	fmt.Fprintf(os.Stderr,
		"done in %v (index %v, cluster %v, detect %v, enumerate %v); %d groups, %d shared sub-queries, %d spliced paths\n",
		elapsed.Round(time.Microsecond),
		time.Duration(st.IndexNanos).Round(time.Microsecond),
		time.Duration(st.ClusterNanos).Round(time.Microsecond),
		time.Duration(st.DetectNanos).Round(time.Microsecond),
		time.Duration(st.EnumerateNanos).Round(time.Microsecond),
		st.Groups, st.SharedQueries, st.SplicedPaths)
}

func parseAlgo(name string) (hcpath.Algorithm, error) {
	switch strings.ToLower(name) {
	case "batch+", "batchenum+":
		return hcpath.BatchEnumPlus, nil
	case "batch", "batchenum":
		return hcpath.BatchEnum, nil
	case "basic+", "basicenum+":
		return hcpath.BasicEnumPlus, nil
	case "basic", "basicenum":
		return hcpath.BasicEnum, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (want batch+, batch, basic+ or basic)", name)
}

func loadQueries(path, one string) ([]hcpath.Query, error) {
	if one != "" {
		parts := strings.Split(one, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("-query wants 's,t,k', got %q", one)
		}
		vals := make([]int, 3)
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("-query field %d: %v", i, err)
			}
			vals[i] = v
		}
		return []hcpath.Query{{S: hcpath.VertexID(vals[0]), T: hcpath.VertexID(vals[1]), K: vals[2]}}, nil
	}
	if path == "" {
		return nil, fmt.Errorf("need -queries or -query")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var qs []hcpath.Query
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: want 's t k', got %q", path, line, text)
		}
		s, err1 := strconv.ParseUint(fields[0], 10, 32)
		t, err2 := strconv.ParseUint(fields[1], 10, 32)
		k, err3 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%s:%d: malformed query %q", path, line, text)
		}
		qs = append(qs, hcpath.Query{S: hcpath.VertexID(s), T: hcpath.VertexID(t), K: k})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(qs) == 0 {
		return nil, fmt.Errorf("%s: no queries", path)
	}
	return qs, nil
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "hcpath: "+format+"\n", args...)
	os.Exit(1)
}
