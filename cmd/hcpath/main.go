// Command hcpath answers batches of hop-constrained s-t simple path
// queries on a graph file:
//
//	hcpath -graph g.txt -queries q.txt            # print every path
//	hcpath -graph g.bin -queries q.txt -count     # counts only
//	hcpath -graph g.txt -query 0,11,5             # one ad-hoc query
//
// Replay mode drives the micro-batching query service instead of one
// offline batch: the query file is replayed from -clients concurrent
// goroutines, the service coalesces whatever arrives inside the
// -maxbatch/-maxwait window, and per-batch sharing statistics plus the
// end-to-end throughput are reported:
//
//	hcpath -graph g.txt -queries q.txt -replay -clients 32
//
// Update-replay mode drives the service against a live graph: an
// updates file interleaves mutations with queries, consecutive queries
// are submitted concurrently (so they micro-batch), and each mutation
// block is applied with ApplyUpdates before the next wave — later
// queries see the updated graph, earlier ones their original snapshot:
//
//	hcpath -graph g.txt -updates ops.txt
//
// The updates file holds one operation per line: "add u v" ("a u v"),
// "del u v" ("d u v"), or "query s t k" ("q s t k"); '#' comments.
//
// Serve mode runs one shard worker of a multi-process deployment: the
// process owns shard i of N over its replica of the graph and answers
// a coordinator's wire RPCs over TCP until SIGINT/SIGTERM. Connect
// mode is that coordinator: it dials one worker address per shard and
// drives replay or update-replay against the cluster, with results
// identical to the single-process service:
//
//	hcpath -graph g.txt -serve -shard 0/2 -listen :7070   # worker 0
//	hcpath -graph g.txt -serve -shard 1/2 -listen :7071   # worker 1
//	hcpath -connect localhost:7070,localhost:7071 -queries q.txt -replay
//	hcpath -connect localhost:7070,localhost:7071 -updates ops.txt
//
// A worker given -datadir owns that directory as its durable store
// (WAL + snapshots) — give each worker its own; restarting the worker
// warm-restarts from disk and -graph may then be omitted.
//
// The graph file is an edge list ("src dst" per line, '#' comments) or
// the repository's binary format (.bin). The query file holds one
// "s t k" triple per line. The engine defaults to BatchEnum+, the
// paper's headline algorithm; -algo selects a baseline.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	hcpath "repro"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file (edge list or .bin)")
		queryPath = flag.String("queries", "", "query file: one 's t k' per line")
		oneQuery  = flag.String("query", "", "single query as 's,t,k'")
		algoName  = flag.String("algo", "batch+", "algorithm: batch+, batch, basic+, basic")
		gamma     = flag.Float64("gamma", 0.5, "clustering threshold γ")
		countOnly = flag.Bool("count", false, "print per-query counts instead of paths")
		maxHops   = flag.Int("maxhops", 15, "maximum accepted hop constraint")
		limit     = flag.Int64("limit", 0, "max result paths per query (0 = unlimited)")
		buildWork = flag.Int("buildworkers", 0, "index-build MS-BFS goroutines (0 = sequential, -1 = GOMAXPROCS)")
		timeout   = flag.Duration("timeout", 0, "total enumeration deadline; replay: per-batch QueryTimeout (0 = none)")

		replay      = flag.Bool("replay", false, "replay queries through the micro-batching service")
		updates     = flag.String("updates", "", "update-replay: file interleaving add/del/query operations")
		compact     = flag.Int("compactafter", 0, "update-replay: fold the delta after this many edge changes (0 = default, <0 = never)")
		dataDir     = flag.String("datadir", "", "update-replay: durable store directory (WAL + snapshots); an existing directory warm-restarts and resumes the replay")
		fsyncMode   = flag.String("fsync", "always", "update-replay with -datadir: WAL durability — always, interval, or off")
		ckptEvery   = flag.Int("checkpointevery", 0, "update-replay with -datadir: snapshot after this many logged update blocks (0 = default, <0 = only at exit)")
		crashAfter  = flag.Int("crashafter", 0, "update-replay: exit without cleanup after applying this many update blocks, simulating a crash (0 = never)")
		clients     = flag.Int("clients", 16, "replay: concurrent client goroutines")
		maxBatch    = flag.Int("maxbatch", 64, "replay: max queries coalesced per batch")
		maxWait     = flag.Duration("maxwait", 2*time.Millisecond, "replay: batch formation window")
		cacheMB     = flag.Int("cachemb", 64, "replay: cross-batch index cache budget in MiB (0 disables)")
		usePlanner  = flag.Bool("planner", false, "replay: plan each batch's groups adaptively (single/shared/splice per group)")
		maxInFlight = flag.Int("maxinflight", 0, "replay: max concurrent batches (0 = unlimited)")
		maxQueued   = flag.Int("maxqueued", 0, "replay: max admitted-but-undispatched queries; excess shed with ErrOverloaded (0 = unlimited)")
		shards      = flag.Int("shards", 0, "replay/update-replay: shard workers in the in-process sharded deployment (0 or 1 = unsharded)")
		serve       = flag.Bool("serve", false, "run one shard worker serving the wire protocol (needs -shard and -listen)")
		shardSpec   = flag.String("shard", "", "serve: this worker's identity as 'i/N' (shard i of N)")
		listenAddr  = flag.String("listen", "", "serve: TCP address to listen on, e.g. :7070")
		connectTo   = flag.String("connect", "", "replay/update-replay against remote workers: comma-separated addresses, one per shard in shard order")
		verbose     = flag.Bool("v", false, "replay: print every batch's stats")
	)
	flag.Parse()

	if *dataDir != "" && *updates == "" && !*serve {
		fail("-datadir requires -updates or -serve (the durable modes)")
	}
	if *serve {
		if *shardSpec == "" || *listenAddr == "" {
			fail("-serve needs -shard i/N and -listen addr")
		}
		if *replay || *updates != "" || *queryPath != "" || *oneQuery != "" || *connectTo != "" || *shards > 1 {
			fail("-serve runs a worker; it takes no queries, updates, -connect, or -shards")
		}
	} else if *shardSpec != "" || *listenAddr != "" {
		fail("-shard and -listen only apply to -serve")
	}
	if *connectTo != "" {
		if *shards > 1 {
			fail("-connect derives the shard count from the address list; drop -shards")
		}
		if *dataDir != "" {
			fail("-connect with -datadir: durable directories belong to the workers (-serve -datadir)")
		}
		if !*replay && *updates == "" {
			fail("-connect requires -replay or -updates (the cluster serves live traffic)")
		}
	}
	if *shards > 1 && !*replay && *updates == "" {
		fail("-shards requires -replay or -updates (the sharded deployment serves live traffic)")
	}
	// With -datadir an existing data directory is the graph source; a
	// -graph only seeds an empty directory. With -connect the graph
	// lives in the worker processes.
	var g *hcpath.Graph
	if *graphPath != "" {
		var err error
		g, err = hcpath.LoadGraph(*graphPath)
		if err != nil {
			fail("load graph: %v", err)
		}
	} else if *dataDir == "" && *connectTo == "" {
		fail("missing -graph")
	}
	fsync, err := hcpath.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		fail("-fsync: %v", err)
	}
	algo, err := parseAlgo(*algoName)
	if err != nil {
		fail("%v", err)
	}
	cacheBytes := int64(-1) // 0 MiB: caching off
	if *cacheMB > 0 {
		cacheBytes = int64(*cacheMB) << 20
	}
	opts := hcpath.Options{
		Algorithm:       algo,
		Gamma:           *gamma,
		MaxHops:         *maxHops,
		Limit:           *limit,
		IndexCacheBytes: cacheBytes,
		BuildWorkers:    *buildWork,
	}

	if *serve {
		runServe(g, opts, serveConfig{
			spec:            *shardSpec,
			listen:          *listenAddr,
			maxBatch:        *maxBatch,
			maxWait:         *maxWait,
			queryTimeout:    *timeout,
			compactAfter:    *compact,
			planner:         *usePlanner,
			maxInFlight:     *maxInFlight,
			maxQueued:       *maxQueued,
			dataDir:         *dataDir,
			fsync:           fsync,
			checkpointEvery: *ckptEvery,
		})
		return
	}

	var cluster []string
	if *connectTo != "" {
		for _, a := range strings.Split(*connectTo, ",") {
			if a = strings.TrimSpace(a); a != "" {
				cluster = append(cluster, a)
			}
		}
		if len(cluster) == 0 {
			fail("-connect: no worker addresses")
		}
	}

	if *updates != "" {
		switch {
		case len(cluster) > 0:
			fmt.Fprintf(os.Stderr, "graph: served by %d remote workers; %s\n", len(cluster), algo)
		case g != nil:
			fmt.Fprintf(os.Stderr, "graph: %d vertices, %d edges; %s\n",
				g.NumVertices(), g.NumEdges(), algo)
		default:
			fmt.Fprintf(os.Stderr, "graph: warm restart from %s; %s\n", *dataDir, algo)
		}
		runUpdateReplay(g, *updates, opts, updateReplayConfig{
			maxBatch:        *maxBatch,
			maxWait:         *maxWait,
			queryTimeout:    *timeout,
			compactAfter:    *compact,
			shards:          *shards,
			connect:         cluster,
			verbose:         *verbose,
			dataDir:         *dataDir,
			fsync:           fsync,
			checkpointEvery: *ckptEvery,
			crashAfter:      *crashAfter,
		})
		return
	}

	qs, err := loadQueries(*queryPath, *oneQuery)
	if err != nil {
		fail("load queries: %v", err)
	}

	if len(cluster) > 0 {
		fmt.Fprintf(os.Stderr, "graph: served by %d remote workers; %d queries; %s\n",
			len(cluster), len(qs), algo)
	} else {
		fmt.Fprintf(os.Stderr, "graph: %d vertices, %d edges; %d queries; %s\n",
			g.NumVertices(), g.NumEdges(), len(qs), algo)
	}

	if *replay {
		runReplay(g, qs, opts, replayConfig{
			clients:     *clients,
			maxBatch:    *maxBatch,
			maxWait:     *maxWait,
			timeout:     *timeout,
			planner:     *usePlanner,
			maxInFlight: *maxInFlight,
			maxQueued:   *maxQueued,
			shards:      *shards,
			connect:     cluster,
			verbose:     *verbose,
		})
		return
	}
	opts.IndexCacheBytes = 0 // one offline batch: cold build
	eng := hcpath.NewEngine(g, &opts)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	t0 := time.Now()
	if *countOnly {
		counts, st, err := eng.CountContext(ctx, qs)
		if err != nil && !cancellation(err) {
			fail("%v", err)
		}
		for i, c := range counts {
			fmt.Printf("q%d(s=%d,t=%d,k=%d): %d paths\n", i, qs[i].S, qs[i].T, qs[i].K, c)
		}
		reportPartial(st, err)
		report(st, time.Since(t0))
		return
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	st, err := eng.StreamContext(ctx, qs, func(i int, p hcpath.Path) {
		fmt.Fprintf(w, "q%d: %s\n", i, p)
	})
	if err != nil && !cancellation(err) {
		fail("%v", err)
	}
	w.Flush()
	reportPartial(st, err)
	report(st, time.Since(t0))
}

// cancellation distinguishes a -timeout (or interrupt) cutting a run
// short — partial results worth printing — from a validation or load
// error, which aborts.
func cancellation(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// reportPartial warns on stderr when the run was cut short — cancelled
// by -timeout or truncated by -limit — so a partial listing is never
// mistaken for the full result set.
func reportPartial(st hcpath.Stats, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "hcpath: enumeration stopped early: %v (%d queries truncated)\n", err, st.Truncated)
	} else if st.Truncated > 0 {
		fmt.Fprintf(os.Stderr, "hcpath: %d queries truncated at -limit\n", st.Truncated)
	}
}

// serveConfig carries runServe's knobs.
type serveConfig struct {
	spec, listen          string
	maxBatch              int
	maxWait, queryTimeout time.Duration
	compactAfter          int
	planner               bool
	maxInFlight           int
	maxQueued             int

	dataDir         string
	fsync           hcpath.FsyncPolicy
	checkpointEvery int
}

// parseShardSpec parses a -shard identity "i/N".
func parseShardSpec(spec string) (idx, n int, err error) {
	i, rest, ok := strings.Cut(spec, "/")
	if !ok {
		return 0, 0, fmt.Errorf("-shard wants 'i/N', got %q", spec)
	}
	idx, err1 := strconv.Atoi(strings.TrimSpace(i))
	n, err2 := strconv.Atoi(strings.TrimSpace(rest))
	if err1 != nil || err2 != nil || n < 1 || idx < 0 || idx >= n {
		return 0, 0, fmt.Errorf("-shard wants 'i/N' with 0 ≤ i < N, got %q", spec)
	}
	return idx, n, nil
}

// runServe runs one shard worker: a full micro-batching service over
// this process's replica of the graph, answering coordinator RPCs on
// the wire protocol until SIGINT/SIGTERM shuts it down cleanly
// (flushing the durable store when -datadir is set).
func runServe(g *hcpath.Graph, opts hcpath.Options, sc serveConfig) {
	idx, n, err := parseShardSpec(sc.spec)
	if err != nil {
		fail("%v", err)
	}
	so := &hcpath.ServiceOptions{
		Options:         opts,
		MaxBatch:        sc.maxBatch,
		MaxWait:         sc.maxWait,
		QueryTimeout:    sc.queryTimeout,
		CompactAfter:    sc.compactAfter,
		MaxInFlight:     sc.maxInFlight,
		MaxQueued:       sc.maxQueued,
		DataDir:         sc.dataDir,
		Fsync:           sc.fsync,
		CheckpointEvery: sc.checkpointEvery,
	}
	if sc.planner {
		so.Planner = &hcpath.PlannerOptions{}
	}
	srv, err := hcpath.NewShardServer(g, so, idx, n)
	if err != nil {
		fail("start worker: %v", err)
	}
	ln, err := net.Listen("tcp", sc.listen)
	if err != nil {
		fail("listen: %v", err)
	}
	st := srv.State()
	fmt.Fprintf(os.Stderr, "serving: shard %d/%d on %s (epoch %d, %d vertices, %d edges)\n",
		idx, n, ln.Addr(), st.Epoch, st.NumVertices, st.NumEdges)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "serving: caught %v, shutting down\n", s)
		if err := srv.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hcpath: close worker: %v\n", err)
			os.Exit(1)
		}
	}()
	if err := srv.Serve(ln); err != nil {
		fail("serve: %v", err)
	}
	tot := srv.Totals()
	fmt.Fprintf(os.Stderr, "served: %d queries in %d batches, %d paths; final epoch %d\n",
		tot.Queries, tot.Batches, tot.Paths, tot.Epoch)
}

// replayConfig carries runReplay's knobs.
type replayConfig struct {
	clients, maxBatch      int
	maxWait, timeout       time.Duration
	planner                bool
	maxInFlight, maxQueued int
	shards                 int
	connect                []string // remote worker addresses; empty = in-process
	verbose                bool
}

// replayService builds the Service a replay drives: a connection to the
// remote cluster when addrs is set, an in-process (possibly sharded)
// service over g otherwise.
func replayService(g *hcpath.Graph, so *hcpath.ServiceOptions, addrs []string) *hcpath.Service {
	if len(addrs) == 0 {
		return hcpath.NewService(g, so)
	}
	svc, err := hcpath.ConnectService(context.Background(), addrs, so)
	if err != nil {
		fail("connect: %v", err)
	}
	fmt.Fprintf(os.Stderr, "cluster: %d remote workers (%s)\n",
		svc.NumShards(), strings.Join(addrs, ", "))
	return svc
}

// runReplay pushes the query file through a Service from concurrent
// client goroutines (client i replays queries i, i+clients, …) in count
// mode, then reports batching and throughput statistics. Clients back
// off and retry when admission control sheds them, the behaviour
// ErrOverloaded asks real callers for.
func runReplay(g *hcpath.Graph, qs []hcpath.Query, opts hcpath.Options, rc replayConfig) {
	so := &hcpath.ServiceOptions{
		Options:      opts,
		MaxBatch:     rc.maxBatch,
		MaxWait:      rc.maxWait,
		QueryTimeout: rc.timeout,
		MaxInFlight:  rc.maxInFlight,
		MaxQueued:    rc.maxQueued,
		Shards:       rc.shards,
		OnBatch: func(b hcpath.BatchStats) {
			if rc.verbose {
				fmt.Fprintf(os.Stderr,
					"batch: %d queries, %d groups, sharing %.2f, plan %d/%d/%d, %d paths, wait %v, enumerate %v\n",
					b.Queries, b.Groups, b.SharingRatio(),
					b.Plan.SingleGroups, b.Plan.SharedGroups, b.Plan.SpliceGroups, b.Paths,
					time.Duration(b.WaitNanos).Round(time.Microsecond),
					time.Duration(b.EnumerateNanos).Round(time.Microsecond))
			}
		},
	}
	if rc.planner {
		so.Planner = &hcpath.PlannerOptions{}
	}
	svc := replayService(g, so, rc.connect)
	clients := rc.clients
	if clients < 1 {
		clients = 1
	}
	if n := svc.NumShards(); n > 1 {
		fmt.Fprintf(os.Stderr, "replay: %d clients, %d shard workers, batches of ≤%d formed over ≤%v windows\n",
			clients, n, rc.maxBatch, rc.maxWait)
	} else {
		fmt.Fprintf(os.Stderr, "replay: %d clients, batches of ≤%d formed over ≤%v windows\n",
			clients, rc.maxBatch, rc.maxWait)
	}

	var failed, truncated, backoffs atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			caller := fmt.Sprintf("client-%d", c)
			for i := c; i < len(qs); i += clients {
				var retry *hcpath.BackoffSleeper // fresh budget per query
				for {
					_, _, err := svc.CountFrom(context.Background(), caller, qs[i])
					switch {
					case err == nil:
					case errors.Is(err, hcpath.ErrLimitReached) || errors.Is(err, context.DeadlineExceeded):
						truncated.Add(1) // partial count delivered, not a failure
					case errors.Is(err, hcpath.ErrOverloaded):
						// Shed at admission: jittered capped backoff, honouring
						// a remote worker's retry-after hint, giving up once
						// the policy's total budget is spent.
						backoffs.Add(1)
						if retry == nil {
							retry = hcpath.Backoff{}.Start()
						}
						var hint time.Duration
						var oe *hcpath.OverloadedError
						if errors.As(err, &oe) {
							hint = oe.RetryAfter
						}
						if serr := retry.Sleep(context.Background(), hint); serr != nil {
							fmt.Fprintf(os.Stderr, "hcpath: query %d: still overloaded after %d retries: %v\n",
								i, retry.Attempts(), serr)
							failed.Add(1)
							break
						}
						continue
					default:
						fmt.Fprintf(os.Stderr, "hcpath: query %d: %v\n", i, err)
						failed.Add(1)
					}
					break
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	// Read the merged totals before Close: on a remote deployment Close
	// drops the worker connections the stats plane reads through.
	tot := svc.Totals()
	shLine, wLine := shardLine(svc), wireLine(svc)
	svc.Close()
	fmt.Printf("replayed %d queries in %v (%.0f q/s), %d failed, %d truncated (%d deadline batches)\n",
		tot.Queries, elapsed.Round(time.Microsecond),
		float64(tot.Queries)/elapsed.Seconds(), failed.Load(), truncated.Load(), tot.DeadlineBatches)
	fmt.Printf("%d batches (largest %d, mean %.1f queries/batch), %d paths\n",
		tot.Batches, tot.LargestBatch,
		float64(tot.Queries)/float64(max(tot.Batches, 1)), tot.Paths)
	fmt.Printf("%d groups, %d shared sub-queries, %d spliced paths; mean wait %v, mean enumerate %v\n",
		tot.Groups, tot.SharedQueries, tot.SplicedPaths,
		(time.Duration(tot.WaitNanos) / time.Duration(max(tot.Batches, 1))).Round(time.Microsecond),
		(time.Duration(tot.EnumerateNanos) / time.Duration(max(tot.Batches, 1))).Round(time.Microsecond))
	if rc.planner || tot.Shed > 0 || tot.Plan.SingleGroups > 0 {
		fmt.Println(planLine(tot, backoffs.Load()))
	}
	fmt.Println(cacheLine(tot))
	if shLine != "" {
		fmt.Println(shLine)
	}
	if wLine != "" {
		fmt.Println(wLine)
	}
}

// wireLine renders a remote deployment's transport summary — per-worker
// request frames and socket flushes, and the overall write-coalescing
// factor; empty on any in-process service.
func wireLine(svc *hcpath.Service) string {
	ws := svc.Wire()
	if len(ws) == 0 {
		return ""
	}
	var rpcs, flushes int64
	var b strings.Builder
	b.WriteString("wire:")
	for _, w := range ws {
		fmt.Fprintf(&b, " %s %d rpcs/%d flushes;", w.Addr, w.RPCs, w.Flushes)
		rpcs += w.RPCs
		flushes += w.Flushes
	}
	fmt.Fprintf(&b, " coalescing %.1f rpcs/flush", float64(rpcs)/float64(max(flushes, 1)))
	return b.String()
}

// shardLine renders the sharded deployment's routing summary; empty on
// an unsharded service.
func shardLine(svc *hcpath.Service) string {
	rs := svc.Sharding()
	if rs.Shards <= 1 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "shards: %d workers, %d single-shard, %d cross-shard, %d cross-shard shed; queries/shard:",
		rs.Shards, rs.SingleShard, rs.CrossShard, rs.CrossShed)
	for _, t := range svc.ShardTotals() {
		fmt.Fprintf(&b, " %d", t.Queries)
	}
	return b.String()
}

// planLine renders the replay report's planner and admission summary.
func planLine(tot hcpath.ServiceTotals, backoffs int64) string {
	p := tot.Plan
	return fmt.Sprintf("plan: %d single / %d shared / %d spliced groups (%v / %v / %v); %d shed, %d backoffs",
		p.SingleGroups, p.SharedGroups, p.SpliceGroups,
		time.Duration(p.SingleNanos).Round(time.Microsecond),
		time.Duration(p.SharedNanos).Round(time.Microsecond),
		time.Duration(p.SpliceNanos).Round(time.Microsecond),
		tot.Shed, backoffs)
}

// op is one line of an update-replay file: either a mutation or a query.
type op struct {
	add, del bool
	edge     hcpath.Edge
	q        hcpath.Query
}

// loadOps parses an update-replay file: "add|a u v", "del|d u v",
// "query|q s t k", '#' comments.
func loadOps(path string) ([]op, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ops []op
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		parse := func(want int) ([]uint64, error) {
			if len(fields) != want+1 {
				return nil, fmt.Errorf("%s:%d: want %d operands, got %q", path, line, want, text)
			}
			vals := make([]uint64, want)
			for i := range vals {
				v, err := strconv.ParseUint(fields[i+1], 10, 32)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: operand %d: %v", path, line, i+1, err)
				}
				vals[i] = v
			}
			return vals, nil
		}
		switch strings.ToLower(fields[0]) {
		case "add", "a", "del", "d":
			vals, err := parse(2)
			if err != nil {
				return nil, err
			}
			mut := op{edge: hcpath.Edge{Src: hcpath.VertexID(vals[0]), Dst: hcpath.VertexID(vals[1])}}
			if fields[0][0] == 'a' {
				mut.add = true
			} else {
				mut.del = true
			}
			ops = append(ops, mut)
		case "query", "q":
			vals, err := parse(3)
			if err != nil {
				return nil, err
			}
			ops = append(ops, op{q: hcpath.Query{
				S: hcpath.VertexID(vals[0]), T: hcpath.VertexID(vals[1]), K: int(vals[2])}})
		default:
			return nil, fmt.Errorf("%s:%d: unknown op %q (want add/del/query)", path, line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("%s: no operations", path)
	}
	return ops, nil
}

// updateReplayConfig carries runUpdateReplay's knobs.
type updateReplayConfig struct {
	maxBatch              int
	maxWait, queryTimeout time.Duration
	compactAfter          int
	shards                int
	connect               []string // remote worker addresses; empty = in-process
	verbose               bool

	dataDir         string
	fsync           hcpath.FsyncPolicy
	checkpointEvery int
	crashAfter      int // exit uncleanly after this many applied blocks
}

// runUpdateReplay drives the service against a live graph: consecutive
// queries form a wave submitted concurrently (so they micro-batch);
// consecutive mutations form a block applied with one ApplyUpdates.
// Waves complete before the next mutation block applies, so every query
// deterministically sees the graph version current when its wave began.
//
// With a -datadir, every applied block is one WAL record, so on a warm
// restart the store's WALRecords count is exactly the replay cursor:
// the first WALRecords blocks of the file (and the queries before them,
// answered pre-crash) are skipped and the replay resumes where the
// previous process stopped — surviving even a kill -9 mid-run.
func runUpdateReplay(g *hcpath.Graph, path string, opts hcpath.Options, cfg updateReplayConfig) {
	ops, err := loadOps(path)
	if err != nil {
		fail("load updates: %v", err)
	}
	so := &hcpath.ServiceOptions{
		Options:      opts,
		MaxBatch:     cfg.maxBatch,
		MaxWait:      cfg.maxWait,
		QueryTimeout: cfg.queryTimeout,
		CompactAfter: cfg.compactAfter,
		Shards:       cfg.shards,
	}
	var svc *hcpath.Service
	switch {
	case len(cfg.connect) > 0:
		svc = replayService(nil, so, cfg.connect)
	case cfg.dataDir != "":
		so.DataDir = cfg.dataDir
		so.Fsync = cfg.fsync
		so.CheckpointEvery = cfg.checkpointEvery
		svc, err = hcpath.OpenService(g, so)
		if err != nil {
			fail("open durable service: %v", err)
		}
	default:
		svc = hcpath.NewService(g, so)
	}
	// Durable deployments — a local -datadir, or remote workers that
	// warm-restarted from theirs — report the update blocks already in
	// the recovered state; the replay resumes past them.
	var skip int64
	if tot := svc.Totals(); tot.WALRecords > 0 {
		skip = tot.WALRecords
		st := svc.State()
		fmt.Fprintf(os.Stderr, "recovered: epoch %d, %d vertices, %d edges, %d update blocks already applied\n",
			st.Epoch, st.NumVertices, st.NumEdges, skip)
	}

	var queries, failed, truncated, updates int64
	var skipped, applied int64 // update blocks: caught up vs applied this run
	t0 := time.Now()

	var wave sync.WaitGroup
	flushWave := func() { wave.Wait() }
	var adds, dels []hcpath.Edge
	pendingAdd := map[hcpath.Edge]bool{}
	pendingDel := map[hcpath.Edge]bool{}
	discardBlock := func() {
		adds, dels = nil, nil
		clear(pendingAdd)
		clear(pendingDel)
	}
	flushUpdates := func() {
		if len(adds) == 0 && len(dels) == 0 {
			return
		}
		if skipped < skip {
			// This block is already in the recovered state; consume it
			// without re-applying.
			skipped++
			discardBlock()
			return
		}
		epoch, err := svc.ApplyUpdates(adds, dels)
		if err != nil {
			fail("apply updates: %v", err)
		}
		applied++
		updates += int64(len(adds) + len(dels))
		if cfg.verbose {
			fmt.Fprintf(os.Stderr, "applied %d adds, %d dels → epoch %d\n", len(adds), len(dels), epoch)
		}
		discardBlock()
		if cfg.crashAfter > 0 && applied >= int64(cfg.crashAfter) {
			// Simulated crash: no Close, no final checkpoint, no WAL
			// drain beyond what the fsync policy already guaranteed.
			fmt.Fprintf(os.Stderr, "crash: exiting after %d applied update blocks at epoch %d\n", applied, epoch)
			os.Exit(137)
		}
	}

	for _, o := range ops {
		switch {
		case o.add:
			flushWave()
			// ApplyUpdates applies a block's dels before its adds, so an
			// edge already pending deletion must flush first to keep the
			// file's sequential semantics.
			if pendingDel[o.edge] {
				flushUpdates()
			}
			adds = append(adds, o.edge)
			pendingAdd[o.edge] = true
		case o.del:
			flushWave()
			if pendingAdd[o.edge] {
				flushUpdates()
			}
			dels = append(dels, o.edge)
			pendingDel[o.edge] = true
		default:
			flushUpdates()
			if skipped < skip {
				continue // answered by the previous run, before the crash
			}
			queries++
			wave.Add(1)
			waveEpoch := svc.Epoch()
			go func(q hcpath.Query, i int64) {
				defer wave.Done()
				switch count, _, err := svc.Count(context.Background(), q); {
				case err == nil:
					if cfg.verbose {
						fmt.Fprintf(os.Stderr, "q(s=%d,t=%d,k=%d) @epoch %d: %d paths\n",
							q.S, q.T, q.K, waveEpoch, count)
					}
				case errors.Is(err, hcpath.ErrLimitReached) || errors.Is(err, context.DeadlineExceeded):
					atomic.AddInt64(&truncated, 1)
				default:
					fmt.Fprintf(os.Stderr, "hcpath: query %d: %v\n", i, err)
					atomic.AddInt64(&failed, 1)
				}
			}(o.q, queries)
		}
	}
	flushWave()
	flushUpdates()
	elapsed := time.Since(t0)

	tot := svc.Totals()
	fmt.Printf("replayed %d queries and %d updates in %v, %d failed, %d truncated\n",
		queries, updates, elapsed.Round(time.Microsecond), failed, truncated)
	fmt.Printf("epoch %d (%d effective edge changes, %d compactions, %d delta edges pending), %d batches, %d paths\n",
		tot.Epoch, tot.UpdatesApplied, tot.Compactions, tot.DeltaEdges, tot.Batches, tot.Paths)
	fmt.Println(cacheLine(tot))
	if line := shardLine(svc); line != "" {
		fmt.Println(line)
	}
	if line := wireLine(svc); line != "" {
		fmt.Println(line)
	}
	st := svc.State()
	if err := svc.Close(); err != nil {
		fail("close service: %v", err)
	}
	if cfg.dataDir != "" || tot.WALRecords > 0 {
		fmt.Printf("wal: %d records, %d checkpoints, snapshot epoch %d\n",
			tot.WALRecords, tot.Checkpoints, tot.SnapshotEpoch)
	}
	if cfg.dataDir != "" || len(cfg.connect) > 0 {
		fmt.Printf("state: epoch %d, n %d, m %d, crc %08x\n",
			st.Epoch, st.NumVertices, st.NumEdges, st.Checksum)
	}
}

// cacheLine renders the replay report's index-cache summary from the
// service's lifetime totals.
func cacheLine(tot hcpath.ServiceTotals) string {
	if tot.IndexHits+tot.IndexMisses == 0 {
		return "index cache: no probes"
	}
	return fmt.Sprintf("index cache: %.1f%% hit ratio (%d hits, %d misses, %d widened), %d evictions, %.1f MiB",
		100*tot.IndexHitRatio(), tot.IndexHits, tot.IndexMisses, tot.IndexWidened,
		tot.IndexEvictions, float64(tot.IndexCacheBytes)/(1<<20))
}

func report(st hcpath.Stats, elapsed time.Duration) {
	fmt.Fprintf(os.Stderr,
		"done in %v (index %v, cluster %v, detect %v, enumerate %v); %d groups, %d shared sub-queries, %d spliced paths\n",
		elapsed.Round(time.Microsecond),
		time.Duration(st.IndexNanos).Round(time.Microsecond),
		time.Duration(st.ClusterNanos).Round(time.Microsecond),
		time.Duration(st.DetectNanos).Round(time.Microsecond),
		time.Duration(st.EnumerateNanos).Round(time.Microsecond),
		st.Groups, st.SharedQueries, st.SplicedPaths)
}

func parseAlgo(name string) (hcpath.Algorithm, error) {
	switch strings.ToLower(name) {
	case "batch+", "batchenum+":
		return hcpath.BatchEnumPlus, nil
	case "batch", "batchenum":
		return hcpath.BatchEnum, nil
	case "basic+", "basicenum+":
		return hcpath.BasicEnumPlus, nil
	case "basic", "basicenum":
		return hcpath.BasicEnum, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (want batch+, batch, basic+ or basic)", name)
}

func loadQueries(path, one string) ([]hcpath.Query, error) {
	if one != "" {
		parts := strings.Split(one, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("-query wants 's,t,k', got %q", one)
		}
		vals := make([]int, 3)
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("-query field %d: %v", i, err)
			}
			vals[i] = v
		}
		return []hcpath.Query{{S: hcpath.VertexID(vals[0]), T: hcpath.VertexID(vals[1]), K: vals[2]}}, nil
	}
	if path == "" {
		return nil, fmt.Errorf("need -queries or -query")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var qs []hcpath.Query
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: want 's t k', got %q", path, line, text)
		}
		s, err1 := strconv.ParseUint(fields[0], 10, 32)
		t, err2 := strconv.ParseUint(fields[1], 10, 32)
		k, err3 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%s:%d: malformed query %q", path, line, text)
		}
		qs = append(qs, hcpath.Query{S: hcpath.VertexID(s), T: hcpath.VertexID(t), K: k})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(qs) == 0 {
		return nil, fmt.Errorf("%s: no queries", path)
	}
	return qs, nil
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "hcpath: "+format+"\n", args...)
	os.Exit(1)
}
