package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkEngines/BatchEnum+-8         	      37	  31714301 ns/op	        16.10 queries/s	 1300 B/op	      14 allocs/op
BenchmarkEngines/BatchEnum+-8         	      40	  29500000 ns/op	        17.00 queries/s	 1200 B/op	      12 allocs/op
BenchmarkEngines/BasicEnum-8          	      10	 100000000 ns/op
BenchmarkServiceThroughput/Microbatched-8 	       5	 200000000 ns/op	      400.0 queries/s	       3.0 queries/batch
PASS
ok  	repro	12.3s
`

func TestParseBench(t *testing.T) {
	ns, allocs, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkEngines/BatchEnum+":             29500000, // min of the two repeats
		"BenchmarkEngines/BasicEnum":              100000000,
		"BenchmarkServiceThroughput/Microbatched": 200000000,
	}
	if len(ns) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(ns), len(want), ns)
	}
	for name, v := range want {
		if ns[name] != v {
			t.Errorf("%s = %v, want %v", name, ns[name], v)
		}
	}
	// allocs/op: min across repeats, and only for -benchmem lines.
	if len(allocs) != 1 {
		t.Fatalf("parsed %d alloc entries, want 1: %v", len(allocs), allocs)
	}
	if got := allocs["BenchmarkEngines/BatchEnum+"]; got != 12 {
		t.Errorf("min allocs/op = %v, want 12", got)
	}
}

func TestParseBenchNoBenchmem(t *testing.T) {
	_, allocs, err := parseBench(strings.NewReader("BenchmarkX-8 10 100 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if allocs != nil {
		t.Errorf("allocs = %v, want nil when no line carries allocs/op", allocs)
	}
}

func TestParseBenchRejectsGarbageNsOp(t *testing.T) {
	if _, _, err := parseBench(strings.NewReader("BenchmarkX-8 10 zzz ns/op\n")); err == nil {
		t.Fatal("garbage ns/op accepted")
	}
}

func TestStripCPUSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkEngines/BatchEnum+-8": "BenchmarkEngines/BatchEnum+",
		"BenchmarkFoo-16":               "BenchmarkFoo",
		"BenchmarkBare":                 "BenchmarkBare",
		"BenchmarkTricky-name":          "BenchmarkTricky-name", // non-numeric suffix kept
	}
	for in, want := range cases {
		if got := stripCPUSuffix(in); got != want {
			t.Errorf("stripCPUSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompare(t *testing.T) {
	base := map[string]float64{"A": 100, "B": 100, "C": 100}
	cur := map[string]float64{"A": 110, "B": 130, "D": 50}

	rows, bad := compare(base, cur, 25, "ns/op")
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4: %v", len(rows), rows)
	}
	// B regressed 30% > 25%, C vanished; A (+10%) and D (new) pass.
	if len(bad) != 2 {
		t.Fatalf("%d failures, want 2: %v", len(bad), bad)
	}
	for _, b := range bad {
		if !strings.HasPrefix(b, "B:") && !strings.HasPrefix(b, "C:") {
			t.Errorf("unexpected failure %q", b)
		}
	}

	// Everything within a looser threshold (except the vanished C).
	_, bad = compare(base, cur, 50, "ns/op")
	if len(bad) != 1 || !strings.HasPrefix(bad[0], "C:") {
		t.Fatalf("loose threshold failures = %v, want only C", bad)
	}

	// Improvements never fail.
	_, bad = compare(map[string]float64{"A": 100}, map[string]float64{"A": 10}, 25, "ns/op")
	if len(bad) != 0 {
		t.Fatalf("improvement flagged: %v", bad)
	}
}

func TestCompareZeroAllocBaseline(t *testing.T) {
	// A zero-alloc baseline that starts allocating fails outright (the
	// percentage is undefined); zero staying at zero passes.
	base := map[string]float64{"Hot": 0, "Cold": 0}
	cur := map[string]float64{"Hot": 3, "Cold": 0}
	_, bad := compare(base, cur, 25, "allocs/op")
	if len(bad) != 1 || !strings.HasPrefix(bad[0], "Hot:") {
		t.Fatalf("failures = %v, want only Hot (0 -> 3 allocs/op)", bad)
	}
}
