package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkEngines/BatchEnum+-8         	      37	  31714301 ns/op	        16.10 queries/s
BenchmarkEngines/BatchEnum+-8         	      40	  29500000 ns/op	        17.00 queries/s
BenchmarkEngines/BasicEnum-8          	      10	 100000000 ns/op
BenchmarkServiceThroughput/Microbatched-8 	       5	 200000000 ns/op	      400.0 queries/s	       3.0 queries/batch
PASS
ok  	repro	12.3s
`

func TestParseBench(t *testing.T) {
	ns, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkEngines/BatchEnum+":             29500000, // min of the two repeats
		"BenchmarkEngines/BasicEnum":              100000000,
		"BenchmarkServiceThroughput/Microbatched": 200000000,
	}
	if len(ns) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(ns), len(want), ns)
	}
	for name, v := range want {
		if ns[name] != v {
			t.Errorf("%s = %v, want %v", name, ns[name], v)
		}
	}
}

func TestParseBenchRejectsGarbageNsOp(t *testing.T) {
	if _, err := parseBench(strings.NewReader("BenchmarkX-8 10 zzz ns/op\n")); err == nil {
		t.Fatal("garbage ns/op accepted")
	}
}

func TestStripCPUSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkEngines/BatchEnum+-8": "BenchmarkEngines/BatchEnum+",
		"BenchmarkFoo-16":               "BenchmarkFoo",
		"BenchmarkBare":                 "BenchmarkBare",
		"BenchmarkTricky-name":          "BenchmarkTricky-name", // non-numeric suffix kept
	}
	for in, want := range cases {
		if got := stripCPUSuffix(in); got != want {
			t.Errorf("stripCPUSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompare(t *testing.T) {
	base := map[string]float64{"A": 100, "B": 100, "C": 100}
	cur := map[string]float64{"A": 110, "B": 130, "D": 50}

	rows, bad := compare(base, cur, 25)
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4: %v", len(rows), rows)
	}
	// B regressed 30% > 25%, C vanished; A (+10%) and D (new) pass.
	if len(bad) != 2 {
		t.Fatalf("%d failures, want 2: %v", len(bad), bad)
	}
	for _, b := range bad {
		if !strings.HasPrefix(b, "B:") && !strings.HasPrefix(b, "C:") {
			t.Errorf("unexpected failure %q", b)
		}
	}

	// Everything within a looser threshold (except the vanished C).
	_, bad = compare(base, cur, 50)
	if len(bad) != 1 || !strings.HasPrefix(bad[0], "C:") {
		t.Fatalf("loose threshold failures = %v, want only C", bad)
	}

	// Improvements never fail.
	_, bad = compare(map[string]float64{"A": 100}, map[string]float64{"A": 10}, 25)
	if len(bad) != 0 {
		t.Fatalf("improvement flagged: %v", bad)
	}
}
