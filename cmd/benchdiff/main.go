// Command benchdiff is the perf-regression gate: it converts `go test
// -bench` output into a committed JSON baseline and compares a fresh
// run against it, failing when any benchmark regresses past a
// threshold.
//
//	go test -run '^$' -bench 'Engines' -benchtime=200ms -count=3 . | tee bench.txt
//	benchdiff parse -in bench.txt -out BENCH.json
//	benchdiff compare -baseline bench_baseline.json -current BENCH.json -threshold 25
//
// parse keeps the minimum ns/op — and, when the run used -benchmem,
// the minimum allocs/op — per benchmark across -count repeats (the
// least-noisy estimator of a benchmark's true cost on the machine) and
// strips the -GOMAXPROCS suffix so baselines compare across core
// counts. compare exits non-zero when a benchmark present in the
// baseline is slower than threshold percent in the current run, or has
// disappeared from it; new benchmarks are reported but pass (commit a
// refreshed baseline to start gating them). allocs/op is gated with
// the same threshold, plus two hard edges: a zero-alloc baseline that
// starts allocating fails outright, and a baseline with allocation
// data rejects current runs that forgot -benchmem.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is the committed JSON shape: benchmark name → min ns/op and
// min allocs/op.
type Result struct {
	// Note documents how the numbers were produced; free-form.
	Note string `json:"note,omitempty"`
	// NsPerOp maps benchmark name (sub-benchmarks included, -cpu
	// suffix stripped) to its minimum ns/op across repeats.
	NsPerOp map[string]float64 `json:"ns_per_op"`
	// AllocsPerOp is the matching minimum allocs/op, present when the
	// run was made with -benchmem. Baselines without it skip the
	// allocation gate (pre-benchmem baselines stay loadable).
	AllocsPerOp map[string]float64 `json:"allocs_per_op,omitempty"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		cmdParse(os.Args[2:])
	case "compare":
		cmdCompare(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  benchdiff parse   [-in bench.txt] [-out out.json] [-note text]
  benchdiff compare -baseline base.json -current cur.json [-threshold pct]
`)
	os.Exit(2)
}

func cmdParse(args []string) {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	in := fs.String("in", "", "benchmark output file (default stdin)")
	out := fs.String("out", "", "JSON output file (default stdout)")
	note := fs.String("note", "", "provenance note stored in the JSON")
	fs.Parse(args)

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		r = f
	}
	ns, allocs, err := parseBench(r)
	if err != nil {
		fail("%v", err)
	}
	if len(ns) == 0 {
		fail("no benchmark results found")
	}
	res := Result{Note: *note, NsPerOp: ns, AllocsPerOp: allocs}
	enc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fail("%v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fail("%v", err)
	}
	fmt.Fprintf(os.Stderr, "benchdiff: wrote %d benchmarks to %s\n", len(ns), *out)
}

func cmdCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	basePath := fs.String("baseline", "", "committed baseline JSON")
	curPath := fs.String("current", "", "fresh run JSON")
	threshold := fs.Float64("threshold", 25, "max tolerated slowdown in percent")
	fs.Parse(args)
	if *basePath == "" || *curPath == "" {
		usage()
	}
	base, err := loadResult(*basePath)
	if err != nil {
		fail("%v", err)
	}
	cur, err := loadResult(*curPath)
	if err != nil {
		fail("%v", err)
	}
	rows, bad := compare(base.NsPerOp, cur.NsPerOp, *threshold, "ns/op")
	if len(base.AllocsPerOp) > 0 {
		if len(cur.AllocsPerOp) == 0 {
			bad = append(bad, "baseline has allocs/op but the current run has none; rerun the benchmarks with -benchmem")
		} else {
			arows, abad := compare(base.AllocsPerOp, cur.AllocsPerOp, *threshold, "allocs/op")
			rows, bad = append(rows, arows...), append(bad, abad...)
		}
	}
	for _, row := range rows {
		fmt.Println(row)
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchdiff: FAIL — %d metric(s) regressed past %.0f%% (or vanished):\n", len(bad), *threshold)
		for _, b := range bad {
			fmt.Fprintf(os.Stderr, "  %s\n", b)
		}
		fmt.Fprintf(os.Stderr, "see CONTRIBUTING.md for the baseline update workflow\n")
		os.Exit(1)
	}
	fmt.Printf("benchdiff: OK — %d benchmarks within %.0f%% of baseline\n", len(base.NsPerOp), *threshold)
}

func loadResult(path string) (Result, error) {
	var res Result
	data, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	if err := json.Unmarshal(data, &res); err != nil {
		return res, fmt.Errorf("%s: %w", path, err)
	}
	if len(res.NsPerOp) == 0 {
		return res, fmt.Errorf("%s: no benchmarks", path)
	}
	return res, nil
}

// parseBench extracts min ns/op — and min allocs/op when present — per
// benchmark from `go test -bench` output. Lines look like
//
//	BenchmarkEngines/BatchEnum+-8   37   31714301 ns/op   16.10 queries/s   1200 B/op   14 allocs/op
//
// The name is the 1st field and each value precedes its unit; the -N
// GOMAXPROCS suffix is stripped so baselines survive core-count
// changes.
func parseBench(r io.Reader) (ns, allocs map[string]float64, err error) {
	ns = make(map[string]float64)
	allocs = make(map[string]float64)
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, err
	}
	for lineNo, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := stripCPUSuffix(fields[0])
		foundNs := false
		for i := 2; i+1 < len(fields); i++ {
			unit := fields[i+1]
			if unit != "ns/op" && unit != "allocs/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: bad %s %q: %v", lineNo+1, unit, fields[i], err)
			}
			m := allocs
			if unit == "ns/op" {
				m = ns
				foundNs = true
			}
			if old, ok := m[name]; !ok || v < old {
				m[name] = v
			}
		}
		if !foundNs {
			delete(allocs, name) // malformed line: keep the maps aligned
		}
	}
	if len(allocs) == 0 {
		allocs = nil
	}
	return ns, allocs, nil
}

// stripCPUSuffix drops a trailing -N (the GOMAXPROCS decoration).
func stripCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// compare renders a delta table for one metric and collects the
// failures: benchmarks worse than threshold percent, benchmarks that
// left a zero baseline (any regression from zero is infinite percent),
// and baseline benchmarks missing from the current run. New benchmarks
// pass with a note.
func compare(base, cur map[string]float64, threshold float64, unit string) (rows, bad []string) {
	names := make([]string, 0, len(base)+len(cur))
	for name := range base {
		names = append(names, name)
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		b, inBase := base[name]
		c, inCur := cur[name]
		switch {
		case !inBase:
			rows = append(rows, fmt.Sprintf("%-60s %12.0f %s  (new, not gated)", name, c, unit))
		case !inCur:
			rows = append(rows, fmt.Sprintf("%-60s missing from current run (%s)", name, unit))
			bad = append(bad, fmt.Sprintf("%s: %s in baseline but not in current run", name, unit))
		case b == 0:
			row := fmt.Sprintf("%-60s %12.0f → %12.0f %s", name, b, c, unit)
			if c > 0 {
				row += "  REGRESSION"
				bad = append(bad, fmt.Sprintf("%s: was allocation-free, now %.0f %s", name, c, unit))
			}
			rows = append(rows, row)
		default:
			pct := 100 * (c - b) / b
			row := fmt.Sprintf("%-60s %12.0f → %12.0f %s  %+7.1f%%", name, b, c, unit, pct)
			if pct > threshold {
				row += "  REGRESSION"
				bad = append(bad, fmt.Sprintf("%s: %.1f%% worse (%.0f → %.0f %s)", name, pct, b, c, unit))
			}
			rows = append(rows, row)
		}
	}
	return rows, bad
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}
