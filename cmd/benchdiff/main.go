// Command benchdiff is the perf-regression gate: it converts `go test
// -bench` output into a committed JSON baseline and compares a fresh
// run against it, failing when any benchmark regresses past a
// threshold.
//
//	go test -run '^$' -bench 'Engines' -benchtime=200ms -count=3 . | tee bench.txt
//	benchdiff parse -in bench.txt -out BENCH.json
//	benchdiff compare -baseline bench_baseline.json -current BENCH.json -threshold 25
//
// parse keeps the minimum ns/op per benchmark across -count repeats —
// the least-noisy estimator of a benchmark's true cost on the machine —
// and strips the -GOMAXPROCS suffix so baselines compare across core
// counts. compare exits non-zero when a benchmark present in the
// baseline is slower than threshold percent in the current run, or has
// disappeared from it; new benchmarks are reported but pass (commit a
// refreshed baseline to start gating them).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is the committed JSON shape: benchmark name → min ns/op.
type Result struct {
	// Note documents how the numbers were produced; free-form.
	Note string `json:"note,omitempty"`
	// NsPerOp maps benchmark name (sub-benchmarks included, -cpu
	// suffix stripped) to its minimum ns/op across repeats.
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		cmdParse(os.Args[2:])
	case "compare":
		cmdCompare(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  benchdiff parse   [-in bench.txt] [-out out.json] [-note text]
  benchdiff compare -baseline base.json -current cur.json [-threshold pct]
`)
	os.Exit(2)
}

func cmdParse(args []string) {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	in := fs.String("in", "", "benchmark output file (default stdin)")
	out := fs.String("out", "", "JSON output file (default stdout)")
	note := fs.String("note", "", "provenance note stored in the JSON")
	fs.Parse(args)

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		r = f
	}
	ns, err := parseBench(r)
	if err != nil {
		fail("%v", err)
	}
	if len(ns) == 0 {
		fail("no benchmark results found")
	}
	res := Result{Note: *note, NsPerOp: ns}
	enc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fail("%v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fail("%v", err)
	}
	fmt.Fprintf(os.Stderr, "benchdiff: wrote %d benchmarks to %s\n", len(ns), *out)
}

func cmdCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	basePath := fs.String("baseline", "", "committed baseline JSON")
	curPath := fs.String("current", "", "fresh run JSON")
	threshold := fs.Float64("threshold", 25, "max tolerated slowdown in percent")
	fs.Parse(args)
	if *basePath == "" || *curPath == "" {
		usage()
	}
	base, err := loadResult(*basePath)
	if err != nil {
		fail("%v", err)
	}
	cur, err := loadResult(*curPath)
	if err != nil {
		fail("%v", err)
	}
	rows, bad := compare(base.NsPerOp, cur.NsPerOp, *threshold)
	for _, row := range rows {
		fmt.Println(row)
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchdiff: FAIL — %d benchmark(s) regressed past %.0f%% (or vanished):\n", len(bad), *threshold)
		for _, b := range bad {
			fmt.Fprintf(os.Stderr, "  %s\n", b)
		}
		fmt.Fprintf(os.Stderr, "see CONTRIBUTING.md for the baseline update workflow\n")
		os.Exit(1)
	}
	fmt.Printf("benchdiff: OK — %d benchmarks within %.0f%% of baseline\n", len(base.NsPerOp), *threshold)
}

func loadResult(path string) (Result, error) {
	var res Result
	data, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	if err := json.Unmarshal(data, &res); err != nil {
		return res, fmt.Errorf("%s: %w", path, err)
	}
	if len(res.NsPerOp) == 0 {
		return res, fmt.Errorf("%s: no benchmarks", path)
	}
	return res, nil
}

// parseBench extracts min ns/op per benchmark from `go test -bench`
// output. Lines look like
//
//	BenchmarkEngines/BatchEnum+-8   37   31714301 ns/op   16.10 queries/s
//
// Name and ns/op are the 1st and 3rd fields; the -N GOMAXPROCS suffix
// is stripped so baselines survive core-count changes.
func parseBench(r io.Reader) (map[string]float64, error) {
	ns := make(map[string]float64)
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	for lineNo, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		var val float64
		found := false
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("line %d: bad ns/op %q: %v", lineNo+1, fields[i], err)
				}
				val, found = v, true
				break
			}
		}
		if !found {
			continue
		}
		name := stripCPUSuffix(fields[0])
		if old, ok := ns[name]; !ok || val < old {
			ns[name] = val
		}
	}
	return ns, nil
}

// stripCPUSuffix drops a trailing -N (the GOMAXPROCS decoration).
func stripCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// compare renders a delta table and collects the failures: benchmarks
// slower than threshold percent, and baseline benchmarks missing from
// the current run. New benchmarks pass with a note.
func compare(base, cur map[string]float64, threshold float64) (rows, bad []string) {
	names := make([]string, 0, len(base)+len(cur))
	for name := range base {
		names = append(names, name)
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		b, inBase := base[name]
		c, inCur := cur[name]
		switch {
		case !inBase:
			rows = append(rows, fmt.Sprintf("%-60s %12.0f ns/op  (new, not gated)", name, c))
		case !inCur:
			rows = append(rows, fmt.Sprintf("%-60s missing from current run", name))
			bad = append(bad, fmt.Sprintf("%s: in baseline but not in current run", name))
		default:
			pct := 100 * (c - b) / b
			row := fmt.Sprintf("%-60s %12.0f → %12.0f ns/op  %+7.1f%%", name, b, c, pct)
			if pct > threshold {
				row += "  REGRESSION"
				bad = append(bad, fmt.Sprintf("%s: %.1f%% slower (%.0f → %.0f ns/op)", name, pct, b, c))
			}
			rows = append(rows, row)
		}
	}
	return rows, bad
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}
