package hcpath

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// paperEdges is the Fig. 1 running example, through the public API.
func paperEdges() []Edge {
	return []Edge{
		{0, 1}, {0, 4}, {2, 1}, {2, 4}, {5, 1},
		{1, 7}, {1, 8}, {4, 9}, {9, 3}, {9, 15}, {9, 8},
		{3, 15}, {7, 10}, {7, 8}, {3, 6}, {15, 6},
		{10, 12}, {12, 11}, {12, 13}, {6, 11}, {6, 13}, {6, 14},
	}
}

func paperGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := NewGraph(16, paperEdges())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

var paperQueries = []Query{
	{S: 0, T: 11, K: 5},
	{S: 2, T: 13, K: 5},
	{S: 5, T: 12, K: 5},
	{S: 4, T: 14, K: 4},
	{S: 9, T: 14, K: 3},
}

// TestEnumeratePaperBatch: counts and one spot-checked path set from
// the paper's Example 2.1.
func TestEnumeratePaperBatch(t *testing.T) {
	g := paperGraph(t)
	eng := NewEngine(g, nil)
	res, err := eng.Enumerate(paperQueries)
	if err != nil {
		t.Fatal(err)
	}
	wantCounts := []int{3, 3, 1, 2, 2}
	for i, w := range wantCounts {
		if res.Count(i) != w {
			t.Errorf("query %d: %d paths, want %d", i, res.Count(i), w)
		}
	}
	if res.TotalPaths() != 11 {
		t.Errorf("TotalPaths = %d, want 11", res.TotalPaths())
	}
	var got []string
	for _, p := range res.Paths(0) {
		got = append(got, p.String())
	}
	sort.Strings(got)
	want := []string{
		"(v0, v1, v7, v10, v12, v11)",
		"(v0, v4, v9, v15, v6, v11)",
		"(v0, v4, v9, v3, v6, v11)",
	}
	sort.Strings(want)
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("q0 paths = %v, want %v", got, want)
		}
	}
}

// TestAllAlgorithmsAgree: every public algorithm returns identical
// counts on the paper batch.
func TestAllAlgorithmsAgree(t *testing.T) {
	g := paperGraph(t)
	for _, alg := range []Algorithm{BatchEnumPlus, BatchEnum, BasicEnumPlus, BasicEnum} {
		eng := NewEngine(g, &Options{Algorithm: alg})
		counts, _, err := eng.Count(paperQueries)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		want := []int64{3, 3, 1, 2, 2}
		for i, w := range want {
			if counts[i] != w {
				t.Errorf("%v: query %d count %d, want %d", alg, i, counts[i], w)
			}
		}
	}
}

// TestStream: the callback sees every path with its query index.
func TestStream(t *testing.T) {
	g := paperGraph(t)
	eng := NewEngine(g, nil)
	perQuery := map[int]int{}
	st, err := eng.Stream(paperQueries, func(i int, p Path) {
		perQuery[i]++
		if p[0] != paperQueries[i].S || p[len(p)-1] != paperQueries[i].T {
			t.Errorf("query %d: path %v has wrong endpoints", i, p)
		}
		if p.Len() > paperQueries[i].K {
			t.Errorf("query %d: path %v exceeds hop constraint", i, p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if perQuery[0] != 3 || perQuery[4] != 2 {
		t.Errorf("stream counts %v", perQuery)
	}
	if st.EnumerateNanos <= 0 {
		t.Error("stats missing enumeration time")
	}
}

// TestStatsSharing: the default engine reports detected sharing on the
// paper batch when clustered loosely.
func TestStatsSharing(t *testing.T) {
	g := paperGraph(t)
	eng := NewEngine(g, &Options{Gamma: 0.8})
	_, st, err := eng.Count(paperQueries)
	if err != nil {
		t.Fatal(err)
	}
	if st.Groups == 0 {
		t.Error("no query groups reported")
	}
	if st.SharedQueries == 0 {
		t.Error("no shared HC-s path queries reported")
	}
}

// TestDisableSharing still answers correctly.
func TestDisableSharing(t *testing.T) {
	g := paperGraph(t)
	eng := NewEngine(g, &Options{DisableSharing: true})
	counts, st, err := eng.Count(paperQueries)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 3 {
		t.Errorf("count %d, want 3", counts[0])
	}
	if st.SplicedPaths != 0 {
		t.Errorf("sharing disabled but %d paths spliced", st.SplicedPaths)
	}
}

// TestQueryValidation: bad hop constraints and vertices are rejected.
func TestQueryValidation(t *testing.T) {
	g := paperGraph(t)
	eng := NewEngine(g, nil)
	bad := [][]Query{
		{{S: 0, T: 11, K: 0}},
		{{S: 0, T: 11, K: 99}},
		{{S: 0, T: 0, K: 3}},
		{{S: 0, T: 999, K: 3}},
	}
	for i, qs := range bad {
		if _, err := eng.Enumerate(qs); err == nil {
			t.Errorf("case %d: invalid query accepted", i)
		}
	}
}

// TestMaxHopsOption widens the cap.
func TestMaxHopsOption(t *testing.T) {
	g, err := NewGraph(20, func() []Edge {
		var es []Edge
		for i := 0; i < 19; i++ {
			es = append(es, Edge{VertexID(i), VertexID(i + 1)})
		}
		return es
	}())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(g, &Options{MaxHops: 19})
	counts, _, err := eng.Count([]Query{{S: 0, T: 19, K: 19}})
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 1 {
		t.Errorf("line path count %d, want 1", counts[0])
	}
}

// TestMaxHopsClamp: MaxHops above 255 must clamp, not let convert's
// uint8 cast silently truncate the hop constraint (K=260 used to become
// K=4 with MaxHops=300, returning wrong answers instead of an error).
func TestMaxHopsClamp(t *testing.T) {
	g, err := NewGraph(6, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(g, &Options{MaxHops: 300})
	if _, err := eng.Enumerate([]Query{{S: 0, T: 4, K: 260}}); err == nil {
		t.Fatal("K=260 accepted under MaxHops=300; uint8 truncation regression")
	}
	// The clamped cap itself must still work.
	counts, _, err := eng.Count([]Query{{S: 0, T: 5, K: 255}})
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 1 {
		t.Errorf("K=255 count %d, want 1", counts[0])
	}
}

// TestWorkersBoundary pins the documented Workers semantics at the
// public layer: 0 is the sequential engine, negative is GOMAXPROCS,
// positive is the literal count — all with identical results.
func TestWorkersBoundary(t *testing.T) {
	g := paperGraph(t)
	want := []int64{3, 3, 1, 2, 2}
	for _, workers := range []int{-1, 0, 1} {
		eng := NewEngine(g, &Options{Workers: workers})
		counts, _, err := eng.Count(paperQueries)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, w := range want {
			if counts[i] != w {
				t.Errorf("workers=%d: query %d count %d, want %d", workers, i, counts[i], w)
			}
		}
	}
}

// TestBuildWorkersBoundary pins the documented BuildWorkers semantics
// at the public layer: 0 is the sequential reference kernel, negative
// is GOMAXPROCS, positive is the literal count — identical results in
// every combination with enumeration Workers and the index cache.
func TestBuildWorkersBoundary(t *testing.T) {
	g := paperGraph(t)
	want := []int64{3, 3, 1, 2, 2}
	for _, build := range []int{-1, 0, 1, 4} {
		for _, cacheBytes := range []int64{0, 1 << 20} {
			eng := NewEngine(g, &Options{Workers: 1, BuildWorkers: build, IndexCacheBytes: cacheBytes})
			counts, _, err := eng.Count(paperQueries)
			if err != nil {
				t.Fatalf("buildworkers=%d cache=%d: %v", build, cacheBytes, err)
			}
			for i, w := range want {
				if counts[i] != w {
					t.Errorf("buildworkers=%d cache=%d: query %d count %d, want %d",
						build, cacheBytes, i, counts[i], w)
				}
			}
		}
	}
}

// TestNewGraphErrors rejects a negative size.
func TestNewGraphErrors(t *testing.T) {
	if _, err := NewGraph(-1, nil); err == nil {
		t.Error("negative vertex count accepted")
	}
}

// TestLoadGraphEdgeList round-trips an edge-list file through the
// public loader.
func TestLoadGraphEdgeList(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	data := "# comment\n0 1\n1 2\n2 3\n0 3\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("loaded |V|=%d |E|=%d, want 4/4", g.NumVertices(), g.NumEdges())
	}
	eng := NewEngine(g, nil)
	counts, _, err := eng.Count([]Query{{S: 0, T: 3, K: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 2 {
		t.Errorf("count %d, want 2 (direct edge and the 3-hop chain)", counts[0])
	}
}

// TestPathString covers the Stringer and Len.
func TestPathString(t *testing.T) {
	p := Path{0, 4, 9}
	if p.String() != "(v0, v4, v9)" {
		t.Errorf("String = %s", p.String())
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
}

// TestAlgorithmNames: public names map to the paper's.
func TestAlgorithmNames(t *testing.T) {
	want := map[Algorithm]string{
		BatchEnumPlus: "BatchEnum+",
		BatchEnum:     "BatchEnum",
		BasicEnumPlus: "BasicEnum+",
		BasicEnum:     "BasicEnum",
	}
	for a, w := range want {
		if a.String() != w {
			t.Errorf("%d.String() = %s, want %s", int(a), a.String(), w)
		}
	}
}

// TestWorkersOption: parallel execution returns the same counts.
func TestWorkersOption(t *testing.T) {
	g := paperGraph(t)
	for _, workers := range []int{-1, 2} {
		eng := NewEngine(g, &Options{Workers: workers})
		counts, _, err := eng.Count(paperQueries)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := []int64{3, 3, 1, 2, 2}
		for i, w := range want {
			if counts[i] != w {
				t.Errorf("workers=%d: query %d count %d, want %d", workers, i, counts[i], w)
			}
		}
	}
}
