// Package hcpath is the public API of this repository: batch
// hop-constrained s-t simple path (HC-s-t path) query processing in
// large directed graphs, reproducing "Batch Hop-Constrained s-t Simple
// Path Query Processing in Large Graphs" (Yuan, Hao, Lin, Zhang,
// ICDE 2024).
//
// A Graph is built once from edges or loaded from disk; an Engine then
// answers batches of HC-s-t path queries. The headline algorithm,
// BatchEnumPlus, detects computation shared between the queries of a
// batch — formalised as dominating HC-s path queries — and enumerates
// the common partial paths once:
//
//	g, err := hcpath.NewGraph(4, []hcpath.Edge{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
//	...
//	eng := hcpath.NewEngine(g, nil)
//	res, err := eng.Enumerate([]hcpath.Query{{S: 0, T: 3, K: 3}})
//	for _, p := range res.Paths(0) { fmt.Println(p) }
//
// The paper's baselines (BasicEnum, BasicEnum+, BatchEnum) are exposed
// through Options.Algorithm for comparison, and Stream/Count variants
// avoid materialising exponentially many results.
package hcpath

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/batchenum"
	"repro/internal/graph"
	"repro/internal/hcindex"
	"repro/internal/planner"
	"repro/internal/query"
	"repro/internal/service"
	"repro/internal/shard"
	"repro/internal/sharegraph"
	"repro/internal/store"
	"repro/internal/timing"
)

// VertexID identifies a vertex; vertices are dense integers in [0, N).
type VertexID = graph.VertexID

// Edge is a directed edge.
type Edge struct {
	Src, Dst VertexID
}

// Query is a hop-constrained s-t simple path query q(s,t,k): every
// simple path from S to T with at most K hops.
type Query struct {
	S, T VertexID
	K    int
}

// Path is one result: the vertex sequence from S to T.
type Path []VertexID

// String renders the path as (v0, v1, ..., vk) like the paper. Paths
// print in bulk (every result of a Stream), so the render is kept
// allocation-lean: a strings.Builder sized for typical IDs instead of
// quadratic string concatenation, and strconv.AppendUint instead of
// per-vertex fmt formatting.
func (p Path) String() string {
	var b strings.Builder
	b.Grow(2 + 7*len(p)) // "v12345, " fits most IDs without a regrow
	var num [20]byte
	b.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('v')
		b.Write(strconv.AppendUint(num[:0], uint64(v), 10))
	}
	b.WriteByte(')')
	return b.String()
}

// Len returns the number of hops (edges) of the path.
func (p Path) Len() int { return len(p) - 1 }

// Graph is an immutable directed graph prepared for HC-s-t path
// queries: the CSR adjacency plus its precomputed reverse for backward
// searches.
type Graph struct {
	g  *graph.Graph
	gr *graph.Graph
}

// NewGraph builds a Graph from an edge list with at least n vertices.
// Duplicate edges and self-loops are dropped.
func NewGraph(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("hcpath: negative vertex count %d", n)
	}
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.Src, e.Dst)
	}
	return wrap(b.Build()), nil
}

// LoadGraph reads a graph from disk; ".bin" files use the repository's
// binary CSR format, anything else is parsed as a whitespace-separated
// edge list with '#' comments.
func LoadGraph(path string) (*Graph, error) {
	g, err := graph.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

func wrap(g *graph.Graph) *Graph {
	return &Graph{g: g, gr: g.Reverse()}
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return g.g.NumVertices() }

// NumEdges returns |E| after deduplication.
func (g *Graph) NumEdges() int { return g.g.NumEdges() }

// Algorithm selects one of the paper's four engines.
type Algorithm int

// The engines of the paper's evaluation. BatchEnumPlus is the headline
// algorithm and the default.
const (
	// BatchEnumPlus is Algorithm 4 with the optimised search order.
	BatchEnumPlus Algorithm = iota
	// BatchEnum is Algorithm 4 with the plain search order.
	BatchEnum
	// BasicEnumPlus processes queries independently over a shared
	// index, with the optimised search order.
	BasicEnumPlus
	// BasicEnum is Algorithm 1: independent processing, plain order.
	BasicEnum
)

func (a Algorithm) internal() batchenum.Algorithm {
	switch a {
	case BatchEnum:
		return batchenum.Batch
	case BasicEnumPlus:
		return batchenum.BasicPlus
	case BasicEnum:
		return batchenum.Basic
	default:
		return batchenum.BatchPlus
	}
}

// String implements fmt.Stringer with the paper's names.
func (a Algorithm) String() string { return a.internal().String() }

// Options tunes an Engine. The zero value matches the paper's defaults.
type Options struct {
	// Algorithm selects the engine; the zero value is BatchEnumPlus.
	Algorithm Algorithm
	// Gamma is the query-clustering merge threshold γ ∈ (0, 1]; zero
	// means the paper's default 0.5. Smaller values merge more queries
	// into one sharing group.
	Gamma float64
	// DisableSharing turns off common sub-query detection, reducing the
	// batch engines to their per-query baselines (for ablation).
	DisableSharing bool
	// MaxHops caps K per query; zero means the internal limit of 15.
	// Values above 255 are clamped to 255, the largest representable hop
	// constraint. Enumeration cost and result counts grow exponentially
	// with K.
	MaxHops int
	// Workers enables parallel execution: the independent engines
	// parallelise over queries, the batch engines over sharing groups.
	// Zero runs the sequential engine; negative uses GOMAXPROCS workers;
	// positive uses exactly that many. (The internal
	// batchenum.ParallelOptions layer treats any non-positive count as
	// GOMAXPROCS — this layer never passes it zero.) With parallel
	// execution the emission order across queries is unspecified
	// (per-query results are unaffected).
	Workers int
	// Limit, when positive, caps the result paths emitted per query: a
	// query with more paths is truncated to exactly Limit results, its
	// join/output loops stop early, and the run reports it through
	// Stats.Truncated / Result.Truncated / Result.Err (ErrLimitReached).
	// Limit bounds output volume, not enumeration time — the partial-path
	// search that precedes the output phase does not know how many joins
	// it will feed, so an adversarial query (large K on a dense graph)
	// still needs a context deadline (EnumerateContext et al.) or a
	// service QueryTimeout to bound its work.
	Limit int64
	// IndexCacheBytes controls the hop-distance-map cache of the index
	// provider layer, which lets batches that repeat endpoints reuse
	// each other's MS-BFS results (a cached entry also serves queries
	// with a smaller hop cap, via threshold filtering). Positive values
	// set the cache's byte budget; negative disables caching. Zero picks
	// the layer default: an Engine builds cold per batch (offline
	// batches rarely repeat endpoints), while a Service caches with
	// DefaultIndexCacheBytes — its whole point is repeated traffic.
	IndexCacheBytes int64
	// BuildWorkers parallelises the index-construction phase (the
	// multi-source BFS passes that precede enumeration): positive runs
	// each pass on that many goroutines with direction-optimizing
	// push/pull levels, negative uses GOMAXPROCS, zero keeps the
	// sequential reference kernel. Orthogonal to Workers, which
	// parallelises the enumeration phase; results are identical either
	// way.
	BuildWorkers int
}

// DefaultIndexCacheBytes is the index-cache budget a Service uses when
// Options.IndexCacheBytes is zero.
const DefaultIndexCacheBytes = hcindex.DefaultCacheBytes

// maxHopsLimit is the largest accepted hop constraint: queries carry K
// as uint8 internally, so anything larger would silently truncate.
const maxHopsLimit = 255

// buildWorkers resolves Options.BuildWorkers to an exact goroutine
// count: zero stays sequential, negative becomes GOMAXPROCS.
func (o *Options) buildWorkers() int {
	if o == nil || o.BuildWorkers == 0 {
		return 0
	}
	if o.BuildWorkers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.BuildWorkers
}

func (o *Options) maxHops() int {
	if o == nil || o.MaxHops <= 0 {
		return 15
	}
	if o.MaxHops > maxHopsLimit {
		return maxHopsLimit
	}
	return o.MaxHops
}

// Engine answers HC-s-t path query batches on one graph.
type Engine struct {
	g        *Graph
	opts     Options
	provider hcindex.Provider // nil: cold build per batch
}

// NewEngine returns an engine over g; nil opts selects the defaults
// (BatchEnum+ with γ = 0.5). A positive Options.IndexCacheBytes gives
// the engine a private cross-batch index cache, so successive
// Enumerate/Stream/Count calls that revisit endpoints skip their
// MS-BFS rebuilds — offline reuse of the online service's cache layer.
func NewEngine(g *Graph, opts *Options) *Engine {
	e := &Engine{g: g}
	if opts != nil {
		e.opts = *opts
	}
	if e.opts.IndexCacheBytes > 0 {
		e.provider = hcindex.NewCacheWorkers(e.opts.IndexCacheBytes, e.opts.buildWorkers())
	}
	return e
}

// IndexCacheStats returns the engine's index-cache counters; the zero
// value when the engine has no cache.
func (e *Engine) IndexCacheStats() IndexCacheStats {
	if e.provider == nil {
		return IndexCacheStats{}
	}
	return IndexCacheStats(e.provider.Stats())
}

// IndexCacheStats snapshots an index cache: probe hits/misses (two
// probes per query — forward and backward), hits served from wider-cap
// entries, evictions, and current size.
type IndexCacheStats hcindex.Stats

// HitRatio returns Hits / (Hits + Misses), zero when no probes ran.
func (s IndexCacheStats) HitRatio() float64 { return hcindex.Stats(s).HitRatio() }

// ErrLimitReached marks a query whose result set was truncated to
// Options.Limit while more paths remained. It is reported per query
// (Result.Err, Service.Query) — never as a run-level error, since one
// batch can mix limit-hit and complete queries — and is distinct from
// a context error, which means cancellation cut the query short at an
// arbitrary point rather than at its limit.
var ErrLimitReached = query.ErrLimitReached

// Result holds the materialised paths of one batch, grouped by query
// position.
type Result struct {
	paths [][]Path
	qerr  []error // per-query truncation cause; nil entries = complete
	stats Stats
}

// Paths returns the HC-s-t paths of the i-th query of the batch, or nil
// when i is not a valid query position.
func (r *Result) Paths(i int) []Path {
	if i < 0 || i >= len(r.paths) {
		return nil
	}
	return r.paths[i]
}

// Count returns the number of paths of the i-th query, or zero when i
// is not a valid query position.
func (r *Result) Count(i int) int {
	if i < 0 || i >= len(r.paths) {
		return 0
	}
	return len(r.paths[i])
}

// Truncated reports whether the i-th query's result set was cut short
// (by Options.Limit or by cancellation); Err says which. Out-of-range
// positions report false.
func (r *Result) Truncated(i int) bool { return r.Err(i) != nil }

// Err explains the i-th query's truncation: nil for a complete result
// set (and for out-of-range positions), ErrLimitReached when
// Options.Limit cut it short, or the context's error when the run was
// cancelled before the query finished.
func (r *Result) Err(i int) error {
	if i < 0 || i >= len(r.qerr) {
		return nil
	}
	return r.qerr[i]
}

// TotalPaths returns the number of paths across the whole batch.
func (r *Result) TotalPaths() int {
	n := 0
	for _, ps := range r.paths {
		n += len(ps)
	}
	return n
}

// Stats returns the run's execution statistics.
func (r *Result) Stats() Stats { return r.stats }

// Stats summarises a run: phase times and sharing counters.
type Stats struct {
	// IndexNanos, ClusterNanos, DetectNanos and EnumerateNanos decompose
	// the wall-clock time (Fig. 9's four phases).
	IndexNanos, ClusterNanos, DetectNanos, EnumerateNanos int64
	// Groups is the number of query clusters formed.
	Groups int
	// SharedQueries is the number of dominating HC-s path queries
	// detected across the batch.
	SharedQueries int
	// SplicedPaths counts partial paths answered from the cache instead
	// of recomputed — the direct measure of sharing.
	SplicedPaths int64
	// IndexHits and IndexMisses count the run's index probes (two per
	// query) answered from the provider's cross-batch cache vs built
	// fresh; without a cache every probe is a miss.
	IndexHits, IndexMisses int
	// Truncated counts queries whose result sets were cut short — by
	// Options.Limit or by cancellation. Zero means every result set in
	// the run is complete; per-query causes are on Result.Err.
	Truncated int
}

// convertQuery checks the hop constraint against the engine's cap before
// the narrowing cast to the internal uint8 representation; maxHops is
// already clamped to maxHopsLimit, so the cast cannot truncate. A
// negative i omits the batch position from the error (single-query
// submissions have none).
func convertQuery(q Query, i, maxHops int) (query.Query, error) {
	if q.K < 1 || q.K > maxHops {
		if i < 0 {
			return query.Query{}, fmt.Errorf("hcpath: hop constraint %d outside [1, %d]", q.K, maxHops)
		}
		return query.Query{}, fmt.Errorf("hcpath: query %d: hop constraint %d outside [1, %d]", i, q.K, maxHops)
	}
	return query.Query{S: q.S, T: q.T, K: uint8(q.K)}, nil
}

func (e *Engine) convert(qs []Query) ([]query.Query, error) {
	out := make([]query.Query, len(qs))
	for i, q := range qs {
		iq, err := convertQuery(q, i, e.opts.maxHops())
		if err != nil {
			return nil, err
		}
		out[i] = iq
	}
	return out, nil
}

func (e *Engine) options() batchenum.Options {
	return batchenum.Options{
		Algorithm:    e.opts.Algorithm.internal(),
		Gamma:        e.opts.Gamma,
		Detect:       sharegraph.Options{DisableSharing: e.opts.DisableSharing},
		Provider:     e.provider,
		BuildWorkers: e.opts.buildWorkers(),
	}
}

// runControlled dispatches to the sequential or parallel engine per the
// options, threading the run's Control into the enumeration loops.
func (e *Engine) runControlled(qs []query.Query, ctrl *query.Control, sink query.Sink) (*batchenum.Stats, error) {
	if e.opts.Workers != 0 {
		workers := e.opts.Workers
		if workers < 0 {
			workers = 0 // RunParallel's GOMAXPROCS default
		}
		return batchenum.RunParallelControlled(e.g.g, e.g.gr, qs,
			batchenum.ParallelOptions{Options: e.options(), Workers: workers}, ctrl, sink)
	}
	return batchenum.RunControlled(e.g.g, e.g.gr, qs, e.options(), ctrl, sink)
}

// control builds the Control governing one run over a batch of n
// queries; nil when neither ctx nor Options.Limit can stop it early.
func (e *Engine) control(ctx context.Context, n int) *query.Control {
	return query.NewControl(ctx, time.Time{}, e.opts.Limit, n)
}

// queryErrs collects the batch's per-query truncation causes, nil when
// every result set is complete.
func queryErrs(ctrl *query.Control, n int) []error {
	if ctrl == nil {
		return nil
	}
	var errs []error
	for i := 0; i < n; i++ {
		if err := ctrl.QueryErr(i); err != nil {
			if errs == nil {
				errs = make([]error, n)
			}
			errs[i] = err
		}
	}
	return errs
}

// statsOf projects the engine's internal counters onto the public
// Stats; the directive keeps the projection exhaustive as fields land.
//
//hcpath:mergefields Stats
func statsOf(st *batchenum.Stats) Stats {
	ph := st.Phases
	return Stats{
		IndexNanos:     ph.Get(timing.BuildIndex).Nanoseconds(),
		ClusterNanos:   ph.Get(timing.ClusterQuery).Nanoseconds(),
		DetectNanos:    ph.Get(timing.IdentifySubquery).Nanoseconds(),
		EnumerateNanos: ph.Get(timing.Enumeration).Nanoseconds(),
		Groups:         st.NumGroups,
		SharedQueries:  st.SharedNodes,
		SplicedPaths:   st.SplicedPaths,
		IndexHits:      st.IndexHits,
		IndexMisses:    st.IndexMisses,
		Truncated:      st.Truncated,
	}
}

// Enumerate answers the batch and materialises every path. Result sets
// grow exponentially with K; prefer Stream or Count for large K, or
// bound the output with Options.Limit.
func (e *Engine) Enumerate(qs []Query) (*Result, error) {
	return e.EnumerateContext(context.Background(), qs)
}

// EnumerateContext is Enumerate under a context: the enumeration loops
// poll ctx and unwind promptly when it is cancelled or its deadline
// passes. On cancellation it returns the partial Result it had built
// alongside ctx's error — every contained path is a genuine result;
// Result.Err tells per query whether its set is complete, truncated by
// Options.Limit (ErrLimitReached), or cut off by the cancellation.
// Limit truncation alone is not an error: the call returns nil with
// Stats.Truncated set.
func (e *Engine) EnumerateContext(ctx context.Context, qs []Query) (*Result, error) {
	iqs, err := e.convert(qs)
	if err != nil {
		return nil, err
	}
	ctrl := e.control(ctx, len(qs))
	res := &Result{paths: make([][]Path, len(qs))}
	st, err := e.runControlled(iqs, ctrl, query.FuncSink(func(id int, p []graph.VertexID) {
		cp := make(Path, len(p))
		copy(cp, p)
		res.paths[id] = append(res.paths[id], cp)
	}))
	if st == nil {
		return nil, err // validation failure: no run happened
	}
	res.stats = statsOf(st)
	res.qerr = queryErrs(ctrl, len(qs))
	return res, err
}

// Stream answers the batch and calls emit once per result path with the
// query's batch position. The path slice is reused between calls; copy
// it to retain it.
func (e *Engine) Stream(qs []Query, emit func(queryIndex int, path Path)) (Stats, error) {
	return e.StreamContext(context.Background(), qs, emit)
}

// StreamContext is Stream under a context, with EnumerateContext's
// cancellation semantics: every path emitted before the cancellation is
// a genuine result, the returned error is ctx's, and Stats.Truncated
// counts the queries whose streams were cut short.
func (e *Engine) StreamContext(ctx context.Context, qs []Query, emit func(queryIndex int, path Path)) (Stats, error) {
	iqs, err := e.convert(qs)
	if err != nil {
		return Stats{}, err
	}
	ctrl := e.control(ctx, len(qs))
	st, err := e.runControlled(iqs, ctrl, query.FuncSink(func(id int, p []graph.VertexID) {
		emit(id, Path(p))
	}))
	if st == nil {
		return Stats{}, err
	}
	return statsOf(st), err
}

// Count answers the batch returning only per-query result counts, the
// cheapest mode for exponentially large result sets.
func (e *Engine) Count(qs []Query) ([]int64, Stats, error) {
	return e.CountContext(context.Background(), qs)
}

// CountContext is Count under a context, with EnumerateContext's
// cancellation semantics: on cancellation the counts enumerated so far
// are returned with ctx's error, and with Options.Limit set each count
// saturates at the limit (Stats.Truncated tells how many did).
func (e *Engine) CountContext(ctx context.Context, qs []Query) ([]int64, Stats, error) {
	iqs, err := e.convert(qs)
	if err != nil {
		return nil, Stats{}, err
	}
	ctrl := e.control(ctx, len(qs))
	sink := query.NewCountSink(len(qs))
	st, err := e.runControlled(iqs, ctrl, sink)
	if st == nil {
		return nil, Stats{}, err
	}
	return sink.Counts, statsOf(st), err
}

// BatchStats describes one micro-batch a Service dispatched: queries
// coalesced, sharing found, and wait vs. enumerate time. Its
// SharingRatio method summarises how much of the batch was coalesced.
type BatchStats = service.BatchStats

// ServiceTotals aggregates a Service's lifetime counters.
type ServiceTotals = service.Totals

// PlanStats decomposes a batch's (or a service lifetime's) sharing
// groups by the engine that processed them — single-query PathEnum,
// the Ψ-DFS sharing pipeline, or parallel splice — with per-engine wall
// time. Populated on BatchStats.Plan and ServiceTotals.Plan; without a
// planner every group of a sharing run counts as shared.
type PlanStats = service.PlanStats

// PlannerOptions tunes the adaptive per-batch query planner (see
// ServiceOptions.Planner). The zero value selects sensible defaults for
// every knob, so &PlannerOptions{} simply turns the planner on.
type PlannerOptions = planner.Options

// ErrServiceClosed is returned by Service queries after Close.
var ErrServiceClosed = service.ErrClosed

// ErrOverloaded is returned by Service queries shed by admission
// control (the queue is at MaxQueued, or the caller exhausted its
// MaxPerCaller quota). The query never ran; back off and retry. Test
// with errors.Is — the error is wrapped with context.
var ErrOverloaded = service.ErrOverloaded

// Backoff is the bounded retry policy for callers shed with
// ErrOverloaded — exponential with a per-attempt ceiling, equal-jittered
// so synchronized clients desynchronize, and bounded in total so a
// retry loop gives up loudly instead of spinning forever against a
// service that is not recovering. The zero value retries from 1ms up to
// 64ms per attempt for at most 2s total. The wire client's dialer uses
// the same policy (see ConnectService).
//
//	retry := hcpath.Backoff{}.Start()
//	for {
//		_, _, err := svc.Query(ctx, q)
//		if errors.Is(err, hcpath.ErrOverloaded) {
//			var oe *hcpath.OverloadedError // retry-after hint, wire only
//			hint := time.Duration(0)
//			if errors.As(err, &oe) {
//				hint = oe.RetryAfter
//			}
//			if err := retry.Sleep(ctx, hint); err != nil {
//				return err // budget exhausted (ErrBackoffExhausted) or ctx
//			}
//			continue
//		}
//		return err
//	}
type Backoff = shard.Backoff

// BackoffSleeper tracks one retry loop's position in its Backoff
// schedule; obtain one from Backoff.Start, one per loop.
type BackoffSleeper = shard.Sleeper

// ErrBackoffExhausted marks a retry loop that gave up: the Backoff's
// Total sleep budget was spent and the operation still sheds.
var ErrBackoffExhausted = shard.ErrBackoffExhausted

// OverloadedError is the form ErrOverloaded takes when a remote worker
// sheds a query over the wire (ConnectService): it carries the server's
// retry-after hint for the caller's Backoff. errors.Is(err,
// ErrOverloaded) matches it; errors.As extracts the hint.
type OverloadedError = shard.OverloadedError

// ErrWorkerDown marks a query or update on a ConnectService deployment
// that failed because a worker's connection is gone — refused, dropped
// mid-request, or corrupt. In-flight calls fail with it immediately
// instead of hanging on the dead socket. Test with errors.Is.
var ErrWorkerDown = shard.ErrWorkerDown

// WorkerDownError wraps ErrWorkerDown with which worker (address and
// shard index) and why; extract with errors.As.
type WorkerDownError = shard.WorkerDownError

// ServiceOptions tunes a Service. The zero value batches up to 64
// queries per 2ms window and answers them with BatchEnum+ parallelised
// over sharing groups with GOMAXPROCS workers.
type ServiceOptions struct {
	// Options configures the engine each micro-batch runs through,
	// exactly as for NewEngine — except Workers: a service always runs
	// the parallel engine (it exists to exploit concurrency), so here
	// zero or negative means GOMAXPROCS workers per batch and a positive
	// count is taken literally, one worker reproducing the sequential
	// engine's behaviour. IndexCacheBytes also flips its default: zero
	// gives the service a DefaultIndexCacheBytes cross-batch cache
	// (repeated endpoints skip their MS-BFS rebuilds); negative disables
	// it.
	Options
	// MaxBatch caps the queries coalesced into one micro-batch; zero
	// means 64.
	MaxBatch int
	// MaxWait bounds how long the first query of a forming batch waits
	// for company; zero means 2ms. Larger windows coalesce more
	// concurrent queries (more sharing) at higher per-query latency.
	MaxWait time.Duration
	// CompactAfter tunes the versioned graph store behind ApplyUpdates:
	// live edge changes accumulate in a compact delta overlay, and once
	// the effective changes since the last base reach this count the
	// delta is folded into a fresh CSR in the background. Zero selects
	// the store default (max(4096, edges/8)); negative disables automatic
	// compaction. Irrelevant until ApplyUpdates is used.
	CompactAfter int
	// QueryTimeout, when positive, bounds each micro-batch's engine
	// time: a batch that exceeds it stops promptly, queries already
	// finished keep their complete results, and the rest return their
	// partial results with context.DeadlineExceeded. It is the
	// service-side guard the paper's exponential result sets demand —
	// one runaway K=15 query cannot hold its whole batch hostage.
	// (Options.Limit bounds output volume the same way; a caller's own
	// ctx cancels only that caller's wait, never the batch.)
	QueryTimeout time.Duration
	// Planner, when non-nil, enables the adaptive per-batch query
	// planner: each micro-batch's sharing groups are scored by a cheap
	// cost model (hop caps, endpoint degrees, Γ-overlap probes on the
	// batch index, the cross-batch cache's hit ratio) and dispatched
	// per group to single-query PathEnum, the Ψ-DFS sharing pipeline,
	// or parallel splice — matching the paper's engine crossover
	// online. Observed per-group costs feed back into the model.
	// Result sets are identical with and without a planner; only the
	// work to produce them changes. See BatchStats.Plan /
	// ServiceTotals.Plan for where groups went.
	Planner *PlannerOptions
	// MaxInFlight bounds the micro-batches running concurrently; while
	// the bound is reached, formed batches wait and traffic accumulates
	// in the queue. Zero means unlimited.
	MaxInFlight int
	// MaxQueued bounds the queries admitted but not yet dispatched;
	// beyond it, queries are shed with ErrOverloaded instead of growing
	// the queue without bound. Shedding happens only at admission — an
	// accepted query is always answered. Zero means unlimited.
	MaxQueued int
	// MaxPerCaller is the fairness quota: the maximum
	// admitted-but-unresolved queries any one caller (as named by
	// QueryFrom/CountFrom; anonymous callers share one bucket) may hold.
	// A flooding caller is shed with ErrOverloaded while others keep
	// being admitted. Zero means no quota.
	MaxPerCaller int
	// OnBatch, when non-nil, observes every completed batch's stats;
	// calls are serialised.
	OnBatch func(BatchStats)
	// DataDir, when non-empty, makes the graph store durable: every
	// ApplyUpdates is appended to a CRC-framed write-ahead log under
	// this directory before its epoch publishes, periodic checkpoint
	// files capture the full graph, and OpenService warm-restarts from
	// the directory's contents — reaching the exact pre-crash epoch and
	// edge set. Only OpenService honours it; NewService (which cannot
	// report I/O errors) panics when it is set.
	DataDir string
	// Fsync selects when WAL appends reach stable storage when DataDir
	// is set: FsyncAlways (the default — an acknowledged update survives
	// any crash), FsyncInterval (background sync every SyncEvery; at
	// most one interval of acknowledged updates lost), or FsyncOff
	// (sync only at checkpoints and Close; for bulk loads).
	Fsync FsyncPolicy
	// SyncEvery is the FsyncInterval ticker period; zero selects the
	// store default (100ms).
	SyncEvery time.Duration
	// CheckpointEvery is the background checkpoint cadence in logged
	// update records; zero selects the store default (1024), negative
	// leaves checkpoints to Close and Service.Checkpoint. A checkpoint
	// is also written right after every compaction.
	CheckpointEvery int
	// Shards, when greater than one, runs the service in the in-process
	// sharded deployment mode: that many shard workers — each with its
	// own store, index cache, and micro-batching pipeline — behind a
	// router that hash-partitions the vertex space. A query whose
	// endpoints share a worker joins that worker's micro-batches
	// unchanged; a query whose endpoints are owned by different workers
	// runs a scatter-gather join: each owner enumerates its half of the
	// bidirectional search and the coordinator splices the halves at the
	// boundary vertices. Results are identical to the unsharded service.
	// Updates fan out to every worker atomically per epoch. Combined
	// with DataDir (through OpenService), worker i owns the directory
	// DataDir/shard-i and a warm restart reopens every worker from its
	// own WAL and checkpoints. For a multi-process deployment over the
	// same protocol, see NewShardServer and ConnectService. Zero or one
	// means the ordinary single-process service.
	Shards int
	// MaxCrossShard bounds the cross-shard scatter-gather joins running
	// concurrently when Shards > 1; excess cross-shard queries are shed
	// with ErrOverloaded. Single-shard traffic is governed per worker by
	// MaxInFlight/MaxQueued/MaxPerCaller as usual. Zero means unlimited.
	MaxCrossShard int
}

// FsyncPolicy selects when WAL appends reach stable storage; see
// ServiceOptions.Fsync.
type FsyncPolicy = store.FsyncPolicy

// The WAL durability policies, re-exported from the store layer.
const (
	FsyncAlways   = store.FsyncAlways
	FsyncInterval = store.FsyncInterval
	FsyncOff      = store.FsyncOff
)

// ParseFsyncPolicy parses the spellings FsyncPolicy.String produces —
// "always", "interval", "off" — the way the CLI's -fsync flag does.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return store.ParseFsyncPolicy(s) }

// StoreState identifies a graph snapshot's logical content — epoch,
// sizes, and a checksum over the canonical CSR serialization — for
// cross-process comparison: a warm-restarted service and its pre-crash
// original must agree on all four fields. See Service.State.
type StoreState = store.State

// Service is a long-lived concurrent query server over one graph: many
// goroutines submit single queries, the service micro-batches whatever
// arrives within a size/time window, answers each batch with the batch
// engines so concurrent queries share their common sub-queries, and
// resolves every caller with exactly its own results. All methods are
// safe for concurrent use; Close releases the collector.
//
// With ServiceOptions.Shards > 1 the same API is served by the sharded
// deployment — a routing coordinator over per-shard workers — with
// identical results; ShardTotals and Sharding expose the per-worker
// view.
type Service struct {
	svc     backend
	coord   *shard.Coordinator // non-nil iff Shards > 1
	maxHops int
}

// backend is the deployment behind a Service: the single-process
// micro-batching service, or the sharded coordinator. Both expose the
// same submit/update/stats surface, so every Service method delegates
// without caring which deployment answers.
type backend interface {
	Submit(ctx context.Context, caller string, q query.Query, collect bool) (*service.Reply, error)
	ApplyUpdates(adds, dels []graph.Edge) (uint64, error)
	Epoch() uint64
	Stats() service.Totals
	State() store.State
	Checkpoint() error
	Close() error
}

// config lowers the public options onto the internal service config.
func (o ServiceOptions) config() service.Config {
	return service.Config{
		MaxBatch:     o.MaxBatch,
		MaxWait:      o.MaxWait,
		QueryTimeout: o.QueryTimeout,
		Limit:        o.Limit,
		CompactAfter: o.CompactAfter,
		Plan:         o.Planner,
		MaxInFlight:  o.MaxInFlight,
		MaxQueued:    o.MaxQueued,
		MaxPerCaller: o.MaxPerCaller,
		Engine: batchenum.Options{
			Algorithm: o.Algorithm.internal(),
			Gamma:     o.Gamma,
			Detect:    sharegraph.Options{DisableSharing: o.DisableSharing},
		},
		Workers:         o.Workers,
		IndexCacheBytes: o.IndexCacheBytes,
		BuildWorkers:    o.buildWorkers(),
		OnBatch:         o.OnBatch,
		DataDir:         o.DataDir,
		Fsync:           o.Fsync,
		SyncEvery:       o.SyncEvery,
		CheckpointEvery: o.CheckpointEvery,
		Shards:          o.Shards,
		MaxCrossShard:   o.MaxCrossShard,
	}
}

// NewService starts an in-memory micro-batching query service on g.
// nil opts selects the defaults: BatchEnum+ (γ = 0.5) parallel across
// sharing groups, batches of ≤ 64 queries formed over ≤ 2ms windows.
// Setting ServiceOptions.DataDir panics — durability involves I/O that
// can fail, so it is only available through OpenService.
func NewService(g *Graph, opts *ServiceOptions) *Service {
	var o ServiceOptions
	if opts != nil {
		o = *opts
	}
	if o.DataDir != "" {
		panic("hcpath: ServiceOptions.DataDir requires OpenService, which can report I/O errors")
	}
	if o.Shards > 1 {
		coord := shard.New(g.g, g.gr, o.config())
		return &Service{svc: coord, coord: coord, maxHops: o.maxHops()}
	}
	return &Service{svc: service.New(g.g, g.gr, o.config()), maxHops: o.maxHops()}
}

// OpenService is NewService with durability: when opts.DataDir is set,
// updates are write-ahead logged and checkpointed under that
// directory, and an existing directory warm-restarts the service at
// its pre-crash epoch and edge set — g then only seeds an empty
// directory (the on-disk state wins) and may be nil to require
// existing state or start empty. With an empty DataDir it behaves
// exactly like NewService (g must be non-nil).
//
// Combined with Shards > 1, worker i owns DataDir/shard-i (its own WAL
// and checkpoints); a warm restart reopens every worker from its
// directory and refuses the deployment if the replicas diverged.
func OpenService(g *Graph, opts *ServiceOptions) (*Service, error) {
	var o ServiceOptions
	if opts != nil {
		o = *opts
	}
	var ig, igr *graph.Graph
	if g != nil {
		ig, igr = g.g, g.gr
	} else if o.DataDir == "" {
		return nil, fmt.Errorf("hcpath: OpenService needs a graph or a DataDir")
	}
	if o.Shards > 1 {
		coord, err := shard.Open(ig, igr, o.config())
		if err != nil {
			return nil, err
		}
		return &Service{svc: coord, coord: coord, maxHops: o.maxHops()}, nil
	}
	svc, err := service.Open(ig, igr, o.config())
	if err != nil {
		return nil, err
	}
	return &Service{svc: svc, maxHops: o.maxHops()}, nil
}

// Query submits one query, blocks until its micro-batch completes (or
// ctx is cancelled), and returns the query's paths plus the stats of the
// batch that carried it.
//
// Cancelling ctx abandons only this caller's wait — the batch keeps
// running and co-batched queries are unaffected. A non-nil error with
// non-nil paths means a partial result set: ErrLimitReached when
// Options.Limit truncated it, context.DeadlineExceeded when the
// service's QueryTimeout stopped the batch first. Every returned path
// is a genuine result either way.
func (s *Service) Query(ctx context.Context, q Query) ([]Path, BatchStats, error) {
	return s.QueryFrom(ctx, "", q)
}

// QueryFrom is Query with a caller identity for the MaxPerCaller
// fairness quota: callers are accounted by the given name, and a caller
// at its quota is shed with ErrOverloaded while others keep being
// admitted. With no quota configured the name is ignored.
func (s *Service) QueryFrom(ctx context.Context, caller string, q Query) ([]Path, BatchStats, error) {
	iq, err := convertQuery(q, -1, s.maxHops)
	if err != nil {
		return nil, BatchStats{}, err
	}
	r, err := s.svc.Submit(ctx, caller, iq, true)
	if err != nil {
		return nil, BatchStats{}, err
	}
	paths := make([]Path, len(r.Paths))
	for i, p := range r.Paths {
		paths[i] = Path(p)
	}
	return paths, r.Batch, r.Err
}

// Count is Query without materialising paths — the cheap mode, since
// result counts grow exponentially with K. Like Query, a non-nil
// ErrLimitReached or context.DeadlineExceeded accompanies a partial
// (lower-bound) count rather than replacing it.
func (s *Service) Count(ctx context.Context, q Query) (int64, BatchStats, error) {
	return s.CountFrom(ctx, "", q)
}

// CountFrom is Count with a caller identity, as QueryFrom is to Query.
func (s *Service) CountFrom(ctx context.Context, caller string, q Query) (int64, BatchStats, error) {
	iq, err := convertQuery(q, -1, s.maxHops)
	if err != nil {
		return 0, BatchStats{}, err
	}
	r, err := s.svc.Submit(ctx, caller, iq, false)
	if err != nil {
		return 0, BatchStats{}, err
	}
	return r.Count, r.Batch, r.Err
}

// ApplyUpdates publishes a new graph version with dels removed and adds
// inserted, without restarting the service or rebuilding the graph:
// changed adjacency rows are merged once into a compact delta overlay
// and the result is swapped in atomically as a new epoch. Micro-batches
// already dispatched finish on the snapshot they started with; every
// batch formed afterwards sees the new graph, and the cross-batch index
// cache keys its entries by epoch, so a post-update query is never
// answered from pre-update distances.
//
// Deletions apply before additions (an edge in both ends up present),
// self-loops and duplicate adds are dropped, deleting an absent edge is
// a no-op, and adds may name vertices beyond the current size — the
// vertex space grows to fit (it never shrinks). When the accumulated
// delta outgrows ServiceOptions.CompactAfter it is folded into a fresh
// CSR base in the background. Returns the epoch now current.
func (s *Service) ApplyUpdates(adds, dels []Edge) (uint64, error) {
	ia := make([]graph.Edge, len(adds))
	for i, e := range adds {
		ia[i] = graph.Edge{Src: e.Src, Dst: e.Dst}
	}
	id := make([]graph.Edge, len(dels))
	for i, e := range dels {
		id[i] = graph.Edge{Src: e.Src, Dst: e.Dst}
	}
	return s.svc.ApplyUpdates(ia, id)
}

// Epoch returns the service's current graph version: zero at start,
// bumped by every effective ApplyUpdates and by every background
// compaction.
func (s *Service) Epoch() uint64 { return s.svc.Epoch() }

// Totals returns a snapshot of the service's lifetime counters. On a
// sharded service, the per-worker totals are merged into one
// deployment-wide view (cross-shard joins counted as batches of one);
// ShardTotals exposes the unmerged per-worker counters.
func (s *Service) Totals() ServiceTotals { return s.svc.Stats() }

// ShardingStats counts how a sharded service classified its traffic:
// queries forwarded whole to the worker owning both endpoints
// (SingleShard), scatter-gather joins across two workers (CrossShard),
// and cross-shard queries shed at the MaxCrossShard bound (CrossShed).
type ShardingStats = shard.RoutingStats

// ShardOf returns the worker that owns vertex v in a deployment of the
// given shard count — the hash partition the sharded service routes
// by. It is deterministic across runs and total over the ID space
// (vertices created later by ApplyUpdates already have an owner), so
// clients and tests can predict placement. Any count below two maps
// every vertex to worker 0.
func ShardOf(v VertexID, shards int) int { return shard.ShardOf(v, shards) }

// NumShards returns the service's worker count: 1 for the ordinary
// single-process service, ServiceOptions.Shards for a sharded one.
func (s *Service) NumShards() int {
	if s.coord == nil {
		return 1
	}
	return s.coord.NumShards()
}

// ShardTotals returns each shard worker's own lifetime counters, in
// shard order, or nil for an unsharded service. Cross-shard joins run
// outside the worker pipelines and appear only in the merged Totals.
func (s *Service) ShardTotals() []ServiceTotals {
	if s.coord == nil {
		return nil
	}
	return s.coord.ShardTotals()
}

// Sharding returns the routing counters of a sharded service; the zero
// value for an unsharded one.
func (s *Service) Sharding() ShardingStats {
	if s.coord == nil {
		return ShardingStats{}
	}
	return s.coord.Routing()
}

// WireStats is one remote worker connection's transport counters:
// request frames sent and socket flushes. RPCs/Flushes is the write
// coalescing factor — how many concurrent requests shared one
// round-trip on average.
type WireStats = shard.WireStats

// Wire returns per-worker transport counters of a service built by
// ConnectService, in shard order; nil for any in-process deployment.
func (s *Service) Wire() []WireStats {
	if s.coord == nil {
		return nil
	}
	return s.coord.Wire()
}

// ConnectService builds a Service over remote shard workers, one
// address per shard, address i serving shard i of len(addrs). Each
// worker is a NewShardServer process (cmd/hcpath -serve); the returned
// Service runs the same coordinator as the in-process sharded
// deployment — identical routing, scatter-gather protocol, and results
// — with the worker RPCs carried by the package's length-prefixed,
// CRC-framed TCP protocol. Connection attempts retry under a bounded
// backoff while workers start; the handshake verifies protocol version
// and each worker's exact shard identity, and the workers must agree
// on one store.State before any traffic is accepted.
//
// opts configures the coordinator side: MaxCrossShard admission,
// QueryTimeout and Limit of cross-shard joins, MaxHops validation.
// Batching, admission, durability, and cache options of each worker
// are fixed by its own process; Shards and DataDir here are ignored.
// Closing the Service drops the connections — worker processes keep
// serving.
func ConnectService(ctx context.Context, addrs []string, opts *ServiceOptions) (*Service, error) {
	var o ServiceOptions
	if opts != nil {
		o = *opts
	}
	o.Shards = len(addrs)
	o.DataDir = ""
	coord, err := shard.Connect(ctx, addrs, o.config(), shard.ConnectOptions{})
	if err != nil {
		return nil, err
	}
	return &Service{svc: coord, coord: coord, maxHops: o.maxHops()}, nil
}

// ShardServer runs one shard worker of a multi-process sharded
// deployment: a full micro-batching service over its replica of the
// graph, answering the coordinator's wire RPCs (see ConnectService).
// Start one per process with cmd/hcpath -serve, or embed it directly.
type ShardServer struct {
	srv *shard.Server
}

// NewShardServer builds worker shardIdx of a deployment of shards
// workers over g. The worker's service runs opts with the worker
// invariants applied: never itself sharded, and compacting
// synchronously so every replica steps through the identical epoch
// sequence. opts.DataDir, when set, is this worker's own durable
// directory (give each worker process its own — the in-process
// deployment's DataDir/shard-i layout, spread across machines); an
// existing directory warm-restarts the worker, and g may then be nil.
func NewShardServer(g *Graph, opts *ServiceOptions, shardIdx, shards int) (*ShardServer, error) {
	if shards < 1 || shardIdx < 0 || shardIdx >= shards {
		return nil, fmt.Errorf("hcpath: shard index %d out of range for %d shards", shardIdx, shards)
	}
	var o ServiceOptions
	if opts != nil {
		o = *opts
	}
	var ig, igr *graph.Graph
	if g != nil {
		ig, igr = g.g, g.gr
	} else if o.DataDir == "" {
		return nil, fmt.Errorf("hcpath: NewShardServer needs a graph or a DataDir")
	}
	cfg := o.config()
	cfg.Shards = 0
	cfg.SyncCompact = true
	svc, err := service.Open(ig, igr, cfg)
	if err != nil {
		return nil, err
	}
	return &ShardServer{srv: shard.NewServer(svc, shardIdx, shards, shard.ServerOptions{})}, nil
}

// Serve accepts coordinator connections on ln until Close; it returns
// nil after Close, or the listener's error. Multiple coordinators may
// be connected at once.
func (s *ShardServer) Serve(ln net.Listener) error { return s.srv.Serve(ln) }

// Close stops accepting, drops every coordinator connection, and
// closes the worker's service — flushing its durable state when the
// worker owns a DataDir. Idempotent.
func (s *ShardServer) Close() error { return s.srv.Close() }

// Totals returns the worker service's own lifetime counters — the
// per-shard view the coordinator's ShardTotals reads over the wire.
func (s *ShardServer) Totals() ServiceTotals { return s.srv.Totals() }

// State identifies the worker's current graph snapshot, for comparing
// replicas across processes.
func (s *ShardServer) State() StoreState { return s.srv.State() }

// Epoch returns the worker's current epoch.
func (s *ShardServer) Epoch() uint64 { return s.srv.Epoch() }

// Checkpoint forces a durable snapshot of the current graph epoch to
// the service's DataDir, so a restart replays a minimal WAL tail. It
// returns nil immediately on an in-memory service.
func (s *Service) Checkpoint() error { return s.svc.Checkpoint() }

// State identifies the current graph snapshot — epoch, vertex and edge
// counts, and a checksum of the canonical CSR bytes. Two services
// (e.g. a crashed run and its warm restart) serve the same graph iff
// their States are equal. It serialises the graph to hash it: a
// diagnostic, not a per-query call.
func (s *Service) State() StoreState { return s.svc.State() }

// Close drains in-flight batches and stops the service; queries after
// Close return ErrServiceClosed. On a durable service Close then
// writes a final checkpoint and syncs the WAL, returning any error in
// making that state durable (always nil in-memory). Close is
// idempotent.
func (s *Service) Close() error { return s.svc.Close() }
