package hcpath

// Equivalence under caching: engines running through the cached/pooled
// index providers must return exactly the cold builder's per-query
// result sets — for all four algorithms, across the testgraphs corpus,
// on cold, warm, widened (a cached Cap=8 entry serving k=5 through
// threshold filtering) and eviction-thrashed passes, and from
// concurrent batches sharing one cache. `go test -race` over this file
// exercises the cache's pin/evict/recycle machinery.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/batchenum"
	"repro/internal/graph"
	"repro/internal/hcindex"
	"repro/internal/query"
)

// runWith answers the corpus case with the given provider and returns
// canonicalised per-query path sets.
func runWith(t *testing.T, c corpusCase, gr *graph.Graph, alg Algorithm, provider hcindex.Provider) [][]string {
	t.Helper()
	sink := query.NewCollectSink(len(c.qs))
	opts := batchenum.Options{Algorithm: alg.internal(), Gamma: 0.8, Provider: provider}
	if _, err := batchenum.Run(c.g, gr, c.qs, opts, sink); err != nil {
		t.Fatalf("%s/%v: %v", c.name, alg, err)
	}
	return canonical(sink.Paths)
}

// TestCachedProviderMatchesColdBuilder is the caching equivalence
// property of the provider refactor.
func TestCachedProviderMatchesColdBuilder(t *testing.T) {
	algorithms := []Algorithm{BatchEnumPlus, BatchEnum, BasicEnumPlus, BasicEnum}
	for _, c := range equivalenceCorpus() {
		gr := c.g.Reverse()
		for _, alg := range algorithms {
			label := fmt.Sprintf("%s/%v", c.name, alg)
			want := runWith(t, c, gr, alg, nil) // cold free-function build

			// Pooled cold builder, twice: the second pass runs on
			// recycled, sparsely-reset arrays.
			pooled := hcindex.NewBuilder(true)
			for _, pass := range []string{"cold", "recycled"} {
				for i, got := range runWith(t, c, gr, alg, pooled) {
					diffQuery(t, label+"/pooled-"+pass, i, want[i], got)
				}
			}

			// Shared cache, twice: cold fill then all-hit pass.
			cache := hcindex.NewCache(0)
			for _, pass := range []string{"cold", "warm"} {
				for i, got := range runWith(t, c, gr, alg, cache) {
					diffQuery(t, label+"/cached-"+pass, i, want[i], got)
				}
			}

			// Pathological budget: every entry is evicted the moment its
			// batch releases it.
			tiny := hcindex.NewCache(1)
			for i, got := range runWith(t, c, gr, alg, tiny) {
				diffQuery(t, label+"/cached-tiny", i, want[i], got)
			}
		}
	}
}

// TestCacheWideningMatchesCold warms the cache with Cap = k+3 variants
// of every corpus query, then answers the original k queries: every
// probe is served from a wider entry via threshold filtering, and the
// result sets must still match the cold builder exactly.
func TestCacheWideningMatchesCold(t *testing.T) {
	for _, c := range equivalenceCorpus() {
		gr := c.g.Reverse()
		for _, alg := range []Algorithm{BatchEnumPlus, BasicEnum} {
			label := fmt.Sprintf("%s/%v", c.name, alg)
			wide := make([]query.Query, len(c.qs))
			for i, q := range c.qs {
				wide[i] = query.Query{S: q.S, T: q.T, K: q.K + 3}
			}
			cache := hcindex.NewCache(0)
			wq, err := query.Batch(c.g, wide)
			if err != nil {
				t.Fatal(err)
			}
			cache.Acquire(c.g, gr, 0, wq).Release()

			want := runWith(t, c, gr, alg, nil)
			for i, got := range runWith(t, c, gr, alg, cache) {
				diffQuery(t, label+"/widened", i, want[i], got)
			}
			st := cache.Stats()
			if st.Widened == 0 {
				t.Errorf("%s: widened pass recorded no widened hits (%+v)", label, st)
			}
		}
	}
}

// TestConcurrentBatchesShareCache runs many concurrent batches of the
// paper's running example through one cache (the service's deployment
// shape) and checks every batch's results against the cold builder.
func TestConcurrentBatchesShareCache(t *testing.T) {
	corpus := equivalenceCorpus()
	c := corpus[0] // paper graph
	gr := c.g.Reverse()
	want := runWith(t, c, gr, BatchEnumPlus, nil)
	cache := hcindex.NewCache(0)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				sink := query.NewCollectSink(len(c.qs))
				opts := batchenum.Options{Algorithm: batchenum.BatchPlus, Gamma: 0.8, Provider: cache}
				if _, err := batchenum.Run(c.g, gr, c.qs, opts, sink); err != nil {
					t.Error(err)
					return
				}
				for i, got := range canonical(sink.Paths) {
					diffQuery(t, "concurrent", i, want[i], got)
				}
			}
		}()
	}
	wg.Wait()
}
