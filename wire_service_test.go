package hcpath

// Public-API gate for the multi-process deployment: NewShardServer
// workers behind ConnectService must serve exactly the single-process
// service's results, and OpenService with Shards+DataDir must survive
// a warm restart.

import (
	"context"
	"net"
	"testing"
)

func wireTestGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := NewGraph(6, []Edge{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5},
		{0, 2}, {1, 3}, {2, 4}, {3, 5}, {5, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func wireTestQueries(g *Graph) []Query {
	var qs []Query
	n := VertexID(g.NumVertices())
	for s := VertexID(0); s < n; s++ {
		for u := VertexID(0); u < n; u++ {
			if s != u {
				qs = append(qs, Query{S: s, T: u, K: 4})
			}
		}
	}
	return qs
}

// startWireCluster runs n NewShardServer workers on loopback listeners
// and returns their addresses.
func startWireCluster(t *testing.T, g *Graph, n int, opts *ServiceOptions) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv, err := NewShardServer(g, opts, i, n)
		if err != nil {
			t.Fatalf("NewShardServer(%d): %v", i, err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen worker %d: %v", i, err)
		}
		addrs[i] = ln.Addr().String()
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
	}
	return addrs
}

func TestConnectServiceDifferential(t *testing.T) {
	g := wireTestGraph(t)
	qs := wireTestQueries(g)

	single := NewService(g, nil)
	want := servicePaths(t, single, qs)
	single.Close()

	addrs := startWireCluster(t, g, 2, nil)
	remote, err := ConnectService(context.Background(), addrs, nil)
	if err != nil {
		t.Fatalf("ConnectService: %v", err)
	}
	defer remote.Close()

	if remote.NumShards() != 2 {
		t.Errorf("NumShards = %d, want 2", remote.NumShards())
	}
	got := servicePaths(t, remote, qs)
	for i := range want {
		diffQuery(t, "wire", i, want[i], got[i])
	}

	// Updates fan out over the wire and stay epoch-aligned.
	if _, err := remote.ApplyUpdates([]Edge{{1, 5}}, []Edge{{0, 1}}); err != nil {
		t.Fatalf("ApplyUpdates over the wire: %v", err)
	}
	ws := remote.Wire()
	if len(ws) != 2 {
		t.Fatalf("Wire() reported %d workers, want 2", len(ws))
	}
	for _, w := range ws {
		if w.RPCs == 0 {
			t.Errorf("worker %s saw no RPCs", w.Addr)
		}
	}
	per := remote.ShardTotals()
	if len(per) != 2 {
		t.Errorf("ShardTotals() returned %d entries, want 2", len(per))
	}
}

func TestDurableShardedServiceRestart(t *testing.T) {
	g := wireTestGraph(t)
	dir := t.TempDir()
	opts := &ServiceOptions{Shards: 2, DataDir: dir}

	svc, err := OpenService(g, opts)
	if err != nil {
		t.Fatalf("OpenService sharded durable: %v", err)
	}
	if _, err := svc.ApplyUpdates([]Edge{{5, 2}, {4, 0}}, []Edge{{0, 1}}); err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}
	pre := svc.State()
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	reopened, err := OpenService(nil, opts) // nil graph: disk state must carry it
	if err != nil {
		t.Fatalf("warm restart: %v", err)
	}
	defer reopened.Close()
	if got := reopened.State(); got != pre {
		t.Fatalf("restarted State %+v, want %+v", got, pre)
	}
	if reopened.NumShards() != 2 {
		t.Errorf("restarted NumShards = %d, want 2", reopened.NumShards())
	}
	if _, _, err := reopened.Query(context.Background(), Query{S: 0, T: 4, K: 4}); err != nil {
		t.Errorf("query after warm restart: %v", err)
	}
}
