package hcpath

// Public-API gate for the sharded deployment: ServiceOptions.Shards
// must serve exactly the single-process service's results over the
// equivalence corpus, compose with live updates, and report its
// routing/per-shard view coherently.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/shard"
)

// servicePaths answers qs through svc concurrently and returns the
// canonicalised per-query path sets.
func servicePaths(t *testing.T, svc *Service, qs []Query) [][]string {
	t.Helper()
	out := make([][]string, len(qs))
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i, q := range qs {
		wg.Add(1)
		go func(i int, q Query) {
			defer wg.Done()
			paths, _, err := svc.Query(context.Background(), q)
			if err != nil {
				mu.Lock()
				t.Errorf("query %d (%d→%d k=%d): %v", i, q.S, q.T, q.K, err)
				mu.Unlock()
				return
			}
			rendered := make([]string, len(paths))
			for j, p := range paths {
				rendered[j] = p.String()
			}
			sort.Strings(rendered)
			out[i] = rendered
		}(i, q)
	}
	wg.Wait()
	return out
}

func publicCorpus() []struct {
	name string
	g    *Graph
	qs   []Query
} {
	var cases []struct {
		name string
		g    *Graph
		qs   []Query
	}
	for _, tc := range equivalenceCorpus() {
		qs := make([]Query, len(tc.qs))
		for i, q := range tc.qs {
			qs[i] = Query{S: q.S, T: q.T, K: int(q.K)}
		}
		cases = append(cases, struct {
			name string
			g    *Graph
			qs   []Query
		}{tc.name, wrap(tc.g), qs})
	}
	return cases
}

func TestShardedServiceEquivalence(t *testing.T) {
	for _, tc := range publicCorpus() {
		single := NewService(tc.g, nil)
		want := servicePaths(t, single, tc.qs)
		single.Close()
		for _, n := range []int{2, 3, 8} {
			svc := NewService(tc.g, &ServiceOptions{Shards: n})
			if svc.NumShards() != n {
				t.Errorf("%s: NumShards = %d, want %d", tc.name, svc.NumShards(), n)
			}
			got := servicePaths(t, svc, tc.qs)
			label := fmt.Sprintf("sharded/%s/n=%d", tc.name, n)
			for i := range want {
				diffQuery(t, label, i, want[i], got[i])
			}
			rs := svc.Sharding()
			if rs.Shards != n || rs.SingleShard+rs.CrossShard != int64(len(tc.qs)) {
				t.Errorf("%s: routing %+v does not account for %d queries", label, rs, len(tc.qs))
			}
			if per := svc.ShardTotals(); len(per) != n {
				t.Errorf("%s: ShardTotals has %d entries, want %d", label, len(per), n)
			}
			svc.Close()
		}
	}
}

// TestShardedServiceLiveUpdates drives the public API through update
// waves on sharded and unsharded deployments and compares the results
// after each wave.
func TestShardedServiceLiveUpdates(t *testing.T) {
	build := func() *Graph {
		g, err := NewGraph(6, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	single := NewService(build(), nil)
	defer single.Close()
	svc := NewService(build(), &ServiceOptions{Shards: 3})
	defer svc.Close()

	waves := [][2][]Edge{ // {adds, dels}
		{{{0, 3}, {5, 0}}, nil},
		{{{2, 7}, {7, 5}}, {{2, 3}}}, // grows the vertex space to 8
		{{{3, 1}}, {{0, 1}}},
	}
	qs := []Query{
		{S: 0, T: 5, K: 6}, {S: 0, T: 4, K: 5}, {S: 5, T: 3, K: 4}, {S: 2, T: 5, K: 3},
	}
	for w, wave := range waves {
		if _, err := single.ApplyUpdates(wave[0], wave[1]); err != nil {
			t.Fatalf("wave %d: single: %v", w, err)
		}
		if _, err := svc.ApplyUpdates(wave[0], wave[1]); err != nil {
			t.Fatalf("wave %d: sharded: %v", w, err)
		}
		want := servicePaths(t, single, qs)
		got := servicePaths(t, svc, qs)
		for i := range want {
			diffQuery(t, fmt.Sprintf("live/wave=%d", w), i, want[i], got[i])
		}
	}
	if svc.State().Checksum != single.State().Checksum {
		t.Errorf("final graphs diverged: sharded %+v vs single %+v", svc.State(), single.State())
	}
}

func TestShardOfMatchesDeploymentRouting(t *testing.T) {
	for v := VertexID(0); v < 64; v++ {
		for _, n := range []int{1, 2, 5} {
			if got, want := ShardOf(v, n), shard.ShardOf(v, n); got != want {
				t.Fatalf("public ShardOf(%d,%d) = %d, internal says %d", v, n, got, want)
			}
		}
	}
}

func TestShardedOptionErrors(t *testing.T) {
	g, err := NewGraph(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenService(nil, &ServiceOptions{Shards: 2}); err == nil {
		t.Error("OpenService must reject a sharded deployment with no graph and no DataDir")
	}

	// Shards <= 1 is the ordinary service; the sharded accessors report
	// the unsharded view rather than failing.
	svc := NewService(g, &ServiceOptions{Shards: 1})
	defer svc.Close()
	if svc.NumShards() != 1 || svc.ShardTotals() != nil || svc.Sharding() != (ShardingStats{}) {
		t.Errorf("unsharded service leaks shard state: shards=%d totals=%v routing=%+v",
			svc.NumShards(), svc.ShardTotals(), svc.Sharding())
	}

	// OpenService with Shards and no DataDir is valid and sharded.
	sh, err := OpenService(g, &ServiceOptions{Shards: 2})
	if err != nil {
		t.Fatalf("OpenService sharded: %v", err)
	}
	defer sh.Close()
	if sh.NumShards() != 2 {
		t.Errorf("OpenService built %d shards, want 2", sh.NumShards())
	}
	if _, _, err := sh.Query(context.Background(), Query{S: 0, T: 3, K: 3}); err != nil {
		t.Errorf("query on OpenService sharded deployment: %v", err)
	}
}
