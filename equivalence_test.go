package hcpath

// Equivalence under concurrency: the micro-batching Service and the
// parallel engine must return exactly the sequential engine's per-query
// result sets, for every algorithm, on the whole testgraphs corpus.
// Running `go test -race` over this file exercises the per-worker
// buffered sinks, the batch collector, and the future hand-off under the
// race detector.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/batchenum"
	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/testgraphs"
)

type corpusCase struct {
	name string
	g    *graph.Graph
	qs   []query.Query
}

// equivalenceCorpus covers every fixture family of internal/testgraphs:
// the paper's running example plus shapes with known path structure.
func equivalenceCorpus() []corpusCase {
	var paperQs []query.Query
	for _, d := range testgraphs.PaperQueries() {
		paperQs = append(paperQs, query.Query{S: d[0], T: d[1], K: uint8(d[2])})
	}
	return []corpusCase{
		{"paper", testgraphs.Paper(), paperQs},
		{"diamond", testgraphs.Diamond(), []query.Query{
			{S: 0, T: 3, K: 1}, {S: 0, T: 3, K: 2}, {S: 0, T: 3, K: 3},
		}},
		{"cycle8", testgraphs.Cycle(8), []query.Query{
			{S: 0, T: 5, K: 5}, {S: 0, T: 7, K: 7}, {S: 1, T: 4, K: 3},
		}},
		{"line10", testgraphs.Line(10), []query.Query{
			{S: 0, T: 9, K: 9}, {S: 0, T: 5, K: 5}, {S: 2, T: 7, K: 5},
		}},
		{"completeDAG7", testgraphs.CompleteDAG(7), []query.Query{
			{S: 0, T: 6, K: 3}, {S: 0, T: 6, K: 6}, {S: 1, T: 5, K: 4},
		}},
	}
}

// canonical sorts each query's collected paths into comparable strings.
func canonical(paths [][][]graph.VertexID) [][]string {
	out := make([][]string, len(paths))
	for i, ps := range paths {
		for _, p := range ps {
			out[i] = append(out[i], fmt.Sprint(p))
		}
		sort.Strings(out[i])
	}
	return out
}

func diffQuery(t *testing.T, label string, i int, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: query %d: %d paths, want %d", label, i, len(got), len(want))
		return
	}
	for j := range want {
		if want[j] != got[j] {
			t.Errorf("%s: query %d: path sets diverge at %d: %s vs %s", label, i, j, got[j], want[j])
			return
		}
	}
}

// TestServiceAndParallelMatchSequential is the concurrency equivalence
// property: for all four algorithms on the whole corpus, RunParallel and
// the Service (queries submitted from concurrent goroutines, batched by
// the collector) reproduce sequential Run's per-query path sets exactly.
func TestServiceAndParallelMatchSequential(t *testing.T) {
	algorithms := []Algorithm{BatchEnumPlus, BatchEnum, BasicEnumPlus, BasicEnum}
	for _, c := range equivalenceCorpus() {
		gr := c.g.Reverse()
		for _, alg := range algorithms {
			label := fmt.Sprintf("%s/%v", c.name, alg)
			opts := batchenum.Options{Algorithm: alg.internal(), Gamma: 0.8}

			seq := query.NewCollectSink(len(c.qs))
			if _, err := batchenum.Run(c.g, gr, c.qs, opts, seq); err != nil {
				t.Fatalf("%s: sequential: %v", label, err)
			}
			want := canonical(seq.Paths)

			par := query.NewCollectSink(len(c.qs))
			if _, err := batchenum.RunParallel(c.g, gr, c.qs,
				batchenum.ParallelOptions{Options: opts, Workers: 4}, par); err != nil {
				t.Fatalf("%s: parallel: %v", label, err)
			}
			for i, g := range canonical(par.Paths) {
				diffQuery(t, label+"/parallel", i, want[i], g)
			}

			svc := NewService(&Graph{g: c.g, gr: gr}, &ServiceOptions{
				Options:  Options{Algorithm: alg, Gamma: 0.8, Workers: -1},
				MaxBatch: len(c.qs),
				MaxWait:  5 * time.Millisecond,
			})
			got := make([][]string, len(c.qs))
			var wg sync.WaitGroup
			for i, q := range c.qs {
				wg.Add(1)
				go func(i int, q query.Query) {
					defer wg.Done()
					paths, _, err := svc.Query(context.Background(),
						Query{S: q.S, T: q.T, K: int(q.K)})
					if err != nil {
						t.Errorf("%s: service query %d: %v", label, i, err)
						return
					}
					for _, p := range paths {
						got[i] = append(got[i], fmt.Sprint([]graph.VertexID(p)))
					}
					sort.Strings(got[i])
				}(i, q)
			}
			wg.Wait()
			svc.Close()
			for i := range got {
				diffQuery(t, label+"/service", i, want[i], got[i])
			}
		}
	}
}
