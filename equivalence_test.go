package hcpath

// Equivalence under concurrency: the micro-batching Service and the
// parallel engine must return exactly the sequential engine's per-query
// result sets, for every algorithm, on the whole testgraphs corpus.
// Running `go test -race` over this file exercises the per-worker
// buffered sinks, the batch collector, and the future hand-off under the
// race detector.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/batchenum"
	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/testgraphs"
)

type corpusCase struct {
	name string
	g    *graph.Graph
	qs   []query.Query
}

// equivalenceCorpus covers every fixture family of internal/testgraphs:
// the paper's running example plus shapes with known path structure.
func equivalenceCorpus() []corpusCase {
	var paperQs []query.Query
	for _, d := range testgraphs.PaperQueries() {
		paperQs = append(paperQs, query.Query{S: d[0], T: d[1], K: uint8(d[2])})
	}
	return []corpusCase{
		{"paper", testgraphs.Paper(), paperQs},
		{"diamond", testgraphs.Diamond(), []query.Query{
			{S: 0, T: 3, K: 1}, {S: 0, T: 3, K: 2}, {S: 0, T: 3, K: 3},
		}},
		{"cycle8", testgraphs.Cycle(8), []query.Query{
			{S: 0, T: 5, K: 5}, {S: 0, T: 7, K: 7}, {S: 1, T: 4, K: 3},
		}},
		{"line10", testgraphs.Line(10), []query.Query{
			{S: 0, T: 9, K: 9}, {S: 0, T: 5, K: 5}, {S: 2, T: 7, K: 5},
		}},
		{"completeDAG7", testgraphs.CompleteDAG(7), []query.Query{
			{S: 0, T: 6, K: 3}, {S: 0, T: 6, K: 6}, {S: 1, T: 5, K: 4},
		}},
	}
}

// canonical sorts each query's collected paths into comparable strings.
func canonical(paths [][][]graph.VertexID) [][]string {
	out := make([][]string, len(paths))
	for i, ps := range paths {
		for _, p := range ps {
			out[i] = append(out[i], fmt.Sprint(p))
		}
		sort.Strings(out[i])
	}
	return out
}

func diffQuery(t *testing.T, label string, i int, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: query %d: %d paths, want %d", label, i, len(got), len(want))
		return
	}
	for j := range want {
		if want[j] != got[j] {
			t.Errorf("%s: query %d: path sets diverge at %d: %s vs %s", label, i, j, got[j], want[j])
			return
		}
	}
}

// TestServiceAndParallelMatchSequential is the concurrency equivalence
// property: for all four algorithms on the whole corpus, RunParallel and
// the Service (queries submitted from concurrent goroutines, batched by
// the collector) reproduce sequential Run's per-query path sets exactly.
func TestServiceAndParallelMatchSequential(t *testing.T) {
	algorithms := []Algorithm{BatchEnumPlus, BatchEnum, BasicEnumPlus, BasicEnum}
	for _, c := range equivalenceCorpus() {
		gr := c.g.Reverse()
		for _, alg := range algorithms {
			label := fmt.Sprintf("%s/%v", c.name, alg)
			opts := batchenum.Options{Algorithm: alg.internal(), Gamma: 0.8}

			seq := query.NewCollectSink(len(c.qs))
			if _, err := batchenum.Run(c.g, gr, c.qs, opts, seq); err != nil {
				t.Fatalf("%s: sequential: %v", label, err)
			}
			want := canonical(seq.Paths)

			par := query.NewCollectSink(len(c.qs))
			if _, err := batchenum.RunParallel(c.g, gr, c.qs,
				batchenum.ParallelOptions{Options: opts, Workers: 4}, par); err != nil {
				t.Fatalf("%s: parallel: %v", label, err)
			}
			for i, g := range canonical(par.Paths) {
				diffQuery(t, label+"/parallel", i, want[i], g)
			}

			svc := NewService(&Graph{g: c.g, gr: gr}, &ServiceOptions{
				Options:  Options{Algorithm: alg, Gamma: 0.8, Workers: -1},
				MaxBatch: len(c.qs),
				MaxWait:  5 * time.Millisecond,
			})
			got := make([][]string, len(c.qs))
			var wg sync.WaitGroup
			for i, q := range c.qs {
				wg.Add(1)
				go func(i int, q query.Query) {
					defer wg.Done()
					paths, _, err := svc.Query(context.Background(),
						Query{S: q.S, T: q.T, K: int(q.K)})
					if err != nil {
						t.Errorf("%s: service query %d: %v", label, i, err)
						return
					}
					for _, p := range paths {
						got[i] = append(got[i], fmt.Sprint([]graph.VertexID(p)))
					}
					sort.Strings(got[i])
				}(i, q)
			}
			wg.Wait()
			svc.Close()
			for i := range got {
				diffQuery(t, label+"/service", i, want[i], got[i])
			}
		}
	}
}

// TestLimitHitMatchesSequentialPrefix is the limit-hit equivalence
// property: for all four algorithms on the whole corpus, sequential and
// parallel runs under Options.Limit deliver min(limit, |P(q)|) distinct
// members of the sequential full result set per query, with truncation
// reported exactly for the queries that lost paths.
func TestLimitHitMatchesSequentialPrefix(t *testing.T) {
	const limit = 2
	algorithms := []Algorithm{BatchEnumPlus, BatchEnum, BasicEnumPlus, BasicEnum}
	for _, c := range equivalenceCorpus() {
		gr := c.g.Reverse()
		for _, alg := range algorithms {
			label := fmt.Sprintf("%s/%v", c.name, alg)

			full := query.NewCollectSink(len(c.qs))
			if _, err := batchenum.Run(c.g, gr, c.qs,
				batchenum.Options{Algorithm: alg.internal(), Gamma: 0.8}, full); err != nil {
				t.Fatalf("%s: full run: %v", label, err)
			}
			fullSets := make([]map[string]bool, len(c.qs))
			for i, ps := range full.Paths {
				fullSets[i] = map[string]bool{}
				for _, p := range ps {
					fullSets[i][fmt.Sprint(p)] = true
				}
			}

			qsPub := make([]Query, len(c.qs))
			for i, q := range c.qs {
				qsPub[i] = Query{S: q.S, T: q.T, K: int(q.K)}
			}
			for _, workers := range []int{0, 4} {
				eng := NewEngine(&Graph{g: c.g, gr: gr},
					&Options{Algorithm: alg, Gamma: 0.8, Workers: workers, Limit: limit})
				res, err := eng.Enumerate(qsPub)
				if err != nil {
					t.Fatalf("%s workers=%d: %v", label, workers, err)
				}
				wantTrunc := 0
				for i := range c.qs {
					total := len(fullSets[i])
					wantN := total
					if limit < total {
						wantN = limit
						wantTrunc++
					}
					if res.Count(i) != wantN {
						t.Errorf("%s workers=%d: query %d: %d paths, want %d of %d",
							label, workers, i, res.Count(i), wantN, total)
					}
					seen := map[string]bool{}
					for _, p := range res.Paths(i) {
						k := fmt.Sprint([]graph.VertexID(p))
						if !fullSets[i][k] || seen[k] {
							t.Errorf("%s workers=%d: query %d: bogus or duplicate path %s",
								label, workers, i, k)
						}
						seen[k] = true
					}
					if res.Truncated(i) != (limit < total) {
						t.Errorf("%s workers=%d: query %d: Truncated=%v, want %v",
							label, workers, i, res.Truncated(i), limit < total)
					}
				}
				if res.Stats().Truncated != wantTrunc {
					t.Errorf("%s workers=%d: Stats.Truncated=%d, want %d",
						label, workers, res.Stats().Truncated, wantTrunc)
				}
			}
		}
	}
}

// TestServiceCancelledCallerDoesNotPoisonBatch is the isolation
// property of the acceptance criteria: a heavy K=15 query on a dense
// graph, cancelled by its own caller after 10ms, returns ctx.Err() in
// well under 500ms while the queries co-batched with it complete with
// exactly their full result sets.
func TestServiceCancelledCallerDoesNotPoisonBatch(t *testing.T) {
	g := denseGraph()

	// Expected results of the light co-batched queries, from the
	// offline sequential engine.
	light := []Query{{S: 2, T: 3, K: 2}, {S: 4, T: 5, K: 2}, {S: 6, T: 7, K: 2}}
	eng := NewEngine(g, nil)
	wantRes, err := eng.Enumerate(light)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]string, len(light))
	for i := range light {
		for _, p := range wantRes.Paths(i) {
			want[i] = append(want[i], fmt.Sprint([]graph.VertexID(p)))
		}
		sort.Strings(want[i])
	}

	// BasicEnum+ with 4 workers: each co-batched query runs on its own
	// worker, so the heavy one cannot starve the light ones even on a
	// small CI machine; QueryTimeout bounds the heavy enumeration so
	// Close cannot hang.
	svc := NewService(g, &ServiceOptions{
		Options:      Options{Algorithm: BasicEnumPlus, Workers: 4},
		MaxBatch:     len(light) + 1,
		MaxWait:      50 * time.Millisecond, // window to co-batch all four
		QueryTimeout: 2 * time.Second,
	})
	defer svc.Close()

	var wg sync.WaitGroup
	got := make([][]string, len(light))
	gotErr := make([]error, len(light))
	for i, q := range light {
		wg.Add(1)
		go func(i int, q Query) {
			defer wg.Done()
			paths, _, err := svc.Query(context.Background(), q)
			gotErr[i] = err
			for _, p := range paths {
				got[i] = append(got[i], fmt.Sprint([]graph.VertexID(p)))
			}
			sort.Strings(got[i])
		}(i, q)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, _, heavyErr := svc.Query(ctx, Query{S: 0, T: 1, K: 15})
	heavyElapsed := time.Since(t0)
	wg.Wait()

	if !errors.Is(heavyErr, context.DeadlineExceeded) {
		t.Fatalf("heavy query err = %v, want its ctx deadline error", heavyErr)
	}
	if heavyElapsed > 500*time.Millisecond {
		t.Fatalf("cancelled caller took %v to detach, want well under 500ms", heavyElapsed)
	}
	for i := range light {
		if gotErr[i] != nil {
			t.Errorf("co-batched query %d failed: %v", i, gotErr[i])
			continue
		}
		diffQuery(t, "co-batched", i, want[i], got[i])
	}
}

// TestServiceQueryTimeoutPartialResults: with a tiny QueryTimeout, a
// heavy query is answered with a partial (possibly empty) result set
// and context.DeadlineExceeded rather than blocking forever, and the
// service records the truncation.
func TestServiceQueryTimeoutPartialResults(t *testing.T) {
	g := denseGraph()
	svc := NewService(g, &ServiceOptions{
		Options:      Options{Algorithm: BatchEnumPlus},
		QueryTimeout: 20 * time.Millisecond,
	})
	defer svc.Close()

	t0 := time.Now()
	count, bs, err := svc.Count(context.Background(), Query{S: 0, T: 1, K: 15})
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("deadline-bounded batch took %v", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if count < 0 {
		t.Fatalf("partial count = %d", count)
	}
	if bs.Truncated != 1 {
		t.Fatalf("BatchStats.Truncated = %d, want 1", bs.Truncated)
	}
	if tot := svc.Totals(); tot.Truncated != 1 || tot.DeadlineBatches != 1 {
		t.Fatalf("Totals truncated=%d deadlineBatches=%d, want 1/1", tot.Truncated, tot.DeadlineBatches)
	}
}

// TestServiceLimitTruncation: Options.Limit through the service yields
// exactly limit paths with ErrLimitReached alongside them.
func TestServiceLimitTruncation(t *testing.T) {
	g := testgraphs.CompleteDAG(7)
	svc := NewService(&Graph{g: g, gr: g.Reverse()}, &ServiceOptions{
		Options: Options{Limit: 5},
	})
	defer svc.Close()
	paths, bs, err := svc.Query(context.Background(), Query{S: 0, T: 6, K: 6}) // 32 paths
	if !errors.Is(err, ErrLimitReached) {
		t.Fatalf("err = %v, want ErrLimitReached", err)
	}
	if len(paths) != 5 {
		t.Fatalf("%d paths, want exactly 5", len(paths))
	}
	if bs.Truncated != 1 {
		t.Fatalf("BatchStats.Truncated = %d, want 1", bs.Truncated)
	}
}
