package hcpath

// Live-update equivalence: after any sequence of edge additions and
// deletions (including forced compactions), every engine running on the
// versioned store's live Snapshot must produce exactly the oracle's
// result sets on a from-scratch CSR rebuilt from the surviving edges —
// sequential and parallel, cold and through an epoch-keyed shared index
// cache (where a single stale hit would surface as a divergence). The
// concurrent test drives ApplyUpdates against live service traffic
// under the race detector.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/batchenum"
	"repro/internal/graph"
	"repro/internal/hcindex"
	"repro/internal/oracle"
	"repro/internal/query"
	"repro/internal/store"
)

// oracleSets enumerates every query with the unpruned DFS oracle on a
// from-scratch rebuild and canonicalises the per-query path sets.
func oracleSets(rebuilt *graph.Graph, qs []query.Query) [][]string {
	out := make([][]string, len(qs))
	for i, q := range qs {
		for _, p := range oracle.Paths(rebuilt, q) {
			out[i] = append(out[i], fmt.Sprint(p))
		}
		sort.Strings(out[i])
	}
	return out
}

// liveQueries picks a deterministic query set that stays valid (vertex
// ids in range, S != T) for a graph of at least n vertices.
func liveQueries(n int) []query.Query {
	var qs []query.Query
	for i := 0; i < 6; i++ {
		s := graph.VertexID((i * 3) % n)
		t := graph.VertexID((i*5 + 1) % n)
		if s == t {
			t = (t + 1) % graph.VertexID(n)
		}
		qs = append(qs, query.Query{S: s, T: t, K: uint8(3 + i%2)})
	}
	return qs
}

// TestLiveSnapshotEnginesMatchRebuild is the acceptance property of the
// versioned store: a random add/delete sequence with forced compaction,
// checked after every epoch against the oracle on a rebuilt CSR, for
// all four algorithms, sequentially and in parallel, cold and through a
// shared epoch-keyed index cache.
func TestLiveSnapshotEnginesMatchRebuild(t *testing.T) {
	const n = 12
	rng := rand.New(rand.NewSource(11))
	live := make(map[graph.Edge]bool)
	var seed []graph.Edge
	for i := 0; i < 24; i++ {
		e := graph.Edge{Src: graph.VertexID(rng.Intn(n)), Dst: graph.VertexID(rng.Intn(n))}
		if e.Src != e.Dst && !live[e] {
			live[e] = true
			seed = append(seed, e)
		}
	}
	st := store.New(graph.FromEdges(n, seed), store.Options{CompactAfter: 10, SyncCompact: true})
	cache := hcindex.NewCache(0)
	algorithms := []batchenum.Algorithm{batchenum.BatchPlus, batchenum.Batch, batchenum.BasicPlus, batchenum.Basic}

	compacted := 0
	for step := 0; step < 12; step++ {
		var adds, dels []graph.Edge
		for i := 0; i < 2+rng.Intn(3); i++ {
			e := graph.Edge{Src: graph.VertexID(rng.Intn(n)), Dst: graph.VertexID(rng.Intn(n))}
			if rng.Intn(3) == 0 {
				dels = append(dels, e)
				delete(live, e)
			} else if e.Src != e.Dst {
				adds = append(adds, e)
				live[e] = true
			}
		}
		snap, err := st.ApplyUpdates(adds, dels)
		if err != nil {
			t.Fatalf("ApplyUpdates: %v", err)
		}
		if !snap.Graph().IsOverlay() {
			compacted++
		}

		var all []graph.Edge
		for e := range live {
			all = append(all, e)
		}
		rebuilt := graph.FromEdges(n, all)
		qs, err := query.Batch(rebuilt, liveQueries(n))
		if err != nil {
			t.Fatal(err)
		}
		want := oracleSets(rebuilt, qs)

		for _, alg := range algorithms {
			for _, mode := range []string{"seq", "par", "cached"} {
				label := fmt.Sprintf("step %d epoch %d %v/%s", step, snap.Epoch(), alg, mode)
				opts := batchenum.Options{Algorithm: alg, Epoch: snap.Epoch()}
				if mode == "cached" {
					opts.Provider = cache // shared across epochs: stale hits would diverge
				}
				sink := query.NewCollectSink(len(qs))
				var runErr error
				if mode == "par" {
					_, runErr = batchenum.RunParallel(snap.Graph(), snap.Reverse(), qs,
						batchenum.ParallelOptions{Options: opts, Workers: 4}, sink)
				} else {
					_, runErr = batchenum.Run(snap.Graph(), snap.Reverse(), qs, opts, sink)
				}
				if runErr != nil {
					t.Fatalf("%s: %v", label, runErr)
				}
				for i, got := range canonical(sink.Paths) {
					diffQuery(t, label, i, want[i], got)
				}
			}
		}
	}
	if compacted == 0 {
		t.Fatal("sequence never compacted; lower CompactAfter")
	}
}

// TestServiceApplyUpdates exercises the public live-update surface: a
// cached service answers, the graph changes (including vertex growth),
// and post-update answers must match a fresh engine on the rebuilt
// graph — through the same epoch-keyed cache that served the pre-update
// traffic.
func TestServiceApplyUpdates(t *testing.T) {
	g, err := NewGraph(4, []Edge{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(g, &ServiceOptions{MaxBatch: 1})
	defer svc.Close()

	ask := func(q Query) []string {
		t.Helper()
		paths, _, err := svc.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("query %+v: %v", q, err)
		}
		var out []string
		for _, p := range paths {
			out = append(out, p.String())
		}
		sort.Strings(out)
		return out
	}
	check := func(label string, q Query, want []string) {
		t.Helper()
		got := ask(q)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%s: %v, want %v", label, got, want)
		}
	}

	check("initial", Query{S: 0, T: 3, K: 3}, []string{"(v0, v1, v2, v3)", "(v0, v2, v3)"})
	ask(Query{S: 0, T: 3, K: 3}) // warm the cache at epoch 0

	if epoch, err := svc.ApplyUpdates([]Edge{{1, 3}, {3, 4}}, []Edge{{0, 2}}); err != nil || epoch != 1 {
		t.Fatalf("ApplyUpdates: epoch %d, err %v", epoch, err)
	}
	// A stale epoch-0 index hit would claim 0⇝3 still reachable via v2.
	check("post-update", Query{S: 0, T: 3, K: 3}, []string{"(v0, v1, v2, v3)", "(v0, v1, v3)"})
	check("grown-vertex", Query{S: 0, T: 4, K: 3}, []string{"(v0, v1, v3, v4)"})

	if tot := svc.Totals(); tot.Epoch != 1 || tot.UpdatesApplied == 0 {
		t.Fatalf("totals don't reflect the update: %+v", tot)
	}
}

// TestConcurrentUpdatesAndQueries races ApplyUpdates against live
// service traffic. Exact result sets are epoch-dependent mid-flight, so
// the invariant checked per reply is structural: every returned path
// starts at S, ends at T, respects K, and is simple; and the service
// must answer every query. The real assertions are the race detector
// and the cache's internal consistency under epoch churn.
func TestConcurrentUpdatesAndQueries(t *testing.T) {
	base := graph.GenRandom(200, 3, 5)
	var edges []Edge
	base.Edges(func(src, dst graph.VertexID) bool {
		edges = append(edges, Edge{Src: src, Dst: dst})
		return true
	})
	g, err := NewGraph(base.NumVertices(), edges)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(g, &ServiceOptions{MaxBatch: 8, CompactAfter: 40})
	defer svc.Close()

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ { // writers
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 25; i++ {
				var adds, dels []Edge
				for j := 0; j < 4; j++ {
					adds = append(adds, Edge{Src: VertexID(rng.Intn(200)), Dst: VertexID(rng.Intn(200))})
					dels = append(dels, edges[rng.Intn(len(edges))])
				}
				if _, err := svc.ApplyUpdates(adds, dels); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for c := 0; c < 6; c++ { // readers
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < 30; i++ {
				q := Query{S: VertexID(rng.Intn(200)), T: VertexID(rng.Intn(200)), K: 4}
				if q.S == q.T {
					continue
				}
				paths, _, err := svc.Query(context.Background(), q)
				if err != nil {
					t.Errorf("reader %d: %v", c, err)
					return
				}
				for _, p := range paths {
					if len(p) < 2 || p[0] != q.S || p[len(p)-1] != q.T || p.Len() > q.K {
						t.Errorf("reader %d: malformed path %v for %+v", c, p, q)
						return
					}
					seen := make(map[VertexID]bool, len(p))
					for _, v := range p {
						if seen[v] {
							t.Errorf("reader %d: non-simple path %v", c, p)
							return
						}
						seen[v] = true
					}
				}
			}
		}(c)
	}
	wg.Wait()

	if tot := svc.Totals(); tot.Epoch == 0 || tot.Queries == 0 {
		t.Fatalf("concurrent run did not exercise updates and queries: %+v", tot)
	}
}
