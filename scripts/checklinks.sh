#!/usr/bin/env bash
# checklinks.sh — fail when any tracked Markdown file links to a
# repo-relative path that does not exist.
#
# Skipped: external links (http/https/mailto), pure #anchor links, and
# targets that resolve outside the repo root (e.g. the CI badge's
# ../../actions/... GitHub-relative path). Fragments (file.md#section)
# are checked for file existence only, not for the anchor.
#
# Run from anywhere: ./scripts/checklinks.sh
set -euo pipefail
cd "$(dirname "$0")/.."
root=$(pwd)
fail=0

while IFS= read -r file; do
  dir=$(dirname "$file")
  # Pull out [text](target) / ![alt](target) link targets.
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:* | '#'* | '') continue ;;
    esac
    target=${target%%#*} # drop the fragment
    target=${target%% *} # drop an optional "title"
    [ -n "$target" ] || continue
    resolved=$(realpath -m "$dir/$target")
    case "$resolved" in
      "$root"/* | "$root") ;;
      *) continue ;; # outside the repo: GitHub-relative paths like the badge
    esac
    if [ ! -e "$resolved" ]; then
      echo "broken link in $file: $target"
      fail=1
    fi
  done < <(grep -o '!\?\[[^]]*\]([^)]*)' "$file" | sed 's/.*(\(.*\))$/\1/')
done < <(git ls-files '*.md')

if [ "$fail" -ne 0 ]; then
  echo "checklinks: broken relative links found" >&2
  exit 1
fi
echo "checklinks: all relative Markdown links resolve"
