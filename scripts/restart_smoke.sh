#!/usr/bin/env bash
# Restart smoke test for the durable store: an update replay killed
# mid-run — both via the CLI's simulated-crash flag and via a real
# kill -9 — must, after a warm restart, reproduce the exact final
# "state:" line (epoch, vertex count, edge count, CSR checksum) of an
# uninterrupted run over the same update file.
#
# Run from the repository root: ./scripts/restart_smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/hcpath" ./cmd/hcpath

graph="$workdir/g.txt"
ops="$workdir/ops.txt"
printf '0 1\n1 2\n2 3\n3 4\n0 2\n' > "$graph"
# Many small mutation blocks separated by query waves, so an external
# kill lands mid-replay; a trailing marker block distinguishes a
# finished run from a lucky kill-after-completion.
{
  for i in $(seq 0 199); do
    echo "add $((i % 5)) $((5 + i % 7))"
    echo "query 0 4 4"
    echo "del $((i % 5)) $((5 + i % 7))"
    echo "query 0 4 4"
  done
  echo "add 4 11"
  echo "query 0 4 4"
} > "$ops"

# Background compaction epochs are timing-dependent; state comparison
# across processes needs deterministic epochs, so compaction is off.
common=(-updates "$ops" -compactafter -1 -fsync always)

echo "=== uninterrupted run"
"$workdir/hcpath" -graph "$graph" -datadir "$workdir/d-full" "${common[@]}" | tee "$workdir/full.out"
want=$(grep '^state: ' "$workdir/full.out")

echo "=== simulated crash (-crashafter), then restart"
set +e
"$workdir/hcpath" -graph "$graph" -datadir "$workdir/d-crash" -crashafter 37 "${common[@]}" > /dev/null 2>&1
code=$?
set -e
if [ "$code" -ne 137 ]; then
  echo "expected exit 137 from -crashafter, got $code"
  exit 1
fi
"$workdir/hcpath" -datadir "$workdir/d-crash" "${common[@]}" | tee "$workdir/resume.out"
got=$(grep '^state: ' "$workdir/resume.out")
if [ "$got" != "$want" ]; then
  echo "state mismatch after -crashafter restart:"
  echo "  want: $want"
  echo "  got:  $got"
  exit 1
fi

echo "=== kill -9 mid-run, then restart"
"$workdir/hcpath" -graph "$graph" -datadir "$workdir/d-kill" "${common[@]}" > /dev/null 2>&1 &
pid=$!
# Wait for the WAL to exist, let some blocks apply, then kill hard.
for _ in $(seq 1 200); do
  [ -f "$workdir/d-kill/wal-00000000000000000000.log" ] && break
  sleep 0.05
done
sleep 0.4
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
"$workdir/hcpath" -datadir "$workdir/d-kill" "${common[@]}" | tee "$workdir/kill.out"
got=$(grep '^state: ' "$workdir/kill.out")
if [ "$got" != "$want" ]; then
  echo "state mismatch after kill -9 restart:"
  echo "  want: $want"
  echo "  got:  $got"
  exit 1
fi

echo "restart smoke: OK ($want)"
