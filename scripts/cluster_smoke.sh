#!/usr/bin/env bash
# Cluster smoke test for the wire protocol: two durable hcpath -serve
# workers and a -connect coordinator must (1) replay an update file to
# the same final "state:" line as a single-process durable run over the
# same file, (2) surface a typed worker-unreachable error — not a hang
# — when one worker is killed -9 mid-replay, and (3) warm-restart the
# killed worker from its own -datadir and resume the replay past the
# recovered update blocks.
#
# Run from the repository root: ./scripts/cluster_smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/hcpath" ./cmd/hcpath

graph="$workdir/g.txt"
ops="$workdir/ops.txt"
queries="$workdir/q.txt"
# A 16-cycle with chords: enough structure that high-K pairs enumerate
# real path sets and plenty of vertex pairs land on different shards.
{
  for i in $(seq 0 15); do
    echo "$i $(((i + 1) % 16))"
    echo "$i $(((i + 3) % 16))"
  done
} > "$graph"
# Update blocks interleaved with query waves, ending in a query tail
# the resumed replay still has to answer after every block is skipped.
{
  echo "query 0 8 6"
  echo "add 0 5"
  echo "add 5 10"
  echo "query 2 12 7"
  echo "del 0 1"
  echo "query 0 8 6"
  echo "query 15 7 8"
} > "$ops"
# A long all-pairs query load so a mid-replay kill -9 lands while
# traffic is in flight.
{
  for rep in 1 2 3; do
    for s in $(seq 0 15); do
      for t in $(seq 0 15); do
        [ "$s" -ne "$t" ] && echo "$s $t 7" || true
      done
    done
  done
} > "$queries"

# start_worker <idx> <shards> <datadir> <logfile> [extra args...]
# Starts a worker on an ephemeral port; sets $addr and $worker_pid.
start_worker() {
  local idx=$1 shards=$2 datadir=$3 log=$4
  shift 4
  "$workdir/hcpath" -serve -shard "$idx/$shards" -listen 127.0.0.1:0 \
    -datadir "$datadir" "$@" 2> "$log" &
  worker_pid=$!
  pids+=("$worker_pid")
  addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/^serving: shard .* on \([0-9.:]*\) .*/\1/p' "$log")
    [ -n "$addr" ] && break
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "worker $idx did not come up; log:" >&2
    cat "$log" >&2
    exit 1
  fi
}

echo "=== start 2 durable workers, replay updates through the cluster"
start_worker 0 2 "$workdir/d0" "$workdir/w0.log" -graph "$graph"
a0=$addr
start_worker 1 2 "$workdir/d1" "$workdir/w1.log" -graph "$graph"
a1=$addr
w1_pid=$worker_pid

"$workdir/hcpath" -connect "$a0,$a1" -updates "$ops" 2>&1 | tee "$workdir/cluster.out"
cluster_state=$(grep '^state: ' "$workdir/cluster.out")
grep -q '^wire: ' "$workdir/cluster.out" || {
  echo "cluster replay printed no wire: transport line"; exit 1; }

echo "=== single-process durable run over the same updates must match"
"$workdir/hcpath" -graph "$graph" -datadir "$workdir/d-single" -updates "$ops" \
  2>&1 | tee "$workdir/single.out"
single_state=$(grep '^state: ' "$workdir/single.out")
if [ "$cluster_state" != "$single_state" ]; then
  echo "cluster and single-process state diverged:"
  echo "  cluster: $cluster_state"
  echo "  single:  $single_state"
  exit 1
fi

echo "=== kill -9 worker 1 mid-replay: typed error, no hang"
"$workdir/hcpath" -connect "$a0,$a1" -queries "$queries" -replay -clients 8 \
  > "$workdir/kill.out" 2> "$workdir/kill.err" &
replay_pid=$!
pids+=("$replay_pid")
for _ in $(seq 1 100); do
  grep -q '^cluster: ' "$workdir/kill.err" 2>/dev/null && break
  sleep 0.05
done
kill -9 "$w1_pid"
wait "$replay_pid" || true
cat "$workdir/kill.out"
if ! grep -q 'unreachable' "$workdir/kill.err"; then
  echo "killed worker did not surface a typed unreachable error; stderr:"
  cat "$workdir/kill.err"
  exit 1
fi
if ! grep -Eq ' [1-9][0-9]* failed' "$workdir/kill.out"; then
  echo "replay against the killed worker reported no failed queries"
  cat "$workdir/kill.out"
  exit 1
fi

echo "=== restart worker 1 from its datadir, resume the update replay"
start_worker 1 2 "$workdir/d1" "$workdir/w1b.log"
a1=$addr
"$workdir/hcpath" -connect "$a0,$a1" -updates "$ops" 2>&1 | tee "$workdir/resume.out"
grep -q '^recovered: ' "$workdir/resume.out" || {
  echo "resumed replay did not report recovered update blocks"; exit 1; }
resume_state=$(grep '^state: ' "$workdir/resume.out")
if [ "$resume_state" != "$cluster_state" ]; then
  echo "state diverged after worker restart:"
  echo "  before: $cluster_state"
  echo "  after:  $resume_state"
  exit 1
fi

echo "cluster smoke: OK ($cluster_state)"
