// Package service implements the online micro-batching layer the paper
// motivates: "a huge number of clients issue HC-s-t path queries
// concurrently", and instead of deploying more servers to process them
// one by one, the service collects the queries arriving inside a small
// size/time window into a batch and answers the batch with the sharing
// engines, so concurrent queries pay for their common sub-queries once.
//
// Many goroutines call Submit; a collector goroutine forms batches of at
// most MaxBatch queries, dispatching early when the window MaxWait
// expires, and each formed batch runs through clustering + BatchEnum+
// (parallel across sharing groups). Every caller blocks on a private
// future and receives exactly its own query's results plus the stats of
// the batch that carried it.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/batchenum"
	"repro/internal/graph"
	"repro/internal/hcindex"
	"repro/internal/planner"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/timing"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("service: closed")

// ErrOverloaded is returned by Submit when admission control sheds the
// query: the queue is at MaxQueued, or the caller is at its
// MaxPerCaller quota. The query never entered a batch — nothing ran on
// its behalf — so the caller should back off and retry. Errors carry
// context via wrapping; test with errors.Is(err, ErrOverloaded).
// Shedding happens only at admission: a query that Submit accepted is
// always answered (or abandoned by its own caller's context).
var ErrOverloaded = errors.New("service: overloaded")

// PlanStats aggregates per-engine sharing-group counts and wall time,
// re-exported from the engine layer (see batchenum.PlanStats).
type PlanStats = batchenum.PlanStats

// Config tunes the batching policy and the engine behind it.
type Config struct {
	// MaxBatch caps the queries coalesced into one batch; zero means 64.
	MaxBatch int
	// MaxWait bounds how long the first query of a forming batch waits
	// for company before the batch is dispatched anyway; zero means 2ms.
	// Larger windows coalesce more queries (more sharing) at the cost of
	// per-query latency.
	MaxWait time.Duration
	// Engine configures the batch engine each formed batch runs through;
	// the zero value is BasicEnum, so callers almost always want
	// Algorithm set to BatchPlus.
	Engine batchenum.Options
	// Workers is the per-batch parallelism, following
	// batchenum.ParallelOptions: zero or negative means GOMAXPROCS,
	// positive is the exact worker count. Batches always run through the
	// parallel engine — a service exists to exploit concurrency — and
	// one worker reproduces the sequential engine's results and
	// behaviour.
	Workers int
	// QueryTimeout, when positive, bounds each micro-batch's engine
	// time: the batch runs under a deadline of dispatch time plus
	// QueryTimeout (every query in a batch dispatched within one MaxWait
	// window, so one per-batch deadline realises the per-query promise).
	// A batch that blows its deadline stops promptly; callers whose
	// queries were finished receive their complete results, the rest
	// receive what was enumerated with Reply.Err set to
	// context.DeadlineExceeded. Co-batched queries are never poisoned:
	// a truncated neighbour only ever loses its own tail.
	QueryTimeout time.Duration
	// Limit, when positive, caps the result paths delivered per query;
	// a query with more is truncated to exactly Limit paths with
	// Reply.Truncated set and Reply.Err = query.ErrLimitReached. Limit
	// bounds output volume only — pair it with QueryTimeout to also
	// bound enumeration time.
	Limit int64
	// IndexCacheBytes bounds the cross-batch hop-distance-map cache
	// shared by every micro-batch: online traffic hits popular endpoints
	// repeatedly, so consecutive batches reuse each other's MS-BFS
	// results instead of rebuilding them. Zero selects
	// hcindex.DefaultCacheBytes; negative disables caching (each batch
	// cold-builds through a pooled builder, which still recycles the
	// dense arrays).
	IndexCacheBytes int64
	// BuildWorkers sets the MS-BFS parallelism of the index provider
	// behind every micro-batch: positive runs each index-building pass
	// on that many goroutines with direction-optimizing push/pull
	// levels, negative means GOMAXPROCS, zero keeps the sequential
	// reference kernel. Orthogonal to Workers, which parallelises the
	// enumeration phase.
	BuildWorkers int
	// CompactAfter tunes the versioned store behind ApplyUpdates: the
	// delta folds into a fresh CSR base once its effective edge changes
	// reach this count. Zero selects the store default, negative disables
	// automatic compaction. Services that never apply updates are
	// unaffected.
	CompactAfter int
	// DataDir, when non-empty, makes the graph store durable: every
	// ApplyUpdates is write-ahead logged under this directory, periodic
	// checkpoints capture the full CSR, and Open warm-restarts from the
	// directory's contents (the on-disk state wins over the graph passed
	// in). Only honoured by Open — New is always in-memory.
	DataDir string
	// Fsync selects the WAL durability policy when DataDir is set:
	// store.FsyncAlways (default), store.FsyncInterval, store.FsyncOff.
	Fsync store.FsyncPolicy
	// SyncEvery is the FsyncInterval ticker period; zero selects
	// store.DefaultSyncEvery.
	SyncEvery time.Duration
	// CheckpointEvery controls background snapshot cadence (update
	// records between checkpoints); zero selects
	// store.DefaultCheckpointEvery, negative leaves checkpoints to
	// Close/Checkpoint only.
	CheckpointEvery int
	// Plan, when non-nil, enables the adaptive per-batch query planner:
	// every micro-batch's sharing groups are scored by a
	// planner.CostModel (seeded from these options, with IndexStats
	// defaulting to this service's index provider) and dispatched
	// per-group to single-query PathEnum, the Ψ-DFS pipeline, or
	// parallel splice; observed group costs feed back into the model.
	// nil keeps the fixed engine for every group.
	Plan *planner.Options
	// MaxInFlight bounds the micro-batches running concurrently; the
	// collector stops dispatching (and traffic queues) while the bound
	// is reached. Zero or negative means unlimited.
	MaxInFlight int
	// MaxQueued bounds the queries admitted but not yet dispatched into
	// a running batch; Submit sheds beyond it with ErrOverloaded. Zero
	// or negative means unlimited.
	MaxQueued int
	// MaxPerCaller bounds each caller's admitted-but-unresolved queries
	// (queued plus in flight); Submit sheds a caller's excess with
	// ErrOverloaded while other callers keep being admitted — the
	// fairness quota that stops one hostile client from occupying the
	// whole queue. Callers are distinguished by the Submit caller
	// string; all anonymous ("") callers share one bucket. Zero or
	// negative means no quota.
	MaxPerCaller int
	// OnBatch, when non-nil, is called with the stats of every completed
	// batch, after its callers have been released. Calls are serialised.
	OnBatch func(BatchStats)
	// Shards requests the in-process sharded deployment mode: the graph
	// is served by that many shard workers — each a full Service with
	// its own store, index cache, and batch pipeline — behind a routing
	// coordinator. A single Service ignores the field; it is interpreted
	// by internal/shard (and the hcpath layer above it), which builds
	// one worker per shard from this Config with Shards cleared. Zero or
	// one means unsharded.
	Shards int
	// MaxCrossShard bounds the cross-shard scatter-gather joins running
	// concurrently in a sharded deployment; excess cross-shard queries
	// are shed with ErrOverloaded. Single-shard traffic is governed by
	// the per-shard MaxInFlight/MaxQueued/MaxPerCaller bounds instead.
	// Zero or negative means unlimited. Ignored by a single Service.
	MaxCrossShard int
	// SyncCompact makes the store fold deltas inline inside
	// ApplyUpdates instead of in a background goroutine. The sharded
	// coordinator forces it on so replicas stepping through the same
	// update sequence pass through identical epoch sequences (background
	// compaction would bump epochs at racy points); outside that it is
	// mainly a determinism knob for tests.
	SyncCompact bool
}

func (c Config) maxBatch() int {
	if c.MaxBatch <= 0 {
		return 64
	}
	return c.MaxBatch
}

func (c Config) maxWait() time.Duration {
	if c.MaxWait <= 0 {
		return 2 * time.Millisecond
	}
	return c.MaxWait
}

// BatchStats describes one dispatched batch: how much traffic it
// coalesced, how much sharing the engine found, and where the wall-clock
// went (queueing wait vs engine time).
type BatchStats struct {
	// Queries is the number of concurrent queries coalesced into the
	// batch.
	Queries int
	// Groups is the number of sharing groups clustering formed.
	Groups int
	// SharedQueries is the number of dominating HC-s path queries
	// detected across the batch.
	SharedQueries int
	// SplicedPaths counts partial paths answered from the sharing cache
	// instead of recomputed.
	SplicedPaths int64
	// Paths is the total number of result paths of the batch.
	Paths int64
	// WaitNanos is the batch-formation wait: first enqueue to dispatch.
	WaitNanos int64
	// EnumerateNanos is the engine wall time spent answering the batch.
	EnumerateNanos int64
	// IndexHits and IndexMisses count the batch's index probes (two per
	// query) answered from the cross-batch cache vs built fresh.
	IndexHits, IndexMisses int
	// Truncated counts the batch's queries with cut-short result sets
	// (per-query limit reached, or the batch deadline fired first).
	Truncated int
	// Plan decomposes the batch's sharing groups by the engine that
	// processed them (with per-engine wall time). Without a planner
	// every group of a sharing run counts as shared.
	Plan PlanStats
	// Phases is the engine's four-phase time decomposition.
	Phases timing.Breakdown
}

// SharingRatio is the fraction of queries the batch engine coalesced
// with another query: 1 − groups/queries. Zero means every query ran in
// its own group (no sharing); values near one mean heavy coalescing.
func (b BatchStats) SharingRatio() float64 {
	if b.Queries == 0 || b.Groups == 0 {
		return 0
	}
	return 1 - float64(b.Groups)/float64(b.Queries)
}

// Totals aggregates the service's lifetime counters; read it with Stats.
type Totals struct {
	// Batches and Queries count dispatched batches and the queries they
	// carried; Queries/Batches is the mean coalescing factor.
	Batches, Queries int64
	// LargestBatch is the largest batch formed.
	LargestBatch int
	// Groups, SharedQueries and SplicedPaths sum the per-batch sharing
	// counters.
	Groups, SharedQueries int64
	SplicedPaths          int64
	// Paths counts result paths across all batches.
	Paths int64
	// WaitNanos and EnumerateNanos sum the per-batch wait and engine
	// times.
	WaitNanos, EnumerateNanos int64
	// IndexHits and IndexMisses sum the per-batch index-cache probes;
	// IndexWidened counts hits served from a wider-cap entry.
	IndexHits, IndexMisses, IndexWidened int64
	// IndexEvictions and IndexCacheBytes snapshot the cross-batch cache
	// at the time Stats was called.
	IndexEvictions, IndexCacheBytes int64
	// Truncated counts queries answered with cut-short result sets, and
	// DeadlineBatches the batches stopped by their QueryTimeout
	// deadline.
	Truncated, DeadlineBatches int64
	// Epoch is the current graph snapshot's epoch (zero until the first
	// ApplyUpdates), UpdatesApplied the effective edge changes ever
	// applied, Compactions the delta folds, and DeltaEdges the changes
	// currently pending compaction.
	Epoch          uint64
	UpdatesApplied int64
	Compactions    int64
	DeltaEdges     int
	// WALRecords counts ApplyUpdates calls logged to the write-ahead
	// log (no-ops included, restarts survived); Checkpoints counts
	// snapshot files written this process; SnapshotEpoch is the newest
	// on-disk snapshot's epoch. All zero on an in-memory service.
	WALRecords    int64
	Checkpoints   int64
	SnapshotEpoch uint64
	// Plan sums the per-batch planner decompositions: how many sharing
	// groups each engine processed and where their wall time went.
	Plan PlanStats
	// Shed counts submissions rejected by admission control
	// (ErrOverloaded); shed queries never ran and appear in no other
	// counter.
	Shed int64
}

// addBatch folds one dispatched batch into the lifetime counters;
// callers hold the service stats mutex. The excluded fields are not
// per-batch sums: the index-cache and store gauges (IndexWidened,
// IndexEvictions, IndexCacheBytes, Epoch, UpdatesApplied, Compactions,
// DeltaEdges, WALRecords, Checkpoints, SnapshotEpoch) are snapshotted
// by Stats at read time, and Shed counts submissions that never became
// part of a batch.
//
//hcpath:mergefields Totals -IndexWidened -IndexEvictions -IndexCacheBytes -Epoch -UpdatesApplied -Compactions -DeltaEdges -WALRecords -Checkpoints -SnapshotEpoch -Shed
func (t *Totals) addBatch(bs BatchStats, deadline bool) {
	t.Batches++
	t.Queries += int64(bs.Queries)
	if bs.Queries > t.LargestBatch {
		t.LargestBatch = bs.Queries
	}
	t.Groups += int64(bs.Groups)
	t.SharedQueries += int64(bs.SharedQueries)
	t.SplicedPaths += bs.SplicedPaths
	t.Paths += bs.Paths
	t.WaitNanos += bs.WaitNanos
	t.EnumerateNanos += bs.EnumerateNanos
	t.IndexHits += int64(bs.IndexHits)
	t.IndexMisses += int64(bs.IndexMisses)
	t.Truncated += int64(bs.Truncated)
	t.Plan.Add(bs.Plan)
	if deadline {
		t.DeadlineBatches++
	}
}

// Merge folds another service's lifetime totals into t, so a sharded
// deployment can report one Totals across its workers. Counters sum;
// the gauges that describe a single store or cache take the maximum,
// which under the shard layer's aligned-epoch invariant (every worker
// applies every update, at the same epoch) is each worker's common
// value — except IndexCacheBytes, which sums because each worker owns
// a separate cache and the deployment's memory footprint is their
// total. Note the replicated-store counters (UpdatesApplied,
// Compactions, WALRecords, …) also sum: merging N replicas of the same
// update stream counts each logical update N times, so deployment-level
// reporting should overwrite those gauges from one representative
// worker after merging (see shard.Coordinator.Stats).
func (t *Totals) Merge(o Totals) {
	t.Batches += o.Batches
	t.Queries += o.Queries
	if o.LargestBatch > t.LargestBatch {
		t.LargestBatch = o.LargestBatch
	}
	t.Groups += o.Groups
	t.SharedQueries += o.SharedQueries
	t.SplicedPaths += o.SplicedPaths
	t.Paths += o.Paths
	t.WaitNanos += o.WaitNanos
	t.EnumerateNanos += o.EnumerateNanos
	t.IndexHits += o.IndexHits
	t.IndexMisses += o.IndexMisses
	t.IndexWidened += o.IndexWidened
	t.IndexEvictions += o.IndexEvictions
	t.IndexCacheBytes += o.IndexCacheBytes
	t.Truncated += o.Truncated
	t.DeadlineBatches += o.DeadlineBatches
	if o.Epoch > t.Epoch {
		t.Epoch = o.Epoch
	}
	t.UpdatesApplied += o.UpdatesApplied
	t.Compactions += o.Compactions
	t.DeltaEdges += o.DeltaEdges
	t.WALRecords += o.WALRecords
	t.Checkpoints += o.Checkpoints
	if o.SnapshotEpoch > t.SnapshotEpoch {
		t.SnapshotEpoch = o.SnapshotEpoch
	}
	t.Plan.Add(o.Plan)
	t.Shed += o.Shed
}

// IndexHitRatio is the fraction of index probes answered from the
// cross-batch cache.
func (t Totals) IndexHitRatio() float64 {
	if t.IndexHits+t.IndexMisses == 0 {
		return 0
	}
	return float64(t.IndexHits) / float64(t.IndexHits+t.IndexMisses)
}

// Reply carries one caller's results out of its batch.
type Reply struct {
	// Paths holds the caller's result paths when it asked to collect
	// them, nil in count-only mode.
	Paths [][]graph.VertexID
	// Count is the caller's result-path count (also set when collecting).
	Count int64
	// Truncated reports that this query's result set was cut short; Err
	// says why. Every delivered path is still a genuine result.
	Truncated bool
	// Err is nil for a complete result set, query.ErrLimitReached when
	// Config.Limit truncated it, or context.DeadlineExceeded when the
	// batch's QueryTimeout deadline fired before the query finished.
	Err error
	// Batch describes the batch that answered the query.
	Batch BatchStats
}

// request is one caller's seat in a forming batch.
type request struct {
	q        query.Query
	caller   string
	collect  bool
	enqueued time.Time
	done     chan error // buffered; receives nil or the batch's error
	reply    Reply
}

// admission is the bookkeeping behind MaxQueued/MaxPerCaller: a count
// of admitted-but-undispatched queries, per-caller outstanding counts,
// and the shed tally. nil when neither bound is configured, so the
// unlimited path pays nothing.
type admission struct {
	maxQueued, maxPerCaller int

	mu        sync.Mutex
	queued    int
	perCaller map[string]int
	shed      int64
}

// admit reserves a seat, or returns a wrapped ErrOverloaded.
func (a *admission) admit(caller string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.maxQueued > 0 && a.queued >= a.maxQueued {
		a.shed++
		return fmt.Errorf("service: %d queries queued (MaxQueued %d): %w",
			a.queued, a.maxQueued, ErrOverloaded)
	}
	if a.maxPerCaller > 0 && a.perCaller[caller] >= a.maxPerCaller {
		a.shed++
		return fmt.Errorf("service: caller %q has %d queries outstanding (MaxPerCaller %d): %w",
			caller, a.perCaller[caller], a.maxPerCaller, ErrOverloaded)
	}
	a.queued++
	a.perCaller[caller]++
	return nil
}

// abandon rolls a reservation back: the caller's context fired before
// its request reached the collector.
func (a *admission) abandon(caller string) {
	a.mu.Lock()
	a.queued--
	a.decCallerLocked(caller)
	a.mu.Unlock()
}

// dispatched moves n queries from queued to in flight.
func (a *admission) dispatched(n int) {
	a.mu.Lock()
	a.queued -= n
	a.mu.Unlock()
}

// resolved releases one caller's seat once its batch answered (or
// failed); the fairness quota covers a query until its future resolves.
func (a *admission) resolved(caller string) {
	a.mu.Lock()
	a.decCallerLocked(caller)
	a.mu.Unlock()
}

func (a *admission) decCallerLocked(caller string) {
	if a.perCaller[caller]--; a.perCaller[caller] <= 0 {
		delete(a.perCaller, caller)
	}
}

func (a *admission) shedCount() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.shed
}

// Service is a long-lived concurrent micro-batching query engine over
// one versioned graph. All methods are safe for concurrent use:
// queries batch against the snapshot current at dispatch time, and
// ApplyUpdates swaps in a new epoch atomically — batches in flight
// finish on the snapshot they started with.
type Service struct {
	st  *store.Store
	cfg Config

	// provider is the long-lived index provider every micro-batch runs
	// through: one cross-batch cache (or pooled builder) shared for the
	// service's lifetime.
	provider hcindex.Provider

	// planner is the adaptive per-group cost model shared by every
	// micro-batch; nil runs every group through the fixed engine.
	planner *planner.CostModel

	// adm books admission control; nil means unlimited. inflight is the
	// batch-concurrency semaphore; nil means unbounded.
	adm      *admission
	inflight chan struct{}

	submit chan *request

	// closing guards submit against send-after-close: Submit sends under
	// the read side, Close closes under the write side.
	closing sync.RWMutex
	closed  bool

	wg sync.WaitGroup // collector + in-flight batch runners

	mu     sync.Mutex
	totals Totals

	cbMu sync.Mutex // serialises OnBatch callbacks
}

// New starts an in-memory service answering queries on g (gr is its
// precomputed reverse). The caller must Close it to release the
// collector. Config.DataDir is ignored — use Open for durability.
func New(g, gr *graph.Graph, cfg Config) *Service {
	return newWithStore(store.NewWithReverse(g, gr, store.Options{CompactAfter: cfg.CompactAfter, SyncCompact: cfg.SyncCompact}), cfg)
}

// Open starts a service like New, but honours Config.DataDir: when it
// is non-empty the graph store is durable — updates are write-ahead
// logged, checkpoints are written in the background, and an existing
// data directory warm-restarts the store at its pre-crash epoch and
// edge set (g/gr then only seed an empty directory; on-disk state
// wins). With an empty DataDir, Open is exactly New.
func Open(g, gr *graph.Graph, cfg Config) (*Service, error) {
	if cfg.DataDir == "" {
		return New(g, gr, cfg), nil
	}
	st, err := store.Open(cfg.DataDir, g, store.DurableOptions{
		Options:         store.Options{CompactAfter: cfg.CompactAfter, SyncCompact: cfg.SyncCompact},
		Fsync:           cfg.Fsync,
		SyncEvery:       cfg.SyncEvery,
		CheckpointEvery: cfg.CheckpointEvery,
	})
	if err != nil {
		return nil, err
	}
	return newWithStore(st, cfg), nil
}

// newWithStore wires the batching machinery around an existing store.
func newWithStore(st *store.Store, cfg Config) *Service {
	bw := cfg.BuildWorkers
	if bw < 0 {
		bw = runtime.GOMAXPROCS(0)
	}
	var provider hcindex.Provider
	if cfg.IndexCacheBytes < 0 {
		provider = hcindex.NewBuilderWorkers(true, bw)
	} else {
		provider = hcindex.NewCacheWorkers(cfg.IndexCacheBytes, bw) // 0 → default budget
	}
	s := &Service{
		st:       st,
		cfg:      cfg,
		provider: provider,
		submit:   make(chan *request, cfg.maxBatch()),
	}
	if cfg.Plan != nil {
		popts := *cfg.Plan
		if popts.IndexStats == nil {
			popts.IndexStats = provider.Stats
		}
		s.planner = planner.New(popts)
	}
	if cfg.MaxQueued > 0 || cfg.MaxPerCaller > 0 {
		s.adm = &admission{
			maxQueued:    cfg.MaxQueued,
			maxPerCaller: cfg.MaxPerCaller,
			perCaller:    make(map[string]int),
		}
	}
	if cfg.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInFlight)
	}
	s.wg.Add(1)
	go s.collect()
	return s
}

// Submit enqueues one query and blocks until its batch completes or ctx
// is cancelled. When collect is true the reply carries the materialised
// paths; otherwise only the count (the cheap mode, since result sets
// grow exponentially with K). The query is validated before it can join
// a batch, so one malformed query cannot fail the queries it happened to
// be batched with.
//
// caller identifies the submitting client for the MaxPerCaller fairness
// quota; pass "" when no quota is configured (anonymous callers share
// one bucket). With admission control configured, Submit may shed the
// query with ErrOverloaded before it enters the queue; once admitted, a
// query is always answered.
func (s *Service) Submit(ctx context.Context, caller string, q query.Query, collect bool) (*Reply, error) {
	// Validation against the current snapshot stays valid for whichever
	// later snapshot the batch runs on: updates only ever grow the
	// vertex space.
	if err := q.Validate(s.st.Current().Graph()); err != nil {
		return nil, err
	}
	r := &request{q: q, caller: caller, collect: collect, enqueued: time.Now(), done: make(chan error, 1)}

	s.closing.RLock()
	if s.closed {
		s.closing.RUnlock()
		return nil, ErrClosed
	}
	if s.adm != nil {
		if err := s.adm.admit(caller); err != nil {
			s.closing.RUnlock()
			return nil, err
		}
	}
	//hcpath:locksend-ok bounded: the collector drains submit until Close wins s.closing exclusively, which this RLock prevents; ctx.Done bounds the wait regardless
	select {
	case s.submit <- r:
		s.closing.RUnlock()
	case <-ctx.Done():
		s.closing.RUnlock()
		if s.adm != nil {
			s.adm.abandon(caller)
		}
		return nil, ctx.Err()
	}

	select {
	case err := <-r.done:
		if err != nil {
			return nil, err
		}
		return &r.reply, nil
	case <-ctx.Done():
		// The batch still runs; its write into r is unobserved and the
		// buffered done channel lets the runner move on.
		return nil, ctx.Err()
	}
}

// ApplyUpdates publishes a new graph epoch with dels removed and adds
// inserted (store.Store.ApplyUpdates semantics: deletions first,
// self-loops dropped, absent deletions no-ops, vertex space grows to
// fit adds). Batches already dispatched finish on their old snapshot;
// every batch formed after the call sees the new epoch, whose index
// entries can never be served from a stale generation. Returns the
// epoch now current.
func (s *Service) ApplyUpdates(adds, dels []graph.Edge) (uint64, error) {
	s.closing.RLock()
	defer s.closing.RUnlock()
	if s.closed {
		return s.st.Current().Epoch(), ErrClosed
	}
	snap, err := s.st.ApplyUpdates(adds, dels)
	return snap.Epoch(), err
}

// Checkpoint forces a durable snapshot of the current epoch. It
// returns nil immediately on an in-memory service.
func (s *Service) Checkpoint() error { return s.st.Checkpoint() }

// State identifies the current snapshot — epoch, sizes, and a checksum
// of the canonical CSR serialization — for cross-process comparison
// (e.g. asserting a warm restart reproduced the pre-crash graph).
func (s *Service) State() store.State { return s.st.Current().State() }

// Epoch returns the current graph snapshot's epoch.
func (s *Service) Epoch() uint64 { return s.st.Current().Epoch() }

// Stats returns a snapshot of the service's lifetime totals, including
// the cross-batch index cache's and the versioned store's current
// state.
func (s *Service) Stats() Totals {
	s.mu.Lock()
	t := s.totals
	s.mu.Unlock()
	ps := s.provider.Stats()
	t.IndexWidened = ps.Widened
	t.IndexEvictions = ps.Evictions
	t.IndexCacheBytes = ps.BytesInUse
	ss := s.st.Stats()
	t.Epoch = ss.Epoch
	t.UpdatesApplied = ss.UpdatesApplied
	t.Compactions = ss.Compactions
	t.DeltaEdges = ss.DeltaEdges
	t.WALRecords = ss.WALRecords
	t.Checkpoints = ss.Checkpoints
	t.SnapshotEpoch = ss.SnapshotEpoch
	if s.adm != nil {
		t.Shed = s.adm.shedCount()
	}
	return t
}

// Close dispatches any forming batch, waits for all in-flight batches
// to complete, and releases the collector. On a durable service it
// then writes a final checkpoint and syncs and closes the WAL; the
// returned error reports any failure to make that state durable
// (always nil in-memory). Submissions after Close return ErrClosed;
// Close is idempotent.
func (s *Service) Close() error {
	s.closing.Lock()
	if s.closed {
		s.closing.Unlock()
		return nil
	}
	s.closed = true
	close(s.submit)
	s.closing.Unlock()
	s.wg.Wait()
	// Drains background compactions/checkpoints; durable stores then
	// checkpoint the final epoch.
	return s.st.Close()
}

// collect is the batching loop: it owns the forming batch and its
// deadline timer, dispatching on size, on timeout, or on shutdown.
func (s *Service) collect() {
	defer s.wg.Done()
	var (
		batch   []*request
		timer   *time.Timer
		timeout <-chan time.Time
	)
	dispatch := func() {
		if timer != nil {
			timer.Stop()
			timer, timeout = nil, nil
		}
		if len(batch) == 0 {
			return
		}
		b := batch
		batch = nil
		// Backpressure: with MaxInFlight configured the collector blocks
		// here until a batch slot frees, so excess traffic accumulates in
		// the queue (and Submit sheds at MaxQueued) instead of fanning
		// out unbounded concurrent batches.
		if s.inflight != nil {
			s.inflight <- struct{}{}
		}
		if s.adm != nil {
			s.adm.dispatched(len(b))
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if s.inflight != nil {
				defer func() { <-s.inflight }()
			}
			s.runBatch(b)
		}()
	}
	for {
		select {
		case r, ok := <-s.submit:
			if !ok {
				dispatch()
				return
			}
			batch = append(batch, r)
			if len(batch) == 1 {
				timer = time.NewTimer(s.cfg.maxWait())
				timeout = timer.C
			}
			if len(batch) >= s.cfg.maxBatch() {
				dispatch()
			}
		case <-timeout:
			timer, timeout = nil, nil
			dispatch()
		}
	}
}

// runBatch answers one formed batch and resolves its futures. Queries
// take their batch IDs from their position, so the sink routes results
// straight to the requester. The batch binds to the snapshot current at
// dispatch: a concurrent ApplyUpdates never changes a running batch's
// graph, only which snapshot the next batch picks up.
// runBatch answers one dispatched batch on the current snapshot and
// resolves every caller's future. The directive keeps the BatchStats
// construction exhaustive: a field added to BatchStats must be filled
// here or excluded explicitly.
//
//hcpath:mergefields BatchStats
func (s *Service) runBatch(batch []*request) {
	snap := s.st.Current()
	dispatched := time.Now()
	qs := make([]query.Query, len(batch))
	for i, r := range batch {
		qs[i] = r.q
	}
	sink := query.FuncSink(func(id int, p []graph.VertexID) {
		r := batch[id]
		r.reply.Count++
		if r.collect {
			cp := make([]graph.VertexID, len(p))
			copy(cp, p)
			r.reply.Paths = append(r.reply.Paths, cp)
		}
	})

	engine := s.cfg.Engine
	engine.Provider = s.provider
	engine.Epoch = snap.Epoch()
	if s.planner != nil {
		engine.Planner = s.planner
	}
	t0 := time.Now()
	var deadline time.Time
	if s.cfg.QueryTimeout > 0 {
		deadline = t0.Add(s.cfg.QueryTimeout)
	}
	ctrl := query.NewControl(context.Background(), deadline, s.cfg.Limit, len(batch))
	st, err := batchenum.RunParallelControlled(snap.Graph(), snap.Reverse(), qs,
		batchenum.ParallelOptions{Options: engine, Workers: s.cfg.Workers}, ctrl, sink)
	if err != nil && !ctrl.Cancelled() {
		// Submit pre-validates, so this is systemic, not one query's
		// fault; fail the whole batch. (A blown QueryTimeout deadline is
		// not systemic: the batch resolves below with partial results
		// and per-query errors.)
		err = fmt.Errorf("service: batch of %d failed: %w", len(batch), err)
		for _, r := range batch {
			if s.adm != nil {
				s.adm.resolved(r.caller)
			}
			r.done <- err
		}
		return
	}
	for i, r := range batch {
		r.reply.Truncated = ctrl.Truncated(i)
		r.reply.Err = ctrl.QueryErr(i)
	}

	bs := BatchStats{
		Queries:        len(batch),
		Groups:         st.NumGroups,
		SharedQueries:  st.SharedNodes,
		SplicedPaths:   st.SplicedPaths,
		WaitNanos:      dispatched.Sub(batch[0].enqueued).Nanoseconds(),
		EnumerateNanos: time.Since(t0).Nanoseconds(),
		IndexHits:      st.IndexHits,
		IndexMisses:    st.IndexMisses,
		Truncated:      st.Truncated,
		Plan:           st.Plan,
		Phases:         st.Phases,
	}
	for _, r := range batch {
		bs.Paths += r.reply.Count
	}

	// Totals are updated before the futures resolve, so a caller that
	// reads Stats right after its Submit returns sees its own batch.
	s.mu.Lock()
	s.totals.addBatch(bs, ctrl.Err() == context.DeadlineExceeded)
	s.mu.Unlock()

	for _, r := range batch {
		r.reply.Batch = bs
		if s.adm != nil {
			s.adm.resolved(r.caller)
		}
		r.done <- nil
	}

	if s.cfg.OnBatch != nil {
		s.cbMu.Lock()
		//hcpath:locksend-ok cbMu exists solely to serialise OnBatch callbacks; no other code acquires it, so a slow callback delays only other callbacks
		s.cfg.OnBatch(bs)
		s.cbMu.Unlock()
	}
}
