package service

import (
	"repro/internal/graph"
	"repro/internal/hcindex"
	"repro/internal/msbfs"
	"repro/internal/pathenum"
	"repro/internal/pathjoin"
	"repro/internal/query"
	"repro/internal/store"
)

// The hooks in this file expose the pieces of a worker the sharded
// coordinator (internal/shard) composes across shards: pinning a
// snapshot, resolving one endpoint's distance map through this
// worker's index cache, and running one half of the bidirectional
// search on this worker's graph. Single-process callers never need
// them — Submit covers the whole pipeline.

// CurrentSnapshot pins the store's current snapshot. Snapshots are
// immutable: the caller can keep reading it while later updates move
// the store to newer epochs.
func (s *Service) CurrentSnapshot() *store.Snapshot { return s.st.Current() }

// AcquireDist resolves the hop-bounded distance map of root in
// direction dir (Forward: distances from root over the graph;
// Backward: distances from root over the reverse) through this
// worker's cross-batch index cache, on the given snapshot's epoch. The
// returned Index handle owns the map — the caller must Release it when
// done — and carries the Hits/Misses of the probe for stats.
func (s *Service) AcquireDist(snap *store.Snapshot, root graph.VertexID, k uint8, dir hcindex.Direction) (*msbfs.DistMap, *hcindex.Index) {
	// A root-to-root query acquires both directions from the same
	// vertex; we use the requested one. The opposite-direction map rides
	// along in the cache, warm for the reverse role the same endpoint
	// plays in later queries.
	idx := s.provider.Acquire(snap.Graph(), snap.Reverse(), snap.Epoch(), []query.Query{{S: root, T: root, K: k}})
	return idx.DistMapFor(0, dir), idx
}

// HalfPaths runs one pruned half-DFS on this worker's copy of the
// snapshot: forward collects every simple partial path from root over
// the graph, backward over the reverse, up to budget hops, pruned
// against other — the opposite endpoint's distance map in the opposite
// direction (see pathenum.CollectHalf). Results append to out; ctrl
// carries the query's cancellation and deadline across workers.
func (s *Service) HalfPaths(snap *store.Snapshot, dir hcindex.Direction, root graph.VertexID, budget, k uint8, other *msbfs.DistMap, ctrl *query.Control, out *pathjoin.Store) {
	g := snap.Graph()
	if dir == hcindex.Backward {
		g = snap.Reverse()
	}
	pathenum.CollectHalf(g, root, budget, k, other, pathenum.Options{}, ctrl, out)
}
