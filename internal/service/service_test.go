package service

import (
	"context"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/batchenum"
	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/testgraphs"
)

func paperService(t *testing.T, cfg Config) (*Service, *graph.Graph) {
	t.Helper()
	g := testgraphs.Paper()
	s := New(g, g.Reverse(), cfg)
	t.Cleanup(func() { s.Close() })
	return s, g
}

func paperQueries() []query.Query {
	var qs []query.Query
	for _, d := range testgraphs.PaperQueries() {
		qs = append(qs, query.Query{S: d[0], T: d[1], K: uint8(d[2])})
	}
	return qs
}

// TestSingleQuery: one submission forms a batch of one after MaxWait and
// returns the paper's ground-truth count.
func TestSingleQuery(t *testing.T) {
	s, _ := paperService(t, Config{
		MaxWait: time.Millisecond,
		Engine:  batchenum.Options{Algorithm: batchenum.BatchPlus},
	})
	r, err := s.Submit(context.Background(), "", query.Query{S: 0, T: 11, K: 5}, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count != 3 || len(r.Paths) != 3 {
		t.Fatalf("count=%d paths=%d, want 3/3", r.Count, len(r.Paths))
	}
	if r.Batch.Queries != 1 {
		t.Errorf("batch coalesced %d queries, want 1", r.Batch.Queries)
	}
	if r.Batch.WaitNanos <= 0 || r.Batch.EnumerateNanos <= 0 {
		t.Errorf("batch timings not populated: %+v", r.Batch)
	}
}

// TestCoalescing: queries submitted concurrently inside one window land
// in one batch and each caller receives exactly its own results.
func TestCoalescing(t *testing.T) {
	var batches []BatchStats
	s, _ := paperService(t, Config{
		MaxBatch: 16,
		MaxWait:  50 * time.Millisecond,
		Engine:   batchenum.Options{Algorithm: batchenum.BatchPlus, Gamma: 0.8},
		Workers:  -1,
		OnBatch:  func(b BatchStats) { batches = append(batches, b) },
	})
	qs := paperQueries()
	want := []int64{3, 3, 1, 2, 2}
	var wg sync.WaitGroup
	counts := make([]int64, len(qs))
	for i, q := range qs {
		wg.Add(1)
		go func(i int, q query.Query) {
			defer wg.Done()
			r, err := s.Submit(context.Background(), "", q, false)
			if err != nil {
				t.Error(err)
				return
			}
			counts[i] = r.Count
		}(i, q)
	}
	wg.Wait()
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("query %d: count %d, want %d", i, counts[i], w)
		}
	}
	tot := s.Stats()
	if tot.Queries != int64(len(qs)) {
		t.Errorf("totals report %d queries, want %d", tot.Queries, len(qs))
	}
	if tot.Batches >= tot.Queries {
		t.Errorf("no coalescing: %d batches for %d queries", tot.Batches, tot.Queries)
	}
	s.Close() // flush callbacks before reading batches
	var seen int
	for _, b := range batches {
		seen += b.Queries
		if b.Queries > 1 && b.SharingRatio() <= 0 {
			t.Errorf("multi-query batch reports sharing ratio %v: %+v", b.SharingRatio(), b)
		}
	}
	if seen != len(qs) {
		t.Errorf("OnBatch saw %d queries, want %d", seen, len(qs))
	}
}

// TestMaxBatchDispatch: the size trigger fires without waiting for the
// window to expire.
func TestMaxBatchDispatch(t *testing.T) {
	s, _ := paperService(t, Config{
		MaxBatch: 2,
		MaxWait:  10 * time.Second, // must not matter
		Engine:   batchenum.Options{Algorithm: batchenum.BatchPlus},
	})
	qs := paperQueries()[:4]
	var wg sync.WaitGroup
	start := time.Now()
	for _, q := range qs {
		wg.Add(1)
		go func(q query.Query) {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), "", q, false); err != nil {
				t.Error(err)
			}
		}(q)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("size-triggered dispatch waited %v", elapsed)
	}
	if got := s.Stats().LargestBatch; got > 2 {
		t.Errorf("batch of %d formed despite MaxBatch=2", got)
	}
}

// TestValidationIsolation: a malformed query is rejected at Submit and
// cannot poison the batch it would have joined.
func TestValidationIsolation(t *testing.T) {
	s, _ := paperService(t, Config{
		MaxBatch: 8,
		MaxWait:  20 * time.Millisecond,
		Engine:   batchenum.Options{Algorithm: batchenum.BatchPlus},
	})
	var wg sync.WaitGroup
	wg.Add(2)
	var goodCount int64
	var badErr error
	go func() {
		defer wg.Done()
		r, err := s.Submit(context.Background(), "", query.Query{S: 0, T: 11, K: 5}, false)
		if err != nil {
			t.Error(err)
			return
		}
		goodCount = r.Count
	}()
	go func() {
		defer wg.Done()
		_, badErr = s.Submit(context.Background(), "", query.Query{S: 7, T: 7, K: 3}, false)
	}()
	wg.Wait()
	if badErr == nil {
		t.Error("self-loop query accepted")
	}
	if goodCount != 3 {
		t.Errorf("good query got %d paths, want 3", goodCount)
	}
}

// TestContextCancellation: a caller abandoning its future does not wedge
// the batch or the service.
func TestContextCancellation(t *testing.T) {
	s, _ := paperService(t, Config{
		MaxBatch: 64,
		MaxWait:  time.Hour, // only cancellation can release the caller
		Engine:   batchenum.Options{Algorithm: batchenum.BatchPlus},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := s.Submit(ctx, "", query.Query{S: 0, T: 11, K: 5}, false); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	s.Close() // must not deadlock on the abandoned request
}

// TestClose: pending work drains, later submissions are refused, double
// Close is a no-op.
func TestClose(t *testing.T) {
	g := testgraphs.Paper()
	s := New(g, g.Reverse(), Config{
		MaxWait: time.Hour, // dispatch must come from Close itself
		Engine:  batchenum.Options{Algorithm: batchenum.BatchPlus},
	})
	done := make(chan int64, 1)
	go func() {
		r, err := s.Submit(context.Background(), "", query.Query{S: 0, T: 11, K: 5}, false)
		if err != nil {
			t.Error(err)
			done <- -1
			return
		}
		done <- r.Count
	}()
	time.Sleep(10 * time.Millisecond) // let the request reach the collector
	s.Close()
	select {
	case c := <-done:
		if c != 3 {
			t.Fatalf("drained count %d, want 3", c)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not drain the pending batch")
	}
	s.Close() // idempotent
	if _, err := s.Submit(context.Background(), "", query.Query{S: 0, T: 11, K: 5}, false); err != ErrClosed {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}

// TestResultsMatchSequential: a storm of concurrent submissions across
// random batching boundaries returns exactly the sequential engine's
// per-query path sets.
func TestResultsMatchSequential(t *testing.T) {
	g := testgraphs.Paper()
	gr := g.Reverse()
	qs := paperQueries()

	want := make([][]string, len(qs))
	for i, q := range qs {
		cs := query.NewCollectSink(1)
		if _, err := batchenum.Run(g, gr, []query.Query{q}, batchenum.Options{Algorithm: batchenum.BatchPlus}, cs); err != nil {
			t.Fatal(err)
		}
		for _, p := range cs.Paths[0] {
			want[i] = append(want[i], pathKey(p))
		}
		sort.Strings(want[i])
	}

	s := New(g, gr, Config{
		MaxBatch: 3, // force several partial batches per round
		MaxWait:  time.Millisecond,
		Engine:   batchenum.Options{Algorithm: batchenum.BatchPlus, Gamma: 0.8},
		Workers:  -1,
	})
	defer s.Close()
	for round := 0; round < 5; round++ {
		var wg sync.WaitGroup
		for i, q := range qs {
			wg.Add(1)
			go func(i int, q query.Query) {
				defer wg.Done()
				r, err := s.Submit(context.Background(), "", q, true)
				if err != nil {
					t.Error(err)
					return
				}
				var got []string
				for _, p := range r.Paths {
					got = append(got, pathKey(p))
				}
				sort.Strings(got)
				if len(got) != len(want[i]) {
					t.Errorf("query %d: %d paths, want %d", i, len(got), len(want[i]))
					return
				}
				for j := range got {
					if got[j] != want[i][j] {
						t.Errorf("query %d path %d: %s, want %s", i, j, got[j], want[i][j])
						return
					}
				}
			}(i, q)
		}
		wg.Wait()
	}
}

func pathKey(p []graph.VertexID) string {
	b := make([]byte, 0, len(p)*3)
	for _, v := range p {
		b = append(b, byte(v), '.')
	}
	return string(b)
}

// TestCrossBatchIndexCache: by default a service shares one index cache
// across micro-batches, so repeating the same query in later batches
// hits it; with a negative IndexCacheBytes every batch is all misses.
func TestCrossBatchIndexCache(t *testing.T) {
	q := query.Query{S: 0, T: 11, K: 5}
	submit := func(s *Service) BatchStats {
		r, err := s.Submit(context.Background(), "", q, false)
		if err != nil {
			t.Fatal(err)
		}
		return r.Batch
	}

	s, _ := paperService(t, Config{
		MaxWait: time.Millisecond,
		Engine:  batchenum.Options{Algorithm: batchenum.BatchPlus},
	})
	first := submit(s)
	if first.IndexHits != 0 || first.IndexMisses != 2 {
		t.Errorf("first batch: %d hits / %d misses, want 0/2", first.IndexHits, first.IndexMisses)
	}
	second := submit(s)
	if second.IndexHits != 2 || second.IndexMisses != 0 {
		t.Errorf("second batch: %d hits / %d misses, want 2/0", second.IndexHits, second.IndexMisses)
	}
	tot := s.Stats()
	if tot.IndexHits != 2 || tot.IndexMisses != 2 {
		t.Errorf("totals: %d hits / %d misses, want 2/2", tot.IndexHits, tot.IndexMisses)
	}
	if tot.IndexCacheBytes == 0 {
		t.Error("cache bytes not reported")
	}
	if r := tot.IndexHitRatio(); r != 0.5 {
		t.Errorf("hit ratio %.2f, want 0.50", r)
	}

	cold, _ := paperService(t, Config{
		MaxWait:         time.Millisecond,
		Engine:          batchenum.Options{Algorithm: batchenum.BatchPlus},
		IndexCacheBytes: -1,
	})
	submit(cold)
	if b := submit(cold); b.IndexHits != 0 || b.IndexMisses != 2 {
		t.Errorf("uncached repeat batch: %d hits / %d misses, want 0/2", b.IndexHits, b.IndexMisses)
	}
}

// TestDurableServiceRoundTrip: a service opened with a DataDir
// persists updates across Close/Open, reports durability counters in
// its totals, and recovers the exact store state.
func TestDurableServiceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		MaxWait:         time.Millisecond,
		Engine:          batchenum.Options{Algorithm: batchenum.BatchPlus},
		DataDir:         dir,
		Fsync:           store.FsyncOff,
		CheckpointEvery: -1,
	}
	g := testgraphs.Paper()
	s, err := Open(g, g.Reverse(), cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := s.ApplyUpdates([]graph.Edge{{Src: 0, Dst: 9}}, []graph.Edge{{Src: 0, Dst: 1}}); err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}
	want := s.State()
	tot := s.Stats()
	if tot.WALRecords != 1 || tot.Epoch != 1 {
		t.Fatalf("pre-close totals: %+v", tot)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen with a nil graph: the data directory alone restores state.
	s2, err := Open(nil, nil, cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if got := s2.State(); got != want {
		t.Fatalf("recovered state %+v, want %+v", got, want)
	}
	tot = s2.Stats()
	if tot.WALRecords != 1 || tot.Epoch != 1 || tot.SnapshotEpoch != 1 {
		t.Fatalf("post-reopen totals: %+v", tot)
	}

	// The recovered graph serves queries and reflects the update: the
	// added 0→9 edge joins the paper graph's existing (0,4,9) path.
	r, err := s2.Submit(context.Background(), "", query.Query{S: 0, T: 9, K: 2}, true)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if r.Count != 2 {
		t.Fatalf("query on recovered graph: count %d, want 2 (direct edge + (0,4,9))", r.Count)
	}
}
