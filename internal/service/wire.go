package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/timing"
	"repro/internal/wirefmt"
)

// This file defines the portable encodings of the service types that
// cross the sharded deployment's wire — Query in, Reply out, Totals
// for Stats — so a remote worker process and the coordinator exchange
// exactly the structures the in-process deployment passes by pointer.
// Layout is fixed-width little-endian (see wirefmt); the framing,
// integrity, and versioning live in internal/shard. The encoder/decoder
// pairs carry statsmerge exhaustiveness directives, so adding a field
// to BatchStats or Totals without extending its wire encoding fails
// `hcpathvet` rather than silently zeroing the field cluster-wide.

// Reply.Err crosses the wire as a one-byte code: the error values the
// service contract names get stable codes, anything else rides as its
// message.
const (
	wireErrNone = iota
	wireErrLimit
	wireErrDeadline
	wireErrCanceled
	wireErrOther
)

// AppendQueryWire appends q's wire encoding to dst.
func AppendQueryWire(dst []byte, q query.Query) []byte {
	dst = wirefmt.AppendI64(dst, int64(q.ID))
	dst = wirefmt.AppendU32(dst, q.S)
	dst = wirefmt.AppendU32(dst, q.T)
	dst = wirefmt.AppendU8(dst, q.K)
	return dst
}

// ReadQueryWire reads one query from r.
func ReadQueryWire(r *wirefmt.Reader) query.Query {
	return query.Query{
		ID: int(r.I64()),
		S:  r.U32(),
		T:  r.U32(),
		K:  r.U8(),
	}
}

func appendErrWire(dst []byte, err error) []byte {
	switch {
	case err == nil:
		return wirefmt.AppendU8(dst, wireErrNone)
	case errors.Is(err, query.ErrLimitReached):
		return wirefmt.AppendU8(dst, wireErrLimit)
	case errors.Is(err, context.DeadlineExceeded):
		return wirefmt.AppendU8(dst, wireErrDeadline)
	case errors.Is(err, context.Canceled):
		return wirefmt.AppendU8(dst, wireErrCanceled)
	default:
		dst = wirefmt.AppendU8(dst, wireErrOther)
		return wirefmt.AppendString(dst, err.Error())
	}
}

func readErrWire(r *wirefmt.Reader) error {
	switch r.U8() {
	case wireErrNone:
		return nil
	case wireErrLimit:
		return query.ErrLimitReached
	case wireErrDeadline:
		return context.DeadlineExceeded
	case wireErrCanceled:
		return context.Canceled
	default:
		return errors.New(r.String())
	}
}

// appendPlanWire lays out the planner's per-engine decomposition.
//
//hcpath:mergefields PlanStats
func appendPlanWire(dst []byte, p PlanStats) []byte {
	dst = wirefmt.AppendI64(dst, p.SingleGroups)
	dst = wirefmt.AppendI64(dst, p.SharedGroups)
	dst = wirefmt.AppendI64(dst, p.SpliceGroups)
	dst = wirefmt.AppendI64(dst, p.SingleNanos)
	dst = wirefmt.AppendI64(dst, p.SharedNanos)
	dst = wirefmt.AppendI64(dst, p.SpliceNanos)
	return dst
}

//hcpath:mergefields PlanStats
func readPlanWire(r *wirefmt.Reader) PlanStats {
	var p PlanStats
	p.SingleGroups = r.I64()
	p.SharedGroups = r.I64()
	p.SpliceGroups = r.I64()
	p.SingleNanos = r.I64()
	p.SharedNanos = r.I64()
	p.SpliceNanos = r.I64()
	return p
}

// The timing breakdown crosses the wire as its four phase durations in
// phase order; the phase set is fixed by Fig. 9, so the layout is too.
var wirePhases = [...]timing.Phase{
	timing.BuildIndex, timing.ClusterQuery, timing.IdentifySubquery, timing.Enumeration,
}

func appendPhasesWire(dst []byte, b timing.Breakdown) []byte {
	for _, ph := range wirePhases {
		dst = wirefmt.AppendI64(dst, int64(b.Get(ph)))
	}
	return dst
}

func readPhasesWire(r *wirefmt.Reader) timing.Breakdown {
	var b timing.Breakdown
	for _, ph := range wirePhases {
		b.Add(ph, time.Duration(r.I64()))
	}
	return b
}

// AppendBatchStatsWire appends bs's wire encoding to dst.
//
//hcpath:mergefields BatchStats
func AppendBatchStatsWire(dst []byte, bs BatchStats) []byte {
	dst = wirefmt.AppendI64(dst, int64(bs.Queries))
	dst = wirefmt.AppendI64(dst, int64(bs.Groups))
	dst = wirefmt.AppendI64(dst, int64(bs.SharedQueries))
	dst = wirefmt.AppendI64(dst, bs.SplicedPaths)
	dst = wirefmt.AppendI64(dst, bs.Paths)
	dst = wirefmt.AppendI64(dst, bs.WaitNanos)
	dst = wirefmt.AppendI64(dst, bs.EnumerateNanos)
	dst = wirefmt.AppendI64(dst, int64(bs.IndexHits))
	dst = wirefmt.AppendI64(dst, int64(bs.IndexMisses))
	dst = wirefmt.AppendI64(dst, int64(bs.Truncated))
	dst = appendPlanWire(dst, bs.Plan)
	dst = appendPhasesWire(dst, bs.Phases)
	return dst
}

// ReadBatchStatsWire reads one BatchStats from r.
//
//hcpath:mergefields BatchStats
func ReadBatchStatsWire(r *wirefmt.Reader) BatchStats {
	var bs BatchStats
	bs.Queries = int(r.I64())
	bs.Groups = int(r.I64())
	bs.SharedQueries = int(r.I64())
	bs.SplicedPaths = r.I64()
	bs.Paths = r.I64()
	bs.WaitNanos = r.I64()
	bs.EnumerateNanos = r.I64()
	bs.IndexHits = int(r.I64())
	bs.IndexMisses = int(r.I64())
	bs.Truncated = int(r.I64())
	bs.Plan = readPlanWire(r)
	bs.Phases = readPhasesWire(r)
	return bs
}

// AppendReplyWire appends rep's wire encoding to dst: the scalar
// results, the error code, the batch stats, and — only when the caller
// collected — the result paths as a u32 path count, then each path as
// a u16 hop count plus its vertices (path length is bounded by the
// uint8 hop constraint, so u16 cannot truncate).
func AppendReplyWire(dst []byte, rep *Reply) []byte {
	dst = wirefmt.AppendI64(dst, rep.Count)
	dst = wirefmt.AppendBool(dst, rep.Truncated)
	dst = appendErrWire(dst, rep.Err)
	dst = AppendBatchStatsWire(dst, rep.Batch)
	dst = wirefmt.AppendU32(dst, uint32(len(rep.Paths)))
	for _, p := range rep.Paths {
		dst = wirefmt.AppendU16(dst, uint16(len(p)))
		for _, v := range p {
			dst = wirefmt.AppendU32(dst, v)
		}
	}
	return dst
}

// ReadReplyWire reads one Reply from r. Path counts are bounds-checked
// against the remaining payload before allocation, so a corrupt frame
// cannot force a huge allocation; the caller still checks r.Err (or
// r.Close) before trusting the result.
func ReadReplyWire(r *wirefmt.Reader) *Reply {
	rep := &Reply{}
	rep.Count = r.I64()
	rep.Truncated = r.Bool()
	rep.Err = readErrWire(r)
	rep.Batch = ReadBatchStatsWire(r)
	nPaths := int(r.U32())
	if r.Err() != nil || nPaths == 0 {
		return rep
	}
	// Each path costs at least 2 bytes on the wire; a count claiming
	// more paths than bytes remain is corrupt.
	if nPaths > r.Remaining()/2 {
		r.Fail(fmt.Errorf("reply claims %d paths in %d bytes: %w", nPaths, r.Remaining(), wirefmt.ErrShort))
		return rep
	}
	rep.Paths = make([][]graph.VertexID, 0, nPaths)
	for i := 0; i < nPaths; i++ {
		hops := int(r.U16())
		if hops > r.Remaining()/4 {
			r.Fail(fmt.Errorf("path claims %d hops in %d bytes: %w", hops, r.Remaining(), wirefmt.ErrShort))
			return rep
		}
		p := make([]graph.VertexID, hops)
		for j := range p {
			p[j] = r.U32()
		}
		rep.Paths = append(rep.Paths, p)
	}
	return rep
}

// AppendTotalsWire appends t's wire encoding to dst.
//
//hcpath:mergefields Totals
func AppendTotalsWire(dst []byte, t Totals) []byte {
	dst = wirefmt.AppendI64(dst, t.Batches)
	dst = wirefmt.AppendI64(dst, t.Queries)
	dst = wirefmt.AppendI64(dst, int64(t.LargestBatch))
	dst = wirefmt.AppendI64(dst, t.Groups)
	dst = wirefmt.AppendI64(dst, t.SharedQueries)
	dst = wirefmt.AppendI64(dst, t.SplicedPaths)
	dst = wirefmt.AppendI64(dst, t.Paths)
	dst = wirefmt.AppendI64(dst, t.WaitNanos)
	dst = wirefmt.AppendI64(dst, t.EnumerateNanos)
	dst = wirefmt.AppendI64(dst, t.IndexHits)
	dst = wirefmt.AppendI64(dst, t.IndexMisses)
	dst = wirefmt.AppendI64(dst, t.IndexWidened)
	dst = wirefmt.AppendI64(dst, t.IndexEvictions)
	dst = wirefmt.AppendI64(dst, t.IndexCacheBytes)
	dst = wirefmt.AppendI64(dst, t.Truncated)
	dst = wirefmt.AppendI64(dst, t.DeadlineBatches)
	dst = wirefmt.AppendU64(dst, t.Epoch)
	dst = wirefmt.AppendI64(dst, t.UpdatesApplied)
	dst = wirefmt.AppendI64(dst, t.Compactions)
	dst = wirefmt.AppendI64(dst, int64(t.DeltaEdges))
	dst = wirefmt.AppendI64(dst, t.WALRecords)
	dst = wirefmt.AppendI64(dst, t.Checkpoints)
	dst = wirefmt.AppendU64(dst, t.SnapshotEpoch)
	dst = appendPlanWire(dst, t.Plan)
	dst = wirefmt.AppendI64(dst, t.Shed)
	return dst
}

// ReadTotalsWire reads one Totals from r.
//
//hcpath:mergefields Totals
func ReadTotalsWire(r *wirefmt.Reader) Totals {
	var t Totals
	t.Batches = r.I64()
	t.Queries = r.I64()
	t.LargestBatch = int(r.I64())
	t.Groups = r.I64()
	t.SharedQueries = r.I64()
	t.SplicedPaths = r.I64()
	t.Paths = r.I64()
	t.WaitNanos = r.I64()
	t.EnumerateNanos = r.I64()
	t.IndexHits = r.I64()
	t.IndexMisses = r.I64()
	t.IndexWidened = r.I64()
	t.IndexEvictions = r.I64()
	t.IndexCacheBytes = r.I64()
	t.Truncated = r.I64()
	t.DeadlineBatches = r.I64()
	t.Epoch = r.U64()
	t.UpdatesApplied = r.I64()
	t.Compactions = r.I64()
	t.DeltaEdges = int(r.I64())
	t.WALRecords = r.I64()
	t.Checkpoints = r.I64()
	t.SnapshotEpoch = r.U64()
	t.Plan = readPlanWire(r)
	t.Shed = r.I64()
	return t
}
