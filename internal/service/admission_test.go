package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/batchenum"
	"repro/internal/query"
)

// admissionState reads the admission counters white-box; the boundary
// tests spin on them instead of sleeping, which keeps every assertion
// deterministic under the race detector.
func admissionState(s *Service) (queued int, shed int64) {
	s.adm.mu.Lock()
	defer s.adm.mu.Unlock()
	return s.adm.queued, s.adm.shed
}

// waitUntil spins until cond holds or the test deadline budget runs out.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// submission is one async Submit with its eventual outcome.
type submission struct {
	reply *Reply
	err   error
	done  chan struct{}
}

func submitAsync(s *Service, caller string, q query.Query) *submission {
	sub := &submission{done: make(chan struct{})}
	go func() {
		defer close(sub.done)
		sub.reply, sub.err = s.Submit(context.Background(), caller, q, false)
	}()
	return sub
}

// q0 is the paper graph's q0(v0, v11, 5), ground-truth count 3.
var q0 = query.Query{S: 0, T: 11, K: 5}

// TestMaxQueuedBoundaries drives a burst of submissions into a service
// whose collector cannot dispatch yet (long MaxWait), at the MaxQueued
// boundaries 0 (unlimited), 1, and exact capacity. The shed count is
// exact, every shed error is ErrOverloaded, and — the no-poisoning
// contract — every admitted query still resolves with its full
// ground-truth result even when its burst siblings were shed at the
// same admission gate.
func TestMaxQueuedBoundaries(t *testing.T) {
	const burst = 8
	cases := []struct {
		name      string
		maxQueued int
		wantShed  int
	}{
		{"unlimited", 0, 0},
		{"one", 1, burst - 1},
		{"exact-capacity", burst, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				MaxBatch:  64,
				MaxWait:   10 * time.Second, // dispatch only on Close
				Engine:    batchenum.Options{Algorithm: batchenum.BatchPlus},
				MaxQueued: tc.maxQueued,
				// A per-caller quota far above the burst keeps the
				// admission bookkeeping engaged even at MaxQueued 0, so
				// the unlimited row exercises "configured but roomy"
				// rather than skipping admission entirely.
				MaxPerCaller: 10 * burst,
			}
			s, _ := paperService(t, cfg)

			subs := make([]*submission, burst)
			for i := range subs {
				subs[i] = submitAsync(s, "", q0)
			}
			// Every submission has either taken a queue seat or been shed
			// once queued+shed reaches the burst size; nothing dispatches
			// before Close.
			waitUntil(t, "burst fully admitted or shed", func() bool {
				queued, shed := admissionState(s)
				return queued+int(shed) == burst
			})
			if _, shed := admissionState(s); int(shed) != tc.wantShed {
				t.Fatalf("shed %d submissions, want %d", shed, tc.wantShed)
			}

			s.Close() // dispatches the forming batch, resolves all futures
			var okCount, shedCount int
			for i, sub := range subs {
				<-sub.done
				switch {
				case sub.err == nil:
					okCount++
					if sub.reply.Count != 3 {
						t.Errorf("submission %d: count %d, want 3", i, sub.reply.Count)
					}
				case errors.Is(sub.err, ErrOverloaded):
					shedCount++
				default:
					t.Errorf("submission %d: unexpected error %v", i, sub.err)
				}
			}
			if shedCount != tc.wantShed || okCount != burst-tc.wantShed {
				t.Fatalf("resolved %d ok / %d shed, want %d / %d",
					okCount, shedCount, burst-tc.wantShed, tc.wantShed)
			}
			if got := s.Stats().Shed; got != int64(tc.wantShed) {
				t.Errorf("Totals.Shed = %d, want %d", got, tc.wantShed)
			}
		})
	}
}

// TestMaxInFlightBoundaries pins batches in flight deterministically —
// the first OnBatch callback blocks, and a blocked callback holds its
// batch's in-flight slot because the slot releases only when runBatch
// returns (later completed batches chain behind it on the callback
// mutex, each holding its own slot) — then checks the boundary
// semantics at MaxInFlight 0 (unlimited), 1, and exact capacity:
// whether a following batch dispatches (draining the queue) or waits
// for a slot (leaving the queue full, so a further submission sheds).
func TestMaxInFlightBoundaries(t *testing.T) {
	cases := []struct {
		name        string
		maxInFlight int
		warm        int // batches resolved and then pinned in flight
		wantShed    bool
	}{
		{"unlimited", 0, 1, false},
		{"one", 1, 1, true},
		{"exact-capacity", 2, 2, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			release := make(chan struct{})
			first := true
			cfg := Config{
				MaxBatch:    1, // every submission is its own batch
				MaxWait:     time.Millisecond,
				Engine:      batchenum.Options{Algorithm: batchenum.BatchPlus},
				MaxInFlight: tc.maxInFlight,
				MaxQueued:   1,
				OnBatch: func(BatchStats) {
					if first {
						first = false // OnBatch calls are serialised; no race
						<-release
					}
				},
			}
			s, _ := paperService(t, cfg)
			defer func() {
				select {
				case <-release:
				default:
					close(release)
				}
			}()

			// Warm batches: each resolves its caller, then its runBatch
			// goroutine parks in (or behind) the blocked callback with
			// its slot held. Receiving the reply before submitting the
			// next proves the service had a free slot for each.
			for i := 0; i < tc.warm; i++ {
				sub := submitAsync(s, "", q0)
				<-sub.done
				if sub.err != nil {
					t.Fatalf("warm batch %d: %v", i, sub.err)
				}
			}

			// The probe query takes the single queue seat. With a free
			// slot it dispatches immediately (queue drains); with all
			// slots pinned it stays queued.
			probe := submitAsync(s, "", q0)
			if tc.wantShed {
				waitUntil(t, "probe queued", func() bool {
					queued, _ := admissionState(s)
					return queued == 1
				})
				if _, err := s.Submit(context.Background(), "", q0, false); !errors.Is(err, ErrOverloaded) {
					t.Fatalf("overflow submission returned %v, want ErrOverloaded", err)
				}
			} else {
				// No in-flight bound: the probe's batch dispatches and
				// resolves even while the pinned batch blocks its callback
				// (futures resolve before OnBatch), the queue seat frees,
				// and a further submission is admitted.
				<-probe.done
				if probe.err != nil {
					t.Fatalf("probe shed on unlimited in-flight: %v", probe.err)
				}
				extra := submitAsync(s, "", q0)
				<-extra.done
				if extra.err != nil {
					t.Fatalf("post-probe submission shed on unlimited in-flight: %v", extra.err)
				}
			}

			close(release) // unpin; the probe's batch may now run
			<-probe.done
			if probe.err != nil || probe.reply.Count != 3 {
				t.Fatalf("probe resolved (%v, count %v), want clean count 3",
					probe.err, probe.reply)
			}
			wantShed := int64(0)
			if tc.wantShed {
				wantShed = 1
			}
			if got := s.Stats().Shed; got != wantShed {
				t.Errorf("Totals.Shed = %d, want %d", got, wantShed)
			}
		})
	}
}

// TestFairnessQuotaStopsStarvation: a hostile caller flooding the
// service hits its MaxPerCaller quota and is shed, while a victim
// caller arriving afterwards — with the queue already carrying the
// hostile caller's full quota — is still admitted and answered. Without
// the quota the hostile flood would have filled MaxQueued and starved
// the victim outright.
func TestFairnessQuotaStopsStarvation(t *testing.T) {
	const quota = 2
	s, _ := paperService(t, Config{
		MaxBatch:     64,
		MaxWait:      10 * time.Second, // dispatch only on Close
		Engine:       batchenum.Options{Algorithm: batchenum.BatchPlus},
		MaxQueued:    quota + 1, // room for the quota plus one victim
		MaxPerCaller: quota,
	})

	var hostile []*submission
	for i := 0; i < 6; i++ {
		hostile = append(hostile, submitAsync(s, "hostile", q0))
	}
	waitUntil(t, "hostile flood settled", func() bool {
		queued, shed := admissionState(s)
		return queued == quota && int(shed) == len(hostile)-quota
	})

	victim := submitAsync(s, "victim", q0)
	waitUntil(t, "victim admitted", func() bool {
		queued, _ := admissionState(s)
		return queued == quota+1
	})

	s.Close()
	<-victim.done
	if victim.err != nil || victim.reply.Count != 3 {
		t.Fatalf("victim starved: err=%v reply=%+v", victim.err, victim.reply)
	}
	admitted, shed := 0, 0
	for _, sub := range hostile {
		<-sub.done
		switch {
		case sub.err == nil:
			admitted++
			if sub.reply.Count != 3 {
				t.Errorf("admitted hostile query answered %d paths, want 3", sub.reply.Count)
			}
		case errors.Is(sub.err, ErrOverloaded):
			shed++
			// The quota names the caller in the wrapped message so an
			// operator can see who is being shed.
			if !strings.Contains(sub.err.Error(), `"hostile"`) {
				t.Errorf("shed error does not name the caller: %v", sub.err)
			}
		default:
			t.Errorf("hostile submission: unexpected error %v", sub.err)
		}
	}
	if admitted != quota || shed != len(hostile)-quota {
		t.Fatalf("hostile flood resolved %d admitted / %d shed, want %d / %d",
			admitted, shed, quota, len(hostile)-quota)
	}
}
