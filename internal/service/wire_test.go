package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/timing"
	"repro/internal/wirefmt"
)

func TestQueryWireRoundTrip(t *testing.T) {
	in := query.Query{ID: 12345, S: 7, T: 4100000000, K: 9}
	r := wirefmt.NewReader(AppendQueryWire(nil, in))
	got := ReadQueryWire(r)
	if err := r.Close(); err != nil {
		t.Fatalf("trailing bytes: %v", err)
	}
	if got != in {
		t.Fatalf("decoded %+v, want %+v", got, in)
	}
}

func TestErrWireRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		in   error
		want error // nil means compare by message
	}{
		{"nil", nil, nil},
		{"limit", query.ErrLimitReached, query.ErrLimitReached},
		{"deadline", context.DeadlineExceeded, context.DeadlineExceeded},
		{"canceled", context.Canceled, context.Canceled},
		{"other", errors.New("some engine failure"), nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := wirefmt.NewReader(appendErrWire(nil, c.in))
			got := readErrWire(r)
			if err := r.Close(); err != nil {
				t.Fatalf("trailing bytes: %v", err)
			}
			if c.in == nil {
				if got != nil {
					t.Fatalf("decoded %v, want nil", got)
				}
				return
			}
			if c.want != nil {
				if !errors.Is(got, c.want) {
					t.Fatalf("decoded %v, want %v", got, c.want)
				}
				return
			}
			if got.Error() != c.in.Error() {
				t.Fatalf("decoded %q, want %q", got, c.in)
			}
		})
	}
}

func fullBatchStats() BatchStats {
	var ph timing.Breakdown
	ph.Add(timing.BuildIndex, 11)
	ph.Add(timing.ClusterQuery, 22)
	ph.Add(timing.IdentifySubquery, 33)
	ph.Add(timing.Enumeration, 44)
	return BatchStats{
		Queries: 1, Groups: 2, SharedQueries: 3, SplicedPaths: 4, Paths: 5,
		WaitNanos: 6, EnumerateNanos: 7, IndexHits: 8, IndexMisses: 9, Truncated: 10,
		Plan: PlanStats{
			SingleGroups: 11, SharedGroups: 12, SpliceGroups: 13,
			SingleNanos: 14, SharedNanos: 15, SpliceNanos: 16,
		},
		Phases: ph,
	}
}

// TestBatchStatsWireRoundTrip fills every field with a distinct value:
// a codec that drops or reorders a field fails here (and the statsmerge
// directive fails hcpathvet at build time).
func TestBatchStatsWireRoundTrip(t *testing.T) {
	in := fullBatchStats()
	r := wirefmt.NewReader(AppendBatchStatsWire(nil, in))
	got := ReadBatchStatsWire(r)
	if err := r.Close(); err != nil {
		t.Fatalf("trailing bytes: %v", err)
	}
	if got != in {
		t.Fatalf("decoded %+v, want %+v", got, in)
	}
}

func TestReplyWireRoundTrip(t *testing.T) {
	in := &Reply{
		Count:     3,
		Truncated: true,
		Err:       query.ErrLimitReached,
		Batch:     fullBatchStats(),
		Paths: [][]graph.VertexID{
			{1, 2, 3},
			{1, 9},
			{1, 4, 5, 6, 7},
		},
	}
	r := wirefmt.NewReader(AppendReplyWire(nil, in))
	got := ReadReplyWire(r)
	if err := r.Close(); err != nil {
		t.Fatalf("trailing bytes: %v", err)
	}
	if got.Count != in.Count || got.Truncated != in.Truncated || !errors.Is(got.Err, in.Err) || got.Batch != in.Batch {
		t.Fatalf("decoded %+v, want %+v", got, in)
	}
	if len(got.Paths) != len(in.Paths) {
		t.Fatalf("decoded %d paths, want %d", len(got.Paths), len(in.Paths))
	}
	for i := range in.Paths {
		if len(got.Paths[i]) != len(in.Paths[i]) {
			t.Fatalf("path %d: %v vs %v", i, got.Paths[i], in.Paths[i])
		}
		for j := range in.Paths[i] {
			if got.Paths[i][j] != in.Paths[i][j] {
				t.Fatalf("path %d: %v vs %v", i, got.Paths[i], in.Paths[i])
			}
		}
	}

	// Count-only mode: no paths on the wire.
	in.Paths = nil
	r = wirefmt.NewReader(AppendReplyWire(nil, in))
	got = ReadReplyWire(r)
	if err := r.Close(); err != nil {
		t.Fatalf("count-only: trailing bytes: %v", err)
	}
	if got.Paths != nil {
		t.Fatalf("count-only reply decoded %d paths", len(got.Paths))
	}
}

// TestReplyWireRejectsAbsurdCounts feeds ReadReplyWire path and hop
// counts exceeding the payload: the reader must end poisoned (caller
// drops the frame), not attempt the allocation.
func TestReplyWireRejectsAbsurdCounts(t *testing.T) {
	in := &Reply{Count: 1}
	enc := AppendReplyWire(nil, in)
	// The path count is the final u32; claim 2^30 paths.
	copy(enc[len(enc)-4:], wirefmt.AppendU32(nil, 1<<30))
	r := wirefmt.NewReader(enc)
	ReadReplyWire(r)
	if r.Err() == nil {
		t.Fatal("absurd path count left the reader clean")
	}

	in.Paths = [][]graph.VertexID{{1, 2}}
	enc = AppendReplyWire(nil, in)
	// The hop count is the u16 right after the path count: claim 2^15
	// hops with only 8 bytes of vertices behind it.
	copy(enc[len(enc)-10:], wirefmt.AppendU16(nil, 1<<15))
	r = wirefmt.NewReader(enc)
	ReadReplyWire(r)
	if r.Err() == nil {
		t.Fatal("absurd hop count left the reader clean")
	}
}

// TestTotalsWireRoundTrip fills all 25 fields with distinct values.
func TestTotalsWireRoundTrip(t *testing.T) {
	in := Totals{
		Batches: 1, Queries: 2, LargestBatch: 3, Groups: 4, SharedQueries: 5,
		SplicedPaths: 6, Paths: 7, WaitNanos: 8, EnumerateNanos: 9,
		IndexHits: 10, IndexMisses: 11, IndexWidened: 12, IndexEvictions: 13,
		IndexCacheBytes: 14, Truncated: 15, DeadlineBatches: 16, Epoch: 17,
		UpdatesApplied: 18, Compactions: 19, DeltaEdges: 20, WALRecords: 21,
		Checkpoints: 22, SnapshotEpoch: 23,
		Plan: PlanStats{
			SingleGroups: 24, SharedGroups: 25, SpliceGroups: 26,
			SingleNanos: 27, SharedNanos: 28, SpliceNanos: 29,
		},
		Shed: 30,
	}
	r := wirefmt.NewReader(AppendTotalsWire(nil, in))
	got := ReadTotalsWire(r)
	if err := r.Close(); err != nil {
		t.Fatalf("trailing bytes: %v", err)
	}
	if got != in {
		t.Fatalf("decoded %+v, want %+v", got, in)
	}
}

// TestPhasesWireOrder pins the wire layout of the four-phase breakdown:
// reordering wirePhases would silently swap phase attributions between
// processes.
func TestPhasesWireOrder(t *testing.T) {
	var b timing.Breakdown
	b.Add(timing.BuildIndex, 1*time.Nanosecond)
	b.Add(timing.ClusterQuery, 2*time.Nanosecond)
	b.Add(timing.IdentifySubquery, 3*time.Nanosecond)
	b.Add(timing.Enumeration, 4*time.Nanosecond)
	enc := appendPhasesWire(nil, b)
	r := wirefmt.NewReader(enc)
	for i, want := range []int64{1, 2, 3, 4} {
		if got := r.I64(); got != want {
			t.Fatalf("phase slot %d carries %d, want %d", i, got, want)
		}
	}
}
