package shard

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"repro/internal/graph"
	"repro/internal/hcindex"
	"repro/internal/msbfs"
	"repro/internal/pathjoin"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/wirefmt"
)

// This file is the sharded deployment's wire format: the frame layer
// every connection speaks, the message vocabulary (one type per worker
// RPC), and the body codecs for the payloads the in-process protocol
// passes by pointer — distance maps down, half-path stores up. Frames
// mirror the WAL record format (internal/store): a little-endian
// length, a CRC32-C over the payload, then the payload, so a torn or
// bit-flipped frame is detected before any byte of it is interpreted.
//
//	frame   = [4B payload len LE][4B CRC32-C(payload)][payload]
//	payload = [1B msg type][8B request id LE][body]
//
// Request ids are chosen by the client and echoed by the server, so
// responses demultiplex over one shared connection; the server may
// answer out of order (and does: Submit blocks in the micro-batching
// pipeline while AcquireDist answers from cache).

const (
	// wireMagic opens every connection's hello, versioning the
	// protocol: a worker refuses a client speaking a different format.
	wireMagic uint32 = 0x68637031 // "hcp1"

	frameHeaderSize = 8
	// maxFramePayload rejects implausible frame lengths before
	// allocation, like the WAL's scanner: a corrupt length prefix must
	// not become a huge allocation.
	maxFramePayload = 1 << 30
)

var wireCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// Message types. Requests flow coordinator→worker; the worker answers
// each with mtResp (body per RPC) or mtErr (a wire error, below),
// echoing the request id.
const (
	mtHello byte = iota + 1
	mtSubmit
	mtAcquireDist
	mtHalfPaths
	mtApplyUpdates
	mtStats
	mtState
	mtEpoch
	mtCheckpoint

	mtResp byte = 0x40
	mtErr  byte = 0x41
)

// ErrFrameCorrupt marks a frame whose length or checksum is wrong: the
// stream can no longer be trusted, so both ends drop the connection
// rather than resynchronize.
var ErrFrameCorrupt = errors.New("shard: corrupt wire frame")

// ErrWorkerDown marks an RPC that failed because the worker's
// connection is gone — refused, dropped mid-request, or corrupt. A
// cross-shard query in flight when a worker dies fails with it
// immediately instead of hanging on the dead socket.
var ErrWorkerDown = errors.New("shard: worker unreachable")

// WorkerDownError wraps ErrWorkerDown with which worker and why.
type WorkerDownError struct {
	Addr  string
	Shard int
	Cause error
}

func (e *WorkerDownError) Error() string {
	return fmt.Sprintf("shard: worker %d (%s) unreachable: %v", e.Shard, e.Addr, e.Cause)
}

func (e *WorkerDownError) Unwrap() []error { return []error{ErrWorkerDown, e.Cause} }

// EpochMismatchError reports an epoch-carrying RPC that reached a
// worker on a different epoch: the coordinator's pinned epoch went
// stale between scatter phases (an update landed mid-query), or the
// cluster genuinely diverged. The coordinator retries the former; the
// update fan-out fails loudly on the latter.
type EpochMismatchError struct {
	Want, Have uint64
}

func (e *EpochMismatchError) Error() string {
	return fmt.Sprintf("shard: epoch mismatch: request pinned %d, worker at %d", e.Want, e.Have)
}

// OverloadedError is the wire form of a worker's shed: it wraps
// service.ErrOverloaded (errors.Is keeps working across the wire) and
// carries the server's retry-after hint for the client's Backoff.
type OverloadedError struct {
	RetryAfter time.Duration
	msg        string
}

func (e *OverloadedError) Error() string { return e.msg }

func (e *OverloadedError) Unwrap() error { return service.ErrOverloaded }

// appendFrame appends one whole frame to dst.
func appendFrame(dst []byte, typ byte, id uint64, body []byte) []byte {
	payload := 1 + 8 + len(body)
	dst = wirefmt.AppendU32(dst, uint32(payload))
	crc := crc32.Checksum([]byte{typ}, wireCastagnoli)
	var idb [8]byte
	wirefmt.AppendU64(idb[:0], id)
	crc = crc32.Update(crc, wireCastagnoli, idb[:])
	crc = crc32.Update(crc, wireCastagnoli, body)
	dst = wirefmt.AppendU32(dst, crc)
	dst = append(dst, typ)
	dst = append(dst, idb[:]...)
	dst = append(dst, body...)
	return dst
}

// readFrame reads one frame. Short reads surface as io errors (the
// peer hung up); a bad length or checksum surfaces as ErrFrameCorrupt.
// The returned body is freshly allocated and safe to retain.
func readFrame(br *bufio.Reader) (typ byte, id uint64, body []byte, err error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	h := wirefmt.NewReader(hdr[:])
	length, crc := h.U32(), h.U32()
	if length < 9 || length > maxFramePayload {
		return 0, 0, nil, fmt.Errorf("frame length %d: %w", length, ErrFrameCorrupt)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		// A frame cut off mid-payload: the peer died mid-write. Report
		// the io error (unexpected EOF), which the connection layer
		// folds into worker-down like any other read failure.
		return 0, 0, nil, err
	}
	if got := crc32.Checksum(payload, wireCastagnoli); got != crc {
		return 0, 0, nil, fmt.Errorf("frame checksum %08x, want %08x: %w", got, crc, ErrFrameCorrupt)
	}
	r := wirefmt.NewReader(payload)
	typ = r.U8()
	id = r.U64()
	return typ, id, payload[9:], nil
}

// Wire error codes (mtErr body: [1B code][code-specific fields]).
const (
	weOverloaded byte = iota + 1
	weClosed
	weEpoch
	weString
)

// appendWireError encodes err as an mtErr body. Errors with cross-wire
// semantics (overload with its hint, closed, epoch mismatch) get
// structured codes; everything else travels as its message, so a
// remote failure reads exactly like its local counterpart.
func appendWireError(dst []byte, err error, retryAfter time.Duration) []byte {
	var em *EpochMismatchError
	switch {
	case errors.Is(err, service.ErrOverloaded):
		dst = wirefmt.AppendU8(dst, weOverloaded)
		dst = wirefmt.AppendI64(dst, int64(retryAfter))
		dst = wirefmt.AppendString(dst, err.Error())
	case errors.Is(err, service.ErrClosed):
		dst = wirefmt.AppendU8(dst, weClosed)
	case errors.As(err, &em):
		dst = wirefmt.AppendU8(dst, weEpoch)
		dst = wirefmt.AppendU64(dst, em.Want)
		dst = wirefmt.AppendU64(dst, em.Have)
	default:
		dst = wirefmt.AppendU8(dst, weString)
		dst = wirefmt.AppendString(dst, err.Error())
	}
	return dst
}

// readWireError decodes an mtErr body into the matching client-side
// error.
func readWireError(r *wirefmt.Reader) error {
	switch r.U8() {
	case weOverloaded:
		hint := time.Duration(r.I64())
		return &OverloadedError{RetryAfter: hint, msg: r.String()}
	case weClosed:
		return service.ErrClosed
	case weEpoch:
		return &EpochMismatchError{Want: r.U64(), Have: r.U64()}
	default:
		msg := r.String()
		if r.Err() != nil {
			return fmt.Errorf("undecodable worker error: %w", ErrFrameCorrupt)
		}
		return errors.New(msg)
	}
}

// hcDirection maps a wire byte onto the two search directions.
func hcDirection(b uint8) hcindex.Direction {
	if b == 0 {
		return hcindex.Forward
	}
	return hcindex.Backward
}

// appendDistMap encodes d as its portable contents: the dense-array
// length n (the encoding side's vertex count — DistMap does not carry
// it), then the visited set with its distances.
func appendDistMap(dst []byte, d *msbfs.DistMap, n int) []byte {
	dst = wirefmt.AppendU32(dst, d.Source)
	dst = wirefmt.AppendU8(dst, d.Cap)
	dst = wirefmt.AppendU32(dst, uint32(n))
	vis := d.Visited()
	dst = wirefmt.AppendU32(dst, uint32(len(vis)))
	for _, v := range vis {
		dst = wirefmt.AppendU32(dst, v)
	}
	for _, v := range vis {
		dst = wirefmt.AppendU8(dst, d.Dist(v))
	}
	return dst
}

// readDistMap decodes one distance map. minN floors the dense-array
// length at the reader's own vertex count, so a map built on a smaller
// vertex space stays probe-safe against the local graph.
func readDistMap(r *wirefmt.Reader, minN int) (*msbfs.DistMap, error) {
	source := r.U32()
	cap := r.U8()
	n := int(r.U32())
	nVis := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	// 5 bytes per visited vertex (4 id + 1 dist).
	if nVis > r.Remaining()/5 {
		return nil, fmt.Errorf("distance map claims %d visited vertices in %d bytes: %w",
			nVis, r.Remaining(), ErrFrameCorrupt)
	}
	visited := make([]graph.VertexID, nVis)
	for i := range visited {
		visited[i] = r.U32()
	}
	dists := make([]uint8, nVis)
	for i := range dists {
		dists[i] = r.U8()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n < minN {
		n = minN
	}
	d, err := msbfs.FromVisited(source, cap, n, visited, dists)
	if err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrFrameCorrupt)
	}
	return d, nil
}

// appendStore encodes a half-path arena verbatim: the offsets, then
// the flat vertex array.
func appendStore(dst []byte, s *pathjoin.Store) []byte {
	verts, offs := s.Raw()
	dst = wirefmt.AppendU32(dst, uint32(len(offs)))
	for _, o := range offs {
		dst = wirefmt.AppendU32(dst, uint32(o))
	}
	dst = wirefmt.AppendU32(dst, uint32(len(verts)))
	for _, v := range verts {
		dst = wirefmt.AppendU32(dst, v)
	}
	return dst
}

// readStore decodes one half-path arena, re-validating the offset
// invariants through pathjoin.RestoreStore.
func readStore(r *wirefmt.Reader) (*pathjoin.Store, error) {
	nOffs := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if nOffs > r.Remaining()/4 {
		return nil, fmt.Errorf("path store claims %d offsets in %d bytes: %w", nOffs, r.Remaining(), ErrFrameCorrupt)
	}
	var offs []int32
	if nOffs > 0 {
		offs = make([]int32, nOffs)
		for i := range offs {
			offs[i] = int32(r.U32())
		}
	}
	nVerts := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if nVerts > r.Remaining()/4 {
		return nil, fmt.Errorf("path store claims %d vertices in %d bytes: %w", nVerts, r.Remaining(), ErrFrameCorrupt)
	}
	var verts []graph.VertexID
	if nVerts > 0 {
		verts = make([]graph.VertexID, nVerts)
		for i := range verts {
			verts[i] = r.U32()
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	s, err := pathjoin.RestoreStore(verts, offs)
	if err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrFrameCorrupt)
	}
	return s, nil
}

// appendState / readState carry store.State, the cross-process
// divergence detector.
func appendState(dst []byte, st store.State) []byte {
	dst = wirefmt.AppendU64(dst, st.Epoch)
	dst = wirefmt.AppendI64(dst, int64(st.NumVertices))
	dst = wirefmt.AppendI64(dst, int64(st.NumEdges))
	dst = wirefmt.AppendU32(dst, st.Checksum)
	return dst
}

func readState(r *wirefmt.Reader) store.State {
	return store.State{
		Epoch:       r.U64(),
		NumVertices: int(r.I64()),
		NumEdges:    int(r.I64()),
		Checksum:    r.U32(),
	}
}

// appendEdges / readEdges carry an update batch's edge list.
func appendEdges(dst []byte, edges []graph.Edge) []byte {
	dst = wirefmt.AppendU32(dst, uint32(len(edges)))
	for _, e := range edges {
		dst = wirefmt.AppendU32(dst, e.Src)
		dst = wirefmt.AppendU32(dst, e.Dst)
	}
	return dst
}

func readEdges(r *wirefmt.Reader) ([]graph.Edge, error) {
	n := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n > r.Remaining()/8 {
		return nil, fmt.Errorf("edge list claims %d edges in %d bytes: %w", n, r.Remaining(), ErrFrameCorrupt)
	}
	if n == 0 {
		return nil, nil
	}
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{Src: r.U32(), Dst: r.U32()}
	}
	return edges, r.Err()
}
