package shard

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/pathjoin"
	"repro/internal/query"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/testgraphs"
	"repro/internal/wirefmt"
)

// remoteShardCounts is the deployment sizes the wire differential suite
// proves result-identical to the in-process deployments. Smaller than
// shardCounts because every worker is a real TCP server.
var remoteShardCounts = []int{2, 3}

// startCluster launches n workers as real Servers on loopback listeners
// and connects a Coordinator to them, mirroring the cmd/hcpath
// -serve/-connect deployment inside one test process.
func startCluster(t testing.TB, g *graph.Graph, n int, cfg service.Config, opts ConnectOptions) *Coordinator {
	t.Helper()
	gr := g.Reverse()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		svc := service.New(g, gr, workerConfig(cfg, n, false))
		srv := NewServer(svc, i, n, ServerOptions{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen worker %d: %v", i, err)
		}
		addrs[i] = ln.Addr().String()
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
	}
	cfg.Shards = n
	coord, err := Connect(context.Background(), addrs, cfg, opts)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord
}

// TestRemoteDifferentialCorpus proves the wire deployment
// result-identical to both the single-process service and the
// in-process sharded coordinator over the full corpus.
func TestRemoteDifferentialCorpus(t *testing.T) {
	for _, tc := range corpus() {
		gr := tc.g.Reverse()
		single := service.New(tc.g, gr, testConfig())
		want := runAll(single, tc.qs)
		single.Close()
		for _, n := range remoteShardCounts {
			remote := startCluster(t, tc.g, n, testConfig(), ConnectOptions{})
			got := runAll(remote, tc.qs)
			diffOutcomes(t, fmt.Sprintf("remote/%s/shards=%d", tc.name, n), tc.qs, want, got)
			rs := remote.Routing()
			if rs.SingleShard+rs.CrossShard != int64(len(tc.qs)) {
				t.Errorf("remote/%s/shards=%d: routed %d single + %d cross, want %d total",
					tc.name, n, rs.SingleShard, rs.CrossShard, len(tc.qs))
			}
			ws := remote.Wire()
			if len(ws) != n {
				t.Errorf("remote/%s/shards=%d: Wire() reported %d workers", tc.name, n, len(ws))
			}
			for _, w := range ws {
				if w.RPCs == 0 {
					t.Errorf("remote/%s/shards=%d: worker %s saw no RPCs", tc.name, n, w.Addr)
				}
				if w.Flushes > w.RPCs {
					t.Errorf("remote/%s/shards=%d: worker %s flushed %d times for %d RPCs",
						tc.name, n, w.Addr, w.Flushes, w.RPCs)
				}
			}
		}
	}
}

// TestRemoteLiveUpdates drives a wire cluster and a single-process
// service through the same update stream, comparing results and epochs
// after every wave — the live-update differential over TCP.
func TestRemoteLiveUpdates(t *testing.T) {
	for _, n := range remoteShardCounts {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			g := testgraphs.Cycle(8)
			cfgSingle := testConfig()
			cfgSingle.SyncCompact = true
			cfgSingle.CompactAfter = 8
			single := service.New(g, g.Reverse(), cfgSingle)
			defer single.Close()

			cfg := testConfig()
			cfg.CompactAfter = 8
			coord := startCluster(t, g, n, cfg, ConnectOptions{})

			maxV := 8
			for wave := 0; wave < 6; wave++ {
				var adds, dels []graph.Edge
				// Deterministic stream: grow one vertex, rewire an edge,
				// drop one — enough to move epochs and trip compactions.
				adds = append(adds, graph.Edge{Src: graph.VertexID(wave % maxV), Dst: graph.VertexID(maxV)})
				maxV++
				adds = append(adds, graph.Edge{Src: graph.VertexID((wave * 3) % maxV), Dst: graph.VertexID((wave*5 + 1) % maxV)})
				dels = append(dels, graph.Edge{Src: graph.VertexID(wave % 8), Dst: graph.VertexID((wave + 1) % 8)})

				es, err := single.ApplyUpdates(adds, dels)
				if err != nil {
					t.Fatalf("wave %d: single ApplyUpdates: %v", wave, err)
				}
				ec, err := coord.ApplyUpdates(adds, dels)
				if err != nil {
					t.Fatalf("wave %d: remote ApplyUpdates: %v", wave, err)
				}
				if es != ec {
					t.Fatalf("wave %d: epochs diverged: single %d, remote %d", wave, es, ec)
				}
				cur := single.CurrentSnapshot().Graph()
				qs := allPairQueries(cur, 3, uint8(4+wave%3))
				diffOutcomes(t, fmt.Sprintf("remote-live/shards=%d/wave=%d", n, wave), qs,
					runAll(single, qs), runAll(coord, qs))
			}
			if got, want := coord.State(), single.State(); got != want {
				t.Errorf("final state mismatch: remote %+v, single %+v", got, want)
			}
		})
	}
}

// TestRemoteNoBatchDifferential proves the NoBatch client mode (every
// frame flushed individually) is behaviourally identical — it only
// exists to measure what coalescing buys.
func TestRemoteNoBatchDifferential(t *testing.T) {
	tc := corpus()[0]
	gr := tc.g.Reverse()
	single := service.New(tc.g, gr, testConfig())
	want := runAll(single, tc.qs)
	single.Close()
	remote := startCluster(t, tc.g, 2, testConfig(), ConnectOptions{NoBatch: true})
	got := runAll(remote, tc.qs)
	diffOutcomes(t, "remote-nobatch/paper/shards=2", tc.qs, want, got)
}

// TestRemoteStatsPlane checks the coordinator's merged stats and
// checkpoint plumbing cross the wire.
func TestRemoteStatsPlane(t *testing.T) {
	tc := corpus()[0]
	remote := startCluster(t, tc.g, 2, testConfig(), ConnectOptions{})
	got := runAll(remote, tc.qs)
	for i, o := range got {
		if o.err != nil {
			t.Fatalf("query %d: %v", i, o.err)
		}
	}
	tot := remote.Stats()
	if tot.Queries != int64(len(tc.qs)) {
		t.Errorf("Stats().Queries = %d, want %d", tot.Queries, len(tc.qs))
	}
	per := remote.ShardTotals()
	if len(per) != 2 {
		t.Fatalf("ShardTotals() returned %d entries", len(per))
	}
	if err := remote.Checkpoint(); err != nil {
		t.Errorf("Checkpoint over the wire: %v", err)
	}
	if remote.Epoch() != 0 {
		t.Errorf("Epoch() = %d, want 0 before any update", remote.Epoch())
	}
}

// TestConnectRejectsWrongShardIdentity wires the coordinator to workers
// in swapped order: the handshake must refuse rather than serve another
// shard's traffic.
func TestConnectRejectsWrongShardIdentity(t *testing.T) {
	g := testgraphs.Diamond()
	gr := g.Reverse()
	cfg := testConfig()
	var addrs [2]string
	for i := 0; i < 2; i++ {
		svc := service.New(g, gr, workerConfig(cfg, 2, false))
		srv := NewServer(svc, i, 2, ServerOptions{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		addrs[i] = ln.Addr().String()
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
	}
	cfg.Shards = 2
	swapped := []string{addrs[1], addrs[0]}
	coord, err := Connect(context.Background(), swapped, cfg, ConnectOptions{})
	if err == nil {
		coord.Close()
		t.Fatal("Connect accepted a cluster wired in the wrong shard order")
	}
	if !strings.Contains(err.Error(), "refused the handshake") {
		t.Errorf("swapped-order Connect error %q does not mention the refused handshake", err)
	}
}

// TestConnectDialBackoffGivesUp points Connect at a dead address with a
// tight budget: the dial loop must fail with ErrBackoffExhausted, not
// spin.
func TestConnectDialBackoffGivesUp(t *testing.T) {
	// Reserve a port, then close it so nothing listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	cfg := testConfig()
	cfg.Shards = 1
	_, err = Connect(context.Background(), []string{addr}, cfg, ConnectOptions{
		DialBackoff: Backoff{Base: time.Millisecond, Cap: 2 * time.Millisecond, Total: 20 * time.Millisecond},
	})
	if !errors.Is(err, ErrBackoffExhausted) {
		t.Fatalf("Connect to dead address: got %v, want ErrBackoffExhausted", err)
	}
}

// fakeWorker is a scripted worker process: it answers the handshake and
// the alignment check honestly, then runs hook for each further frame.
// It lets the failure-surface tests kill a "worker" at an exact point
// in the scatter-gather without racing a real service.
type fakeWorker struct {
	ln   net.Listener
	hook func(conn net.Conn, typ byte, id uint64, body []byte) bool // false = drop connection

	mu    sync.Mutex
	conns []net.Conn
}

func startFakeWorker(t *testing.T, hook func(conn net.Conn, typ byte, id uint64, body []byte) bool) *fakeWorker {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("fake worker listen: %v", err)
	}
	f := &fakeWorker{ln: ln, hook: hook}
	go f.acceptLoop()
	t.Cleanup(f.Close)
	return f
}

func (f *fakeWorker) addr() string { return f.ln.Addr().String() }

func (f *fakeWorker) Close() {
	f.ln.Close()
	f.mu.Lock()
	for _, c := range f.conns {
		c.Close()
	}
	f.conns = nil
	f.mu.Unlock()
}

func (f *fakeWorker) acceptLoop() {
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return
		}
		f.mu.Lock()
		f.conns = append(f.conns, conn)
		f.mu.Unlock()
		go f.serve(conn)
	}
}

func (f *fakeWorker) serve(conn net.Conn) {
	br := bufio.NewReader(conn)
	typ, id, _, err := readFrame(br)
	if err != nil || typ != mtHello {
		conn.Close()
		return
	}
	resp := wirefmt.AppendU64(nil, 0) // epoch
	resp = wirefmt.AppendU32(resp, 4) // vertex count
	resp = append(resp, fakeState()...)
	if _, err := conn.Write(appendFrame(nil, mtResp, id, resp)); err != nil {
		conn.Close()
		return
	}
	for {
		typ, id, body, err := readFrame(br)
		if err != nil {
			conn.Close()
			return
		}
		if !f.hook(conn, typ, id, body) {
			conn.Close()
			return
		}
	}
}

// fakeState is the one store.State blob every fake reports, so
// Connect's alignment check passes.
func fakeState() []byte {
	return appendState(nil, store.State{Epoch: 0, NumVertices: 4, NumEdges: 4, Checksum: 0xfeed})
}

// answer writes one success response frame.
func answer(conn net.Conn, id uint64, body []byte) bool {
	_, err := conn.Write(appendFrame(nil, mtResp, id, body))
	return err == nil
}

// fakeDistBody encodes the AcquireDist response the fakes serve: zero
// cache traffic plus a small valid distance map over 4 vertices where
// every other vertex is 1 hop from the root — close enough that the
// coordinator always proceeds to the HalfPaths phase.
func fakeDistBody(root graph.VertexID) []byte {
	body := wirefmt.AppendI64(nil, 0) // hits
	body = wirefmt.AppendI64(body, 0) // misses
	body = wirefmt.AppendU32(body, root)
	body = wirefmt.AppendU8(body, 4)  // cap
	body = wirefmt.AppendU32(body, 4) // dense length
	body = wirefmt.AppendU32(body, 4) // all 4 vertices visited
	for v := uint32(0); v < 4; v++ {
		body = wirefmt.AppendU32(body, v)
	}
	for v := graph.VertexID(0); v < 4; v++ {
		if v == root {
			body = wirefmt.AppendU8(body, 0)
		} else {
			body = wirefmt.AppendU8(body, 1)
		}
	}
	return body
}

// onState answers the stats-plane frames every fake must serve (State
// for Connect's alignment check) and defers the rest to next.
func onState(next func(conn net.Conn, typ byte, id uint64, body []byte) bool) func(conn net.Conn, typ byte, id uint64, body []byte) bool {
	return func(conn net.Conn, typ byte, id uint64, body []byte) bool {
		if typ == mtState {
			return answer(conn, id, fakeState())
		}
		return next(conn, typ, id, body)
	}
}

// connectFakes dials a 2-fake cluster and returns the coordinator plus
// a query whose endpoints land on different shards.
func connectFakes(t *testing.T, hook0, hook1 func(conn net.Conn, typ byte, id uint64, body []byte) bool) (*Coordinator, query.Query) {
	t.Helper()
	f0 := startFakeWorker(t, onState(hook0))
	f1 := startFakeWorker(t, onState(hook1))
	cfg := testConfig()
	cfg.Shards = 2
	coord, err := Connect(context.Background(), []string{f0.addr(), f1.addr()}, cfg, ConnectOptions{})
	if err != nil {
		t.Fatalf("Connect to fakes: %v", err)
	}
	t.Cleanup(func() { coord.Close() })
	for s := graph.VertexID(0); s < 4; s++ {
		for u := graph.VertexID(0); u < 4; u++ {
			if s != u && ShardOf(s, 2) != ShardOf(u, 2) {
				return coord, query.Query{S: s, T: u, K: 4}
			}
		}
	}
	t.Fatal("no cross-shard vertex pair among 4 vertices")
	return nil, query.Query{}
}

// TestWorkerKilledMidScatterGather kills a worker between the
// AcquireDist and HalfPaths phases: the in-flight cross-shard query
// must fail promptly with a typed ErrWorkerDown — never hang.
func TestWorkerKilledMidScatterGather(t *testing.T) {
	healthy := func(conn net.Conn, typ byte, id uint64, body []byte) bool {
		switch typ {
		case mtAcquireDist:
			r := wirefmt.NewReader(body)
			r.U64() // epoch
			root := r.U32()
			return answer(conn, id, fakeDistBody(root))
		case mtHalfPaths:
			resp := wirefmt.AppendBool(nil, false)
			resp = appendStore(resp, pathjoin.NewStore(0, 0))
			return answer(conn, id, resp)
		}
		return false
	}
	killed := func(conn net.Conn, typ byte, id uint64, body []byte) bool {
		switch typ {
		case mtAcquireDist:
			r := wirefmt.NewReader(body)
			r.U64()
			root := r.U32()
			return answer(conn, id, fakeDistBody(root))
		case mtHalfPaths:
			return false // die mid-scatter: drop the connection
		}
		return false
	}
	coord, q := connectFakes(t, healthy, killed)

	done := make(chan error, 1)
	go func() {
		_, err := coord.Submit(context.Background(), "", q, false)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrWorkerDown) {
			t.Fatalf("query against killed worker: got %v, want ErrWorkerDown", err)
		}
		var wd *WorkerDownError
		if !errors.As(err, &wd) {
			t.Fatalf("error %v carries no *WorkerDownError", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("query hung after worker death")
	}

	// The connection is down for good: later calls fail immediately too.
	if _, err := coord.Submit(context.Background(), "", q, false); !errors.Is(err, ErrWorkerDown) {
		t.Fatalf("follow-up query: got %v, want ErrWorkerDown", err)
	}
}

// TestEpochMismatchFanOut makes a worker answer the update fan-out with
// a diverged epoch: ApplyUpdates must fail loudly, naming the shard.
func TestEpochMismatchFanOut(t *testing.T) {
	updatesAt := func(epoch uint64) func(conn net.Conn, typ byte, id uint64, body []byte) bool {
		return func(conn net.Conn, typ byte, id uint64, body []byte) bool {
			if typ == mtApplyUpdates {
				resp := wirefmt.AppendU64(nil, epoch)
				resp = wirefmt.AppendU32(resp, 4)
				return answer(conn, id, resp)
			}
			return false
		}
	}
	coord, _ := connectFakes(t, updatesAt(1), updatesAt(7))
	_, err := coord.ApplyUpdates([]graph.Edge{{Src: 0, Dst: 1}}, nil)
	if err == nil {
		t.Fatal("ApplyUpdates accepted a diverged fan-out")
	}
	if !strings.Contains(err.Error(), "epoch diverged") {
		t.Fatalf("fan-out error %q does not mention the divergence", err)
	}
}

// TestRetryAfterHintCrossesWire sheds from a fake worker with
// ErrOverloaded: the client must surface an error that both satisfies
// errors.Is(…, service.ErrOverloaded) and carries the server's
// retry-after hint for the caller's Backoff.
func TestRetryAfterHintCrossesWire(t *testing.T) {
	const hint = 42 * time.Millisecond
	shedding := func(conn net.Conn, typ byte, id uint64, body []byte) bool {
		if typ == mtSubmit {
			_, err := conn.Write(appendFrame(nil, mtErr, id,
				appendWireError(nil, fmt.Errorf("worker shed: %w", service.ErrOverloaded), hint)))
			return err == nil
		}
		return false
	}
	coord, _ := connectFakes(t, shedding, shedding)
	// Pick a single-shard query so Submit forwards straight to a worker.
	var q query.Query
	for s := graph.VertexID(0); s < 4; s++ {
		for u := graph.VertexID(0); u < 4; u++ {
			if s != u && ShardOf(s, 2) == ShardOf(u, 2) {
				q = query.Query{S: s, T: u, K: 2}
			}
		}
	}
	_, err := coord.Submit(context.Background(), "", q, false)
	if !errors.Is(err, service.ErrOverloaded) {
		t.Fatalf("shed over the wire: got %v, want errors.Is ErrOverloaded", err)
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("shed error %v carries no *OverloadedError", err)
	}
	if oe.RetryAfter != hint {
		t.Errorf("RetryAfter = %v, want %v", oe.RetryAfter, hint)
	}
}
