package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/service"
	"repro/internal/testgraphs"
)

// shardCounts is the deployment sizes the differential suite proves
// result-identical to the single-process service.
var shardCounts = []int{2, 3, 8}

// submitter is the surface the differential tests drive — satisfied by
// both *service.Service and *Coordinator, which is the point.
type submitter interface {
	Submit(ctx context.Context, caller string, q query.Query, collect bool) (*service.Reply, error)
}

// outcome is one query's canonicalised answer.
type outcome struct {
	count     int64
	paths     []string
	truncated bool
	qerr      error
	err       error
}

func renderPaths(paths [][]graph.VertexID) []string {
	out := make([]string, len(paths))
	for i, p := range paths {
		var b strings.Builder
		for j, v := range p {
			if j > 0 {
				b.WriteByte('-')
			}
			fmt.Fprintf(&b, "%d", v)
		}
		out[i] = b.String()
	}
	sort.Strings(out)
	return out
}

// runAll submits every query concurrently (so they micro-batch on the
// single-process side and mix single-/cross-shard on the sharded side)
// and returns the canonicalised per-query outcomes.
func runAll(sub submitter, qs []query.Query) []outcome {
	out := make([]outcome, len(qs))
	var wg sync.WaitGroup
	for i, q := range qs {
		wg.Add(1)
		go func(i int, q query.Query) {
			defer wg.Done()
			r, err := sub.Submit(context.Background(), "", q, true)
			if err != nil {
				out[i].err = err
				return
			}
			out[i].count = r.Count
			out[i].paths = renderPaths(r.Paths)
			out[i].truncated = r.Truncated
			out[i].qerr = r.Err
		}(i, q)
	}
	wg.Wait()
	return out
}

func diffOutcomes(t *testing.T, label string, qs []query.Query, want, got []outcome) {
	t.Helper()
	for i := range qs {
		w, g := want[i], got[i]
		if (w.err == nil) != (g.err == nil) {
			t.Errorf("%s: query %d (%d→%d k=%d): submit err mismatch: single %v, sharded %v",
				label, i, qs[i].S, qs[i].T, qs[i].K, w.err, g.err)
			continue
		}
		if w.count != g.count {
			t.Errorf("%s: query %d (%d→%d k=%d): count %d (single) vs %d (sharded)",
				label, i, qs[i].S, qs[i].T, qs[i].K, w.count, g.count)
		}
		if len(w.paths) != len(g.paths) {
			t.Errorf("%s: query %d: %d paths vs %d", label, i, len(w.paths), len(g.paths))
			continue
		}
		for j := range w.paths {
			if w.paths[j] != g.paths[j] {
				t.Errorf("%s: query %d path %d: %s vs %s", label, i, j, w.paths[j], g.paths[j])
			}
		}
		if w.truncated != g.truncated {
			t.Errorf("%s: query %d: truncated %v vs %v", label, i, w.truncated, g.truncated)
		}
	}
}

// allPairQueries generates every s≠t pair of g at the given hop caps.
func allPairQueries(g *graph.Graph, ks ...uint8) []query.Query {
	n := g.NumVertices()
	var qs []query.Query
	for _, k := range ks {
		for s := 0; s < n; s++ {
			for t := 0; t < n; t++ {
				if s == t {
					continue
				}
				qs = append(qs, query.Query{S: graph.VertexID(s), T: graph.VertexID(t), K: k})
			}
		}
	}
	return qs
}

type corpusCase struct {
	name string
	g    *graph.Graph
	qs   []query.Query
}

func corpus() []corpusCase {
	paper := testgraphs.Paper()
	var paperQs []query.Query
	for _, q := range testgraphs.PaperQueries() {
		paperQs = append(paperQs, query.Query{S: graph.VertexID(q[0]), T: graph.VertexID(q[1]), K: uint8(q[2])})
	}
	paperQs = append(paperQs, allPairQueries(paper, 2, 5)...)
	return []corpusCase{
		{"paper", paper, paperQs},
		{"diamond", testgraphs.Diamond(), allPairQueries(testgraphs.Diamond(), 1, 2, 3)},
		{"cycle8", testgraphs.Cycle(8), allPairQueries(testgraphs.Cycle(8), 3, 7)},
		{"line10", testgraphs.Line(10), allPairQueries(testgraphs.Line(10), 4, 9)},
		{"completeDAG7", testgraphs.CompleteDAG(7), allPairQueries(testgraphs.CompleteDAG(7), 2, 6)},
	}
}

func testConfig() service.Config {
	return service.Config{MaxBatch: 32}
}

// TestDifferentialCorpus proves sharded enumeration result-identical to
// the single-process service over the testgraphs corpus for every
// deployment size in shardCounts.
func TestDifferentialCorpus(t *testing.T) {
	for _, tc := range corpus() {
		gr := tc.g.Reverse()
		single := service.New(tc.g, gr, testConfig())
		want := runAll(single, tc.qs)
		single.Close()
		for _, n := range shardCounts {
			cfg := testConfig()
			cfg.Shards = n
			coord := New(tc.g, gr, cfg)
			got := runAll(coord, tc.qs)
			diffOutcomes(t, fmt.Sprintf("%s/shards=%d", tc.name, n), tc.qs, want, got)
			rs := coord.Routing()
			if rs.SingleShard+rs.CrossShard != int64(len(tc.qs)) {
				t.Errorf("%s/shards=%d: routed %d single + %d cross, want %d total",
					tc.name, n, rs.SingleShard, rs.CrossShard, len(tc.qs))
			}
			coord.Close()
		}
	}
}

// randomUpdateWaves drives both deployments through the same random
// update stream, comparing results after every wave.
func randomUpdateWaves(t *testing.T, n int, waves int, seed int64) {
	t.Helper()
	g := testgraphs.Cycle(8)
	gr := g.Reverse()
	cfgSingle := testConfig()
	// Align the single service's epoch numbering with the workers'
	// (synchronous compaction) so the Epoch comparison below is exact.
	cfgSingle.SyncCompact = true
	cfgSingle.CompactAfter = 8
	single := service.New(g, gr, cfgSingle)
	defer single.Close()

	cfg := testConfig()
	cfg.Shards = n
	cfg.CompactAfter = 8
	coord := New(g, gr, cfg)
	defer coord.Close()

	rng := rand.New(rand.NewSource(seed))
	maxV := 8
	for wave := 0; wave < waves; wave++ {
		var adds, dels []graph.Edge
		for i := 0; i < 4; i++ {
			if rng.Intn(3) == 0 && maxV < 14 {
				// Grow the vertex space.
				adds = append(adds, graph.Edge{Src: graph.VertexID(rng.Intn(maxV)), Dst: graph.VertexID(maxV)})
				maxV++
			} else {
				e := graph.Edge{Src: graph.VertexID(rng.Intn(maxV)), Dst: graph.VertexID(rng.Intn(maxV))}
				if rng.Intn(2) == 0 {
					adds = append(adds, e)
				} else {
					dels = append(dels, e)
				}
			}
		}
		es, err := single.ApplyUpdates(adds, dels)
		if err != nil {
			t.Fatalf("wave %d: single ApplyUpdates: %v", wave, err)
		}
		ec, err := coord.ApplyUpdates(adds, dels)
		if err != nil {
			t.Fatalf("wave %d: sharded ApplyUpdates: %v", wave, err)
		}
		if es != ec {
			t.Fatalf("wave %d: epochs diverged: single %d, sharded %d", wave, es, ec)
		}
		cur := single.CurrentSnapshot().Graph()
		qs := allPairQueries(cur, 3, uint8(4+wave%3))
		diffOutcomes(t, fmt.Sprintf("shards=%d/wave=%d", n, wave), qs,
			runAll(single, qs), runAll(coord, qs))
	}
	if got, want := coord.State(), single.State(); got != want {
		t.Errorf("final state mismatch: sharded %+v, single %+v", got, want)
	}
}

// TestDifferentialLiveUpdates proves the equivalence holds across live
// update waves — including compactions and vertex growth — for every
// deployment size.
func TestDifferentialLiveUpdates(t *testing.T) {
	for _, n := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			randomUpdateWaves(t, n, 6, int64(1000+n))
		})
	}
}

// TestConcurrentUpdatesAndQueries hammers a sharded deployment with
// simultaneous queries and update fan-outs; run under -race it is the
// issue's concurrency gate. Results are not compared (each query may
// land on either side of an update) — the assertions are crash-freedom,
// valid replies, and epoch alignment throughout.
func TestConcurrentUpdatesAndQueries(t *testing.T) {
	g := testgraphs.Paper()
	cfg := testConfig()
	cfg.Shards = 3
	cfg.CompactAfter = 4
	coord := New(g, g.Reverse(), cfg)
	defer coord.Close()

	const queriers, rounds = 8, 40
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < queriers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := query.Query{
					S: graph.VertexID(rng.Intn(16)),
					T: graph.VertexID(rng.Intn(16)),
					K: uint8(1 + rng.Intn(5)),
				}
				if q.S == q.T {
					continue
				}
				r, err := coord.Submit(context.Background(), fmt.Sprintf("c%d", c), q, true)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if int64(len(r.Paths)) != r.Count {
					t.Errorf("reply invariant broken: %d paths, count %d", len(r.Paths), r.Count)
					return
				}
			}
		}(c)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < rounds; i++ {
		e := graph.Edge{Src: graph.VertexID(rng.Intn(16)), Dst: graph.VertexID(rng.Intn(16))}
		var err error
		if i%2 == 0 {
			_, err = coord.ApplyUpdates([]graph.Edge{e}, nil)
		} else {
			_, err = coord.ApplyUpdates(nil, []graph.Edge{e})
		}
		if err != nil {
			t.Fatalf("round %d: ApplyUpdates: %v", i, err)
		}
		for s, tot := range coord.ShardTotals() {
			if tot.Epoch != coord.Epoch() {
				t.Fatalf("round %d: shard %d at epoch %d, deployment at %d", i, s, tot.Epoch, coord.Epoch())
			}
		}
	}
	close(stop)
	wg.Wait()
}

// findPair returns a vertex pair of g classified as wanted (same-shard
// or cross-shard) under n shards.
func findPair(t *testing.T, g *graph.Graph, n int, cross bool) (graph.VertexID, graph.VertexID) {
	t.Helper()
	nv := g.NumVertices()
	for s := 0; s < nv; s++ {
		for v := 0; v < nv; v++ {
			if s == v {
				continue
			}
			if (ShardOf(graph.VertexID(s), n) != ShardOf(graph.VertexID(v), n)) == cross {
				return graph.VertexID(s), graph.VertexID(v)
			}
		}
	}
	t.Fatalf("no pair with cross=%v among %d vertices on %d shards", cross, nv, n)
	return 0, 0
}

func TestShardOfPartition(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		hit := make([]int, n)
		for v := 0; v < 1024; v++ {
			s := ShardOf(graph.VertexID(v), n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", v, n, s)
			}
			if s != ShardOf(graph.VertexID(v), n) {
				t.Fatalf("ShardOf(%d, %d) not deterministic", v, n)
			}
			hit[s]++
		}
		for s, c := range hit {
			if c == 0 {
				t.Errorf("n=%d: shard %d owns none of the first 1024 vertices", n, s)
			}
		}
	}
	if ShardOf(7, 0) != 0 || ShardOf(7, 1) != 0 || ShardOf(7, -3) != 0 {
		t.Error("ShardOf must map everything to 0 for n <= 1")
	}
}

// TestSelfLoopQueryParity: s==t always lands on one shard (the hash is
// a function of the ID), so the worker's validation answers it — with
// exactly the single-process error.
func TestSelfLoopQueryParity(t *testing.T) {
	g := testgraphs.Diamond()
	gr := g.Reverse()
	single := service.New(g, gr, testConfig())
	defer single.Close()
	cfg := testConfig()
	cfg.Shards = 2
	coord := New(g, gr, cfg)
	defer coord.Close()

	q := query.Query{S: 1, T: 1, K: 3}
	_, wantErr := single.Submit(context.Background(), "", q, true)
	_, gotErr := coord.Submit(context.Background(), "", q, true)
	if wantErr == nil || gotErr == nil {
		t.Fatalf("self-loop query must be rejected: single %v, sharded %v", wantErr, gotErr)
	}
	if wantErr.Error() != gotErr.Error() {
		t.Errorf("error text diverged: single %q, sharded %q", wantErr, gotErr)
	}
}

// TestCollidingEndpointsStaySingleShard: two distinct endpoints hashing
// to the same worker under a 2-shard deployment must skip the
// scatter-gather path entirely.
func TestCollidingEndpointsStaySingleShard(t *testing.T) {
	g := testgraphs.CompleteDAG(7)
	cfg := testConfig()
	cfg.Shards = 2
	coord := New(g, g.Reverse(), cfg)
	defer coord.Close()

	s, v := findPair(t, g, 2, false)
	if _, err := coord.Submit(context.Background(), "", query.Query{S: s, T: v, K: 3}, true); err != nil {
		t.Fatalf("submit: %v", err)
	}
	rs := coord.Routing()
	if rs.SingleShard != 1 || rs.CrossShard != 0 {
		t.Errorf("colliding endpoints routed as %+v, want 1 single-shard / 0 cross-shard", rs)
	}
}

// TestVertexGrowthLandsOnCorrectShard grows the vertex space through
// ApplyUpdates and checks the new vertex is owned — and answered — by
// the shard the hash assigns it.
func TestVertexGrowthLandsOnCorrectShard(t *testing.T) {
	g := testgraphs.Line(4)
	gr := g.Reverse()
	cfgSingle := testConfig()
	cfgSingle.SyncCompact = true
	single := service.New(g, gr, cfgSingle)
	defer single.Close()
	cfg := testConfig()
	cfg.Shards = 2
	coord := New(g, gr, cfg)
	defer coord.Close()

	// Vertex 9 does not exist yet; its owner is already defined.
	grown := graph.VertexID(9)
	owner := coord.ShardOf(grown)
	adds := []graph.Edge{{Src: 3, Dst: grown}, {Src: grown, Dst: 0}}
	if _, err := single.ApplyUpdates(adds, nil); err != nil {
		t.Fatalf("single ApplyUpdates: %v", err)
	}
	if _, err := coord.ApplyUpdates(adds, nil); err != nil {
		t.Fatalf("sharded ApplyUpdates: %v", err)
	}
	per := coord.ShardTotals()
	for s, tot := range per {
		if tot.Epoch != per[0].Epoch {
			t.Fatalf("shard %d epoch %d diverged from %d after growth", s, tot.Epoch, per[0].Epoch)
		}
	}

	qs := []query.Query{
		{S: 0, T: grown, K: 5}, // 0→1→2→3→9
		{S: grown, T: 2, K: 3}, // 9→0→1→2
	}
	diffOutcomes(t, "growth", qs, runAll(single, qs), runAll(coord, qs))

	before := coord.Routing()
	q := query.Query{S: grown, T: 2, K: 3}
	if _, err := coord.Submit(context.Background(), "", q, true); err != nil {
		t.Fatalf("submit grown query: %v", err)
	}
	after := coord.Routing()
	wantCross := owner != coord.ShardOf(2)
	if gotCross := after.CrossShard-before.CrossShard == 1; gotCross != wantCross {
		t.Errorf("grown-vertex query classified cross=%v, hash says cross=%v", gotCross, wantCross)
	}
}

// TestK1CrossShard: a 1-hop path cannot cross a boundary vertex — it
// has no interior — so a cross-shard K=1 query reduces to "does the
// edge exist", which the scatter-gather protocol must still answer.
func TestK1CrossShard(t *testing.T) {
	// Line(10): edge i→i+1 only.
	g := testgraphs.Line(10)
	cfg := testConfig()
	cfg.Shards = 2
	coord := New(g, g.Reverse(), cfg)
	defer coord.Close()

	var s graph.VertexID = 255
	for v := 0; v+1 < 10; v++ {
		if ShardOf(graph.VertexID(v), 2) != ShardOf(graph.VertexID(v+1), 2) {
			s = graph.VertexID(v)
			break
		}
	}
	if s == 255 {
		t.Skip("no adjacent cross-shard pair in Line(10) under 2 shards")
	}
	r, err := coord.Submit(context.Background(), "", query.Query{S: s, T: s + 1, K: 1}, true)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if r.Count != 1 || len(r.Paths) != 1 {
		t.Fatalf("K=1 over existing edge %d→%d: got %d paths, want exactly 1", s, s+1, r.Count)
	}
	if len(r.Paths[0]) != 2 || r.Paths[0][0] != s || r.Paths[0][1] != s+1 {
		t.Errorf("K=1 path = %v, want [%d %d]", r.Paths[0], s, s+1)
	}
	// The reverse direction has no edge: zero paths, not an error.
	r, err = coord.Submit(context.Background(), "", query.Query{S: s + 1, T: s, K: 1}, true)
	if err != nil {
		t.Fatalf("submit reverse: %v", err)
	}
	if r.Count != 0 {
		t.Errorf("K=1 over absent edge: got %d paths, want 0", r.Count)
	}
}

// TestCrossShardLimitTruncation: the per-query Limit applies to
// cross-shard joins with the same semantics as the worker pipeline.
func TestCrossShardLimitTruncation(t *testing.T) {
	g := testgraphs.CompleteDAG(7)
	cfg := testConfig()
	cfg.Shards = 2
	cfg.Limit = 2
	coord := New(g, g.Reverse(), cfg)
	defer coord.Close()

	s, v := findPair(t, g, 2, true)
	if s > v {
		s, v = v, s // DAG edges go low→high; many paths need s < v
	}
	r, err := coord.Submit(context.Background(), "", query.Query{S: s, T: v, K: 6}, true)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if r.Count > 2 {
		t.Errorf("limit 2 delivered %d paths", r.Count)
	}
	if r.Count == 2 {
		if !r.Truncated || !errors.Is(r.Err, query.ErrLimitReached) {
			t.Errorf("at limit: truncated=%v err=%v, want truncated with ErrLimitReached", r.Truncated, r.Err)
		}
		if rs := coord.Routing(); rs.CrossShard != 1 {
			t.Errorf("query not classified cross-shard: %+v", rs)
		}
	}
}

// TestCrossShardShed: with every MaxCrossShard slot held, a cross-shard
// query is shed with service.ErrOverloaded before any shard works on it.
func TestCrossShardShed(t *testing.T) {
	g := testgraphs.CompleteDAG(7)
	cfg := testConfig()
	cfg.Shards = 2
	cfg.MaxCrossShard = 1
	coord := New(g, g.Reverse(), cfg)
	defer coord.Close()

	coord.crossSlots <- struct{}{} // occupy the only slot
	s, v := findPair(t, g, 2, true)
	_, err := coord.Submit(context.Background(), "", query.Query{S: s, T: v, K: 3}, true)
	if !errors.Is(err, service.ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if rs := coord.Routing(); rs.CrossShed != 1 {
		t.Errorf("CrossShed = %d, want 1", rs.CrossShed)
	}
	<-coord.crossSlots
	if _, err := coord.Submit(context.Background(), "", query.Query{S: s, T: v, K: 3}, true); err != nil {
		t.Fatalf("after slot freed: %v", err)
	}
}

// TestClosedCoordinator: Close is idempotent and everything after it
// reports service.ErrClosed.
func TestClosedCoordinator(t *testing.T) {
	g := testgraphs.Diamond()
	cfg := testConfig()
	cfg.Shards = 3
	coord := New(g, g.Reverse(), cfg)
	if err := coord.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := coord.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	s, v := findPair(t, g, 3, true)
	if _, err := coord.Submit(context.Background(), "", query.Query{S: s, T: v, K: 2}, true); !errors.Is(err, service.ErrClosed) {
		t.Errorf("cross-shard submit after close: %v, want ErrClosed", err)
	}
	s, v = findPair(t, g, 3, false)
	if _, err := coord.Submit(context.Background(), "", query.Query{S: s, T: v, K: 2}, true); !errors.Is(err, service.ErrClosed) {
		t.Errorf("single-shard submit after close: %v, want ErrClosed", err)
	}
	if _, err := coord.ApplyUpdates([]graph.Edge{{Src: 0, Dst: 2}}, nil); !errors.Is(err, service.ErrClosed) {
		t.Errorf("ApplyUpdates after close: %v, want ErrClosed", err)
	}
}

// TestStatsComposition: the merged deployment Totals counts every query
// exactly once and does not multiply the replicated update stream.
func TestStatsComposition(t *testing.T) {
	g := testgraphs.Paper()
	cfg := testConfig()
	cfg.Shards = 3
	coord := New(g, g.Reverse(), cfg)
	defer coord.Close()

	qs := allPairQueries(g, 3)
	runAll(coord, qs)
	if _, err := coord.ApplyUpdates([]graph.Edge{{Src: 0, Dst: 6}}, nil); err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}

	tot := coord.Stats()
	if tot.Queries != int64(len(qs)) {
		t.Errorf("merged Queries = %d, want %d", tot.Queries, len(qs))
	}
	if tot.UpdatesApplied != 1 {
		t.Errorf("merged UpdatesApplied = %d, want 1 (logical stream counted once)", tot.UpdatesApplied)
	}
	rs := coord.Routing()
	var perQueries int64
	for _, st := range coord.ShardTotals() {
		perQueries += st.Queries
	}
	if perQueries != rs.SingleShard {
		t.Errorf("workers carried %d queries, router forwarded %d", perQueries, rs.SingleShard)
	}
	if rs.SingleShard+rs.CrossShard != tot.Queries {
		t.Errorf("routing %d+%d does not account for %d merged queries",
			rs.SingleShard, rs.CrossShard, tot.Queries)
	}
}
