package shard

import (
	"context"
	"fmt"
	"math/rand/v2"
	"time"
)

// Backoff is the retry policy shared by everything in the deployment
// that backs off from ErrOverloaded: replay clients (cmd/hcpath), the
// wire client's connect-time dial loop, and any caller honouring a
// server's retry-after hint. It is exponential with a per-attempt
// ceiling, equal-jittered so synchronized clients desynchronize, and —
// unlike the unbounded loop it replaced — bounded in total: once the
// slept budget is spent the Sleeper refuses loudly instead of retrying
// forever against a service that is not recovering.
type Backoff struct {
	// Base is the first attempt's nominal delay; zero means 1ms.
	Base time.Duration
	// Cap is the per-attempt ceiling the exponential stops at; zero
	// means 64ms.
	Cap time.Duration
	// Total bounds the sum of slept delays; once exceeded Sleep returns
	// ErrBackoffExhausted. Zero means 2s; negative means unbounded
	// (the caller owns termination through its context).
	Total time.Duration
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = time.Millisecond
	}
	if b.Cap <= 0 {
		b.Cap = 64 * time.Millisecond
	}
	if b.Total == 0 {
		b.Total = 2 * time.Second
	}
	return b
}

// ErrBackoffExhausted marks a retry loop that gave up: the policy's
// Total sleep budget was spent and the operation still sheds.
var ErrBackoffExhausted = fmt.Errorf("shard: backoff budget exhausted")

// Start returns a fresh Sleeper applying the policy. Sleepers are not
// safe for concurrent use; start one per retry loop.
func (b Backoff) Start() *Sleeper { return &Sleeper{pol: b.withDefaults()} }

// Sleeper tracks one retry loop's position in its Backoff schedule.
type Sleeper struct {
	pol      Backoff
	attempts int
	slept    time.Duration
}

// Attempts returns the number of completed sleeps.
func (s *Sleeper) Attempts() int { return s.attempts }

// Slept returns the total time slept so far.
func (s *Sleeper) Slept() time.Duration { return s.slept }

// Sleep blocks for the next jittered delay. It returns nil after
// sleeping, ctx.Err() if the context fires first, or an error wrapping
// ErrBackoffExhausted — with the attempt count and budget in the
// message — when the Total budget cannot cover the next delay. A
// positive hint (a server's retry-after) replaces the scheduled delay
// for this attempt without advancing the exponential.
func (s *Sleeper) Sleep(ctx context.Context, hint time.Duration) error {
	d := s.pol.Base << uint(s.attempts)
	if d > s.pol.Cap || d <= 0 { // <= 0: shift overflow
		d = s.pol.Cap
	}
	if hint > 0 {
		d = hint
		if d > s.pol.Cap {
			d = s.pol.Cap
		}
	}
	// Equal jitter: half the delay is deterministic, half uniform, so
	// clients shedding together do not retry together.
	d = d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
	if s.pol.Total >= 0 && s.slept+d > s.pol.Total {
		return fmt.Errorf("%w after %d attempts (%v slept of %v budget)",
			ErrBackoffExhausted, s.attempts, s.slept.Round(time.Millisecond), s.pol.Total)
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
	}
	s.attempts++
	s.slept += d
	return nil
}
