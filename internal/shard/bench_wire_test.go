package shard

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/testgraphs"
)

// BenchmarkWireThroughput measures the wire transport under the two
// client flush policies. The RPCs pair drives the mtEpoch RPC — the
// smallest frame in the vocabulary, so the socket round-trip is the
// whole cost — from 64 concurrent goroutines over one shared worker
// connection: Batched is the production configuration (every frame
// queued while a flush syscall is in progress rides the next one, so
// concurrent requests share round-trips), NoBatch flushes every frame
// individually. The rpcs/flush metric is the measured coalescing
// factor — 1.0 by construction on the NoBatch side, above it on the
// Batched side whenever the benchmark machine can actually race
// producers against the flush (on a single-core runner the scheduler
// serializes them and the factor sits near 1). The Queries pair runs
// the same comparison end to end — concurrent count-mode queries
// through the full coordinator — where enumeration and micro-batching
// dilute the transport's share. Only the RPC pair's allocs/op is
// gated in bench_baseline.json: a ~6µs loopback round-trip is
// syscall-bound, and its ns/op swings ±30% run to run on shared
// runners while the allocation count stays exact.
func BenchmarkWireThroughput(b *testing.B) {
	const clients = 64

	rpcs := func(b *testing.B, noBatch bool) {
		g := testgraphs.Diamond()
		coord := startCluster(b, g, 2, testConfig(), ConnectOptions{NoBatch: noBatch})
		w := coord.workers[0].(*remoteWorker)
		b.ResetTimer()
		var wg sync.WaitGroup
		var errOnce sync.Once
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for j := c; j < b.N; j += clients {
					if _, err := w.call(context.Background(), mtEpoch, nil); err != nil {
						errOnce.Do(func() { b.Error(err) })
						return
					}
				}
			}(c)
		}
		wg.Wait()
		b.ReportMetric(float64(w.rpcs.Load())/float64(max(w.flushes.Load(), 1)), "rpcs/flush")
	}

	queries := func(b *testing.B, noBatch bool) {
		g := testgraphs.Cycle(16)
		qs := allPairQueries(g, 4, 6)
		cfg := testConfig()
		cfg.MaxBatch = clients
		cfg.MaxWait = 200 * time.Microsecond
		coord := startCluster(b, g, 2, cfg, ConnectOptions{NoBatch: noBatch})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for j := c; j < len(qs); j += clients {
						if _, err := coord.Submit(context.Background(), "", qs[j], false); err != nil {
							b.Error(err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
		}
		b.ReportMetric(float64(b.N)*float64(len(qs))/b.Elapsed().Seconds(), "queries/s")
	}

	b.Run("RPCsBatched", func(b *testing.B) { rpcs(b, false) })
	b.Run("RPCsNoBatch", func(b *testing.B) { rpcs(b, true) })
	b.Run("QueriesBatched", func(b *testing.B) { queries(b, false) })
	b.Run("QueriesNoBatch", func(b *testing.B) { queries(b, true) })
}
