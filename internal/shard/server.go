package shard

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/wirefmt"
)

// Server speaks the worker side of the wire protocol: it owns one
// shard's service.Service and answers the coordinator RPCs — Submit,
// the AcquireDist/HalfPaths scatter legs, the update fan-out, and the
// stats plane — over any number of coordinator connections. One
// process runs one Server (cmd/hcpath -serve); the pairing Connect
// builds a Coordinator over N of them.
//
// Every request frame is handled in its own goroutine, because Submit
// deliberately blocks in the micro-batching pipeline while cache-hit
// AcquireDists answer in microseconds; responses carry the request id
// back, so they may interleave out of order on the shared connection.
// Responses queue to a per-connection writer that coalesces everything
// queued into one flush — the server half of the batching that turns N
// concurrent scatter-gathers into one round-trip per level.
type Server struct {
	w          localWorker
	shardIdx   int
	shards     int
	retryAfter time.Duration

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ServerOptions tunes a Server.
type ServerOptions struct {
	// RetryAfter is the backpressure hint attached to ErrOverloaded
	// responses: how long the server suggests a shedding client wait
	// before retrying. Zero means 5ms.
	RetryAfter time.Duration
}

// NewServer wraps svc as shard shardIdx of shards. The service must
// run with the worker invariants (SyncCompact on, not itself sharded)
// — use hcpath.NewShardServer or workerConfig to build it.
func NewServer(svc *service.Service, shardIdx, shards int, opts ServerOptions) *Server {
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = 5 * time.Millisecond
	}
	return &Server{
		w:          localWorker{svc: svc},
		shardIdx:   shardIdx,
		shards:     shards,
		retryAfter: opts.RetryAfter,
		conns:      make(map[net.Conn]struct{}),
	}
}

// Serve accepts coordinator connections on ln until Close. It returns
// nil after Close, or the listener's error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return service.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Close stops accepting, drops every connection, and closes the
// underlying service (flushing its durable state). Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return s.w.Close()
}

// Totals returns the worker service's lifetime counters — the local
// view behind the coordinator's merged Stats.
func (s *Server) Totals() service.Totals { return s.w.Stats() }

// State identifies the worker's current graph snapshot.
func (s *Server) State() store.State { return s.w.State() }

// Epoch returns the worker's current epoch.
func (s *Server) Epoch() uint64 { return s.w.Epoch() }

// dropConn unregisters and closes one connection.
func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

// serveConn runs one connection: handshake, then a read loop that
// spawns a handler per request. A frame that cannot be trusted —
// corrupt, torn, or protocol-violating — drops the connection; the
// coordinator's pending calls over it fail as worker-down and its
// Backoff owns reconnection policy.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(conn)

	out := make(chan []byte, 64)
	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		s.writeLoop(conn, out, stop)
	}()
	// Deferred shutdown order (LIFO): handlers drain first, then stop
	// closes, then the writer is joined.
	defer writerWG.Wait()
	defer close(stop)

	br := bufio.NewReader(conn)
	if !s.handshake(br, out, stop) {
		return
	}

	var handlers sync.WaitGroup
	defer handlers.Wait()
	for {
		typ, id, body, err := readFrame(br)
		if err != nil {
			// io.EOF: the coordinator hung up; anything else: a dead or
			// corrupt stream. Either way the connection is done.
			return
		}
		if typ == mtHello || typ >= mtResp {
			return // protocol violation: drop the connection
		}
		handlers.Add(1)
		go func() {
			defer handlers.Done()
			send(out, stop, s.handle(typ, id, body))
		}()
	}
}

// send queues one response frame unless the connection is going down.
func send(out chan []byte, stop chan struct{}, frame []byte) {
	select {
	case out <- frame:
	case <-stop:
	}
}

// writeLoop drains queued response frames into the connection,
// coalescing everything already queued into one flush.
func (s *Server) writeLoop(conn net.Conn, out chan []byte, stop chan struct{}) {
	bw := bufio.NewWriter(conn)
	for {
		select {
		case <-stop:
			return
		case frame := <-out:
			if _, err := bw.Write(frame); err != nil {
				s.sinkFrames(conn, out, stop)
				return
			}
		drain:
			for {
				select {
				case frame = <-out:
					if _, err := bw.Write(frame); err != nil {
						s.sinkFrames(conn, out, stop)
						return
					}
				default:
					break drain
				}
			}
			if err := bw.Flush(); err != nil {
				s.sinkFrames(conn, out, stop)
				return
			}
		}
	}
}

// sinkFrames keeps consuming queued responses after a write failure so
// in-flight handlers never block on a dead connection's queue; it
// returns once the connection's read side shuts the stream down.
func (s *Server) sinkFrames(conn net.Conn, out chan []byte, stop chan struct{}) {
	conn.Close()
	for {
		select {
		case <-out:
		case <-stop:
			return
		}
	}
}

// handshake requires the connection's first frame to be a well-formed
// hello naming this worker's exact identity (shard index and count):
// a coordinator wired to the wrong address fails loudly at connect
// time instead of serving another shard's traffic.
func (s *Server) handshake(br *bufio.Reader, out chan []byte, stop chan struct{}) bool {
	typ, id, body, err := readFrame(br)
	if err != nil || typ != mtHello {
		return false
	}
	r := wirefmt.NewReader(body)
	magic := r.U32()
	idx := int(r.U16())
	n := int(r.U16())
	if err := r.Close(); err != nil || magic != wireMagic {
		send(out, stop, errFrame(id, fmt.Errorf("shard: bad hello (protocol mismatch?)"), 0))
		return false
	}
	if idx != s.shardIdx || n != s.shards {
		send(out, stop, errFrame(id, fmt.Errorf("shard: this worker is shard %d/%d, coordinator expected %d/%d",
			s.shardIdx, s.shards, idx, n), 0))
		return false
	}
	resp := wirefmt.AppendU64(nil, s.w.Epoch())
	resp = wirefmt.AppendU32(resp, uint32(s.w.NumVertices()))
	resp = appendState(resp, s.w.State())
	send(out, stop, appendFrame(nil, mtResp, id, resp))
	return true
}

func errFrame(id uint64, err error, retryAfter time.Duration) []byte {
	return appendFrame(nil, mtErr, id, appendWireError(nil, err, retryAfter))
}

// handle answers one request frame, returning the response frame.
func (s *Server) handle(typ byte, id uint64, body []byte) []byte {
	resp, err := s.dispatch(typ, wirefmt.NewReader(body))
	if err != nil {
		return errFrame(id, err, s.retryAfter)
	}
	return appendFrame(nil, mtResp, id, resp)
}

func (s *Server) dispatch(typ byte, r *wirefmt.Reader) ([]byte, error) {
	switch typ {
	case mtSubmit:
		caller := r.String()
		collect := r.Bool()
		q := service.ReadQueryWire(r)
		if err := r.Close(); err != nil {
			return nil, err
		}
		rep, err := s.w.Submit(context.Background(), caller, q, collect)
		if err != nil {
			return nil, err
		}
		return service.AppendReplyWire(nil, rep), nil

	case mtAcquireDist:
		epoch := r.U64()
		root := r.U32()
		k := r.U8()
		dir := hcDirection(r.U8())
		if err := r.Close(); err != nil {
			return nil, err
		}
		h, err := s.w.AcquireDist(context.Background(), epoch, root, k, dir)
		if err != nil {
			return nil, err
		}
		defer h.Release()
		resp := wirefmt.AppendI64(nil, int64(h.hits))
		resp = wirefmt.AppendI64(resp, int64(h.misses))
		resp = appendDistMap(resp, h.dist, s.w.NumVertices())
		return resp, nil

	case mtHalfPaths:
		epoch := r.U64()
		dir := hcDirection(r.U8())
		root := r.U32()
		budget := r.U8()
		k := r.U8()
		remaining := time.Duration(r.I64())
		other, err := readDistMap(r, s.w.NumVertices())
		if err != nil {
			return nil, err
		}
		if err := r.Close(); err != nil {
			return nil, err
		}
		var deadline time.Time
		if remaining != 0 {
			deadline = time.Now().Add(remaining)
		}
		paths, cancelled, err := s.w.HalfPaths(context.Background(), epoch, dir, root, budget, k, other, deadline)
		if err != nil {
			return nil, err
		}
		resp := wirefmt.AppendBool(nil, cancelled)
		resp = appendStore(resp, paths)
		return resp, nil

	case mtApplyUpdates:
		adds, err := readEdges(r)
		if err != nil {
			return nil, err
		}
		dels, err := readEdges(r)
		if err != nil {
			return nil, err
		}
		if err := r.Close(); err != nil {
			return nil, err
		}
		epoch, err := s.w.ApplyUpdates(adds, dels)
		if err != nil {
			return nil, err
		}
		resp := wirefmt.AppendU64(nil, epoch)
		resp = wirefmt.AppendU32(resp, uint32(s.w.NumVertices()))
		return resp, nil

	case mtStats:
		if err := r.Close(); err != nil {
			return nil, err
		}
		return service.AppendTotalsWire(nil, s.w.Stats()), nil

	case mtState:
		if err := r.Close(); err != nil {
			return nil, err
		}
		return appendState(nil, s.w.State()), nil

	case mtEpoch:
		if err := r.Close(); err != nil {
			return nil, err
		}
		return wirefmt.AppendU64(nil, s.w.Epoch()), nil

	case mtCheckpoint:
		if err := r.Close(); err != nil {
			return nil, err
		}
		if err := s.w.Checkpoint(); err != nil {
			return nil, err
		}
		return []byte{}, nil

	default:
		return nil, errors.New("shard: unknown request type")
	}
}
