package shard

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/msbfs"
	"repro/internal/pathjoin"
	"repro/internal/service"
	"repro/internal/wirefmt"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		typ  byte
		id   uint64
		body []byte
	}{
		{mtSubmit, 1, []byte("hello")},
		{mtResp, 1<<63 + 7, nil},
		{mtErr, 0, bytes.Repeat([]byte{0xAB}, 4096)},
	}
	for _, c := range cases {
		frame := appendFrame(nil, c.typ, c.id, c.body)
		typ, id, body, err := readFrame(bufio.NewReader(bytes.NewReader(frame)))
		if err != nil {
			t.Fatalf("readFrame(%#x): %v", c.typ, err)
		}
		if typ != c.typ || id != c.id || !bytes.Equal(body, c.body) {
			t.Errorf("round trip: got (%#x, %d, %d bytes), want (%#x, %d, %d bytes)",
				typ, id, len(body), c.typ, c.id, len(c.body))
		}
	}
}

// TestFrameCorruptionMatrix flips every byte of a frame in turn: each
// corruption must surface as ErrFrameCorrupt (header or payload damage
// the checksum catches) — never as a silently decoded frame.
func TestFrameCorruptionMatrix(t *testing.T) {
	frame := appendFrame(nil, mtSubmit, 42, []byte("payload-bytes"))
	for i := range frame {
		corrupt := bytes.Clone(frame)
		corrupt[i] ^= 0x80
		_, _, _, err := readFrame(bufio.NewReader(bytes.NewReader(corrupt)))
		if err == nil {
			t.Fatalf("byte %d flipped: frame decoded anyway", i)
		}
		// A flipped length byte can also make the reader wait for more
		// payload than exists — an io error, equally fatal to the
		// connection. Anything else must be the checksum failing.
		if !errors.Is(err, ErrFrameCorrupt) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("byte %d flipped: got %v, want ErrFrameCorrupt or unexpected EOF", i, err)
		}
	}
}

// TestFrameTruncation cuts a frame off at every length: a torn frame is
// an io error (the peer died mid-write), never a decoded frame.
func TestFrameTruncation(t *testing.T) {
	frame := appendFrame(nil, mtHalfPaths, 7, []byte("torn"))
	for n := 0; n < len(frame); n++ {
		_, _, _, err := readFrame(bufio.NewReader(bytes.NewReader(frame[:n])))
		if err == nil {
			t.Fatalf("frame cut at %d/%d bytes decoded anyway", n, len(frame))
		}
		if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("frame cut at %d: got %v, want an io error", n, err)
		}
	}
}

func TestFrameRejectsImplausibleLength(t *testing.T) {
	var buf []byte
	buf = wirefmt.AppendU32(buf, maxFramePayload+1)
	buf = wirefmt.AppendU32(buf, 0)
	buf = append(buf, make([]byte, 64)...)
	_, _, _, err := readFrame(bufio.NewReader(bytes.NewReader(buf)))
	if !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("oversized length: got %v, want ErrFrameCorrupt", err)
	}
	buf = wirefmt.AppendU32(buf[:0], 3) // < 9: too short for type+id
	buf = wirefmt.AppendU32(buf, 0)
	buf = append(buf, 1, 2, 3)
	_, _, _, err = readFrame(bufio.NewReader(bytes.NewReader(buf)))
	if !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("undersized length: got %v, want ErrFrameCorrupt", err)
	}
}

func TestWireErrorRoundTrip(t *testing.T) {
	t.Run("overloaded", func(t *testing.T) {
		in := service.ErrOverloaded
		got := readWireError(wirefmt.NewReader(appendWireError(nil, in, 17*time.Millisecond)))
		if !errors.Is(got, service.ErrOverloaded) {
			t.Fatalf("decoded %v, want errors.Is ErrOverloaded", got)
		}
		var oe *OverloadedError
		if !errors.As(got, &oe) || oe.RetryAfter != 17*time.Millisecond {
			t.Fatalf("decoded %v, want OverloadedError with the 17ms hint", got)
		}
	})
	t.Run("closed", func(t *testing.T) {
		got := readWireError(wirefmt.NewReader(appendWireError(nil, service.ErrClosed, 0)))
		if !errors.Is(got, service.ErrClosed) {
			t.Fatalf("decoded %v, want ErrClosed", got)
		}
	})
	t.Run("epoch", func(t *testing.T) {
		in := &EpochMismatchError{Want: 3, Have: 9}
		got := readWireError(wirefmt.NewReader(appendWireError(nil, in, 0)))
		var em *EpochMismatchError
		if !errors.As(got, &em) || em.Want != 3 || em.Have != 9 {
			t.Fatalf("decoded %v, want EpochMismatchError{3, 9}", got)
		}
	})
	t.Run("string", func(t *testing.T) {
		in := errors.New("vertex 99 out of range [0, 10)")
		got := readWireError(wirefmt.NewReader(appendWireError(nil, in, 0)))
		if got.Error() != in.Error() {
			// Message identity is what keeps remote failures reading
			// exactly like local ones in the differential suite.
			t.Fatalf("decoded %q, want %q", got, in)
		}
	})
}

func TestDistMapCodec(t *testing.T) {
	visited := []graph.VertexID{0, 2, 5}
	dists := []uint8{0, 1, 3}
	d, err := msbfs.FromVisited(0, 4, 8, visited, dists)
	if err != nil {
		t.Fatalf("FromVisited: %v", err)
	}
	enc := appendDistMap(nil, d, 8)
	r := wirefmt.NewReader(enc)
	got, err := readDistMap(r, 8)
	if err != nil {
		t.Fatalf("readDistMap: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("trailing bytes: %v", err)
	}
	if got.Source != 0 || got.Cap != 4 {
		t.Errorf("decoded Source=%d Cap=%d", got.Source, got.Cap)
	}
	for v := graph.VertexID(0); v < 8; v++ {
		if got.Dist(v) != d.Dist(v) {
			t.Errorf("Dist(%d) = %d, want %d", v, got.Dist(v), d.Dist(v))
		}
	}

	// The bounds check: a visited count larger than the payload could
	// hold must be rejected before allocation.
	bad := wirefmt.AppendU32(nil, 0)    // source
	bad = wirefmt.AppendU8(bad, 4)      // cap
	bad = wirefmt.AppendU32(bad, 8)     // n
	bad = wirefmt.AppendU32(bad, 1<<30) // absurd visited count
	if _, err := readDistMap(wirefmt.NewReader(bad), 8); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("absurd visited count: got %v, want ErrFrameCorrupt", err)
	}

	// Unsorted visited sets violate the DistMap invariant and must be
	// rejected at decode, not propagated into probe-time corruption.
	unsorted := appendDistMap(nil, d, 8)
	// The visited ids start after source(4)+cap(1)+n(4)+count(4) = 13.
	copy(unsorted[13:], wirefmt.AppendU32(wirefmt.AppendU32(nil, 5), 2))
	if _, err := readDistMap(wirefmt.NewReader(unsorted), 8); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("unsorted visited set: got %v, want ErrFrameCorrupt", err)
	}
}

func TestStoreCodec(t *testing.T) {
	s := pathjoin.NewStore(4, 16)
	s.Add([]graph.VertexID{1, 2, 3})
	s.Add([]graph.VertexID{4})
	s.Add([]graph.VertexID{5, 6})
	enc := appendStore(nil, s)
	r := wirefmt.NewReader(enc)
	got, err := readStore(r)
	if err != nil {
		t.Fatalf("readStore: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("trailing bytes: %v", err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("decoded %d paths, want %d", got.Len(), s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		w, g := s.Path(i), got.Path(i)
		if len(w) != len(g) {
			t.Fatalf("path %d: %v vs %v", i, g, w)
		}
		for j := range w {
			if w[j] != g[j] {
				t.Fatalf("path %d: %v vs %v", i, g, w)
			}
		}
	}

	// Empty store round-trips (a pruned half often is).
	empty := pathjoin.NewStore(0, 0)
	got, err = readStore(wirefmt.NewReader(appendStore(nil, empty)))
	if err != nil || got.Len() != 0 {
		t.Fatalf("empty store: %v, %d paths", err, got.Len())
	}

	// Offsets that violate the arena invariant must be rejected.
	bad := wirefmt.AppendU32(nil, 3) // 3 offsets
	bad = wirefmt.AppendU32(bad, 0)
	bad = wirefmt.AppendU32(bad, 5) // > final offset: non-monotonic
	bad = wirefmt.AppendU32(bad, 2)
	bad = wirefmt.AppendU32(bad, 2) // 2 vertices
	bad = wirefmt.AppendU32(bad, 1)
	bad = wirefmt.AppendU32(bad, 2)
	if _, err := readStore(wirefmt.NewReader(bad)); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("non-monotonic offsets: got %v, want ErrFrameCorrupt", err)
	}
}

func TestEdgesCodec(t *testing.T) {
	in := []graph.Edge{{Src: 1, Dst: 2}, {Src: 0, Dst: 9}}
	r := wirefmt.NewReader(appendEdges(nil, in))
	got, err := readEdges(r)
	if err != nil || r.Close() != nil {
		t.Fatalf("readEdges: %v", err)
	}
	if len(got) != 2 || got[0] != in[0] || got[1] != in[1] {
		t.Fatalf("decoded %v, want %v", got, in)
	}

	// nil edge list (a pure-delete or pure-add batch) round-trips.
	r = wirefmt.NewReader(appendEdges(nil, nil))
	if got, err := readEdges(r); err != nil || got != nil {
		t.Fatalf("nil edges: %v, %v", got, err)
	}

	bad := wirefmt.AppendU32(nil, 1<<30)
	if _, err := readEdges(wirefmt.NewReader(bad)); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("absurd edge count: got %v, want ErrFrameCorrupt", err)
	}
}

func TestBackoffExhausts(t *testing.T) {
	b := Backoff{Base: time.Microsecond, Cap: 2 * time.Microsecond, Total: 50 * time.Microsecond}
	s := b.Start()
	var err error
	for i := 0; i < 1000; i++ {
		if err = s.Sleep(context.Background(), 0); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrBackoffExhausted) {
		t.Fatalf("after burning the budget: got %v, want ErrBackoffExhausted", err)
	}
	if s.Attempts() == 0 {
		t.Error("gave up before a single sleep")
	}
	if s.Slept() > b.Total {
		t.Errorf("slept %v, over the %v budget", s.Slept(), b.Total)
	}
}

func TestBackoffHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := Backoff{Base: time.Hour, Cap: time.Hour, Total: -1}.Start()
	if err := s.Sleep(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: got %v, want context.Canceled", err)
	}
}

func TestBackoffHintCapped(t *testing.T) {
	b := Backoff{Base: time.Microsecond, Cap: 3 * time.Microsecond, Total: -1}
	s := b.Start()
	start := time.Now()
	// A hostile hint must not make the client sleep past Cap.
	if err := s.Sleep(context.Background(), time.Hour); err != nil {
		t.Fatalf("Sleep: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("hint overrode the cap: slept %v", d)
	}
}
