package shard

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/service"
	"repro/internal/testgraphs"
)

// TestDurableShardedWarmRestart drives a durable sharded deployment
// through update waves, closes it, and reopens from the per-worker
// directories: the restarted deployment must carry the pre-restart
// State and answer queries identically to a single-process service
// replaying the same update stream.
func TestDurableShardedWarmRestart(t *testing.T) {
	g := testgraphs.Cycle(8)
	gr := g.Reverse()
	dir := t.TempDir()

	cfg := testConfig()
	cfg.Shards = 2
	cfg.DataDir = dir
	cfg.CompactAfter = 4

	adds := [][]graph.Edge{
		{{Src: 0, Dst: 8}, {Src: 8, Dst: 4}},
		{{Src: 2, Dst: 6}, {Src: 6, Dst: 1}},
		{{Src: 3, Dst: 9}, {Src: 9, Dst: 0}},
	}
	dels := [][]graph.Edge{
		{{Src: 1, Dst: 2}},
		nil,
		{{Src: 5, Dst: 6}},
	}

	coord, err := Open(g, gr, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := range adds {
		if _, err := coord.ApplyUpdates(adds[i], dels[i]); err != nil {
			t.Fatalf("wave %d: %v", i, err)
		}
	}
	preState := coord.State()
	if err := coord.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Warm restart: per-worker directories win over the seed graph.
	reopened, err := Open(g, gr, cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	if got := reopened.State(); got != preState {
		t.Fatalf("restarted State %+v, want pre-restart %+v", got, preState)
	}

	// The restarted deployment answers like a single in-memory service
	// driven through the same update stream.
	cfgSingle := testConfig()
	cfgSingle.SyncCompact = true
	cfgSingle.CompactAfter = 4
	single := service.New(g, gr, cfgSingle)
	defer single.Close()
	for i := range adds {
		if _, err := single.ApplyUpdates(adds[i], dels[i]); err != nil {
			t.Fatalf("single wave %d: %v", i, err)
		}
	}
	cur := single.CurrentSnapshot().Graph()
	qs := allPairQueries(cur, 3, 5)
	diffOutcomes(t, "durable-restart/shards=2", qs, runAll(single, qs), runAll(reopened, qs))

	// And it keeps accepting updates at the restored epoch.
	epoch, err := reopened.ApplyUpdates([]graph.Edge{{Src: 7, Dst: 3}}, nil)
	if err != nil {
		t.Fatalf("post-restart update: %v", err)
	}
	if epoch <= preState.Epoch {
		t.Errorf("post-restart epoch %d did not advance past %d", epoch, preState.Epoch)
	}
}

// TestOpenRefusesDivergedWorkers corrupts the replica invariant —
// one worker directory carries an extra update — and proves Open
// refuses the deployment instead of serving shard-dependent answers.
func TestOpenRefusesDivergedWorkers(t *testing.T) {
	g := testgraphs.Diamond()
	gr := g.Reverse()
	dir := t.TempDir()

	cfg := testConfig()
	cfg.Shards = 2
	cfg.DataDir = dir

	coord, err := Open(g, gr, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := coord.ApplyUpdates([]graph.Edge{{Src: 0, Dst: 3}}, nil); err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}
	if err := coord.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Advance shard-1 alone, as a crash mid-fan-out would.
	wcfg := workerConfig(cfg, 2, true)
	wcfg.DataDir = filepath.Join(dir, "shard-1")
	svc, err := service.Open(nil, nil, wcfg)
	if err != nil {
		t.Fatalf("opening shard-1 alone: %v", err)
	}
	if _, err := svc.ApplyUpdates([]graph.Edge{{Src: 1, Dst: 0}}, nil); err != nil {
		t.Fatalf("diverging shard-1: %v", err)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("closing shard-1: %v", err)
	}

	if c, err := Open(g, gr, cfg); err == nil {
		c.Close()
		t.Fatal("Open accepted diverged worker directories")
	} else if !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("Open error %q does not name the divergence", err)
	}
}

// TestOpenShardDirLayout pins the on-disk contract: worker i owns
// DataDir/shard-i, the layout the per-process wire deployment
// reproduces with one -datadir flag per worker.
func TestOpenShardDirLayout(t *testing.T) {
	g := testgraphs.Diamond()
	gr := g.Reverse()
	dir := t.TempDir()
	cfg := testConfig()
	cfg.Shards = 3
	cfg.DataDir = dir
	coord, err := Open(g, gr, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer coord.Close()
	for i := 0; i < 3; i++ {
		sub := filepath.Join(dir, fmt.Sprintf("shard-%d", i))
		if !dirExists(t, sub) {
			t.Errorf("worker %d directory %s missing", i, sub)
		}
	}
}

func dirExists(t *testing.T, path string) bool {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(path, "*"))
	return err == nil && len(m) > 0
}
