// Package shard implements the sharded deployment mode: N shard
// workers — each a full service.Service with its own versioned
// store.Store, cross-batch hcindex cache, and micro-batching pipeline —
// behind a Coordinator that hash-partitions the vertex space, routes
// queries, and fans updates out. Workers run either in the
// coordinator's process (New/Open) or as separate processes reached
// over the package's TCP wire protocol (Serve on the worker side,
// Connect on the coordinator side); the scatter-gather protocol below
// is identical in both modes, which is what the differential suite
// proves.
//
// # Routing
//
// ShardOf hash-partitions vertex IDs across the workers. A query whose
// endpoints both land on one shard is single-shard: the coordinator
// forwards it unchanged into that worker's micro-batching pipeline,
// where it coalesces with the worker's other traffic exactly as in the
// single-process deployment (sharing detection, planner, admission
// control included). A query whose endpoints land on different shards
// is cross-shard and runs the scatter-gather protocol:
//
//  1. Scatter — the shard owning s resolves the forward hop-distance
//     map of s and the shard owning t the backward map of t, each
//     through its own index cache, so index state stays partitioned by
//     endpoint ownership.
//  2. Half-path enumeration — the owner of s collects the forward
//     partial paths up to ⌈K/2⌉ hops and the owner of t the backward
//     partial paths up to ⌊K/2⌋ hops (pathenum.CollectHalf), each side
//     pruned by the other side's distance map (Lemma 3.1).
//  3. Gather and join — the coordinator joins the two half-path stores
//     at their boundary (meeting) vertices with pathjoin's unique-split
//     ⊕ concatenation: the machinery a single-process engine applies at
//     a query's midpoint, reused at the shard boundary.
//
// The protocol mirrors pathenum.EnumerateControlled step for step
// (plain search order, budgets ⌈K/2⌉/⌊K/2⌋), so sharded results are
// identical to single-process results; the differential suite in this
// package proves it over the testgraphs corpus for N ∈ {2, 3, 8}
// in-process and N ∈ {2, 3} over live TCP connections, live updates
// included.
//
// # Updates and epochs
//
// ApplyUpdates fans every update out to all workers under the
// coordinator's write lock, and the workers compact synchronously
// (Config.SyncCompact is forced on), so every worker steps through the
// identical epoch sequence — updates stay atomic per epoch, and the
// fan-out asserts the invariant and fails loudly on divergence.
//
// A cross-shard query pins the deployment epoch when it is admitted
// and stamps it on every scatter RPC; a worker asked to serve a pinned
// epoch it has moved past answers with EpochMismatchError, and the
// coordinator restarts the query at the new epoch. The pin-and-retry
// protocol replaces PR 9's pin-both-snapshots-under-the-read-lock:
// with workers in other processes there is no shared snapshot pointer
// to pin, and optimistic retry keeps updates from stalling behind
// in-flight scatter-gathers. Both halves of a join are therefore still
// always from one epoch — the workers enforce it instead of the
// coordinator's lock.
//
// # Admission control and backpressure
//
// Per-worker admission (MaxQueued, MaxPerCaller, MaxInFlight) applies
// unchanged to single-shard traffic: a worker's ErrOverloaded
// propagates to the caller with its retry-after semantics intact —
// over the wire it arrives as OverloadedError carrying the server's
// retry-after hint for the caller's Backoff. The coordinator adds
// Config.MaxCrossShard, bounding concurrent cross-shard joins; excess
// cross-shard queries are shed with a wrapped service.ErrOverloaded
// before any shard does work on their behalf.
//
// # Durability
//
// Open composes sharding with the durable store: worker i owns
// DataDir/shard-i — its own WAL and checkpoints — and a warm restart
// opens every worker from its directory and verifies the replicas
// reconverged on one store.State. In the wire deployment each worker
// process passes its own -datadir, giving the same layout across
// machines.
//
// # Scope
//
// Every worker replicates the full edge set: this mode partitions
// query routing, index state, and enumeration work — not storage.
// Disjoint edge partitions (and WAL shipping between workers) remain
// tracked in ROADMAP.md.
package shard

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/hcindex"
	"repro/internal/msbfs"
	"repro/internal/pathjoin"
	"repro/internal/query"
	"repro/internal/service"
	"repro/internal/store"
)

// ShardOf returns the worker owning vertex v among n shards: a
// multiplicative (Fibonacci) hash of the ID, so the dense small IDs
// real graphs use spread evenly instead of striping, and ownership is
// stable across runs and processes. n ≤ 1 maps everything to shard 0.
// The function is total over the ID space, so vertices that do not
// exist yet — updates grow the vertex space — already have an owner.
func ShardOf(v graph.VertexID, n int) int {
	if n <= 1 {
		return 0
	}
	return int((uint64(v) * 0x9E3779B97F4A7C15 >> 32) % uint64(n))
}

// maxEpochRetries bounds how often one cross-shard query restarts
// after losing the race with an update fan-out. Each retry requires a
// fresh update to land mid-scatter, so the bound is effectively "the
// query lost sixteen consecutive races" — unreachable outside a
// pathological update storm, where failing the query loudly beats
// spinning.
const maxEpochRetries = 16

// worker is one shard as the coordinator sees it, hiding whether the
// service runs in-process (localWorker) or behind a TCP connection
// (remoteWorker). Submit/ApplyUpdates/Stats/State/Checkpoint/Close
// mirror service.Service; AcquireDist and HalfPaths are the scatter
// legs, which carry the coordinator's pinned epoch — a worker on a
// different epoch refuses with EpochMismatchError rather than serve a
// half from the wrong graph.
type worker interface {
	Submit(ctx context.Context, caller string, q query.Query, collect bool) (*service.Reply, error)
	ApplyUpdates(adds, dels []graph.Edge) (uint64, error)
	Epoch() uint64
	NumVertices() int
	Stats() service.Totals
	State() store.State
	Checkpoint() error
	Close() error

	AcquireDist(ctx context.Context, epoch uint64, root graph.VertexID, k uint8, dir hcindex.Direction) (*distHandle, error)
	HalfPaths(ctx context.Context, epoch uint64, dir hcindex.Direction, root graph.VertexID, budget, k uint8, other *msbfs.DistMap, deadline time.Time) (*pathjoin.Store, bool, error)
}

// distHandle is one acquired distance map plus its release obligation
// and the cache accounting of the probe. Remote maps have a no-op
// release (the bytes were copied off the wire); local maps return to
// the worker's cache.
type distHandle struct {
	dist         *msbfs.DistMap
	hits, misses int
	release      func()
}

func (h *distHandle) Release() {
	if h != nil && h.release != nil {
		h.release()
	}
}

// localWorker adapts an in-process service.Service to the worker
// interface. The scatter legs pin the worker's current snapshot and
// verify it still carries the coordinator's epoch — the same check a
// remote worker's server loop performs.
type localWorker struct {
	svc *service.Service
}

func (w localWorker) Submit(ctx context.Context, caller string, q query.Query, collect bool) (*service.Reply, error) {
	return w.svc.Submit(ctx, caller, q, collect)
}

func (w localWorker) ApplyUpdates(adds, dels []graph.Edge) (uint64, error) {
	return w.svc.ApplyUpdates(adds, dels)
}

func (w localWorker) Epoch() uint64 { return w.svc.Epoch() }

func (w localWorker) NumVertices() int { return w.svc.CurrentSnapshot().Graph().NumVertices() }

func (w localWorker) Stats() service.Totals { return w.svc.Stats() }

func (w localWorker) State() store.State { return w.svc.State() }

func (w localWorker) Checkpoint() error { return w.svc.Checkpoint() }

func (w localWorker) Close() error { return w.svc.Close() }

func (w localWorker) AcquireDist(_ context.Context, epoch uint64, root graph.VertexID, k uint8, dir hcindex.Direction) (*distHandle, error) {
	snap := w.svc.CurrentSnapshot()
	if snap.Epoch() != epoch {
		return nil, &EpochMismatchError{Want: epoch, Have: snap.Epoch()}
	}
	dist, idx := w.svc.AcquireDist(snap, root, k, dir)
	return &distHandle{dist: dist, hits: idx.Hits, misses: idx.Misses, release: idx.Release}, nil
}

func (w localWorker) HalfPaths(ctx context.Context, epoch uint64, dir hcindex.Direction, root graph.VertexID, budget, k uint8, other *msbfs.DistMap, deadline time.Time) (*pathjoin.Store, bool, error) {
	snap := w.svc.CurrentSnapshot()
	if snap.Epoch() != epoch {
		return nil, false, &EpochMismatchError{Want: epoch, Have: snap.Epoch()}
	}
	out := pathjoin.NewStore(64, 256)
	ctrl := query.NewControl(ctx, deadline, 0, 1)
	w.svc.HalfPaths(snap, dir, root, budget, k, other, ctrl, out)
	return out, ctrl.Cancelled(), nil
}

// RoutingStats counts how the coordinator classified traffic.
type RoutingStats struct {
	// Shards is the worker count.
	Shards int
	// SingleShard counts queries whose endpoints shared a worker and
	// were forwarded into its batch pipeline; CrossShard counts
	// completed scatter-gather joins; CrossShed counts cross-shard
	// queries shed at the MaxCrossShard bound. EpochRetries counts
	// scatter-gathers restarted after losing the race with an update
	// fan-out.
	SingleShard, CrossShard, CrossShed, EpochRetries int64
}

// crossAgg accumulates the stats of completed cross-shard joins, which
// bypass the per-worker batch pipeline and so appear in no worker's
// Totals.
type crossAgg struct {
	paths, nanos, truncated, deadline int64
	hits, misses                      int64
}

// Coordinator is the sharded deployment's front door. It exposes the
// same method set as service.Service (Submit, ApplyUpdates, Stats,
// Epoch, State, Checkpoint, Close), so the public hcpath.Service can
// sit on either interchangeably. All methods are safe for concurrent
// use.
type Coordinator struct {
	cfg     service.Config
	workers []worker

	// mu serializes update fan-out (write side) against Close and the
	// epoch pinning of cross-shard admission (read side): a pin taken
	// under the read lock is an epoch every worker has fully reached,
	// never a mid-fan-out intermediate. Queries do not hold mu while
	// they run — the pinned epoch stamped on every scatter RPC, checked
	// by the workers, is what keeps a join's two halves on one epoch
	// (see the package comment).
	mu     sync.RWMutex
	closed bool

	// crossSlots is the MaxCrossShard admission semaphore; nil means
	// unlimited.
	crossSlots chan struct{}

	single, cross, shed, retries atomic.Int64

	aggMu sync.Mutex
	agg   crossAgg
}

// workerConfig lowers a deployment config to the config one worker
// runs: never itself sharded, synchronously compacting (the epoch
// alignment of the package comment), and — for n co-resident workers —
// an even split of the deployment's index-cache budget. splitCache is
// false for workers that own a whole process (wire mode), whose
// configured budget is already per-process.
func workerConfig(cfg service.Config, n int, splitCache bool) service.Config {
	workerCfg := cfg
	workerCfg.Shards = 0
	workerCfg.DataDir = ""
	workerCfg.SyncCompact = true
	if !splitCache {
		return workerCfg
	}
	switch {
	case cfg.IndexCacheBytes < 0:
		// Caching disabled; each worker gets a pooled builder.
	case cfg.IndexCacheBytes == 0:
		workerCfg.IndexCacheBytes = hcindex.DefaultCacheBytes / int64(n)
	default:
		if workerCfg.IndexCacheBytes = cfg.IndexCacheBytes / int64(n); workerCfg.IndexCacheBytes < 1 {
			workerCfg.IndexCacheBytes = 1 // 0 would flip the meaning back to "default budget"
		}
	}
	return workerCfg
}

// New builds a coordinator with cfg.Shards workers (minimum one), each
// a full in-memory service over its own replica of g/gr, splitting a
// configured index-cache budget evenly so the deployment's total cache
// memory matches the single-process configuration. Durable sharded
// deployments go through Open; New panics on a non-empty DataDir
// (hcpath routes it first).
func New(g, gr *graph.Graph, cfg service.Config) *Coordinator {
	if cfg.DataDir != "" {
		panic("shard: New is in-memory only; use Open for a durable sharded deployment")
	}
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	workerCfg := workerConfig(cfg, n, true)
	c := newCoordinator(cfg, n)
	for i := 0; i < n; i++ {
		c.workers[i] = localWorker{svc: service.New(g, gr, workerCfg)}
	}
	return c
}

// Open builds a durable sharded coordinator: worker i owns the data
// directory DataDir/shard-i (service.Open semantics — WAL, background
// checkpoints, warm restart). After every worker is open, Open
// verifies the replicas carry one identical store.State and refuses
// the deployment otherwise: diverged worker directories mean a crash
// landed mid-fan-out (or an operator mixed directories), and serving
// from them would give shard-dependent answers.
func Open(g, gr *graph.Graph, cfg service.Config) (*Coordinator, error) {
	if cfg.DataDir == "" {
		return New(g, gr, cfg), nil
	}
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	workerCfg := workerConfig(cfg, n, true)
	c := newCoordinator(cfg, n)
	for i := 0; i < n; i++ {
		workerCfg.DataDir = filepath.Join(cfg.DataDir, fmt.Sprintf("shard-%d", i))
		svc, err := service.Open(g, gr, workerCfg)
		if err != nil {
			for j := 0; j < i; j++ {
				c.workers[j].Close()
			}
			return nil, fmt.Errorf("shard: opening worker %d: %w", i, err)
		}
		c.workers[i] = localWorker{svc: svc}
	}
	if err := verifyAligned(c.workers); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

func newCoordinator(cfg service.Config, n int) *Coordinator {
	c := &Coordinator{cfg: cfg, workers: make([]worker, n)}
	if cfg.MaxCrossShard > 0 {
		c.crossSlots = make(chan struct{}, cfg.MaxCrossShard)
	}
	return c
}

// verifyAligned checks every worker reports the same store.State — the
// representation-independent CSR checksum — against worker 0's. It
// runs at Open and Connect time, when replicas arriving from disk or
// from other processes may have histories the coordinator never saw.
func verifyAligned(workers []worker) error {
	want := workers[0].State()
	for i, w := range workers[1:] {
		if got := w.State(); got != want {
			return fmt.Errorf("shard: replicas diverged: worker 0 at %+v, worker %d at %+v", want, i+1, got)
		}
	}
	return nil
}

// NumShards returns the worker count.
func (c *Coordinator) NumShards() int { return len(c.workers) }

// ShardOf returns the worker owning vertex v.
func (c *Coordinator) ShardOf(v graph.VertexID) int { return ShardOf(v, len(c.workers)) }

// Submit answers one query with service.Submit semantics: it blocks
// until the result is ready or ctx fires, validates before any work
// runs, and sheds with a wrapped service.ErrOverloaded under overload.
// Single-shard queries forward into the owning worker's batch pipeline
// (the caller string feeds that worker's fairness quota); cross-shard
// queries run the scatter-gather join, bounded by MaxCrossShard.
func (c *Coordinator) Submit(ctx context.Context, caller string, q query.Query, collect bool) (*service.Reply, error) {
	sa, sb := c.ShardOf(q.S), c.ShardOf(q.T)
	if sa == sb {
		c.single.Add(1)
		return c.workers[sa].Submit(ctx, caller, q, collect)
	}
	return c.crossShard(ctx, q, collect, sa, sb)
}

// pinEpoch admission-checks the deployment and returns the epoch a
// cross-shard attempt stamps on its scatter RPCs. Taking the read lock
// excludes a mid-flight fan-out, so the pin is an epoch every worker
// has fully reached.
func (c *Coordinator) pinEpoch() (uint64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return 0, service.ErrClosed
	}
	return c.workers[0].Epoch(), nil
}

// crossShard runs the scatter-gather protocol of the package comment.
// It deliberately mirrors pathenum.EnumerateControlled — same budgets,
// same plain search order, same join — with the two halves delegated
// to the workers owning the endpoints. An attempt that loses the race
// with an update fan-out (EpochMismatchError from a worker) restarts
// at the new epoch.
func (c *Coordinator) crossShard(ctx context.Context, q query.Query, collect bool, sa, sb int) (*service.Reply, error) {
	if c.crossSlots != nil {
		select {
		case c.crossSlots <- struct{}{}:
			defer func() { <-c.crossSlots }()
		default:
			c.shed.Add(1)
			return nil, fmt.Errorf("shard: %d cross-shard joins in flight (MaxCrossShard %d): %w",
				len(c.crossSlots), cap(c.crossSlots), service.ErrOverloaded)
		}
	}

	t0 := time.Now()
	var deadline time.Time
	if c.cfg.QueryTimeout > 0 {
		deadline = t0.Add(c.cfg.QueryTimeout)
	}
	var lastErr error
	for attempt := 0; attempt <= maxEpochRetries; attempt++ {
		epoch, err := c.pinEpoch()
		if err != nil {
			return nil, err
		}
		reply, err := c.crossShardAttempt(ctx, q, collect, sa, sb, epoch, t0, deadline)
		if isEpochMismatch(err) {
			c.retries.Add(1)
			lastErr = err
			continue
		}
		return reply, err
	}
	return nil, fmt.Errorf("shard: %s lost %d races with concurrent update fan-outs: %w",
		q, maxEpochRetries, lastErr)
}

func isEpochMismatch(err error) bool {
	var em *EpochMismatchError
	return errors.As(err, &em)
}

// crossShardAttempt runs one epoch-pinned scatter-gather. Validation
// happens against the deployment's vertex count every attempt, so a
// query racing a vertex-growing update is judged against the epoch it
// actually runs at — exactly as in the single-process service, where
// validation sees the batch's snapshot.
func (c *Coordinator) crossShardAttempt(ctx context.Context, q query.Query, collect bool, sa, sb int, epoch uint64, t0 time.Time, deadline time.Time) (*service.Reply, error) {
	// Same pre-validation as service.Submit (every replica holds the
	// full graph, so either worker's count works), so a malformed query
	// fails identically whether or not its endpoints share a shard.
	if err := q.ValidateN(graph.VertexID(c.workers[sa].NumVertices())); err != nil {
		return nil, err
	}

	ctrl := query.NewControl(ctx, deadline, c.cfg.Limit, 1)

	// Scatter, phase 1: each owner resolves its endpoint's distance map
	// through its own index cache, concurrently.
	var (
		ha, hb     *distHandle
		errA, errB error
		wg         sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		hb, errB = c.workers[sb].AcquireDist(ctx, epoch, q.T, q.K, hcindex.Backward)
	}()
	ha, errA = c.workers[sa].AcquireDist(ctx, epoch, q.S, q.K, hcindex.Forward)
	wg.Wait()
	defer ha.Release()
	defer hb.Release()
	if errA != nil {
		return nil, errA
	}
	if errB != nil {
		return nil, errB
	}
	c.cross.Add(1)

	reply := &service.Reply{}
	emit := func(p []graph.VertexID) {
		reply.Count++
		if collect {
			cp := make([]graph.VertexID, len(p))
			copy(cp, p)
			reply.Paths = append(reply.Paths, cp)
		}
	}
	if hb.dist.Dist(q.S) > q.K {
		// t unreachable from s within K hops: complete empty result.
		ctrl.MarkComplete(0)
	} else {
		// Scatter, phase 2: each owner enumerates its half, pruned by
		// the opposite owner's map. Each worker runs its own control
		// carrying the query's ctx and deadline; the per-query limit is
		// charged at the coordinator's join, never inside a half.
		var (
			fwdPaths, bwdPaths *pathjoin.Store
			cancA, cancB       bool
		)
		wg.Add(1)
		go func() {
			defer wg.Done()
			bwdPaths, cancB, errB = c.workers[sb].HalfPaths(ctx, epoch, hcindex.Backward, q.T, q.BwdBudget(), q.K, ha.dist, deadline)
		}()
		fwdPaths, cancA, errA = c.workers[sa].HalfPaths(ctx, epoch, hcindex.Forward, q.S, q.FwdBudget(), q.K, hb.dist, deadline)
		wg.Wait()
		if errA != nil {
			return nil, errA
		}
		if errB != nil {
			return nil, errB
		}
		// Gather, phase 3: join at the boundary vertices. Partial halves
		// of a cancelled run must not reach the join; probing Cancelled
		// here also latches the shared deadline into ctrl when a worker
		// observed it first, keeping the reply's Truncated/Err exactly
		// as in the single-process run.
		if !cancA && !cancB && !ctrl.Cancelled() {
			pathjoin.JoinHalvesControlled(fwdPaths, bwdPaths, q.K, false, ctrl, 0, emit)
		}
		if !ctrl.Cancelled() && !cancA && !cancB {
			ctrl.MarkComplete(0)
		}
	}
	if err := ctx.Err(); err != nil {
		// Submit parity: a caller whose context fired gets the error,
		// not a partial reply.
		return nil, err
	}
	reply.Truncated = ctrl.Truncated(0)
	reply.Err = ctrl.QueryErr(0)

	nanos := time.Since(t0).Nanoseconds()
	reply.Batch = service.BatchStats{
		Queries:        1,
		Groups:         1,
		Paths:          reply.Count,
		EnumerateNanos: nanos,
		IndexHits:      ha.hits + hb.hits,
		IndexMisses:    ha.misses + hb.misses,
	}
	if reply.Truncated {
		reply.Batch.Truncated = 1
	}

	c.aggMu.Lock()
	c.agg.paths += reply.Count
	c.agg.nanos += nanos
	c.agg.hits += int64(reply.Batch.IndexHits)
	c.agg.misses += int64(reply.Batch.IndexMisses)
	if reply.Truncated {
		c.agg.truncated++
	}
	if ctrl.Err() == context.DeadlineExceeded {
		c.agg.deadline++
	}
	c.aggMu.Unlock()
	return reply, nil
}

// ApplyUpdates publishes one new epoch across every worker atomically:
// the write lock excludes cross-shard epoch pinning while each replica
// applies the same adds/dels (store.ApplyUpdates semantics), and
// synchronous compaction keeps the per-replica epoch sequences
// identical — the fan-out asserts they are and fails loudly otherwise.
// Returns the epoch now current on all workers.
func (c *Coordinator) ApplyUpdates(adds, dels []graph.Edge) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return c.workers[0].Epoch(), service.ErrClosed
	}
	epoch, err := c.workers[0].ApplyUpdates(adds, dels)
	if err != nil {
		return epoch, err
	}
	for i, sh := range c.workers[1:] {
		e, err := sh.ApplyUpdates(adds, dels)
		if err != nil {
			return epoch, fmt.Errorf("shard: update fan-out failed on shard %d at epoch %d: %w", i+1, epoch, err)
		}
		if e != epoch {
			return epoch, fmt.Errorf("shard: epoch diverged after update fan-out: shard 0 at %d, shard %d at %d", epoch, i+1, e)
		}
	}
	return epoch, nil
}

// Epoch returns the current epoch, identical on every worker by the
// aligned-epoch invariant.
func (c *Coordinator) Epoch() uint64 { return c.workers[0].Epoch() }

// State identifies the current snapshot (see service.State); the
// aligned replicas agree, so worker 0 speaks for the deployment.
func (c *Coordinator) State() store.State { return c.workers[0].State() }

// Checkpoint forwards to every worker: each durable worker writes a
// checkpoint of its own directory; in-memory workers return nil.
func (c *Coordinator) Checkpoint() error {
	for _, sh := range c.workers {
		if err := sh.Checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// Stats folds every worker's lifetime Totals into one deployment view
// (Totals.Merge), then adds the cross-shard joins — each reported as a
// batch of one query — and corrects the store gauges that merging
// replicas would multiply: the logical update stream is counted once,
// from worker 0. IndexCacheBytes stays summed across workers (each
// owns a cache; the deployment's footprint is their total).
func (c *Coordinator) Stats() service.Totals {
	per := c.ShardTotals()
	var t service.Totals
	for _, st := range per {
		t.Merge(st)
	}
	s0 := per[0]
	t.UpdatesApplied = s0.UpdatesApplied
	t.Compactions = s0.Compactions
	t.DeltaEdges = s0.DeltaEdges
	t.WALRecords = s0.WALRecords
	t.Checkpoints = s0.Checkpoints

	c.aggMu.Lock()
	a := c.agg
	c.aggMu.Unlock()
	cross := c.cross.Load()
	t.Batches += cross
	t.Queries += cross
	t.Paths += a.paths
	t.EnumerateNanos += a.nanos
	t.IndexHits += a.hits
	t.IndexMisses += a.misses
	t.Truncated += a.truncated
	t.DeadlineBatches += a.deadline
	t.Shed += c.shed.Load()
	return t
}

// ShardTotals returns each worker's own lifetime Totals, in shard
// order — the per-shard view behind the merged Stats. Cross-shard
// joins bypass the worker pipelines and appear only in Stats.
func (c *Coordinator) ShardTotals() []service.Totals {
	per := make([]service.Totals, len(c.workers))
	for i, sh := range c.workers {
		per[i] = sh.Stats()
	}
	return per
}

// Routing returns the coordinator's traffic-classification counters.
func (c *Coordinator) Routing() RoutingStats {
	return RoutingStats{
		Shards:       len(c.workers),
		SingleShard:  c.single.Load(),
		CrossShard:   c.cross.Load(),
		CrossShed:    c.shed.Load(),
		EpochRetries: c.retries.Load(),
	}
}

// Close shuts every worker down — in-process workers stop their
// pipelines; remote connections are torn down, leaving the worker
// processes running for other coordinators. Idempotent; Submit and
// ApplyUpdates after Close return service.ErrClosed.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	var first error
	for _, sh := range c.workers {
		if sh == nil {
			continue
		}
		if err := sh.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
