// Package shard implements the in-process sharded deployment mode: N
// shard workers — each a full service.Service with its own versioned
// store.Store, cross-batch hcindex cache, and micro-batching pipeline —
// behind a Coordinator that hash-partitions the vertex space, routes
// queries, and fans updates out.
//
// # Routing
//
// ShardOf hash-partitions vertex IDs across the workers. A query whose
// endpoints both land on one shard is single-shard: the coordinator
// forwards it unchanged into that worker's micro-batching pipeline,
// where it coalesces with the worker's other traffic exactly as in the
// single-process deployment (sharing detection, planner, admission
// control included). A query whose endpoints land on different shards
// is cross-shard and runs the scatter-gather protocol:
//
//  1. Scatter — the shard owning s resolves the forward hop-distance
//     map of s and the shard owning t the backward map of t, each
//     through its own index cache, so index state stays partitioned by
//     endpoint ownership.
//  2. Half-path enumeration — the owner of s collects the forward
//     partial paths up to ⌈K/2⌉ hops and the owner of t the backward
//     partial paths up to ⌊K/2⌋ hops (pathenum.CollectHalf), each side
//     pruned by the other side's distance map (Lemma 3.1).
//  3. Gather and join — the coordinator joins the two half-path stores
//     at their boundary (meeting) vertices with pathjoin's unique-split
//     ⊕ concatenation: the machinery a single-process engine applies at
//     a query's midpoint, reused at the shard boundary.
//
// The protocol mirrors pathenum.EnumerateControlled step for step
// (plain search order, budgets ⌈K/2⌉/⌊K/2⌋), so sharded results are
// identical to single-process results; the differential suite in this
// package proves it over the testgraphs corpus for N ∈ {2, 3, 8},
// live updates included.
//
// # Updates and epochs
//
// ApplyUpdates fans every update out to all workers under the
// coordinator's write lock, and the workers compact synchronously
// (Config.SyncCompact is forced on), so every worker steps through the
// identical epoch sequence — updates stay atomic per epoch, and a
// cross-shard query, which pins both endpoint snapshots under the read
// lock, always joins two halves of the same epoch. The fan-out
// asserts the invariant and fails loudly on divergence.
//
// # Admission control
//
// Per-worker admission (MaxQueued, MaxPerCaller, MaxInFlight) applies
// unchanged to single-shard traffic: a worker's ErrOverloaded
// propagates to the caller with its retry-after semantics intact. The
// coordinator adds Config.MaxCrossShard, bounding concurrent
// cross-shard joins; excess cross-shard queries are shed with a
// wrapped service.ErrOverloaded before any shard does work on their
// behalf.
//
// # Scope
//
// Every worker replicates the full edge set: this mode partitions
// query routing, index state, and enumeration work — not storage — and
// exercises the exact protocol shape (endpoint ownership, scatter,
// boundary join) a wire-protocol deployment needs. The gRPC/HTTP
// transport that would let workers hold disjoint partitions on
// separate machines is the follow-up step tracked in ROADMAP.md;
// durable sharded stores (per-worker DataDir) ride on the same
// follow-up.
package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/hcindex"
	"repro/internal/msbfs"
	"repro/internal/pathjoin"
	"repro/internal/query"
	"repro/internal/service"
	"repro/internal/store"
)

// ShardOf returns the worker owning vertex v among n shards: a
// multiplicative (Fibonacci) hash of the ID, so the dense small IDs
// real graphs use spread evenly instead of striping, and ownership is
// stable across runs and processes. n ≤ 1 maps everything to shard 0.
// The function is total over the ID space, so vertices that do not
// exist yet — updates grow the vertex space — already have an owner.
func ShardOf(v graph.VertexID, n int) int {
	if n <= 1 {
		return 0
	}
	return int((uint64(v) * 0x9E3779B97F4A7C15 >> 32) % uint64(n))
}

// RoutingStats counts how the coordinator classified traffic.
type RoutingStats struct {
	// Shards is the worker count.
	Shards int
	// SingleShard counts queries whose endpoints shared a worker and
	// were forwarded into its batch pipeline; CrossShard counts
	// completed scatter-gather joins; CrossShed counts cross-shard
	// queries shed at the MaxCrossShard bound.
	SingleShard, CrossShard, CrossShed int64
}

// crossAgg accumulates the stats of completed cross-shard joins, which
// bypass the per-worker batch pipeline and so appear in no worker's
// Totals.
type crossAgg struct {
	paths, nanos, truncated, deadline int64
	hits, misses                      int64
}

// Coordinator is the sharded deployment's front door. It exposes the
// same method set as service.Service (Submit, ApplyUpdates, Stats,
// Epoch, State, Checkpoint, Close), so the public hcpath.Service can
// sit on either interchangeably. All methods are safe for concurrent
// use.
type Coordinator struct {
	cfg    service.Config
	shards []*service.Service

	// mu orders update fan-out against cross-shard snapshot pinning:
	// ApplyUpdates holds the write side while stepping every worker to
	// the next epoch, and a cross-shard query pins its two endpoint
	// snapshots under the read side — so the pair is always from one
	// epoch. Single-shard queries bypass mu entirely: they run on one
	// worker's snapshot, which is consistent by construction.
	mu     sync.RWMutex
	closed bool

	// crossSlots is the MaxCrossShard admission semaphore; nil means
	// unlimited.
	crossSlots chan struct{}

	single, cross, shed atomic.Int64

	aggMu sync.Mutex
	agg   crossAgg
}

// New builds a coordinator with cfg.Shards workers (minimum one), each
// a full in-memory service over its own replica of g/gr. Workers run
// with SyncCompact forced on (see the package comment) and split a
// configured index-cache budget evenly, so the deployment's total
// cache memory matches the single-process configuration. Durable
// stores are not supported in sharded mode: New panics on a non-empty
// DataDir (hcpath.OpenService reports it as an error first).
func New(g, gr *graph.Graph, cfg service.Config) *Coordinator {
	if cfg.DataDir != "" {
		panic("shard: durable sharded deployment is not supported (DataDir with Shards > 1)")
	}
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	workerCfg := cfg
	workerCfg.Shards = 0
	workerCfg.SyncCompact = true
	switch {
	case cfg.IndexCacheBytes < 0:
		// Caching disabled; each worker gets a pooled builder.
	case cfg.IndexCacheBytes == 0:
		workerCfg.IndexCacheBytes = hcindex.DefaultCacheBytes / int64(n)
	default:
		if workerCfg.IndexCacheBytes = cfg.IndexCacheBytes / int64(n); workerCfg.IndexCacheBytes < 1 {
			workerCfg.IndexCacheBytes = 1 // 0 would flip the meaning back to "default budget"
		}
	}
	c := &Coordinator{cfg: cfg, shards: make([]*service.Service, n)}
	for i := range c.shards {
		c.shards[i] = service.New(g, gr, workerCfg)
	}
	if cfg.MaxCrossShard > 0 {
		c.crossSlots = make(chan struct{}, cfg.MaxCrossShard)
	}
	return c
}

// NumShards returns the worker count.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// ShardOf returns the worker owning vertex v.
func (c *Coordinator) ShardOf(v graph.VertexID) int { return ShardOf(v, len(c.shards)) }

// Submit answers one query with service.Submit semantics: it blocks
// until the result is ready or ctx fires, validates before any work
// runs, and sheds with a wrapped service.ErrOverloaded under overload.
// Single-shard queries forward into the owning worker's batch pipeline
// (the caller string feeds that worker's fairness quota); cross-shard
// queries run the scatter-gather join, bounded by MaxCrossShard.
func (c *Coordinator) Submit(ctx context.Context, caller string, q query.Query, collect bool) (*service.Reply, error) {
	sa, sb := c.ShardOf(q.S), c.ShardOf(q.T)
	if sa == sb {
		c.single.Add(1)
		return c.shards[sa].Submit(ctx, caller, q, collect)
	}
	return c.crossShard(ctx, q, collect, sa, sb)
}

// crossShard runs the scatter-gather protocol of the package comment.
// It deliberately mirrors pathenum.EnumerateControlled — same budgets,
// same plain search order, same join — with the two halves delegated
// to the workers owning the endpoints.
func (c *Coordinator) crossShard(ctx context.Context, q query.Query, collect bool, sa, sb int) (*service.Reply, error) {
	if c.crossSlots != nil {
		select {
		case c.crossSlots <- struct{}{}:
			defer func() { <-c.crossSlots }()
		default:
			c.shed.Add(1)
			return nil, fmt.Errorf("shard: %d cross-shard joins in flight (MaxCrossShard %d): %w",
				cap(c.crossSlots), cap(c.crossSlots), service.ErrOverloaded)
		}
	}

	// Pin both endpoint snapshots under the read lock: with update
	// fan-out excluded, the pair is guaranteed to carry one epoch. The
	// snapshots are immutable, so the lock is released before any
	// enumeration work.
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return nil, service.ErrClosed
	}
	snapA := c.shards[sa].CurrentSnapshot()
	snapB := c.shards[sb].CurrentSnapshot()
	c.mu.RUnlock()

	// Same pre-validation as service.Submit (every replica holds the
	// full graph, so either snapshot works), so a malformed query fails
	// identically whether or not its endpoints share a shard.
	if err := q.Validate(snapA.Graph()); err != nil {
		return nil, err
	}
	c.cross.Add(1)

	t0 := time.Now()
	var deadline time.Time
	if c.cfg.QueryTimeout > 0 {
		deadline = t0.Add(c.cfg.QueryTimeout)
	}
	ctrl := query.NewControl(ctx, deadline, c.cfg.Limit, 1)

	// Scatter, phase 1: each owner resolves its endpoint's distance map
	// through its own index cache, concurrently.
	var (
		fwd, bwd   *msbfs.DistMap
		idxA, idxB *hcindex.Index
		wg         sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		bwd, idxB = c.shards[sb].AcquireDist(snapB, q.T, q.K, hcindex.Backward)
	}()
	fwd, idxA = c.shards[sa].AcquireDist(snapA, q.S, q.K, hcindex.Forward)
	wg.Wait()
	defer idxA.Release()
	defer idxB.Release()

	reply := &service.Reply{}
	emit := func(p []graph.VertexID) {
		reply.Count++
		if collect {
			cp := make([]graph.VertexID, len(p))
			copy(cp, p)
			reply.Paths = append(reply.Paths, cp)
		}
	}
	if bwd.Dist(q.S) > q.K {
		// t unreachable from s within K hops: complete empty result.
		ctrl.MarkComplete(0)
	} else {
		// Scatter, phase 2: each owner enumerates its half, pruned by
		// the opposite owner's map.
		fwdPaths := pathjoin.NewStore(64, 256)
		bwdPaths := pathjoin.NewStore(64, 256)
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.shards[sb].HalfPaths(snapB, hcindex.Backward, q.T, q.BwdBudget(), q.K, fwd, ctrl, bwdPaths)
		}()
		c.shards[sa].HalfPaths(snapA, hcindex.Forward, q.S, q.FwdBudget(), q.K, bwd, ctrl, fwdPaths)
		wg.Wait()
		// Gather, phase 3: join at the boundary vertices. Partial halves
		// of a cancelled run must not reach the join.
		if !ctrl.Cancelled() {
			pathjoin.JoinHalvesControlled(fwdPaths, bwdPaths, q.K, false, ctrl, 0, emit)
		}
		if !ctrl.Cancelled() {
			ctrl.MarkComplete(0)
		}
	}
	if err := ctx.Err(); err != nil {
		// Submit parity: a caller whose context fired gets the error,
		// not a partial reply.
		return nil, err
	}
	reply.Truncated = ctrl.Truncated(0)
	reply.Err = ctrl.QueryErr(0)

	nanos := time.Since(t0).Nanoseconds()
	reply.Batch = service.BatchStats{
		Queries:        1,
		Groups:         1,
		Paths:          reply.Count,
		EnumerateNanos: nanos,
		IndexHits:      idxA.Hits + idxB.Hits,
		IndexMisses:    idxA.Misses + idxB.Misses,
	}
	if reply.Truncated {
		reply.Batch.Truncated = 1
	}

	c.aggMu.Lock()
	c.agg.paths += reply.Count
	c.agg.nanos += nanos
	c.agg.hits += int64(reply.Batch.IndexHits)
	c.agg.misses += int64(reply.Batch.IndexMisses)
	if reply.Truncated {
		c.agg.truncated++
	}
	if ctrl.Err() == context.DeadlineExceeded {
		c.agg.deadline++
	}
	c.aggMu.Unlock()
	return reply, nil
}

// ApplyUpdates publishes one new epoch across every worker atomically:
// the write lock excludes cross-shard snapshot pinning while each
// replica applies the same adds/dels (store.ApplyUpdates semantics),
// and synchronous compaction keeps the per-replica epoch sequences
// identical — the fan-out asserts they are and fails loudly otherwise.
// Returns the epoch now current on all workers.
func (c *Coordinator) ApplyUpdates(adds, dels []graph.Edge) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return c.shards[0].Epoch(), service.ErrClosed
	}
	epoch, err := c.shards[0].ApplyUpdates(adds, dels)
	if err != nil {
		return epoch, err
	}
	for i, sh := range c.shards[1:] {
		e, err := sh.ApplyUpdates(adds, dels)
		if err != nil {
			return epoch, fmt.Errorf("shard: update fan-out failed on shard %d at epoch %d: %w", i+1, epoch, err)
		}
		if e != epoch {
			return epoch, fmt.Errorf("shard: epoch diverged after update fan-out: shard 0 at %d, shard %d at %d", epoch, i+1, e)
		}
	}
	return epoch, nil
}

// Epoch returns the current epoch, identical on every worker by the
// aligned-epoch invariant.
func (c *Coordinator) Epoch() uint64 { return c.shards[0].Epoch() }

// State identifies the current snapshot (see service.State); the
// aligned replicas agree, so worker 0 speaks for the deployment.
func (c *Coordinator) State() store.State { return c.shards[0].State() }

// Checkpoint forwards to every worker; all workers are in-memory, so
// it returns nil until sharded durability lands.
func (c *Coordinator) Checkpoint() error {
	for _, sh := range c.shards {
		if err := sh.Checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// Stats folds every worker's lifetime Totals into one deployment view
// (Totals.Merge), then adds the cross-shard joins — each reported as a
// batch of one query — and corrects the store gauges that merging
// replicas would multiply: the logical update stream is counted once,
// from worker 0. IndexCacheBytes stays summed across workers (each
// owns a cache; the deployment's footprint is their total).
func (c *Coordinator) Stats() service.Totals {
	per := c.ShardTotals()
	var t service.Totals
	for _, st := range per {
		t.Merge(st)
	}
	s0 := per[0]
	t.UpdatesApplied = s0.UpdatesApplied
	t.Compactions = s0.Compactions
	t.DeltaEdges = s0.DeltaEdges
	t.WALRecords = s0.WALRecords
	t.Checkpoints = s0.Checkpoints

	c.aggMu.Lock()
	a := c.agg
	c.aggMu.Unlock()
	cross := c.cross.Load()
	t.Batches += cross
	t.Queries += cross
	t.Paths += a.paths
	t.EnumerateNanos += a.nanos
	t.IndexHits += a.hits
	t.IndexMisses += a.misses
	t.Truncated += a.truncated
	t.DeadlineBatches += a.deadline
	t.Shed += c.shed.Load()
	return t
}

// ShardTotals returns each worker's own lifetime Totals, in shard
// order — the per-shard view behind the merged Stats. Cross-shard
// joins bypass the worker pipelines and appear only in Stats.
func (c *Coordinator) ShardTotals() []service.Totals {
	per := make([]service.Totals, len(c.shards))
	for i, sh := range c.shards {
		per[i] = sh.Stats()
	}
	return per
}

// Routing returns the coordinator's traffic-classification counters.
func (c *Coordinator) Routing() RoutingStats {
	return RoutingStats{
		Shards:      len(c.shards),
		SingleShard: c.single.Load(),
		CrossShard:  c.cross.Load(),
		CrossShed:   c.shed.Load(),
	}
}

// Close shuts every worker down. Idempotent; Submit and ApplyUpdates
// after Close return service.ErrClosed.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	var first error
	for _, sh := range c.shards {
		if err := sh.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
