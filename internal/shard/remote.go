package shard

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/hcindex"
	"repro/internal/msbfs"
	"repro/internal/pathjoin"
	"repro/internal/query"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/wirefmt"
)

// ConnectOptions tunes Connect.
type ConnectOptions struct {
	// DialBackoff paces connection attempts per worker; the zero value
	// means Base 25ms, Cap 500ms, Total 5s — a worker that has not
	// come up within the budget fails the Connect loudly.
	DialBackoff Backoff
	// NoBatch disables the client's write coalescing: every request
	// frame is flushed to the socket individually. It exists for the
	// benchmark that measures what coalescing buys
	// (BenchmarkWireThroughput) and for debugging; production callers
	// leave it off.
	NoBatch bool
}

func (o ConnectOptions) dialBackoff() Backoff {
	b := o.DialBackoff
	if b.Base == 0 {
		b.Base = 25 * time.Millisecond
	}
	if b.Cap == 0 {
		b.Cap = 500 * time.Millisecond
	}
	if b.Total == 0 {
		b.Total = 5 * time.Second
	}
	return b
}

// Connect builds a Coordinator over remote workers, one per address,
// address i serving shard i of len(addrs): it dials each worker (with
// the dial Backoff absorbing startup races), performs the hello
// handshake that verifies protocol version and shard identity, and
// checks all replicas report one identical store.State before
// accepting traffic. The cfg governs coordinator-side behaviour —
// MaxCrossShard admission, QueryTimeout and Limit of cross-shard joins
// — while each worker process keeps the batching/admission config it
// was started with.
func Connect(ctx context.Context, addrs []string, cfg service.Config, opts ConnectOptions) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, errors.New("shard: Connect needs at least one worker address")
	}
	c := newCoordinator(cfg, len(addrs))
	for i, addr := range addrs {
		w, err := dialWorker(ctx, addr, i, len(addrs), opts)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.workers[i] = w
	}
	if err := verifyAligned(c.workers); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// WireStats is one remote worker connection's transport counters.
type WireStats struct {
	Addr string
	// RPCs counts request frames sent; Flushes counts socket flushes.
	// RPCs/Flushes is the coalescing factor: how many concurrent
	// requests shared one round-trip on average.
	RPCs, Flushes int64
}

// Wire returns per-worker transport counters, in shard order, or nil
// for an in-process deployment.
func (c *Coordinator) Wire() []WireStats {
	var out []WireStats
	for _, w := range c.workers {
		if rw, ok := w.(*remoteWorker); ok {
			out = append(out, WireStats{Addr: rw.addr, RPCs: rw.rpcs.Load(), Flushes: rw.flushes.Load()})
		}
	}
	return out
}

// controlTimeout bounds the stats-plane RPCs (Stats, State, Epoch at
// connect) that have no caller-supplied context.
const controlTimeout = 10 * time.Second

// errCoordinatorClosed marks a connection torn down by our own Close,
// as opposed to a worker failure.
var errCoordinatorClosed = errors.New("connection closed by coordinator")

// remoteWorker is the client side of one worker connection. Requests
// from any number of coordinator goroutines multiplex over the single
// connection: each call registers a reply channel under its request
// id, queues its frame to the send loop — which coalesces every frame
// queued at flush time into one write, the client half of the
// level-batching — and waits. The receive loop demultiplexes responses
// by id. When the connection dies, every pending and future call fails
// immediately with a WorkerDownError: a killed worker mid-scatter is a
// typed error, never a hang.
type remoteWorker struct {
	addr     string
	shardIdx int
	conn     net.Conn
	noBatch  bool

	sendQ chan []byte
	stop  chan struct{} // closed by markDown

	mu        sync.Mutex
	pending   map[uint64]chan callResult
	down      bool
	downCause error

	nextID  atomic.Uint64
	epoch   atomic.Uint64
	nverts  atomic.Int64
	rpcs    atomic.Int64
	flushes atomic.Int64
}

type callResult struct {
	body []byte
	err  error
}

// dialWorker establishes one worker connection: dial under the
// backoff, handshake synchronously, then start the connection's send
// and receive loops.
func dialWorker(ctx context.Context, addr string, shardIdx, shards int, opts ConnectOptions) (*remoteWorker, error) {
	var d net.Dialer
	sleeper := opts.dialBackoff().Start()
	var conn net.Conn
	for {
		var err error
		conn, err = d.DialContext(ctx, "tcp", addr)
		if err == nil {
			break
		}
		if serr := sleeper.Sleep(ctx, 0); serr != nil {
			return nil, fmt.Errorf("shard: dialing worker %d at %s: %v (gave up: %w)", shardIdx, addr, err, serr)
		}
	}

	hello := wirefmt.AppendU32(nil, wireMagic)
	hello = wirefmt.AppendU16(hello, uint16(shardIdx))
	hello = wirefmt.AppendU16(hello, uint16(shards))
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetDeadline(deadline)
	} else {
		conn.SetDeadline(time.Now().Add(controlTimeout))
	}
	if _, err := conn.Write(appendFrame(nil, mtHello, 1, hello)); err != nil {
		conn.Close()
		return nil, &WorkerDownError{Addr: addr, Shard: shardIdx, Cause: err}
	}
	br := bufio.NewReader(conn)
	typ, _, body, err := readFrame(br)
	if err != nil {
		conn.Close()
		return nil, &WorkerDownError{Addr: addr, Shard: shardIdx, Cause: err}
	}
	if typ == mtErr {
		conn.Close()
		return nil, fmt.Errorf("shard: worker %d at %s refused the handshake: %w",
			shardIdx, addr, readWireError(wirefmt.NewReader(body)))
	}
	r := wirefmt.NewReader(body)
	epoch := r.U64()
	n := r.U32()
	st := readState(r)
	if typ != mtResp || r.Close() != nil {
		conn.Close()
		return nil, fmt.Errorf("shard: worker %d at %s: malformed handshake response", shardIdx, addr)
	}
	_ = st // alignment across workers is checked by Connect via State()
	conn.SetDeadline(time.Time{})

	w := &remoteWorker{
		addr:     addr,
		shardIdx: shardIdx,
		conn:     conn,
		noBatch:  opts.NoBatch,
		sendQ:    make(chan []byte, 256),
		stop:     make(chan struct{}),
		pending:  make(map[uint64]chan callResult),
	}
	w.nextID.Store(1) // id 1 was the hello
	w.epoch.Store(epoch)
	w.nverts.Store(int64(n))
	go w.sendLoop()
	go w.recvLoop(br)
	return w, nil
}

// markDown fails the connection once: every pending call (and every
// later one) completes with a WorkerDownError wrapping cause.
func (w *remoteWorker) markDown(cause error) {
	w.mu.Lock()
	if w.down {
		w.mu.Unlock()
		return
	}
	w.down = true
	w.downCause = cause
	pend := w.pending
	w.pending = nil
	w.mu.Unlock()
	close(w.stop)
	w.conn.Close()
	err := w.downError()
	for _, ch := range pend {
		ch <- callResult{err: err} // buffered: never blocks
	}
}

func (w *remoteWorker) downError() error {
	return &WorkerDownError{Addr: w.addr, Shard: w.shardIdx, Cause: w.downCause}
}

func (w *remoteWorker) sendLoop() {
	bw := bufio.NewWriter(w.conn)
	for {
		select {
		case <-w.stop:
			return
		case frame := <-w.sendQ:
			if _, err := bw.Write(frame); err != nil {
				w.markDown(err)
				return
			}
			if !w.noBatch {
			drain:
				for {
					select {
					case frame = <-w.sendQ:
						if _, err := bw.Write(frame); err != nil {
							w.markDown(err)
							return
						}
					default:
						break drain
					}
				}
			}
			if err := bw.Flush(); err != nil {
				w.markDown(err)
				return
			}
			w.flushes.Add(1)
		}
	}
}

func (w *remoteWorker) recvLoop(br *bufio.Reader) {
	for {
		typ, id, body, err := readFrame(br)
		if err != nil {
			w.markDown(err)
			return
		}
		var res callResult
		switch typ {
		case mtResp:
			res = callResult{body: body}
		case mtErr:
			res = callResult{err: readWireError(wirefmt.NewReader(body))}
		default:
			w.markDown(fmt.Errorf("unexpected frame type %#x: %w", typ, ErrFrameCorrupt))
			return
		}
		w.mu.Lock()
		ch, ok := w.pending[id]
		delete(w.pending, id)
		w.mu.Unlock()
		if ok {
			ch <- res // buffered: never blocks
		}
	}
}

// call runs one RPC: register, queue, wait. ctx abandons the wait (the
// late response is discarded on arrival); a downed connection fails
// immediately.
func (w *remoteWorker) call(ctx context.Context, typ byte, body []byte) ([]byte, error) {
	id := w.nextID.Add(1)
	ch := make(chan callResult, 1)
	w.mu.Lock()
	if w.down {
		w.mu.Unlock()
		return nil, w.downError()
	}
	w.pending[id] = ch
	w.mu.Unlock()
	w.rpcs.Add(1)

	frame := appendFrame(nil, typ, id, body)
	select {
	case w.sendQ <- frame:
	case <-w.stop:
		w.unregister(id)
		return nil, w.downError()
	case <-ctx.Done():
		w.unregister(id)
		return nil, ctx.Err()
	}

	select {
	case res := <-ch:
		return res.body, res.err
	case <-ctx.Done():
		w.unregister(id)
		return nil, ctx.Err()
	}
}

func (w *remoteWorker) unregister(id uint64) {
	w.mu.Lock()
	delete(w.pending, id)
	w.mu.Unlock()
}

// controlCall is call with the stats-plane timeout, for RPCs whose
// worker-interface signature carries no context.
func (w *remoteWorker) controlCall(typ byte, body []byte) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), controlTimeout)
	defer cancel()
	return w.call(ctx, typ, body)
}

func (w *remoteWorker) Submit(ctx context.Context, caller string, q query.Query, collect bool) (*service.Reply, error) {
	body := wirefmt.AppendString(nil, caller)
	body = wirefmt.AppendBool(body, collect)
	body = service.AppendQueryWire(body, q)
	resp, err := w.call(ctx, mtSubmit, body)
	if err != nil {
		return nil, err
	}
	r := wirefmt.NewReader(resp)
	rep := service.ReadReplyWire(r)
	if err := r.Close(); err != nil {
		return nil, &WorkerDownError{Addr: w.addr, Shard: w.shardIdx, Cause: err}
	}
	return rep, nil
}

func (w *remoteWorker) ApplyUpdates(adds, dels []graph.Edge) (uint64, error) {
	body := appendEdges(nil, adds)
	body = appendEdges(body, dels)
	resp, err := w.controlCall(mtApplyUpdates, body)
	if err != nil {
		return w.Epoch(), err
	}
	r := wirefmt.NewReader(resp)
	epoch := r.U64()
	n := r.U32()
	if err := r.Close(); err != nil {
		return w.Epoch(), &WorkerDownError{Addr: w.addr, Shard: w.shardIdx, Cause: err}
	}
	w.epoch.Store(epoch)
	w.nverts.Store(int64(n))
	return epoch, nil
}

// Epoch returns the cached epoch: the value of the last handshake or
// update fan-out. Under the coordinator's aligned-epoch invariant the
// cache is exact — epochs only move inside ApplyUpdates, which updates
// it.
func (w *remoteWorker) Epoch() uint64 { return w.epoch.Load() }

func (w *remoteWorker) NumVertices() int { return int(w.nverts.Load()) }

// Stats returns the worker's Totals, or — matching the best a stats
// plane can do against an unreachable process — zero Totals once the
// connection is down.
func (w *remoteWorker) Stats() service.Totals {
	resp, err := w.controlCall(mtStats, nil)
	if err != nil {
		return service.Totals{}
	}
	r := wirefmt.NewReader(resp)
	t := service.ReadTotalsWire(r)
	if r.Close() != nil {
		return service.Totals{}
	}
	return t
}

func (w *remoteWorker) State() store.State {
	resp, err := w.controlCall(mtState, nil)
	if err != nil {
		return store.State{}
	}
	r := wirefmt.NewReader(resp)
	st := readState(r)
	if r.Close() != nil {
		return store.State{}
	}
	return st
}

func (w *remoteWorker) Checkpoint() error {
	_, err := w.controlCall(mtCheckpoint, nil)
	return err
}

// Close tears the connection down. The worker process keeps serving —
// other coordinators may be connected — so Close never propagates to
// the remote service.
func (w *remoteWorker) Close() error {
	w.markDown(errCoordinatorClosed)
	return nil
}

func dirByte(dir hcindex.Direction) uint8 {
	if dir == hcindex.Forward {
		return 0
	}
	return 1
}

func (w *remoteWorker) AcquireDist(ctx context.Context, epoch uint64, root graph.VertexID, k uint8, dir hcindex.Direction) (*distHandle, error) {
	body := wirefmt.AppendU64(nil, epoch)
	body = wirefmt.AppendU32(body, root)
	body = wirefmt.AppendU8(body, k)
	body = wirefmt.AppendU8(body, dirByte(dir))
	resp, err := w.call(ctx, mtAcquireDist, body)
	if err != nil {
		return nil, err
	}
	r := wirefmt.NewReader(resp)
	hits := int(r.I64())
	misses := int(r.I64())
	dist, derr := readDistMap(r, w.NumVertices())
	if derr == nil {
		derr = r.Close()
	}
	if derr != nil {
		return nil, &WorkerDownError{Addr: w.addr, Shard: w.shardIdx, Cause: derr}
	}
	// The map's bytes were copied off the wire, so there is nothing to
	// release; the worker released its cache handle after encoding.
	return &distHandle{dist: dist, hits: hits, misses: misses}, nil
}

func (w *remoteWorker) HalfPaths(ctx context.Context, epoch uint64, dir hcindex.Direction, root graph.VertexID, budget, k uint8, other *msbfs.DistMap, deadline time.Time) (*pathjoin.Store, bool, error) {
	// The deadline crosses the wire as remaining time, not an absolute
	// instant, so worker clocks need not agree with the coordinator's.
	var remaining time.Duration
	if !deadline.IsZero() {
		remaining = time.Until(deadline)
		if remaining <= 0 {
			// Already expired: the worker would only cancel immediately.
			return pathjoin.NewStore(0, 0), true, nil
		}
	}
	body := wirefmt.AppendU64(nil, epoch)
	body = wirefmt.AppendU8(body, dirByte(dir))
	body = wirefmt.AppendU32(body, root)
	body = wirefmt.AppendU8(body, budget)
	body = wirefmt.AppendU8(body, k)
	body = wirefmt.AppendI64(body, int64(remaining))
	body = appendDistMap(body, other, w.NumVertices())
	resp, err := w.call(ctx, mtHalfPaths, body)
	if err != nil {
		return nil, false, err
	}
	r := wirefmt.NewReader(resp)
	cancelled := r.Bool()
	paths, derr := readStore(r)
	if derr == nil {
		derr = r.Close()
	}
	if derr != nil {
		return nil, false, &WorkerDownError{Addr: w.addr, Shard: w.shardIdx, Cause: derr}
	}
	return paths, cancelled, nil
}
