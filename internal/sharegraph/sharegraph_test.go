package sharegraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/msbfs"
	"repro/internal/testgraphs"
)

// fwdHalves builds the forward half queries of the paper's cluster
// C0 = {q0, q1, q2} (Example 4.2): roots v0, v2, v5, budget ⌈5/2⌉ = 3.
func paperC0Forward(t *testing.T) (*graph.Graph, []HalfQuery) {
	t.Helper()
	g := testgraphs.Paper()
	gr := g.Reverse()
	type qdef struct {
		s, tt graph.VertexID
		k     uint8
	}
	defs := []qdef{{0, 11, 5}, {2, 13, 5}, {5, 12, 5}}
	halves := make([]HalfQuery, len(defs))
	for i, d := range defs {
		halves[i] = HalfQuery{
			Root:   d.s,
			Budget: (d.k + 1) / 2,
			K:      d.k,
			Other:  msbfs.Single(gr, d.tt, d.k),
			Query:  i,
		}
	}
	return g, halves
}

// TestDetectPaperForward reproduces Fig. 6: detection on (G, C0) finds
// the dominating HC-s path queries q_{v1,2} and q_{v4,2}, with q_{v1,2}
// consumed by all three queries and q_{v4,2} by q0 and q1.
func TestDetectPaperForward(t *testing.T) {
	g, halves := paperC0Forward(t)
	psi := Detect(g, halves, Options{})
	if err := psi.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := psi.NumShared(); got != 2 {
		t.Fatalf("NumShared = %d, want 2 (q_{v1,2} and q_{v4,2})", got)
	}
	consumersOf := func(root graph.VertexID, budget uint8) []NodeID {
		for id := NodeID(0); int(id) < psi.NumNodes(); id++ {
			n := psi.Node(id)
			if !n.IsTerminal() && n.Root == root && n.Budget == budget {
				return psi.Consumers(id)
			}
		}
		t.Fatalf("shared node q_{v%d,%d} not found", root, budget)
		return nil
	}
	if got := consumersOf(1, 2); len(got) != 3 {
		t.Errorf("q_{v1,2} has %d consumers %v, want 3", len(got), got)
	}
	if got := consumersOf(4, 2); len(got) != 2 {
		t.Errorf("q_{v4,2} has %d consumers %v, want 2", len(got), got)
	}
}

// TestDetectPaperBackward checks the Fig. 5(b) scenario on Gr: q0 and q1
// arrive at v12 where q2's half q_{v12,2} is already rooted and reuse it
// directly (the paper derives q_{v12,1} from q_{v12,2}; splicing with a
// length cut-off realises the same sharing), and the two arrivals at v6
// spawn the shared node q_{v6,1}.
func TestDetectPaperBackward(t *testing.T) {
	g := testgraphs.Paper()
	gr := g.Reverse()
	type qdef struct {
		s, tt graph.VertexID
		k     uint8
	}
	defs := []qdef{{0, 11, 5}, {2, 13, 5}, {5, 12, 5}}
	halves := make([]HalfQuery, len(defs))
	for i, d := range defs {
		halves[i] = HalfQuery{
			Root:   d.tt,
			Budget: d.k / 2,
			K:      d.k,
			Other:  msbfs.Single(g, d.s, d.k),
			Query:  i,
		}
	}
	psi := Detect(gr, halves, Options{})
	if err := psi.Validate(); err != nil {
		t.Fatal(err)
	}
	// q2's terminal half (node 2, rooted v12) must provide for both q0
	// and q1's halves.
	cons := psi.Consumers(2)
	if len(cons) != 2 {
		t.Fatalf("q_{v12,2} has consumers %v, want the halves of q0 and q1", cons)
	}
	// One shared node: q_{v6,1}.
	if got := psi.NumShared(); got != 1 {
		t.Fatalf("NumShared = %d, want 1 (q_{v6,1})", got)
	}
	shared := psi.Node(NodeID(3))
	if shared.Root != 6 || shared.Budget != 1 {
		t.Errorf("shared node is %s, want q_{v6,1}", shared)
	}
}

// TestDetectSingleQuery yields a trivial Ψ with one terminal.
func TestDetectSingleQuery(t *testing.T) {
	g := testgraphs.Paper()
	gr := g.Reverse()
	halves := []HalfQuery{{Root: 0, Budget: 3, K: 5, Other: msbfs.Single(gr, 11, 5), Query: 0}}
	psi := Detect(g, halves, Options{})
	if psi.NumNodes() != 1 || psi.NumEdges() != 0 {
		t.Fatalf("got %d nodes %d edges, want 1/0", psi.NumNodes(), psi.NumEdges())
	}
}

// TestDetectDisabled returns only terminals.
func TestDetectDisabled(t *testing.T) {
	g, halves := paperC0Forward(t)
	psi := Detect(g, halves, Options{DisableSharing: true})
	if psi.NumNodes() != len(halves) || psi.NumEdges() != 0 {
		t.Fatalf("disabled sharing produced %d nodes %d edges", psi.NumNodes(), psi.NumEdges())
	}
}

// TestDetectIdenticalHalves groups identical (root, budget) halves under
// one shared node so the computation runs once.
func TestDetectIdenticalHalves(t *testing.T) {
	g := testgraphs.Paper()
	gr := g.Reverse()
	other := msbfs.Single(gr, 11, 5)
	halves := []HalfQuery{
		{Root: 0, Budget: 3, K: 5, Other: other, Query: 0},
		{Root: 0, Budget: 3, K: 5, Other: other, Query: 1},
	}
	psi := Detect(g, halves, Options{})
	if err := psi.Validate(); err != nil {
		t.Fatal(err)
	}
	found := false
	for id := NodeID(0); int(id) < psi.NumNodes(); id++ {
		n := psi.Node(id)
		if !n.IsTerminal() && n.Root == 0 && n.Budget == 3 {
			found = true
			if len(psi.Consumers(id)) != 2 {
				t.Errorf("shared root node has consumers %v, want both terminals", psi.Consumers(id))
			}
		}
	}
	if !found {
		t.Fatal("identical halves did not produce a shared node at the common root")
	}
	// Both terminals must splice the shared node at their own root.
	for _, id := range []NodeID{0, 1} {
		if _, ok := psi.SpliceAt(id, 0); !ok {
			t.Errorf("terminal %d lacks a root splice", id)
		}
	}
}

// TestDetectAcyclicRandom asserts that Ψ stays a DAG and validates on
// random graphs and batches (the wouldCycle guard's contract).
func TestDetectAcyclicRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 12 + rng.Intn(30)
		g := graph.GenRandom(n, 2.5, int64(trial))
		gr := g.Reverse()
		numQ := 2 + rng.Intn(6)
		halves := make([]HalfQuery, numQ)
		for i := range halves {
			s := graph.VertexID(rng.Intn(n))
			tt := graph.VertexID(rng.Intn(n))
			k := uint8(2 + rng.Intn(5))
			halves[i] = HalfQuery{
				Root:   s,
				Budget: (k + 1) / 2,
				K:      k,
				Other:  msbfs.Single(gr, tt, k),
				Query:  i,
			}
		}
		psi := Detect(g, halves, Options{})
		if err := psi.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := len(psi.TopoOrder()); got != psi.NumNodes() {
			t.Fatalf("trial %d: topo order covers %d of %d nodes", trial, got, psi.NumNodes())
		}
	}
}

// TestConstraintPropagation checks that terminals keep their own exact
// Lemma 3.1 constraint and that shared nodes receive positive slacks.
func TestConstraintPropagation(t *testing.T) {
	g, halves := paperC0Forward(t)
	psi := Detect(g, halves, Options{})
	for id := NodeID(0); int(id) < psi.NumNodes(); id++ {
		n := psi.Node(id)
		if n.IsTerminal() {
			found := false
			for _, c := range n.Constraints {
				if c.Other == halves[n.Query].Other && c.Slack == int16(halves[n.Query].K) {
					found = true
				}
			}
			if !found {
				t.Errorf("terminal %s lost its own constraint", n)
			}
		}
		for _, c := range n.Constraints {
			if c.Slack <= 0 {
				t.Errorf("node %s has non-positive slack %d", n, c.Slack)
			}
		}
		if !n.IsTerminal() && !n.Unbounded && len(n.Constraints) == 0 {
			t.Errorf("shared node %s has no constraints and is not unbounded", n)
		}
	}
}

// TestMaxConstraintsFallback forces the constraint cap and expects the
// affected nodes to fall back to budget-only pruning.
func TestMaxConstraintsFallback(t *testing.T) {
	g, halves := paperC0Forward(t)
	psi := Detect(g, halves, Options{MaxConstraints: 1})
	sawUnbounded := false
	for id := NodeID(0); int(id) < psi.NumNodes(); id++ {
		n := psi.Node(id)
		if n.Unbounded {
			sawUnbounded = true
			if !n.PruneOK(0, 99) {
				t.Error("unbounded node must accept every expansion")
			}
		}
	}
	if !sawUnbounded {
		t.Skip("cap of 1 did not trigger on this example; nothing to assert")
	}
}

// TestPruneOK exercises the constraint arithmetic directly.
func TestPruneOK(t *testing.T) {
	g := testgraphs.Line(6) // 0→1→…→5
	gr := g.Reverse()
	other := msbfs.Single(gr, 5, 5) // dist(v, 5) on the line
	n := &Node{Root: 0, Budget: 5, Query: 0, Constraints: []Constraint{{Other: other, Slack: 5}}}
	// depth + dist(w,5) < 5: vertex 1 at depth 0 → 0+4 < 5 ok.
	if !n.PruneOK(0, 1) {
		t.Error("PruneOK(0, v1) = false, want true")
	}
	// vertex 1 at depth 1 → 1+4 = 5, pruned.
	if n.PruneOK(1, 1) {
		t.Error("PruneOK(1, v1) = true, want false")
	}
	// Unreachable vertex never passes.
	un := &Node{Root: 0, Budget: 5, Constraints: []Constraint{{Other: msbfs.Single(gr, 0, 5), Slack: 5}}}
	if un.PruneOK(0, 5) {
		t.Error("vertex unreachable from the constraint endpoint must prune")
	}
}

// TestMinResidual checks the "+" ordering key.
func TestMinResidual(t *testing.T) {
	g := testgraphs.Line(6)
	gr := g.Reverse()
	o1 := msbfs.Single(gr, 5, 5)
	o2 := msbfs.Single(gr, 3, 5)
	n := &Node{Constraints: []Constraint{{Other: o1, Slack: 9}, {Other: o2, Slack: 9}}}
	if got := n.MinResidual(2); got != 1 { // dist(2,3)=1 < dist(2,5)=3
		t.Errorf("MinResidual(v2) = %d, want 1", got)
	}
	if got := n.MinResidual(5); got != 0 {
		t.Errorf("MinResidual(v5) = %d, want 0", got)
	}
}

// TestTopoOrderProvidersFirst asserts the enumeration precondition.
func TestTopoOrderProvidersFirst(t *testing.T) {
	g, halves := paperC0Forward(t)
	psi := Detect(g, halves, Options{})
	pos := make(map[NodeID]int, psi.NumNodes())
	for i, id := range psi.TopoOrder() {
		pos[id] = i
	}
	for id := NodeID(0); int(id) < psi.NumNodes(); id++ {
		for _, prov := range psi.Providers(id) {
			if pos[prov] >= pos[id] {
				t.Errorf("provider %s ordered after consumer %s", psi.Node(prov), psi.Node(id))
			}
		}
	}
}

// TestQuickDetectInvariants drives the detector's structural invariants
// through testing/quick: for arbitrary graphs and half-query batches, Ψ
// validates (DAG, splice/budget soundness) and every terminal's
// constraint survives propagation.
func TestQuickDetectInvariants(t *testing.T) {
	prop := func(seed int64, nRaw, qRaw uint8) bool {
		n := 10 + int(nRaw%40)
		numQ := 2 + int(qRaw%7)
		g := graph.GenRandom(n, 2.4, seed)
		gr := g.Reverse()
		rng := rand.New(rand.NewSource(seed + 9))
		halves := make([]HalfQuery, numQ)
		for i := range halves {
			k := uint8(2 + rng.Intn(5))
			halves[i] = HalfQuery{
				Root:   graph.VertexID(rng.Intn(n)),
				Budget: (k + 1) / 2,
				K:      k,
				Other:  msbfs.Single(gr, graph.VertexID(rng.Intn(n)), k),
				Query:  i,
			}
		}
		psi := Detect(g, halves, Options{})
		if err := psi.Validate(); err != nil {
			return false
		}
		for id := NodeID(0); int(id) < psi.NumNodes(); id++ {
			node := psi.Node(id)
			if node.IsTerminal() && !node.Unbounded && len(node.Constraints) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
