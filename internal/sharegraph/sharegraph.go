// Package sharegraph implements Phase 2 of the paper's common
// sub-structure detection (§IV-B): the query sharing graph Ψ (Def. 4.7)
// and the dominating HC-s path query detection of Algorithm 3.
//
// A node of Ψ is an HC-s path query q_{v,B}: enumerate every simple path
// starting at v with at most B hops (Def. 4.2; the paper's Search adds
// every prefix up to the budget, so B is inclusive). Terminal nodes are
// the forward/backward halves of the batch's HC-s-t queries; shared nodes
// are the dominating HC-s path queries discovered by the detector. An
// edge provider→consumer records that the consumer's enumeration, on
// reaching the provider's root vertex, splices the provider's cached
// paths instead of recursing (Lemma 4.1/4.2 computation sharing).
//
// Detection is the level-synchronous frontier simulation of Algorithm 3:
// budgets are consumed in lockstep, so every in-flight query arrives at a
// vertex of the level-r frontier with exactly r hops of budget left. When
// several queries arrive at the same vertex with the same remaining
// budget, their continuations coincide and a dominating HC-s path query
// is extracted (the paper's first observation); when a query arrives at a
// vertex where an HC-s path query with a larger budget is already rooted,
// it reuses that query's results directly with a length cut-off (the
// paper's second observation, Fig. 5(b)).
//
// Two deliberate deviations from the pseudocode, both documented in
// DESIGN.md:
//
//  1. The paper's MQ[v] may record a query rooted elsewhere (Alg. 3 line
//     15), whose materialised paths cannot be spliced at v. We instead
//     promote such a marker to a fresh shared node rooted at v the moment
//     a second query needs it, which keeps every reuse edge realisable.
//  2. Target-specific pruning (Lemma 3.1) cannot be baked into a shared
//     query that serves several targets. Every node therefore carries the
//     union of its consumers' (distance-map, slack) constraints; an
//     expansion survives if some consumer could still complete it. The
//     union is a performance filter only — over-produced partial paths
//     simply find no join partner — so sharing stays sound.
package sharegraph

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/msbfs"
)

// NodeID identifies a node of the sharing graph Ψ.
type NodeID = int32

// InvalidNode is a sentinel NodeID.
const InvalidNode NodeID = -1

// HalfQuery is one direction half of an HC-s-t query q(s,t,k): on G the
// forward half (Root=s, Budget=⌈k/2⌉), on Gr the backward half (Root=t,
// Budget=⌊k/2⌋). Other holds hop-bounded distances from the opposite
// endpoint on the opposite graph, i.e. the Lemma 3.1 pruning map.
type HalfQuery struct {
	Root   graph.VertexID
	Budget uint8
	K      uint8 // full hop constraint of the owning HC-s-t query
	Other  *msbfs.DistMap
	Query  int // batch position of the owning query
}

// Constraint is one consumer's Lemma 3.1 pruning condition translated
// into the frame of the node that carries it: expanding the node's DFS to
// vertex w at prefix length depth is useful to this consumer iff
// depth + dist(w, consumer's other endpoint) < Slack.
type Constraint struct {
	Other *msbfs.DistMap
	Slack int16
}

// Node is one HC-s path query of Ψ.
type Node struct {
	// Root and Budget define the HC-s path query q_{Root,Budget}.
	Root   graph.VertexID
	Budget uint8
	// Query is the batch position of the owning HC-s-t query for
	// terminal (half-query) nodes, or -1 for shared nodes.
	Query int
	// Constraints is the union of the consumers' pruning conditions
	// (deviation 2 above). Empty with Unbounded set means "prune by
	// budget only"; empty without Unbounded means no consumer can use
	// anything beyond the root.
	Constraints []Constraint
	// Unbounded disables constraint pruning (set when the union grew
	// past the cap, or when constraint propagation was disabled).
	Unbounded bool

	providers []NodeID
	consumers []NodeID
	// splice maps a vertex to the provider whose cache is spliced when
	// this node's enumeration steps onto that vertex.
	splice map[graph.VertexID]NodeID
}

// IsTerminal reports whether the node is the half of an HC-s-t query.
func (n *Node) IsTerminal() bool { return n.Query >= 0 }

// String renders the node in the paper's q_{v,k} notation.
func (n *Node) String() string {
	if n.IsTerminal() {
		return fmt.Sprintf("q_{v%d,%d}#%d", n.Root, n.Budget, n.Query)
	}
	return fmt.Sprintf("q_{v%d,%d}", n.Root, n.Budget)
}

// edge records provider→consumer with the splice vertex and the
// consumer's remaining budget on arrival, which constraint propagation
// needs to translate slacks between frames.
type edge struct {
	provider, consumer NodeID
	at                 graph.VertexID
	remaining          uint8
}

// Graph is the query sharing graph Ψ: a DAG over HC-s path queries.
type Graph struct {
	nodes []*Node
	edges []edge
}

// NumNodes returns the number of nodes in Ψ.
func (p *Graph) NumNodes() int { return len(p.nodes) }

// NumEdges returns the number of sharing edges in Ψ.
func (p *Graph) NumEdges() int { return len(p.edges) }

// NumShared returns the number of non-terminal (dominating HC-s path
// query) nodes, the count reported by the detection statistics.
func (p *Graph) NumShared() int {
	c := 0
	for _, n := range p.nodes {
		if !n.IsTerminal() {
			c++
		}
	}
	return c
}

// Node returns the node with the given id.
func (p *Graph) Node(id NodeID) *Node { return p.nodes[id] }

// Providers returns the ids of the nodes whose caches id consumes.
func (p *Graph) Providers(id NodeID) []NodeID { return p.nodes[id].providers }

// Consumers returns the ids of the nodes consuming id's cache.
func (p *Graph) Consumers(id NodeID) []NodeID { return p.nodes[id].consumers }

// SpliceAt returns the provider spliced when node id steps onto vertex v.
func (p *Graph) SpliceAt(id NodeID, v graph.VertexID) (NodeID, bool) {
	prov, ok := p.nodes[id].splice[v]
	return prov, ok
}

// addNode appends a node and returns its id.
func (p *Graph) addNode(n *Node) NodeID {
	id := NodeID(len(p.nodes))
	p.nodes = append(p.nodes, n)
	return id
}

// addEdge inserts provider→consumer. The caller guarantees acyclicity
// (fresh provider) or has checked with wouldCycle.
func (p *Graph) addEdge(provider, consumer NodeID, at graph.VertexID, remaining uint8) {
	p.edges = append(p.edges, edge{provider, consumer, at, remaining})
	pn, cn := p.nodes[provider], p.nodes[consumer]
	pn.consumers = append(pn.consumers, consumer)
	cn.providers = append(cn.providers, provider)
	if cn.splice == nil {
		cn.splice = make(map[graph.VertexID]NodeID, 4)
	}
	cn.splice[at] = provider
}

// wouldCycle reports whether adding provider→consumer would close a
// cycle, i.e. whether provider is reachable from consumer along existing
// provider→consumer edges (the consumer transitively supplies the
// provider). Ψ stays a DAG because every reuse insertion is guarded by
// this check; TestDetectAcyclic asserts the invariant.
func (p *Graph) wouldCycle(provider, consumer NodeID) bool {
	if provider == consumer {
		return true
	}
	seen := map[NodeID]bool{consumer: true}
	stack := []NodeID{consumer}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range p.nodes[v].consumers {
			if w == provider {
				return true
			}
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

// TopoOrder returns the node ids in a topological order of the
// provider→consumer edges: every provider precedes all of its consumers,
// so caches exist before they are spliced (Alg. 4 line 6).
func (p *Graph) TopoOrder() []NodeID {
	n := len(p.nodes)
	indeg := make([]int, n)
	for _, e := range p.edges {
		indeg[e.consumer]++
	}
	order := make([]NodeID, 0, n)
	queue := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range p.nodes[v].consumers {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		// Guarded against by wouldCycle; a failure here is a bug.
		panic("sharegraph: Ψ contains a cycle")
	}
	return order
}

// Validate checks the structural invariants of Ψ: acyclicity, edge
// bookkeeping symmetry, splice vertices matching provider roots, and
// reuse budget soundness (a provider's budget covers the consumer's
// remaining budget at the splice vertex).
func (p *Graph) Validate() error {
	n := len(p.nodes)
	for _, e := range p.edges {
		if int(e.provider) >= n || int(e.consumer) >= n {
			return fmt.Errorf("sharegraph: edge %v out of range", e)
		}
		if p.nodes[e.provider].Root != e.at {
			return fmt.Errorf("sharegraph: provider %s not rooted at splice vertex v%d",
				p.nodes[e.provider], e.at)
		}
		if p.nodes[e.provider].Budget < e.remaining {
			return fmt.Errorf("sharegraph: provider %s budget below consumer remaining %d",
				p.nodes[e.provider], e.remaining)
		}
		if got := p.nodes[e.consumer].splice[e.at]; got != e.provider {
			return fmt.Errorf("sharegraph: splice map of %s at v%d is %d, want %d",
				p.nodes[e.consumer], e.at, got, e.provider)
		}
	}
	// TopoOrder panics on cycles; run it defensively.
	defer func() { recover() }()
	if len(p.TopoOrder()) != n {
		return fmt.Errorf("sharegraph: cyclic Ψ")
	}
	return nil
}

// Options tunes the detector.
type Options struct {
	// MaxConstraints caps the per-node pruning-constraint union; a node
	// exceeding it falls back to budget-only pruning (sound, looser).
	// Zero means the default of 256 — generous because the enumerator
	// memoises the union per vertex, so a large union costs once per
	// (node, vertex) rather than once per expansion check.
	MaxConstraints int
	// DisableSharing turns the detector into a trivial pass that emits
	// one terminal node per half query and no sharing edges; the engines
	// use it for ablations.
	DisableSharing bool
}

func (o Options) maxConstraints() int {
	if o.MaxConstraints <= 0 {
		return 256
	}
	return o.MaxConstraints
}

// mqEntry is the MQ[v] record of Algorithm 3: the latest HC-s path query
// known at vertex v and the remaining budget it had on arrival.
type mqEntry struct {
	node   NodeID
	budget uint8
	// rooted reports whether node is rooted at v (sharable directly) or
	// is a single-arrival marker rooted elsewhere (needs promotion).
	rooted bool
}

// Detect runs Algorithm 3 for one clustered group of half queries on one
// direction's graph g and returns the sharing graph Ψ. The terminal node
// for halves[i] is NodeID(i).
func Detect(g *graph.Graph, halves []HalfQuery, opts Options) *Graph {
	psi := &Graph{}
	maxBudget := uint8(0)
	for _, h := range halves {
		node := &Node{Root: h.Root, Budget: h.Budget, Query: h.Query}
		node.Constraints = []Constraint{{Other: h.Other, Slack: int16(h.K)}}
		psi.addNode(node)
		if h.Budget > maxBudget {
			maxBudget = h.Budget
		}
	}
	if opts.DisableSharing || len(halves) < 2 {
		return psi
	}

	det := &detector{
		g:       g,
		psi:     psi,
		mq:      make(map[graph.VertexID]mqEntry),
		visited: make(map[visitKey]struct{}),
		arrive:  make([]map[graph.VertexID][]NodeID, maxBudget+1),
		maxCons: opts.maxConstraints(),
	}
	// Initial frontier: each half query arrives at its own root with its
	// full budget (Alg. 3 lines 2-4).
	for i, h := range halves {
		det.push(NodeID(i), h.Root, h.Budget)
	}
	// Levels descend: at level r every in-flight query has exactly r
	// hops of budget left (Alg. 3 lines 6-24). Level 0 arrivals carry
	// only the trivial single-vertex path and are not worth sharing.
	for r := maxBudget; r >= 1; r-- {
		det.processLevel(r)
	}
	propagateConstraints(psi, opts.maxConstraints())
	return psi
}

type visitKey struct {
	node NodeID
	v    graph.VertexID
}

type detector struct {
	g       *graph.Graph
	psi     *Graph
	mq      map[graph.VertexID]mqEntry
	visited map[visitKey]struct{}
	arrive  []map[graph.VertexID][]NodeID
	maxCons int
}

// push schedules node's frontier arrival at v with r budget left; each
// (node, vertex) pair is visited at most once, which bounds the whole
// detection at O(nodes·(|V|+|E|)) like the paper's Theorem 4.1.
func (d *detector) push(node NodeID, v graph.VertexID, r uint8) {
	key := visitKey{node, v}
	if _, dup := d.visited[key]; dup {
		return
	}
	d.visited[key] = struct{}{}
	if d.arrive[r] == nil {
		d.arrive[r] = make(map[graph.VertexID][]NodeID)
	}
	d.arrive[r][v] = append(d.arrive[r][v], node)
}

// processLevel handles every arrival with r budget remaining.
func (d *detector) processLevel(r uint8) {
	level := d.arrive[r]
	if len(level) == 0 {
		return
	}
	// Deterministic vertex order keeps Ψ reproducible across runs.
	verts := make([]graph.VertexID, 0, len(level))
	for v := range level {
		verts = append(verts, v)
	}
	sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })

	for _, v := range verts {
		nodes := dedupNodes(level[v])
		if mq, ok := d.mq[v]; ok {
			d.reuseAt(v, r, nodes, mq)
			continue
		}
		if len(nodes) == 1 {
			// Single arrival: remember it as MQ[v] (Alg. 3 lines 14-15)
			// and let its frontier continue.
			d.mq[v] = mqEntry{node: nodes[0], budget: r, rooted: d.psi.Node(nodes[0]).Root == v}
			d.expand(nodes[0], v, r)
			continue
		}
		// Multiple queries arrive with the same remaining budget: their
		// continuations coincide, so a dominating HC-s path query
		// q_{v,r} is extracted (Alg. 3 lines 16-19).
		u := d.psi.addNode(&Node{Root: v, Budget: r, Query: -1})
		for _, x := range nodes {
			d.psi.addEdge(u, x, v, r)
		}
		d.mq[v] = mqEntry{node: u, budget: r, rooted: true}
		d.expand(u, v, r)
	}
	d.arrive[r] = nil
}

// reuseAt lets arrivals at v consume the existing MQ[v] (Alg. 3 lines
// 20-24 seen from the arrival side). MQ was set at a level ≥ r, so its
// budget always covers the arrivals' remaining budget; splicing truncates
// cached paths to the consumer's remaining length at enumeration time.
func (d *detector) reuseAt(v graph.VertexID, r uint8, nodes []NodeID, mq mqEntry) {
	if !mq.rooted {
		// Promotion (deviation 1): the marker's paths are rooted
		// elsewhere and cannot be spliced at v, so materialise the
		// common continuation q_{v,mq.budget} as a fresh shared node;
		// the marker becomes its first consumer.
		u := d.psi.addNode(&Node{Root: v, Budget: mq.budget, Query: -1})
		d.psi.addEdge(u, mq.node, v, mq.budget)
		mq = mqEntry{node: u, budget: mq.budget, rooted: true}
		d.mq[v] = mq
		// The fresh node does not expand: the marker's frontier already
		// walked past v, and a second walk would only discover sharing
		// under constraints that are no longer level-synchronised.
	}
	for _, x := range nodes {
		if x == mq.node {
			continue // a node's own frontier looped back onto its root
		}
		if d.psi.wouldCycle(mq.node, x) {
			// The arrival transitively supplies MQ[v]; consuming it back
			// would deadlock the topological enumeration. Skip the reuse
			// and let the arrival keep exploring on its own.
			d.expand(x, v, r)
			continue
		}
		d.psi.addEdge(mq.node, x, v, r)
	}
}

// expand advances node's frontier one hop from v, applying the union
// pruning of the node's consumers ("v′ meets the hop constraint",
// Alg. 3 line 20).
func (d *detector) expand(node NodeID, v graph.VertexID, r uint8) {
	if r == 0 {
		return
	}
	n := d.psi.Node(node)
	depth := int(n.Budget) - int(r) // prefix length before the hop
	for _, w := range d.g.OutNeighbors(v) {
		if !n.PruneOK(depth, w) {
			continue
		}
		d.push(node, w, r-1)
	}
}

// PruneOK reports whether expanding the node's DFS to w at prefix length
// depth can still serve some consumer (Lemma 3.1 over the constraint
// union). It is a performance filter: a false return only skips partial
// paths that no consumer can complete.
func (n *Node) PruneOK(depth int, w graph.VertexID) bool {
	if n.Unbounded {
		return true
	}
	for _, c := range n.Constraints {
		dw := c.Other.Dist(w)
		if dw == msbfs.Unreachable {
			continue
		}
		if int16(depth)+int16(dw) < c.Slack {
			return true
		}
	}
	return false
}

// MinResidual returns the smallest distance from w to any consumer's
// opposite endpoint, the sort key of the optimised ("+") expansion order;
// unreachable vertices sort last.
func (n *Node) MinResidual(w graph.VertexID) uint8 {
	best := msbfs.Unreachable
	for _, c := range n.Constraints {
		if dw := c.Other.Dist(w); dw < best {
			best = dw
		}
	}
	return best
}

// propagateConstraints finalises each node's pruning-constraint union by
// flowing consumer constraints to providers in reverse topological order.
// A consumer's constraint (dm, s) reaches a provider spliced with
// remaining budget rem as (dm, s − (consumerBudget − rem)): depths inside
// the provider sit that many hops deeper in the consumer's frame.
//
// Detection already used provisional constraints to bound frontiers;
// this pass recomputes them from the final edge set so that enumeration
// never prunes a partial path some late-added consumer still needs.
func propagateConstraints(psi *Graph, maxCons int) {
	// Group incoming constraint contributions per provider.
	type contrib struct {
		consumer NodeID
		shift    int16
	}
	incoming := make([][]contrib, len(psi.nodes))
	for _, e := range psi.edges {
		shift := int16(psi.nodes[e.consumer].Budget) - int16(e.remaining)
		incoming[e.provider] = append(incoming[e.provider], contrib{e.consumer, shift})
	}
	order := psi.TopoOrder()
	// Reverse topological: consumers finalised before their providers.
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		n := psi.nodes[id]
		// Terminals keep their own exact constraint and add consumers'.
		set := make(map[constraintKey]int16)
		if n.IsTerminal() {
			for _, c := range n.Constraints {
				mergeConstraint(set, c.Other, c.Slack)
			}
		} else {
			n.Constraints = n.Constraints[:0]
		}
		unbounded := false
		for _, in := range incoming[id] {
			c := psi.nodes[in.consumer]
			if c.Unbounded {
				unbounded = true
				break
			}
			for _, cc := range c.Constraints {
				if s := cc.Slack - in.shift; s > 0 {
					mergeConstraint(set, cc.Other, s)
				}
			}
		}
		if unbounded || len(set) > maxCons {
			n.Unbounded = true
			if !n.IsTerminal() {
				n.Constraints = nil
			}
			continue
		}
		n.Unbounded = false
		n.Constraints = n.Constraints[:0]
		for k, s := range set {
			n.Constraints = append(n.Constraints, Constraint{Other: k.other, Slack: s})
		}
		// Deterministic order for reproducible pruning behaviour.
		sort.Slice(n.Constraints, func(a, b int) bool {
			ca, cb := n.Constraints[a], n.Constraints[b]
			if ca.Other != cb.Other {
				return fmt.Sprintf("%p", ca.Other) < fmt.Sprintf("%p", cb.Other)
			}
			return ca.Slack < cb.Slack
		})
	}
}

type constraintKey struct{ other *msbfs.DistMap }

// mergeConstraint keeps the loosest (largest) slack per distance map:
// the union semantics is "∃ consumer satisfied", and a larger slack
// subsumes a smaller one for the same map.
func mergeConstraint(set map[constraintKey]int16, other *msbfs.DistMap, slack int16) {
	k := constraintKey{other}
	if cur, ok := set[k]; !ok || slack > cur {
		set[k] = slack
	}
}

func dedupNodes(ids []NodeID) []NodeID {
	if len(ids) <= 1 {
		return ids
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}
