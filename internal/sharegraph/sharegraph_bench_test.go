package sharegraph

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/msbfs"
)

// benchHalves builds a clustered batch of half queries on a community
// graph: sources concentrated in a few communities so the detector
// actually finds dominating HC-s path queries.
func benchHalves(numQ int) (*graph.Graph, []HalfQuery) {
	g := graph.GenCommunityPowerLaw(10000, 150, 5, 0.97, 9)
	gr := g.Reverse()
	halves := make([]HalfQuery, numQ)
	for i := range halves {
		s := graph.VertexID((i % 8) * 10) // eight hot sources
		t := graph.VertexID(5000 + i)
		halves[i] = HalfQuery{
			Root:   s,
			Budget: 3,
			K:      6,
			Other:  msbfs.Single(gr, t, 6),
			Query:  i,
		}
	}
	return g, halves
}

// BenchmarkDetect measures Algorithm 3 itself (the IdentifySubquery
// phase of Fig. 9) across batch sizes.
func BenchmarkDetect(b *testing.B) {
	for _, numQ := range []int{16, 64, 256} {
		g, halves := benchHalves(numQ)
		b.Run(benchName(numQ), func(b *testing.B) {
			var shared int
			for i := 0; i < b.N; i++ {
				psi := Detect(g, halves, Options{})
				shared = psi.NumShared()
			}
			b.ReportMetric(float64(shared), "shared-nodes")
		})
	}
}

// BenchmarkTopoOrder measures the enumeration-order computation.
func BenchmarkTopoOrder(b *testing.B) {
	g, halves := benchHalves(256)
	psi := Detect(g, halves, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		psi.TopoOrder()
	}
}

func benchName(n int) string {
	switch n {
	case 16:
		return "16-queries"
	case 64:
		return "64-queries"
	default:
		return "256-queries"
	}
}
