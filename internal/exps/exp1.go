package exps

import (
	"fmt"
	"time"

	"repro/internal/batchenum"
	"repro/internal/graph"
	"repro/internal/msbfs"
	"repro/internal/pathenum"
	"repro/internal/query"
	"repro/internal/workload"
)

// Exp1Levels are the similarity levels of Fig. 7.
var Exp1Levels = []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9}

// Exp1Row is one (dataset, similarity) cell of Fig. 7: processing time
// of the five algorithms plus the achieved speedup of BatchEnum+ over
// BasicEnum+ and the theoretical limit 1/(1-µ).
type Exp1Row struct {
	Code       string
	TargetMu   float64
	MeasuredMu float64
	PathEnum   time.Duration
	Basic      time.Duration
	BasicPlus  time.Duration
	Batch      time.Duration
	BatchPlus  time.Duration
	Speedup    float64
	Limit      float64
}

// Exp1 varies query similarity from 0% to 90% and measures all five
// algorithms (Fig. 7).
func Exp1(cfg Config) ([]Exp1Row, error) {
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	var rows []Exp1Row
	for _, spec := range specs {
		d := cfg.build(spec)
		lo, hi := cfg.kRange()
		for _, level := range Exp1Levels {
			qs, mu, err := workload.WithSimilarity(d.g, d.gr, workload.SimilarityConfig{
				Config:   workload.Config{N: cfg.querySetSize(), KMin: lo, KMax: hi, Seed: cfg.Seed},
				TargetMu: level,
			})
			if err != nil {
				return nil, err
			}
			row := Exp1Row{Code: spec.Code, TargetMu: level, MeasuredMu: mu}
			row.PathEnum = timePathEnum(d, qs)
			for _, alg := range []batchenum.Algorithm{
				batchenum.Basic, batchenum.BasicPlus, batchenum.Batch, batchenum.BatchPlus,
			} {
				elapsed, _, err := timeRunBest(d, qs, batchenum.Options{Algorithm: alg, Gamma: cfg.gamma()}, 3)
				if err != nil {
					return nil, err
				}
				switch alg {
				case batchenum.Basic:
					row.Basic = elapsed
				case batchenum.BasicPlus:
					row.BasicPlus = elapsed
				case batchenum.Batch:
					row.Batch = elapsed
				case batchenum.BatchPlus:
					row.BatchPlus = elapsed
				}
			}
			if row.BatchPlus > 0 {
				row.Speedup = float64(row.BasicPlus) / float64(row.BatchPlus)
			}
			if mu < 1 {
				row.Limit = 1 / (1 - mu)
			}
			rows = append(rows, row)
		}
	}
	printExp1(cfg, rows)
	return rows, nil
}

// timePathEnum measures the paper's PathEnum baseline: each query fully
// independent, including its own two single-source BFS index passes
// (the original implementation shares nothing across queries).
func timePathEnum(d builtDataset, qs []query.Query) time.Duration {
	t0 := time.Now()
	for i := range qs {
		q := qs[i]
		q.ID = i
		fwd := msbfs.Single(d.g, q.S, q.K)
		bwd := msbfs.Single(d.gr, q.T, q.K)
		pathenum.Enumerate(d.g, d.gr, q, fwd, bwd, pathenum.Options{}, func([]graph.VertexID) {})
	}
	return time.Since(t0)
}

func printExp1(cfg Config, rows []Exp1Row) {
	w := cfg.out()
	header(w, "Fig. 7 (Exp-1): processing time and speedup vs query similarity")
	fmt.Fprintf(w, "%-4s %5s %5s %12s %12s %12s %12s %12s %8s %6s\n",
		"Code", "µ*", "µ", "PathEnum", "Basic", "Basic+", "Batch", "Batch+", "speedup", "limit")
	for _, r := range rows {
		fmt.Fprintf(w, "%-4s %5.2f %5.2f %12s %12s %12s %12s %12s %7.2fx %5.1fx\n",
			r.Code, r.TargetMu, r.MeasuredMu,
			fmtDur(r.PathEnum), fmtDur(r.Basic), fmtDur(r.BasicPlus),
			fmtDur(r.Batch), fmtDur(r.BatchPlus), r.Speedup, r.Limit)
	}
}
