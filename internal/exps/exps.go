// Package exps contains the drivers that regenerate every table and
// figure of the paper's evaluation (§V) on the synthetic stand-in
// datasets: Table I statistics, the Fig. 3(c) enumeration-vs-
// materialisation gap, and experiments Exp-1 through Exp-7. Each driver
// returns typed rows and has a printer producing the same columns the
// paper reports; cmd/experiments and the root benchmark harness are thin
// wrappers around this package. EXPERIMENTS.md records paper-vs-measured
// for every driver.
package exps

import (
	"fmt"
	"io"
	"time"

	"repro/internal/batchenum"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/workload"
)

// Config controls a driver run. The zero value reproduces the paper's
// defaults at the stand-in scale.
type Config struct {
	// Datasets filters by Table I code; empty means all twelve.
	Datasets []string
	// Scale multiplies every stand-in's vertex count (default 1.0).
	// Exp-5 applies its own sampling on top.
	Scale float64
	// QuerySetSize is |Q| (paper default 100).
	QuerySetSize int
	// KMin and KMax bound the hop constraints (paper default 4..7).
	KMin, KMax int
	// Gamma is the clustering threshold γ (paper default 0.5).
	Gamma float64
	// Seed drives all workload generation.
	Seed int64
	// MaxKSPExpansions bounds the Exp-6 baselines; a run that exhausts
	// it is reported as OT like the paper's 10,000-second cut-off.
	// Zero means 10 million.
	MaxKSPExpansions int64
	// Out receives the printed tables; nil discards them.
	Out io.Writer
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1.0
	}
	return c.Scale
}

func (c Config) querySetSize() int {
	if c.QuerySetSize <= 0 {
		return 100
	}
	return c.QuerySetSize
}

func (c Config) kRange() (int, int) {
	lo, hi := c.KMin, c.KMax
	if lo <= 0 {
		lo = 4
	}
	if hi < lo {
		hi = 7
	}
	return lo, hi
}

func (c Config) gamma() float64 {
	if c.Gamma == 0 {
		return 0.5
	}
	return c.Gamma
}

func (c Config) kspBudget() int64 {
	if c.MaxKSPExpansions <= 0 {
		return 10_000_000
	}
	return c.MaxKSPExpansions
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

func (c Config) specs() ([]datasets.Spec, error) {
	return datasets.Select(c.Datasets)
}

// builtDataset caches one generated stand-in with its reverse graph.
type builtDataset struct {
	spec datasets.Spec
	g    *graph.Graph
	gr   *graph.Graph
}

func (c Config) build(spec datasets.Spec) builtDataset {
	g := spec.Build(c.scale())
	return builtDataset{spec: spec, g: g, gr: g.Reverse()}
}

// defaultWorkload draws the paper's standard query set on d.
func (c Config) defaultWorkload(d builtDataset) ([]query.Query, error) {
	lo, hi := c.kRange()
	return workload.Random(d.g, workload.Config{
		N: c.querySetSize(), KMin: lo, KMax: hi, Seed: c.Seed,
	})
}

// timeRun measures one engine over one batch with a counting sink and
// returns the elapsed wall-clock time, the result count, and the stats.
func timeRun(d builtDataset, qs []query.Query, opts batchenum.Options) (time.Duration, int64, *batchenum.Stats, error) {
	sink := query.NewCountSink(len(qs))
	t0 := time.Now()
	st, err := batchenum.Run(d.g, d.gr, qs, opts, sink)
	return time.Since(t0), sink.Total(), st, err
}

// timeRunBest repeats timeRun and keeps the fastest measurement, the
// standard defence against scheduler noise for the millisecond-scale
// runs of the comparison experiments.
func timeRunBest(d builtDataset, qs []query.Query, opts batchenum.Options, reps int) (time.Duration, *batchenum.Stats, error) {
	var best time.Duration
	var bestStats *batchenum.Stats
	for r := 0; r < reps; r++ {
		elapsed, _, st, err := timeRun(d, qs, opts)
		if err != nil {
			return 0, nil, err
		}
		if bestStats == nil || elapsed < best {
			best, bestStats = elapsed, st
		}
	}
	return best, bestStats, nil
}

// runCount runs the headline engine (BatchEnum+) with a counting sink,
// the cheapest way to size result sets.
func runCount(d builtDataset, qs []query.Query, sink query.Sink) (*batchenum.Stats, error) {
	return batchenum.Run(d.g, d.gr, qs, batchenum.Options{Algorithm: batchenum.BatchPlus}, sink)
}

// fmtDur renders a duration with ms precision for table cells.
func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}

// header prints an underlined section heading.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n", title)
	for range title {
		fmt.Fprint(w, "-")
	}
	fmt.Fprintln(w)
}
