package exps

import (
	"fmt"
	"time"

	"repro/internal/batchenum"
	"repro/internal/workload"
)

// Exp2Sizes are the query-set sizes of Fig. 8.
var Exp2Sizes = []int{100, 200, 300, 400, 500}

// Exp2Row is one (dataset, |Q|) cell of Fig. 8.
type Exp2Row struct {
	Code      string
	Size      int
	PathEnum  time.Duration
	Basic     time.Duration
	BasicPlus time.Duration
	Batch     time.Duration
	BatchPlus time.Duration
}

// Exp2 varies the query set size and measures all five algorithms
// (Fig. 8). Sizes scale with the configured query-set size so that
// reduced-scale runs keep the 1:5 sweep shape.
func Exp2(cfg Config) ([]Exp2Row, error) {
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	base := cfg.querySetSize()
	var rows []Exp2Row
	for _, spec := range specs {
		d := cfg.build(spec)
		lo, hi := cfg.kRange()
		for i, paperSize := range Exp2Sizes {
			size := base * (i + 1)
			qs, err := workload.Random(d.g, workload.Config{
				N: size, KMin: lo, KMax: hi, Seed: cfg.Seed + int64(i),
			})
			if err != nil {
				return nil, err
			}
			row := Exp2Row{Code: spec.Code, Size: size}
			_ = paperSize
			row.PathEnum = timePathEnum(d, qs)
			for _, alg := range []batchenum.Algorithm{
				batchenum.Basic, batchenum.BasicPlus, batchenum.Batch, batchenum.BatchPlus,
			} {
				elapsed, _, err := timeRunBest(d, qs, batchenum.Options{Algorithm: alg, Gamma: cfg.gamma()}, 2)
				if err != nil {
					return nil, err
				}
				switch alg {
				case batchenum.Basic:
					row.Basic = elapsed
				case batchenum.BasicPlus:
					row.BasicPlus = elapsed
				case batchenum.Batch:
					row.Batch = elapsed
				case batchenum.BatchPlus:
					row.BatchPlus = elapsed
				}
			}
			rows = append(rows, row)
		}
	}
	w := cfg.out()
	header(w, "Fig. 8 (Exp-2): processing time vs query set size")
	fmt.Fprintf(w, "%-4s %6s %12s %12s %12s %12s %12s\n",
		"Code", "|Q|", "PathEnum", "Basic", "Basic+", "Batch", "Batch+")
	for _, r := range rows {
		fmt.Fprintf(w, "%-4s %6d %12s %12s %12s %12s %12s\n",
			r.Code, r.Size, fmtDur(r.PathEnum), fmtDur(r.Basic), fmtDur(r.BasicPlus),
			fmtDur(r.Batch), fmtDur(r.BatchPlus))
	}
	return rows, nil
}
