package exps

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/msbfs"
	"repro/internal/pathenum"
	"repro/internal/pathjoin"
	"repro/internal/query"
	"repro/internal/workload"
)

// Table1Row pairs the stand-in's realised statistics with the paper's
// Table I columns for the original dataset.
type Table1Row struct {
	Code, Name string
	// Stand-in statistics.
	V, E int
	Davg float64
	Dmax int
	// Original (paper) statistics.
	PaperV, PaperE int64
	PaperDavg      float64
	PaperDmax      int64
}

// Table1 generates every selected stand-in and reports its statistics
// next to the original's.
func Table1(cfg Config) ([]Table1Row, error) {
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	rows := make([]Table1Row, 0, len(specs))
	for _, spec := range specs {
		d := cfg.build(spec)
		st := graph.ComputeStats(d.g)
		rows = append(rows, Table1Row{
			Code: spec.Code, Name: spec.Name,
			V: st.NumVertices, E: st.NumEdges, Davg: st.AvgDegree, Dmax: st.MaxDegree,
			PaperV: spec.PaperV, PaperE: spec.PaperE,
			PaperDavg: spec.PaperDavg, PaperDmax: spec.PaperDmax,
		})
	}
	w := cfg.out()
	header(w, "Table I: dataset statistics (stand-in | paper original)")
	fmt.Fprintf(w, "%-4s %-14s %10s %10s %7s %8s | %12s %14s %8s %9s\n",
		"Code", "Name", "|V|", "|E|", "davg", "dmax", "paper |V|", "paper |E|", "davg", "dmax")
	for _, r := range rows {
		fmt.Fprintf(w, "%-4s %-14s %10d %10d %7.1f %8d | %12d %14d %8.1f %9d\n",
			r.Code, r.Name, r.V, r.E, r.Davg, r.Dmax,
			r.PaperV, r.PaperE, r.PaperDavg, r.PaperDmax)
	}
	return rows, nil
}

// Fig3cRow reports, for one dataset, the average per-query time of full
// PathEnum enumeration versus retrieving the already-materialised
// HC-s-t paths and scanning them once — the gap motivating computation
// sharing (Fig. 3(c) shows roughly three orders of magnitude).
type Fig3cRow struct {
	Code        string
	Queries     int
	Enumerate   time.Duration // avg per query
	Materialize time.Duration // avg per query
	Ratio       float64       // Enumerate / Materialize
}

// Fig3c measures the enumeration-vs-materialisation gap. The paper uses
// 1000 random queries per dataset; the stand-in default is the
// configured query-set size.
func Fig3c(cfg Config) ([]Fig3cRow, error) {
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	var rows []Fig3cRow
	for _, spec := range specs {
		d := cfg.build(spec)
		qs, err := cfg.defaultWorkload(d)
		if err != nil {
			return nil, err
		}
		var enumTotal, matTotal time.Duration
		for i := range qs {
			qs[i].ID = i
			q := qs[i]
			store := pathjoin.NewStore(64, 512)
			fwd := msbfs.Single(d.g, q.S, q.K)
			bwd := msbfs.Single(d.gr, q.T, q.K)
			t0 := time.Now()
			pathenum.Enumerate(d.g, d.gr, q, fwd, bwd, pathenum.Options{}, func(p []graph.VertexID) {
				store.Add(p)
			})
			enumTotal += time.Since(t0)
			t1 := time.Now()
			pathenum.Materialized(store)
			matTotal += time.Since(t1)
		}
		n := time.Duration(len(qs))
		row := Fig3cRow{
			Code: spec.Code, Queries: len(qs),
			Enumerate: enumTotal / n, Materialize: matTotal / n,
		}
		if row.Materialize > 0 {
			row.Ratio = float64(row.Enumerate) / float64(row.Materialize)
		}
		rows = append(rows, row)
	}
	w := cfg.out()
	header(w, "Fig. 3(c): per-query enumeration vs materialised-scan time")
	fmt.Fprintf(w, "%-4s %8s %14s %14s %10s\n", "Code", "queries", "enumerate", "scan", "ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%-4s %8d %14s %14s %9.0fx\n",
			r.Code, r.Queries, fmtDur(r.Enumerate), fmtDur(r.Materialize), r.Ratio)
	}
	return rows, nil
}

// Exp7Row reports the average number of HC-s-t paths per query at one
// hop constraint (Fig. 13: growth is exponential in k).
type Exp7Row struct {
	Code     string
	K        int
	AvgPaths float64
}

// Exp7 sweeps k from 3 to 7 with fixed-k random workloads and reports
// the average result-set size per query.
func Exp7(cfg Config) ([]Exp7Row, error) {
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	var rows []Exp7Row
	for _, spec := range specs {
		d := cfg.build(spec)
		for k := 3; k <= 7; k++ {
			qs, err := workload.RandomFixedK(d.g, cfg.querySetSize(), k, cfg.Seed+int64(k))
			if err != nil {
				return nil, err
			}
			sink := query.NewCountSink(len(qs))
			if _, err := runCount(d, qs, sink); err != nil {
				return nil, err
			}
			rows = append(rows, Exp7Row{
				Code: spec.Code, K: k,
				AvgPaths: float64(sink.Total()) / float64(len(qs)),
			})
		}
	}
	w := cfg.out()
	header(w, "Fig. 13 (Exp-7): average number of HC-s-t paths per query vs k")
	fmt.Fprintf(w, "%-4s %4s %16s\n", "Code", "k", "avg paths")
	for _, r := range rows {
		fmt.Fprintf(w, "%-4s %4d %16.1f\n", r.Code, r.K, r.AvgPaths)
	}
	return rows, nil
}
