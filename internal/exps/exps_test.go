package exps

import (
	"bytes"
	"strings"
	"testing"
)

// smallCfg keeps driver smoke tests fast: two small datasets, tiny
// workloads, low hop constraints.
func smallCfg(out *bytes.Buffer) Config {
	return Config{
		Datasets:         []string{"EP", "BK"},
		Scale:            0.15,
		QuerySetSize:     10,
		KMin:             3,
		KMax:             4,
		Seed:             1,
		MaxKSPExpansions: 100_000,
		Out:              out,
	}
}

func TestTable1(t *testing.T) {
	var out bytes.Buffer
	rows, err := Table1(smallCfg(&out))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.V == 0 || r.E == 0 || r.PaperV == 0 {
			t.Errorf("incomplete row %+v", r)
		}
	}
	if !strings.Contains(out.String(), "Table I") {
		t.Error("printer produced no Table I heading")
	}
}

func TestFig3c(t *testing.T) {
	var out bytes.Buffer
	rows, err := Fig3c(smallCfg(&out))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Enumerate <= 0 {
			t.Errorf("%s: zero enumeration time", r.Code)
		}
		if r.Ratio < 1 {
			t.Errorf("%s: scanning materialised paths slower than enumerating (ratio %.1f)", r.Code, r.Ratio)
		}
	}
}

func TestExp1(t *testing.T) {
	var out bytes.Buffer
	cfg := smallCfg(&out)
	cfg.Datasets = []string{"EP"}
	rows, err := Exp1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Exp1Levels) {
		t.Fatalf("got %d rows, want %d", len(rows), len(Exp1Levels))
	}
	for _, r := range rows {
		if r.BatchPlus <= 0 || r.BasicPlus <= 0 || r.PathEnum <= 0 {
			t.Errorf("µ*=%.1f: missing timings %+v", r.TargetMu, r)
		}
	}
	// Measured µ must rise across the sweep — unless the reduced-scale
	// graph is so small that random queries already overlap near-fully
	// (k-hop balls covering the whole graph), which leaves no headroom.
	if rows[0].MeasuredMu < 0.85 && rows[len(rows)-1].MeasuredMu <= rows[0].MeasuredMu {
		t.Errorf("similarity sweep not increasing: first µ=%.2f last µ=%.2f",
			rows[0].MeasuredMu, rows[len(rows)-1].MeasuredMu)
	}
}

func TestExp2(t *testing.T) {
	var out bytes.Buffer
	cfg := smallCfg(&out)
	cfg.Datasets = []string{"EP"}
	cfg.QuerySetSize = 5
	rows, err := Exp2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Exp2Sizes) {
		t.Fatalf("got %d rows, want %d", len(rows), len(Exp2Sizes))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Size <= rows[i-1].Size {
			t.Errorf("sizes not increasing: %d after %d", rows[i].Size, rows[i-1].Size)
		}
	}
}

func TestExp3(t *testing.T) {
	var out bytes.Buffer
	cfg := smallCfg(&out)
	rows, err := Exp3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Total() <= 0 {
			t.Errorf("%s: empty decomposition", r.Code)
		}
		if r.BuildIndex <= 0 || r.Enumeration <= 0 {
			t.Errorf("%s: missing phases %+v", r.Code, r)
		}
	}
}

func TestExp4(t *testing.T) {
	var out bytes.Buffer
	cfg := smallCfg(&out)
	cfg.Datasets = []string{"EP"}
	rows, err := Exp4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Exp4Gammas) {
		t.Fatalf("got %d rows, want %d", len(rows), len(Exp4Gammas))
	}
	// Larger γ merges less: group counts must be non-decreasing in γ.
	for i := 1; i < len(rows); i++ {
		if rows[i].Groups < rows[i-1].Groups {
			t.Errorf("γ=%.1f has %d groups, fewer than γ=%.1f's %d",
				rows[i].Gamma, rows[i].Groups, rows[i-1].Gamma, rows[i-1].Groups)
		}
	}
}

func TestExp5(t *testing.T) {
	var out bytes.Buffer
	cfg := smallCfg(&out)
	cfg.Datasets = []string{"EP"} // override the large default subjects
	rows, err := Exp5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Exp5Fractions) {
		t.Fatalf("got %d rows, want %d", len(rows), len(Exp5Fractions))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].V < rows[i-1].V {
			t.Errorf("vertex counts not increasing across fractions: %d after %d",
				rows[i].V, rows[i-1].V)
		}
	}
}

func TestExp6(t *testing.T) {
	var out bytes.Buffer
	cfg := smallCfg(&out)
	cfg.Datasets = []string{"EP"}
	cfg.QuerySetSize = 5
	rows, err := Exp6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.BatchPlus <= 0 {
		t.Error("missing BatchEnum+ timing")
	}
	if !r.DkSPOT && r.DkSP <= 0 {
		t.Error("missing DkSP timing")
	}
}

func TestExp7(t *testing.T) {
	var out bytes.Buffer
	cfg := smallCfg(&out)
	cfg.Datasets = []string{"EP"}
	cfg.QuerySetSize = 5
	rows, err := Exp7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // k = 3..7
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	// Path counts must not shrink as k grows (same seed per k differs,
	// so allow equality but catch gross inversions at the extremes).
	if rows[4].AvgPaths < rows[0].AvgPaths {
		t.Errorf("avg paths at k=7 (%.1f) below k=3 (%.1f)", rows[4].AvgPaths, rows[0].AvgPaths)
	}
}

func TestBadDatasetCode(t *testing.T) {
	cfg := Config{Datasets: []string{"nope"}}
	if _, err := Table1(cfg); err == nil {
		t.Error("Table1 accepted a bad code")
	}
	if _, err := Exp1(cfg); err == nil {
		t.Error("Exp1 accepted a bad code")
	}
}
