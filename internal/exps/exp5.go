package exps

import (
	"fmt"
	"time"

	"repro/internal/batchenum"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/ksp"
	"repro/internal/query"
	"repro/internal/workload"
)

// Exp5Fractions are the vertex sample fractions of Fig. 11.
var Exp5Fractions = []float64{0.2, 0.4, 0.6, 0.8, 1.0}

// Exp5Row is one (dataset, fraction) cell of Fig. 11.
type Exp5Row struct {
	Code      string
	Fraction  float64
	V, E      int
	Basic     time.Duration
	BasicPlus time.Duration
	Batch     time.Duration
	BatchPlus time.Duration
}

// Exp5 samples the two largest stand-ins from 20% to 100% of their
// vertices and measures the four engines (Fig. 11). When cfg.Datasets is
// set it overrides the subjects.
func Exp5(cfg Config) ([]Exp5Row, error) {
	subjects := cfg.Datasets
	if len(subjects) == 0 {
		subjects = datasets.Largest()
	}
	specs, err := datasets.Select(subjects)
	if err != nil {
		return nil, err
	}
	var rows []Exp5Row
	for _, spec := range specs {
		full := cfg.build(spec)
		lo, hi := cfg.kRange()
		for _, frac := range Exp5Fractions {
			g := full.g
			if frac < 1.0 {
				g, _ = graph.SampleVertices(full.g, frac, cfg.Seed)
			}
			d := builtDataset{spec: spec, g: g, gr: g.Reverse()}
			qs, err := workload.Random(d.g, workload.Config{
				N: cfg.querySetSize(), KMin: lo, KMax: hi, Seed: cfg.Seed,
			})
			if err != nil {
				// Heavily sampled graphs can lose reachability; report
				// the row as empty rather than fail the sweep.
				rows = append(rows, Exp5Row{Code: spec.Code, Fraction: frac,
					V: d.g.NumVertices(), E: d.g.NumEdges()})
				continue
			}
			row := Exp5Row{Code: spec.Code, Fraction: frac, V: d.g.NumVertices(), E: d.g.NumEdges()}
			for _, alg := range []batchenum.Algorithm{
				batchenum.Basic, batchenum.BasicPlus, batchenum.Batch, batchenum.BatchPlus,
			} {
				elapsed, _, _, err := timeRun(d, qs, batchenum.Options{Algorithm: alg, Gamma: cfg.gamma()})
				if err != nil {
					return nil, err
				}
				switch alg {
				case batchenum.Basic:
					row.Basic = elapsed
				case batchenum.BasicPlus:
					row.BasicPlus = elapsed
				case batchenum.Batch:
					row.Batch = elapsed
				case batchenum.BatchPlus:
					row.BatchPlus = elapsed
				}
			}
			rows = append(rows, row)
		}
	}
	w := cfg.out()
	header(w, "Fig. 11 (Exp-5): processing time vs graph size (vertex sampling)")
	fmt.Fprintf(w, "%-4s %5s %9s %10s %12s %12s %12s %12s\n",
		"Code", "frac", "|V|", "|E|", "Basic", "Basic+", "Batch", "Batch+")
	for _, r := range rows {
		fmt.Fprintf(w, "%-4s %5.0f%% %9d %10d %12s %12s %12s %12s\n",
			r.Code, r.Fraction*100, r.V, r.E,
			fmtDur(r.Basic), fmtDur(r.BasicPlus), fmtDur(r.Batch), fmtDur(r.BatchPlus))
	}
	return rows, nil
}

// Exp6Row compares the adapted KSP baselines against BatchEnum+ on one
// dataset (Fig. 12). OT marks a baseline that exhausted its work budget.
type Exp6Row struct {
	Code       string
	DkSP       time.Duration
	DkSPOT     bool
	OnePass    time.Duration
	OnePassOT  bool
	BatchPlus  time.Duration
	TotalPaths int64
}

// Exp6 measures DkSP, OnePass and BatchEnum+ over a random workload
// with k from 3 to 7 (Fig. 12: the KSP adaptations lose by over two
// orders of magnitude because they lack hop-aware pruning).
func Exp6(cfg Config) ([]Exp6Row, error) {
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	// The paper draws k from 3 to 7 for this experiment; an explicit
	// cfg range overrides (the smoke tests and benches shrink it).
	lo, hi := 3, 7
	if cfg.KMin > 0 {
		lo, hi = cfg.kRange()
	}
	var rows []Exp6Row
	for _, spec := range specs {
		d := cfg.build(spec)
		qs, err := workload.Random(d.g, workload.Config{
			N: cfg.querySetSize(), KMin: lo, KMax: hi, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		row := Exp6Row{Code: spec.Code}

		budget := &ksp.Budget{MaxExpansions: cfg.kspBudget()}
		t0 := time.Now()
		for _, q := range qs {
			if !ksp.DkSP(d.g, q, budget, func([]graph.VertexID) {}) {
				row.DkSPOT = true
				break
			}
		}
		row.DkSP = time.Since(t0)

		budget = &ksp.Budget{MaxExpansions: cfg.kspBudget()}
		t1 := time.Now()
		for _, q := range qs {
			if !ksp.OnePass(d.g, d.gr, q, budget, func([]graph.VertexID) {}) {
				row.OnePassOT = true
				break
			}
		}
		row.OnePass = time.Since(t1)

		sink := query.NewCountSink(len(qs))
		t2 := time.Now()
		if _, err := batchenum.Run(d.g, d.gr, qs, batchenum.Options{
			Algorithm: batchenum.BatchPlus, Gamma: cfg.gamma(),
		}, sink); err != nil {
			return nil, err
		}
		row.BatchPlus = time.Since(t2)
		row.TotalPaths = sink.Total()
		rows = append(rows, row)
	}
	w := cfg.out()
	header(w, "Fig. 12 (Exp-6): adapted k-shortest-path algorithms vs BatchEnum+")
	fmt.Fprintf(w, "%-4s %14s %14s %14s %12s\n", "Code", "DkSP", "OnePass", "BatchEnum+", "paths")
	for _, r := range rows {
		dk, op := fmtDur(r.DkSP), fmtDur(r.OnePass)
		if r.DkSPOT {
			dk = "OT(" + dk + ")"
		}
		if r.OnePassOT {
			op = "OT(" + op + ")"
		}
		fmt.Fprintf(w, "%-4s %14s %14s %14s %12d\n", r.Code, dk, op, fmtDur(r.BatchPlus), r.TotalPaths)
	}
	return rows, nil
}
