package exps

import (
	"fmt"
	"time"

	"repro/internal/batchenum"
	"repro/internal/timing"
	"repro/internal/workload"
)

// Exp3Row is one dataset's BatchEnum+ phase decomposition (Fig. 9).
type Exp3Row struct {
	Code        string
	BuildIndex  time.Duration
	Cluster     time.Duration
	Identify    time.Duration
	Enumeration time.Duration
}

// Total returns the summed processing time.
func (r Exp3Row) Total() time.Duration {
	return r.BuildIndex + r.Cluster + r.Identify + r.Enumeration
}

// Exp3 decomposes BatchEnum+ processing time into its four sub-steps on
// a similarity-mixed workload (sharing must actually occur for the
// decomposition to be informative, as in the paper's default setup).
func Exp3(cfg Config) ([]Exp3Row, error) {
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	var rows []Exp3Row
	for _, spec := range specs {
		d := cfg.build(spec)
		lo, hi := cfg.kRange()
		qs, _, err := workload.WithSimilarity(d.g, d.gr, workload.SimilarityConfig{
			Config:   workload.Config{N: cfg.querySetSize(), KMin: lo, KMax: hi, Seed: cfg.Seed},
			TargetMu: 0.5,
		})
		if err != nil {
			return nil, err
		}
		_, _, st, err := timeRun(d, qs, batchenum.Options{Algorithm: batchenum.BatchPlus, Gamma: cfg.gamma()})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Exp3Row{
			Code:        spec.Code,
			BuildIndex:  st.Phases.Get(timing.BuildIndex),
			Cluster:     st.Phases.Get(timing.ClusterQuery),
			Identify:    st.Phases.Get(timing.IdentifySubquery),
			Enumeration: st.Phases.Get(timing.Enumeration),
		})
	}
	w := cfg.out()
	header(w, "Fig. 9 (Exp-3): BatchEnum+ processing time decomposition")
	fmt.Fprintf(w, "%-4s %14s %14s %16s %14s %14s\n",
		"Code", "BuildIndex", "ClusterQuery", "IdentifySubquery", "Enumeration", "total")
	for _, r := range rows {
		fmt.Fprintf(w, "%-4s %14s %14s %16s %14s %14s\n",
			r.Code, fmtDur(r.BuildIndex), fmtDur(r.Cluster), fmtDur(r.Identify),
			fmtDur(r.Enumeration), fmtDur(r.Total()))
	}
	return rows, nil
}

// Exp4Gammas are the clustering thresholds of Fig. 10.
var Exp4Gammas = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// Exp4Row is one (dataset, γ) cell of Fig. 10.
type Exp4Row struct {
	Code      string
	Gamma     float64
	BatchPlus time.Duration
	Groups    int
}

// Exp4 sweeps the clustering threshold γ and measures BatchEnum+ on a
// similarity-mixed workload (Fig. 10: a turning point appears because
// small γ over-merges dissimilar queries while large γ under-shares).
func Exp4(cfg Config) ([]Exp4Row, error) {
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	var rows []Exp4Row
	for _, spec := range specs {
		d := cfg.build(spec)
		lo, hi := cfg.kRange()
		qs, _, err := workload.WithSimilarity(d.g, d.gr, workload.SimilarityConfig{
			Config:   workload.Config{N: cfg.querySetSize(), KMin: lo, KMax: hi, Seed: cfg.Seed},
			TargetMu: 0.5,
		})
		if err != nil {
			return nil, err
		}
		for _, gamma := range Exp4Gammas {
			elapsed, _, st, err := timeRun(d, qs, batchenum.Options{Algorithm: batchenum.BatchPlus, Gamma: gamma})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Exp4Row{Code: spec.Code, Gamma: gamma, BatchPlus: elapsed, Groups: st.NumGroups})
		}
	}
	w := cfg.out()
	header(w, "Fig. 10 (Exp-4): BatchEnum+ processing time vs clustering threshold γ")
	fmt.Fprintf(w, "%-4s %5s %12s %8s\n", "Code", "γ", "time", "groups")
	for _, r := range rows {
		fmt.Fprintf(w, "%-4s %5.1f %12s %8d\n", r.Code, r.Gamma, fmtDur(r.BatchPlus), r.Groups)
	}
	return rows, nil
}
