package cluster

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/hcindex"
	"repro/internal/query"
	"repro/internal/testgraphs"
)

func paperSetup(t *testing.T) (*hcindex.Index, []query.Query) {
	t.Helper()
	g := testgraphs.Paper()
	gr := g.Reverse()
	var qs []query.Query
	for _, spec := range testgraphs.PaperQueries() {
		qs = append(qs, query.Query{S: spec[0], T: spec[1], K: uint8(spec[2])})
	}
	qs, err := query.Batch(g, qs)
	if err != nil {
		t.Fatal(err)
	}
	return hcindex.Build(g, gr, qs), qs
}

func TestIntersectionSize(t *testing.T) {
	cases := []struct {
		a, b []graph.VertexID
		want int
	}{
		{nil, nil, 0},
		{[]graph.VertexID{1, 2, 3}, nil, 0},
		{[]graph.VertexID{1, 2, 3}, []graph.VertexID{2, 3, 4}, 2},
		{[]graph.VertexID{1, 2, 3}, []graph.VertexID{4, 5}, 0},
		{[]graph.VertexID{1, 2, 3}, []graph.VertexID{1, 2, 3}, 3},
	}
	for i, c := range cases {
		if got := IntersectionSize(c.a, c.b); got != c.want {
			t.Errorf("case %d: got %d want %d", i, got, c.want)
		}
	}
}

func TestPaperSimilarities(t *testing.T) {
	idx, _ := paperSetup(t)
	// Example 4.1: µ(q3, q4) = 1.
	if got := Similarity(idx, 3, 4); math.Abs(got-1) > 1e-9 {
		t.Errorf("µ(q3,q4) = %f, want 1", got)
	}
	// Fig. 4: δ({q0},{q1}) = µ(q0,q1) = 0.93 (2 d.p.).
	if got := Similarity(idx, 0, 1); math.Abs(got-0.93) > 0.005 {
		t.Errorf("µ(q0,q1) = %f, want ≈0.93", got)
	}
	// µ(q2,q4) = 0: their backward reach sets are disjoint.
	if got := Similarity(idx, 2, 4); got != 0 {
		t.Errorf("µ(q2,q4) = %f, want 0", got)
	}
	// Cross-group average similarity must stay below γ = 0.8 (the paper
	// reports δ({q0,q1,q2},{q3,q4}) = 0.64, our reconstruction ≈ 0.60).
	var delta float64
	for _, i := range []int{0, 1, 2} {
		for _, j := range []int{3, 4} {
			delta += Similarity(idx, i, j)
		}
	}
	delta /= 6
	if delta >= 0.8 {
		t.Errorf("δ({q0,q1,q2},{q3,q4}) = %f, want < 0.8", delta)
	}
}

func TestSimilarityProperties(t *testing.T) {
	idx, qs := paperSetup(t)
	n := len(qs)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			mu := Similarity(idx, i, j)
			if mu < 0 || mu > 1 {
				t.Fatalf("µ(q%d,q%d) = %f out of [0,1]", i, j, mu)
			}
			if rev := Similarity(idx, j, i); math.Abs(mu-rev) > 1e-12 {
				t.Fatalf("µ not symmetric: %f vs %f", mu, rev)
			}
		}
	}
}

func TestSimilarityDisjointQueries(t *testing.T) {
	// Two separate components: similarity must be exactly 0.
	g := graph.FromEdges(6, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2},
		{Src: 3, Dst: 4}, {Src: 4, Dst: 5},
	})
	gr := g.Reverse()
	qs, _ := query.Batch(g, []query.Query{
		{S: 0, T: 2, K: 3},
		{S: 3, T: 5, K: 3},
	})
	idx := hcindex.Build(g, gr, qs)
	if got := Similarity(idx, 0, 1); got != 0 {
		t.Fatalf("disjoint queries µ = %f, want 0", got)
	}
}

func TestClusterPaperExample(t *testing.T) {
	// Example 4.1 / Fig. 4 with γ = 0.8: groups {q0,q1,q2} and {q3,q4}.
	idx, qs := paperSetup(t)
	c := ClusterQueries(idx, qs, 0.8)
	if c.NumGroups() != 2 {
		t.Fatalf("got %d groups %v, want 2", c.NumGroups(), c.Groups)
	}
	var flat [][]int
	for _, grp := range c.Groups {
		s := append([]int(nil), grp...)
		sort.Ints(s)
		flat = append(flat, s)
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i][0] < flat[j][0] })
	want0, want1 := []int{0, 1, 2}, []int{3, 4}
	if !equalInts(flat[0], want0) || !equalInts(flat[1], want1) {
		t.Fatalf("groups = %v, want [%v %v]", flat, want0, want1)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestClusterGammaOne(t *testing.T) {
	// γ = 1 means µ must strictly exceed 1, which it never does: every
	// query stays alone (the "no sharing" end of Exp-4's sweep).
	idx, qs := paperSetup(t)
	c := ClusterQueries(idx, qs, 1.0)
	if c.NumGroups() != len(qs) {
		t.Fatalf("γ=1: %d groups, want %d singletons", c.NumGroups(), len(qs))
	}
}

func TestClusterGammaZeroMergesReachable(t *testing.T) {
	// γ = 0 merges everything with any positive similarity. On the paper
	// graph all five queries overlap somewhere, so few groups remain.
	idx, qs := paperSetup(t)
	c := ClusterQueries(idx, qs, 0.0)
	if c.NumGroups() >= len(qs) {
		t.Fatalf("γ=0 produced no merges: %v", c.Groups)
	}
}

func TestClusteringIsPartition(t *testing.T) {
	f := func(seed int64, gammaRaw uint8) bool {
		g := graph.GenRandom(40, 3, seed)
		gr := g.Reverse()
		var qs []query.Query
		for i := 0; i < 12; i++ {
			s := graph.VertexID((i * 3) % 40)
			tt := graph.VertexID((i*7 + 11) % 40)
			if s == tt {
				tt = (tt + 1) % 40
			}
			qs = append(qs, query.Query{S: s, T: tt, K: uint8(i%5 + 2)})
		}
		qs, err := query.Batch(g, qs)
		if err != nil {
			return false
		}
		idx := hcindex.Build(g, gr, qs)
		gamma := float64(gammaRaw%11) / 10
		c := ClusterQueries(idx, qs, gamma)
		seen := map[int]bool{}
		for _, grp := range c.Groups {
			if len(grp) == 0 {
				return false
			}
			for _, q := range grp {
				if seen[q] {
					return false // duplicate membership
				}
				seen[q] = true
			}
		}
		return len(seen) == len(qs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMergedPairsExceedGamma(t *testing.T) {
	// Any group of ≥2 queries must have been merged through δ > γ at
	// some step; with group-average linkage this implies at least one
	// member pair has µ > γ. (Weaker than the full invariant but a good
	// sanity net.)
	idx, qs := paperSetup(t)
	gamma := 0.8
	c := ClusterQueries(idx, qs, gamma)
	for _, grp := range c.Groups {
		if len(grp) < 2 {
			continue
		}
		found := false
		for i := 0; i < len(grp) && !found; i++ {
			for j := i + 1; j < len(grp) && !found; j++ {
				if Similarity(idx, grp[i], grp[j]) > gamma {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("group %v has no pair with µ > γ", grp)
		}
	}
}

func TestAvgPairSimilarity(t *testing.T) {
	idx, qs := paperSetup(t)
	mu := AvgPairSimilarity(idx, qs)
	if mu <= 0 || mu > 1 {
		t.Fatalf("µ_Q = %f out of (0,1]", mu)
	}
	if got := AvgPairSimilarity(idx, qs[:1]); got != 0 {
		t.Fatalf("single query µ_Q = %f, want 0", got)
	}
	if got := AvgPairSimilarity(idx, nil); got != 0 {
		t.Fatalf("empty µ_Q = %f, want 0", got)
	}
}

func TestClusterEmptyBatch(t *testing.T) {
	c := ClusterQueries(nil, nil, 0.5)
	if c.NumGroups() != 0 {
		t.Fatal("empty batch should produce no groups")
	}
}
