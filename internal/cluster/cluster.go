// Package cluster implements Phase 1 of the paper's common sub-structure
// detection (§IV-B): HC-s-t path query similarity (Def. 4.5) computed
// from the hop-constrained neighbour sets Γ/Γr (Def. 4.4, reused from
// index construction at no extra traversal cost), and the agglomerative
// hierarchical clustering of Algorithm 2 with group-average linkage
// (Def. 4.6) and merge threshold γ.
package cluster

import (
	"repro/internal/graph"
	"repro/internal/hcindex"
	"repro/internal/msbfs"
	"repro/internal/query"
)

// Similarity computes µ(qA, qB) of Def. 4.5 from the two queries'
// hop-constrained neighbour sets.
//
// The paper's footnote for empty intersections is internally
// inconsistent (it can yield µ > 1), so we use the coherent
// harmonic-mean form with the same value on all non-degenerate inputs:
//
//	o1 = |Γ(qA) ∩ Γ(qB)|  / min(|Γ(qA)|, |Γ(qB)|)
//	o2 = |Γr(qA) ∩ Γr(qB)| / min(|Γr(qA)|, |Γr(qB)|)
//	µ  = 2·o1·o2 / (o1 + o2),  µ = 0 when either intersection is empty.
//
// This preserves the three properties claimed in the paper: µ ∈ [0,1];
// µ = 1 when P(qA) ⊆ P(qB); µ = 0 on disjoint reach sets. On the paper's
// running example it reproduces the published values (µ(q0,q1) = 0.93,
// µ(q3,q4) = 1).
func Similarity(idx *hcindex.Index, a, b int) float64 {
	o1 := overlap(idx.Gamma(a), idx.Gamma(b),
		idx.DistMapFor(a, hcindex.Forward), idx.DistMapFor(b, hcindex.Forward))
	o2 := overlap(idx.GammaR(a), idx.GammaR(b),
		idx.DistMapFor(a, hcindex.Backward), idx.DistMapFor(b, hcindex.Backward))
	if o1 == 0 || o2 == 0 {
		return 0
	}
	return 2 * o1 * o2 / (o1 + o2)
}

// maxOverlapProbes caps the per-pair cost of the overlap ratio. The
// exact sorted-merge intersection is O(|Γ_A|+|Γ_B|) per pair and turns
// ClusterQuery into the dominant phase on graphs whose k-hop balls are
// large relative to |V| — the opposite of the paper's Fig. 9, where
// ClusterQuery is negligible. Probing a stride sample of the smaller
// set against the other's O(1) distance array estimates the same ratio
// at bounded cost; sets at or below the cap are still measured exactly.
const maxOverlapProbes = 64

// overlap returns (an estimate of) |A∩B| / min(|A|,|B|). a and b are
// the sorted Γ vertex lists; dma and dmb their distance maps, whose
// Contains probe answers membership in O(1).
func overlap(a, b []graph.VertexID, dma, dmb *msbfs.DistMap) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	// Iterate the smaller set, probe the other's map: the ratio against
	// min(|A|,|B|) is then simply the sample hit rate.
	small, other := a, dmb
	if len(b) < len(a) {
		small, other = b, dma
	}
	step := (len(small) + maxOverlapProbes - 1) / maxOverlapProbes
	probes, hits := 0, 0
	for i := 0; i < len(small); i += step {
		probes++
		if other.Contains(small[i]) {
			hits++
		}
	}
	return float64(hits) / float64(probes)
}

// IntersectionSize counts common elements of two sorted vertex slices by
// a linear merge.
func IntersectionSize(a, b []graph.VertexID) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Clustering is the result of Algorithm 2: a partition of the batch into
// groups of similar queries. Groups hold positions into the original
// query slice.
type Clustering struct {
	Groups [][]int
}

// NumGroups returns the number of clusters.
func (c *Clustering) NumGroups() int { return len(c.Groups) }

// AvgPairSimilarity computes µ_Q of Exp-1: the average similarity over
// all ordered pairs of distinct queries in the batch.
func AvgPairSimilarity(idx *hcindex.Index, qs []query.Query) float64 {
	n := len(qs)
	if n < 2 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += Similarity(idx, i, j)
		}
	}
	return sum / float64(n*(n-1)/2)
}

// ClusterQueries runs Algorithm 2: start from singleton groups and
// repeatedly merge the pair of groups with the highest group-average
// similarity δ (Def. 4.6) while it exceeds γ.
//
// Group-average linkage admits the Lance–Williams update
// δ(A∪B, C) = (|A|·δ(A,C) + |B|·δ(B,C)) / (|A|+|B|), so the merge loop
// runs in O(|Q|²·merges) over a precomputed pairwise µ matrix instead of
// recomputing δ from scratch each round; the result is identical to the
// literal Algorithm 2.
func ClusterQueries(idx *hcindex.Index, qs []query.Query, gamma float64) *Clustering {
	n := len(qs)
	if n == 0 {
		return &Clustering{}
	}
	// Pairwise µ matrix doubles as the live δ matrix between groups.
	delta := make([][]float64, n)
	for i := range delta {
		delta[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			mu := Similarity(idx, i, j)
			delta[i][j], delta[j][i] = mu, mu
		}
	}
	groups := make([][]int, n)
	alive := make([]bool, n)
	for i := 0; i < n; i++ {
		groups[i] = []int{i}
		alive[i] = true
	}
	// Cached row maxima: best[i] is i's most similar alive partner, so
	// the global best pair is the maximum over rows — O(n) per round
	// instead of the O(n²) rescan of the literal Algorithm 2, with rows
	// recomputed only when a merge invalidates them. The merge sequence
	// (and so the result) is identical.
	best := make([]int, n)
	rowBest := func(i int) int {
		b, bv := -1, 0.0
		for j := 0; j < n; j++ {
			if j == i || !alive[j] {
				continue
			}
			if delta[i][j] > bv {
				bv, b = delta[i][j], j
			}
		}
		return b
	}
	for i := 0; i < n; i++ {
		best[i] = rowBest(i)
	}
	for {
		bi, bv := -1, gamma
		for i := 0; i < n; i++ {
			if !alive[i] || best[i] < 0 {
				continue
			}
			if d := delta[i][best[i]]; d > bv {
				bv, bi = d, i
			}
		}
		if bi < 0 {
			break
		}
		bj := best[bi]
		// Merge bj into bi with the Lance–Williams group-average update.
		szI, szJ := float64(len(groups[bi])), float64(len(groups[bj]))
		for c := 0; c < n; c++ {
			if !alive[c] || c == bi || c == bj {
				continue
			}
			d := (szI*delta[bi][c] + szJ*delta[bj][c]) / (szI + szJ)
			delta[bi][c], delta[c][bi] = d, d
		}
		groups[bi] = append(groups[bi], groups[bj]...)
		groups[bj] = nil
		alive[bj] = false
		best[bi] = rowBest(bi)
		for c := 0; c < n; c++ {
			if alive[c] && c != bi && (best[c] == bi || best[c] == bj) {
				best[c] = rowBest(c)
			}
		}
	}
	out := &Clustering{}
	for i := 0; i < n; i++ {
		if alive[i] {
			out.Groups = append(out.Groups, groups[i])
		}
	}
	return out
}
