package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/hcindex"
	"repro/internal/msbfs"
	"repro/internal/query"
)

// clusterFixture caches an index over a 200-query batch, the Algorithm 2
// input size of the paper's larger sweeps. Queries are sampled inline
// (the workload package sits above cluster in the import graph).
type clusterFixture struct {
	idx *hcindex.Index
	qs  []query.Query
}

var fixture *clusterFixture

func getFixture(b *testing.B) *clusterFixture {
	b.Helper()
	if fixture == nil {
		g := graph.GenCommunityPowerLaw(8000, 150, 5, 0.97, 4)
		gr := g.Reverse()
		rng := rand.New(rand.NewSource(2))
		var qs []query.Query
		for len(qs) < 200 {
			s := graph.VertexID(rng.Intn(g.NumVertices()))
			k := uint8(4 + rng.Intn(3))
			reach := msbfs.Single(g, s, k).Visited()
			if len(reach) < 2 {
				continue
			}
			t := reach[rng.Intn(len(reach))]
			if t == s {
				continue
			}
			qs = append(qs, query.Query{S: s, T: t, K: k})
		}
		qs, err := query.Batch(g, qs)
		if err != nil {
			b.Fatal(err)
		}
		fixture = &clusterFixture{idx: hcindex.Build(g, gr, qs), qs: qs}
	}
	return fixture
}

// BenchmarkSimilarityMatrix measures the pairwise µ computation, the
// quadratic part of ClusterQuery.
func BenchmarkSimilarityMatrix(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AvgPairSimilarity(f.idx, f.qs)
	}
}

// BenchmarkClusterQueries measures Algorithm 2 end to end at the
// paper's default γ.
func BenchmarkClusterQueries(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	var groups int
	for i := 0; i < b.N; i++ {
		groups = ClusterQueries(f.idx, f.qs, 0.5).NumGroups()
	}
	b.ReportMetric(float64(groups), "groups")
}

// BenchmarkIntersectionSize measures the sorted-merge primitive under
// the similarity computation.
func BenchmarkIntersectionSize(b *testing.B) {
	va := make([]graph.VertexID, 4096)
	vb := make([]graph.VertexID, 4096)
	for i := range va {
		va[i] = graph.VertexID(2 * i)
		vb[i] = graph.VertexID(3 * i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectionSize(va, vb)
	}
}
