package pathjoin

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/testgraphs"
)

// posMod is a non-negative modulo for quick-generated (possibly
// negative) seeds.
func posMod(x, m int) int { return ((x % m) + m) % m }

func TestStoreBasics(t *testing.T) {
	s := NewStore(4, 16)
	if s.Len() != 0 {
		t.Fatal("new store not empty")
	}
	i0 := s.Add([]graph.VertexID{1, 2, 3})
	i1 := s.Add([]graph.VertexID{7})
	i2 := s.AddConcat([]graph.VertexID{4, 5}, []graph.VertexID{6})
	if i0 != 0 || i1 != 1 || i2 != 2 {
		t.Fatalf("indices %d %d %d", i0, i1, i2)
	}
	if got := s.Path(0); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Path(0) = %v", got)
	}
	if got := s.Path(1); len(got) != 1 || got[0] != 7 {
		t.Fatalf("Path(1) = %v", got)
	}
	if got := s.Path(2); len(got) != 3 || got[0] != 4 || got[2] != 6 {
		t.Fatalf("Path(2) = %v", got)
	}
	if s.NumVertices() != 7 {
		t.Fatalf("NumVertices = %d", s.NumVertices())
	}
	count := 0
	s.Each(func(p []graph.VertexID) { count++ })
	if count != 3 {
		t.Fatalf("Each visited %d", count)
	}
	s.Reset()
	if s.Len() != 0 || s.NumVertices() != 0 {
		t.Fatal("Reset did not empty store")
	}
}

func TestZeroValueStore(t *testing.T) {
	var s Store
	s.Add([]graph.VertexID{1, 2})
	if s.Len() != 1 || len(s.Path(0)) != 2 {
		t.Fatal("zero-value store broken")
	}
	var s2 Store
	s2.AddConcat([]graph.VertexID{1}, []graph.VertexID{2})
	if s2.Len() != 1 || len(s2.Path(0)) != 2 {
		t.Fatal("zero-value AddConcat broken")
	}
}

func TestHashIndexProbe(t *testing.T) {
	s := NewStore(4, 16)
	s.Add([]graph.VertexID{9, 5})    // ends 5, len 1
	s.Add([]graph.VertexID{9, 7, 5}) // ends 5, len 2
	s.Add([]graph.VertexID{9, 5, 7}) // ends 7, len 2
	h := BuildHashIndex(s)
	var got []string
	h.Probe(5, 1, func(p []graph.VertexID) { got = append(got, fmt.Sprint(p)) })
	if len(got) != 1 || got[0] != "[9 5]" {
		t.Fatalf("Probe(5,1) = %v", got)
	}
	got = nil
	h.Probe(5, 2, func(p []graph.VertexID) { got = append(got, fmt.Sprint(p)) })
	if len(got) != 1 || got[0] != "[9 7 5]" {
		t.Fatalf("Probe(5,2) = %v", got)
	}
	h.Probe(42, 1, func(p []graph.VertexID) { t.Fatal("phantom probe hit") })
}

func TestDisjointExceptMeet(t *testing.T) {
	cases := []struct {
		pf, pb []graph.VertexID
		want   bool
	}{
		{[]graph.VertexID{0, 1, 5}, []graph.VertexID{9, 3, 5}, true},
		{[]graph.VertexID{0, 1, 5}, []graph.VertexID{9, 1, 5}, false}, // shares 1
		{[]graph.VertexID{0, 5}, []graph.VertexID{9, 5}, true},
		{[]graph.VertexID{0, 5}, []graph.VertexID{0, 5}, false}, // s == t
		{[]graph.VertexID{5}, []graph.VertexID{5}, true},        // both trivial
	}
	for i, c := range cases {
		if got := DisjointExceptMeet(c.pf, c.pb); got != c.want {
			t.Errorf("case %d: DisjointExceptMeet(%v,%v) = %v, want %v", i, c.pf, c.pb, got, c.want)
		}
	}
}

func TestIsSimple(t *testing.T) {
	if !IsSimple(nil) || !IsSimple([]graph.VertexID{3}) {
		t.Fatal("trivial paths should be simple")
	}
	if !IsSimple([]graph.VertexID{1, 2, 3}) {
		t.Fatal("[1 2 3] simple")
	}
	if IsSimple([]graph.VertexID{1, 2, 1}) {
		t.Fatal("[1 2 1] not simple")
	}
	long := make([]graph.VertexID, 30)
	for i := range long {
		long[i] = graph.VertexID(i)
	}
	if !IsSimple(long) {
		t.Fatal("long distinct path should be simple")
	}
	long[29] = 0
	if IsSimple(long) {
		t.Fatal("long path with dup should not be simple")
	}
}

func TestContainsVertex(t *testing.T) {
	p := []graph.VertexID{4, 8, 2}
	if !ContainsVertex(p, 8) || ContainsVertex(p, 9) {
		t.Fatal("ContainsVertex wrong")
	}
}

// collectPartials enumerates all simple partial paths from root with at
// most budget hops (unpruned), mimicking the Search procedure's P set.
func collectPartials(g *graph.Graph, root graph.VertexID, budget uint8) *Store {
	s := NewStore(32, 128)
	path := []graph.VertexID{root}
	on := map[graph.VertexID]bool{root: true}
	var rec func()
	rec = func() {
		s.Add(path)
		if uint8(len(path)-1) >= budget {
			return
		}
		for _, w := range g.OutNeighbors(path[len(path)-1]) {
			if on[w] {
				continue
			}
			path = append(path, w)
			on[w] = true
			rec()
			on[w] = false
			path = path[:len(path)-1]
		}
	}
	rec()
	return s
}

// bruteNaive enumerates simple s-t paths of length in [1,k] directly.
func bruteNaive(g *graph.Graph, s, t graph.VertexID, k uint8) []string {
	var out []string
	path := []graph.VertexID{s}
	on := map[graph.VertexID]bool{s: true}
	var rec func()
	rec = func() {
		v := path[len(path)-1]
		if v == t && len(path) > 1 {
			out = append(out, fmt.Sprint(path))
			return
		}
		if uint8(len(path)-1) >= k {
			return
		}
		for _, w := range g.OutNeighbors(v) {
			if on[w] {
				continue
			}
			path = append(path, w)
			on[w] = true
			rec()
			on[w] = false
			path = path[:len(path)-1]
		}
	}
	rec()
	sort.Strings(out)
	return out
}

func joinAll(g, gr *graph.Graph, s, t graph.VertexID, k uint8, backHeavy bool) []string {
	fb, bb := (k+1)/2, k/2
	if backHeavy {
		fb, bb = k/2, (k+1)/2
	}
	fwd := collectPartials(g, s, fb)
	bwd := collectPartials(gr, t, bb)
	var out []string
	JoinHalves(fwd, bwd, k, backHeavy, func(p []graph.VertexID) {
		out = append(out, fmt.Sprint(p))
	})
	sort.Strings(out)
	return out
}

func TestJoinHalvesPaperQ0(t *testing.T) {
	g := testgraphs.Paper()
	gr := g.Reverse()
	got := joinAll(g, gr, 0, 11, 5, false)
	want := []string{
		fmt.Sprint([]graph.VertexID{0, 1, 7, 10, 12, 11}),
		fmt.Sprint([]graph.VertexID{0, 4, 9, 15, 6, 11}),
		fmt.Sprint([]graph.VertexID{0, 4, 9, 3, 6, 11}),
	}
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("q0 join = %v\nwant %v", got, want)
	}
}

// TestJoinUniqueSplit is the core ⊕ property: against the brute-force
// oracle, on random graphs, for every k and both heaviness modes, the
// join produces each path exactly once — no misses, no duplicates.
func TestJoinUniqueSplit(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.GenRandom(25, 3, seed)
		gr := g.Reverse()
		for k := uint8(1); k <= 6; k++ {
			for st := 0; st < 4; st++ {
				s := graph.VertexID(posMod(int(seed)+st, 25))
				tt := graph.VertexID(posMod(int(seed)+st*7+13, 25))
				if s == tt {
					continue
				}
				want := bruteNaive(g, s, tt, k)
				for _, heavy := range []bool{false, true} {
					got := joinAll(g, gr, s, tt, k, heavy)
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Logf("seed=%d k=%d s=%d t=%d heavy=%v\ngot  %v\nwant %v",
							seed, k, s, tt, heavy, got, want)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinLengthOne(t *testing.T) {
	// single edge s→t must be found via the trivial backward path
	g := graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 1}})
	gr := g.Reverse()
	got := joinAll(g, gr, 0, 1, 3, false)
	if len(got) != 1 {
		t.Fatalf("got %v, want exactly the edge path", got)
	}
}

func TestJoinNoPath(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}})
	gr := g.Reverse()
	if got := joinAll(g, gr, 0, 2, 4, false); len(got) != 0 {
		t.Fatalf("unreachable target produced %v", got)
	}
}

func TestJoinFiltersNonSimple(t *testing.T) {
	// s→a→m and (backwards) t→a→m share vertex a: concatenation would
	// revisit a, so the only valid result is the longer detour if any.
	g := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 1}, {Src: 1, Dst: 3},
	})
	gr := g.Reverse()
	got := joinAll(g, gr, 0, 3, 4, false)
	want := bruteNaive(g, 0, 3, 4)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for _, p := range got {
		if p == fmt.Sprint([]graph.VertexID{0, 1, 2, 1, 3}) {
			t.Fatal("emitted non-simple path")
		}
	}
}

func TestJoinCompleteDAGCount(t *testing.T) {
	// On the complete DAG with n vertices, #paths(0→n-1, ≤k hops) =
	// sum_{h=1..k} C(n-2, h-1).
	n := 8
	g := testgraphs.CompleteDAG(n)
	gr := g.Reverse()
	choose := func(n, r int) int64 {
		if r < 0 || r > n {
			return 0
		}
		c := int64(1)
		for i := 0; i < r; i++ {
			c = c * int64(n-i) / int64(i+1)
		}
		return c
	}
	for k := uint8(1); k <= 7; k++ {
		var want int64
		for h := 1; h <= int(k); h++ {
			want += choose(n-2, h-1)
		}
		got := int64(len(joinAll(g, gr, 0, graph.VertexID(n-1), k, false)))
		if got != want {
			t.Fatalf("k=%d: got %d paths, want %d", k, got, want)
		}
	}
}
