package pathjoin

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// synthHalves builds forward/backward stores shaped like a real
// bidirectional search: many partial paths of mixed lengths meeting at
// a few hundred distinct vertices.
func synthHalves(numPaths, meetVerts int, seed int64) (*Store, *Store) {
	rng := rand.New(rand.NewSource(seed))
	fwd := NewStore(numPaths, numPaths*4)
	bwd := NewStore(numPaths, numPaths*4)
	for i := 0; i < numPaths; i++ {
		meet := graph.VertexID(rng.Intn(meetVerts))
		fp := []graph.VertexID{1000, graph.VertexID(2000 + rng.Intn(500)), meet}
		bp := []graph.VertexID{1001, graph.VertexID(3000 + rng.Intn(500)), meet}
		fwd.Add(fp[:1+rng.Intn(3)])
		fwd.Add(fp)
		bwd.Add(bp[:1+rng.Intn(3)])
		bwd.Add(bp)
	}
	return fwd, bwd
}

// BenchmarkJoinHalves measures the ⊕ concatenation with the
// unique-split rule, the hot loop after every bidirectional search.
func BenchmarkJoinHalves(b *testing.B) {
	fwd, bwd := synthHalves(2000, 200, 1)
	b.ResetTimer()
	count := 0
	for i := 0; i < b.N; i++ {
		count = 0
		JoinHalves(fwd, bwd, 5, false, func([]graph.VertexID) { count++ })
	}
	b.ReportMetric(float64(count), "joined-paths")
}

// BenchmarkStoreAdd measures arena append throughput.
func BenchmarkStoreAdd(b *testing.B) {
	p := []graph.VertexID{1, 2, 3, 4, 5}
	s := NewStore(1024, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Len() > 1<<20 {
			s.Reset()
		}
		s.Add(p)
	}
}

// BenchmarkBuildHashIndex measures the probe-side index build.
func BenchmarkBuildHashIndex(b *testing.B) {
	_, bwd := synthHalves(5000, 300, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildHashIndex(bwd)
	}
}

// BenchmarkIsSimple compares the short-path quadratic check against the
// hashed fallback boundary.
func BenchmarkIsSimple(b *testing.B) {
	short := []graph.VertexID{1, 2, 3, 4, 5, 6, 7}
	long := make([]graph.VertexID, 24)
	for i := range long {
		long[i] = graph.VertexID(i * 7)
	}
	b.Run("short", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			IsSimple(short)
		}
	})
	b.Run("long", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			IsSimple(long)
		}
	})
}
