package pathjoin

import (
	"context"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/query"
)

// TestJoinCancelledBoundedByProbes: the join must poll cancellation per
// probe, not per forward path. A handful of forward paths fanning out
// into large backward buckets is exactly the shape where a per-path
// cadence (one check every PollInterval forward paths) never fires: the
// old loop ran a cancelled join to completion, emitting every pair.
func TestJoinCancelledBoundedByProbes(t *testing.T) {
	const (
		nFwd  = 8
		nBwd  = 1000
		meet  = graph.VertexID(1)
		total = nFwd * nBwd
	)
	fwd := NewStore(nFwd, 3*nFwd)
	for j := 0; j < nFwd; j++ {
		fwd.Add([]graph.VertexID{0, graph.VertexID(10 + j), meet})
	}
	bwd := NewStore(nBwd, 3*nBwd)
	for i := 0; i < nBwd; i++ {
		bwd.Add([]graph.VertexID{2, graph.VertexID(5000 + i), meet})
	}
	h := BuildHashIndex(bwd)

	// Sanity: uncancelled, every (forward, backward) pair joins.
	clean := 0
	JoinHalvesIndexedControlled(fwd, h, 4, false, nil, 0, func([]graph.VertexID) { clean++ })
	if clean != total {
		t.Fatalf("uncancelled join emitted %d paths, want %d", clean, total)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ctrl := query.NewControl(ctx, time.Time{}, 0, 1)
	emitted := 0
	JoinHalvesIndexedControlled(fwd, h, 4, false, ctrl, 0, func([]graph.VertexID) { emitted++ })
	if emitted > query.PollInterval {
		t.Fatalf("cancelled join emitted %d of %d paths; want <= %d (one poll interval)",
			emitted, total, query.PollInterval)
	}
}
