// Package pathjoin implements the path concatenation operator ⊕ of
// Def. 3.1: hash-joining a set of forward partial paths (rooted at s on
// G) with a set of backward partial paths (rooted at t on Gr) on their
// meeting vertex, filtering non-simple concatenations.
//
// The paper leaves the duplicate-avoidance rule implicit; we make it
// explicit: a result path of length L is accounted to the unique split
// (a, b) = (⌈L/2⌉, ⌊L/2⌋), so a forward path of length a only joins
// backward paths of lengths a and a−1. Every HC-s-t path is therefore
// emitted exactly once (TestJoinUniqueSplit proves this against a
// brute-force oracle).
//
// Paths are stored in a Store arena — one flat vertex array plus offsets —
// so that enumerating millions of partial paths does not fragment the
// heap; this matters at Exp-7 scale where path counts grow exponentially
// with k.
package pathjoin

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/query"
)

// Store is an append-only arena of paths. The zero value is ready to use.
type Store struct {
	verts []graph.VertexID
	offs  []int32
}

// NewStore returns a store with capacity hints.
func NewStore(pathHint, vertHint int) *Store {
	return &Store{
		verts: make([]graph.VertexID, 0, vertHint),
		offs:  make([]int32, 1, pathHint+1),
	}
}

// Add copies p into the arena and returns its index.
//
//hcpath:noalloc
func (s *Store) Add(p []graph.VertexID) int {
	if len(s.offs) == 0 {
		s.offs = append(s.offs, 0)
	}
	s.verts = append(s.verts, p...)
	s.offs = append(s.offs, int32(len(s.verts)))
	return len(s.offs) - 2
}

// AddConcat copies the concatenation prefix+suffix as one path and
// returns its index, avoiding an intermediate allocation.
//
//hcpath:noalloc
func (s *Store) AddConcat(prefix, suffix []graph.VertexID) int {
	if len(s.offs) == 0 {
		s.offs = append(s.offs, 0)
	}
	s.verts = append(s.verts, prefix...)
	s.verts = append(s.verts, suffix...)
	s.offs = append(s.offs, int32(len(s.verts)))
	return len(s.offs) - 2
}

// Path returns the i-th path. The slice aliases the arena and must not
// be modified or retained across Adds.
func (s *Store) Path(i int) []graph.VertexID {
	return s.verts[s.offs[i]:s.offs[i+1]]
}

// Len returns the number of stored paths.
func (s *Store) Len() int {
	if len(s.offs) == 0 {
		return 0
	}
	return len(s.offs) - 1
}

// NumVertices returns the total vertex footprint, used by the Fig. 3(c)
// materialisation measurements.
func (s *Store) NumVertices() int { return len(s.verts) }

// Reset empties the store, retaining capacity.
func (s *Store) Reset() {
	s.verts = s.verts[:0]
	s.offs = s.offs[:1]
	s.offs[0] = 0
}

// Each calls fn for every stored path.
func (s *Store) Each(fn func(p []graph.VertexID)) {
	for i := 0; i < s.Len(); i++ {
		fn(s.Path(i))
	}
}

// Raw exposes the arena's flat contents — the vertex array and the
// Len()+1 offsets array — for serialization by the shard wire layer.
// Both slices alias internal storage and must not be modified; a
// zero-value store reports (nil, nil).
func (s *Store) Raw() (verts []graph.VertexID, offs []int32) { return s.verts, s.offs }

// RestoreStore adopts pre-built arena contents, as produced by Raw, as
// a Store without copying. The offsets must start at 0, be
// non-decreasing, and end at len(verts); wire-decoded payloads that
// violate the invariant are rejected with an error rather than left to
// panic inside Path.
func RestoreStore(verts []graph.VertexID, offs []int32) (*Store, error) {
	if len(offs) == 0 {
		if len(verts) != 0 {
			return nil, fmt.Errorf("pathjoin: %d arena vertices with no offsets", len(verts))
		}
		return &Store{}, nil
	}
	if offs[0] != 0 {
		return nil, fmt.Errorf("pathjoin: arena offsets start at %d, want 0", offs[0])
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			return nil, fmt.Errorf("pathjoin: arena offsets decrease at index %d", i)
		}
	}
	if int(offs[len(offs)-1]) != len(verts) {
		return nil, fmt.Errorf("pathjoin: arena offsets end at %d, want %d", offs[len(offs)-1], len(verts))
	}
	return &Store{verts: verts, offs: offs}, nil
}

// hashKey packs (meet vertex, path length) into one map key.
func hashKey(meet graph.VertexID, length int) uint64 {
	return uint64(meet)<<16 | uint64(uint16(length))
}

// HashIndex groups paths of a store by (endpoint, length) for ⊕ probing.
type HashIndex struct {
	store   *Store
	buckets map[uint64][]int32
}

// BuildHashIndex indexes every path of s by its final vertex and length.
func BuildHashIndex(s *Store) *HashIndex {
	h := &HashIndex{store: s, buckets: make(map[uint64][]int32, s.Len())}
	for i := 0; i < s.Len(); i++ {
		p := s.Path(i)
		k := hashKey(p[len(p)-1], len(p)-1)
		h.buckets[k] = append(h.buckets[k], int32(i))
	}
	return h
}

// Probe calls fn for every indexed path ending at meet with the given
// hop length.
func (h *HashIndex) Probe(meet graph.VertexID, length int, fn func(p []graph.VertexID)) {
	for _, i := range h.buckets[hashKey(meet, length)] {
		fn(h.store.Path(int(i)))
	}
}

// JoinHalves computes Pf ⊕ Pb with the unique-split pairing rule and
// calls emit with every simple result path of length ≤ k (at least 1).
// fwd holds partial paths rooted at s on G; bwd holds partial paths
// rooted at t on Gr. Backward paths are reversed during concatenation.
// The emitted slice is reused between calls and must be copied to be
// retained.
//
// When backHeavy is false the forward side owns the deeper budget
// (⌈k/2⌉ forward, ⌊k/2⌋ backward) and a result of length L is accounted
// to the unique split a = ⌈L/2⌉, realised by joining only pairs with
// b ∈ {a, a−1}. When backHeavy is true the roles are mirrored
// (b ∈ {a, a+1}, split a = ⌊L/2⌋), which the optimised engines use when
// the backward frontier is the cheaper one to deepen. Either way every
// HC-s-t path is emitted exactly once.
func JoinHalves(fwd, bwd *Store, k uint8, backHeavy bool, emit func(path []graph.VertexID)) {
	JoinHalvesIndexed(fwd, BuildHashIndex(bwd), k, backHeavy, emit)
}

// JoinHalvesControlled is JoinHalves under a query.Control: emissions
// are charged against query qid's limit and the probe loop polls for
// cancellation, so a satisfied or cancelled query stops joining
// promptly. A nil ctrl reproduces JoinHalves exactly.
func JoinHalvesControlled(fwd, bwd *Store, k uint8, backHeavy bool, ctrl *query.Control, qid int, emit func(path []graph.VertexID)) {
	JoinHalvesIndexedControlled(fwd, BuildHashIndex(bwd), k, backHeavy, ctrl, qid, emit)
}

// JoinHalvesIndexed is JoinHalves with a prebuilt backward-side index.
// Batch engines reuse one index across every query whose backward half
// aliases the same shared store, instead of rebuilding it per query.
func JoinHalvesIndexed(fwd *Store, h *HashIndex, k uint8, backHeavy bool, emit func(path []graph.VertexID)) {
	JoinHalvesIndexedControlled(fwd, h, k, backHeavy, nil, 0, emit)
}

// JoinHalvesIndexedControlled is JoinHalvesIndexed under a
// query.Control (see JoinHalvesControlled). Every emission first
// reserves a slot on qid's limit; the first refusal ends the join, so
// the engine learns the result set was truncated (one probe past the
// limit) without enumerating the rest. Cancellation is polled per
// probe, not per forward path — a handful of forward paths can fan out
// into arbitrarily large buckets, so a per-path cadence could run a
// cancelled join to completion.
func JoinHalvesIndexedControlled(fwd *Store, h *HashIndex, k uint8, backHeavy bool, ctrl *query.Control, qid int, emit func(path []graph.VertexID)) {
	buf := make([]graph.VertexID, 0, int(k)+1)
	steps, stopped := 0, false
	for i := 0; i < fwd.Len(); i++ {
		if stopped || ctrl.HitLimit(qid) {
			return
		}
		pf := fwd.Path(i)
		a := len(pf) - 1
		meet := pf[len(pf)-1]
		pair := [2]int{a, a - 1}
		if backHeavy {
			pair = [2]int{a, a + 1}
		}
		for _, b := range pair {
			if b < 0 || a+b > int(k) || a+b < 1 {
				continue
			}
			h.Probe(meet, b, func(pb []graph.VertexID) {
				if ctrl.Poll(&steps, &stopped) {
					return // drain the bucket without emitting
				}
				if ctrl.HitLimit(qid) {
					return // drain the bucket without emitting
				}
				if !DisjointExceptMeet(pf, pb) {
					return
				}
				if !ctrl.Allow(qid) {
					return
				}
				buf = buf[:0]
				buf = append(buf, pf...)
				for j := len(pb) - 2; j >= 0; j-- {
					buf = append(buf, pb[j])
				}
				emit(buf)
			})
		}
	}
}

// DisjointExceptMeet reports whether forward path pf and backward path
// pb share no vertex other than their common meeting vertex
// (pf's last element, which equals pb's last element). Both slices are
// internally duplicate-free, so a pairwise scan suffices; partial paths
// are short (≤ ⌈k/2⌉+1 vertices, k ≤ ~15 in practice), making the
// quadratic scan faster than hashing.
func DisjointExceptMeet(pf, pb []graph.VertexID) bool {
	for i := 0; i < len(pf)-1; i++ {
		for j := 0; j < len(pb)-1; j++ {
			if pf[i] == pb[j] {
				return false
			}
		}
	}
	return true
}

// IsSimple reports whether p has no repeated vertices, used by tests and
// by engines validating spliced cache results.
func IsSimple(p []graph.VertexID) bool {
	switch {
	case len(p) <= 1:
		return true
	case len(p) <= 16: // quadratic beats hashing for short paths
		for i := 0; i < len(p); i++ {
			for j := i + 1; j < len(p); j++ {
				if p[i] == p[j] {
					return false
				}
			}
		}
		return true
	default:
		seen := make(map[graph.VertexID]struct{}, len(p))
		for _, v := range p {
			if _, dup := seen[v]; dup {
				return false
			}
			seen[v] = struct{}{}
		}
		return true
	}
}

// ContainsVertex reports whether path p visits v.
func ContainsVertex(p []graph.VertexID, v graph.VertexID) bool {
	for _, u := range p {
		if u == v {
			return true
		}
	}
	return false
}
