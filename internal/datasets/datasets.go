// Package datasets is the registry of the twelve synthetic stand-ins for
// the paper's real-world graphs (Table I). The originals — SNAP, LAW and
// NetworkRepository downloads up to 1.8 billion edges — are not
// redistributable nor tractable offline, so each stand-in is generated
// by the community/power-law hybrid generator at a reduced scale: local
// preferential attachment reproduces the heavy-tailed degree skew of the
// originals, while community locality bounds k-hop ball growth so that
// unrelated queries stay dissimilar — the precondition for the Exp-1
// similarity sweep that billion-scale originals satisfy by sheer size.
// Relative density ordering across datasets follows Table I (absolute
// densities are compressed — enumeration cost grows exponentially in
// davg·k, and the shapes the experiments reproduce depend on the
// ordering, not the magnitudes). DESIGN.md §4 records the substitution
// rationale.
package datasets

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Spec describes one stand-in dataset.
type Spec struct {
	// Code is the two-letter label of Table I (EP, SL, …).
	Code string
	// Name is the full dataset name of Table I.
	Name string
	// PaperV, PaperE, PaperDavg and PaperDmax are the statistics the
	// paper reports for the original graph.
	PaperV, PaperE int64
	PaperDavg      float64
	PaperDmax      int64
	// Build generates the stand-in at the given scale factor (1.0 is
	// the default size; Exp-5 samples it down, stress runs scale up).
	Build func(scale float64) *graph.Graph
}

// spec constructs the generator closures. Every stand-in uses the
// community/power-law hybrid generator: commSize bounds k-hop ball
// growth so that unrelated queries stay dissimilar (the precondition of
// the Exp-1 similarity sweep on reduced-scale graphs) while the local
// preferential attachment preserves the dmax skew. outDeg and commSize
// encode the relative density ordering of Table I.
func spec(code, name string, pv, pe int64, pdavg float64, pdmax int64, n, commSize, outDeg int, pIn float64, seed int64) Spec {
	return Spec{
		Code: code, Name: name,
		PaperV: pv, PaperE: pe, PaperDavg: pdavg, PaperDmax: pdmax,
		Build: func(scale float64) *graph.Graph {
			sn := int(float64(n) * scale)
			if sn < 16 {
				sn = 16
			}
			cs := commSize
			if cs > sn {
				cs = sn
			}
			return graph.GenCommunityPowerLaw(sn, cs, outDeg, pIn, seed)
		},
	}
}

// All returns the twelve stand-ins in Table I order. Generation is lazy:
// call Build when the graph is needed.
func All() []Spec {
	return []Spec{
		spec("EP", "Epinions", 75_000, 508_000, 13.4, 3_079, 5_000, 120, 6, 0.975, 101),
		spec("SL", "Slashdot", 82_000, 948_000, 21.2, 5_062, 5_000, 120, 8, 0.975, 102),
		spec("BK", "Baidu-baike", 416_000, 3_000_000, 5.0, 98_173, 12_000, 150, 2, 0.95, 103),
		spec("WT", "WikiTalk", 2_000_000, 5_000_000, 5.0, 1_242, 16_000, 150, 2, 0.95, 104),
		spec("BS", "BerkStan", 685_000, 7_000_000, 22.2, 84_290, 8_000, 180, 9, 0.985, 105),
		spec("SK", "Skitter", 1_600_000, 11_000_000, 13.1, 35_547, 10_000, 150, 6, 0.975, 106),
		spec("UK", "Web-uk-2005", 130_000, 11_700_000, 181.2, 850, 12_000, 150, 13, 0.995, 107),
		spec("DA", "Rec-dating", 169_000, 17_000_000, 205.7, 33_411, 13_000, 150, 14, 0.995, 108),
		spec("PO", "Pokec", 1_600_000, 31_000_000, 37.5, 20_518, 10_000, 180, 10, 0.985, 109),
		spec("LJ", "LiveJournal", 4_000_000, 69_000_000, 17.9, 20_333, 16_000, 160, 8, 0.98, 110),
		spec("TW", "Twitter-2010", 42_000_000, 1_460_000_000, 70.5, 2_997_487, 30_000, 200, 11, 0.985, 111),
		spec("FS", "Friendster", 65_000_000, 1_810_000_000, 27.5, 5_214, 36_000, 200, 8, 0.98, 112),
	}
}

// Codes returns the dataset codes in Table I order.
func Codes() []string {
	specs := All()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Code
	}
	return out
}

// ByCode returns the spec with the given code.
func ByCode(code string) (Spec, error) {
	for _, s := range All() {
		if s.Code == code {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datasets: unknown code %q (known: %v)", code, Codes())
}

// Select resolves a comma-free list of codes, or all datasets when the
// list is empty. The order follows Table I regardless of input order.
func Select(codes []string) ([]Spec, error) {
	if len(codes) == 0 {
		return All(), nil
	}
	want := make(map[string]bool, len(codes))
	for _, c := range codes {
		if _, err := ByCode(c); err != nil {
			return nil, err
		}
		want[c] = true
	}
	var out []Spec
	for _, s := range All() {
		if want[s.Code] {
			out = append(out, s)
		}
	}
	return out, nil
}

// Largest returns the codes of the two biggest stand-ins, the subjects
// of the Exp-5 scalability sweep (TW and FS in the paper).
func Largest() []string {
	specs := All()
	sort.Slice(specs, func(i, j int) bool { return specs[i].PaperE > specs[j].PaperE })
	return []string{specs[0].Code, specs[1].Code}
}
