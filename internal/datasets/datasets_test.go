package datasets

import (
	"testing"

	"repro/internal/graph"
)

// TestRegistryComplete: twelve datasets in Table I order.
func TestRegistryComplete(t *testing.T) {
	specs := All()
	if len(specs) != 12 {
		t.Fatalf("registry has %d datasets, want 12", len(specs))
	}
	wantOrder := []string{"EP", "SL", "BK", "WT", "BS", "SK", "UK", "DA", "PO", "LJ", "TW", "FS"}
	for i, s := range specs {
		if s.Code != wantOrder[i] {
			t.Errorf("position %d: code %s, want %s", i, s.Code, wantOrder[i])
		}
		if s.Name == "" || s.PaperV == 0 || s.PaperE == 0 {
			t.Errorf("%s: incomplete Table I statistics %+v", s.Code, s)
		}
	}
}

// TestBuildValidGraphs: every stand-in builds to a valid, non-trivial
// graph at a reduced scale.
func TestBuildValidGraphs(t *testing.T) {
	for _, s := range All() {
		g := s.Build(0.1)
		if err := g.Validate(); err != nil {
			t.Errorf("%s: invalid graph: %v", s.Code, err)
		}
		if g.NumVertices() < 16 || g.NumEdges() == 0 {
			t.Errorf("%s: degenerate graph |V|=%d |E|=%d", s.Code, g.NumVertices(), g.NumEdges())
		}
	}
}

// TestBuildDeterministic: the same spec builds the same graph.
func TestBuildDeterministic(t *testing.T) {
	s, err := ByCode("EP")
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.Build(0.2), s.Build(0.2)
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("non-deterministic build: %d/%d vs %d/%d edges",
			a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	equal := true
	a.Edges(func(src, dst graph.VertexID) bool {
		if !b.HasEdge(src, dst) {
			equal = false
			return false
		}
		return true
	})
	if !equal {
		t.Fatal("same spec produced different edge sets")
	}
}

// TestDensityOrderingPreserved: stand-in average degree must follow the
// relative ordering of Table I for the extremes (UK/DA densest, BK/WT
// sparsest), which drives the experiments' cross-dataset shapes.
func TestDensityOrderingPreserved(t *testing.T) {
	davg := map[string]float64{}
	for _, s := range All() {
		g := s.Build(0.15)
		davg[s.Code] = float64(g.NumEdges()) / float64(g.NumVertices())
	}
	for _, dense := range []string{"UK", "DA"} {
		for _, sparse := range []string{"BK", "WT"} {
			if davg[dense] <= davg[sparse] {
				t.Errorf("davg(%s)=%.1f not above davg(%s)=%.1f", dense, davg[dense], sparse, davg[sparse])
			}
		}
	}
}

// TestByCodeUnknown reports an error.
func TestByCodeUnknown(t *testing.T) {
	if _, err := ByCode("XX"); err == nil {
		t.Fatal("unknown code accepted")
	}
}

// TestSelect filters and orders.
func TestSelect(t *testing.T) {
	got, err := Select([]string{"FS", "EP"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Code != "EP" || got[1].Code != "FS" {
		t.Fatalf("Select = %v, want [EP FS] in Table I order", got)
	}
	all, err := Select(nil)
	if err != nil || len(all) != 12 {
		t.Fatalf("empty Select = %d specs, err %v", len(all), err)
	}
	if _, err := Select([]string{"nope"}); err == nil {
		t.Fatal("bad code accepted")
	}
}

// TestLargest: TW and FS are the scalability subjects.
func TestLargest(t *testing.T) {
	got := Largest()
	if len(got) != 2 || got[0] != "FS" || got[1] != "TW" {
		t.Fatalf("Largest = %v, want [FS TW]", got)
	}
}

// TestScaleParameter grows and shrinks the graph.
func TestScaleParameter(t *testing.T) {
	s, err := ByCode("SL")
	if err != nil {
		t.Fatal(err)
	}
	small, big := s.Build(0.1), s.Build(0.5)
	if small.NumVertices() >= big.NumVertices() {
		t.Errorf("scale 0.1 (%d vertices) not below scale 0.5 (%d)", small.NumVertices(), big.NumVertices())
	}
}
