package hcindex

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/msbfs"
	"repro/internal/query"
	"repro/internal/testgraphs"
)

func paperBatch(t *testing.T) (*graph.Graph, *graph.Graph, []query.Query) {
	t.Helper()
	g := testgraphs.Paper()
	gr := g.Reverse()
	var qs []query.Query
	for _, spec := range testgraphs.PaperQueries() {
		qs = append(qs, query.Query{S: spec[0], T: spec[1], K: uint8(spec[2])})
	}
	qs, err := query.Batch(g, qs)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	return g, gr, qs
}

func TestBuildMatchesSingles(t *testing.T) {
	g, gr, qs := paperBatch(t)
	idx := Build(g, gr, qs)
	for i, q := range qs {
		fwd := msbfs.Single(g, q.S, q.K)
		bwd := msbfs.Single(gr, q.T, q.K)
		for v := 0; v < g.NumVertices(); v++ {
			if idx.DistFromS(i, graph.VertexID(v)) != fwd.Dist(graph.VertexID(v)) {
				t.Fatalf("q%d DistFromS(v%d) mismatch", i, v)
			}
			if idx.DistToT(i, graph.VertexID(v)) != bwd.Dist(graph.VertexID(v)) {
				t.Fatalf("q%d DistToT(v%d) mismatch", i, v)
			}
		}
		if len(idx.Gamma(i)) != fwd.NumVisited() || len(idx.GammaR(i)) != bwd.NumVisited() {
			t.Fatalf("q%d Γ sizes mismatch", i)
		}
	}
}

func TestPaperFig2Backward(t *testing.T) {
	g, gr, qs := paperBatch(t)
	idx := Build(g, gr, qs)
	// q3(v4,v14,4): the Fig 2(b) index entries.
	want := map[graph.VertexID]uint8{6: 1, 3: 2, 15: 2, 9: 3, 4: 4, 14: 0}
	for v, d := range want {
		if got := idx.DistToT(3, v); got != d {
			t.Errorf("DistToT(q3, v%d) = %d, want %d", v, got, d)
		}
	}
	if got := idx.DistToT(3, 8); got != Unreachable {
		t.Errorf("DistToT(q3, v8) = %d, want Unreachable", got)
	}
}

func TestGammaCardinalitiesExample41(t *testing.T) {
	// Example 4.1: |Γ(q3)| = 9, |Γ(q4)| = 8 (the paper lists the sets).
	g, gr, qs := paperBatch(t)
	idx := Build(g, gr, qs)
	if got := len(idx.Gamma(3)); got != 9 {
		t.Errorf("|Γ(q3)| = %d, want 9 (%v)", got, idx.Gamma(3))
	}
	if got := len(idx.Gamma(4)); got != 8 {
		t.Errorf("|Γ(q4)| = %d, want 8 (%v)", got, idx.Gamma(4))
	}
}

func TestDedupSharesTraversals(t *testing.T) {
	g := testgraphs.Paper()
	gr := g.Reverse()
	qs, err := query.Batch(g, []query.Query{
		{S: 0, T: 11, K: 5},
		{S: 0, T: 13, K: 5}, // same source, same cap: one forward BFS
		{S: 0, T: 11, K: 3}, // same source, smaller cap: separate
		{S: 2, T: 11, K: 5}, // same target+cap as q0: one backward BFS
	})
	if err != nil {
		t.Fatal(err)
	}
	idx := Build(g, gr, qs)
	// Dedup is observable through pointer identity of the DistMaps.
	if idx.DistMapFor(0, Forward) != idx.DistMapFor(1, Forward) {
		t.Error("identical (source, cap) pairs should share a DistMap")
	}
	if idx.DistMapFor(0, Forward) == idx.DistMapFor(2, Forward) {
		t.Error("different caps must not share a DistMap")
	}
	if idx.DistMapFor(0, Backward) != idx.DistMapFor(3, Backward) {
		t.Error("identical (target, cap) pairs should share a DistMap")
	}
}

func TestReachable(t *testing.T) {
	g, gr, qs := paperBatch(t)
	idx := Build(g, gr, qs)
	for i, q := range qs {
		if !idx.Reachable(i, q) {
			t.Errorf("%s should be reachable", q)
		}
	}
	qs2, _ := query.Batch(g, []query.Query{{S: 11, T: 0, K: 7}})
	idx2 := Build(g, gr, qs2)
	if idx2.Reachable(0, qs2[0]) {
		t.Error("v11 cannot reach v0")
	}
}

func TestLevelSizes(t *testing.T) {
	g, gr, qs := paperBatch(t)
	idx := Build(g, gr, qs)
	// q4(v9,v14,3): forward levels from v9: {v9} {3,15,8} {6} {11,13,14}.
	sizes := idx.LevelSizes(4, Forward)
	want := []int{1, 3, 1, 3}
	if len(sizes) != len(want) {
		t.Fatalf("LevelSizes len=%d want %d", len(sizes), len(want))
	}
	for d, w := range want {
		if sizes[d] != w {
			t.Errorf("level %d size %d, want %d", d, sizes[d], w)
		}
	}
	// backward: {14} {6} {3,15} {9}
	sizes = idx.LevelSizes(4, Backward)
	want = []int{1, 1, 2, 1}
	for d, w := range want {
		if sizes[d] != w {
			t.Errorf("bwd level %d size %d, want %d", d, sizes[d], w)
		}
	}
}

func TestDirectionString(t *testing.T) {
	if Forward.String() != "forward" || Backward.String() != "backward" {
		t.Fatal("Direction.String wrong")
	}
}

func TestQueryValidate(t *testing.T) {
	g := testgraphs.Paper()
	cases := []struct {
		q  query.Query
		ok bool
	}{
		{query.Query{S: 0, T: 11, K: 5}, true},
		{query.Query{S: 0, T: 0, K: 5}, false},  // s == t
		{query.Query{S: 99, T: 1, K: 5}, false}, // out of range
		{query.Query{S: 0, T: 99, K: 5}, false},
		{query.Query{S: 0, T: 1, K: 0}, false}, // k == 0
	}
	for i, c := range cases {
		err := c.q.Validate(g)
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate = %v, want ok=%v", i, err, c.ok)
		}
	}
}
