package hcindex

import (
	"container/list"
	"sync"

	"repro/internal/graph"
	"repro/internal/msbfs"
	"repro/internal/query"
)

// DefaultCacheBytes is the cache budget selected by a non-positive
// NewCache argument: enough for thousands of entries on the stand-in
// graphs while staying a small fraction of the graphs themselves.
const DefaultCacheBytes = 64 << 20

// entryKey identifies one cached hop-distance map: the BFS direction,
// its source vertex (a query's S forward, T backward), and the hop cap
// it was built with.
type entryKey struct {
	dir Direction
	v   graph.VertexID
	cap uint8
}

// dirVertex keys the per-endpoint cap set used for widened lookups.
type dirVertex struct {
	dir Direction
	v   graph.VertexID
}

// entry is one cached DistMap with its LRU seat and pin count.
type entry struct {
	key   entryKey
	dm    *msbfs.DistMap
	bytes int64
	refs  int           // in-flight Indexes holding this entry
	elem  *list.Element // seat in Cache.lru (front = most recent)
	// orphaned marks an entry flushed from the table while still
	// pinned; its storage is released when the last holder lets go.
	orphaned bool
}

// Cache is the cross-batch Provider: a concurrency-safe, ref-counted
// LRU of hop-distance maps keyed by (direction, source vertex, hop
// cap). A query with cap k is served from any cached entry of its
// endpoint with Cap ≥ k through a thresholded view (msbfs.DistMap.View),
// so widening traffic (the same endpoints asked with varying k) still
// hits. Entries pinned by in-flight batches are never evicted — their
// dense arrays are live in enumeration hot loops — which lets the byte
// budget overshoot transiently under heavy concurrency; eviction
// releases the dense arrays into a msbfs.Pool for the next misses to
// reuse.
//
// The cache binds to the first graph pair it serves. Acquiring with a
// different pair flushes and rebinds (a convenience for tests; real
// deployments hold one cache per graph).
type Cache struct {
	maxBytes int64

	mu      sync.Mutex
	g, gr   *graph.Graph
	pool    *msbfs.Pool
	entries map[entryKey]*entry
	caps    map[dirVertex][]uint8 // ascending caps present per endpoint
	lru     *list.List
	bytes   int64

	hits, misses, widened, evictions int64
}

// NewCache returns an empty cache bounded by maxBytes of dense-array
// storage; non-positive means DefaultCacheBytes.
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &Cache{
		maxBytes: maxBytes,
		entries:  make(map[entryKey]*entry),
		caps:     make(map[dirVertex][]uint8),
		lru:      list.New(),
	}
}

// Stats implements Provider.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Widened: c.widened,
		Evictions: c.evictions,
		Entries:   len(c.entries), BytesInUse: c.bytes, BytesBudget: c.maxBytes,
	}
}

// Acquire implements Provider: cached endpoints are pinned and served
// (through views where the cached cap is wider), the rest are built
// with two pooled MS-BFS passes and inserted. Within one batch every
// distinct (direction, endpoint, cap) resolves to a single *DistMap,
// matching the cold builder's dedup exactly — downstream constraint
// merging keys on map identity.
func (c *Cache) Acquire(g, gr *graph.Graph, queries []query.Query) *Index {
	idx := &Index{
		fwd: make([]*msbfs.DistMap, len(queries)),
		bwd: make([]*msbfs.DistMap, len(queries)),
	}

	// serving maps each key this batch needs to its pinned cache entry;
	// missSet marks the keys queued for building. View materialisation
	// (O(|Γ|) for a widened hit) happens after the lock is dropped — the
	// pins make that safe.
	serving := make(map[entryKey]*entry)
	missSet := make(map[entryKey]struct{})
	pinned := make(map[*entry]struct{})
	var missKeys []entryKey

	c.mu.Lock()
	c.bindLocked(g, gr)
	pool := c.pool
	for _, q := range queries {
		for _, key := range [2]entryKey{
			{Forward, q.S, q.K},
			{Backward, q.T, q.K},
		} {
			if _, ok := serving[key]; ok {
				idx.Hits++ // resolved from cache earlier in this batch
				continue
			}
			if _, ok := missSet[key]; ok {
				idx.Misses++ // already queued for building
				continue
			}
			if e := c.lookupLocked(key); e != nil {
				if _, ok := pinned[e]; !ok {
					pinned[e] = struct{}{}
					e.refs++
				}
				c.lru.MoveToFront(e.elem)
				serving[key] = e
				idx.Hits++
				if e.key.cap != key.cap {
					c.widened++
				}
			} else {
				missSet[key] = struct{}{}
				missKeys = append(missKeys, key)
				idx.Misses++
			}
		}
	}
	c.hits += int64(idx.Hits)
	c.misses += int64(idx.Misses)
	c.mu.Unlock()

	// resolved maps each key to the servable DistMap handed to queries.
	resolved := make(map[entryKey]*msbfs.DistMap, len(serving)+len(missKeys))
	for key, e := range serving {
		resolved[key] = e.dm.View(key.cap)
	}

	// Build all misses outside the lock: one MS-BFS pass per direction.
	built := c.buildMisses(g, gr, missKeys, pool)

	var bypass []*msbfs.DistMap
	inserted := make(map[entryKey]*entry, len(missKeys))
	c.mu.Lock()
	if c.g != g || c.gr != gr {
		// Another batch rebound the cache to a different graph while we
		// were building: our maps must not enter its table. Serve them
		// privately and release them with the index.
		for j, key := range missKeys {
			resolved[key] = built[j]
		}
		bypass = built
	} else {
		for j, key := range missKeys {
			e := c.insertLocked(key, built[j])
			if _, ok := pinned[e]; !ok {
				pinned[e] = struct{}{}
				e.refs++
			}
			inserted[key] = e
		}
		c.evictLocked()
	}
	c.mu.Unlock()
	for key, e := range inserted {
		resolved[key] = e.dm.View(key.cap) // view in case a wider entry won the insert race
	}

	for i, q := range queries {
		idx.fwd[i] = resolved[entryKey{Forward, q.S, q.K}]
		idx.bwd[i] = resolved[entryKey{Backward, q.T, q.K}]
	}

	idx.release = func() {
		c.mu.Lock()
		for e := range pinned {
			e.refs--
			if e.refs == 0 && e.orphaned {
				e.dm.Release()
			}
		}
		c.evictLocked()
		c.mu.Unlock()
		for _, dm := range bypass {
			dm.Release()
		}
	}
	return idx
}

// buildMisses runs the two deduplicated MS-BFS passes for the missing
// keys, positionally aligned with keys.
func (c *Cache) buildMisses(g, gr *graph.Graph, keys []entryKey, pool *msbfs.Pool) []*msbfs.DistMap {
	if len(keys) == 0 {
		return nil
	}
	out := make([]*msbfs.DistMap, len(keys))
	for _, dir := range [2]Direction{Forward, Backward} {
		var sources []graph.VertexID
		var caps []uint8
		var slots []int
		for j, key := range keys {
			if key.dir == dir {
				sources = append(sources, key.v)
				caps = append(caps, key.cap)
				slots = append(slots, j)
			}
		}
		if len(sources) == 0 {
			continue
		}
		on := g
		if dir == Backward {
			on = gr
		}
		for j, dm := range msbfs.MultiSourceIn(on, sources, caps, pool) {
			out[slots[j]] = dm
		}
	}
	return out
}

// bindLocked flushes and rebinds when the graph pair changes.
func (c *Cache) bindLocked(g, gr *graph.Graph) {
	if c.g == g && c.gr == gr {
		return
	}
	for _, e := range c.entries {
		c.dropLocked(e)
	}
	c.g, c.gr = g, gr
	c.pool = msbfs.NewPool(g.NumVertices())
}

// lookupLocked returns the servable entry for key: the exact cap if
// present, else the narrowest cached cap above it.
func (c *Cache) lookupLocked(key entryKey) *entry {
	if e, ok := c.entries[key]; ok {
		return e
	}
	for _, cp := range c.caps[dirVertex{key.dir, key.v}] {
		if cp > key.cap {
			return c.entries[entryKey{key.dir, key.v, cp}]
		}
	}
	return nil
}

// insertLocked adds a freshly built map under key, resolving races with
// concurrent builders of the same endpoint: an existing entry with an
// equal or wider cap wins and the new build is discarded; a narrower
// unpinned entry is subsumed (dropped) by the new one. Concurrent
// batches cold-missing the same key thus each pay a build and all but
// one are discarded — a deliberate simplicity tradeoff over per-key
// singleflight, bounded to the cache's warm-up window (and the loser's
// arrays go straight back to the pool).
func (c *Cache) insertLocked(key entryKey, dm *msbfs.DistMap) *entry {
	if e := c.lookupLocked(key); e != nil {
		dm.Release()
		c.lru.MoveToFront(e.elem)
		return e
	}
	dv := dirVertex{key.dir, key.v}
	for _, cp := range append([]uint8(nil), c.caps[dv]...) {
		if cp < key.cap {
			if narrow := c.entries[entryKey{key.dir, key.v, cp}]; narrow.refs == 0 {
				c.dropLocked(narrow)
				c.evictions++
			}
		}
	}
	e := &entry{
		key:   key,
		dm:    dm,
		bytes: int64(c.pool.NumVertices()) + 4*int64(dm.NumVisited()),
	}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	caps := c.caps[dv]
	at := 0
	for at < len(caps) && caps[at] < key.cap {
		at++
	}
	caps = append(caps, 0)
	copy(caps[at+1:], caps[at:])
	caps[at] = key.cap
	c.caps[dv] = caps
	c.bytes += e.bytes
	return e
}

// evictLocked drops least-recently-used unpinned entries until the byte
// budget holds.
func (c *Cache) evictLocked() {
	for c.bytes > c.maxBytes {
		var victim *entry
		for elem := c.lru.Back(); elem != nil; elem = elem.Prev() {
			if e := elem.Value.(*entry); e.refs == 0 {
				victim = e
				break
			}
		}
		if victim == nil {
			return // everything pinned; transient overshoot
		}
		c.dropLocked(victim)
		c.evictions++
	}
}

// dropLocked removes an entry from the table, LRU and cap set. Unpinned
// storage returns to the pool immediately; pinned entries are orphaned
// and release on their last unpin.
func (c *Cache) dropLocked(e *entry) {
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
	dv := dirVertex{e.key.dir, e.key.v}
	caps := c.caps[dv]
	for i, cp := range caps {
		if cp == e.key.cap {
			c.caps[dv] = append(caps[:i], caps[i+1:]...)
			break
		}
	}
	if len(c.caps[dv]) == 0 {
		delete(c.caps, dv)
	}
	c.bytes -= e.bytes
	if e.refs == 0 {
		e.dm.Release()
	} else {
		e.orphaned = true
	}
}
