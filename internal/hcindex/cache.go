package hcindex

import (
	"container/list"
	"sync"

	"repro/internal/graph"
	"repro/internal/msbfs"
	"repro/internal/query"
)

// DefaultCacheBytes is the cache budget selected by a non-positive
// NewCache argument: enough for thousands of entries on the stand-in
// graphs while staying a small fraction of the graphs themselves.
const DefaultCacheBytes = 64 << 20

// maxBindings bounds how many distinct (graph pair, epoch) generations
// the cache serves at once. Live updates swap snapshots while batches
// dispatched on the previous epoch are still in flight, so for a short
// window two (occasionally more) generations coexist; entries of
// generations that fall off the ring are dropped immediately.
const maxBindings = 4

// entryKey identifies one cached hop-distance map: the generation of
// the (graph pair, epoch) binding it was built on, the BFS direction,
// its source vertex (a query's S forward, T backward), and the hop cap
// it was built with. Stale generations can never serve a fresh epoch's
// queries — the gen field keeps their keys disjoint.
type entryKey struct {
	gen uint64
	dir Direction
	v   graph.VertexID
	cap uint8
}

// dirVertex keys the per-endpoint cap set used for widened lookups,
// scoped like entryKey to one generation.
type dirVertex struct {
	gen uint64
	dir Direction
	v   graph.VertexID
}

// entry is one cached DistMap with its LRU seat and pin count.
type entry struct {
	key   entryKey
	dm    *msbfs.DistMap
	bytes int64
	refs  int           // in-flight Indexes holding this entry
	elem  *list.Element // seat in Cache.lru (front = most recent)
	// orphaned marks an entry flushed from the table while still
	// pinned; its storage is released when the last holder lets go.
	orphaned bool
}

// binding is one (graph pair, epoch) generation the cache has served.
type binding struct {
	g, gr *graph.Graph
	epoch uint64
	gen   uint64
	// dropped marks a binding pushed off the ring while one of its
	// batches was still building misses; the batch serves them privately
	// instead of inserting into a retired generation.
	dropped bool
}

// Cache is the cross-batch Provider: a concurrency-safe, ref-counted
// LRU of hop-distance maps keyed by (generation, direction, source
// vertex, hop cap). A query with cap k is served from any cached entry
// of its endpoint with Cap ≥ k through a thresholded view
// (msbfs.DistMap.View), so widening traffic (the same endpoints asked
// with varying k) still hits. Entries pinned by in-flight batches are
// never evicted — their dense arrays are live in enumeration hot loops
// — which lets the byte budget overshoot transiently under heavy
// concurrency; eviction releases the dense arrays into a per-size
// msbfs.Pool for the next misses to reuse.
//
// Generations realise the live-update story: every distinct
// (g, gr, epoch) triple the cache serves gets its own generation, keys
// are generation-scoped, and lookups only ever match the caller's own
// generation — a post-update query can never be answered from a
// pre-update distance map. Stale generations are not flushed eagerly:
// their entries stay pinned-safe for in-flight batches and are evicted
// preferentially (before current-generation LRU victims) as the budget
// demands, which is the "stale entries evict naturally" half of the
// contract.
type Cache struct {
	maxBytes     int64
	buildWorkers int

	mu       sync.Mutex
	bindings []*binding // most recently served first
	nextGen  uint64
	pools    map[int]*msbfs.Pool // dense-array pools keyed by |V|
	entries  map[entryKey]*entry
	caps     map[dirVertex][]uint8 // ascending caps present per endpoint
	lru      *list.List
	bytes    int64

	hits, misses, widened, evictions int64
}

// NewCache returns an empty cache bounded by maxBytes of dense-array
// storage; non-positive means DefaultCacheBytes. Miss builds run the
// sequential reference kernel.
func NewCache(maxBytes int64) *Cache { return NewCacheWorkers(maxBytes, 0) }

// NewCacheWorkers is NewCache with a build-parallelism knob: a positive
// workers count runs every miss-filling MS-BFS pass on that many
// goroutines with direction-optimizing push/pull levels; non-positive
// keeps the sequential reference kernel.
func NewCacheWorkers(maxBytes int64, workers int) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &Cache{
		maxBytes:     maxBytes,
		buildWorkers: workers,
		pools:        make(map[int]*msbfs.Pool),
		entries:      make(map[entryKey]*entry),
		caps:         make(map[dirVertex][]uint8),
		lru:          list.New(),
	}
}

// Stats implements Provider.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Widened: c.widened,
		Evictions: c.evictions,
		Entries:   len(c.entries), BytesInUse: c.bytes, BytesBudget: c.maxBytes,
	}
}

// Acquire implements Provider: cached endpoints of the caller's own
// (graph pair, epoch) generation are pinned and served (through views
// where the cached cap is wider), the rest are built with two pooled
// MS-BFS passes and inserted under that generation. Within one batch
// every distinct (direction, endpoint, cap) resolves to a single
// *DistMap, matching the cold builder's dedup exactly — downstream
// constraint merging keys on map identity.
func (c *Cache) Acquire(g, gr *graph.Graph, epoch uint64, queries []query.Query) *Index {
	idx := &Index{
		fwd: make([]*msbfs.DistMap, len(queries)),
		bwd: make([]*msbfs.DistMap, len(queries)),
	}

	// serving maps each key this batch needs to its pinned cache entry;
	// missSet marks the keys queued for building. View materialisation
	// (O(|Γ|) for a widened hit) happens after the lock is dropped — the
	// pins make that safe.
	serving := make(map[entryKey]*entry)
	missSet := make(map[entryKey]struct{})
	pinned := make(map[*entry]struct{})
	var missKeys []entryKey

	c.mu.Lock()
	b := c.bindLocked(g, gr, epoch)
	pool := c.poolLocked(g.NumVertices())
	for _, q := range queries {
		for _, key := range [2]entryKey{
			{b.gen, Forward, q.S, q.K},
			{b.gen, Backward, q.T, q.K},
		} {
			if _, ok := serving[key]; ok {
				idx.Hits++ // resolved from cache earlier in this batch
				continue
			}
			if _, ok := missSet[key]; ok {
				idx.Misses++ // already queued for building
				continue
			}
			if e := c.lookupLocked(key); e != nil {
				if _, ok := pinned[e]; !ok {
					pinned[e] = struct{}{}
					e.refs++
				}
				c.lru.MoveToFront(e.elem)
				serving[key] = e
				idx.Hits++
				if e.key.cap != key.cap {
					c.widened++
				}
			} else {
				missSet[key] = struct{}{}
				missKeys = append(missKeys, key)
				idx.Misses++
			}
		}
	}
	c.hits += int64(idx.Hits)
	c.misses += int64(idx.Misses)
	c.mu.Unlock()

	// resolved maps each key to the servable DistMap handed to queries.
	resolved := make(map[entryKey]*msbfs.DistMap, len(serving)+len(missKeys))
	for key, e := range serving {
		resolved[key] = e.dm.View(key.cap)
	}

	// Build all misses outside the lock: one MS-BFS pass per direction.
	built := c.buildMisses(g, gr, missKeys, pool)

	var bypass []*msbfs.DistMap
	inserted := make(map[entryKey]*entry, len(missKeys))
	c.mu.Lock()
	if b.dropped {
		// The binding fell off the generation ring while we were
		// building: our maps must not enter a retired generation's table.
		// Serve them privately and release them with the index.
		for j, key := range missKeys {
			resolved[key] = built[j]
		}
		bypass = built
	} else {
		denseBytes := int64(g.NumVertices())
		for j, key := range missKeys {
			e := c.insertLocked(key, built[j], denseBytes)
			if _, ok := pinned[e]; !ok {
				pinned[e] = struct{}{}
				e.refs++
			}
			inserted[key] = e
		}
		c.evictLocked()
	}
	c.mu.Unlock()
	for key, e := range inserted {
		resolved[key] = e.dm.View(key.cap) // view in case a wider entry won the insert race
	}

	for i, q := range queries {
		idx.fwd[i] = resolved[entryKey{b.gen, Forward, q.S, q.K}]
		idx.bwd[i] = resolved[entryKey{b.gen, Backward, q.T, q.K}]
	}

	idx.release = func() {
		c.mu.Lock()
		for e := range pinned {
			e.refs--
			if e.refs == 0 && e.orphaned {
				e.dm.Release()
			}
		}
		c.evictLocked()
		c.mu.Unlock()
		for _, dm := range bypass {
			dm.Release()
		}
	}
	return idx
}

// buildMisses runs the two deduplicated MS-BFS passes for the missing
// keys, positionally aligned with keys.
func (c *Cache) buildMisses(g, gr *graph.Graph, keys []entryKey, pool *msbfs.Pool) []*msbfs.DistMap {
	if len(keys) == 0 {
		return nil
	}
	out := make([]*msbfs.DistMap, len(keys))
	for _, dir := range [2]Direction{Forward, Backward} {
		var sources []graph.VertexID
		var caps []uint8
		var slots []int
		for j, key := range keys {
			if key.dir == dir {
				sources = append(sources, key.v)
				caps = append(caps, key.cap)
				slots = append(slots, j)
			}
		}
		if len(sources) == 0 {
			continue
		}
		// (g, gr) are mutually reverse by the Provider contract, so each
		// direction's pass hands the kernel the other graph for pull levels.
		on, rev := g, gr
		if dir == Backward {
			on, rev = gr, g
		}
		opt := msbfs.BuildOptions{Workers: c.buildWorkers, Reverse: rev}
		for j, dm := range msbfs.MultiSourceOpts(on, sources, caps, pool, opt) {
			out[slots[j]] = dm
		}
	}
	return out
}

// bindLocked returns the generation serving (g, gr, epoch), creating it
// (and retiring the oldest generation past the ring bound) when the
// triple is new. In-flight batches of retired generations keep their
// pinned entries; only the table seats go.
func (c *Cache) bindLocked(g, gr *graph.Graph, epoch uint64) *binding {
	for i, b := range c.bindings {
		if b.g == g && b.gr == gr && b.epoch == epoch {
			if i != 0 {
				copy(c.bindings[1:i+1], c.bindings[:i])
				c.bindings[0] = b
			}
			return b
		}
	}
	b := &binding{g: g, gr: gr, epoch: epoch, gen: c.nextGen}
	c.nextGen++
	c.bindings = append(c.bindings, nil)
	copy(c.bindings[1:], c.bindings)
	c.bindings[0] = b
	if len(c.bindings) > maxBindings {
		victim := c.bindings[len(c.bindings)-1]
		c.bindings = c.bindings[:len(c.bindings)-1]
		victim.dropped = true
		c.dropGenLocked(victim.gen)
		c.prunePoolsLocked()
	}
	return b
}

// poolLocked returns the dense-array pool for graphs of n vertices.
func (c *Cache) poolLocked(n int) *msbfs.Pool {
	p := c.pools[n]
	if p == nil {
		p = msbfs.NewPool(n)
		c.pools[n] = p
	}
	return p
}

// prunePoolsLocked drops pools no live binding can use any more; their
// remaining arrays drain back and are garbage collected.
func (c *Cache) prunePoolsLocked() {
	live := make(map[int]bool, len(c.bindings))
	for _, b := range c.bindings {
		live[b.g.NumVertices()] = true
	}
	for n := range c.pools {
		if !live[n] {
			delete(c.pools, n)
		}
	}
}

// dropGenLocked removes every entry of a retired generation.
func (c *Cache) dropGenLocked(gen uint64) {
	var victims []*entry
	for _, e := range c.entries {
		if e.key.gen == gen {
			victims = append(victims, e)
		}
	}
	for _, e := range victims {
		c.dropLocked(e)
		c.evictions++
	}
}

// lookupLocked returns the servable entry for key: the exact cap if
// present, else the narrowest cached cap above it, always within the
// key's own generation.
func (c *Cache) lookupLocked(key entryKey) *entry {
	if e, ok := c.entries[key]; ok {
		return e
	}
	for _, cp := range c.caps[dirVertex{key.gen, key.dir, key.v}] {
		if cp > key.cap {
			return c.entries[entryKey{key.gen, key.dir, key.v, cp}]
		}
	}
	return nil
}

// insertLocked adds a freshly built map under key, resolving races with
// concurrent builders of the same endpoint: an existing entry with an
// equal or wider cap wins and the new build is discarded; a narrower
// unpinned entry is subsumed (dropped) by the new one. Concurrent
// batches cold-missing the same key thus each pay a build and all but
// one are discarded — a deliberate simplicity tradeoff over per-key
// singleflight, bounded to the cache's warm-up window (and the loser's
// arrays go straight back to the pool). denseBytes is the dense
// distance array's size, |V| of the generation's graph.
func (c *Cache) insertLocked(key entryKey, dm *msbfs.DistMap, denseBytes int64) *entry {
	if e := c.lookupLocked(key); e != nil {
		dm.Release()
		c.lru.MoveToFront(e.elem)
		return e
	}
	dv := dirVertex{key.gen, key.dir, key.v}
	for _, cp := range append([]uint8(nil), c.caps[dv]...) {
		if cp < key.cap {
			if narrow := c.entries[entryKey{key.gen, key.dir, key.v, cp}]; narrow.refs == 0 {
				c.dropLocked(narrow)
				c.evictions++
			}
		}
	}
	e := &entry{
		key:   key,
		dm:    dm,
		bytes: denseBytes + 4*int64(dm.NumVisited()),
	}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	caps := c.caps[dv]
	at := 0
	for at < len(caps) && caps[at] < key.cap {
		at++
	}
	caps = append(caps, 0)
	copy(caps[at+1:], caps[at:])
	caps[at] = key.cap
	c.caps[dv] = caps
	c.bytes += e.bytes
	return e
}

// evictLocked drops unpinned entries until the byte budget holds,
// preferring entries of stale generations (anything but the most
// recently served binding) in LRU order, then current-generation LRU
// victims.
func (c *Cache) evictLocked() {
	frontGen := ^uint64(0)
	if len(c.bindings) > 0 {
		frontGen = c.bindings[0].gen
	}
	for c.bytes > c.maxBytes {
		var victim *entry
		for elem := c.lru.Back(); elem != nil; elem = elem.Prev() {
			if e := elem.Value.(*entry); e.refs == 0 && e.key.gen != frontGen {
				victim = e
				break
			}
		}
		if victim == nil {
			for elem := c.lru.Back(); elem != nil; elem = elem.Prev() {
				if e := elem.Value.(*entry); e.refs == 0 {
					victim = e
					break
				}
			}
		}
		if victim == nil {
			return // everything pinned; transient overshoot
		}
		c.dropLocked(victim)
		c.evictions++
	}
}

// dropLocked removes an entry from the table, LRU and cap set. Unpinned
// storage returns to the pool immediately; pinned entries are orphaned
// and release on their last unpin.
func (c *Cache) dropLocked(e *entry) {
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
	dv := dirVertex{e.key.gen, e.key.dir, e.key.v}
	caps := c.caps[dv]
	for i, cp := range caps {
		if cp == e.key.cap {
			c.caps[dv] = append(caps[:i], caps[i+1:]...)
			break
		}
	}
	if len(c.caps[dv]) == 0 {
		delete(c.caps, dv)
	}
	c.bytes -= e.bytes
	if e.refs == 0 {
		e.dm.Release()
	} else {
		e.orphaned = true
	}
}
