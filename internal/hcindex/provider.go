// Provider abstraction over index construction. The engines never call
// Build directly any more: they Acquire an Index from a Provider and
// Release it when the batch is answered. Two implementations exist —
// the cold Builder (a fresh build per batch, optionally recycling dense
// arrays through a msbfs.Pool) and the cross-batch Cache (cache.go),
// which amortises the MS-BFS phase across batches that repeat
// endpoints, the dominant pattern of online traffic.
package hcindex

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/msbfs"
	"repro/internal/query"
)

// Provider supplies per-batch distance indexes. Implementations must be
// safe for concurrent Acquire/Release from multiple in-flight batches.
type Provider interface {
	// Acquire returns the index for the batch. Queries must already be
	// validated (query.Batch). epoch identifies the graph version the
	// batch runs on (the versioned store's snapshot epoch; zero for
	// static graphs): caching providers must never serve one epoch's
	// entries to another, even across pointer-identical graphs. The
	// caller owns the result until it calls Release on it.
	Acquire(g, gr *graph.Graph, epoch uint64, queries []query.Query) *Index
	// Stats returns a snapshot of the provider's lifetime counters.
	Stats() Stats
}

// Stats are a Provider's lifetime counters. For the cold Builder only
// Misses advances; the Cache fills everything.
type Stats struct {
	// Hits and Misses count index probes (two per query: forward and
	// backward) answered from cache vs built fresh.
	Hits, Misses int64
	// Widened counts the subset of Hits served from an entry with a
	// larger hop cap than the query's, through threshold filtering.
	Widened int64
	// Evictions counts cache entries dropped to stay inside the byte
	// budget.
	Evictions int64
	// Entries and BytesInUse describe the cache's current contents;
	// BytesBudget is its configured ceiling.
	Entries     int
	BytesInUse  int64
	BytesBudget int64
}

// HitRatio returns Hits / (Hits + Misses), zero when no probes ran.
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Builder is the cold Provider: every Acquire runs the two MS-BFS
// passes of Build. With pooling enabled the dense distance arrays are
// recycled through a msbfs.Pool across batches (sparse-reset on
// Release), so repeated batches stop paying the n-byte-per-source
// allocation churn even without result caching.
type Builder struct {
	pooled  bool
	workers int

	mu   sync.Mutex
	pool *msbfs.Pool // lazily sized to the graph seen

	misses atomic.Int64
}

// NewBuilder returns a cold Provider; pooled selects dense-array
// recycling. Builds run the sequential reference kernel.
func NewBuilder(pooled bool) *Builder { return &Builder{pooled: pooled} }

// NewBuilderWorkers is NewBuilder with a build-parallelism knob: a
// positive workers count runs every MS-BFS pass on that many goroutines
// with direction-optimizing push/pull levels; non-positive keeps the
// sequential reference kernel.
func NewBuilderWorkers(pooled bool, workers int) *Builder {
	return &Builder{pooled: pooled, workers: workers}
}

// Acquire implements Provider with a fresh build; a cold builder has no
// cross-batch state, so the epoch only guards its pool sizing.
func (b *Builder) Acquire(g, gr *graph.Graph, _ uint64, queries []query.Query) *Index {
	var pool *msbfs.Pool
	if b.pooled {
		b.mu.Lock()
		if b.pool == nil || b.pool.NumVertices() != g.NumVertices() {
			b.pool = msbfs.NewPool(g.NumVertices())
		}
		pool = b.pool
		b.mu.Unlock()
	}
	idx := buildIn(g, gr, queries, pool, b.workers)
	if pool != nil {
		idx.release = idx.releaseDistinct
	}
	b.misses.Add(int64(idx.Misses))
	return idx
}

// Stats implements Provider.
func (b *Builder) Stats() Stats { return Stats{Misses: b.misses.Load()} }
