package hcindex

import (
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/query"
)

func cacheFixture(t *testing.T) (g, gr *graph.Graph, qs []query.Query) {
	t.Helper()
	g = graph.GenRandom(400, 4, 3)
	gr = g.Reverse()
	raw := []query.Query{
		{S: 1, T: 200, K: 4},
		{S: 1, T: 200, K: 4}, // duplicate: must share maps
		{S: 7, T: 31, K: 5},
		{S: 1, T: 31, K: 3}, // repeats endpoint 1 with narrower cap
	}
	qs, err := query.Batch(g, raw)
	if err != nil {
		t.Fatal(err)
	}
	return g, gr, qs
}

// indexesAgree compares every per-query map of two indexes over all
// vertices.
func indexesAgree(t *testing.T, label string, g *graph.Graph, want, got *Index, nq int) {
	t.Helper()
	for i := 0; i < nq; i++ {
		for v := graph.VertexID(0); int(v) < g.NumVertices(); v++ {
			if a, b := want.DistFromS(i, v), got.DistFromS(i, v); a != b {
				t.Fatalf("%s: query %d fwd dist(%d): %d vs %d", label, i, v, b, a)
			}
			if a, b := want.DistToT(i, v), got.DistToT(i, v); a != b {
				t.Fatalf("%s: query %d bwd dist(%d): %d vs %d", label, i, v, b, a)
			}
		}
		if a, b := len(want.Gamma(i)), len(got.Gamma(i)); a != b {
			t.Fatalf("%s: query %d |Γ|: %d vs %d", label, i, b, a)
		}
		if a, b := len(want.GammaR(i)), len(got.GammaR(i)); a != b {
			t.Fatalf("%s: query %d |Γr|: %d vs %d", label, i, b, a)
		}
	}
}

// TestCacheMatchesColdBuild: a cache must reproduce Build exactly, on
// its cold pass and again on its fully warm pass.
func TestCacheMatchesColdBuild(t *testing.T) {
	g, gr, qs := cacheFixture(t)
	want := Build(g, gr, qs)
	c := NewCache(0)
	for _, round := range []string{"cold", "warm"} {
		idx := c.Acquire(g, gr, 0, qs)
		indexesAgree(t, round, g, want, idx, len(qs))
		if round == "warm" && idx.Misses != 0 {
			t.Errorf("warm pass missed %d probes", idx.Misses)
		}
		if idx.Hits+idx.Misses != 2*len(qs) {
			t.Errorf("%s: %d probes accounted, want %d", round, idx.Hits+idx.Misses, 2*len(qs))
		}
		idx.Release()
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 || st.BytesInUse == 0 || st.Entries == 0 {
		t.Errorf("implausible stats after warm pass: %+v", st)
	}
}

// TestCacheWidening: entries built at a larger cap must serve narrower
// queries through threshold filtering, and the served maps must match a
// cold build at the narrow cap exactly.
func TestCacheWidening(t *testing.T) {
	g, gr, _ := cacheFixture(t)
	wideRaw := []query.Query{{S: 3, T: 50, K: 8}, {S: 90, T: 3, K: 8}}
	narrowRaw := []query.Query{{S: 3, T: 50, K: 5}, {S: 90, T: 3, K: 5}}
	wide, err := query.Batch(g, wideRaw)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := query.Batch(g, narrowRaw)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(0)
	c.Acquire(g, gr, 0, wide).Release()
	idx := c.Acquire(g, gr, 0, narrow)
	if idx.Misses != 0 {
		t.Fatalf("widened pass missed %d probes", idx.Misses)
	}
	indexesAgree(t, "widened", g, Build(g, gr, narrow), idx, len(narrow))
	idx.Release()
	if w := c.Stats().Widened; w == 0 {
		t.Error("no widened hits recorded")
	}
}

// TestCacheSubsumesNarrowEntries: inserting a wider entry drops the now
// redundant narrower one for the same endpoint.
func TestCacheSubsumesNarrowEntries(t *testing.T) {
	g, gr, _ := cacheFixture(t)
	narrow, _ := query.Batch(g, []query.Query{{S: 3, T: 50, K: 3}})
	wide, _ := query.Batch(g, []query.Query{{S: 3, T: 50, K: 7}})
	c := NewCache(0)
	c.Acquire(g, gr, 0, narrow).Release()
	if got := c.Stats().Entries; got != 2 {
		t.Fatalf("after narrow pass: %d entries, want 2", got)
	}
	c.Acquire(g, gr, 0, wide).Release()
	// Forward (3, cap 3) and backward (50, cap 3) are both subsumed by
	// their cap-7 rebuilds.
	if got := c.Stats().Entries; got != 2 {
		t.Errorf("after wide pass: %d entries, want 2 (narrow subsumed)", got)
	}
	idx := c.Acquire(g, gr, 0, narrow)
	if idx.Misses != 0 {
		t.Errorf("narrow re-query missed %d probes, want widened hits", idx.Misses)
	}
	idx.Release()
}

// TestCacheEviction: a tiny budget must evict continuously without ever
// corrupting in-flight results, and pinned entries must survive until
// release.
func TestCacheEviction(t *testing.T) {
	g, gr, qs := cacheFixture(t)
	c := NewCache(1) // evict everything as soon as it is unpinned
	want := Build(g, gr, qs)
	idx := c.Acquire(g, gr, 0, qs)
	indexesAgree(t, "pinned", g, want, idx, len(qs))
	if c.Stats().BytesInUse == 0 {
		t.Error("pinned entries not accounted")
	}
	idx.Release()
	st := c.Stats()
	if st.Entries != 0 || st.BytesInUse != 0 {
		t.Errorf("budget 1: %d entries / %d bytes survive release", st.Entries, st.BytesInUse)
	}
	if st.Evictions == 0 {
		t.Error("no evictions recorded")
	}
	// Second pass over the flushed cache must still be correct.
	idx2 := c.Acquire(g, gr, 0, qs)
	indexesAgree(t, "after-evict", g, want, idx2, len(qs))
	idx2.Release()
}

// TestCacheRebind: acquiring with a different graph opens a fresh
// generation and serves the new graph correctly; rebinding back finds
// the first generation still live in the ring.
func TestCacheRebind(t *testing.T) {
	g, gr, qs := cacheFixture(t)
	g2 := graph.GenGrid(10, 10)
	gr2 := g2.Reverse()
	qs2, err := query.Batch(g2, []query.Query{{S: 0, T: 99, K: 18}})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(0)
	c.Acquire(g, gr, 0, qs).Release()
	idx := c.Acquire(g2, gr2, 0, qs2)
	indexesAgree(t, "rebind", g2, Build(g2, gr2, qs2), idx, len(qs2))
	idx.Release()
	idx2 := c.Acquire(g, gr, 0, qs)
	indexesAgree(t, "rebind-back", g, Build(g, gr, qs), idx2, len(qs))
	idx2.Release()
}

// TestCacheConcurrent hammers one cache from many goroutines (mixed
// caps so widening, insertion races and eviction all fire) under -race.
func TestCacheConcurrent(t *testing.T) {
	g := graph.GenRandom(300, 4, 9)
	gr := g.Reverse()
	c := NewCache(200_000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				raw := []query.Query{
					{S: graph.VertexID((w + i) % 300), T: graph.VertexID((w*17 + i*3 + 1) % 300), K: uint8(3 + (w+i)%4)},
					{S: graph.VertexID(i % 7), T: graph.VertexID(200 + w), K: uint8(3 + i%4)},
				}
				if raw[0].S == raw[0].T || raw[1].S == raw[1].T {
					continue
				}
				qs, err := query.Batch(g, raw)
				if err != nil {
					t.Error(err)
					return
				}
				idx := c.Acquire(g, gr, 0, qs)
				want := Build(g, gr, qs)
				for qi := range qs {
					for _, v := range want.Gamma(qi) {
						if idx.DistFromS(qi, v) != want.DistFromS(qi, v) {
							t.Errorf("worker %d: fwd divergence", w)
							break
						}
					}
				}
				idx.Release()
			}
		}(w)
	}
	wg.Wait()
	if st := c.Stats(); st.Hits == 0 {
		t.Error("concurrent run produced no hits")
	}
}

// TestCacheEpochSeparation is the staleness guard of the live-update
// contract: the same graph pointers acquired under a new epoch must
// miss (the graph's content is presumed changed), never serve the old
// epoch's maps — while the old epoch's generation stays warm for its
// own in-flight traffic.
func TestCacheEpochSeparation(t *testing.T) {
	g, gr, qs := cacheFixture(t)
	c := NewCache(0)
	c.Acquire(g, gr, 0, qs).Release()

	warm := c.Acquire(g, gr, 0, qs)
	if warm.Misses != 0 {
		t.Fatalf("epoch 0 re-acquire missed %d probes", warm.Misses)
	}
	warm.Release()

	bumped := c.Acquire(g, gr, 1, qs)
	if bumped.Hits != 0 {
		t.Fatalf("epoch 1 acquire served %d stale probes from epoch 0", bumped.Hits)
	}
	indexesAgree(t, "epoch-1", g, Build(g, gr, qs), bumped, len(qs))
	bumped.Release()

	// Both generations now live: each serves its own epoch fully warm.
	for _, epoch := range []uint64{0, 1} {
		idx := c.Acquire(g, gr, epoch, qs)
		if idx.Misses != 0 {
			t.Errorf("epoch %d warm acquire missed %d probes", epoch, idx.Misses)
		}
		idx.Release()
	}
}

// TestCachePinnedSurviveRingOverflow: an in-flight index keeps its maps
// usable even after its generation is pushed off the binding ring by a
// burst of newer epochs.
func TestCachePinnedSurviveRingOverflow(t *testing.T) {
	g, gr, qs := cacheFixture(t)
	c := NewCache(0)
	want := Build(g, gr, qs)
	held := c.Acquire(g, gr, 0, qs) // pinned, not released

	for epoch := uint64(1); epoch <= maxBindings+1; epoch++ {
		c.Acquire(g, gr, epoch, qs).Release()
	}

	indexesAgree(t, "held-after-overflow", g, want, held, len(qs))
	held.Release() // orphaned entries release here; must not panic
	// Epoch 0's generation is gone: a re-acquire is a fresh build.
	idx := c.Acquire(g, gr, 0, qs)
	if idx.Hits != 0 {
		t.Errorf("retired generation served %d hits", idx.Hits)
	}
	idx.Release()
}
