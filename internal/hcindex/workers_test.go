package hcindex

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/query"
)

// workersFixture builds a batch large enough to span several 64-source
// MS-BFS chunks per direction, with repeated endpoints and mixed caps.
func workersFixture(t *testing.T) (g, gr *graph.Graph, qs []query.Query) {
	t.Helper()
	g = graph.GenCommunityPowerLaw(600, 30, 4, 0.9, 13)
	gr = g.Reverse()
	rng := rand.New(rand.NewSource(17))
	raw := make([]query.Query, 90)
	for i := range raw {
		raw[i] = query.Query{
			S: graph.VertexID(rng.Intn(40)), // few endpoints: dedup kicks in
			T: graph.VertexID(rng.Intn(g.NumVertices())),
			K: uint8(1 + rng.Intn(7)),
		}
	}
	qs, err := query.Batch(g, raw)
	if err != nil {
		t.Fatal(err)
	}
	return g, gr, qs
}

// TestBuilderWorkersMatchesSequential: the parallel builders must be
// invisible in the results — every worker count, pooled or not,
// reproduces the sequential reference Build on all distance maps.
func TestBuilderWorkersMatchesSequential(t *testing.T) {
	g, gr, qs := workersFixture(t)
	want := Build(g, gr, qs)
	for _, workers := range []int{0, 1, 4} {
		for _, pooled := range []bool{false, true} {
			b := NewBuilderWorkers(pooled, workers)
			for round := 0; round < 2; round++ { // round 2 exercises pool reuse
				idx := b.Acquire(g, gr, 0, qs)
				indexesAgree(t, "builder", g, want, idx, len(qs))
				idx.Release()
			}
		}
	}
}

// TestCacheWorkersMatchesSequential: a parallel-building cache must
// reproduce the sequential reference on its cold pass and stay exact on
// the warm pass, where cached entries replace fresh parallel builds.
func TestCacheWorkersMatchesSequential(t *testing.T) {
	g, gr, qs := workersFixture(t)
	want := Build(g, gr, qs)
	c := NewCacheWorkers(0, 4)
	for _, round := range []string{"cold", "warm"} {
		idx := c.Acquire(g, gr, 0, qs)
		indexesAgree(t, round, g, want, idx, len(qs))
		if round == "warm" && idx.Misses != 0 {
			t.Errorf("warm pass missed %d probes", idx.Misses)
		}
		idx.Release()
	}
}
