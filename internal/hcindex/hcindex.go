// Package hcindex builds and serves the PathEnum-style distance index for
// a batch of HC-s-t path queries (§III of the paper): for every query
// q(s,t,k) it holds dist_G(s,·) and dist_Gr(t,·) capped at k hops,
// constructed with multi-source BFSs from the source set S and target set
// T. The hop-constrained neighbour sets Γ(q)/Γr(q) (Def. 4.4) fall out of
// the same traversals and feed query clustering without extra work.
package hcindex

import (
	"repro/internal/graph"
	"repro/internal/msbfs"
	"repro/internal/query"
)

// Unreachable mirrors msbfs.Unreachable for call sites that only import
// the index.
const Unreachable = msbfs.Unreachable

// Index holds per-query forward and backward hop-bounded distance maps.
// Indexes obtained from a Provider must be Released when the batch is
// done with them (after enumeration, before the next batch), returning
// cached entries and pooled storage to the provider.
type Index struct {
	fwd []*msbfs.DistMap // fwd[i]: distances from queries[i].S on G
	bwd []*msbfs.DistMap // bwd[i]: distances from queries[i].T on Gr

	// Hits and Misses count this acquisition's index probes — two per
	// query (forward and backward) — answered from a provider's cache vs
	// built fresh. A cold build is all misses.
	Hits, Misses int

	release func()
}

// Release hands the index's entries back to the provider that produced
// it: cache entries are unpinned (evictable again), pooled dense arrays
// return to the free-list. Safe to call more than once; a no-op for
// plain Build indexes.
func (idx *Index) Release() {
	if f := idx.release; f != nil {
		idx.release = nil
		f()
	}
}

// Build constructs the index for the batch with two multi-source BFS
// passes (one on G, one on Gr), deduplicating identical (vertex, cap)
// sources so shared endpoints are traversed once. Build runs the
// sequential reference kernel; providers carry the parallelism knob.
func Build(g, gr *graph.Graph, queries []query.Query) *Index {
	return buildIn(g, gr, queries, nil, 0)
}

// buildIn is Build drawing storage from pool (nil means plain
// allocations) with workers goroutines per MS-BFS pass (non-positive
// means the sequential reference kernel). The (g, gr) pair is mutually
// reverse by the Provider contract, so each pass hands the kernel the
// other graph for Beamer-style pull levels.
func buildIn(g, gr *graph.Graph, queries []query.Query, pool *msbfs.Pool, workers int) *Index {
	idx := &Index{
		fwd:    dedupRun(g, gr, queries, pool, workers, func(q query.Query) (graph.VertexID, uint8) { return q.S, q.K }),
		bwd:    dedupRun(gr, g, queries, pool, workers, func(q query.Query) (graph.VertexID, uint8) { return q.T, q.K }),
		Misses: 2 * len(queries),
	}
	return idx
}

// releaseDistinct releases every distinct DistMap of the index once
// (dedupRun aliases one map across the queries that share an endpoint).
func (idx *Index) releaseDistinct() {
	seen := make(map[*msbfs.DistMap]struct{}, len(idx.fwd)+len(idx.bwd))
	for _, maps := range [2][]*msbfs.DistMap{idx.fwd, idx.bwd} {
		for _, dm := range maps {
			if _, ok := seen[dm]; ok {
				continue
			}
			seen[dm] = struct{}{}
			dm.Release()
		}
	}
}

type srcKey struct {
	v graph.VertexID
	k uint8
}

// dedupRun runs one multi-source BFS for the distinct (vertex, cap)
// pairs produced by pick, then fans results back out per query. rev is
// the edge-reverse of g, enabling the kernel's pull direction when
// workers selects the parallel engine.
func dedupRun(g, rev *graph.Graph, queries []query.Query, pool *msbfs.Pool, workers int, pick func(query.Query) (graph.VertexID, uint8)) []*msbfs.DistMap {
	slot := make(map[srcKey]int)
	var sources []graph.VertexID
	var caps []uint8
	assign := make([]int, len(queries))
	for i, q := range queries {
		v, k := pick(q)
		key := srcKey{v, k}
		s, ok := slot[key]
		if !ok {
			s = len(sources)
			slot[key] = s
			sources = append(sources, v)
			caps = append(caps, k)
		}
		assign[i] = s
	}
	res := msbfs.MultiSourceOpts(g, sources, caps, pool, msbfs.BuildOptions{Workers: workers, Reverse: rev})
	out := make([]*msbfs.DistMap, len(queries))
	for i, s := range assign {
		out[i] = res[s]
	}
	return out
}

// DistFromS returns dist_G(q.S, v) for the i-th query, or Unreachable if
// v is beyond q.K hops.
func (idx *Index) DistFromS(i int, v graph.VertexID) uint8 { return idx.fwd[i].Dist(v) }

// DistToT returns dist_G(v, q.T) (computed as dist_Gr(q.T, v)) for the
// i-th query, or Unreachable if beyond q.K hops.
func (idx *Index) DistToT(i int, v graph.VertexID) uint8 { return idx.bwd[i].Dist(v) }

// Gamma returns Γ(q): the sorted vertices reachable from q.S within q.K
// hops on G (Def. 4.4). The slice must not be modified.
func (idx *Index) Gamma(i int) []graph.VertexID { return idx.fwd[i].Visited() }

// GammaR returns Γr(q): the sorted vertices reaching q.T within q.K hops
// (i.e. reachable from q.T on Gr). The slice must not be modified.
func (idx *Index) GammaR(i int) []graph.VertexID { return idx.bwd[i].Visited() }

// Reachable reports whether query i's target is within its hop budget of
// its source at all; unreachable queries have empty result sets and can
// be skipped by every engine.
func (idx *Index) Reachable(i int, q query.Query) bool {
	return idx.fwd[i].Dist(q.T) <= q.K
}

// LevelSizes returns, for the i-th query's forward (dir=Forward) or
// backward (dir=Backward) map, the number of vertices at each distance
// 0..cap. Engines use these to estimate search frontier growth when
// choosing an optimised cut point.
func (idx *Index) LevelSizes(i int, dir Direction) []int {
	dm := idx.fwd[i]
	if dir == Backward {
		dm = idx.bwd[i]
	}
	sizes := make([]int, int(dm.Cap)+1)
	for _, v := range dm.Visited() {
		sizes[dm.Dist(v)]++
	}
	return sizes
}

// Direction selects the forward (on G) or backward (on Gr) half of the
// index.
type Direction int

// Direction values.
const (
	Forward Direction = iota
	Backward
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Forward {
		return "forward"
	}
	return "backward"
}

// DistMapFor exposes the raw per-query DistMap, used by the sharing
// detector which walks frontiers itself.
func (idx *Index) DistMapFor(i int, dir Direction) *msbfs.DistMap {
	if dir == Forward {
		return idx.fwd[i]
	}
	return idx.bwd[i]
}
