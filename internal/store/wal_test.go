package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"repro/internal/graph"
)

// encodeAll frames a sequence of records the way the store logs them.
func encodeAll(recs []walRecord) []byte {
	var d durability
	var out []byte
	for _, r := range recs {
		d.encodeRecord(r.kind, r.epoch, r.adds, r.dels)
		out = append(out, d.buf...)
	}
	return out
}

func sampleRecords() []walRecord {
	return []walRecord{
		{kind: recUpdate, epoch: 1,
			adds: []graph.Edge{{Src: 0, Dst: 1}, {Src: 7, Dst: 3}},
			dels: []graph.Edge{{Src: 2, Dst: 2}}},
		{kind: recNoop, epoch: 1},
		{kind: recCompact, epoch: 2},
		{kind: recUpdate, epoch: 3, adds: []graph.Edge{{Src: 1, Dst: 9}}},
	}
}

func TestWALRoundTrip(t *testing.T) {
	want := sampleRecords()
	data := encodeAll(want)

	got, valid, err := scanWAL(data)
	if err != nil {
		t.Fatalf("scanWAL: %v", err)
	}
	if valid != len(data) {
		t.Fatalf("valid = %d, want %d", valid, len(data))
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.kind != w.kind || g.epoch != w.epoch {
			t.Fatalf("record %d: kind/epoch = %d/%d, want %d/%d", i, g.kind, g.epoch, w.kind, w.epoch)
		}
		if len(g.adds) != len(w.adds) || len(g.dels) != len(w.dels) {
			t.Fatalf("record %d: %d adds %d dels, want %d/%d", i, len(g.adds), len(g.dels), len(w.adds), len(w.dels))
		}
		for j := range w.adds {
			if g.adds[j] != w.adds[j] {
				t.Fatalf("record %d add %d: %v, want %v", i, j, g.adds[j], w.adds[j])
			}
		}
		for j := range w.dels {
			if g.dels[j] != w.dels[j] {
				t.Fatalf("record %d del %d: %v, want %v", i, j, g.dels[j], w.dels[j])
			}
		}
	}
}

// TestScanWALTornAtEveryByte truncates an encoded stream at every byte
// position: each cut must decode exactly the records whose frames end
// at or before it, report the torn tail, and hand back the byte length
// of the intact prefix.
func TestScanWALTornAtEveryByte(t *testing.T) {
	data := encodeAll(sampleRecords())
	bounds := frameBounds(t, data)

	for cut := 0; cut <= len(data); cut++ {
		recs, valid, err := scanWAL(data[:cut])
		wantRecs := 0
		for _, b := range bounds[1:] {
			if b <= cut {
				wantRecs++
			}
		}
		if len(recs) != wantRecs {
			t.Fatalf("cut %d: decoded %d records, want %d", cut, len(recs), wantRecs)
		}
		if valid != bounds[wantRecs] {
			t.Fatalf("cut %d: valid = %d, want %d", cut, valid, bounds[wantRecs])
		}
		atBoundary := cut == bounds[wantRecs]
		if atBoundary && err != nil {
			t.Fatalf("cut %d (clean boundary): err = %v", cut, err)
		}
		if !atBoundary && !errors.Is(err, errTornTail) {
			t.Fatalf("cut %d: err = %v, want torn tail", cut, err)
		}
	}
}

func TestScanWALCRCMismatch(t *testing.T) {
	data := encodeAll(sampleRecords())
	bounds := frameBounds(t, data)

	// Flip one payload byte of the second record: scanning stops there,
	// keeps record one, and reports a (truncatable) torn tail.
	corrupt := bytes.Clone(data)
	corrupt[bounds[1]+walFrameHeader] ^= 0xff
	recs, valid, err := scanWAL(corrupt)
	if len(recs) != 1 || valid != bounds[1] {
		t.Fatalf("recs = %d, valid = %d; want 1, %d", len(recs), valid, bounds[1])
	}
	if !errors.Is(err, errTornTail) {
		t.Fatalf("err = %v, want torn tail", err)
	}
}

// TestScanWALMalformedPayload builds a record whose CRC is valid but
// whose payload lies about its edge counts: that is corruption no
// truncation should silently absorb.
func TestScanWALMalformedPayload(t *testing.T) {
	var d durability
	d.encodeRecord(recUpdate, 1, []graph.Edge{{Src: 0, Dst: 1}}, nil)
	// Rewrite the payload's nAdds to 2 and re-CRC so only decodeRecord
	// can object.
	buf := bytes.Clone(d.buf)
	payload := buf[walFrameHeader:]
	payload[9] = 2
	reCRC(buf)
	_, _, err := scanWAL(buf)
	if err == nil || errors.Is(err, errTornTail) {
		t.Fatalf("err = %v, want a non-torn corruption error", err)
	}

	// Same for an unknown record kind.
	d.encodeRecord(recUpdate, 1, nil, nil)
	buf = bytes.Clone(d.buf)
	buf[walFrameHeader] = 99
	reCRC(buf)
	_, _, err = scanWAL(buf)
	if err == nil || errors.Is(err, errTornTail) {
		t.Fatalf("unknown kind: err = %v, want a non-torn corruption error", err)
	}
}

// frameBounds returns the cumulative frame end offsets of a valid
// stream, starting with 0.
func frameBounds(t *testing.T, data []byte) []int {
	t.Helper()
	bounds := []int{0}
	off := 0
	for off < len(data) {
		plen := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		off += walFrameHeader + plen
		bounds = append(bounds, off)
	}
	if off != len(data) {
		t.Fatalf("stream does not end on a frame boundary")
	}
	return bounds
}

// reCRC recomputes a single frame's CRC in place after test tampering.
func reCRC(frame []byte) {
	sum := crc32.Checksum(frame[walFrameHeader:], castagnoli)
	binary.LittleEndian.PutUint32(frame[4:8], sum)
}
