package store

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
)

// crash simulates kill -9 for tests: it releases the WAL file handle
// without checkpointing, syncing, or otherwise cleaning up — the data
// directory is left exactly as an interrupted process would leave it.
func crash(s *Store) {
	s.wg.Wait() // in-flight background checkpoints hold the old handle
	d := s.dur
	if d.syncStop != nil {
		close(d.syncStop)
		<-d.syncDone
		d.syncStop = nil
	}
	s.mu.Lock()
	if d.f != nil {
		d.f.Close()
		d.f = nil
	}
	s.mu.Unlock()
}

func openT(t *testing.T, dir string, initial *graph.Graph, opts DurableOptions) *Store {
	t.Helper()
	s, err := Open(dir, initial, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// wave i of the deterministic update stream: every wave is effective
// (adds a fresh edge) and also deletes the edge two waves back.
func wave(i int) (adds, dels []graph.Edge) {
	adds = []graph.Edge{{Src: graph.VertexID(i % 7), Dst: graph.VertexID(7 + i%5)}}
	if i >= 2 {
		j := i - 2
		dels = []graph.Edge{{Src: graph.VertexID(j % 7), Dst: graph.VertexID(7 + j%5)}}
	}
	return adds, dels
}

func seedGraph() *graph.Graph {
	return graph.FromEdges(12, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}})
}

// memStates replays n waves on an in-memory store with the same
// options and returns the State after each prefix: states[i] is the
// state a durable store must recover to when exactly i update records
// survive. The transition function is shared (buildNext), so this is
// the ground truth for every crash test below.
func memStates(opts Options, n int) []State {
	ref := New(seedGraph(), opts)
	states := make([]State, n+1)
	states[0] = ref.Current().State()
	for i := 0; i < n; i++ {
		adds, dels := wave(i)
		if _, err := ref.ApplyUpdates(adds, dels); err != nil {
			panic(err)
		}
		states[i+1] = ref.Current().State()
	}
	return states
}

func requireState(t *testing.T, label string, s *Store, want State) {
	t.Helper()
	if got := s.Current().State(); got != want {
		t.Fatalf("%s: state %+v, want %+v", label, got, want)
	}
}

// TestDurableBootstrapAndReopen: an empty directory bootstraps from
// the initial graph, a clean close/reopen cycle preserves the exact
// state and counters, and the reopened store keeps accepting updates.
func TestDurableBootstrapAndReopen(t *testing.T) {
	dir := t.TempDir()
	opts := DurableOptions{Options: Options{CompactAfter: -1}}
	s := openT(t, dir, seedGraph(), opts)
	want := memStates(opts.Options, 4)

	requireState(t, "bootstrap", s, want[0])
	for i := 0; i < 4; i++ {
		adds, dels := wave(i)
		mustApply(t, s, adds, dels)
	}
	requireState(t, "pre-close", s, want[4])
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openT(t, dir, nil, opts) // initial must be ignored: disk wins
	defer s2.Close()
	requireState(t, "reopened", s2, want[4])
	st := s2.Stats()
	if st.WALRecords != 4 || st.UpdatesApplied == 0 {
		t.Fatalf("reopened stats: %+v", st)
	}
	if st.SnapshotEpoch != 4 {
		t.Fatalf("close must checkpoint the final epoch; snapshot at %d", st.SnapshotEpoch)
	}
	adds, dels := wave(4)
	mustApply(t, s2, adds, dels)
	if got := s2.Current().Epoch(); got != 5 {
		t.Fatalf("epoch after post-reopen update: %d, want 5", got)
	}
}

// TestWarmRestartAfterCrash: a crash with no Close loses nothing under
// FsyncAlways — the reopened store reaches the exact pre-crash epoch,
// edge set, and WALRecords count.
func TestWarmRestartAfterCrash(t *testing.T) {
	dir := t.TempDir()
	opts := DurableOptions{Options: Options{CompactAfter: -1}}
	s := openT(t, dir, seedGraph(), opts)
	for i := 0; i < 5; i++ {
		adds, dels := wave(i)
		mustApply(t, s, adds, dels)
	}
	want := s.Current().State()
	wantRecs := s.Stats().WALRecords
	crash(s)

	s2 := openT(t, dir, nil, opts)
	defer s2.Close()
	requireState(t, "recovered", s2, want)
	if got := s2.Stats().WALRecords; got != wantRecs {
		t.Fatalf("WALRecords after recovery: %d, want %d", got, wantRecs)
	}
}

// TestTornTailEveryByte is the crash matrix core: the WAL is cut at
// every byte position and recovery must land on exactly the state of
// the longest intact record prefix — never an error, never a wrong
// graph. Cuts inside record i's frame recover states[i]; cuts on a
// boundary recover that boundary's state cleanly.
func TestTornTailEveryByte(t *testing.T) {
	const waves = 4
	dir := t.TempDir()
	opts := DurableOptions{
		Options:         Options{CompactAfter: -1},
		Fsync:           FsyncOff,
		CheckpointEvery: -1, // keep every record in wal-0
	}
	s := openT(t, dir, seedGraph(), opts)
	for i := 0; i < waves; i++ {
		adds, dels := wave(i)
		mustApply(t, s, adds, dels)
	}
	crash(s)

	wal := walPath(dir, 0)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	bounds := frameBounds(t, data)
	if len(bounds) != waves+1 {
		t.Fatalf("wal-0 holds %d records, want %d", len(bounds)-1, waves)
	}
	states := memStates(opts.Options, waves)

	for cut := 0; cut <= len(data); cut++ {
		if err := os.WriteFile(wal, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		intact := 0
		for _, b := range bounds[1:] {
			if b <= cut {
				intact++
			}
		}
		r := openT(t, dir, nil, opts)
		if got := r.Current().State(); got != states[intact] {
			crash(r)
			t.Fatalf("cut %d (%d intact records): state %+v, want %+v", cut, intact, got, states[intact])
		}
		if got := r.Stats().WALRecords; got != int64(intact) {
			crash(r)
			t.Fatalf("cut %d: WALRecords %d, want %d", cut, got, intact)
		}
		// Recovery truncated the torn tail: the file must now end on the
		// boundary, and the store must accept appends from there.
		fi, err := os.Stat(wal)
		if err != nil {
			crash(r)
			t.Fatal(err)
		}
		if fi.Size() != int64(bounds[intact]) {
			crash(r)
			t.Fatalf("cut %d: wal is %d bytes after recovery, want %d", cut, fi.Size(), bounds[intact])
		}
		adds, dels := wave(intact)
		mustApply(t, r, adds, dels)
		crash(r)
	}
}

// TestCorruptSnapshotFallsBack: recovery skips a corrupt newest
// snapshot and reaches the same state from the previous generation
// plus a longer chain replay; with every snapshot corrupt, Open fails
// loudly instead of guessing.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	opts := DurableOptions{
		Options:         Options{CompactAfter: -1},
		Fsync:           FsyncOff,
		CheckpointEvery: -1,
	}
	s := openT(t, dir, seedGraph(), opts)
	for i := 0; i < 2; i++ {
		adds, dels := wave(i)
		mustApply(t, s, adds, dels)
	}
	if err := s.Checkpoint(); err != nil { // snap-2, rotates to wal-2
		t.Fatal(err)
	}
	for i := 2; i < 4; i++ {
		adds, dels := wave(i)
		mustApply(t, s, adds, dels)
	}
	if err := s.Checkpoint(); err != nil { // snap-4, rotates to wal-4
		t.Fatal(err)
	}
	adds, dels := wave(4) // records live in wal-4 only
	mustApply(t, s, adds, dels)
	want := s.Current().State()
	crash(s)

	flip := func(path string, off int64) {
		t.Helper()
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[off] ^= 0xff
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	flip(snapPath(dir, 4), snapHeaderSize+3) // corrupt the newest snapshot's graph bytes
	s2 := openT(t, dir, nil, opts)
	requireState(t, "fallback recovery", s2, want)
	crash(s2)

	flip(snapPath(dir, 2), snapHeaderSize+3) // now every snapshot is corrupt
	if _, err := Open(dir, nil, opts); err == nil || !strings.Contains(err.Error(), "no loadable snapshot") {
		t.Fatalf("Open with all snapshots corrupt: %v, want a loud failure", err)
	}
}

// TestMissingSegmentFailsLoudly: a gap in the replay chain means lost
// records; recovery must refuse rather than silently skip epochs.
func TestMissingSegmentFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	opts := DurableOptions{
		Options:         Options{CompactAfter: -1},
		Fsync:           FsyncOff,
		CheckpointEvery: -1,
	}
	s := openT(t, dir, seedGraph(), opts)
	for i := 0; i < 2; i++ {
		adds, dels := wave(i)
		mustApply(t, s, adds, dels)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	adds, dels := wave(2)
	mustApply(t, s, adds, dels)
	crash(s)

	// Force recovery down to the epoch-0 snapshot, whose chain needs
	// wal-0, then delete wal-0: the chain now starts at wal-2.
	b, err := os.ReadFile(snapPath(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	b[snapHeaderSize+3] ^= 0xff
	if err := os.WriteFile(snapPath(dir, 2), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(walPath(dir, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil, opts); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("Open with a chain gap: %v, want a missing-segment failure", err)
	}
}

// TestCorruptionInNonFinalSegmentFailsLoudly: torn-tail truncation is
// only legitimate on the last segment; the same damage earlier in the
// chain would silently drop records that later segments build on.
func TestCorruptionInNonFinalSegmentFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	opts := DurableOptions{
		Options:         Options{CompactAfter: -1},
		Fsync:           FsyncOff,
		CheckpointEvery: -1,
	}
	s := openT(t, dir, seedGraph(), opts)
	for i := 0; i < 2; i++ {
		adds, dels := wave(i)
		mustApply(t, s, adds, dels)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	adds, dels := wave(2)
	mustApply(t, s, adds, dels)
	crash(s)

	// Corrupt the newest snapshot so recovery must replay wal-0 (no
	// longer the final segment — wal-2 follows it), then tear wal-0.
	b, err := os.ReadFile(snapPath(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	b[snapHeaderSize+3] ^= 0xff
	if err := os.WriteFile(snapPath(dir, 2), b, 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := os.ReadFile(walPath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	w[len(w)-1] ^= 0xff
	if err := os.WriteFile(walPath(dir, 0), w, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil, opts); err == nil || !errors.Is(err, errTornTail) {
		t.Fatalf("Open with mid-chain corruption: %v, want the torn-tail error surfaced loudly", err)
	}
}

// TestSnapshotNewerThanWAL: a snapshot with no following segments (say
// the segments were archived away) must recover to the snapshot state
// and open a fresh segment at its epoch.
func TestSnapshotNewerThanWAL(t *testing.T) {
	dir := t.TempDir()
	opts := DurableOptions{Options: Options{CompactAfter: -1}, Fsync: FsyncOff}
	s := openT(t, dir, seedGraph(), opts)
	for i := 0; i < 3; i++ {
		adds, dels := wave(i)
		mustApply(t, s, adds, dels)
	}
	want := s.Current().State()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, segs, err := scanDir(dir)
	if err != nil || len(snaps) == 0 {
		t.Fatalf("scanDir: %v, %d snaps", err, len(snaps))
	}
	for _, sg := range segs {
		if err := os.Remove(sg.path); err != nil {
			t.Fatal(err)
		}
	}
	s2 := openT(t, dir, nil, opts)
	defer s2.Close()
	requireState(t, "snapshot-only recovery", s2, want)
	adds, dels := wave(3)
	mustApply(t, s2, adds, dels)
	if got := s2.Current().Epoch(); got != want.Epoch+1 {
		t.Fatalf("epoch after update: %d, want %d", got, want.Epoch+1)
	}
}

// TestRecoverMidCompaction: a crash right after a compaction record is
// logged (before any checkpoint captures the folded CSR) replays the
// compaction and reaches the same epoch with a flattened snapshot.
func TestRecoverMidCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := DurableOptions{
		Options:         Options{CompactAfter: 2, SyncCompact: true},
		Fsync:           FsyncOff,
		CheckpointEvery: -1, // the recCompact record must stay in the WAL
	}
	s := openT(t, dir, seedGraph(), opts)
	compacted := false
	for i := 0; i < 6 && !compacted; i++ {
		adds, dels := wave(i)
		snap, err := s.ApplyUpdates(adds, dels)
		if err != nil {
			t.Fatal(err)
		}
		compacted = !snap.Graph().IsOverlay()
	}
	if !compacted {
		t.Fatal("sequence never compacted; lower CompactAfter")
	}
	want := s.Current().State()
	wantCompactions := s.Stats().Compactions
	crash(s)

	s2 := openT(t, dir, nil, opts)
	defer s2.Close()
	requireState(t, "post-compaction recovery", s2, want)
	if got := s2.Stats().Compactions; got != wantCompactions {
		t.Fatalf("Compactions after recovery: %d, want %d", got, wantCompactions)
	}
	if s2.Current().Graph().IsOverlay() {
		t.Fatal("replayed compaction left an overlay snapshot")
	}
}

// TestNoopRecordsKeepSeq: ineffective updates still advance WALRecords
// (the CLI's replay cursor) and survive a crash.
func TestNoopRecordsKeepSeq(t *testing.T) {
	dir := t.TempDir()
	opts := DurableOptions{Options: Options{CompactAfter: -1}, Fsync: FsyncOff}
	s := openT(t, dir, seedGraph(), opts)
	mustApply(t, s, []graph.Edge{{Src: 9, Dst: 10}}, nil)
	// Both a duplicate add and a miss delete are no-ops.
	mustApply(t, s, []graph.Edge{{Src: 9, Dst: 10}}, nil)
	mustApply(t, s, nil, []graph.Edge{{Src: 3, Dst: 9}})
	if got := s.Stats(); got.WALRecords != 3 || got.Epoch != 1 {
		t.Fatalf("pre-crash stats: %+v, want 3 records at epoch 1", got)
	}
	want := s.Current().State()
	crash(s)

	s2 := openT(t, dir, nil, opts)
	defer s2.Close()
	requireState(t, "recovered", s2, want)
	if got := s2.Stats(); got.WALRecords != 3 || got.Epoch != 1 {
		t.Fatalf("post-crash stats: %+v, want 3 records at epoch 1", got)
	}
}

// TestCheckpointPrunes: repeated checkpoints keep at most the two
// newest snapshot generations (plus their segments) and the directory
// stays recoverable throughout.
func TestCheckpointPrunes(t *testing.T) {
	dir := t.TempDir()
	opts := DurableOptions{
		Options:         Options{CompactAfter: -1},
		Fsync:           FsyncOff,
		CheckpointEvery: -1,
	}
	s := openT(t, dir, seedGraph(), opts)
	for i := 0; i < 6; i++ {
		adds, dels := wave(i)
		mustApply(t, s, adds, dels)
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	want := s.Current().State()
	crash(s)

	snaps, segs, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) > 2 {
		t.Fatalf("%d snapshots survive pruning, want ≤ 2", len(snaps))
	}
	for _, sg := range segs {
		if sg.epoch < snaps[0].epoch {
			t.Fatalf("segment %s predates the oldest kept snapshot (epoch %d)", sg.path, snaps[0].epoch)
		}
	}
	s2 := openT(t, dir, nil, opts)
	defer s2.Close()
	requireState(t, "recovered after pruning", s2, want)
}

// TestBackgroundCheckpointPressure: with a tiny CheckpointEvery the
// background checkpointer must fire on its own and advance the on-disk
// snapshot epoch without any manual Checkpoint call.
func TestBackgroundCheckpointPressure(t *testing.T) {
	dir := t.TempDir()
	opts := DurableOptions{
		Options:         Options{CompactAfter: -1},
		Fsync:           FsyncOff,
		CheckpointEvery: 2,
	}
	s := openT(t, dir, seedGraph(), opts)
	defer s.Close()
	for i := 0; i < 8; i++ {
		adds, dels := wave(i)
		mustApply(t, s, adds, dels)
	}
	s.wg.Wait() // drain in-flight background checkpoints
	st := s.Stats()
	if st.Checkpoints == 0 || st.SnapshotEpoch == 0 {
		t.Fatalf("background checkpointer never fired: %+v", st)
	}
}

// TestFsyncPolicyRoundTrips: every policy survives a clean
// close/reopen (Close syncs regardless of policy).
func TestFsyncPolicyRoundTrips(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncOff} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			opts := DurableOptions{
				Options:   Options{CompactAfter: -1},
				Fsync:     p,
				SyncEvery: time.Millisecond,
			}
			s := openT(t, dir, seedGraph(), opts)
			for i := 0; i < 3; i++ {
				adds, dels := wave(i)
				mustApply(t, s, adds, dels)
			}
			want := s.Current().State()
			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			s2 := openT(t, dir, nil, opts)
			defer s2.Close()
			requireState(t, "reopened", s2, want)
		})
	}
}

// TestParseFsyncPolicy pins the flag spelling both ways.
func TestParseFsyncPolicy(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncOff} {
		got, err := ParseFsyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy accepted garbage")
	}
}

// FuzzWALReplay is the differential oracle of recovery: an arbitrary
// byte string is decoded into a bounded update stream, applied to a
// durable store that then crashes, and to a plain in-memory store; the
// recovered store must agree with the in-memory reference on epoch,
// vertex count, edge count, and canonical CSR checksum.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 2, 9, 4, 4})
	f.Add([]byte{2, 1, 0, 1, 1, 2, 0, 1, 3, 0, 1, 5, 2, 7})
	f.Add(bytes.Repeat([]byte{1, 1, 3, 8, 3, 8}, 8))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode waves: [nAdds%3, nDels%3, then 2 bytes per edge].
		type waveT struct{ adds, dels []graph.Edge }
		var stream []waveT
		for len(data) >= 2 && len(stream) < 10 {
			na, nd := int(data[0]%3), int(data[1]%3)
			data = data[2:]
			var w waveT
			for i := 0; i < na && len(data) >= 2; i++ {
				src, dst := graph.VertexID(data[0]%16), graph.VertexID(data[1]%16)
				data = data[2:]
				if src != dst {
					w.adds = append(w.adds, graph.Edge{Src: src, Dst: dst})
				}
			}
			for i := 0; i < nd && len(data) >= 2; i++ {
				w.dels = append(w.dels, graph.Edge{Src: graph.VertexID(data[0] % 16), Dst: graph.VertexID(data[1] % 16)})
				data = data[2:]
			}
			stream = append(stream, w)
		}

		// Compactions are logged and replayed, so let them trigger.
		mem := Options{CompactAfter: 3, SyncCompact: true}
		dir := t.TempDir()
		dopts := DurableOptions{Options: mem, Fsync: FsyncOff}
		ds, err := Open(dir, seedGraph(), dopts)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		ref := New(seedGraph(), mem)
		for _, w := range stream {
			if _, err := ds.ApplyUpdates(w.adds, w.dels); err != nil {
				t.Fatalf("durable ApplyUpdates: %v", err)
			}
			if _, err := ref.ApplyUpdates(w.adds, w.dels); err != nil {
				t.Fatalf("reference ApplyUpdates: %v", err)
			}
		}
		crash(ds)

		rec, err := Open(dir, nil, dopts)
		if err != nil {
			t.Fatalf("recovery Open: %v", err)
		}
		defer crash(rec)
		got, want := rec.Current().State(), ref.Current().State()
		if got != want {
			t.Fatalf("recovered state %+v, reference %+v", got, want)
		}
		if gr, wr := rec.Stats().WALRecords, int64(len(stream)); gr != wr {
			t.Fatalf("recovered WALRecords %d, want %d", gr, wr)
		}
	})
}
