// Package store is the versioned graph store behind live updates: an
// immutable CSR base plus a compact add/delete edge delta, exposed as
// epoch-numbered immutable Snapshots. Each ApplyUpdates merges the
// changed adjacency rows once (sorted, deduplicated — the same
// invariants CSR rows hold) into a fresh overlay over the shared base,
// for both the forward graph and its reverse, and publishes the result
// atomically: queries in flight keep the snapshot they started on,
// later batches see the new epoch. When the delta grows past a
// threshold a background compaction folds it into a fresh CSR base, so
// steady-state reads never pay more than a bounded overlay probe.
//
// A store opened with Open is additionally durable: every epoch
// transition is appended to a CRC-framed write-ahead log before the
// snapshot is published, periodic checkpoint files capture the full CSR,
// and a warm restart replays snapshot + WAL tail back to the exact
// pre-crash epoch and edge set (see wal.go and durable.go).
//
// The durable on-disk format, in brief: a data directory holds
// epoch-named files (zero-padded so lexical order is numeric order) of
// two kinds. wal-<epoch>.log segments carry length-prefixed, CRC32-C
// framed records — a kind byte (update / compaction / no-op), the
// little-endian epoch the record transitions to, and the add/delete
// edge lists. snap-<epoch>.snap checkpoints carry a magic, a fixed
// header (epoch, WAL cursor, counters), the canonical
// graph.WriteBinary CSR, and a CRC32-C trailer over everything before
// it; they are written to a temp file, fsynced, and atomically
// renamed. The WAL rotates before each snapshot is written, so every
// crash window stays recoverable; recovery loads the newest CRC-valid
// snapshot and replays the segments at or after its epoch, tolerating
// a torn tail only on the final segment.
package store

import (
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// DefaultCompactFraction triggers compaction once the effective delta
// reaches this fraction of the base's edges (but never below
// MinCompactEdges): the overlay stays a small, cache-friendly map while
// compactions stay rare relative to update volume.
const DefaultCompactFraction = 8

// MinCompactEdges is the smallest delta worth folding; below it a
// compaction would cost more than the overlay probes it saves.
const MinCompactEdges = 4096

// Options tunes a Store.
type Options struct {
	// CompactAfter folds the delta into a fresh CSR base once the number
	// of effective edge changes since the last base reaches it. Zero
	// selects max(MinCompactEdges, baseEdges/DefaultCompactFraction);
	// negative disables automatic compaction (Compact still works).
	CompactAfter int
	// SyncCompact runs compaction inline inside the ApplyUpdates that
	// crossed the threshold instead of in a background goroutine.
	// Deterministic, for tests and single-threaded tools.
	SyncCompact bool
}

// Snapshot is one immutable epoch of the graph: the forward graph and
// its reverse, both either plain CSRs (after a compaction) or overlays
// over the store's current base. Engines consume Graph()/Reverse()
// directly — overlay graphs answer the same neighbour-access calls.
type Snapshot struct {
	epoch uint64

	g, gr       *graph.Graph
	base, baseR *graph.Graph

	// fwd/bwd are the overlay rows g/gr carry (nil after compaction);
	// rows are shared structurally across epochs and never mutated.
	fwd, bwd map[graph.VertexID][]graph.VertexID

	// deltaEdges counts effective edge changes folded into the overlay
	// since base — the compaction pressure. Both directions contribute:
	// each update adds max(changedForward, changedBackward), so
	// backward-heavy divergence exerts the same pressure as forward.
	deltaEdges int
}

// Epoch returns the snapshot's epoch number. Epochs number snapshot
// transitions: every ApplyUpdates that changes the graph bumps it, and
// so does a compaction (content-identical, but a new representation),
// so an epoch uniquely names the (graph, reverse) pair and index-cache
// keys never alias across swaps.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Graph returns the forward graph of this epoch.
func (s *Snapshot) Graph() *graph.Graph { return s.g }

// Reverse returns the reverse graph of this epoch.
func (s *Snapshot) Reverse() *graph.Graph { return s.gr }

// NumVertices returns |V| of this epoch.
func (s *Snapshot) NumVertices() int { return s.g.NumVertices() }

// NumEdges returns |E| of this epoch.
func (s *Snapshot) NumEdges() int { return s.g.NumEdges() }

// OutNeighbors returns the sorted merged base∪delta out-neighbour row
// of v. The slice must not be modified.
func (s *Snapshot) OutNeighbors(v graph.VertexID) []graph.VertexID { return s.g.OutNeighbors(v) }

// OutDegree returns v's out-degree in this epoch.
func (s *Snapshot) OutDegree(v graph.VertexID) int { return s.g.OutDegree(v) }

// HasEdge reports whether (u,v) exists in this epoch.
func (s *Snapshot) HasEdge(u, v graph.VertexID) bool { return s.g.HasEdge(u, v) }

// DeltaEdges returns the effective edge changes pending compaction,
// counting whichever direction diverged more.
func (s *Snapshot) DeltaEdges() int { return s.deltaEdges }

// Stats snapshots a store's lifetime counters.
type Stats struct {
	// Epoch is the current snapshot's epoch.
	Epoch uint64
	// DeltaEdges and DeltaRows describe the current overlay: effective
	// edge changes since the base (max over the two directions), and
	// overlaid adjacency rows (counted on the forward side).
	DeltaEdges, DeltaRows int
	// BaseEdges is the current base CSR's edge count.
	BaseEdges int
	// UpdatesApplied counts effective edge changes ever applied;
	// Compactions counts base rebuilds. On a durable store both are
	// restored from the last checkpoint header on Open, plus the
	// replayed WAL tail.
	UpdatesApplied, Compactions int64
	// WALRecords counts ApplyUpdates calls logged to the WAL (including
	// no-ops), across restarts; zero on an in-memory store. Callers use
	// it to resume a deterministic update stream after a crash.
	WALRecords int64
	// Checkpoints counts snapshot files written by this store instance;
	// SnapshotEpoch is the epoch of the newest on-disk snapshot. Both
	// are zero on an in-memory store.
	Checkpoints   int64
	SnapshotEpoch uint64
}

// Store owns the version chain. All methods are safe for concurrent
// use; ApplyUpdates calls are serialised against each other and against
// compaction swaps, Current is a single atomic load.
type Store struct {
	opts Options

	mu  sync.Mutex // serialises ApplyUpdates, compaction swaps, and WAL appends
	cur atomic.Pointer[Snapshot]

	compacting  atomic.Bool
	wg          sync.WaitGroup
	updates     atomic.Int64
	compactions atomic.Int64

	// dur is nil on in-memory stores; set by Open. All mutations of its
	// file state happen under mu.
	dur *durability
}

// New returns a store whose epoch 0 is g (computing the reverse).
func New(g *graph.Graph, opts Options) *Store {
	return NewWithReverse(g, g.Reverse(), opts)
}

// NewWithReverse is New with a precomputed reverse graph.
func NewWithReverse(g, gr *graph.Graph, opts Options) *Store {
	g, gr = g.Flatten(), gr.Flatten()
	s := &Store{opts: opts}
	s.cur.Store(&Snapshot{g: g, gr: gr, base: g, baseR: gr})
	return s
}

// Current returns the latest published snapshot.
func (s *Store) Current() *Snapshot { return s.cur.Load() }

// Stats returns the store's counters and the current overlay's size.
func (s *Store) Stats() Stats {
	snap := s.cur.Load()
	st := Stats{
		Epoch:          snap.epoch,
		DeltaEdges:     snap.deltaEdges,
		DeltaRows:      len(snap.fwd),
		BaseEdges:      snap.base.NumEdges(),
		UpdatesApplied: s.updates.Load(),
		Compactions:    s.compactions.Load(),
	}
	if d := s.dur; d != nil {
		st.WALRecords = int64(d.seq.Load())
		st.Checkpoints = d.checkpoints.Load()
		st.SnapshotEpoch = d.snapEpoch.Load()
	}
	return st
}

// ApplyUpdates publishes a new epoch with dels removed and adds
// inserted (deletions apply first, so an edge named in both ends up
// present). Self-loops and duplicates among adds are dropped, deletions
// of absent edges are no-ops, and adds may name vertices beyond the
// current size — the vertex space grows to fit (it never shrinks). If
// nothing effectively changes the current snapshot is returned
// unchanged, with its epoch intact, so no-op updates cost no cache
// warmth downstream. Crossing the compaction threshold schedules a
// background fold of the delta into a fresh base (or runs it inline
// under Options.SyncCompact).
//
// On a durable store the update (effective or not) is appended to the
// WAL before the snapshot is published; a non-nil error means the
// update was NOT applied and the store refuses further durable writes
// (the log can no longer be trusted). In-memory stores never fail.
func (s *Store) ApplyUpdates(adds, dels []graph.Edge) (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	prev := s.cur.Load()
	next, changed := buildNext(prev, adds, dels)
	if next == nil {
		// Logged so WALRecords counts every ApplyUpdates call: callers
		// replaying a recorded update stream skip exactly that many
		// batches on restart, no-ops included.
		if err := s.logLocked(recNoop, prev.epoch, nil, nil); err != nil {
			return prev, err
		}
		return prev, nil
	}
	if err := s.logLocked(recUpdate, next.epoch, adds, dels); err != nil {
		return prev, err
	}
	s.cur.Store(next)
	s.updates.Add(int64(changed))
	if err := s.maybeCompactLocked(next); err != nil {
		return s.cur.Load(), err
	}
	s.maybeCheckpointLocked(false)
	return s.cur.Load(), nil
}

// buildNext computes prev's successor snapshot under dels-then-adds,
// sharing unchanged rows structurally. It returns (nil, 0) when nothing
// effectively changes. changed is the effective edge-change count, the
// max over the two directions: forward and backward overlays can
// legitimately diverge in how many rows the same logical change touches,
// and undercounting either side delays compaction.
func buildNext(prev *Snapshot, adds, dels []graph.Edge) (*Snapshot, int) {
	n := prev.g.NumVertices()
	for _, e := range adds {
		if e.Src == e.Dst {
			continue
		}
		if int(e.Src) >= n {
			n = int(e.Src) + 1
		}
		if int(e.Dst) >= n {
			n = int(e.Dst) + 1
		}
	}

	fwd, changedF := overlayRows(prev.g, prev.fwd, groupBySrc(adds, false), groupBySrc(dels, false))
	bwd, changedB := overlayRows(prev.gr, prev.bwd, groupBySrc(adds, true), groupBySrc(dels, true))
	if changedF == 0 && changedB == 0 && n == prev.g.NumVertices() {
		return nil, 0
	}
	changed := max(changedF, changedB)

	return &Snapshot{
		epoch:      prev.epoch + 1,
		g:          graph.Overlay(prev.base, n, fwd),
		gr:         graph.Overlay(prev.baseR, n, bwd),
		base:       prev.base,
		baseR:      prev.baseR,
		fwd:        fwd,
		bwd:        bwd,
		deltaEdges: prev.deltaEdges + changed,
	}, changed
}

// threshold returns the compaction trigger for the given base, or -1
// when automatic compaction is disabled.
func (s *Store) threshold(base *graph.Graph) int {
	switch {
	case s.opts.CompactAfter > 0:
		return s.opts.CompactAfter
	case s.opts.CompactAfter < 0:
		return -1
	}
	return max(MinCompactEdges, base.NumEdges()/DefaultCompactFraction)
}

// maybeCompactLocked schedules (or, under SyncCompact, runs) a
// compaction when snap's delta has outgrown the threshold. Only the
// synchronous path can return an error (a failed WAL append for the
// compaction record); the background path parks failures in the
// durable layer's sticky error, surfaced by the next ApplyUpdates.
func (s *Store) maybeCompactLocked(snap *Snapshot) error {
	t := s.threshold(snap.base)
	if t < 0 || snap.deltaEdges < t {
		return nil
	}
	if s.opts.SyncCompact {
		return s.swapCompactedLocked(snap, snap.g.Flatten(), snap.gr.Flatten())
	}
	if s.compacting.Swap(true) {
		return nil // one background fold at a time
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.compacting.Store(false)
		s.compactOnce()
	}()
	return nil
}

// compactOnce folds the current delta into a fresh base. Updates that
// land while the fold is in progress invalidate it; it retries a few
// times and otherwise gives up — the still-oversized delta re-arms the
// trigger on the next ApplyUpdates.
func (s *Store) compactOnce() {
	for attempt := 0; attempt < 3; attempt++ {
		snap := s.cur.Load()
		// Match Compact's predicate: a live overlay must be folded even
		// when its effective delta nets out to zero (adds and deletes
		// that cancel still leave overlay rows that cost a probe per
		// neighbour access).
		if !snap.g.IsOverlay() {
			return
		}
		flatG, flatR := snap.g.Flatten(), snap.gr.Flatten()
		s.mu.Lock()
		if s.cur.Load() == snap {
			// A WAL failure here parks a sticky error; retrying cannot
			// help (the log is desynced), so give up either way.
			_ = s.swapCompactedLocked(snap, flatG, flatR)
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
	}
}

// swapCompactedLocked publishes the folded CSR pair as the next epoch,
// WAL-logging the transition first on durable stores (compactions bump
// the epoch, so replay must reproduce them to reach the same number).
func (s *Store) swapCompactedLocked(snap *Snapshot, flatG, flatR *graph.Graph) error {
	if err := s.logLocked(recCompact, snap.epoch+1, nil, nil); err != nil {
		return err
	}
	s.cur.Store(&Snapshot{
		epoch: snap.epoch + 1,
		g:     flatG, gr: flatR,
		base: flatG, baseR: flatR,
	})
	s.compactions.Add(1)
	// A freshly folded CSR is the cheapest possible point to snapshot.
	s.maybeCheckpointLocked(true)
	return nil
}

// Compact synchronously folds any pending delta into a fresh base and
// returns the resulting snapshot (the current one when there was
// nothing to fold). The error mirrors ApplyUpdates: non-nil only on a
// durable store whose WAL append failed, in which case no new epoch was
// published.
func (s *Store) Compact() (*Snapshot, error) {
	for {
		snap := s.cur.Load()
		if !snap.g.IsOverlay() {
			return snap, nil
		}
		flatG, flatR := snap.g.Flatten(), snap.gr.Flatten()
		s.mu.Lock()
		if s.cur.Load() == snap {
			err := s.swapCompactedLocked(snap, flatG, flatR)
			s.mu.Unlock()
			return s.cur.Load(), err
		}
		s.mu.Unlock()
	}
}

// Close waits for any background compaction or checkpoint to finish;
// on a durable store it then writes a final checkpoint, syncs and
// closes the WAL, and releases the data directory. The store remains
// usable for reads after Close; further durable writes fail.
func (s *Store) Close() error {
	s.wg.Wait()
	if s.dur == nil {
		return nil
	}
	return s.closeDurable()
}

// groupBySrc buckets edges by source (or by destination when reversed,
// emitting the reversed edge), dropping self-loops.
func groupBySrc(edges []graph.Edge, reversed bool) map[graph.VertexID][]graph.VertexID {
	if len(edges) == 0 {
		return nil
	}
	by := make(map[graph.VertexID][]graph.VertexID)
	for _, e := range edges {
		if e.Src == e.Dst {
			continue
		}
		if reversed {
			by[e.Dst] = append(by[e.Dst], e.Src)
		} else {
			by[e.Src] = append(by[e.Src], e.Dst)
		}
	}
	return by
}

// overlayRows produces the next epoch's overlay for one direction:
// prev's rows shared structurally, rows touched by adds/dels rebuilt by
// a sorted merge against their current (overlay-or-base) contents.
// changed counts effective edge changes (inserted absent + removed
// present); rows that end up identical are left untouched.
func overlayRows(cur *graph.Graph, prev map[graph.VertexID][]graph.VertexID,
	adds, dels map[graph.VertexID][]graph.VertexID) (map[graph.VertexID][]graph.VertexID, int) {
	if len(adds) == 0 && len(dels) == 0 {
		return prev, 0
	}
	next := make(map[graph.VertexID][]graph.VertexID, len(prev)+len(adds))
	for v, row := range prev {
		next[v] = row
	}
	touched := make(map[graph.VertexID]struct{}, len(adds)+len(dels))
	for v := range adds {
		touched[v] = struct{}{}
	}
	for v := range dels {
		touched[v] = struct{}{}
	}
	changed := 0
	for v := range touched {
		var old []graph.VertexID
		if int(v) < cur.NumVertices() {
			old = cur.OutNeighbors(v) // grown vertices start with no row
		}
		row, delta := mergeRow(old, adds[v], dels[v])
		if delta == 0 {
			continue
		}
		changed += delta
		next[v] = row
	}
	if len(next) == 0 {
		return prev, changed
	}
	return next, changed
}

// mergeRow applies dels then adds to a sorted row, returning the new
// sorted deduplicated row and the size of its symmetric difference
// against old. A zero delta means the row is unchanged (deleting and
// re-adding the same edge in one batch cancels out) and the returned
// slice is meaningless.
func mergeRow(old, adds, dels []graph.VertexID) ([]graph.VertexID, int) {
	adds = sortedSet(adds)
	dels = sortedSet(dels)

	// Pass 1: old minus dels.
	kept := make([]graph.VertexID, 0, len(old)+len(adds))
	di := 0
	for _, w := range old {
		for di < len(dels) && dels[di] < w {
			di++
		}
		if di < len(dels) && dels[di] == w {
			continue
		}
		kept = append(kept, w)
	}

	// Pass 2: union with adds.
	out := kept
	if len(adds) > 0 {
		out = make([]graph.VertexID, 0, len(kept)+len(adds))
		ki := 0
		for _, w := range adds {
			for ki < len(kept) && kept[ki] < w {
				out = append(out, kept[ki])
				ki++
			}
			if ki < len(kept) && kept[ki] == w {
				continue // already present
			}
			out = append(out, w)
		}
		out = append(out, kept[ki:]...)
	}
	return out, symDiff(old, out)
}

// symDiff counts elements in exactly one of two sorted sets.
func symDiff(a, b []graph.VertexID) int {
	d, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			d++
			i++
		default:
			d++
			j++
		}
	}
	return d + (len(a) - i) + (len(b) - j)
}

// sortedSet sorts and deduplicates vs in place-ish, tolerating nil.
func sortedSet(vs []graph.VertexID) []graph.VertexID {
	if len(vs) == 0 {
		return vs
	}
	vs = slices.Clone(vs)
	slices.Sort(vs)
	return slices.Compact(vs)
}
