package store

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// mustApply applies an update batch, failing the test on error (an
// in-memory store never errors; durable stores only on WAL I/O).
func mustApply(t *testing.T, s *Store, adds, dels []graph.Edge) *Snapshot {
	t.Helper()
	snap, err := s.ApplyUpdates(adds, dels)
	if err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}
	return snap
}

// edgeSet collects a graph's edges into a comparable map.
func edgeSet(g *graph.Graph) map[graph.Edge]bool {
	set := make(map[graph.Edge]bool)
	g.Edges(func(src, dst graph.VertexID) bool {
		set[graph.Edge{Src: src, Dst: dst}] = true
		return true
	})
	return set
}

// requireEqual asserts that got presents exactly the edges of want (a
// from-scratch rebuild) with matching counts and a valid structure.
func requireEqual(t *testing.T, label string, got, want *graph.Graph) {
	t.Helper()
	if err := got.Validate(); err != nil {
		t.Fatalf("%s: invalid graph: %v", label, err)
	}
	if got.NumVertices() != want.NumVertices() {
		t.Fatalf("%s: n=%d, want %d", label, got.NumVertices(), want.NumVertices())
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: m=%d, want %d", label, got.NumEdges(), want.NumEdges())
	}
	gs, ws := edgeSet(got), edgeSet(want)
	for e := range ws {
		if !gs[e] {
			t.Fatalf("%s: missing edge %v", label, e)
		}
	}
	for e := range gs {
		if !ws[e] {
			t.Fatalf("%s: extra edge %v", label, e)
		}
	}
}

func TestApplyUpdatesAddDelete(t *testing.T) {
	base := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}})
	s := New(base, Options{CompactAfter: -1})

	snap := mustApply(t, s, []graph.Edge{{Src: 0, Dst: 2}, {Src: 3, Dst: 0}}, nil)
	if snap.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", snap.Epoch())
	}
	want := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 0, Dst: 2}, {Src: 3, Dst: 0}})
	requireEqual(t, "after adds", snap.Graph(), want)
	requireEqual(t, "after adds (reverse)", snap.Reverse(), want.Reverse())

	snap = mustApply(t, s, nil, []graph.Edge{{Src: 1, Dst: 2}})
	if snap.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", snap.Epoch())
	}
	want = graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 2, Dst: 3}, {Src: 0, Dst: 2}, {Src: 3, Dst: 0}})
	requireEqual(t, "after delete", snap.Graph(), want)
	requireEqual(t, "after delete (reverse)", snap.Reverse(), want.Reverse())

	if !snap.HasEdge(0, 2) || snap.HasEdge(1, 2) {
		t.Fatal("HasEdge does not reflect the delta")
	}
	if d := snap.OutDegree(0); d != 2 {
		t.Fatalf("OutDegree(0) = %d, want 2", d)
	}
}

func TestApplyUpdatesNoOpKeepsEpoch(t *testing.T) {
	base := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}})
	s := New(base, Options{CompactAfter: -1})
	before := s.Current()

	// Adding a present edge, deleting an absent one, self-loops: no-ops.
	snap := mustApply(t, s,
		[]graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 2}},
		[]graph.Edge{{Src: 1, Dst: 2}, {Src: 9, Dst: 1}})
	if snap != before {
		t.Fatalf("no-op update published epoch %d", snap.Epoch())
	}
}

func TestApplyUpdatesDeleteThenAddSameEdge(t *testing.T) {
	base := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	s := New(base, Options{CompactAfter: -1})
	// Deletions apply first, so the edge survives; the row is unchanged
	// and the whole update is a no-op.
	snap := mustApply(t, s, []graph.Edge{{Src: 0, Dst: 1}}, []graph.Edge{{Src: 0, Dst: 1}}) //nolint
	if snap.Epoch() != 0 {
		t.Fatalf("del+add of same present edge bumped epoch to %d", snap.Epoch())
	}
}

func TestVertexGrowth(t *testing.T) {
	base := graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 1}})
	s := New(base, Options{CompactAfter: -1})
	snap := mustApply(t, s, []graph.Edge{{Src: 1, Dst: 5}, {Src: 5, Dst: 0}}, nil)
	if snap.NumVertices() != 6 {
		t.Fatalf("n = %d, want 6", snap.NumVertices())
	}
	want := graph.FromEdges(6, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 5}, {Src: 5, Dst: 0}})
	requireEqual(t, "grown", snap.Graph(), want)
	requireEqual(t, "grown (reverse)", snap.Reverse(), want.Reverse())
	if got := snap.OutNeighbors(3); len(got) != 0 {
		t.Fatalf("grown vertex 3 has neighbours %v", got)
	}
}

func TestCompactionEquivalence(t *testing.T) {
	base := graph.FromEdges(5, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4}})
	s := New(base, Options{CompactAfter: 2, SyncCompact: true})

	snap := mustApply(t, s, []graph.Edge{{Src: 0, Dst: 4}, {Src: 4, Dst: 0}}, []graph.Edge{{Src: 1, Dst: 2}})
	if snap.Graph().IsOverlay() {
		t.Fatal("threshold crossed but snapshot still an overlay")
	}
	if got := s.Stats().Compactions; got != 1 {
		t.Fatalf("compactions = %d, want 1", got)
	}
	want := graph.FromEdges(5, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4}, {Src: 0, Dst: 4}, {Src: 4, Dst: 0}})
	requireEqual(t, "compacted", snap.Graph(), want)
	requireEqual(t, "compacted (reverse)", snap.Reverse(), want.Reverse())
	if snap.DeltaEdges() != 0 {
		t.Fatalf("delta after compaction = %d", snap.DeltaEdges())
	}

	// Updates keep working on the fresh base.
	snap = mustApply(t, s, []graph.Edge{{Src: 1, Dst: 3}}, nil)
	if !snap.HasEdge(1, 3) {
		t.Fatal("post-compaction update lost")
	}
}

func TestBackgroundCompaction(t *testing.T) {
	base := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1}})
	s := New(base, Options{CompactAfter: 1})
	mustApply(t, s, []graph.Edge{{Src: 1, Dst: 2}, {Src: 2, Dst: 3}}, nil)
	s.Close() // waits for the background fold
	snap := s.Current()
	if snap.Graph().IsOverlay() {
		t.Fatal("background compaction did not land")
	}
	want := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}})
	requireEqual(t, "bg-compacted", snap.Graph(), want)
	if s.Stats().Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", s.Stats().Compactions)
	}
}

// TestRandomizedDifferential drives a random add/delete sequence
// (including forced compactions) and checks every epoch against a
// from-scratch rebuild of the surviving edge set, both directions.
func TestRandomizedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 12
	live := make(map[graph.Edge]bool)
	var edges []graph.Edge
	for i := 0; i < 20; i++ {
		e := graph.Edge{Src: graph.VertexID(rng.Intn(n)), Dst: graph.VertexID(rng.Intn(n))}
		if e.Src == e.Dst || live[e] {
			continue
		}
		live[e] = true
		edges = append(edges, e)
	}
	s := New(graph.FromEdges(n, edges), Options{CompactAfter: 15, SyncCompact: true})

	for step := 0; step < 60; step++ {
		var adds, dels []graph.Edge
		for i := 0; i < 1+rng.Intn(4); i++ {
			e := graph.Edge{Src: graph.VertexID(rng.Intn(n)), Dst: graph.VertexID(rng.Intn(n))}
			if rng.Intn(2) == 0 {
				adds = append(adds, e)
			} else {
				dels = append(dels, e)
			}
		}
		for _, e := range dels {
			delete(live, e)
		}
		for _, e := range adds {
			if e.Src != e.Dst {
				live[e] = true
			}
		}
		snap := mustApply(t, s, adds, dels)

		var all []graph.Edge
		for e := range live {
			all = append(all, e)
		}
		want := graph.FromEdges(n, all)
		requireEqual(t, "step", snap.Graph(), want)
		requireEqual(t, "step (reverse)", snap.Reverse(), want.Reverse())
	}
	if s.Stats().Compactions == 0 {
		t.Fatal("randomized run never compacted; raise steps or lower threshold")
	}
}

// TestSnapshotIsolation verifies old snapshots survive later updates
// and compactions untouched.
func TestSnapshotIsolation(t *testing.T) {
	s := New(graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}}), Options{CompactAfter: 1, SyncCompact: true})
	s0 := s.Current()
	s1 := mustApply(t, s, []graph.Edge{{Src: 1, Dst: 2}}, nil)
	s2 := mustApply(t, s, nil, []graph.Edge{{Src: 0, Dst: 1}})

	if s0.HasEdge(1, 2) || !s0.HasEdge(0, 1) {
		t.Fatal("epoch 0 mutated")
	}
	if !s1.HasEdge(1, 2) || !s1.HasEdge(0, 1) {
		t.Fatal("epoch 1 mutated")
	}
	if s2.HasEdge(0, 1) || !s2.HasEdge(1, 2) {
		t.Fatal("epoch 2 wrong")
	}
}

// TestCompactOnceFoldsNetZeroOverlay is the regression test for the
// background-compaction early-return: a snapshot can carry live overlay
// rows whose effective delta nets out to zero (adds and deletes that
// cancelled row-by-row over time). compactOnce used to key off
// deltaEdges == 0 and skip such a snapshot forever, while Compact would
// fold it; both must use the same predicate — is there an overlay.
func TestCompactOnceFoldsNetZeroOverlay(t *testing.T) {
	base := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	s := New(base, Options{CompactAfter: -1})
	cur := s.Current()

	// Install the pathological state directly: overlay rows identical in
	// content to the base (zero net delta) but structurally live.
	fwd := map[graph.VertexID][]graph.VertexID{0: {1}}
	bwd := map[graph.VertexID][]graph.VertexID{1: {0}}
	s.cur.Store(&Snapshot{
		epoch: cur.epoch + 1,
		g:     graph.Overlay(cur.base, 3, fwd),
		gr:    graph.Overlay(cur.baseR, 3, bwd),
		base:  cur.base, baseR: cur.baseR,
		fwd: fwd, bwd: bwd,
		deltaEdges: 0,
	})
	if !s.Current().Graph().IsOverlay() {
		t.Fatal("setup: snapshot is not an overlay")
	}

	s.compactOnce()

	snap := s.Current()
	if snap.Graph().IsOverlay() {
		t.Fatal("compactOnce skipped a live overlay with a net-zero delta")
	}
	if snap.Epoch() != cur.epoch+2 {
		t.Fatalf("epoch = %d, want %d", snap.Epoch(), cur.epoch+2)
	}
	requireEqual(t, "folded", snap.Graph(), base)
	requireEqual(t, "folded (reverse)", snap.Reverse(), base.Reverse())
}

// TestDeltaCountsBackwardDivergence is the regression test for
// forward-only delta accounting: when the backward direction changes
// more rows than the forward one, deltaEdges, UpdatesApplied, and the
// compaction trigger must all see the larger count. The divergent state
// is installed directly (the public API maintains both directions
// symmetrically, so only corruption or future asymmetric paths reach
// it) — the accounting must stay correct either way.
func TestDeltaCountsBackwardDivergence(t *testing.T) {
	// Forward graph empty; reverse graph alone knows edge 0→1.
	g := graph.FromEdges(2, nil)
	gr := graph.FromEdges(2, []graph.Edge{{Src: 1, Dst: 0}})
	s := &Store{opts: Options{CompactAfter: -1}}
	s.cur.Store(&Snapshot{g: g, gr: gr, base: g, baseR: gr})

	// Deleting 0→1 is a no-op forward (changedF = 0) but removes a
	// backward entry (changedB = 1).
	snap, err := s.ApplyUpdates(nil, []graph.Edge{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}
	if snap.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1 (backward-only change must publish)", snap.Epoch())
	}
	if got := snap.DeltaEdges(); got != 1 {
		t.Fatalf("DeltaEdges = %d, want 1 (backward divergence undercounted)", got)
	}
	if got := s.Stats().UpdatesApplied; got != 1 {
		t.Fatalf("UpdatesApplied = %d, want 1", got)
	}
	if got := s.Stats().DeltaEdges; got != 1 {
		t.Fatalf("Stats.DeltaEdges = %d, want 1", got)
	}
}

// TestCompactionTriggerAtThreshold pins the documented CompactAfter
// semantics: the fold runs on the exact update whose cumulative
// effective delta reaches the threshold, not before and not later.
func TestCompactionTriggerAtThreshold(t *testing.T) {
	s := New(graph.FromEdges(4, nil), Options{CompactAfter: 3, SyncCompact: true})

	mustApply(t, s, []graph.Edge{{Src: 0, Dst: 1}}, nil) // delta 1
	mustApply(t, s, []graph.Edge{{Src: 1, Dst: 2}}, nil) // delta 2
	if got := s.Stats().Compactions; got != 0 {
		t.Fatalf("compacted %d time(s) below the threshold", got)
	}
	snap := mustApply(t, s, []graph.Edge{{Src: 2, Dst: 3}}, nil) // delta 3 = threshold
	if got := s.Stats().Compactions; got != 1 {
		t.Fatalf("compactions = %d at the threshold, want 1", got)
	}
	if snap.Graph().IsOverlay() {
		t.Fatal("snapshot returned after a sync compaction is still an overlay")
	}
	if snap.DeltaEdges() != 0 {
		t.Fatalf("delta after compaction = %d", snap.DeltaEdges())
	}

	// The trigger counts the larger direction: a backward-heavier update
	// exerts the same pressure.
	mustApply(t, s, []graph.Edge{{Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 3, Dst: 0}}, nil)
	if got := s.Stats().Compactions; got != 2 {
		t.Fatalf("compactions = %d after second threshold crossing, want 2", got)
	}
}
