// Durable store: snapshot files, WAL segments, and warm restart.
//
// A data directory holds two kinds of files, both named by the epoch
// they capture (zero-padded so lexical order is numeric order):
//
//	snap-<epoch>.snap  full checkpoint: header + graph.WriteBinary CSR
//	                   + CRC32-C trailer over everything before it
//	wal-<epoch>.log    WAL segment opened when a checkpoint at <epoch>
//	                   was taken; holds only records with epochs after
//	                   <epoch> (plus no-ops at it)
//
// Checkpointing rotates the WAL first and writes the snapshot second
// (tmp file, fsync, atomic rename, directory fsync), so every crash
// window is recoverable: recovery loads the newest snapshot that
// passes its CRC and replays every segment at-or-after its epoch in
// order, asserting epoch continuity record by record. A torn tail is
// tolerated — and truncated away — only on the final segment, where an
// interrupted append can legitimately leave one; corruption anywhere
// else fails Open loudly rather than ever serving a wrong graph.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// DefaultCheckpointEvery is the update-record cadence of background
// checkpoints when DurableOptions.CheckpointEvery is zero.
const DefaultCheckpointEvery = 1024

// DefaultSyncEvery is the FsyncInterval ticker period when
// DurableOptions.SyncEvery is zero.
const DefaultSyncEvery = 100 * time.Millisecond

// errClosed is returned by durable operations after Close.
var errClosed = errors.New("store: closed")

// DurableOptions tunes a store opened with Open.
type DurableOptions struct {
	Options

	// Fsync selects WAL durability: FsyncAlways (default), FsyncInterval,
	// or FsyncOff. Snapshot files are always fsynced regardless.
	Fsync FsyncPolicy
	// SyncEvery is the FsyncInterval ticker period; zero means
	// DefaultSyncEvery. Ignored under other policies.
	SyncEvery time.Duration
	// CheckpointEvery writes a background snapshot after this many
	// update records since the last one. Zero means
	// DefaultCheckpointEvery; negative disables automatic checkpoints
	// (Checkpoint and Close still write them). A checkpoint is also
	// taken right after every compaction — the freshly folded CSR is
	// the cheapest state to capture.
	CheckpointEvery int
}

// durability is the file-backed half of a Store. Fields other than the
// atomics are guarded by Store.mu.
type durability struct {
	dir             string
	fsync           FsyncPolicy
	checkpointEvery int

	f        *os.File // active WAL segment, nil after Close
	segEpoch uint64   // active segment's base epoch (its filename)
	buf      []byte   // reusable record frame
	dirty    bool     // appended since last fsync
	err      error    // sticky first WAL failure; durable writes refuse after

	recsSince int // update records since the last on-disk snapshot

	seq         atomic.Uint64 // update+noop records ever logged (survives restart)
	snapEpoch   atomic.Uint64 // newest on-disk snapshot's epoch
	checkpoints atomic.Int64  // snapshot files written by this instance

	checkpointing atomic.Bool // one background checkpoint at a time

	syncStop, syncDone chan struct{} // interval-sync goroutine lifecycle
}

// Open returns a durable store rooted at dir. An empty (or absent)
// directory is bootstrapped from initial (nil means an empty graph):
// epoch 0 is checkpointed immediately so the directory is always
// recoverable. A non-empty directory warm-restarts: the newest valid
// snapshot is loaded, the WAL tail replayed, and the store resumes at
// the exact pre-crash epoch, edge set, and WALRecords count — initial
// is ignored, the on-disk state wins.
func Open(dir string, initial *graph.Graph, opts DurableOptions) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	snaps, segs, err := scanDir(dir)
	if err != nil {
		return nil, err
	}

	d := &durability{dir: dir, fsync: opts.Fsync, checkpointEvery: opts.CheckpointEvery}
	var s *Store
	if len(snaps) == 0 && len(segs) == 0 {
		s, err = bootstrap(d, initial, opts.Options)
	} else {
		s, err = recoverStore(d, opts.Options, snaps, segs)
	}
	if err != nil {
		return nil, err
	}

	if d.fsync == FsyncInterval {
		every := opts.SyncEvery
		if every <= 0 {
			every = DefaultSyncEvery
		}
		d.syncStop, d.syncDone = make(chan struct{}), make(chan struct{})
		go s.syncLoop(every)
	}
	return s, nil
}

// bootstrap initialises an empty data directory: snapshot first, then
// the epoch-0 WAL segment, so a crash at any point leaves either
// nothing (bootstrap reruns) or a recoverable snapshot.
func bootstrap(d *durability, initial *graph.Graph, opts Options) (*Store, error) {
	if initial == nil {
		initial = graph.FromEdges(0, nil)
	}
	s := New(initial, opts)
	s.dur = d
	cur := s.cur.Load()
	if err := d.writeSnapshot(cur, 0, 0, 0); err != nil {
		return nil, err
	}
	d.snapEpoch.Store(cur.epoch)
	d.checkpoints.Add(1)
	f, err := createSegment(d.dir, cur.epoch)
	if err != nil {
		return nil, err
	}
	d.f, d.segEpoch = f, cur.epoch
	return s, nil
}

// recoverStore rebuilds the pre-crash store from dir's contents.
func recoverStore(d *durability, opts Options, snaps, segs []fileEpoch) (*Store, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("store: %s has WAL segments but no snapshot; refusing to guess a base state", d.dir)
	}

	// Newest snapshot first; fall back past corrupt ones — an older
	// snapshot plus a longer chain replay reaches the same state.
	var (
		g        *graph.Graph
		hdr      snapHeader
		loadErrs []error
	)
	for i := len(snaps) - 1; i >= 0; i-- {
		gg, h, err := readSnapshotFile(snaps[i])
		if err != nil {
			loadErrs = append(loadErrs, err)
			continue
		}
		g, hdr = gg, h
		break
	}
	if g == nil {
		return nil, errors.Join(
			append([]error{fmt.Errorf("store: %s: no loadable snapshot", d.dir)}, loadErrs...)...)
	}

	// The replay chain: every segment at-or-after the snapshot's epoch.
	// Rotation precedes the snapshot write, so wal-<epoch> must exist
	// whenever any later segment does; a gap means lost records.
	first := sort.Search(len(segs), func(i int) bool { return segs[i].epoch >= hdr.epoch })
	chain := segs[first:]
	if len(chain) > 0 && chain[0].epoch != hdr.epoch {
		return nil, fmt.Errorf("store: %s: snapshot at epoch %d but oldest following WAL segment starts at %d; wal-%d is missing",
			d.dir, hdr.epoch, chain[0].epoch, hdr.epoch)
	}

	gr := g.Reverse()
	s := &Store{opts: opts}
	s.cur.Store(&Snapshot{epoch: hdr.epoch, g: g, gr: gr, base: g, baseR: gr})
	s.updates.Store(int64(hdr.updates))
	s.compactions.Store(int64(hdr.compactions))
	s.dur = d
	d.seq.Store(hdr.seq)
	d.snapEpoch.Store(hdr.epoch)

	for i, seg := range chain {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		recs, valid, scanErr := scanWAL(data)
		if scanErr != nil {
			if i != len(chain)-1 || !errors.Is(scanErr, errTornTail) {
				return nil, fmt.Errorf("store: %s: %w", seg.path, scanErr)
			}
			// An interrupted append on the live segment: drop the tail
			// so future appends continue from a clean frame boundary.
			if err := os.Truncate(seg.path, int64(valid)); err != nil {
				return nil, fmt.Errorf("store: truncating torn tail: %w", err)
			}
		}
		for _, r := range recs {
			if err := s.replayRecord(r); err != nil {
				return nil, fmt.Errorf("store: %s: %w", seg.path, err)
			}
		}
	}

	// Resume appending to the last segment of the chain (or open a
	// fresh one when the snapshot is newer than every segment).
	if len(chain) > 0 {
		last := chain[len(chain)-1]
		f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("store: reopening WAL: %w", err)
		}
		d.f, d.segEpoch = f, last.epoch
	} else {
		f, err := createSegment(d.dir, hdr.epoch)
		if err != nil {
			return nil, err
		}
		d.f, d.segEpoch = f, hdr.epoch
	}
	return s, nil
}

// replayRecord applies one WAL record during recovery, asserting epoch
// continuity: updates and compactions must transition cur.epoch to
// exactly the recorded epoch, no-ops must match it. Replay runs before
// the store is shared, so no locking.
func (s *Store) replayRecord(r walRecord) error {
	cur := s.cur.Load()
	switch r.kind {
	case recNoop:
		if r.epoch != cur.epoch {
			return fmt.Errorf("no-op record at epoch %d, store at %d", r.epoch, cur.epoch)
		}
		s.dur.seq.Add(1)
	case recUpdate:
		if r.epoch != cur.epoch+1 {
			return fmt.Errorf("update record to epoch %d, store at %d", r.epoch, cur.epoch)
		}
		next, changed := buildNext(cur, r.adds, r.dels)
		if next == nil {
			return fmt.Errorf("update record to epoch %d replays as a no-op", r.epoch)
		}
		s.cur.Store(next)
		s.updates.Add(int64(changed))
		s.dur.seq.Add(1)
		s.dur.recsSince++
	case recCompact:
		if r.epoch != cur.epoch+1 {
			return fmt.Errorf("compaction record to epoch %d, store at %d", r.epoch, cur.epoch)
		}
		flatG, flatR := cur.g.Flatten(), cur.gr.Flatten()
		s.cur.Store(&Snapshot{epoch: r.epoch, g: flatG, gr: flatR, base: flatG, baseR: flatR})
		s.compactions.Add(1)
	default:
		return fmt.Errorf("unknown WAL record kind %d", r.kind)
	}
	return nil
}

// maybeCheckpointLocked schedules a background checkpoint when the
// update-record pressure (or force, after a compaction) calls for one.
// Callers hold s.mu.
func (s *Store) maybeCheckpointLocked(force bool) {
	d := s.dur
	if d == nil || d.checkpointEvery < 0 || d.err != nil || d.f == nil {
		return
	}
	if !force {
		every := d.checkpointEvery
		if every == 0 {
			every = DefaultCheckpointEvery
		}
		if d.recsSince < every {
			return
		}
	}
	if d.checkpointing.Swap(true) {
		return // one at a time; the pressure re-arms on the next update
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer d.checkpointing.Store(false)
		if err := s.Checkpoint(); err != nil {
			s.mu.Lock()
			if d.err == nil {
				d.err = err
			}
			s.mu.Unlock()
		}
	}()
}

// Checkpoint writes the current epoch to a snapshot file (rotating the
// WAL first so the crash window between the two stays recoverable) and
// prunes superseded files. It is a no-op when the newest on-disk
// snapshot is already current, and returns nil on an in-memory store.
func (s *Store) Checkpoint() error {
	d := s.dur
	if d == nil {
		return nil
	}
	s.mu.Lock()
	if d.err != nil {
		err := d.err
		s.mu.Unlock()
		return err
	}
	if d.f == nil {
		s.mu.Unlock()
		return errClosed
	}
	snap := s.cur.Load()
	if snap.epoch == d.snapEpoch.Load() {
		s.mu.Unlock()
		return nil
	}
	// Records the snapshot supersedes must be durable before it is:
	// otherwise a crash could leave a snapshot claiming state the WAL
	// never made stable.
	if d.dirty {
		if err := d.f.Sync(); err != nil {
			d.err = fmt.Errorf("store: wal sync: %w", err)
			s.mu.Unlock()
			return d.err
		}
		d.dirty = false
	}
	if d.segEpoch != snap.epoch {
		f, err := createSegment(d.dir, snap.epoch)
		if err != nil {
			s.mu.Unlock()
			return err
		}
		old := d.f
		d.f, d.segEpoch = f, snap.epoch
		if err := old.Close(); err != nil {
			s.mu.Unlock()
			return fmt.Errorf("store: closing WAL segment: %w", err)
		}
	}
	seq := d.seq.Load()
	updates, compactions := uint64(s.updates.Load()), uint64(s.compactions.Load())
	s.mu.Unlock()

	// The snapshot write happens outside mu: updates keep flowing into
	// the freshly rotated segment while the (potentially large) CSR
	// streams to disk.
	if err := d.writeSnapshot(snap, seq, updates, compactions); err != nil {
		return err
	}

	s.mu.Lock()
	if snap.epoch > d.snapEpoch.Load() {
		d.snapEpoch.Store(snap.epoch)
		d.recsSince = 0
	}
	s.mu.Unlock()
	d.checkpoints.Add(1)
	d.prune()
	return nil
}

// closeDurable finishes a durable store: final checkpoint, WAL sync,
// file close. Idempotent.
func (s *Store) closeDurable() error {
	d := s.dur
	s.mu.Lock()
	closed := d.f == nil
	s.mu.Unlock()
	if closed {
		return nil
	}
	if d.syncStop != nil {
		close(d.syncStop)
		<-d.syncDone
		d.syncStop = nil
	}
	ckErr := s.Checkpoint()

	s.mu.Lock()
	var syncErr, closeErr error
	if d.f != nil {
		if d.dirty {
			syncErr = d.f.Sync()
			d.dirty = false
		}
		closeErr = d.f.Close()
		d.f = nil
	}
	sticky := d.err
	s.mu.Unlock()
	return errors.Join(ckErr, syncErr, closeErr, sticky)
}

// syncLoop is the FsyncInterval ticker: it syncs the active segment
// whenever appends happened since the last tick.
func (s *Store) syncLoop(every time.Duration) {
	d := s.dur
	defer close(d.syncDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-d.syncStop:
			return
		case <-t.C:
			s.mu.Lock()
			if d.dirty && d.f != nil && d.err == nil {
				if err := d.f.Sync(); err != nil {
					d.err = fmt.Errorf("store: wal sync: %w", err)
				} else {
					d.dirty = false
				}
			}
			s.mu.Unlock()
		}
	}
}

// State identifies a snapshot's logical content for cross-process
// comparison: a recovered store and its pre-crash original must agree
// on all four fields.
type State struct {
	Epoch                 uint64
	NumVertices, NumEdges int
	// Checksum is CRC32-C over the canonical (flattened) CSR
	// serialization, so it is representation-independent: an overlay
	// and its folded equivalent hash identically.
	Checksum uint32
}

// State computes the snapshot's identity. It flattens overlays, so it
// is O(m) — a diagnostic, not a hot-path call.
func (s *Snapshot) State() State {
	h := crc32.New(castagnoli)
	if err := graph.WriteBinary(h, s.g); err != nil {
		// The hash writer cannot fail; WriteBinary has no other error path.
		panic(err)
	}
	return State{
		Epoch:       s.epoch,
		NumVertices: s.g.NumVertices(),
		NumEdges:    s.g.NumEdges(),
		Checksum:    h.Sum32(),
	}
}

// --- snapshot files -------------------------------------------------

// snapMagic identifies a snapshot file; the version suffix guards
// against reading a future layout.
var snapMagic = [8]byte{'H', 'C', 'S', 'N', 'A', 'P', 'S', '1'}

// snapHeader is the fixed header after the magic, before the embedded
// graph.WriteBinary stream.
type snapHeader struct {
	epoch       uint64 // the checkpointed epoch
	seq         uint64 // WALRecords at checkpoint time
	updates     uint64 // Stats.UpdatesApplied at checkpoint time
	compactions uint64 // Stats.Compactions at checkpoint time
}

const snapHeaderSize = 8 + 4*8 // magic + four fields

// writeSnapshot atomically writes snap as snap-<epoch>.snap: tmp file,
// CRC32-C trailer over everything before it, fsync, rename, directory
// fsync. Snapshot writes are always synced, whatever the WAL policy —
// they are rare and they anchor recovery.
func (d *durability) writeSnapshot(snap *Snapshot, seq, updates, compactions uint64) (err error) {
	final := snapPath(d.dir, snap.epoch)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	bw := bufio.NewWriterSize(f, 1<<20)
	h := crc32.New(castagnoli)
	w := io.MultiWriter(bw, h)

	var hdr [snapHeaderSize]byte
	copy(hdr[:8], snapMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], snap.epoch)
	binary.LittleEndian.PutUint64(hdr[16:], seq)
	binary.LittleEndian.PutUint64(hdr[24:], updates)
	binary.LittleEndian.PutUint64(hdr[32:], compactions)
	if _, err = w.Write(hdr[:]); err != nil {
		return fmt.Errorf("store: snapshot header: %w", err)
	}
	if err = graph.WriteBinary(w, snap.g); err != nil {
		return fmt.Errorf("store: snapshot graph: %w", err)
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], h.Sum32())
	if _, err = bw.Write(trailer[:]); err != nil {
		return fmt.Errorf("store: snapshot trailer: %w", err)
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("store: snapshot flush: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("store: snapshot sync: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("store: snapshot close: %w", err)
	}
	if err = os.Rename(tmp, final); err != nil {
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	if err = syncDir(d.dir); err != nil {
		return err
	}
	return nil
}

// readSnapshotFile loads and verifies one snapshot file. The CRC
// covers everything before the 4-byte trailer; ReadBinary's internal
// buffering may read ahead of the graph bytes, so the reader tees
// through the hash up to (but excluding) the trailer and drains
// whatever ReadBinary left, guaranteeing the hash saw exactly the
// covered prefix.
func readSnapshotFile(fe fileEpoch) (*graph.Graph, snapHeader, error) {
	var hdr snapHeader
	f, err := os.Open(fe.path)
	if err != nil {
		return nil, hdr, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, hdr, fmt.Errorf("store: %w", err)
	}
	if st.Size() < snapHeaderSize+4 {
		return nil, hdr, fmt.Errorf("store: %s: %d bytes is too small for a snapshot", fe.path, st.Size())
	}

	h := crc32.New(castagnoli)
	r := io.TeeReader(io.LimitReader(f, st.Size()-4), h)

	var raw [snapHeaderSize]byte
	if _, err := io.ReadFull(r, raw[:]); err != nil {
		return nil, hdr, fmt.Errorf("store: %s: header: %w", fe.path, err)
	}
	if [8]byte(raw[:8]) != snapMagic {
		return nil, hdr, fmt.Errorf("store: %s: bad magic %q", fe.path, raw[:8])
	}
	hdr.epoch = binary.LittleEndian.Uint64(raw[8:])
	hdr.seq = binary.LittleEndian.Uint64(raw[16:])
	hdr.updates = binary.LittleEndian.Uint64(raw[24:])
	hdr.compactions = binary.LittleEndian.Uint64(raw[32:])
	if hdr.epoch != fe.epoch {
		return nil, hdr, fmt.Errorf("store: %s: header epoch %d does not match filename", fe.path, hdr.epoch)
	}

	g, err := graph.ReadBinary(r)
	if err != nil {
		return nil, hdr, fmt.Errorf("store: %s: %w", fe.path, err)
	}
	if _, err := io.Copy(io.Discard, r); err != nil {
		return nil, hdr, fmt.Errorf("store: %s: %w", fe.path, err)
	}
	var trailer [4]byte
	if _, err := io.ReadFull(f, trailer[:]); err != nil {
		return nil, hdr, fmt.Errorf("store: %s: trailer: %w", fe.path, err)
	}
	if got := binary.LittleEndian.Uint32(trailer[:]); got != h.Sum32() {
		return nil, hdr, fmt.Errorf("store: %s: CRC mismatch (file %08x, computed %08x)", fe.path, got, h.Sum32())
	}
	return g, hdr, nil
}

// --- directory layout -----------------------------------------------

// fileEpoch is one data-directory file and the epoch its name carries.
type fileEpoch struct {
	path  string
	epoch uint64
}

const snapSuffix = ".snap"
const snapPrefix = "snap-"

func snapPath(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%020d%s", snapPrefix, epoch, snapSuffix))
}

func walPath(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%020d%s", walPrefix, epoch, walSuffix))
}

// scanDir lists the snapshots and WAL segments in dir, each sorted by
// ascending epoch. Unknown files (including .tmp leftovers) are
// ignored.
func scanDir(dir string) (snaps, segs []fileEpoch, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if ep, ok := parseEpochName(name, snapPrefix, snapSuffix); ok {
			snaps = append(snaps, fileEpoch{path: filepath.Join(dir, name), epoch: ep})
		} else if ep, ok := parseEpochName(name, walPrefix, walSuffix); ok {
			segs = append(segs, fileEpoch{path: filepath.Join(dir, name), epoch: ep})
		}
	}
	byEpoch := func(fs []fileEpoch) func(i, j int) bool {
		return func(i, j int) bool { return fs[i].epoch < fs[j].epoch }
	}
	sort.Slice(snaps, byEpoch(snaps))
	sort.Slice(segs, byEpoch(segs))
	return snaps, segs, nil
}

// parseEpochName extracts the epoch from "<prefix><20 digits><suffix>".
func parseEpochName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) != 20 {
		return 0, false
	}
	ep, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return ep, true
}

// createSegment opens a fresh WAL segment for the given base epoch.
// O_EXCL: a segment that already exists means the rotation accounting
// is wrong, which must not be papered over by appending to it.
func createSegment(dir string, epoch uint64) (*os.File, error) {
	f, err := os.OpenFile(walPath(dir, epoch), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating WAL segment: %w", err)
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// prune removes files superseded by the two newest snapshot
// generations: older snapshots, and segments entirely before the older
// kept snapshot's epoch. Best-effort — recovery only ever needs the
// newest valid generation, the second is kept as a fallback.
func (d *durability) prune() {
	snaps, segs, err := scanDir(d.dir)
	if err != nil || len(snaps) <= 2 {
		return
	}
	keep := snaps[len(snaps)-2].epoch
	for _, sn := range snaps[:len(snaps)-2] {
		os.Remove(sn.path)
	}
	for _, sg := range segs {
		if sg.epoch < keep {
			os.Remove(sg.path)
		}
	}
}

// syncDir fsyncs a directory so renames and creations within it are
// durable.
func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer df.Close()
	if err := df.Sync(); err != nil {
		return fmt.Errorf("store: syncing %s: %w", dir, err)
	}
	return nil
}
