// Write-ahead log framing for the durable store. Every epoch
// transition — effective update, no-op update, compaction — is one
// length-prefixed, CRC-framed record appended to the active segment
// before the snapshot publishes:
//
//	[4B payload length LE][4B CRC32-C of payload][payload]
//	payload = kind(1B) | epoch(8B LE) | nAdds(4B LE) | nDels(4B LE) |
//	          adds: nAdds × (src 4B, dst 4B) | dels: nDels × (src 4B, dst 4B)
//
// The epoch stored is the one the record transitions TO (for no-ops,
// the unchanged current epoch), so replay can assert continuity and a
// recovered store provably reaches the exact pre-crash epoch. Records
// carry the raw adds/dels as passed to ApplyUpdates: the snapshot
// transition function (buildNext) is deterministic, so replaying the
// inputs reproduces the outputs bit-for-bit.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/graph"
)

// FsyncPolicy selects when WAL appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs after every appended record: an acknowledged
	// ApplyUpdates survives any crash. The default.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval fsyncs on a background ticker (DurableOptions.
	// SyncEvery): bounded data loss — at most one sync interval of
	// acknowledged updates — for near-in-memory append latency.
	FsyncInterval
	// FsyncOff never fsyncs the WAL except at Close and before a
	// checkpoint: crash loses anything since then. For bulk loads and
	// tests.
	FsyncOff
)

// String names the policy the way the CLI's -fsync flag spells it.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy inverts FsyncPolicy.String.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("unknown fsync policy %q (want always, interval, or off)", s)
}

// WAL record kinds.
const (
	recUpdate  byte = 1 // effective ApplyUpdates: epoch bumped, edges attached
	recCompact byte = 2 // compaction swap: epoch bumped, no edges
	recNoop    byte = 3 // ineffective ApplyUpdates: epoch unchanged, logged for seq
)

const (
	walFrameHeader = 8             // length + CRC
	walMinPayload  = 1 + 8 + 4 + 4 // kind + epoch + counts
	maxWALPayload  = 1 << 30       // implausibility guard when scanning
	walSuffix      = ".log"
	walPrefix      = "wal-"
)

// errTornTail marks scan errors that torn-tail truncation repairs: the
// segment's prefix up to the reported offset is intact and the rest is
// an interrupted append. Anything else (a CRC-valid but malformed
// record) is real corruption and recovery fails loudly instead.
var errTornTail = errors.New("torn WAL tail")

// castagnoli is the CRC32-C table shared by WAL frames and snapshot
// trailers (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// walRecord is one decoded WAL record.
type walRecord struct {
	kind       byte
	epoch      uint64
	adds, dels []graph.Edge
}

// encodeRecord frames one record into d.buf (reused across appends; at
// steady state the buffer has plateaued and appending allocates
// nothing).
//
//hcpath:noalloc
func (d *durability) encodeRecord(kind byte, epoch uint64, adds, dels []graph.Edge) {
	d.buf = d.buf[:0]
	d.buf = append(d.buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	d.buf = append(d.buf, kind)
	d.buf = binary.LittleEndian.AppendUint64(d.buf, epoch)
	d.buf = binary.LittleEndian.AppendUint32(d.buf, uint32(len(adds)))
	d.buf = binary.LittleEndian.AppendUint32(d.buf, uint32(len(dels)))
	for _, e := range adds {
		d.buf = binary.LittleEndian.AppendUint32(d.buf, uint32(e.Src))
		d.buf = binary.LittleEndian.AppendUint32(d.buf, uint32(e.Dst))
	}
	for _, e := range dels {
		d.buf = binary.LittleEndian.AppendUint32(d.buf, uint32(e.Src))
		d.buf = binary.LittleEndian.AppendUint32(d.buf, uint32(e.Dst))
	}
	payload := d.buf[walFrameHeader:]
	binary.LittleEndian.PutUint32(d.buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(d.buf[4:8], crc32.Checksum(payload, castagnoli))
}

// decodeRecord parses one CRC-verified payload. Errors here mean the
// writer and reader disagree on the format — corruption that a CRC
// cannot explain away — and are never treated as a torn tail.
func decodeRecord(p []byte) (walRecord, error) {
	kind := p[0]
	if kind != recUpdate && kind != recCompact && kind != recNoop {
		return walRecord{}, fmt.Errorf("unknown WAL record kind %d", kind)
	}
	epoch := binary.LittleEndian.Uint64(p[1:])
	nAdds := binary.LittleEndian.Uint32(p[9:])
	nDels := binary.LittleEndian.Uint32(p[13:])
	want := int64(walMinPayload) + 8*(int64(nAdds)+int64(nDels))
	if int64(len(p)) != want {
		return walRecord{}, fmt.Errorf("WAL record payload is %d bytes, want %d for %d adds + %d dels",
			len(p), want, nAdds, nDels)
	}
	r := walRecord{kind: kind, epoch: epoch}
	off := walMinPayload
	if nAdds > 0 {
		r.adds = make([]graph.Edge, nAdds)
		for i := range r.adds {
			r.adds[i] = graph.Edge{
				Src: graph.VertexID(binary.LittleEndian.Uint32(p[off:])),
				Dst: graph.VertexID(binary.LittleEndian.Uint32(p[off+4:])),
			}
			off += 8
		}
	}
	if nDels > 0 {
		r.dels = make([]graph.Edge, nDels)
		for i := range r.dels {
			r.dels[i] = graph.Edge{
				Src: graph.VertexID(binary.LittleEndian.Uint32(p[off:])),
				Dst: graph.VertexID(binary.LittleEndian.Uint32(p[off+4:])),
			}
			off += 8
		}
	}
	return r, nil
}

// scanWAL decodes records from a segment's bytes. It returns the
// records of the longest valid prefix, that prefix's length in bytes,
// and why scanning stopped: nil at a clean end-of-segment, an
// errTornTail-wrapped error when the remainder looks like an
// interrupted append (truncating to the returned length repairs it),
// or a plain error for unrepairable corruption.
func scanWAL(data []byte) ([]walRecord, int, error) {
	var recs []walRecord
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < walFrameHeader {
			return recs, off, fmt.Errorf("%w: %d-byte partial frame header at offset %d", errTornTail, len(rest), off)
		}
		plen := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if plen < walMinPayload || plen > maxWALPayload {
			return recs, off, fmt.Errorf("%w: implausible payload length %d at offset %d", errTornTail, plen, off)
		}
		if len(rest)-walFrameHeader < int(plen) {
			return recs, off, fmt.Errorf("%w: %d payload bytes of %d at offset %d",
				errTornTail, len(rest)-walFrameHeader, plen, off)
		}
		payload := rest[walFrameHeader : walFrameHeader+int(plen)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, off, fmt.Errorf("%w: CRC mismatch at offset %d", errTornTail, off)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return recs, off, fmt.Errorf("WAL record at offset %d: %w", off, err)
		}
		recs = append(recs, rec)
		off += walFrameHeader + int(plen)
	}
	return recs, off, nil
}

// logLocked appends one record to the WAL and applies the fsync
// policy. Callers hold s.mu; on an in-memory store it is a no-op. Any
// I/O failure is sticky: a partial append desynchronises the frame
// stream, so the store refuses all further durable writes rather than
// risk logging records a replay could misparse.
func (s *Store) logLocked(kind byte, epoch uint64, adds, dels []graph.Edge) error {
	d := s.dur
	if d == nil {
		return nil
	}
	if d.err != nil {
		return d.err
	}
	if d.f == nil {
		return errClosed
	}
	d.encodeRecord(kind, epoch, adds, dels)
	if _, err := d.f.Write(d.buf); err != nil {
		d.err = fmt.Errorf("store: wal append: %w", err)
		return d.err
	}
	if d.fsync == FsyncAlways {
		if err := d.f.Sync(); err != nil {
			d.err = fmt.Errorf("store: wal sync: %w", err)
			return d.err
		}
	} else {
		d.dirty = true
	}
	if kind == recUpdate || kind == recNoop {
		d.seq.Add(1)
	}
	if kind == recUpdate {
		d.recsSince++
	}
	return nil
}
