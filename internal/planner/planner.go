// Package planner implements the adaptive per-group query planner the
// service layer uses to exploit the paper's engine crossover: per-query
// PathEnum beats the batch Ψ-DFS pipeline on small or non-overlapping
// sharing groups (detection and Ψ bookkeeping are pure overhead when
// nothing is shared), while the sharing pipeline wins when Γ-overlap is
// high, and a large high-overlap group additionally benefits from
// fanning its join phase out (parallel splice).
//
// The CostModel scores each group with inputs that are already sitting
// in cache-warm structures when the decision is made — the hop caps and
// endpoint degrees of the group's queries, the sizes of their
// hop-constrained neighbour sets Γ/Γr from the batch's distance index,
// a sampled Γ-overlap estimate (the bit-parallel MS-BFS maps answer
// membership probes in O(1), which is what makes online planning cheap
// enough to run per batch), and the cross-batch index cache's hit
// ratio. Observed per-group wall times feed back into per-engine EWMA
// cost rates, so the thresholds calibrate to the machine and workload
// instead of being hard-coded guesses.
package planner

import (
	"sync"

	"repro/internal/batchenum"
	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/hcindex"
	"repro/internal/query"
)

// Options tunes the cost model. The zero value selects the defaults.
type Options struct {
	// MinSimilarity is the estimated Γ-overlap below which a group runs
	// per-query PathEnum instead of the sharing pipeline; zero means
	// 0.7. The default is deliberately demanding: the Ψ-DFS pipeline's
	// fixed costs (detection, topological bookkeeping, splice indexes)
	// are only reliably recouped by strongly overlapping groups —
	// near-duplicate traffic around hot endpoints — while mid-overlap
	// groups usually run faster as independent PathEnum over the shared
	// index. The effective threshold then adapts around this base as
	// the model observes per-engine costs and the index cache warms up.
	MinSimilarity float64
	// SpliceQueries is the group size at which a sharing group's join
	// phase is fanned out across goroutines (GroupSpliceParallel); zero
	// means 8. The sequential engine processes such groups as plain
	// shared groups, so the setting only matters under parallel runs.
	SpliceQueries int
	// ProbePairs bounds the query pairs sampled per group for the
	// overlap estimate; zero means 4. Each probe costs two bounded
	// membership scans over the index's distance maps.
	ProbePairs int
	// Alpha is the EWMA weight of the per-engine cost feedback in
	// (0, 1]; zero means 0.3. Larger values adapt faster and forget
	// faster.
	Alpha float64
	// IndexStats, when non-nil, supplies the index provider's lifetime
	// counters; the cache hit ratio shifts the decision threshold (a
	// warm cache makes the batch's fixed index phase cheap, so the
	// sharing pipeline's remaining fixed costs — detection, Ψ
	// bookkeeping — weigh relatively more against its gains).
	IndexStats func() hcindex.Stats
}

func (o Options) minSimilarity() float64 {
	if o.MinSimilarity <= 0 {
		return 0.7
	}
	return o.MinSimilarity
}

func (o Options) spliceQueries() int {
	if o.SpliceQueries <= 0 {
		return 8
	}
	return o.SpliceQueries
}

func (o Options) probePairs() int {
	if o.ProbePairs <= 0 {
		return 4
	}
	return o.ProbePairs
}

func (o Options) alpha() float64 {
	if o.Alpha <= 0 || o.Alpha > 1 {
		return 0.3
	}
	return o.Alpha
}

// Decisions snapshots the model's lifetime planning counters.
type Decisions struct {
	// Single, Shared and Splice count the groups routed to each engine.
	Single, Shared, Splice int64
	// SingleNsPerQuery and SharedNsPerQuery are the current EWMA
	// per-query wall costs observed per engine (zero until the first
	// observation) — the feedback the thresholds calibrate on.
	SingleNsPerQuery, SharedNsPerQuery float64
}

// CostModel is a concurrency-safe batchenum.GroupPlanner. One model
// serves one service (or engine) for its lifetime, accumulating
// feedback across batches.
type CostModel struct {
	opts Options

	mu sync.Mutex
	// ewmaNs[e] is the EWMA of observed per-query nanoseconds for
	// engine e (GroupSpliceParallel folds into GroupShared — it is the
	// same pipeline with a parallel tail).
	ewmaSingle, ewmaShared float64
	dec                    Decisions
}

// New returns a CostModel with the given options.
func New(opts Options) *CostModel { return &CostModel{opts: opts} }

// Decisions returns a snapshot of the model's planning counters.
func (m *CostModel) Decisions() Decisions {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.dec
	d.SingleNsPerQuery = m.ewmaSingle
	d.SharedNsPerQuery = m.ewmaShared
	return d
}

// PlanGroup implements batchenum.GroupPlanner. The decision is
// deterministic given the same group, index and accumulated feedback:
// the overlap probes sample fixed pair positions, never random ones.
func (m *CostModel) PlanGroup(g, gr *graph.Graph, idx *hcindex.Index, qs []query.Query, group []int) batchenum.GroupEngine {
	n := len(group)
	if n == 1 {
		// A singleton can share nothing; detection would be pure waste.
		return m.book(batchenum.GroupSingle)
	}

	// Trivially cheap groups go straight to PathEnum before paying for
	// overlap probes: when the whole group's estimated enumeration mass
	// is this small, even free sharing could not recoup the detection
	// and Ψ bookkeeping.
	work := m.groupWork(g, gr, idx, qs, group)
	if work < 64*int64(n) {
		return m.book(batchenum.GroupSingle)
	}

	sim := m.overlapEstimate(idx, group)
	thr := m.opts.minSimilarity()

	// A warm index cache means the batch skipped most of its MS-BFS
	// work, so the sharing pipeline's remaining fixed costs loom larger
	// relative to the whole batch; demand a bit more overlap before
	// paying them. Cold caches leave the threshold alone.
	if m.opts.IndexStats != nil {
		thr *= 1 + 0.5*m.opts.IndexStats().HitRatio()
	}

	// Feedback: if shared groups have been observed costlier per query
	// than single ones, demand more overlap to pick sharing, and vice
	// versa. The ratio is clamped so a few noisy observations cannot
	// swing the plan to one engine permanently (which would also starve
	// the other engine's EWMA of fresh data).
	m.mu.Lock()
	if m.ewmaSingle > 0 && m.ewmaShared > 0 {
		ratio := m.ewmaShared / m.ewmaSingle
		if ratio < 0.5 {
			ratio = 0.5
		} else if ratio > 2 {
			ratio = 2
		}
		thr *= ratio
	}
	m.mu.Unlock()
	if thr > 0.95 {
		thr = 0.95
	}

	if sim < thr {
		return m.book(batchenum.GroupSingle)
	}
	// High-overlap group: share. Big groups with real per-query
	// enumeration mass additionally parallelise their join tail; tiny Γ
	// sets would spend more on goroutines than on joining.
	if n >= m.opts.spliceQueries() && work >= 256*int64(n) {
		return m.book(batchenum.GroupSpliceParallel)
	}
	return m.book(batchenum.GroupShared)
}

// book counts a decision under the model's lock.
func (m *CostModel) book(e batchenum.GroupEngine) batchenum.GroupEngine {
	m.mu.Lock()
	switch e {
	case batchenum.GroupSingle:
		m.dec.Single++
	case batchenum.GroupSpliceParallel:
		m.dec.Splice++
	default:
		m.dec.Shared++
	}
	m.mu.Unlock()
	return e
}

// ObserveGroup implements batchenum.GroupPlanner: fold the observed
// per-query cost of a processed group into the engine's EWMA rate.
func (m *CostModel) ObserveGroup(e batchenum.GroupEngine, queries int, nanos int64) {
	if queries <= 0 {
		return
	}
	perQuery := float64(nanos) / float64(queries)
	a := m.opts.alpha()
	m.mu.Lock()
	defer m.mu.Unlock()
	switch e {
	case batchenum.GroupSingle:
		m.ewmaSingle = ewma(m.ewmaSingle, perQuery, a)
	default: // shared and splice-parallel run the same pipeline
		m.ewmaShared = ewma(m.ewmaShared, perQuery, a)
	}
}

func ewma(prev, sample, alpha float64) float64 {
	if prev == 0 {
		return sample
	}
	return (1-alpha)*prev + alpha*sample
}

// overlapEstimate samples the group's pairwise Γ-overlap µ (Def. 4.5)
// at fixed pair positions: adjacent pairs spread across the group plus
// the (first, last) pair, up to ProbePairs probes. Clustering already
// guarantees some within-group affinity; the probes measure how much.
func (m *CostModel) overlapEstimate(idx *hcindex.Index, group []int) float64 {
	n := len(group)
	probes := m.opts.probePairs()
	if probes > n-1 {
		probes = n - 1
	}
	stride := (n - 1) / probes
	if stride < 1 {
		stride = 1
	}
	sum, cnt := 0.0, 0
	for i := 0; i+1 < n && cnt < probes; i += stride {
		sum += cluster.Similarity(idx, group[i], group[i+1])
		cnt++
	}
	if cnt < probes && n > 2 {
		sum += cluster.Similarity(idx, group[0], group[n-1])
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// groupWork estimates the group's enumeration mass: per query, the
// smaller of its two reach-set sizes scaled by its hop cap (deeper caps
// revisit their frontiers more) plus the endpoint branching degrees
// (the first DFS level each half pays unconditionally) — the cheapest
// defensible proxy for DFS expansions, all from structures the index
// build already materialised.
func (m *CostModel) groupWork(g, gr *graph.Graph, idx *hcindex.Index, qs []query.Query, group []int) int64 {
	var work int64
	for _, qi := range group {
		fdm := idx.DistMapFor(qi, hcindex.Forward)
		bdm := idx.DistMapFor(qi, hcindex.Backward)
		small := fdm.NumVisited()
		if b := bdm.NumVisited(); b < small {
			small = b
		}
		q := qs[qi]
		work += int64(small)*int64(1+int(q.K)/2) +
			int64(g.OutDegree(q.S)) + int64(gr.OutDegree(q.T))
	}
	return work
}
