package planner

import (
	"sync"
	"testing"

	"repro/internal/batchenum"
	"repro/internal/graph"
	"repro/internal/hcindex"
	"repro/internal/query"
	"repro/internal/testgraphs"
)

// fixture builds a graph, its index, and a validated batch.
func fixture(t *testing.T, g *graph.Graph, raw []query.Query) (*graph.Graph, *graph.Graph, *hcindex.Index, []query.Query) {
	t.Helper()
	gr := g.Reverse()
	qs, err := query.Batch(g, raw)
	if err != nil {
		t.Fatal(err)
	}
	return g, gr, hcindex.Build(g, gr, qs), qs
}

// TestSingletonGroupGoesSingle: a one-query group can share nothing, so
// the planner must never pay detection for it.
func TestSingletonGroupGoesSingle(t *testing.T) {
	g, gr, idx, qs := fixture(t, testgraphs.Paper(), []query.Query{{S: 0, T: 11, K: 5}})
	m := New(Options{})
	if e := m.PlanGroup(g, gr, idx, qs, []int{0}); e != batchenum.GroupSingle {
		t.Fatalf("singleton group planned as %v, want single", e)
	}
	d := m.Decisions()
	if d.Single != 1 || d.Shared != 0 || d.Splice != 0 {
		t.Fatalf("decisions = %+v, want exactly one single", d)
	}
}

// TestOverlapSteersDecision: near-identical queries (the paper's
// µ(q3,q4)=1 pair) must share once the group carries real work, while a
// group of disjoint-reach queries must not. The paper graph is too
// small to clear the cheap-group floor, so work thresholds are bypassed
// with a dense stand-in for the high-overlap side.
func TestOverlapSteersDecision(t *testing.T) {
	// High overlap and enough mass: identical endpoints on a complete
	// DAG — every query's reach is the whole suffix.
	dag := testgraphs.CompleteDAG(24)
	g, gr, idx, qs := fixture(t, dag, []query.Query{
		{S: 0, T: 23, K: 5}, {S: 0, T: 23, K: 5}, {S: 1, T: 23, K: 5},
	})
	m := New(Options{})
	if e := m.PlanGroup(g, gr, idx, qs, []int{0, 1, 2}); e != batchenum.GroupShared {
		t.Fatalf("high-overlap group planned as %v, want shared", e)
	}

	// Disjoint reach sets: two far-apart line segments.
	line := testgraphs.Line(40)
	g2, gr2, idx2, qs2 := fixture(t, line, []query.Query{
		{S: 0, T: 5, K: 5}, {S: 30, T: 35, K: 5},
	})
	if e := m.PlanGroup(g2, gr2, idx2, qs2, []int{0, 1}); e != batchenum.GroupSingle {
		t.Fatalf("disjoint group planned as %v, want single", e)
	}
}

// TestSpliceForLargeGroups: a big high-overlap group with real
// enumeration mass routes to the parallel-splice engine.
func TestSpliceForLargeGroups(t *testing.T) {
	dag := testgraphs.CompleteDAG(64)
	var raw []query.Query
	for i := 0; i < 8; i++ {
		raw = append(raw, query.Query{S: graph.VertexID(i % 2), T: 63, K: 6})
	}
	g, gr, idx, qs := fixture(t, dag, raw)
	m := New(Options{SpliceQueries: 8})
	group := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if e := m.PlanGroup(g, gr, idx, qs, group); e != batchenum.GroupSpliceParallel {
		t.Fatalf("large high-overlap group planned as %v, want splice-parallel", e)
	}
}

// TestFeedbackShiftsThreshold: when shared groups are observed far
// costlier per query than single ones, a borderline group flips to
// single — and the clamp keeps the shift bounded.
func TestFeedbackShiftsThreshold(t *testing.T) {
	// Two fan-out sources whose target fans overlap by half: o1 = 0.5,
	// o2 = 1 (shared target), so µ = 2/3 — between the unbiased
	// threshold (0.4) and the fully biased one (0.8).
	b := graph.NewBuilder(51)
	for v := 10; v < 30; v++ {
		b.AddEdge(0, graph.VertexID(v))
	}
	for v := 20; v < 40; v++ {
		b.AddEdge(1, graph.VertexID(v))
	}
	for v := 10; v < 40; v++ {
		b.AddEdge(graph.VertexID(v), 50)
	}
	g, gr, idx, qs := fixture(t, b.Build(), []query.Query{
		{S: 0, T: 50, K: 2}, {S: 1, T: 50, K: 2},
	})
	group := []int{0, 1}

	unbiased := New(Options{MinSimilarity: 0.4})
	if e := unbiased.PlanGroup(g, gr, idx, qs, group); e != batchenum.GroupShared {
		t.Skipf("borderline group planned as %v before feedback; fixture drifted", e)
	}

	biased := New(Options{MinSimilarity: 0.4})
	for i := 0; i < 20; i++ {
		biased.ObserveGroup(batchenum.GroupSingle, 1, 1_000)
		biased.ObserveGroup(batchenum.GroupShared, 1, 100_000)
	}
	if e := biased.PlanGroup(g, gr, idx, qs, group); e != batchenum.GroupSingle {
		t.Fatalf("after adverse shared feedback group planned as %v, want single", e)
	}
	d := biased.Decisions()
	if d.SingleNsPerQuery <= 0 || d.SharedNsPerQuery <= 0 {
		t.Fatalf("feedback EWMAs not recorded: %+v", d)
	}
}

// TestDeterministicGivenSameState: identical inputs and feedback state
// produce identical decisions — the property the scenario differential
// harness leans on.
func TestDeterministicGivenSameState(t *testing.T) {
	g, gr, idx, qs := fixture(t, testgraphs.Paper(), []query.Query{
		{S: 0, T: 11, K: 5}, {S: 2, T: 13, K: 5}, {S: 4, T: 14, K: 4},
	})
	group := []int{0, 1, 2}
	a, b := New(Options{}), New(Options{})
	for i := 0; i < 5; i++ {
		if ea, eb := a.PlanGroup(g, gr, idx, qs, group), b.PlanGroup(g, gr, idx, qs, group); ea != eb {
			t.Fatalf("iteration %d: decisions diverge (%v vs %v)", i, ea, eb)
		}
	}
}

// TestConcurrentPlanAndObserve exercises the model's locking under the
// race detector: many goroutines planning and observing at once.
func TestConcurrentPlanAndObserve(t *testing.T) {
	g, gr, idx, qs := fixture(t, testgraphs.Paper(), []query.Query{
		{S: 0, T: 11, K: 5}, {S: 2, T: 13, K: 5},
	})
	m := New(Options{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e := m.PlanGroup(g, gr, idx, qs, []int{0, 1})
				m.ObserveGroup(e, 2, int64(1000+i))
				m.Decisions()
			}
		}(w)
	}
	wg.Wait()
	d := m.Decisions()
	if d.Single+d.Shared+d.Splice != 8*200 {
		t.Fatalf("decision counters lost updates: %+v", d)
	}
}
