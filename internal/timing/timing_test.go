package timing

import (
	"strings"
	"testing"
	"time"
)

func TestStartStop(t *testing.T) {
	var b Breakdown
	stop := b.Start(BuildIndex)
	time.Sleep(time.Millisecond)
	stop()
	if b.Get(BuildIndex) <= 0 {
		t.Error("no time recorded")
	}
	if b.Get(Enumeration) != 0 {
		t.Error("unrelated phase accumulated time")
	}
}

func TestAddAndTotal(t *testing.T) {
	var b Breakdown
	b.Add(BuildIndex, 2*time.Second)
	b.Add(ClusterQuery, time.Second)
	b.Add(BuildIndex, time.Second)
	if b.Get(BuildIndex) != 3*time.Second {
		t.Errorf("BuildIndex = %v", b.Get(BuildIndex))
	}
	if b.Total() != 4*time.Second {
		t.Errorf("Total = %v", b.Total())
	}
}

func TestMerge(t *testing.T) {
	var a, b Breakdown
	a.Add(Enumeration, time.Second)
	b.Add(Enumeration, 2*time.Second)
	b.Add(IdentifySubquery, time.Second)
	a.Merge(b)
	if a.Get(Enumeration) != 3*time.Second || a.Get(IdentifySubquery) != time.Second {
		t.Errorf("merged = %v", a.String())
	}
}

func TestPhaseString(t *testing.T) {
	want := map[Phase]string{
		BuildIndex:       "BuildIndex",
		ClusterQuery:     "ClusterQuery",
		IdentifySubquery: "IdentifySubquery",
		Enumeration:      "Enumeration",
		Phase(99):        "Phase(99)",
	}
	for p, w := range want {
		if p.String() != w {
			t.Errorf("%d.String() = %s, want %s", int(p), p.String(), w)
		}
	}
}

func TestBreakdownString(t *testing.T) {
	var b Breakdown
	b.Add(BuildIndex, time.Millisecond)
	s := b.String()
	for _, want := range []string{"BuildIndex=1ms", "total=1ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
