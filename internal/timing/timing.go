// Package timing provides the phase-decomposed stopwatch used by the
// engines and the Exp-3 experiment (Fig. 9): every run is broken into
// BuildIndex, ClusterQuery, IdentifySubquery and Enumeration time.
package timing

import (
	"fmt"
	"strings"
	"time"
)

// Phase identifies one sub-step of batch query processing.
type Phase int

// The four phases of Fig. 9.
const (
	BuildIndex Phase = iota
	ClusterQuery
	IdentifySubquery
	Enumeration
	numPhases
)

// PhaseNames lists the display names in phase order.
var PhaseNames = [...]string{"BuildIndex", "ClusterQuery", "IdentifySubquery", "Enumeration"}

// String implements fmt.Stringer.
func (p Phase) String() string {
	if p >= 0 && int(p) < len(PhaseNames) {
		return PhaseNames[p]
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Breakdown accumulates wall-clock time per phase. The zero value is
// ready to use.
type Breakdown struct {
	d [numPhases]time.Duration
}

// Start begins timing phase p and returns a function that stops it and
// adds the elapsed time, suiting the `defer bd.Start(p)()` idiom.
func (b *Breakdown) Start(p Phase) func() {
	t0 := time.Now()
	return func() { b.d[p] += time.Since(t0) }
}

// Add records an externally measured duration for phase p.
func (b *Breakdown) Add(p Phase, d time.Duration) { b.d[p] += d }

// Get returns the accumulated time of phase p.
func (b *Breakdown) Get(p Phase) time.Duration { return b.d[p] }

// Total returns the sum over all phases.
func (b *Breakdown) Total() time.Duration {
	var t time.Duration
	for _, d := range b.d {
		t += d
	}
	return t
}

// Merge adds another breakdown into b.
func (b *Breakdown) Merge(o Breakdown) {
	for i := range b.d {
		b.d[i] += o.d[i]
	}
}

// String renders the breakdown as "BuildIndex=1.2ms ... total=9.9ms".
func (b *Breakdown) String() string {
	var sb strings.Builder
	for i := Phase(0); i < numPhases; i++ {
		fmt.Fprintf(&sb, "%s=%v ", i, b.d[i])
	}
	fmt.Fprintf(&sb, "total=%v", b.Total())
	return sb.String()
}
