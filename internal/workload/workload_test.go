package workload

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/graph"
	"repro/internal/msbfs"
	"repro/internal/query"
	"repro/internal/testgraphs"
)

func testGraph() (*graph.Graph, *graph.Graph) {
	g := graph.GenCommunity(400, 4, 4, 0.8, 17)
	return g, g.Reverse()
}

// TestRandomValidity: every generated query is well-formed and its
// target lies within the hop budget of its source.
func TestRandomValidity(t *testing.T) {
	g, _ := testGraph()
	qs, err := Random(g, Config{N: 50, KMin: 3, KMax: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 50 {
		t.Fatalf("generated %d queries, want 50", len(qs))
	}
	for i, q := range qs {
		if err := q.Validate(g); err != nil {
			t.Errorf("query %d invalid: %v", i, err)
		}
		if q.K < 3 || q.K > 6 {
			t.Errorf("query %d: k=%d outside [3,6]", i, q.K)
		}
		if d := msbfs.Single(g, q.S, q.K).Dist(q.T); d > q.K {
			t.Errorf("query %d: target %d hops away, budget %d", i, d, q.K)
		}
	}
}

// TestRandomDeterminism: the same seed reproduces the same batch.
func TestRandomDeterminism(t *testing.T) {
	g, _ := testGraph()
	a, err := Random(g, Config{N: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(g, Config{N: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c, err := Random(g, Config{N: 20, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical batches")
	}
}

// TestRandomTooSmall rejects degenerate graphs.
func TestRandomTooSmall(t *testing.T) {
	g := graph.FromEdges(1, nil)
	if _, err := Random(g, Config{N: 5}); err == nil {
		t.Fatal("expected an error on a single-vertex graph")
	}
}

// TestRandomUnreachable errors out instead of spinning when no pair is
// reachable.
func TestRandomUnreachable(t *testing.T) {
	g := graph.FromEdges(8, nil) // no edges at all
	if _, err := Random(g, Config{N: 3, MaxTries: 10}); err == nil {
		t.Fatal("expected an error on an edgeless graph")
	}
}

// TestWithSimilarityLevels: measured µ_Q tracks the requested level and
// increases monotonically across targets. A large sparse graph keeps the
// baseline overlap of unrelated queries low, as in the paper's datasets.
func TestWithSimilarityLevels(t *testing.T) {
	g := graph.GenRandom(3000, 2.5, 23)
	gr := g.Reverse()
	prev := -1.0
	for _, target := range []float64{0, 0.2, 0.5, 0.8} {
		qs, mu, err := WithSimilarity(g, gr, SimilarityConfig{
			Config:   Config{N: 30, KMin: 3, KMax: 4, Seed: 4},
			TargetMu: target,
		})
		if err != nil {
			t.Fatalf("target %.1f: %v", target, err)
		}
		if len(qs) != 30 {
			t.Fatalf("target %.1f: got %d queries", target, len(qs))
		}
		for i, q := range qs {
			if err := q.Validate(g); err != nil {
				t.Errorf("target %.1f query %d invalid: %v", target, i, err)
			}
		}
		if target > 0 && abs(mu-target) > 0.25 {
			t.Errorf("target %.1f: measured µ=%.3f too far off", target, mu)
		}
		if mu < prev-0.05 {
			t.Errorf("µ decreased across targets: %.3f after %.3f", mu, prev)
		}
		prev = mu
	}
}

// TestWithSimilarityRejectsImpossibleTarget.
func TestWithSimilarityRejectsImpossibleTarget(t *testing.T) {
	g, gr := testGraph()
	if _, _, err := WithSimilarity(g, gr, SimilarityConfig{
		Config: Config{N: 10}, TargetMu: 1.0,
	}); err == nil {
		t.Fatal("µ target of 1.0 must be rejected")
	}
}

// TestMeasureMuBounds: µ_Q of identical queries is 1, of a valid batch
// within [0, 1].
func TestMeasureMuBounds(t *testing.T) {
	g := testgraphs.Paper()
	gr := g.Reverse()
	same := []query.Query{{S: 0, T: 11, K: 5}, {S: 0, T: 11, K: 5}}
	if mu := MeasureMu(g, gr, same); mu < 0.999 {
		t.Errorf("identical queries measure µ=%.3f, want 1", mu)
	}
	qs, err := Random(g, Config{N: 4, KMin: 2, KMax: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mu := MeasureMu(g, gr, qs); mu < 0 || mu > 1 {
		t.Errorf("µ=%.3f outside [0,1]", mu)
	}
}

// TestZipfian: the repeated-endpoint workload must draw every query
// from a small hot pool, with the head of the popularity distribution
// dominating, every query valid, and targets on the k-hop horizon.
func TestZipfian(t *testing.T) {
	g, _ := testGraph()
	qs, err := Zipfian(g, ZipfianConfig{
		Config: Config{N: 200, KMin: 3, KMax: 5, Seed: 7},
		Hot:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 200 {
		t.Fatalf("got %d queries", len(qs))
	}
	counts := make(map[query.Query]int)
	for _, q := range qs {
		if err := q.Validate(g); err != nil {
			t.Fatal(err)
		}
		counts[q]++
		dm := msbfs.Single(g, q.S, q.K)
		if d := dm.Dist(q.T); d == msbfs.Unreachable {
			t.Fatalf("%v: target unreachable within k", q)
		}
	}
	if len(counts) > 8 {
		t.Errorf("%d distinct queries, want ≤ Hot=8", len(counts))
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 50 {
		t.Errorf("head query drawn %d times out of 200; Zipf skew looks wrong", max)
	}
}

// TestZipfianReproducible is the regression test for deterministic
// seeding: two generations with the same Seed are identical, an
// explicit Source positioned like the seeded default reproduces it
// exactly, and two Sources in the same state agree with each other —
// the property scenario replays and benchmark baselines depend on.
func TestZipfianReproducible(t *testing.T) {
	g, _ := testGraph()
	cfg := ZipfianConfig{
		Config: Config{N: 64, KMin: 3, KMax: 5, Seed: 11},
		Hot:    8,
	}
	gen := func(c ZipfianConfig) []query.Query {
		t.Helper()
		qs, err := Zipfian(g, c)
		if err != nil {
			t.Fatal(err)
		}
		return qs
	}
	want := gen(cfg)
	if got := gen(cfg); !slices.Equal(want, got) {
		t.Fatalf("same seed diverged:\n%v\nvs\n%v", want, got)
	}
	withSource := cfg
	withSource.Seed = 999 // must be ignored when Source is set
	withSource.Source = rand.NewSource(11)
	if got := gen(withSource); !slices.Equal(want, got) {
		t.Fatalf("explicit Source diverged from equally seeded default:\n%v\nvs\n%v", want, got)
	}
	a, b := cfg, cfg
	a.Source, b.Source = rand.NewSource(42), rand.NewSource(42)
	if ga, gb := gen(a), gen(b); !slices.Equal(ga, gb) {
		t.Fatalf("equal Sources diverged:\n%v\nvs\n%v", ga, gb)
	}
}

// TestZipfianDegenerateGraph mirrors the GenErdosRenyi guard: a
// too-small graph must error, not loop.
func TestZipfianDegenerateGraph(t *testing.T) {
	g := graph.FromEdges(1, nil)
	if _, err := Zipfian(g, ZipfianConfig{Config: Config{N: 5, MaxTries: 10}}); err == nil {
		t.Fatal("single-vertex graph accepted")
	}
}
