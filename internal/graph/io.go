package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list ("src dst" per
// line). Lines starting with '#' or '%' are comments. Vertex ids must be
// non-negative integers; the graph size is the max id + 1.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	b := NewBuilder(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src %q: %v", lineNo, fields[0], err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst %q: %v", lineNo, fields[1], err)
		}
		b.AddEdge(VertexID(src), VertexID(dst))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scanning edge list: %w", err)
	}
	return b.Build(), nil
}

// WriteEdgeList writes the graph as a plain edge list, one "src dst" pair
// per line.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	var err error
	g.Edges(func(src, dst VertexID) bool {
		_, err = fmt.Fprintf(bw, "%d %d\n", src, dst)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// binaryMagic identifies the binary graph format.
var binaryMagic = [8]byte{'H', 'C', 'G', 'R', 'A', 'P', 'H', '1'}

// WriteBinary writes the CSR arrays in a compact little-endian binary
// format: magic, n (uint64), m (uint64), offsets (n+1 × int64),
// targets (m × uint32).
func WriteBinary(w io.Writer, g *Graph) error {
	g = g.Flatten() // overlay graphs serialise as their folded CSR
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	hdr := [2]uint64{uint64(g.NumVertices()), uint64(g.NumEdges())}
	if err := binary.Write(bw, binary.LittleEndian, hdr[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.targets); err != nil {
		return err
	}
	return bw.Flush()
}

// readChunkEntries bounds how many array entries ReadBinary requests at
// a time, so a corrupt header cannot drive a multi-gigabyte allocation:
// storage grows only as data actually arrives, and a truncated stream
// fails after at most one chunk of over-allocation.
const readChunkEntries = 1 << 15

// ReadBinary reads a graph written by WriteBinary and validates it. The
// input is untrusted: the arrays are read incrementally in bounded
// chunks, offsets are checked for monotonicity (and against the header's
// edge count) and target ids for range as they stream in, and the header
// sizes are cross-checked against the data actually present. Corrupt or
// truncated input returns an error; it never panics or allocates
// header-proportional memory up front.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic[:])
	}
	var hdr [2]uint64
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	const maxReasonable = 1 << 33
	if hdr[0] > maxReasonable || hdr[1] > maxReasonable ||
		hdr[0]+1 > uint64(math.MaxInt) || hdr[1] > uint64(math.MaxInt) {
		// The MaxInt guards keep the int conversions below exact on
		// 32-bit builds, where 2^31 ≤ n ≤ 2^33 would wrap negative.
		return nil, fmt.Errorf("graph: implausible sizes n=%d m=%d", hdr[0], hdr[1])
	}
	n, m := int(hdr[0]), int(hdr[1])

	offsets := make([]int64, 0, min(n+1, readChunkEntries))
	obuf := make([]int64, min(n+1, readChunkEntries))
	prev := int64(0)
	for len(offsets) < n+1 {
		c := min(n+1-len(offsets), readChunkEntries)
		if err := binary.Read(br, binary.LittleEndian, obuf[:c]); err != nil {
			return nil, fmt.Errorf("graph: reading offsets (%d of %d): %w", len(offsets), n+1, err)
		}
		for i, o := range obuf[:c] {
			switch {
			case len(offsets) == 0 && i == 0:
				if o != 0 {
					return nil, fmt.Errorf("graph: offsets[0] = %d, want 0", o)
				}
			case o < prev:
				return nil, fmt.Errorf("graph: offsets not monotone at index %d (%d < %d)", len(offsets)+i, o, prev)
			}
			if o > int64(m) {
				return nil, fmt.Errorf("graph: offset %d exceeds edge count %d", o, m)
			}
			prev = o
		}
		offsets = append(offsets, obuf[:c]...)
	}
	if offsets[n] != int64(m) {
		return nil, fmt.Errorf("graph: offsets[n] = %d, want %d", offsets[n], m)
	}

	targets := make([]VertexID, 0, min(m, readChunkEntries))
	tbuf := make([]VertexID, min(m, readChunkEntries))
	for len(targets) < m {
		c := min(m-len(targets), readChunkEntries)
		if err := binary.Read(br, binary.LittleEndian, tbuf[:c]); err != nil {
			return nil, fmt.Errorf("graph: reading targets (%d of %d): %w", len(targets), m, err)
		}
		for i, w := range tbuf[:c] {
			if int(w) >= n {
				return nil, fmt.Errorf("graph: target %d out of range at index %d (n=%d)", w, len(targets)+i, n)
			}
		}
		targets = append(targets, tbuf[:c]...)
	}

	g := &Graph{offsets: offsets, targets: targets}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// LoadFile loads a graph from a path, choosing the format by extension:
// ".bin" uses the binary format, anything else is parsed as an edge list.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return ReadBinary(f)
	}
	return ReadEdgeList(f)
}

// SaveFile writes a graph to a path, choosing the format by extension as
// in LoadFile.
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return WriteBinary(f, g)
	}
	return WriteEdgeList(f, g)
}
