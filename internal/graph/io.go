package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list ("src dst" per
// line). Lines starting with '#' or '%' are comments. Vertex ids must be
// non-negative integers; the graph size is the max id + 1.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	b := NewBuilder(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src %q: %v", lineNo, fields[0], err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst %q: %v", lineNo, fields[1], err)
		}
		b.AddEdge(VertexID(src), VertexID(dst))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scanning edge list: %w", err)
	}
	return b.Build(), nil
}

// WriteEdgeList writes the graph as a plain edge list, one "src dst" pair
// per line.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	var err error
	g.Edges(func(src, dst VertexID) bool {
		_, err = fmt.Fprintf(bw, "%d %d\n", src, dst)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// binaryMagic identifies the binary graph format.
var binaryMagic = [8]byte{'H', 'C', 'G', 'R', 'A', 'P', 'H', '1'}

// WriteBinary writes the CSR arrays in a compact little-endian binary
// format: magic, n (uint64), m (uint64), offsets (n+1 × int64),
// targets (m × uint32).
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	hdr := [2]uint64{uint64(g.NumVertices()), uint64(g.NumEdges())}
	if err := binary.Write(bw, binary.LittleEndian, hdr[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.targets); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary reads a graph written by WriteBinary and validates it.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic[:])
	}
	var hdr [2]uint64
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	n, m := hdr[0], hdr[1]
	const maxReasonable = 1 << 33
	if n > maxReasonable || m > maxReasonable {
		return nil, fmt.Errorf("graph: implausible sizes n=%d m=%d", n, m)
	}
	g := &Graph{
		offsets: make([]int64, n+1),
		targets: make([]VertexID, m),
	}
	if err := binary.Read(br, binary.LittleEndian, g.offsets); err != nil {
		return nil, fmt.Errorf("graph: reading offsets: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, g.targets); err != nil {
		return nil, fmt.Errorf("graph: reading targets: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// LoadFile loads a graph from a path, choosing the format by extension:
// ".bin" uses the binary format, anything else is parsed as an edge list.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return ReadBinary(f)
	}
	return ReadEdgeList(f)
}

// SaveFile writes a graph to a path, choosing the format by extension as
// in LoadFile.
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return WriteBinary(f, g)
	}
	return WriteEdgeList(f, g)
}
