package graph

import (
	"bytes"
	"testing"
)

// FuzzReadBinary hammers the binary loader with arbitrary bytes: it must
// either return an error or a graph whose invariants hold and which
// round-trips through WriteBinary byte-identically. Seeds cover valid
// encodings (so mutations explore near-valid corruptions: flipped
// offsets, out-of-range targets, truncations) plus a header lying about
// huge sizes, which must fail fast instead of allocating.
func FuzzReadBinary(f *testing.F) {
	seed := func(g *Graph) []byte {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(FromEdges(4, []Edge{{0, 1}, {1, 2}, {0, 2}, {2, 3}})))
	f.Add(seed(FromEdges(1, nil)))
	f.Add(seed(FromEdges(6, []Edge{{0, 5}, {5, 0}, {2, 3}, {3, 4}, {4, 2}})))
	// Magic + header claiming 2^32 vertices and edges, no data.
	huge := append([]byte(nil), binaryMagic[:]...)
	huge = append(huge, []byte{0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0}...)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			data = data[:1<<16] // bound per-exec work, not coverage
		}
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, g); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		g2, err := ReadBinary(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		var out2 bytes.Buffer
		if err := WriteBinary(&out2, g2); err != nil {
			t.Fatalf("re-encode 2: %v", err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("round-trip not stable")
		}
	})
}
