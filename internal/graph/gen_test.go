package graph

import "testing"

// Regression: GenErdosRenyi(1, m>0) used to spin forever in the
// dst != src rejection loop — with a single vertex every redraw is the
// source again.
func TestGenErdosRenyiDegenerate(t *testing.T) {
	for _, n := range []int{0, 1} {
		g := GenErdosRenyi(n, 5, 42)
		if g.NumVertices() != n {
			t.Errorf("n=%d: got %d vertices", n, g.NumVertices())
		}
		if g.NumEdges() != 0 {
			t.Errorf("n=%d: got %d edges, want 0 (no non-self-loop edge exists)", n, g.NumEdges())
		}
	}
}

func TestGenErdosRenyiShape(t *testing.T) {
	g := GenErdosRenyi(50, 200, 7)
	if g.NumVertices() != 50 {
		t.Fatalf("got %d vertices", g.NumVertices())
	}
	// Duplicates collapse in Build, so the realised count can dip below
	// m, but must stay positive and never exceed it.
	if e := g.NumEdges(); e == 0 || e > 200 {
		t.Errorf("got %d edges, want (0, 200]", e)
	}
	g.Edges(func(src, dst VertexID) bool {
		if src == dst {
			t.Errorf("self-loop at %d", src)
		}
		return true
	})
}
