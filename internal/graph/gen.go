package graph

import (
	"math/rand"
)

// The generators below produce the synthetic stand-ins for the paper's
// real-world datasets (Table I). The enumeration algorithms only care
// about graph *shape* — degree skew, density, and local clustering drive
// both the search-space size and the amount of inter-query overlap — so
// each stand-in mimics the degree profile of its real counterpart at a
// reduced scale. All generators are deterministic for a given seed.

// GenErdosRenyi generates a directed G(n, m) graph: m edges sampled
// uniformly at random without self-loops (duplicates collapse in Build,
// so the realised edge count can be marginally below m on dense inputs).
func GenErdosRenyi(n, m int, seed int64) *Graph {
	b := NewBuilder(n)
	if n < 2 {
		// No non-self-loop edge exists; without this guard the
		// rejection loop below could never terminate for n == 1, m > 0.
		return b.Build()
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < m; i++ {
		src := VertexID(rng.Intn(n))
		dst := VertexID(rng.Intn(n))
		for dst == src {
			dst = VertexID(rng.Intn(n))
		}
		b.AddEdge(src, dst)
	}
	return b.Build()
}

// GenPowerLaw generates a directed scale-free graph by preferential
// attachment (Barabási–Albert flavour): each new vertex attaches
// outDeg edges whose endpoints are chosen proportionally to current
// degree, and the same number of incoming edges from random earlier
// vertices so that both in- and out-degree distributions are skewed.
// This is the shape of the social/web graphs in Table I (high dmax,
// heavy-tailed degrees).
func GenPowerLaw(n, outDeg int, seed int64) *Graph {
	if n < 2 {
		return FromEdges(n, nil)
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	// endpoint multiset for preferential attachment; each edge endpoint
	// appears once, so sampling uniformly from it is degree-proportional.
	endpoints := make([]VertexID, 0, 2*n*outDeg)
	// Seed clique among the first outDeg+1 vertices.
	seedSize := outDeg + 1
	if seedSize > n {
		seedSize = n
	}
	for i := 0; i < seedSize; i++ {
		for j := 0; j < seedSize; j++ {
			if i != j {
				b.AddEdge(VertexID(i), VertexID(j))
				endpoints = append(endpoints, VertexID(i), VertexID(j))
			}
		}
	}
	for v := seedSize; v < n; v++ {
		for e := 0; e < outDeg; e++ {
			// Out-edge to a degree-proportional target.
			t := endpoints[rng.Intn(len(endpoints))]
			if t != VertexID(v) {
				b.AddEdge(VertexID(v), t)
				endpoints = append(endpoints, VertexID(v), t)
			}
			// In-edge from a uniformly random earlier vertex keeps the
			// graph strongly navigable in both directions.
			s := VertexID(rng.Intn(v))
			b.AddEdge(s, VertexID(v))
			endpoints = append(endpoints, s, VertexID(v))
		}
	}
	return b.Build()
}

// GenCommunity generates a planted-partition (stochastic block model
// flavoured) graph: n vertices split into numComm communities, each
// vertex receiving deg out-edges, a fraction pIn of which stay inside
// its own community. Community structure concentrates paths, which is
// what creates high inter-query overlap in the similarity-controlled
// workloads of Exp-1.
func GenCommunity(n, numComm, deg int, pIn float64, seed int64) *Graph {
	if numComm < 1 {
		numComm = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	commSize := (n + numComm - 1) / numComm
	commOf := func(v int) int { return v / commSize }
	randInComm := func(c int) int {
		lo := c * commSize
		hi := lo + commSize
		if hi > n {
			hi = n
		}
		return lo + rng.Intn(hi-lo)
	}
	for v := 0; v < n; v++ {
		for e := 0; e < deg; e++ {
			var t int
			if rng.Float64() < pIn {
				t = randInComm(commOf(v))
			} else {
				t = rng.Intn(n)
			}
			if t != v {
				b.AddEdge(VertexID(v), VertexID(t))
			}
		}
	}
	return b.Build()
}

// GenCommunityPowerLaw combines the two structures that shape real
// social and web graphs: vertices are partitioned into communities of
// ~commSize, each vertex attaches outDeg out-edges, a fraction pIn of
// which pick a degree-proportional target inside the own community
// (heavy-tailed local hubs) while the rest go to uniformly random
// vertices anywhere (weak ties). Locality bounds k-hop ball growth —
// essential for meaningful inter-query similarity levels (Exp-1) on
// reduced-scale stand-ins — while preferential attachment preserves the
// dmax skew of Table I's originals.
func GenCommunityPowerLaw(n, commSize, outDeg int, pIn float64, seed int64) *Graph {
	if commSize < 2 {
		commSize = 2
	}
	if commSize > n {
		commSize = n
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	numComm := (n + commSize - 1) / commSize
	// Per-community endpoint multisets drive the local preferential
	// attachment; seeded with one ring per community so sampling never
	// starves.
	endpoints := make([][]VertexID, numComm)
	commOf := func(v int) int { return v / commSize }
	for c := 0; c < numComm; c++ {
		lo := c * commSize
		hi := lo + commSize
		if hi > n {
			hi = n
		}
		for v := lo; v < hi; v++ {
			w := v + 1
			if w >= hi {
				w = lo
			}
			if v != w {
				b.AddEdge(VertexID(v), VertexID(w))
				endpoints[c] = append(endpoints[c], VertexID(v), VertexID(w))
			}
		}
	}
	for v := 0; v < n; v++ {
		c := commOf(v)
		for e := 0; e < outDeg; e++ {
			var t VertexID
			if rng.Float64() < pIn && len(endpoints[c]) > 0 {
				t = endpoints[c][rng.Intn(len(endpoints[c]))]
			} else {
				t = VertexID(rng.Intn(n))
			}
			if t == VertexID(v) {
				continue
			}
			b.AddEdge(VertexID(v), t)
			if commOf(int(t)) == c {
				endpoints[c] = append(endpoints[c], VertexID(v), t)
			}
		}
	}
	return b.Build()
}

// GenGrid generates a directed w×h grid with edges right and down plus
// their reverses, a useful worst-case-free topology for unit tests
// (shortest distances are Manhattan distances).
func GenGrid(w, h int) *Graph {
	b := NewBuilder(w * h)
	id := func(x, y int) VertexID { return VertexID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(id(x, y), id(x+1, y))
				b.AddEdge(id(x+1, y), id(x, y))
			}
			if y+1 < h {
				b.AddEdge(id(x, y), id(x, y+1))
				b.AddEdge(id(x, y+1), id(x, y))
			}
		}
	}
	return b.Build()
}

// GenRandom generates a random directed graph suitable for
// property-based tests: n vertices, average degree davg, mixing
// power-law hubs with uniform edges so that both sparse and skewed
// neighbourhoods appear.
func GenRandom(n int, davg float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	m := int(float64(n) * davg)
	hubs := n/10 + 1
	for i := 0; i < m; i++ {
		var src, dst int
		if rng.Intn(3) == 0 { // hub edge
			src = rng.Intn(hubs)
		} else {
			src = rng.Intn(n)
		}
		dst = rng.Intn(n)
		if src != dst {
			b.AddEdge(VertexID(src), VertexID(dst))
		}
	}
	return b.Build()
}

// SampleVertices returns the induced subgraph on a uniformly random
// fraction of the vertices (Exp-5 follows the paper's "randomly sample
// their vertices ... from 20% to 100%"). Sampled vertices are re-labelled
// densely in [0, n'), preserving relative order; the mapping from new to
// original ids is returned alongside.
func SampleVertices(g *Graph, fraction float64, seed int64) (*Graph, []VertexID) {
	n := g.NumVertices()
	keep := int(float64(n) * fraction)
	if keep > n {
		keep = n
	}
	if keep < 0 {
		keep = 0
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	chosen := make([]bool, n)
	for _, v := range perm[:keep] {
		chosen[v] = true
	}
	newID := make([]VertexID, n)
	oldID := make([]VertexID, 0, keep)
	next := VertexID(0)
	for v := 0; v < n; v++ {
		if chosen[v] {
			newID[v] = next
			oldID = append(oldID, VertexID(v))
			next++
		} else {
			newID[v] = NoVertex
		}
	}
	b := NewBuilder(keep)
	g.Edges(func(src, dst VertexID) bool {
		if chosen[src] && chosen[dst] {
			b.AddEdge(newID[src], newID[dst])
		}
		return true
	})
	return b.Build(), oldID
}

// SampleEdges returns a subgraph keeping each edge independently with
// the given probability; the vertex set is unchanged.
func SampleEdges(g *Graph, fraction float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(g.NumVertices())
	g.Edges(func(src, dst VertexID) bool {
		if rng.Float64() < fraction {
			b.AddEdge(src, dst)
		}
		return true
	})
	return b.Build()
}
