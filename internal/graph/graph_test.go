package graph

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// paperGraph builds the 16-vertex example graph of Fig. 1 in the paper.
// It is shared by tests across packages via this helper's re-implementation.
func paperGraph() *Graph {
	edges := []Edge{
		{0, 1}, {0, 4}, {2, 1}, {2, 4}, {5, 1}, {5, 8},
		{1, 7}, {1, 8}, {4, 9}, {9, 3}, {9, 15}, {9, 8},
		{7, 10}, {7, 8}, {3, 6}, {15, 6}, {10, 12}, {12, 11},
		{12, 13}, {6, 11}, {6, 13}, {6, 14}, {8, 14}, {13, 14},
	}
	return FromEdges(16, edges)
}

func TestBuilderBasics(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 1}, {1, 1}})
	if got := g.NumVertices(); got != 4 {
		t.Fatalf("NumVertices = %d, want 4", got)
	}
	// duplicate {0,1} collapsed, self loop {1,1} dropped
	if got := g.NumEdges(); got != 3 {
		t.Fatalf("NumEdges = %d, want 3", got)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) || g.HasEdge(1, 1) {
		t.Fatalf("HasEdge wrong: %v %v %v", g.HasEdge(0, 1), g.HasEdge(1, 0), g.HasEdge(1, 1))
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuilderGrowsVertexSpace(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(5, 9)
	g := b.Build()
	if g.NumVertices() != 10 {
		t.Fatalf("NumVertices = %d, want 10", g.NumVertices())
	}
	if !g.HasEdge(5, 9) {
		t.Fatal("edge (5,9) missing")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := FromEdges(0, nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph: %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	r := g.Reverse()
	if r.NumVertices() != 0 {
		t.Fatal("reverse of empty graph not empty")
	}
}

func TestIsolatedVertices(t *testing.T) {
	g := FromEdges(100, []Edge{{0, 99}})
	if g.NumVertices() != 100 || g.NumEdges() != 1 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	for v := 1; v < 99; v++ {
		if g.OutDegree(VertexID(v)) != 0 {
			t.Fatalf("vertex %d should be isolated", v)
		}
	}
}

func TestReverseInvolution(t *testing.T) {
	g := paperGraph()
	rr := g.Reverse().Reverse()
	if g.NumEdges() != rr.NumEdges() || g.NumVertices() != rr.NumVertices() {
		t.Fatal("double reverse changed size")
	}
	g.Edges(func(src, dst VertexID) bool {
		if !rr.HasEdge(src, dst) {
			t.Fatalf("edge (%d,%d) lost in double reverse", src, dst)
		}
		return true
	})
}

func TestReverseEdgeCorrespondence(t *testing.T) {
	g := paperGraph()
	r := g.Reverse()
	g.Edges(func(src, dst VertexID) bool {
		if !r.HasEdge(dst, src) {
			t.Fatalf("reverse missing (%d,%d)", dst, src)
		}
		return true
	})
	if err := r.Validate(); err != nil {
		t.Fatalf("reverse Validate: %v", err)
	}
}

func TestReversePropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		g := GenRandom(50, 4, seed)
		r := g.Reverse()
		if g.NumEdges() != r.NumEdges() {
			return false
		}
		ok := true
		g.Edges(func(src, dst VertexID) bool {
			if !r.HasEdge(dst, src) {
				ok = false
			}
			return ok
		})
		return ok && r.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}})
	s := ComputeStats(g)
	if s.NumVertices != 4 || s.NumEdges != 4 {
		t.Fatalf("stats size wrong: %+v", s)
	}
	if s.AvgDegree != 1.0 {
		t.Fatalf("AvgDegree = %f, want 1.0", s.AvgDegree)
	}
	if s.MaxDegree != 3 {
		t.Fatalf("MaxDegree = %d, want 3", s.MaxDegree)
	}
	if !strings.Contains(s.String(), "|V|=4") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := paperGraph()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumEdges() != g2.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", g.NumEdges(), g2.NumEdges())
	}
	g.Edges(func(src, dst VertexID) bool {
		if !g2.HasEdge(src, dst) {
			t.Fatalf("edge (%d,%d) lost in round trip", src, dst)
		}
		return true
	})
}

func TestEdgeListCommentsAndErrors(t *testing.T) {
	in := "# comment\n% another\n\n0 1\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if _, err := ReadEdgeList(strings.NewReader("0\n")); err == nil {
		t.Fatal("want error for single-field line")
	}
	if _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Fatal("want error for non-numeric line")
	}
	if _, err := ReadEdgeList(strings.NewReader("-1 2\n")); err == nil {
		t.Fatal("want error for negative id")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := GenPowerLaw(300, 4, 7)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !reflect.DeepEqual(g.offsets, g2.offsets) || !reflect.DeepEqual(g.targets, g2.targets) {
		t.Fatal("binary round trip not identical")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a graph at all......")); err == nil {
		t.Fatal("want error for bad magic")
	}
	if _, err := ReadBinary(strings.NewReader("HC")); err == nil {
		t.Fatal("want error for truncated magic")
	}
}

func TestGenErdosRenyi(t *testing.T) {
	g := GenErdosRenyi(100, 500, 42)
	if g.NumVertices() != 100 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() == 0 || g.NumEdges() > 500 {
		t.Fatalf("NumEdges = %d, want (0,500]", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// deterministic for a seed
	g2 := GenErdosRenyi(100, 500, 42)
	if g.NumEdges() != g2.NumEdges() {
		t.Fatal("generator not deterministic")
	}
}

func TestGenPowerLawSkew(t *testing.T) {
	g := GenPowerLaw(2000, 3, 1)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s := ComputeStats(g)
	if s.MaxDegree < 5*int(s.AvgDegree) {
		t.Fatalf("power-law graph not skewed: dmax=%d davg=%.1f", s.MaxDegree, s.AvgDegree)
	}
}

func TestGenCommunityLocality(t *testing.T) {
	g := GenCommunity(1000, 10, 8, 0.9, 3)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// most edges should stay within a 100-vertex community block
	in, out := 0, 0
	g.Edges(func(src, dst VertexID) bool {
		if int(src)/100 == int(dst)/100 {
			in++
		} else {
			out++
		}
		return true
	})
	if in <= 3*out {
		t.Fatalf("community structure too weak: in=%d out=%d", in, out)
	}
}

func TestGenGridDistances(t *testing.T) {
	g := GenGrid(4, 3)
	if g.NumVertices() != 12 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(0, 4) {
		t.Fatal("grid edges wrong")
	}
	if g.HasEdge(3, 4) { // row wrap must not exist
		t.Fatal("grid wrapped rows")
	}
}

func TestSampleVertices(t *testing.T) {
	g := GenPowerLaw(500, 3, 11)
	sub, oldID := SampleVertices(g, 0.4, 5)
	if got, want := sub.NumVertices(), 200; got != want {
		t.Fatalf("sampled %d vertices, want %d", got, want)
	}
	if len(oldID) != sub.NumVertices() {
		t.Fatal("oldID length mismatch")
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// every sampled edge must exist between the original endpoints
	sub.Edges(func(src, dst VertexID) bool {
		if !g.HasEdge(oldID[src], oldID[dst]) {
			t.Fatalf("sampled edge (%d,%d) not in original", oldID[src], oldID[dst])
		}
		return true
	})
	// id mapping is strictly increasing (order preserved)
	if !sort.SliceIsSorted(oldID, func(i, j int) bool { return oldID[i] < oldID[j] }) {
		t.Fatal("oldID not sorted")
	}
}

func TestSampleVerticesExtremes(t *testing.T) {
	g := GenGrid(5, 5)
	full, _ := SampleVertices(g, 1.0, 1)
	if full.NumEdges() != g.NumEdges() {
		t.Fatalf("100%% sample lost edges: %d vs %d", full.NumEdges(), g.NumEdges())
	}
	empty, _ := SampleVertices(g, 0, 1)
	if empty.NumVertices() != 0 {
		t.Fatal("0% sample should be empty")
	}
}

func TestSampleEdges(t *testing.T) {
	g := GenErdosRenyi(200, 2000, 9)
	sub := SampleEdges(g, 0.5, 2)
	if sub.NumVertices() != g.NumVertices() {
		t.Fatal("edge sampling changed vertex count")
	}
	if sub.NumEdges() == 0 || sub.NumEdges() >= g.NumEdges() {
		t.Fatalf("edge sample size implausible: %d of %d", sub.NumEdges(), g.NumEdges())
	}
	sub.Edges(func(src, dst VertexID) bool {
		if !g.HasEdge(src, dst) {
			t.Fatalf("invented edge (%d,%d)", src, dst)
		}
		return true
	})
}

func TestEdgesEarlyStop(t *testing.T) {
	g := paperGraph()
	count := 0
	g.Edges(func(src, dst VertexID) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d edges, want 5", count)
	}
}

func TestLoadSaveFile(t *testing.T) {
	g := GenGrid(3, 3)
	dir := t.TempDir()
	for _, name := range []string{dir + "/g.txt", dir + "/g.bin"} {
		if err := SaveFile(name, g); err != nil {
			t.Fatalf("SaveFile(%s): %v", name, err)
		}
		g2, err := LoadFile(name)
		if err != nil {
			t.Fatalf("LoadFile(%s): %v", name, err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: edges %d want %d", name, g2.NumEdges(), g.NumEdges())
		}
	}
	if _, err := LoadFile(dir + "/missing.txt"); err == nil {
		t.Fatal("want error for missing file")
	}
}

// TestGenCommunityPowerLaw checks the hybrid generator's contract: a
// valid graph, heavy-tailed total degree, and locality (k-hop balls
// bounded well below the graph when pIn is high).
func TestGenCommunityPowerLaw(t *testing.T) {
	g := GenCommunityPowerLaw(3000, 100, 5, 0.97, 9)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(g)
	if st.AvgDegree < 3 || st.AvgDegree > 10 {
		t.Errorf("davg = %.1f outside the expected band", st.AvgDegree)
	}
	if float64(st.MaxDegree) < 3*st.AvgDegree {
		t.Errorf("no degree skew: dmax=%d davg=%.1f", st.MaxDegree, st.AvgDegree)
	}
	// Locality: a 4-hop ball from a random vertex must not swallow the
	// graph (that is the property the stand-ins rely on).
	ball := bfsBallSize(g, 17, 4)
	if ball > g.NumVertices()/2 {
		t.Errorf("4-hop ball covers %d of %d vertices; generator lost locality", ball, g.NumVertices())
	}
	// Degenerate parameters clamp instead of failing.
	small := GenCommunityPowerLaw(10, 50, 2, 0.9, 1)
	if err := small.Validate(); err != nil {
		t.Fatal(err)
	}
	tiny := GenCommunityPowerLaw(3, 1, 1, 0.5, 1)
	if err := tiny.Validate(); err != nil {
		t.Fatal(err)
	}
}

func bfsBallSize(g *Graph, src VertexID, hops int) int {
	dist := map[VertexID]int{src: 0}
	queue := []VertexID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if dist[v] >= hops {
			continue
		}
		for _, w := range g.OutNeighbors(v) {
			if _, seen := dist[w]; !seen {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return len(dist)
}

// TestNumPendingEdges counts pre-dedup additions.
func TestNumPendingEdges(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1) // duplicate still pending
	b.AddEdge(1, 1) // self-loop dropped immediately
	if got := b.NumPendingEdges(); got != 2 {
		t.Fatalf("NumPendingEdges = %d, want 2", got)
	}
}

// TestReadBinaryCorrupt: truncated and malformed binary inputs fail
// cleanly instead of panicking.
func TestReadBinaryCorrupt(t *testing.T) {
	var buf bytes.Buffer
	g := FromEdges(3, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 1, 4, 8, len(full) - 1} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Corrupt magic.
	bad := append([]byte{}, full...)
	bad[0] ^= 0xFF
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Round trip still works on the pristine copy.
	g2, err := ReadBinary(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Errorf("round trip lost edges: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
}
