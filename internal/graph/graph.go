// Package graph provides the directed-graph substrate used by all
// enumeration algorithms in this repository: a compact CSR (compressed
// sparse row) representation with O(1) out-neighbour slicing, the reverse
// graph for backward searches, loaders and writers for edge-list and
// binary formats, degree statistics matching Table I of the paper, vertex
// and edge sampling for the scalability experiment (Exp-5), and synthetic
// generators used as stand-ins for the paper's twelve real-world datasets.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. Vertices are dense integers in [0, N).
type VertexID = uint32

// NoVertex is a sentinel that is never a valid vertex id.
const NoVertex = ^VertexID(0)

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src VertexID
	Dst VertexID
}

// Graph is an immutable unweighted directed graph in CSR form.
//
// offsets has length n+1; the out-neighbours of v are
// targets[offsets[v]:offsets[v+1]]. Neighbour lists are sorted by vertex
// id and deduplicated; self-loops are removed at construction time (a
// simple path can never use one).
//
// A Graph may additionally carry a delta overlay (see Overlay): a set of
// adjacency rows that supersede the CSR rows of the vertices they name,
// plus optional vertex growth beyond the CSR. Overlay graphs answer the
// same neighbour-access calls as plain ones — every engine works
// unchanged — at the cost of one map probe per access; plain graphs pay
// a single nil check. The versioned store (internal/store) builds one
// overlay graph per update epoch and folds it back into a plain CSR
// when the delta grows (Flatten).
type Graph struct {
	offsets []int64
	targets []VertexID

	// overlay, when non-nil, supersedes the CSR rows of the vertices it
	// contains; rows are sorted, deduplicated and self-loop free, like
	// CSR rows. ovN/ovM are the overlay graph's vertex and edge totals
	// (ovN ≥ len(offsets)-1: updates may add vertices, never remove).
	overlay map[VertexID][]VertexID
	ovN     int
	ovM     int
}

// NumVertices returns the number of vertices n.
func (g *Graph) NumVertices() int {
	if g.overlay != nil {
		return g.ovN
	}
	return len(g.offsets) - 1
}

// NumEdges returns the number of directed edges m (after dedup).
func (g *Graph) NumEdges() int {
	if g.overlay != nil {
		return g.ovM
	}
	return len(g.targets)
}

// OutNeighbors returns the sorted out-neighbour list of v. The returned
// slice aliases internal storage and must not be modified.
func (g *Graph) OutNeighbors(v VertexID) []VertexID {
	if g.overlay != nil {
		if row, ok := g.overlay[v]; ok {
			return row
		}
		if int(v) >= len(g.offsets)-1 {
			return nil // grown vertex with no overlay row
		}
	}
	return g.targets[g.offsets[v]:g.offsets[v+1]]
}

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v VertexID) int {
	if g.overlay != nil {
		return len(g.OutNeighbors(v))
	}
	return int(g.offsets[v+1] - g.offsets[v])
}

// HasEdge reports whether the edge (u, v) exists, via binary search on
// u's sorted neighbour list.
func (g *Graph) HasEdge(u, v VertexID) bool {
	nbrs := g.OutNeighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	return i < len(nbrs) && nbrs[i] == v
}

// Edges calls fn for every edge in the graph, in (src, dst) order.
// Iteration stops early if fn returns false.
func (g *Graph) Edges(fn func(src, dst VertexID) bool) {
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.OutNeighbors(VertexID(v)) {
			if !fn(VertexID(v), w) {
				return
			}
		}
	}
}

// Reverse builds the reverse graph Gr: edge (u,v) becomes (v,u). The
// construction is a counting sort and runs in O(n+m). Reversing an
// overlay graph produces a plain CSR (the overlay is folded in); the
// versioned store keeps its own symmetric reverse overlay instead of
// calling this per epoch.
func (g *Graph) Reverse() *Graph {
	if g.overlay != nil {
		g = g.Flatten()
	}
	n := g.NumVertices()
	rev := &Graph{
		offsets: make([]int64, n+1),
		targets: make([]VertexID, len(g.targets)),
	}
	// Count in-degrees.
	for _, w := range g.targets {
		rev.offsets[w+1]++
	}
	for v := 0; v < n; v++ {
		rev.offsets[v+1] += rev.offsets[v]
	}
	cursor := make([]int64, n)
	copy(cursor, rev.offsets[:n])
	for v := 0; v < n; v++ {
		for _, w := range g.OutNeighbors(VertexID(v)) {
			rev.targets[cursor[w]] = VertexID(v)
			cursor[w]++
		}
	}
	// Counting sort over sorted source ids yields sorted neighbour lists
	// already, because sources are visited in increasing order.
	return rev
}

// Builder accumulates edges and produces an immutable Graph. The zero
// value is ready to use.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a builder for a graph with at least n vertices.
func NewBuilder(n int) *Builder { return &Builder{n: n} }

// AddEdge records the directed edge (src, dst). Vertex ids beyond the
// initial n grow the graph. Self-loops are silently dropped.
func (b *Builder) AddEdge(src, dst VertexID) {
	if src == dst {
		return
	}
	if int(src) >= b.n {
		b.n = int(src) + 1
	}
	if int(dst) >= b.n {
		b.n = int(dst) + 1
	}
	b.edges = append(b.edges, Edge{src, dst})
}

// AddEdges records a batch of edges.
func (b *Builder) AddEdges(edges []Edge) {
	for _, e := range edges {
		b.AddEdge(e.Src, e.Dst)
	}
}

// NumPendingEdges returns how many edges have been added so far
// (before dedup).
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build sorts, deduplicates and freezes the edges into a CSR Graph.
// The builder may be reused afterwards.
func (b *Builder) Build() *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].Src != b.edges[j].Src {
			return b.edges[i].Src < b.edges[j].Src
		}
		return b.edges[i].Dst < b.edges[j].Dst
	})
	g := &Graph{offsets: make([]int64, b.n+1)}
	g.targets = make([]VertexID, 0, len(b.edges))
	var prev Edge
	first := true
	for _, e := range b.edges {
		if !first && e == prev {
			continue // duplicate edge
		}
		first, prev = false, e
		g.targets = append(g.targets, e.Dst)
		g.offsets[e.Src+1]++
	}
	for v := 0; v < b.n; v++ {
		g.offsets[v+1] += g.offsets[v]
	}
	return g
}

// FromEdges is a convenience constructor building a graph directly from
// an edge slice.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	b.AddEdges(edges)
	return b.Build()
}

// Overlay returns a graph presenting base with the given adjacency rows
// superseding base's rows for the vertices they name, over a vertex
// space of n ≥ base.NumVertices() ids. Each row must be sorted
// ascending, deduplicated, free of self-loops, and contain only ids
// below n — the invariants CSR rows hold (internal/store maintains them
// when merging deltas). The base and the rows are aliased, not copied:
// both must stay immutable for the overlay's lifetime.
func Overlay(base *Graph, n int, rows map[VertexID][]VertexID) *Graph {
	if base.overlay != nil {
		base = base.Flatten()
	}
	if rows == nil {
		rows = map[VertexID][]VertexID{} // nil would read as "no overlay"
	}
	baseN := base.NumVertices()
	if n < baseN {
		n = baseN
	}
	m := base.NumEdges()
	for v, row := range rows {
		if int(v) < baseN {
			m -= base.OutDegree(v)
		}
		m += len(row)
	}
	return &Graph{
		offsets: base.offsets,
		targets: base.targets,
		overlay: rows,
		ovN:     n,
		ovM:     m,
	}
}

// IsOverlay reports whether the graph carries a delta overlay.
func (g *Graph) IsOverlay() bool { return g.overlay != nil }

// Flatten folds an overlay graph into a plain CSR with identical
// vertices and edges — the compaction step of the versioned store. The
// result is byte-identical to building the same edge set from scratch
// (rows are already sorted and deduplicated). Plain graphs return
// themselves.
func (g *Graph) Flatten() *Graph {
	if g.overlay == nil {
		return g
	}
	n := g.NumVertices()
	flat := &Graph{
		offsets: make([]int64, n+1),
		targets: make([]VertexID, 0, g.NumEdges()),
	}
	for v := 0; v < n; v++ {
		nbrs := g.OutNeighbors(VertexID(v))
		flat.targets = append(flat.targets, nbrs...)
		flat.offsets[v+1] = flat.offsets[v] + int64(len(nbrs))
	}
	return flat
}

// Stats summarises a graph in the shape of the paper's Table I.
type Stats struct {
	NumVertices int
	NumEdges    int
	AvgDegree   float64 // davg = m / n
	MaxDegree   int     // dmax, maximum total (in+out) degree
}

// ComputeStats computes Table-I style statistics. dmax is the maximum
// total degree: generators that skew in-degree only (preferential
// attachment targets) would otherwise report a flat dmax.
func ComputeStats(g *Graph) Stats {
	n := g.NumVertices()
	s := Stats{NumVertices: n, NumEdges: g.NumEdges()}
	if n > 0 {
		s.AvgDegree = float64(s.NumEdges) / float64(n)
	}
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] += g.OutDegree(VertexID(v))
		for _, w := range g.OutNeighbors(VertexID(v)) {
			deg[w]++
		}
	}
	for _, d := range deg {
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	return s
}

// String renders the statistics as a single human-readable line.
func (s Stats) String() string {
	return fmt.Sprintf("|V|=%d |E|=%d davg=%.1f dmax=%d",
		s.NumVertices, s.NumEdges, s.AvgDegree, s.MaxDegree)
}

// Validate checks structural invariants of the CSR arrays (and, for
// overlay graphs, of the overlay rows and totals). It is used by tests
// and by loaders that read untrusted input.
func (g *Graph) Validate() error {
	if len(g.offsets) == 0 {
		return fmt.Errorf("graph: missing offset array")
	}
	baseN := len(g.offsets) - 1
	if g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	if g.offsets[baseN] != int64(len(g.targets)) {
		return fmt.Errorf("graph: offsets[n] = %d, want %d", g.offsets[baseN], len(g.targets))
	}
	for v := 0; v < baseN; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
	}
	n := g.NumVertices()
	m := 0
	for v := 0; v < n; v++ {
		nbrs := g.OutNeighbors(VertexID(v))
		m += len(nbrs)
		for i, w := range nbrs {
			if int(w) >= n {
				return fmt.Errorf("graph: edge (%d,%d) out of range n=%d", v, w, n)
			}
			if w == VertexID(v) {
				return fmt.Errorf("graph: self-loop at vertex %d", v)
			}
			if i > 0 && nbrs[i-1] >= w {
				return fmt.Errorf("graph: neighbours of %d not strictly sorted", v)
			}
		}
	}
	if g.overlay != nil {
		if g.ovN < baseN {
			return fmt.Errorf("graph: overlay shrinks vertex space (%d < %d)", g.ovN, baseN)
		}
		if m != g.ovM {
			return fmt.Errorf("graph: overlay edge total %d, want %d", g.ovM, m)
		}
		for v := range g.overlay {
			if int(v) >= n {
				return fmt.Errorf("graph: overlay row for out-of-range vertex %d (n=%d)", v, n)
			}
		}
	}
	return nil
}
