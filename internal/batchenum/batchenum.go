// Package batchenum implements the batch HC-s-t path query engines of
// the paper: BasicEnum (Algorithm 1) — one shared index, then each query
// processed independently with PathEnum — and BatchEnum (Algorithm 4) —
// query clustering, dominating HC-s path query detection, and
// topological-order enumeration with a result cache R that splices
// materialised common sub-paths into consumer searches. The "+" variants
// add PathEnum's optimised search order (cost-balanced budget cut and
// residual-distance neighbour ordering) to either engine.
package batchenum

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/hcindex"
	"repro/internal/msbfs"
	"repro/internal/pathenum"
	"repro/internal/pathjoin"
	"repro/internal/query"
	"repro/internal/sharegraph"
	"repro/internal/timing"
)

// Algorithm selects an engine.
type Algorithm int

// The four engines of the paper's evaluation (§V): Basic/BasicPlus are
// Algorithm 1 with plain/optimised search order, Batch/BatchPlus are
// Algorithm 4 with plain/optimised search order.
const (
	Basic Algorithm = iota
	BasicPlus
	Batch
	BatchPlus
)

// String implements fmt.Stringer with the paper's names.
func (a Algorithm) String() string {
	switch a {
	case Basic:
		return "BasicEnum"
	case BasicPlus:
		return "BasicEnum+"
	case Batch:
		return "BatchEnum"
	case BatchPlus:
		return "BatchEnum+"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Optimized reports whether the engine uses the optimised search order.
func (a Algorithm) Optimized() bool { return a == BasicPlus || a == BatchPlus }

// Shared reports whether the engine shares computation across queries.
func (a Algorithm) Shared() bool { return a == Batch || a == BatchPlus }

// Options configures a run.
type Options struct {
	// Algorithm selects the engine; the zero value is Basic.
	Algorithm Algorithm
	// Gamma is the clustering merge threshold γ of Algorithm 2; zero
	// selects the paper's default of 0.5.
	Gamma float64
	// Detect tunes the sharing detector (BatchEnum engines only).
	Detect sharegraph.Options
	// Provider supplies the per-batch distance index. nil means a fresh
	// cold build per run; a long-lived hcindex.Cache here makes the
	// index phase amortise across batches that repeat endpoints.
	Provider hcindex.Provider
	// Epoch is the graph version this run executes on — the versioned
	// store's snapshot epoch for live graphs, zero for static ones. It
	// scopes the Provider's cache keys so a post-update run can never be
	// served pre-update distance maps.
	Epoch uint64
	// Planner, when non-nil, picks a per-group engine for the sharing
	// algorithms (Batch/BatchPlus): each cluster is dispatched to
	// single-query PathEnum, the Ψ-DFS pipeline, or the parallel-splice
	// variant per its decision, and the observed group cost is fed back
	// to it. nil keeps the fixed behaviour (every group through the
	// sharing pipeline). The Basic engines have no groups and ignore it.
	Planner GroupPlanner
	// BuildWorkers sets the MS-BFS parallelism of the fallback cold
	// builder used when Provider is nil: a positive count runs the
	// index phase on that many goroutines with direction-optimizing
	// push/pull levels, non-positive keeps the sequential reference
	// kernel. Runs with an explicit Provider configure parallelism on
	// the provider itself (hcindex.NewBuilderWorkers/NewCacheWorkers)
	// and ignore this field.
	BuildWorkers int
}

// acquire obtains the batch's index through the configured provider,
// falling back to a one-shot cold builder.
func (o Options) acquire(g, gr *graph.Graph, qs []query.Query) *hcindex.Index {
	p := o.Provider
	if p == nil {
		p = hcindex.NewBuilderWorkers(false, o.BuildWorkers)
	}
	return p.Acquire(g, gr, o.Epoch, qs)
}

func (o Options) gamma() float64 {
	if o.Gamma == 0 {
		return 0.5
	}
	return o.Gamma
}

// Stats reports how a run spent its time and how much sharing it found.
type Stats struct {
	Phases timing.Breakdown
	// NumQueries is the batch size after validation.
	NumQueries int
	// NumGroups is the number of clusters ClusterQuery produced
	// (BatchEnum engines only).
	NumGroups int
	// SharedNodes counts the dominating HC-s path queries detected
	// across both directions of all groups.
	SharedNodes int
	// SharingEdges counts the Ψ reuse edges across both directions.
	SharingEdges int
	// CachedPaths counts partial paths materialised into the cache R.
	CachedPaths int64
	// SplicedPaths counts partial paths obtained by splicing a cached
	// sub-query instead of recursing, the direct measure of reuse.
	SplicedPaths int64
	// IndexHits and IndexMisses count the batch's index probes (two per
	// query: forward and backward) answered from the provider's cache vs
	// built fresh. A cold build is all misses.
	IndexHits, IndexMisses int
	// Truncated counts queries whose result sets were cut short — by a
	// per-query emission limit or by cancellation mid-run. Zero means
	// every emitted result set is complete.
	Truncated int
	// Plan decomposes the run's sharing groups by the engine that
	// processed them, with per-engine wall time. Without a planner every
	// group counts as shared.
	Plan PlanStats
}

// addGroup folds one worker's per-group counters into the batch stats;
// callers hold the run's stats lock. The excluded fields are batch-
// level, set once by the dispatcher rather than summed per group:
// Phases is the run's wall-clock decomposition (per-worker CPU times
// would double-count overlap), NumQueries/NumGroups/IndexHits/
// IndexMisses come from validation, clustering and the index provider,
// and Truncated is read off the run's Control at the end.
//
//hcpath:mergefields Stats -Phases -NumQueries -NumGroups -IndexHits -IndexMisses -Truncated
func (st *Stats) addGroup(local *Stats) {
	st.SharedNodes += local.SharedNodes
	st.SharingEdges += local.SharingEdges
	st.CachedPaths += local.CachedPaths
	st.SplicedPaths += local.SplicedPaths
	st.Plan.Add(local.Plan)
}

// Run enumerates every HC-s-t path of every query in the batch with the
// selected engine, emitting results through sink keyed by query ID.
// Queries are assigned IDs positionally and validated first.
func Run(g, gr *graph.Graph, queries []query.Query, opts Options, sink query.Sink) (*Stats, error) {
	return RunControlled(g, gr, queries, opts, nil, sink)
}

// RunControlled is Run under a query.Control: the enumeration loops
// poll ctrl for cancellation and charge emissions against the
// per-query limit. On cancellation it stops promptly and returns the
// partial stats alongside ctrl's cancellation error — everything
// already emitted through sink is valid (each emitted path is a real
// result; queries the engine did not finish are counted in
// Stats.Truncated). Limit-truncated queries are not an error: the run
// returns nil with Stats.Truncated set, and ctrl.QueryErr
// distinguishes ErrLimitReached from cancellation per query. A nil
// ctrl reproduces Run exactly.
func RunControlled(g, gr *graph.Graph, queries []query.Query, opts Options, ctrl *query.Control, sink query.Sink) (*Stats, error) {
	qs, err := query.Batch(g, queries)
	if err != nil {
		return nil, err
	}
	st := &Stats{NumQueries: len(qs)}
	if len(qs) == 0 {
		return st, nil
	}

	stop := st.Phases.Start(timing.BuildIndex)
	idx := opts.acquire(g, gr, qs)
	stop()
	defer idx.Release()
	st.IndexHits, st.IndexMisses = idx.Hits, idx.Misses

	if !ctrl.Cancelled() {
		if opts.Algorithm.Shared() {
			runBatch(g, gr, qs, idx, opts, ctrl, sink, st)
		} else {
			runBasic(g, gr, qs, idx, opts, ctrl, sink, st)
		}
	}
	st.Truncated = ctrl.NumTruncated()
	if ctrl.Cancelled() {
		return st, ctrl.Err()
	}
	return st, nil
}

// runBasic is Algorithm 1: the index is shared across the batch, the
// enumeration is per query — processGroupSingle over the whole batch.
func runBasic(g, gr *graph.Graph, qs []query.Query, idx *hcindex.Index, opts Options, ctrl *query.Control, sink query.Sink, st *Stats) {
	all := make([]int, len(qs))
	for i := range all {
		all[i] = i
	}
	processGroupSingle(g, gr, qs, idx, all, opts, ctrl, sink, st)
}

// runBatch is Algorithm 4: cluster, detect dominating HC-s path queries
// per group and direction, enumerate Ψ in topological order with the
// cache R, and join the halves of each HC-s-t query.
func runBatch(g, gr *graph.Graph, qs []query.Query, idx *hcindex.Index, opts Options, ctrl *query.Control, sink query.Sink, st *Stats) {
	stop := st.Phases.Start(timing.ClusterQuery)
	cl := cluster.ClusterQueries(idx, qs, opts.gamma())
	stop()
	st.NumGroups = cl.NumGroups()

	for _, group := range cl.Groups {
		if ctrl.Cancelled() {
			return
		}
		runGroup(g, gr, qs, idx, group, planGroup(g, gr, qs, idx, group, opts),
			opts, ctrl, sink, st, nil)
	}
}

// budgets returns the forward/backward hop budgets of query qi, using
// the cost-balanced cut for the optimised engines.
func budgets(qs []query.Query, idx *hcindex.Index, qi int, optimized bool) (fb, bb uint8) {
	q := qs[qi]
	if optimized {
		return pathenum.BalancedCut(q,
			idx.DistMapFor(qi, hcindex.Forward), idx.DistMapFor(qi, hcindex.Backward))
	}
	return q.FwdBudget(), q.BwdBudget()
}

// processGroup runs detection, shared enumeration, and joining for one
// cluster of queries. A non-nil fan parallelises the join phase across
// goroutines (GroupSpliceParallel); detection and Ψ enumeration always
// stay on the calling worker, which owns the result cache.
func processGroup(g, gr *graph.Graph, qs []query.Query, idx *hcindex.Index, group []int, opts Options, ctrl *query.Control, sink query.Sink, st *Stats, fan *joinFanout) {
	optimized := opts.Algorithm.Optimized()

	// Queries whose target is out of hop range have empty results and
	// are excluded from detection (the index answers this for free).
	live := group[:0:0]
	for _, qi := range group {
		if idx.Reachable(qi, qs[qi]) {
			live = append(live, qi)
		} else {
			ctrl.MarkComplete(qs[qi].ID) // provably empty result set
		}
	}
	if len(live) == 0 {
		return
	}

	stop := st.Phases.Start(timing.IdentifySubquery)
	fwdHalves := make([]sharegraph.HalfQuery, len(live))
	bwdHalves := make([]sharegraph.HalfQuery, len(live))
	backHeavy := make([]bool, len(live))
	for i, qi := range live {
		fb, bb := budgets(qs, idx, qi, optimized)
		backHeavy[i] = fb < bb
		fwdHalves[i] = sharegraph.HalfQuery{
			Root: qs[qi].S, Budget: fb, K: qs[qi].K,
			Other: idx.DistMapFor(qi, hcindex.Backward), Query: qi,
		}
		bwdHalves[i] = sharegraph.HalfQuery{
			Root: qs[qi].T, Budget: bb, K: qs[qi].K,
			Other: idx.DistMapFor(qi, hcindex.Forward), Query: qi,
		}
	}
	psiF := sharegraph.Detect(g, fwdHalves, opts.Detect)
	psiB := sharegraph.Detect(gr, bwdHalves, opts.Detect)
	stop()
	st.SharedNodes += psiF.NumShared() + psiB.NumShared()
	st.SharingEdges += psiF.NumEdges() + psiB.NumEdges()

	defer st.Phases.Start(timing.Enumeration)()
	fwdStores := enumerateGraph(g, psiF, len(live), optimized, ctrl, st)
	bwdStores := enumerateGraph(gr, psiB, len(live), optimized, ctrl, st)
	if ctrl.Cancelled() {
		return // partial Ψ stores must not reach the joins
	}
	// Backward halves of similar queries often alias one shared store;
	// the probe-side hash index is built once per distinct store.
	indexes := make(map[*pathjoin.Store]*pathjoin.HashIndex, len(live))
	if fan != nil && len(live) > 1 {
		// Parallel splice: materialise every hash index up front (the
		// index map must not be written concurrently), then fan the
		// per-query joins out. Stores stay alive until the whole group
		// completes — the eager frees below assume a sequential order.
		for i := range live {
			if ctrl.Cancelled() {
				return
			}
			if indexes[bwdStores[i]] == nil {
				indexes[bwdStores[i]] = pathjoin.BuildHashIndex(bwdStores[i])
			}
		}
		fan.joinParallel(live, qs, fwdStores, bwdStores, indexes, backHeavy, ctrl)
		return
	}
	for i, qi := range live {
		if ctrl.Cancelled() {
			return
		}
		q := qs[qi]
		id := q.ID
		h := indexes[bwdStores[i]]
		if h == nil {
			h = pathjoin.BuildHashIndex(bwdStores[i])
			indexes[bwdStores[i]] = h
		}
		pathjoin.JoinHalvesIndexedControlled(fwdStores[i], h, q.K, backHeavy[i], ctrl, id,
			func(p []graph.VertexID) { sink.Emit(id, p) })
		if !ctrl.Cancelled() {
			ctrl.MarkComplete(id)
		}
		// Halves are dead after the join; free them eagerly since path
		// stores dominate the engine's footprint. Aliased stores stay
		// alive through the index map until the group completes.
		fwdStores[i], bwdStores[i] = nil, nil
	}
}

// enumerateGraph materialises every node of Ψ in topological order
// (providers before consumers, Alg. 4 lines 6-10) and returns the stores
// of the first numTerminals nodes — the query halves. Shared-node stores
// are evicted from the cache as soon as their last consumer finishes
// (Alg. 4 lines 14-16).
func enumerateGraph(g *graph.Graph, psi *sharegraph.Graph, numTerminals int, optimized bool, ctrl *query.Control, st *Stats) []*pathjoin.Store {
	cache := make(map[sharegraph.NodeID]*pathjoin.Store, psi.NumNodes())
	pending := make(map[sharegraph.NodeID]int, psi.NumNodes())
	for id := sharegraph.NodeID(0); int(id) < psi.NumNodes(); id++ {
		pending[id] = len(psi.Consumers(id))
	}
	terminals := make([]*pathjoin.Store, numTerminals)
	e := &enumerator{
		g: g, psi: psi, cache: cache, optimized: optimized, ctrl: ctrl, st: st,
		spliceIdx: make(map[sharegraph.NodeID]*spliceIndex),
	}
	for _, id := range psi.TopoOrder() {
		if e.stopped || ctrl.Cancelled() {
			break // callers check ctrl before using the partial stores
		}
		out := pathjoin.NewStore(16, 64)
		e.alias = nil
		e.enumerateNode(id, out)
		if e.alias != nil {
			out = e.alias // root splice: share the provider's store
		} else {
			st.CachedPaths += int64(out.Len())
		}
		cache[id] = out
		if int(id) < numTerminals {
			terminals[id] = out
		}
		for _, prov := range psi.Providers(id) {
			pending[prov]--
			if pending[prov] == 0 && int(prov) >= numTerminals {
				delete(cache, prov) // R.remove(q′)
				delete(e.spliceIdx, prov)
			}
		}
	}
	return terminals
}

// spliceIndex groups a provider store's paths by their end vertex, so a
// consumer can reject a whole group with one memoised bound check
// instead of filtering path by path. minLen is the shortest path length
// (in vertices) within the group — the best case for the bound check.
type spliceIndex struct {
	ends   []graph.VertexID
	minLen []int
	groups [][]int32
}

// buildSpliceIndex indexes store by end vertex.
func buildSpliceIndex(store *pathjoin.Store) *spliceIndex {
	si := &spliceIndex{}
	slot := make(map[graph.VertexID]int, 64)
	for i := 0; i < store.Len(); i++ {
		p := store.Path(i)
		end := p[len(p)-1]
		gi, ok := slot[end]
		if !ok {
			gi = len(si.ends)
			slot[end] = gi
			si.ends = append(si.ends, end)
			si.minLen = append(si.minLen, len(p))
			si.groups = append(si.groups, nil)
		}
		if len(p) < si.minLen[gi] {
			si.minLen[gi] = len(p)
		}
		si.groups[gi] = append(si.groups[gi], int32(i))
	}
	return si
}

// enumerator carries the shared state of one Ψ traversal.
type enumerator struct {
	g         *graph.Graph
	psi       *sharegraph.Graph
	cache     map[sharegraph.NodeID]*pathjoin.Store
	optimized bool
	ctrl      *query.Control
	st        *Stats
	// steps counts DFS expansions across the whole Ψ traversal; every
	// query.PollInterval-th one polls ctrl, and stopped latches the
	// answer so the unwind is branch-cheap.
	steps   int
	stopped bool

	path    []graph.VertexID
	onPath  []bool // dense per-vertex membership; push/pop keeps it clean
	scratch [][]graph.VertexID
	node    *sharegraph.Node
	nodeID  sharegraph.NodeID
	out     *pathjoin.Store
	// alias, when set by enumerateNode, replaces out entirely: the
	// node's results are exactly a provider's cached store.
	alias *pathjoin.Store

	// Per-vertex memo of the node's pruning bound: a DFS expansion to w
	// at prefix length d survives iff d < bound(w), where bound(w) =
	// max over consumer constraints of (slack − dist(w, consumer's
	// other endpoint)). Scanning the constraint union per check would
	// multiply the hottest loop by the union size; the memo pays the
	// scan once per (node, vertex) and generation stamps avoid clearing
	// between nodes.
	memoVal []int16
	memoGen []int32
	gen     int32

	// spliceIdx caches the end-vertex grouping of each provider store,
	// built on first splice and dropped with the cache entry.
	spliceIdx map[sharegraph.NodeID]*spliceIndex
}

// never is the memo value of a vertex no consumer can use.
const never = int16(-1 << 14)

// bound returns the memoised pruning bound of w for the current node.
func (e *enumerator) bound(w graph.VertexID) int16 {
	if e.memoGen[w] == e.gen {
		return e.memoVal[w]
	}
	e.memoGen[w] = e.gen
	b := never
	if e.node.Unbounded {
		b = int16(1) << 14
	} else {
		for _, c := range e.node.Constraints {
			if d := c.Other.Dist(w); d != msbfs.Unreachable {
				if v := c.Slack - int16(d); v > b {
					b = v
				}
			}
		}
	}
	e.memoVal[w] = b
	return b
}

// enumerateNode materialises node id's HC-s path query q_{Root,Budget}
// into out: the pruned DFS of Alg. 4's Search, except that stepping onto
// a provider's root vertex splices the provider's cached paths (lines
// 22-23) instead of recursing.
func (e *enumerator) enumerateNode(id sharegraph.NodeID, out *pathjoin.Store) {
	n := e.psi.Node(id)
	e.node, e.nodeID, e.out = n, id, out
	// A provider rooted at this node's own root covers the entire
	// enumeration (duplicate roots, promoted markers): alias its store
	// outright — copying would cost as much as enumerating, and the
	// surplus of a larger-budget provider is harmless because both the
	// join's unique-split pairing and downstream splices select by
	// length (Lemma 4.1 reuse as pure reference, not recomputation).
	if prov, ok := e.psi.SpliceAt(id, n.Root); ok {
		shared := e.cache[prov]
		e.st.SplicedPaths += int64(shared.Len())
		e.alias = shared
		return
	}
	e.path = append(e.path[:0], n.Root)
	if e.onPath == nil {
		e.onPath = make([]bool, e.g.NumVertices())
		e.memoVal = make([]int16, e.g.NumVertices())
		e.memoGen = make([]int32, e.g.NumVertices())
	}
	e.gen++
	e.onPath[n.Root] = true
	if cap(e.scratch) < int(n.Budget)+1 {
		e.scratch = make([][]graph.VertexID, int(n.Budget)+1)
	}
	e.scratch = e.scratch[:int(n.Budget)+1]
	e.dfs()
	e.onPath[n.Root] = false
}

// dfs extends the current prefix one hop at a time, recording every
// prefix (the join needs results of every length).
func (e *enumerator) dfs() {
	if e.ctrl.Poll(&e.steps, &e.stopped) {
		return
	}
	e.out.Add(e.path)
	depth := len(e.path) - 1
	if depth >= int(e.node.Budget) {
		return
	}
	v := e.path[len(e.path)-1]
	nbrs := e.g.OutNeighbors(v)
	if e.optimized {
		e.scratch[depth] = orderByMinResidual(e.node, nbrs, e.scratch[depth][:0])
		nbrs = e.scratch[depth]
	}
	for _, w := range nbrs {
		if e.stopped {
			return
		}
		if e.onPath[w] {
			continue
		}
		if int16(depth) >= e.bound(w) {
			continue
		}
		if prov, ok := e.psi.SpliceAt(e.nodeID, w); ok {
			e.splice(prov, int(e.node.Budget)-depth-1)
			continue
		}
		e.path = append(e.path, w)
		e.onPath[w] = true
		e.dfs()
		e.onPath[w] = false
		e.path = e.path[:len(e.path)-1]
	}
}

// splice concatenates the current prefix with every cached path of prov
// that fits the remaining budget and stays vertex-disjoint with the
// prefix. Cached paths start at the splice vertex, so the concatenation
// extends the prefix by the whole cached path.
//
// The provider's cache was pruned with the union of all its consumers'
// constraints, so it holds paths only other consumers can complete.
// Re-applying this node's own Lemma 3.1 check on each cached path's end
// vertex filters those out before the copy — without it, a node in a
// moderately-similar group would materialise far more partial paths
// than its own pruned search ever would, inverting the sharing gain.
func (e *enumerator) splice(prov sharegraph.NodeID, remaining int) {
	store := e.cache[prov]
	if store == nil {
		// Guarded against by the topological order; a miss is a bug.
		panic(fmt.Sprintf("batchenum: provider %d not cached", prov))
	}
	si := e.spliceIdx[prov]
	if si == nil {
		si = buildSpliceIndex(store)
		e.spliceIdx[prov] = si
	}
	maxLen := remaining + 1
	prefixLen := len(e.path)
	for gi, end := range si.ends {
		if e.ctrl.Poll(&e.steps, &e.stopped) {
			return
		}
		// Whole-group rejection: if even the group's shortest path ends
		// too deep for this node's bound at its end vertex, none of the
		// longer ones can survive either.
		b := e.bound(end)
		if int16(prefixLen+si.minLen[gi]-2) >= b {
			continue
		}
		if e.onPath[end] {
			continue
		}
	group:
		for _, pi := range si.groups[gi] {
			cp := store.Path(int(pi))
			if len(cp) > maxLen || int16(prefixLen+len(cp)-2) >= b {
				continue
			}
			for _, u := range cp {
				if e.onPath[u] {
					continue group
				}
			}
			e.out.AddConcat(e.path, cp)
			e.st.SplicedPaths++
		}
	}
}

// orderByMinResidual sorts nbrs by ascending minimum residual distance
// over the node's consumers, the "+" expansion order generalised to
// shared nodes. Keys are computed once per neighbour — MinResidual scans
// the node's whole constraint union, far too costly for a comparator —
// then insertion-sorted (neighbour lists at one DFS level are short).
func orderByMinResidual(n *sharegraph.Node, nbrs []graph.VertexID, scratch []graph.VertexID) []graph.VertexID {
	scratch = append(scratch, nbrs...)
	var keyBuf [64]uint8
	keys := keyBuf[:0]
	if len(scratch) > len(keyBuf) {
		keys = make([]uint8, 0, len(scratch))
	}
	for _, w := range scratch {
		keys = append(keys, n.MinResidual(w))
	}
	for i := 1; i < len(scratch); i++ {
		w, key := scratch[i], keys[i]
		j := i - 1
		for j >= 0 && keys[j] > key {
			scratch[j+1], keys[j+1] = scratch[j], keys[j]
			j--
		}
		scratch[j+1], keys[j+1] = w, key
	}
	return scratch
}
