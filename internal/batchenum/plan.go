// Per-group engine selection. The paper's evaluation shows there is no
// single best engine: per-query PathEnum wins on small or
// non-overlapping batches (the detection and Ψ machinery is pure
// overhead when nothing is shared), while the Ψ-DFS sharing pipeline
// wins when Γ-overlap is high. A GroupPlanner threads that crossover
// into the engines: after clustering, each sharing group is dispatched
// to the engine the planner picks for it, and the observed per-group
// cost is fed back so the model can calibrate online. The mechanism
// lives here; the cost-model policy lives in internal/planner.
package batchenum

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/hcindex"
	"repro/internal/pathenum"
	"repro/internal/pathjoin"
	"repro/internal/query"
	"repro/internal/timing"
)

// GroupEngine selects how one sharing group of a batch is processed.
type GroupEngine int

const (
	// GroupAuto defers to the run's Algorithm: the sharing pipeline for
	// the BatchEnum engines. A nil planner behaves as all-GroupAuto.
	GroupAuto GroupEngine = iota
	// GroupSingle processes each query of the group independently with
	// PathEnum over the shared index — no detection, no Ψ graph. The
	// right choice when the group's queries overlap too little for
	// sharing to pay for its fixed costs.
	GroupSingle
	// GroupShared runs the full Ψ-DFS pipeline (detect dominating HC-s
	// path queries, enumerate Ψ in topological order, splice from the
	// result cache) — Algorithm 4's group processing.
	GroupShared
	// GroupSpliceParallel is GroupShared with the per-query join phase
	// fanned out across goroutines: detection and Ψ enumeration stay
	// sequential (they share the result cache), but each member query's
	// half-join is independent once the stores are materialised. Only
	// the parallel engine honours it; the sequential engine processes it
	// as GroupShared (one goroutine may not split a non-concurrency-safe
	// sink).
	GroupSpliceParallel
)

// String implements fmt.Stringer.
func (e GroupEngine) String() string {
	switch e {
	case GroupAuto:
		return "auto"
	case GroupSingle:
		return "single"
	case GroupShared:
		return "shared"
	case GroupSpliceParallel:
		return "splice-parallel"
	}
	return fmt.Sprintf("GroupEngine(%d)", int(e))
}

// GroupPlanner picks the engine for each sharing group of a batch and
// receives the observed cost afterwards. Implementations must be safe
// for concurrent use: the parallel engine plans and observes groups
// from multiple workers. The planner only steers the sharing engines
// (Batch/BatchPlus); the Basic engines have no groups to plan.
type GroupPlanner interface {
	// PlanGroup returns the engine for one sharing group. group holds
	// positions into qs; idx is the batch's acquired distance index.
	PlanGroup(g, gr *graph.Graph, idx *hcindex.Index, qs []query.Query, group []int) GroupEngine
	// ObserveGroup reports the wall-clock cost of a processed group so
	// the planner can calibrate its model online.
	ObserveGroup(e GroupEngine, queries int, nanos int64)
}

// PlanStats aggregates per-engine group counts and wall-clock time of
// one run — the planner's observable output, threaded up through the
// service so operators (and the model itself) can see where batches
// went.
type PlanStats struct {
	// SingleGroups, SharedGroups and SpliceGroups count the groups
	// dispatched to each engine. Without a planner every group of a
	// sharing run counts as SharedGroups.
	SingleGroups, SharedGroups, SpliceGroups int64
	// SingleNanos, SharedNanos and SpliceNanos sum the per-group
	// processing wall time per engine.
	SingleNanos, SharedNanos, SpliceNanos int64
}

// Add accumulates o into p.
func (p *PlanStats) Add(o PlanStats) {
	p.SingleGroups += o.SingleGroups
	p.SharedGroups += o.SharedGroups
	p.SpliceGroups += o.SpliceGroups
	p.SingleNanos += o.SingleNanos
	p.SharedNanos += o.SharedNanos
	p.SpliceNanos += o.SpliceNanos
}

// record books one processed group under its engine.
func (p *PlanStats) record(e GroupEngine, nanos int64) {
	switch e {
	case GroupSingle:
		p.SingleGroups++
		p.SingleNanos += nanos
	case GroupSpliceParallel:
		p.SpliceGroups++
		p.SpliceNanos += nanos
	default:
		p.SharedGroups++
		p.SharedNanos += nanos
	}
}

// planGroup resolves the engine for one group: the planner's answer
// when one is configured, GroupShared otherwise (and for GroupAuto).
func planGroup(g, gr *graph.Graph, qs []query.Query, idx *hcindex.Index, group []int, opts Options) GroupEngine {
	if opts.Planner == nil {
		return GroupShared
	}
	e := opts.Planner.PlanGroup(g, gr, idx, qs, group)
	if e == GroupAuto {
		return GroupShared
	}
	return e
}

// runGroup dispatches one sharing group to its chosen engine, times it,
// books the outcome into st, and feeds the observation back to the
// planner. fan enables the parallel join phase of GroupSpliceParallel;
// a nil fan (the sequential engine) processes it as GroupShared.
func runGroup(g, gr *graph.Graph, qs []query.Query, idx *hcindex.Index, group []int, e GroupEngine, opts Options, ctrl *query.Control, sink query.Sink, st *Stats, fan *joinFanout) {
	if e == GroupSpliceParallel && fan == nil {
		e = GroupShared // sequential engine: no fan-out to run the plan on
	}
	t0 := time.Now()
	switch e {
	case GroupSingle:
		processGroupSingle(g, gr, qs, idx, group, opts, ctrl, sink, st)
	case GroupSpliceParallel:
		processGroup(g, gr, qs, idx, group, opts, ctrl, sink, st, fan)
	default:
		processGroup(g, gr, qs, idx, group, opts, ctrl, sink, st, nil)
	}
	nanos := time.Since(t0).Nanoseconds()
	st.Plan.record(e, nanos)
	if opts.Planner != nil {
		opts.Planner.ObserveGroup(e, len(group), nanos)
	}
}

// processGroupSingle answers every query of the group independently with
// PathEnum over the already-built shared index — runBasic scoped to one
// group. Result sets are identical to the sharing pipeline's: both
// enumerate exactly P(q) per query, they only differ in how much work
// they share getting there.
func processGroupSingle(g, gr *graph.Graph, qs []query.Query, idx *hcindex.Index, group []int, opts Options, ctrl *query.Control, sink query.Sink, st *Stats) {
	defer st.Phases.Start(timing.Enumeration)()
	penum := pathenum.Options{Optimized: opts.Algorithm.Optimized()}
	for _, qi := range group {
		if ctrl.Cancelled() {
			return
		}
		q := qs[qi]
		id := q.ID
		pathenum.EnumerateControlled(g, gr, q,
			idx.DistMapFor(qi, hcindex.Forward), idx.DistMapFor(qi, hcindex.Backward),
			penum, ctrl,
			func(p []graph.VertexID) { sink.Emit(id, p) })
	}
}

// joinFanout carries what the parallel-splice join phase needs to emit
// safely from several goroutines: the run's merge sink (each join
// goroutine buffers privately and drains into it) and a semaphore
// shared by every splice group of the run, so concurrent splice groups
// together never run more CPU-bound join goroutines than the run's
// worker budget — without it, W group workers each fanning out W ways
// would oversubscribe the machine quadratically.
type joinFanout struct {
	ms  *mergeSink
	sem chan struct{}
}

// joinParallel fans the group's per-query joins out across goroutines,
// each gated by the run-wide semaphore. Detection and Ψ enumeration
// have already run on the calling worker; at this point the half
// stores and hash indexes are immutable, each join touches only its
// own query's Control state (single-owner discipline holds per query),
// and emissions go through per-goroutine buffers into the merge sink.
func (fan *joinFanout) joinParallel(live []int, qs []query.Query, fwdStores, bwdStores []*pathjoin.Store, indexes map[*pathjoin.Store]*pathjoin.HashIndex, backHeavy []bool, ctrl *query.Control) {
	var wg sync.WaitGroup
	for i := range live {
		if ctrl.Cancelled() {
			break
		}
		fan.sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-fan.sem }()
			if ctrl.Cancelled() {
				return
			}
			q := qs[live[i]]
			id := q.ID
			buf := &query.BufferSink{}
			pathjoin.JoinHalvesIndexedControlled(fwdStores[i], indexes[bwdStores[i]], q.K, backHeavy[i], ctrl, id,
				func(p []graph.VertexID) {
					buf.Emit(id, p)
					if buf.Vertices() >= flushVertices {
						fan.ms.drain(buf)
					}
				})
			if !ctrl.Cancelled() {
				ctrl.MarkComplete(id)
			}
			fan.ms.drain(buf)
		}(i)
	}
	wg.Wait()
}
