package batchenum

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/query"
	"repro/internal/sharegraph"
	"repro/internal/testgraphs"
)

// resultSet canonicalises per-query results: sorted path strings.
type resultSet map[int][]string

func pathKey(p []graph.VertexID) string {
	return fmt.Sprint(p)
}

func collect(t *testing.T, g, gr *graph.Graph, qs []query.Query, opts Options) (resultSet, *Stats) {
	t.Helper()
	rs := resultSet{}
	st, err := Run(g, gr, qs, opts, query.FuncSink(func(id int, p []graph.VertexID) {
		rs[id] = append(rs[id], pathKey(p))
	}))
	if err != nil {
		t.Fatalf("%v: %v", opts.Algorithm, err)
	}
	for id := range rs {
		sort.Strings(rs[id])
	}
	return rs, st
}

func bruteSet(g *graph.Graph, qs []query.Query) resultSet {
	rs := resultSet{}
	for i, q := range qs {
		q.ID = i
		oracle.Enumerate(g, q, func(p []graph.VertexID) {
			rs[i] = append(rs[i], pathKey(p))
		})
		sort.Strings(rs[i])
	}
	return rs
}

func diffSets(t *testing.T, label string, want, got resultSet, nq int) {
	t.Helper()
	for i := 0; i < nq; i++ {
		w, g := want[i], got[i]
		if len(w) != len(g) {
			t.Errorf("%s: query %d: %d paths, want %d", label, i, len(g), len(w))
			continue
		}
		for j := range w {
			if w[j] != g[j] {
				t.Errorf("%s: query %d: path %d = %s, want %s", label, i, j, g[j], w[j])
				break
			}
		}
	}
}

var allAlgorithms = []Algorithm{Basic, BasicPlus, Batch, BatchPlus}

// paperBatch returns the batch Q of Fig. 1.
func paperBatch() []query.Query {
	var qs []query.Query
	for _, d := range testgraphs.PaperQueries() {
		qs = append(qs, query.Query{S: d[0], T: d[1], K: uint8(d[2])})
	}
	return qs
}

// TestPaperExampleAllEngines checks every engine against the path sets
// the paper states for Fig. 1 (3, 3, 1, 2, 2 paths for q0..q4) and
// against BruteForce.
func TestPaperExampleAllEngines(t *testing.T) {
	g := testgraphs.Paper()
	gr := g.Reverse()
	qs := paperBatch()
	want := bruteSet(g, qs)
	wantCounts := []int{3, 3, 1, 2, 2}
	for i, w := range wantCounts {
		if len(want[i]) != w {
			t.Fatalf("brute force disagrees with the paper: q%d has %d paths, want %d", i, len(want[i]), w)
		}
	}
	for _, alg := range allAlgorithms {
		got, _ := collect(t, g, gr, qs, Options{Algorithm: alg})
		diffSets(t, alg.String(), want, got, len(qs))
	}
}

// TestBatchEnumDetectsPaperSharing asserts the engine actually shares on
// the paper batch: shared nodes detected and splices performed.
func TestBatchEnumDetectsPaperSharing(t *testing.T) {
	g := testgraphs.Paper()
	gr := g.Reverse()
	_, st := collect(t, g, gr, paperBatch(), Options{Algorithm: Batch, Gamma: 0.8})
	if st.NumGroups != 2 {
		t.Errorf("NumGroups = %d, want 2 ({q0,q1,q2} and {q3,q4}, Example 4.1)", st.NumGroups)
	}
	if st.SharedNodes == 0 {
		t.Error("no dominating HC-s path queries detected on the paper batch")
	}
	if st.SplicedPaths == 0 {
		t.Error("no cached results spliced on the paper batch")
	}
}

// TestEnginesEquivalentRandom is the central property test: on random
// graphs with random batches, every engine and every γ produces exactly
// the brute-force result set for every query.
func TestEnginesEquivalentRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gammas := []float64{0.1, 0.5, 0.9, 1.0}
	for trial := 0; trial < 40; trial++ {
		n := 10 + rng.Intn(25)
		davg := 1.5 + rng.Float64()*2.5
		g := graph.GenRandom(n, davg, int64(1000+trial))
		gr := g.Reverse()
		numQ := 1 + rng.Intn(8)
		qs := make([]query.Query, 0, numQ)
		for len(qs) < numQ {
			s := graph.VertexID(rng.Intn(n))
			tt := graph.VertexID(rng.Intn(n))
			if s == tt {
				continue
			}
			qs = append(qs, query.Query{S: s, T: tt, K: uint8(1 + rng.Intn(6))})
		}
		want := bruteSet(g, qs)
		for _, alg := range allAlgorithms {
			opts := Options{Algorithm: alg, Gamma: gammas[trial%len(gammas)]}
			got, _ := collect(t, g, gr, qs, opts)
			diffSets(t, fmt.Sprintf("trial %d %v γ=%.1f", trial, alg, opts.Gamma), want, got, len(qs))
			if t.Failed() {
				t.Fatalf("stopping at first failing trial (n=%d davg=%.1f qs=%v)", n, davg, qs)
			}
		}
	}
}

// TestEnginesEquivalentPowerLaw repeats the equivalence property on
// skewed-degree graphs, where sharing and pruning behave differently.
func TestEnginesEquivalentPowerLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 15; trial++ {
		g := graph.GenPowerLaw(30+rng.Intn(40), 2, int64(trial))
		gr := g.Reverse()
		var qs []query.Query
		for len(qs) < 6 {
			s := graph.VertexID(rng.Intn(g.NumVertices()))
			tt := graph.VertexID(rng.Intn(g.NumVertices()))
			if s == tt {
				continue
			}
			qs = append(qs, query.Query{S: s, T: tt, K: uint8(2 + rng.Intn(4))})
		}
		want := bruteSet(g, qs)
		for _, alg := range []Algorithm{Batch, BatchPlus} {
			got, _ := collect(t, g, gr, qs, Options{Algorithm: alg})
			diffSets(t, fmt.Sprintf("powerlaw trial %d %v", trial, alg), want, got, len(qs))
			if t.Failed() {
				t.FailNow()
			}
		}
	}
}

// TestDuplicateQueries: identical queries in one batch each get their
// own complete result set.
func TestDuplicateQueries(t *testing.T) {
	g := testgraphs.Paper()
	gr := g.Reverse()
	qs := []query.Query{
		{S: 0, T: 11, K: 5},
		{S: 0, T: 11, K: 5},
		{S: 0, T: 11, K: 5},
	}
	for _, alg := range allAlgorithms {
		got, _ := collect(t, g, gr, qs, Options{Algorithm: alg})
		for i := 0; i < 3; i++ {
			if len(got[i]) != 3 {
				t.Errorf("%v: duplicate query %d returned %d paths, want 3", alg, i, len(got[i]))
			}
		}
	}
}

// TestSameSourceDifferentK: the same-vertex different-budget sharing of
// Fig. 5(b) must truncate, not leak longer paths into the smaller query.
func TestSameSourceDifferentK(t *testing.T) {
	g := testgraphs.Paper()
	gr := g.Reverse()
	qs := []query.Query{
		{S: 0, T: 11, K: 5},
		{S: 0, T: 11, K: 3}, // no results: shortest v0→v11 path has 5 hops
		{S: 4, T: 14, K: 4},
		{S: 4, T: 14, K: 2}, // shorter budget than q2's
	}
	want := bruteSet(g, qs)
	for _, alg := range allAlgorithms {
		got, _ := collect(t, g, gr, qs, Options{Algorithm: alg, Gamma: 0.1})
		diffSets(t, alg.String(), want, got, len(qs))
	}
}

// TestUnreachableQuery returns an empty set without touching the sink.
func TestUnreachableQuery(t *testing.T) {
	g := testgraphs.Line(5) // 0→1→2→3→4
	gr := g.Reverse()
	qs := []query.Query{
		{S: 4, T: 0, K: 7}, // against the line's direction
		{S: 0, T: 4, K: 2}, // too few hops
		{S: 0, T: 4, K: 4}, // exactly enough: one path
	}
	for _, alg := range allAlgorithms {
		got, _ := collect(t, g, gr, qs, Options{Algorithm: alg})
		if len(got[0]) != 0 || len(got[1]) != 0 {
			t.Errorf("%v: unreachable queries returned %d and %d paths", alg, len(got[0]), len(got[1]))
		}
		if len(got[2]) != 1 {
			t.Errorf("%v: line query returned %d paths, want 1", alg, len(got[2]))
		}
	}
}

// TestHopConstraintOne exercises the k=1 special case (Alg. 1's line 11
// remark): only the direct edge, if present.
func TestHopConstraintOne(t *testing.T) {
	g := testgraphs.Diamond()
	gr := g.Reverse()
	qs := []query.Query{
		{S: 0, T: 3, K: 1}, // direct edge 0→3 exists
		{S: 1, T: 2, K: 1}, // no direct edge
	}
	for _, alg := range allAlgorithms {
		got, _ := collect(t, g, gr, qs, Options{Algorithm: alg})
		if len(got[0]) != 1 || len(got[1]) != 0 {
			t.Errorf("%v: k=1 results %d/%d, want 1/0", alg, len(got[0]), len(got[1]))
		}
	}
}

// TestInvalidQueriesRejected: validation errors propagate.
func TestInvalidQueriesRejected(t *testing.T) {
	g := testgraphs.Diamond()
	gr := g.Reverse()
	bad := [][]query.Query{
		{{S: 0, T: 0, K: 3}},  // s == t
		{{S: 0, T: 99, K: 3}}, // t out of range
		{{S: 99, T: 0, K: 3}}, // s out of range
		{{S: 0, T: 3, K: 0}},  // k == 0
	}
	for i, qs := range bad {
		if _, err := Run(g, gr, qs, Options{}, query.NewCountSink(len(qs))); err == nil {
			t.Errorf("case %d: invalid batch accepted", i)
		}
	}
}

// TestEmptyBatch is a no-op returning zeroed stats.
func TestEmptyBatch(t *testing.T) {
	g := testgraphs.Diamond()
	gr := g.Reverse()
	st, err := Run(g, gr, nil, Options{Algorithm: BatchPlus}, query.NewCountSink(0))
	if err != nil || st.NumQueries != 0 {
		t.Fatalf("empty batch: st=%+v err=%v", st, err)
	}
}

// TestDisableSharingAblation: BatchEnum with sharing disabled equals
// BasicEnum's results (and performs no splices).
func TestDisableSharingAblation(t *testing.T) {
	g := testgraphs.Paper()
	gr := g.Reverse()
	qs := paperBatch()
	want := bruteSet(g, qs)
	got, st := collect(t, g, gr, qs, Options{
		Algorithm: Batch,
		Detect:    sharegraph.Options{DisableSharing: true},
	})
	diffSets(t, "no-sharing", want, got, len(qs))
	if st.SharedNodes != 0 || st.SplicedPaths != 0 {
		t.Errorf("sharing disabled but SharedNodes=%d SplicedPaths=%d", st.SharedNodes, st.SplicedPaths)
	}
}

// TestGammaSweepEquivalence: γ changes grouping, never results.
func TestGammaSweepEquivalence(t *testing.T) {
	g := graph.GenCommunity(60, 3, 3, 0.9, 5)
	gr := g.Reverse()
	rng := rand.New(rand.NewSource(11))
	var qs []query.Query
	for len(qs) < 10 {
		s := graph.VertexID(rng.Intn(60))
		tt := graph.VertexID(rng.Intn(60))
		if s == tt {
			continue
		}
		qs = append(qs, query.Query{S: s, T: tt, K: uint8(3 + rng.Intn(3))})
	}
	want := bruteSet(g, qs)
	for _, gamma := range []float64{0.05, 0.2, 0.4, 0.6, 0.8, 0.99} {
		got, _ := collect(t, g, gr, qs, Options{Algorithm: BatchPlus, Gamma: gamma})
		diffSets(t, fmt.Sprintf("γ=%.2f", gamma), want, got, len(qs))
	}
}

// TestCountSinkTotals: counting matches collecting.
func TestCountSinkTotals(t *testing.T) {
	g := testgraphs.Paper()
	gr := g.Reverse()
	qs := paperBatch()
	cs := query.NewCountSink(len(qs))
	if _, err := Run(g, gr, qs, Options{Algorithm: BatchPlus}, cs); err != nil {
		t.Fatal(err)
	}
	want := []int64{3, 3, 1, 2, 2}
	for i, w := range want {
		if cs.Counts[i] != w {
			t.Errorf("query %d: count %d, want %d", i, cs.Counts[i], w)
		}
	}
	if cs.Total() != 11 {
		t.Errorf("total = %d, want 11", cs.Total())
	}
}

// TestStatsPopulated: the phase breakdown and sharing counters are
// filled in for the batch engines.
func TestStatsPopulated(t *testing.T) {
	g := testgraphs.Paper()
	gr := g.Reverse()
	_, st := collect(t, g, gr, paperBatch(), Options{Algorithm: Batch, Gamma: 0.8})
	if st.Phases.Total() <= 0 {
		t.Error("phase breakdown empty")
	}
	if st.CachedPaths == 0 {
		t.Error("no paths materialised into the cache")
	}
	if st.NumQueries != 5 {
		t.Errorf("NumQueries = %d, want 5", st.NumQueries)
	}
}

// TestAlgorithmString covers the Stringer.
func TestAlgorithmString(t *testing.T) {
	want := map[Algorithm]string{
		Basic: "BasicEnum", BasicPlus: "BasicEnum+",
		Batch: "BatchEnum", BatchPlus: "BatchEnum+",
		Algorithm(9): "Algorithm(9)",
	}
	for a, w := range want {
		if a.String() != w {
			t.Errorf("%d.String() = %s, want %s", int(a), a.String(), w)
		}
	}
	if !BatchPlus.Optimized() || Basic.Optimized() {
		t.Error("Optimized flags wrong")
	}
	if !Batch.Shared() || BasicPlus.Shared() {
		t.Error("Shared flags wrong")
	}
}

// TestLongChainBatch exercises deep budgets: k up to 8 on a cycle where
// exactly one simple path exists per (s, t).
func TestLongChainBatch(t *testing.T) {
	g := testgraphs.Cycle(9)
	gr := g.Reverse()
	var qs []query.Query
	for d := 1; d <= 8; d++ {
		qs = append(qs, query.Query{S: 0, T: graph.VertexID(d), K: 8})
	}
	for _, alg := range allAlgorithms {
		got, _ := collect(t, g, gr, qs, Options{Algorithm: alg, Gamma: 0.3})
		for i := range qs {
			if len(got[i]) != 1 {
				t.Errorf("%v: cycle query %d returned %d paths, want 1", alg, i, len(got[i]))
			}
		}
	}
}

// TestCompleteDAGCounts validates against the closed-form path counts of
// the complete DAG: paths 0→n-1 with ≤ k hops = Σ_{h=1..k} C(n-2, h-1).
func TestCompleteDAGCounts(t *testing.T) {
	n := 8
	g := testgraphs.CompleteDAG(n)
	gr := g.Reverse()
	binom := func(n, k int) int64 {
		if k < 0 || k > n {
			return 0
		}
		r := int64(1)
		for i := 0; i < k; i++ {
			r = r * int64(n-i) / int64(i+1)
		}
		return r
	}
	var qs []query.Query
	for k := 1; k <= n-1; k++ {
		qs = append(qs, query.Query{S: 0, T: graph.VertexID(n - 1), K: uint8(k)})
	}
	for _, alg := range allAlgorithms {
		cs := query.NewCountSink(len(qs))
		if _, err := Run(g, gr, qs, Options{Algorithm: alg}, cs); err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			var want int64
			for h := 1; h <= int(q.K); h++ {
				want += binom(n-2, h-1)
			}
			if cs.Counts[i] != want {
				t.Errorf("%v: k=%d count %d, want %d", alg, q.K, cs.Counts[i], want)
			}
		}
	}
}

// TestQuickEquivalence drives the engine equivalence property through
// testing/quick: arbitrary (seed, size, batch shape) tuples must yield
// brute-force-identical result sets for the headline engine.
func TestQuickEquivalence(t *testing.T) {
	prop := func(seed int64, nRaw, qRaw uint8, gammaRaw uint8) bool {
		n := 8 + int(nRaw%24)
		numQ := 1 + int(qRaw%6)
		gamma := 0.05 + float64(gammaRaw%10)/10
		g := graph.GenRandom(n, 2.2, seed)
		gr := g.Reverse()
		rng := rand.New(rand.NewSource(seed + 1))
		var qs []query.Query
		for len(qs) < numQ {
			s := graph.VertexID(rng.Intn(n))
			tt := graph.VertexID(rng.Intn(n))
			if s == tt {
				continue
			}
			qs = append(qs, query.Query{S: s, T: tt, K: uint8(1 + rng.Intn(5))})
		}
		want := bruteSet(g, qs)
		got := resultSet{}
		_, err := Run(g, gr, qs, Options{Algorithm: BatchPlus, Gamma: gamma},
			query.FuncSink(func(id int, p []graph.VertexID) {
				got[id] = append(got[id], pathKey(p))
			}))
		if err != nil {
			return false
		}
		for id := range got {
			sort.Strings(got[id])
		}
		for i := range qs {
			if len(want[i]) != len(got[i]) {
				return false
			}
			for j := range want[i] {
				if want[i][j] != got[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMultiConsumerSharing crafts a batch whose forward halves all pass
// through one hub, so a single dominating HC-s path query serves many
// consumers; asserts results stay exact and the cache is actually hit
// once per consumer arrival.
func TestMultiConsumerSharing(t *testing.T) {
	// Star-of-chains into a hub, then a small DAG behind it: every
	// query is (leaf_i → sink) and shares the hub's continuation.
	b := graphBuilderStar()
	g := b
	gr := g.Reverse()
	var qs []query.Query
	for leaf := graph.VertexID(0); leaf < 6; leaf++ {
		qs = append(qs, query.Query{S: leaf, T: 13, K: 5})
	}
	want := bruteSet(g, qs)
	rs := resultSet{}
	st, err := Run(g, gr, qs, Options{Algorithm: Batch, Gamma: 0.1},
		query.FuncSink(func(id int, p []graph.VertexID) {
			rs[id] = append(rs[id], pathKey(p))
		}))
	if err != nil {
		t.Fatal(err)
	}
	for id := range rs {
		sort.Strings(rs[id])
	}
	diffSets(t, "star", want, rs, len(qs))
	if st.SharedNodes == 0 {
		t.Error("hub continuation not detected as a dominating HC-s path query")
	}
	if st.SplicedPaths == 0 {
		t.Error("no splices on a hub-shared batch")
	}
}

// graphBuilderStar: leaves 0..5 → hub 6 → {7,8} → {9,10,11} → 12 → 13.
func graphBuilderStar() *graph.Graph {
	var edges []graph.Edge
	for leaf := graph.VertexID(0); leaf < 6; leaf++ {
		edges = append(edges, graph.Edge{Src: leaf, Dst: 6})
	}
	edges = append(edges,
		graph.Edge{Src: 6, Dst: 7}, graph.Edge{Src: 6, Dst: 8},
		graph.Edge{Src: 7, Dst: 9}, graph.Edge{Src: 7, Dst: 10},
		graph.Edge{Src: 8, Dst: 10}, graph.Edge{Src: 8, Dst: 11},
		graph.Edge{Src: 9, Dst: 12}, graph.Edge{Src: 10, Dst: 12}, graph.Edge{Src: 11, Dst: 12},
		graph.Edge{Src: 12, Dst: 13},
	)
	return graph.FromEdges(14, edges)
}
