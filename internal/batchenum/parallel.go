// Parallel execution of the batch engines. The paper's introduction
// names "deploy more servers to process these queries in parallel" as
// the strategy batch sharing competes with; RunParallel realises the
// single-machine version of it so the comparison can be measured: the
// independent engines parallelise over queries, the sharing engines over
// clustered groups (groups share nothing with each other by
// construction, so they are embarrassingly parallel).
package batchenum

import (
	"runtime"
	"sync"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/hcindex"
	"repro/internal/pathenum"
	"repro/internal/query"
	"repro/internal/timing"
)

// ParallelOptions extends Options with a worker count.
type ParallelOptions struct {
	Options
	// Workers is the number of goroutines; zero means GOMAXPROCS.
	Workers int
}

func (o ParallelOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// lockedSink serialises emissions from concurrent workers. Enumeration
// dominates emission by orders of magnitude for non-trivial workloads,
// so one mutex is cheaper than per-worker buffering of exponentially
// many paths.
type lockedSink struct {
	mu   sync.Mutex
	sink query.Sink
}

// Emit implements query.Sink.
func (l *lockedSink) Emit(id int, p []graph.VertexID) {
	l.mu.Lock()
	l.sink.Emit(id, p)
	l.mu.Unlock()
}

// RunParallel enumerates the batch with opts.Workers goroutines. Result
// sets are identical to Run's; only the interleaving of Emit calls
// differs, so order-sensitive sinks must sort or key by query ID.
func RunParallel(g, gr *graph.Graph, queries []query.Query, opts ParallelOptions, sink query.Sink) (*Stats, error) {
	qs, err := query.Batch(g, queries)
	if err != nil {
		return nil, err
	}
	st := &Stats{NumQueries: len(qs)}
	if len(qs) == 0 {
		return st, nil
	}
	ls := &lockedSink{sink: sink}

	stop := st.Phases.Start(timing.BuildIndex)
	idx := hcindex.Build(g, gr, qs)
	stop()

	if opts.Algorithm.Shared() {
		parallelBatch(g, gr, qs, idx, opts, ls, st)
	} else {
		parallelBasic(g, gr, qs, idx, opts, ls, st)
	}
	return st, nil
}

// parallelBasic fans individual queries out to the worker pool.
func parallelBasic(g, gr *graph.Graph, qs []query.Query, idx *hcindex.Index, opts ParallelOptions, sink query.Sink, st *Stats) {
	defer st.Phases.Start(timing.Enumeration)()
	penum := pathenum.Options{Optimized: opts.Algorithm.Optimized()}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opts.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				q := qs[i]
				id := q.ID
				pathenum.Enumerate(g, gr, q,
					idx.DistMapFor(i, hcindex.Forward), idx.DistMapFor(i, hcindex.Backward),
					penum,
					func(p []graph.VertexID) { sink.Emit(id, p) })
			}
		}()
	}
	for i := range qs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// parallelBatch fans clustered groups out to the worker pool; each group
// runs the full detect–enumerate–join pipeline independently. Group
// stats are accumulated under a lock.
func parallelBatch(g, gr *graph.Graph, qs []query.Query, idx *hcindex.Index, opts ParallelOptions, sink query.Sink, st *Stats) {
	stop := st.Phases.Start(timing.ClusterQuery)
	cl := cluster.ClusterQueries(idx, qs, opts.gamma())
	stop()
	st.NumGroups = cl.NumGroups()

	defer st.Phases.Start(timing.Enumeration)()
	jobs := make(chan []int)
	var wg sync.WaitGroup
	var statsMu sync.Mutex
	for w := 0; w < opts.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for group := range jobs {
				local := &Stats{}
				processGroup(g, gr, qs, idx, group, opts.Options, sink, local)
				statsMu.Lock()
				st.SharedNodes += local.SharedNodes
				st.SharingEdges += local.SharingEdges
				st.CachedPaths += local.CachedPaths
				st.SplicedPaths += local.SplicedPaths
				statsMu.Unlock()
			}
		}()
	}
	for _, group := range cl.Groups {
		jobs <- group
	}
	close(jobs)
	wg.Wait()
}
