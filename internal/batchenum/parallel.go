// Parallel execution of the batch engines. The paper's introduction
// names "deploy more servers to process these queries in parallel" as
// the strategy batch sharing competes with; RunParallel realises the
// single-machine version of it so the comparison can be measured: the
// independent engines parallelise over queries, the sharing engines over
// clustered groups (groups share nothing with each other by
// construction, so they are embarrassingly parallel).
package batchenum

import (
	"runtime"
	"sync"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/hcindex"
	"repro/internal/pathenum"
	"repro/internal/query"
	"repro/internal/timing"
)

// ParallelOptions extends Options with a worker count.
type ParallelOptions struct {
	Options
	// Workers is the number of goroutines; zero or negative means
	// GOMAXPROCS. (The public hcpath layer reserves zero for "run the
	// sequential engine" and only calls RunParallel with a concrete or
	// negative count.)
	Workers int
}

func (o ParallelOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// flushVertices is the per-worker buffering threshold: a worker hands
// its buffered results downstream once the arena holds this many path
// vertices, bounding memory at O(workers · flushVertices) while keeping
// lock acquisitions orders of magnitude rarer than emissions.
const flushVertices = 1 << 15

// mergeSink serialises flushes — not emissions — from concurrent
// workers. Each worker buffers results in its own query.BufferSink and
// merges at job boundaries or when the buffer fills, so the hot
// enumeration loop never contends on a mutex the way a naive
// lock-per-Emit wrapper would.
type mergeSink struct {
	mu   sync.Mutex
	sink query.Sink
}

// drain replays buf into the shared sink under the merge lock.
func (m *mergeSink) drain(buf *query.BufferSink) {
	if buf.Len() == 0 {
		return
	}
	m.mu.Lock()
	buf.FlushTo(m.sink)
	m.mu.Unlock()
}

// RunParallel enumerates the batch with opts.Workers goroutines. Result
// sets are identical to Run's; only the interleaving of Emit calls
// differs, so order-sensitive sinks must sort or key by query ID.
func RunParallel(g, gr *graph.Graph, queries []query.Query, opts ParallelOptions, sink query.Sink) (*Stats, error) {
	return RunParallelControlled(g, gr, queries, opts, nil, sink)
}

// RunParallelControlled is RunParallel under a query.Control, with
// RunControlled's semantics: every worker polls the shared ctrl inside
// its enumeration loops, so cancellation stops the sibling workers of
// every sharing group promptly — the dispatcher stops feeding jobs and
// workers drain the remainder without touching them. Per-query limits
// are safe because each query (or whole sharing group) is owned by one
// worker. A nil ctrl reproduces RunParallel exactly.
func RunParallelControlled(g, gr *graph.Graph, queries []query.Query, opts ParallelOptions, ctrl *query.Control, sink query.Sink) (*Stats, error) {
	qs, err := query.Batch(g, queries)
	if err != nil {
		return nil, err
	}
	st := &Stats{NumQueries: len(qs)}
	if len(qs) == 0 {
		return st, nil
	}
	ms := &mergeSink{sink: sink}

	stop := st.Phases.Start(timing.BuildIndex)
	idx := opts.acquire(g, gr, qs)
	stop()
	defer idx.Release()
	st.IndexHits, st.IndexMisses = idx.Hits, idx.Misses

	if !ctrl.Cancelled() {
		if opts.Algorithm.Shared() {
			parallelBatch(g, gr, qs, idx, opts, ctrl, ms, st)
		} else {
			parallelBasic(g, gr, qs, idx, opts, ctrl, ms, st)
		}
	}
	st.Truncated = ctrl.NumTruncated()
	if ctrl.Cancelled() {
		return st, ctrl.Err()
	}
	return st, nil
}

// parallelBasic fans individual queries out to the worker pool.
func parallelBasic(g, gr *graph.Graph, qs []query.Query, idx *hcindex.Index, opts ParallelOptions, ctrl *query.Control, ms *mergeSink, st *Stats) {
	defer st.Phases.Start(timing.Enumeration)()
	penum := pathenum.Options{Optimized: opts.Algorithm.Optimized()}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opts.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := &query.BufferSink{}
			for i := range jobs {
				if ctrl.Cancelled() {
					continue // drain so the dispatcher can finish
				}
				q := qs[i]
				id := q.ID
				pathenum.EnumerateControlled(g, gr, q,
					idx.DistMapFor(i, hcindex.Forward), idx.DistMapFor(i, hcindex.Backward),
					penum, ctrl,
					func(p []graph.VertexID) {
						buf.Emit(id, p)
						if buf.Vertices() >= flushVertices {
							ms.drain(buf)
						}
					})
				ms.drain(buf)
			}
		}()
	}
	for i := range qs {
		if ctrl.Cancelled() {
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// parallelBatch fans clustered groups out to the worker pool; each group
// runs the full detect–enumerate–join pipeline independently. Group
// stats are accumulated under a lock.
func parallelBatch(g, gr *graph.Graph, qs []query.Query, idx *hcindex.Index, opts ParallelOptions, ctrl *query.Control, ms *mergeSink, st *Stats) {
	stop := st.Phases.Start(timing.ClusterQuery)
	cl := cluster.ClusterQueries(idx, qs, opts.gamma())
	stop()
	st.NumGroups = cl.NumGroups()

	defer st.Phases.Start(timing.Enumeration)()
	jobs := make(chan []int)
	var wg sync.WaitGroup
	var statsMu sync.Mutex
	// One join budget for the whole run: splice groups borrow from it
	// instead of each spawning a private worker pool.
	joinSem := make(chan struct{}, opts.workers())
	for w := 0; w < opts.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := &query.BufferSink{}
			sink := query.FuncSink(func(id int, p []graph.VertexID) {
				buf.Emit(id, p)
				if buf.Vertices() >= flushVertices {
					ms.drain(buf)
				}
			})
			for group := range jobs {
				if ctrl.Cancelled() {
					continue // drain so the dispatcher can finish
				}
				local := &Stats{}
				e := planGroup(g, gr, qs, idx, group, opts.Options)
				var fan *joinFanout
				if e == GroupSpliceParallel {
					fan = &joinFanout{ms: ms, sem: joinSem}
				}
				runGroup(g, gr, qs, idx, group, e, opts.Options, ctrl, sink, local, fan)
				ms.drain(buf)
				statsMu.Lock()
				st.addGroup(local)
				statsMu.Unlock()
			}
		}()
	}
	for _, group := range cl.Groups {
		if ctrl.Cancelled() {
			break
		}
		jobs <- group
	}
	close(jobs)
	wg.Wait()
}
