package batchenum

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/sharegraph"
	"repro/internal/workload"
)

// benchSetup caches one graph and a high-similarity workload: the
// regime where sharing matters.
type benchSetup struct {
	g, gr *graph.Graph
	qs    []query.Query
}

var setup *benchSetup

func getSetup(b *testing.B) *benchSetup {
	b.Helper()
	if setup == nil {
		g := graph.GenCommunityPowerLaw(5000, 120, 6, 0.975, 42)
		gr := g.Reverse()
		qs, _, err := workload.WithSimilarity(g, gr, workload.SimilarityConfig{
			Config:   workload.Config{N: 40, KMin: 5, KMax: 7, Seed: 7},
			TargetMu: 0.9,
		})
		if err != nil {
			b.Fatal(err)
		}
		setup = &benchSetup{g: g, gr: gr, qs: qs}
	}
	return setup
}

func benchRun(b *testing.B, opts Options) {
	s := getSetup(b)
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		sink := query.NewCountSink(len(s.qs))
		if _, err := Run(s.g, s.gr, s.qs, opts, sink); err != nil {
			b.Fatal(err)
		}
		total = sink.Total()
	}
	b.ReportMetric(float64(total), "paths")
}

// The four engines of the evaluation on one workload.
func BenchmarkBasicEnum(b *testing.B) { benchRun(b, Options{Algorithm: Basic}) }
func BenchmarkBasicPlus(b *testing.B) { benchRun(b, Options{Algorithm: BasicPlus}) }
func BenchmarkBatchEnum(b *testing.B) { benchRun(b, Options{Algorithm: Batch}) }
func BenchmarkBatchPlus(b *testing.B) { benchRun(b, Options{Algorithm: BatchPlus}) }

// BenchmarkBatchPlusNoSharing isolates the gain of dominating HC-s path
// query reuse: identical engine, detection disabled.
func BenchmarkBatchPlusNoSharing(b *testing.B) {
	benchRun(b, Options{Algorithm: BatchPlus, Detect: sharegraph.Options{DisableSharing: true}})
}

// BenchmarkGammaSweep quantifies the clustering threshold's cost: γ=1
// never merges (pure overhead), γ=0.1 merges aggressively.
func BenchmarkGammaSweep(b *testing.B) {
	for _, gamma := range []float64{0.1, 0.5, 1.0} {
		b.Run(formatGamma(gamma), func(b *testing.B) {
			benchRun(b, Options{Algorithm: BatchPlus, Gamma: gamma})
		})
	}
}

func formatGamma(g float64) string {
	switch g {
	case 0.1:
		return "gamma=0.1"
	case 0.5:
		return "gamma=0.5"
	default:
		return "gamma=1.0"
	}
}

// dupSetup caches the duplicate-batch fixture: one result-heavy query
// repeated 60 times, the cleanest sharing case (Lemma 4.2 with equal
// halves). The gap between the two engines here is bounded by the join:
// both must emit every output path, so sharing can only remove the
// enumeration share of the per-query cost.
var dupSetup *benchSetup

func getDupSetup(b *testing.B) *benchSetup {
	b.Helper()
	if dupSetup == nil {
		g := graph.GenCommunityPowerLaw(6000, 150, 10, 0.99, 17)
		gr := g.Reverse()
		cands, err := workload.Random(g, workload.Config{N: 20, KMin: 6, KMax: 6, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		var best query.Query
		var bestN int64
		for _, q := range cands {
			sink := query.NewCountSink(1)
			if _, err := Run(g, gr, []query.Query{q}, Options{Algorithm: Basic}, sink); err != nil {
				b.Fatal(err)
			}
			if sink.Total() > bestN {
				bestN, best = sink.Total(), q
			}
		}
		qs := make([]query.Query, 60)
		for i := range qs {
			qs[i] = best
		}
		dupSetup = &benchSetup{g: g, gr: gr, qs: qs}
	}
	return dupSetup
}

// BenchmarkDuplicateBatch compares the engines on a batch of identical
// queries — the upper bound of computation sharing.
func BenchmarkDuplicateBatch(b *testing.B) {
	s := getDupSetup(b)
	for _, alg := range []Algorithm{Basic, BatchPlus} {
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink := query.NewCountSink(len(s.qs))
				if _, err := Run(s.g, s.gr, s.qs, Options{Algorithm: alg}, sink); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
