package batchenum

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/testgraphs"
)

func collectParallel(t *testing.T, g, gr *graph.Graph, qs []query.Query, opts ParallelOptions) resultSet {
	t.Helper()
	rs := resultSet{}
	var st *Stats
	st, err := RunParallel(g, gr, qs, opts, query.FuncSink(func(id int, p []graph.VertexID) {
		rs[id] = append(rs[id], pathKey(p))
	}))
	if err != nil {
		t.Fatal(err)
	}
	if st.NumQueries != len(qs) {
		t.Fatalf("stats report %d queries, want %d", st.NumQueries, len(qs))
	}
	for id := range rs {
		sort.Strings(rs[id])
	}
	return rs
}

// TestParallelMatchesSequential: every engine, several worker counts,
// identical result sets.
func TestParallelMatchesSequential(t *testing.T) {
	g := testgraphs.Paper()
	gr := g.Reverse()
	var qs []query.Query
	for _, d := range testgraphs.PaperQueries() {
		qs = append(qs, query.Query{S: d[0], T: d[1], K: uint8(d[2])})
	}
	want := bruteSet(g, qs)
	for _, alg := range allAlgorithms {
		for _, workers := range []int{1, 2, 8} {
			got := collectParallel(t, g, gr, qs, ParallelOptions{
				Options: Options{Algorithm: alg},
				Workers: workers,
			})
			diffSets(t, fmt.Sprintf("%v workers=%d", alg, workers), want, got, len(qs))
		}
	}
}

// TestParallelRandom: the equivalence property under concurrency on
// larger random batches (also exercises the race detector when tests
// run with -race).
func TestParallelRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(40)
		g := graph.GenRandom(n, 2.5, int64(trial+50))
		gr := g.Reverse()
		var qs []query.Query
		for len(qs) < 12 {
			s := graph.VertexID(rng.Intn(n))
			tt := graph.VertexID(rng.Intn(n))
			if s == tt {
				continue
			}
			qs = append(qs, query.Query{S: s, T: tt, K: uint8(2 + rng.Intn(4))})
		}
		want := bruteSet(g, qs)
		for _, alg := range []Algorithm{BasicPlus, BatchPlus} {
			got := collectParallel(t, g, gr, qs, ParallelOptions{Options: Options{Algorithm: alg}})
			diffSets(t, fmt.Sprintf("parallel trial %d %v", trial, alg), want, got, len(qs))
		}
	}
}

// TestWorkersSemantics pins the documented boundary behaviour: zero or
// negative means GOMAXPROCS, positive counts are taken literally. (The
// public hcpath layer reserves zero for the sequential engine and never
// passes it down.)
func TestWorkersSemantics(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	cases := map[int]int{-1: maxprocs, 0: maxprocs, 1: 1, 3: 3}
	for in, want := range cases {
		if got := (ParallelOptions{Workers: in}).workers(); got != want {
			t.Errorf("workers(%d) = %d, want %d", in, got, want)
		}
	}
}

// TestParallelSingleWorker: one worker must behave exactly like the
// sequential engine (the buffered-sink path with zero contention).
func TestParallelSingleWorker(t *testing.T) {
	g := testgraphs.Paper()
	gr := g.Reverse()
	var qs []query.Query
	for _, d := range testgraphs.PaperQueries() {
		qs = append(qs, query.Query{S: d[0], T: d[1], K: uint8(d[2])})
	}
	want := bruteSet(g, qs)
	got := collectParallel(t, g, gr, qs, ParallelOptions{
		Options: Options{Algorithm: BatchPlus},
		Workers: 1,
	})
	diffSets(t, "single worker", want, got, len(qs))
}

// TestParallelEmptyAndInvalid mirror the sequential contract.
func TestParallelEmptyAndInvalid(t *testing.T) {
	g := testgraphs.Diamond()
	gr := g.Reverse()
	st, err := RunParallel(g, gr, nil, ParallelOptions{}, query.NewCountSink(0))
	if err != nil || st.NumQueries != 0 {
		t.Fatalf("empty batch: %+v, %v", st, err)
	}
	if _, err := RunParallel(g, gr, []query.Query{{S: 0, T: 0, K: 2}},
		ParallelOptions{}, query.NewCountSink(1)); err == nil {
		t.Fatal("invalid query accepted")
	}
}

// BenchmarkParallelScaling measures worker scaling on one batch.
func BenchmarkParallelScaling(b *testing.B) {
	s := getSetup(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink := query.NewCountSink(len(s.qs))
				if _, err := RunParallel(s.g, s.gr, s.qs, ParallelOptions{
					Options: Options{Algorithm: BasicPlus},
					Workers: workers,
				}, sink); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
