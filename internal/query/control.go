package query

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrLimitReached marks a query whose result set was cut short because
// its per-query emission budget (Control limit) was exhausted while more
// paths remained. It is reported per query through Control.QueryErr — a
// run-level error is reserved for cancellation, since in one batch some
// queries may hit their limit while others complete in full.
var ErrLimitReached = errors.New("query: result limit reached")

// PollInterval is the recommended number of DFS expansion steps between
// Control.Cancelled checks in enumeration hot loops: frequent enough
// that a cancelled query unwinds in microseconds, rare enough that the
// check (one atomic load plus a channel select) stays invisible next to
// the expansion work. It is a power of two so loops can test
// steps&(PollInterval-1) == 0 instead of dividing.
const PollInterval = 256

// stop reasons latched by Cancelled.
const (
	running int32 = iota
	stopCtx
	stopDeadline
)

// qstate tracks one query's emission budget. Each query is owned by
// exactly one enumeration goroutine at a time (engines assign whole
// queries or whole sharing groups to workers), so the fields are plain;
// cross-goroutine reads only happen after the run's completion barrier.
type qstate struct {
	emitted  int64
	limitHit bool // an emission was refused: more paths existed than emitted
	complete bool // the engine finished this query deliberately
}

// Control threads cooperative cancellation and per-query result budgets
// from a caller's context into the enumeration hot loops. One Control
// governs one batch run and is shared by every worker of that run:
// Cancelled is safe to call concurrently (the stop decision is latched
// atomically), while the per-query budget methods follow the engines'
// single-owner discipline — only the goroutine currently enumerating a
// query touches that query's state.
//
// A nil *Control is valid everywhere and means "run to completion":
// every method has a nil fast path, so engines thread the pointer
// unconditionally and uncontrolled runs pay one nil check per poll.
type Control struct {
	done     <-chan struct{}
	ctxErr   func() error
	deadline time.Time
	limit    int64
	reason   atomic.Int32
	qs       []qstate
}

// NewControl builds the Control for a batch of n queries. ctx supplies
// the cancellation signal and its error; deadline, when non-zero, also
// stops the run at that instant (the per-batch deadline a service
// derives from its QueryTimeout, independent of any caller context);
// limit > 0 caps the paths emitted per query. When nothing can stop the
// run — background context, no deadline, no limit — NewControl returns
// nil so the hot loops take only their nil fast path.
func NewControl(ctx context.Context, deadline time.Time, limit int64, n int) *Control {
	var done <-chan struct{}
	var ctxErr func() error
	if ctx != nil {
		done = ctx.Done()
		ctxErr = ctx.Err
	}
	if done == nil && deadline.IsZero() && limit <= 0 {
		return nil
	}
	return &Control{
		done:     done,
		ctxErr:   ctxErr,
		deadline: deadline,
		limit:    limit,
		qs:       make([]qstate, n),
	}
}

// Cancelled reports whether the run must stop: the context fired or the
// deadline passed. The first true answer is latched, so after
// cancellation the check is a single atomic load. Hot loops call this
// every PollInterval expansion steps and unwind immediately on true.
//
//hcpath:noalloc
func (c *Control) Cancelled() bool {
	if c == nil {
		return false
	}
	if c.reason.Load() != running {
		return true
	}
	if c.done != nil {
		select {
		case <-c.done:
			c.reason.CompareAndSwap(running, stopCtx)
			return true
		default:
		}
	}
	if !c.deadline.IsZero() && !time.Now().Before(c.deadline) {
		c.reason.CompareAndSwap(running, stopDeadline)
		return true
	}
	return false
}

// Poll is the hot-loop form of Cancelled, shared by every enumeration
// DFS: it increments the caller's step counter and consults Cancelled
// only every PollInterval-th step, latching the answer into *stopped so
// the unwind after cancellation is a single branch. It returns the
// latched value; callers return immediately on true. steps and stopped
// are caller-owned (one pair per goroutine), which keeps Poll free of
// shared mutable state.
//
//hcpath:noalloc
func (c *Control) Poll(steps *int, stopped *bool) bool {
	*steps++
	if *stopped || (*steps&(PollInterval-1) == 0 && c.Cancelled()) {
		*stopped = true
		return true
	}
	return false
}

// Err returns why the run stopped: the context's error, or
// context.DeadlineExceeded for the Control's own deadline. It returns
// nil while the run is live — limit exhaustion is per query, not a run
// error (see ErrLimitReached and QueryErr).
func (c *Control) Err() error {
	if c == nil {
		return nil
	}
	switch c.reason.Load() {
	case stopCtx:
		if c.ctxErr != nil {
			if err := c.ctxErr(); err != nil {
				return err
			}
		}
		return context.Canceled
	case stopDeadline:
		return context.DeadlineExceeded
	}
	return nil
}

// Allow reserves one emission slot for query qid: true means the caller
// must emit the path, false means the limit is exhausted and the path
// must be dropped. The first refusal latches HitLimit, which is how the
// run distinguishes "exactly limit paths existed" (never refused, not
// truncated) from "more paths remained" (refused, truncated) — engines
// therefore stop a query on the first refusal, one probe past the
// limit, rather than at the limit itself.
func (c *Control) Allow(qid int) bool {
	if c == nil || c.limit <= 0 {
		return true
	}
	q := &c.qs[qid]
	if q.emitted >= c.limit {
		q.limitHit = true
		return false
	}
	q.emitted++
	return true
}

// HitLimit reports whether query qid had an emission refused; join and
// output loops test it at each iteration head to stop a satisfied query
// without disturbing its batch siblings.
func (c *Control) HitLimit(qid int) bool {
	return c != nil && c.qs[qid].limitHit
}

// MarkComplete records that the engine finished query qid deliberately
// (full enumeration, or stopped at its limit) — as opposed to being
// abandoned mid-flight by cancellation. Engines call it exactly when a
// query's processing ends without the run being cancelled.
func (c *Control) MarkComplete(qid int) {
	if c != nil {
		c.qs[qid].complete = true
	}
}

// Truncated reports whether query qid's result set is known incomplete:
// its limit refused an emission, or the run was cancelled before the
// engine finished it.
func (c *Control) Truncated(qid int) bool {
	if c == nil {
		return false
	}
	q := &c.qs[qid]
	return q.limitHit || (!q.complete && c.reason.Load() != running)
}

// QueryErr explains query qid's truncation: nil for a complete result
// set, ErrLimitReached when the per-query limit cut it short, or the
// run's cancellation error when the query was abandoned mid-flight. A
// query that finished before the run was cancelled still reports nil —
// its results are whole regardless of how the run ended.
func (c *Control) QueryErr(qid int) error {
	if c == nil {
		return nil
	}
	q := &c.qs[qid]
	if q.limitHit {
		return ErrLimitReached
	}
	if !q.complete && c.reason.Load() != running {
		return c.Err()
	}
	return nil
}

// NumTruncated counts the batch's truncated queries; call it only after
// the run's completion barrier.
func (c *Control) NumTruncated() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.qs {
		if c.Truncated(i) {
			n++
		}
	}
	return n
}
