package query

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func diamond() *graph.Graph {
	return graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3},
		{Src: 1, Dst: 3}, {Src: 2, Dst: 3},
	})
}

func TestBudgets(t *testing.T) {
	cases := []struct {
		k, fwd, bwd uint8
	}{
		{1, 1, 0}, {2, 1, 1}, {3, 2, 1}, {4, 2, 2}, {5, 3, 2}, {7, 4, 3},
	}
	for _, c := range cases {
		q := Query{K: c.k}
		if q.FwdBudget() != c.fwd || q.BwdBudget() != c.bwd {
			t.Errorf("k=%d: budgets (%d,%d), want (%d,%d)",
				c.k, q.FwdBudget(), q.BwdBudget(), c.fwd, c.bwd)
		}
	}
}

// TestBudgetsSumToK is the property the bidirectional split relies on.
func TestBudgetsSumToK(t *testing.T) {
	f := func(k uint8) bool {
		q := Query{K: k}
		return q.FwdBudget()+q.BwdBudget() == k && q.FwdBudget() >= q.BwdBudget()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	q := Query{ID: 3, S: 4, T: 14, K: 4}
	if got := q.String(); got != "q3(v4, v14, 4)" {
		t.Errorf("String() = %q", got)
	}
}

func TestValidate(t *testing.T) {
	g := diamond()
	cases := []struct {
		q  Query
		ok bool
	}{
		{Query{S: 0, T: 3, K: 2}, true},
		{Query{S: 0, T: 0, K: 2}, false}, // s == t
		{Query{S: 9, T: 3, K: 2}, false}, // s out of range
		{Query{S: 0, T: 9, K: 2}, false}, // t out of range
		{Query{S: 0, T: 3, K: 0}, false}, // k == 0
	}
	for i, c := range cases {
		err := c.q.Validate(g)
		if (err == nil) != c.ok {
			t.Errorf("case %d (%v): err=%v, want ok=%v", i, c.q, err, c.ok)
		}
	}
}

func TestBatchAssignsIDs(t *testing.T) {
	g := diamond()
	qs, err := Batch(g, []Query{{S: 0, T: 3, K: 2}, {S: 1, T: 3, K: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if q.ID != i {
			t.Errorf("query %d has ID %d", i, q.ID)
		}
	}
	if _, err := Batch(g, []Query{{S: 0, T: 0, K: 2}}); err == nil {
		t.Error("invalid query accepted by Batch")
	}
}

func TestCountSink(t *testing.T) {
	s := NewCountSink(3)
	s.Emit(0, []graph.VertexID{0, 1})
	s.Emit(2, []graph.VertexID{0, 1, 2})
	s.Emit(2, []graph.VertexID{0, 2})
	if s.Counts[0] != 1 || s.Counts[1] != 0 || s.Counts[2] != 2 {
		t.Errorf("counts = %v", s.Counts)
	}
	if s.Total() != 3 {
		t.Errorf("total = %d", s.Total())
	}
}

func TestCollectSinkCopies(t *testing.T) {
	s := NewCollectSink(1)
	buf := []graph.VertexID{0, 1, 2}
	s.Emit(0, buf)
	buf[0] = 99 // mutate the emitted slice; the sink must hold a copy
	if s.Paths[0][0][0] != 0 {
		t.Error("CollectSink retained the caller's slice instead of copying")
	}
}

// TestBufferSink: emissions replay in order with the right IDs and
// contents, the source slice is copied, and the buffer resets on flush.
func TestBufferSink(t *testing.T) {
	b := &BufferSink{}
	src := []graph.VertexID{4, 9, 3}
	b.Emit(2, src)
	src[0] = 99 // the buffer must have copied
	b.Emit(0, []graph.VertexID{1})
	b.Emit(2, []graph.VertexID{4, 9, 15, 6})
	if b.Len() != 3 || b.Vertices() != 8 {
		t.Fatalf("Len=%d Vertices=%d, want 3/8", b.Len(), b.Vertices())
	}
	var got []string
	b.FlushTo(FuncSink(func(id int, p []graph.VertexID) {
		got = append(got, fmt.Sprint(id, p))
	}))
	want := []string{"2 [4 9 3]", "0 [1]", "2 [4 9 15 6]"}
	if len(got) != len(want) {
		t.Fatalf("flushed %d emissions, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("flush %d = %q, want %q", i, got[i], want[i])
		}
	}
	if b.Len() != 0 || b.Vertices() != 0 {
		t.Errorf("buffer not reset: Len=%d Vertices=%d", b.Len(), b.Vertices())
	}
	// Reuse after flush must not replay stale entries.
	b.Emit(5, []graph.VertexID{7})
	n := 0
	b.FlushTo(FuncSink(func(id int, p []graph.VertexID) {
		n++
		if id != 5 || len(p) != 1 || p[0] != 7 {
			t.Errorf("reused buffer emitted %d %v", id, p)
		}
	}))
	if n != 1 {
		t.Errorf("reused buffer flushed %d emissions, want 1", n)
	}
}

func TestFuncSink(t *testing.T) {
	var got string
	FuncSink(func(id int, p []graph.VertexID) {
		got = fmt.Sprint(id, p)
	}).Emit(7, []graph.VertexID{1, 2})
	if got != "7 [1 2]" {
		t.Errorf("FuncSink saw %q", got)
	}
}
