// Package query defines the HC-s-t path query type shared by every
// engine in the repository, plus result sinks that decouple enumeration
// from result handling (collection, counting, streaming).
package query

import (
	"fmt"

	"repro/internal/graph"
)

// Query is a hop-constrained s-t simple path enumeration query q(s,t,k):
// report every simple path from S to T with at most K hops.
type Query struct {
	ID int // position within the batch; engines report results by ID
	S  graph.VertexID
	T  graph.VertexID
	K  uint8
}

// FwdBudget is the forward-half hop budget ⌈k/2⌉ used by the
// bidirectional strategy (§III of the paper). Written as k/2 + k%2 so
// the uint8 arithmetic cannot overflow at k = 255.
func (q Query) FwdBudget() uint8 { return q.K/2 + q.K%2 }

// BwdBudget is the backward-half hop budget ⌊k/2⌋.
func (q Query) BwdBudget() uint8 { return q.K / 2 }

// String renders the query as in the paper, e.g. "q3(v4, v14, 4)".
func (q Query) String() string {
	return fmt.Sprintf("q%d(v%d, v%d, %d)", q.ID, q.S, q.T, q.K)
}

// Validate reports whether the query is well-formed for graph g.
func (q Query) Validate(g *graph.Graph) error {
	return q.ValidateN(graph.VertexID(g.NumVertices()))
}

// ValidateN is Validate against a bare vertex count, for callers — the
// remote sharded coordinator — that know the cluster's vertex space but
// hold no local graph. The two produce identical errors, so validation
// failures read the same whether a deployment is local or remote.
func (q Query) ValidateN(n graph.VertexID) error {
	if q.S >= n {
		return fmt.Errorf("query %s: source out of range (n=%d)", q, n)
	}
	if q.T >= n {
		return fmt.Errorf("query %s: target out of range (n=%d)", q, n)
	}
	if q.S == q.T {
		return fmt.Errorf("query %s: source equals target", q)
	}
	if q.K == 0 {
		return fmt.Errorf("query %s: hop constraint must be positive", q)
	}
	return nil
}

// Batch assigns sequential IDs to a set of queries, as the engines
// require, and validates each against g.
func Batch(g *graph.Graph, qs []Query) ([]Query, error) {
	out := make([]Query, len(qs))
	for i, q := range qs {
		q.ID = i
		if err := q.Validate(g); err != nil {
			return nil, err
		}
		out[i] = q
	}
	return out, nil
}

// Sink receives enumerated HC-s-t paths. Emit is called once per result
// path with the query's batch ID and the full vertex sequence from S to
// T; the slice is only valid during the call and must be copied to be
// retained.
type Sink interface {
	Emit(queryID int, path []graph.VertexID)
}

// CountSink counts results per query without retaining paths — the mode
// used by the benchmark harness, since path counts grow exponentially
// with k (Exp-7).
type CountSink struct {
	Counts []int64
}

// NewCountSink returns a CountSink for a batch of n queries.
func NewCountSink(n int) *CountSink { return &CountSink{Counts: make([]int64, n)} }

// Emit implements Sink.
func (c *CountSink) Emit(queryID int, _ []graph.VertexID) { c.Counts[queryID]++ }

// Total returns the sum of all per-query counts.
func (c *CountSink) Total() int64 {
	var t int64
	for _, v := range c.Counts {
		t += v
	}
	return t
}

// CollectSink materialises every result path, grouped by query. Intended
// for tests and small workloads.
type CollectSink struct {
	Paths [][][]graph.VertexID
}

// NewCollectSink returns a CollectSink for a batch of n queries.
func NewCollectSink(n int) *CollectSink {
	return &CollectSink{Paths: make([][][]graph.VertexID, n)}
}

// Emit implements Sink; it copies the path.
func (c *CollectSink) Emit(queryID int, path []graph.VertexID) {
	cp := make([]graph.VertexID, len(path))
	copy(cp, path)
	c.Paths[queryID] = append(c.Paths[queryID], cp)
}

// BufferSink accumulates emissions locally so a concurrent producer can
// hand batches of results to a shared downstream sink without taking a
// lock per path. Paths are packed into one flat vertex arena, so a
// buffered emission costs one append instead of one allocation, and the
// arenas are retained across flushes.
//
// BufferSink is not safe for concurrent use; the intended pattern is one
// BufferSink per worker, flushed under the consumer's lock at chunk
// boundaries.
type BufferSink struct {
	ids   []int32
	ends  []int32 // ends[i] is the exclusive end of path i in verts
	verts []graph.VertexID
}

// Emit implements Sink; it copies the path into the arena.
//
//hcpath:noalloc
func (b *BufferSink) Emit(queryID int, path []graph.VertexID) {
	b.ids = append(b.ids, int32(queryID))
	b.verts = append(b.verts, path...)
	b.ends = append(b.ends, int32(len(b.verts)))
}

// Len returns the number of buffered emissions.
func (b *BufferSink) Len() int { return len(b.ids) }

// Vertices returns the total buffered path length, the natural measure
// for memory-bounded flush thresholds (paths vary in length).
func (b *BufferSink) Vertices() int { return len(b.verts) }

// FlushTo replays every buffered emission into sink in emission order
// and resets the buffer, keeping its capacity. The replayed slices alias
// the arena, honouring the Sink contract that paths are only valid
// during the Emit call.
//
//hcpath:noalloc
func (b *BufferSink) FlushTo(sink Sink) {
	start := int32(0)
	for i, id := range b.ids {
		end := b.ends[i]
		sink.Emit(int(id), b.verts[start:end])
		start = end
	}
	b.ids = b.ids[:0]
	b.ends = b.ends[:0]
	b.verts = b.verts[:0]
}

// FuncSink adapts a function to the Sink interface.
type FuncSink func(queryID int, path []graph.VertexID)

// Emit implements Sink.
func (f FuncSink) Emit(queryID int, path []graph.VertexID) { f(queryID, path) }
