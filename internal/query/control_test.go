package query

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNewControlNilWhenUnstoppable(t *testing.T) {
	if c := NewControl(context.Background(), time.Time{}, 0, 4); c != nil {
		t.Fatalf("background ctx, no deadline, no limit: want nil Control, got %+v", c)
	}
	if c := NewControl(nil, time.Time{}, 0, 4); c != nil {
		t.Fatalf("nil ctx: want nil Control, got %+v", c)
	}
	if c := NewControl(context.Background(), time.Now().Add(time.Hour), 0, 4); c == nil {
		t.Fatal("deadline set: want non-nil Control")
	}
	if c := NewControl(context.Background(), time.Time{}, 3, 4); c == nil {
		t.Fatal("limit set: want non-nil Control")
	}
}

func TestNilControlNoOps(t *testing.T) {
	var c *Control
	if c.Cancelled() || c.Err() != nil || c.HitLimit(0) || c.Truncated(0) ||
		c.QueryErr(0) != nil || c.NumTruncated() != 0 {
		t.Fatal("nil Control must behave as run-to-completion")
	}
	if !c.Allow(0) {
		t.Fatal("nil Control must allow every emission")
	}
	c.MarkComplete(0) // must not panic
}

func TestControlCancellationLatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := NewControl(ctx, time.Time{}, 5, 2)
	if c.Cancelled() {
		t.Fatal("cancelled before ctx fired")
	}
	if c.Err() != nil {
		t.Fatalf("Err before cancellation = %v", c.Err())
	}
	cancel()
	if !c.Cancelled() {
		t.Fatal("not cancelled after ctx fired")
	}
	if !errors.Is(c.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", c.Err())
	}
	// Latched: still cancelled on re-check.
	if !c.Cancelled() {
		t.Fatal("cancellation did not latch")
	}
}

func TestControlDeadline(t *testing.T) {
	c := NewControl(context.Background(), time.Now().Add(-time.Millisecond), 0, 1)
	if !c.Cancelled() {
		t.Fatal("past deadline not detected")
	}
	if !errors.Is(c.Err(), context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want context.DeadlineExceeded", c.Err())
	}
}

func TestControlLimitSemantics(t *testing.T) {
	c := NewControl(context.Background(), time.Time{}, 2, 2)
	// Query 0: exactly at the limit — never refused, never truncated.
	if !c.Allow(0) || !c.Allow(0) {
		t.Fatal("emissions within the limit refused")
	}
	c.MarkComplete(0)
	if c.HitLimit(0) || c.Truncated(0) || c.QueryErr(0) != nil {
		t.Fatal("a query with exactly limit paths must not be truncated")
	}

	// Query 1: one refusal past the limit — truncated with ErrLimitReached.
	c.Allow(1)
	c.Allow(1)
	if c.Allow(1) {
		t.Fatal("third emission beyond limit 2 allowed")
	}
	c.MarkComplete(1) // engines finish a limit-hit query deliberately
	if !c.HitLimit(1) || !c.Truncated(1) {
		t.Fatal("refused query not reported truncated")
	}
	if !errors.Is(c.QueryErr(1), ErrLimitReached) {
		t.Fatalf("QueryErr = %v, want ErrLimitReached", c.QueryErr(1))
	}
	if got := c.NumTruncated(); got != 1 {
		t.Fatalf("NumTruncated = %d, want 1", got)
	}
}

func TestControlCancellationTruncatesIncompleteOnly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := NewControl(ctx, time.Time{}, 0, 2)
	c.Allow(0)
	c.MarkComplete(0) // finished before the cancel
	cancel()
	c.Cancelled() // latch
	if c.Truncated(0) || c.QueryErr(0) != nil {
		t.Fatal("query completed before cancellation must stay complete")
	}
	if !c.Truncated(1) {
		t.Fatal("unfinished query not truncated by cancellation")
	}
	if !errors.Is(c.QueryErr(1), context.Canceled) {
		t.Fatalf("QueryErr = %v, want context.Canceled", c.QueryErr(1))
	}
	if got := c.NumTruncated(); got != 1 {
		t.Fatalf("NumTruncated = %d, want 1", got)
	}
}

func TestPollIntervalPowerOfTwo(t *testing.T) {
	// Hot loops rely on steps&(PollInterval-1) masking.
	if PollInterval <= 0 || PollInterval&(PollInterval-1) != 0 {
		t.Fatalf("PollInterval = %d, want a power of two", PollInterval)
	}
}
