// Package testgraphs provides the shared fixture graphs used by tests
// across the repository, chiefly the 16-vertex example graph of Fig. 1 of
// the paper, whose HC-s-t paths are enumerated explicitly in the text and
// therefore make precise ground truth.
package testgraphs

import "repro/internal/graph"

// Paper returns the running-example graph G of Fig. 1, reconstructed from
// every constraint the paper states about it:
//
//   - P(q0(v0,v11,5)) = {(v0,v1,v7,v10,v12,v11), (v0,v4,v9,v3,v6,v11),
//     (v0,v4,v9,v15,v6,v11)} and the symmetric three paths for
//     q1(v2,v13,5) (Fig. 3(b));
//   - Example 3.1: extending prefix (v4,v9,v3) to v15 is pruned
//     (so edge v3→v15 exists), and dist(v8,v14)=∞ (v8 is a dead end);
//   - Fig. 2(b) backward index for v14 is exactly {v6:1, v3:2, v15:2,
//     v9:3, v4:4};
//   - Example 4.1: Γ(q3) has 9 vertices, Γ(q4) has 8, µ(q3,q4)=1 and
//     µ(q0,q1)=0.93;
//   - Fig. 5(a): P(q_{v1,2,G}) = {(v1,v7,v10), (v1,v7,v8), (v1,v8)}.
//
// Resulting ground truth used by tests:
//
//	q0(v0,v11,5): 3 paths   q1(v2,v13,5): 3 paths
//	q2(v5,v12,5): 1 path (v5,v1,v7,v10,v12)
//	q3(v4,v14,4): 2 paths   q4(v9,v14,3): 2 paths
func Paper() *graph.Graph {
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 4},
		{Src: 2, Dst: 1}, {Src: 2, Dst: 4},
		{Src: 5, Dst: 1},
		{Src: 1, Dst: 7}, {Src: 1, Dst: 8},
		{Src: 4, Dst: 9},
		{Src: 9, Dst: 3}, {Src: 9, Dst: 15}, {Src: 9, Dst: 8},
		{Src: 3, Dst: 15},
		{Src: 7, Dst: 10}, {Src: 7, Dst: 8},
		{Src: 3, Dst: 6}, {Src: 15, Dst: 6},
		{Src: 10, Dst: 12},
		{Src: 12, Dst: 11}, {Src: 12, Dst: 13},
		{Src: 6, Dst: 11}, {Src: 6, Dst: 13}, {Src: 6, Dst: 14},
	}
	return graph.FromEdges(16, edges)
}

// PaperQueries returns the batch Q of Fig. 1 as (s, t, k) triples.
func PaperQueries() [][3]uint32 {
	return [][3]uint32{
		{0, 11, 5}, // q0
		{2, 13, 5}, // q1
		{5, 12, 5}, // q2
		{4, 14, 4}, // q3
		{9, 14, 3}, // q4
	}
}

// Diamond returns a tiny 4-vertex diamond s→a→t, s→b→t plus direct s→t,
// convenient for join tests (paths of length 1 and 2).
func Diamond() *graph.Graph {
	return graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3},
		{Src: 1, Dst: 3}, {Src: 2, Dst: 3},
	})
}

// Cycle returns a directed n-cycle 0→1→…→n-1→0.
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%n))
	}
	return b.Build()
}

// Line returns a directed path 0→1→…→n-1.
func Line(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID(i+1))
	}
	return b.Build()
}

// CompleteDAG returns the complete DAG on n vertices (edge i→j for i<j),
// whose s-t path counts are known in closed form: the number of simple
// paths from 0 to n-1 using any number of hops is 2^(n-2), and the number
// with at most k hops is sum_{h=1..k} C(n-2, h-1).
func CompleteDAG(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.VertexID(i), graph.VertexID(j))
		}
	}
	return b.Build()
}
