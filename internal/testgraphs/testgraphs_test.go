package testgraphs

import (
	"testing"

	"repro/internal/graph"
)

// TestPaperGroundTruth re-derives every constraint the paper states
// about Fig. 1 that the fixture encodes (see the Paper doc comment).
func TestPaperGroundTruth(t *testing.T) {
	g := Paper()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 16 {
		t.Fatalf("|V| = %d, want 16", g.NumVertices())
	}
	// Example 3.1: v3→v15 exists, v8 is a dead end.
	if !g.HasEdge(3, 15) {
		t.Error("missing edge v3→v15 (Example 3.1)")
	}
	if g.OutDegree(8) != 0 {
		t.Errorf("v8 must be a dead end, out-degree %d", g.OutDegree(8))
	}
	// Fig. 2(b): backward index entries for v14.
	gr := g.Reverse()
	wantDist := map[graph.VertexID]int{6: 1, 3: 2, 15: 2, 9: 3, 4: 4}
	dist := bfs(gr, 14)
	for v, want := range wantDist {
		if dist[v] != want {
			t.Errorf("dist(v%d, v14) = %d, want %d", v, dist[v], want)
		}
	}
	if dist[8] >= 0 {
		t.Errorf("dist(v8, v14) must be ∞, got %d", dist[8])
	}
}

// bfs returns hop distances from src (-1 = unreachable).
func bfs(g *graph.Graph, src graph.VertexID) []int {
	dist := make([]int, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []graph.VertexID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.OutNeighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

func TestPaperQueries(t *testing.T) {
	qs := PaperQueries()
	if len(qs) != 5 {
		t.Fatalf("%d queries, want 5", len(qs))
	}
	if qs[0] != [3]uint32{0, 11, 5} || qs[4] != [3]uint32{9, 14, 3} {
		t.Errorf("query table corrupted: %v", qs)
	}
}

func TestFixtureShapes(t *testing.T) {
	if d := Diamond(); d.NumVertices() != 4 || d.NumEdges() != 5 {
		t.Errorf("Diamond: |V|=%d |E|=%d", d.NumVertices(), d.NumEdges())
	}
	if c := Cycle(5); c.NumEdges() != 5 || !c.HasEdge(4, 0) {
		t.Error("Cycle(5) malformed")
	}
	if l := Line(4); l.NumEdges() != 3 || l.OutDegree(3) != 0 {
		t.Error("Line(4) malformed")
	}
	if d := CompleteDAG(5); d.NumEdges() != 10 {
		t.Errorf("CompleteDAG(5): |E|=%d, want 10", d.NumEdges())
	}
	for _, g := range []*graph.Graph{Diamond(), Cycle(5), Line(4), CompleteDAG(5)} {
		if err := g.Validate(); err != nil {
			t.Error(err)
		}
	}
}
