// Package scenario is the deterministic replay harness for mixed
// service workloads: bursts of concurrent queries (some hostile — hop
// caps far above the typical range), live graph updates applied between
// bursts, and named callers for the fairness quota. A scenario is
// recorded in a seed-stamped text file, so any run can be reproduced
// bit-for-bit: the file carries the generator inputs (graph key, seed,
// wave count) and the full operation list, and the generator is
// deterministic, so `Generate` over the stamped inputs must re-derive
// the committed operations exactly — the property the golden test
// enforces.
//
// Replay semantics are wave-synchronous, the same discipline as
// `cmd/hcpath -updates`: a wave's updates apply first (one atomic
// epoch), then its queries are submitted concurrently — so they
// micro-batch and exercise the collector, planner, and parallel engine
// — and the wave completes before the next begins. Per-query counts are
// therefore deterministic (each query sees exactly its wave's epoch)
// even though batching and grouping are not, which is what makes the
// harness a differential oracle: any engine configuration must produce
// the same counts.
package scenario

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"

	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/query"
	"repro/internal/service"
	"repro/internal/testgraphs"
)

// Query is one recorded query: endpoints, hop cap, and the caller name
// it is submitted under (admission quotas are per caller).
type Query struct {
	S, T   graph.VertexID
	K      uint8
	Caller string
}

// Wave is one synchronous step of a scenario: updates applied first,
// then the queries submitted concurrently.
type Wave struct {
	Adds, Dels []graph.Edge
	Queries    []Query
}

// Scenario is a recorded workload over one corpus graph.
type Scenario struct {
	// GraphKey names the corpus graph (see BuildGraph).
	GraphKey string
	// Seed and GenWaves stamp the generator inputs that produced the
	// scenario, making the file reproducible: Generate(GraphKey, Seed,
	// GenWaves) re-derives the identical operation list.
	Seed     int64
	GenWaves int
	Waves    []Wave
}

// NumQueries returns the total queries across all waves.
func (s *Scenario) NumQueries() int {
	n := 0
	for _, w := range s.Waves {
		n += len(w.Queries)
	}
	return n
}

// BuildGraph resolves a corpus graph key: "paper", "diamond",
// "cycle:N", "line:N" or "completeDAG:N".
func BuildGraph(key string) (*graph.Graph, error) {
	name, arg, hasArg := strings.Cut(key, ":")
	n := 0
	if hasArg {
		v, err := strconv.Atoi(arg)
		if err != nil || v < 2 {
			return nil, fmt.Errorf("scenario: bad graph size in key %q", key)
		}
		n = v
	}
	switch {
	case name == "paper" && !hasArg:
		return testgraphs.Paper(), nil
	case name == "diamond" && !hasArg:
		return testgraphs.Diamond(), nil
	case name == "cycle" && hasArg:
		return testgraphs.Cycle(n), nil
	case name == "line" && hasArg:
		return testgraphs.Line(n), nil
	case name == "completeDAG" && hasArg:
		return testgraphs.CompleteDAG(n), nil
	}
	return nil, fmt.Errorf("scenario: unknown graph key %q", key)
}

// Generate derives a mixed workload deterministically from its inputs:
// waves of concurrent query bursts — clustered look-alikes around a hub
// pair (the sharing engines' best case), independent random queries
// (their worst case), and hostile queries with hop caps far above the
// 4–7 norm — interleaved with random live edge updates that may also
// grow the vertex space. The same inputs always yield the same
// scenario; that is the whole point.
func Generate(graphKey string, seed int64, waves int) (*Scenario, error) {
	g, err := BuildGraph(graphKey)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(seed))
	sc := &Scenario{GraphKey: graphKey, Seed: seed, GenWaves: waves}

	randomPair := func() (graph.VertexID, graph.VertexID) {
		s := graph.VertexID(rng.Intn(n))
		t := graph.VertexID(rng.Intn(n))
		for t == s {
			t = graph.VertexID(rng.Intn(n))
		}
		return s, t
	}

	for w := 0; w < waves; w++ {
		var wave Wave
		// Live updates mid-flight: later waves mutate the graph the
		// earlier waves queried. Adds may name a vertex one past the
		// current space so replays exercise vertex growth too.
		if w > 0 && rng.Intn(2) == 0 {
			for i := 1 + rng.Intn(3); i > 0; i-- {
				u := graph.VertexID(rng.Intn(n + 1))
				v := graph.VertexID(rng.Intn(n + 1))
				if u == v {
					continue
				}
				if rng.Intn(3) == 0 {
					wave.Dels = append(wave.Dels, graph.Edge{Src: u, Dst: v})
				} else {
					wave.Adds = append(wave.Adds, graph.Edge{Src: u, Dst: v})
				}
			}
		}
		hubS, hubT := randomPair()
		for i := 1 + rng.Intn(10); i > 0; i-- {
			var q Query
			switch rng.Intn(5) {
			case 0: // hostile hop cap, far above the 4–7 norm
				s, t := randomPair()
				q = Query{S: s, T: t, K: uint8(10 + rng.Intn(6))}
			case 1, 2: // clustered around the wave's hub pair
				s := hubS
				if rng.Intn(2) == 0 {
					s = graph.VertexID(rng.Intn(n))
				}
				if s == hubT {
					s = hubS
				}
				q = Query{S: s, T: hubT, K: uint8(3 + rng.Intn(3))}
			default: // independent random query
				s, t := randomPair()
				q = Query{S: s, T: t, K: uint8(2 + rng.Intn(5))}
			}
			q.Caller = fmt.Sprintf("c%d", rng.Intn(3))
			wave.Queries = append(wave.Queries, q)
		}
		sc.Waves = append(sc.Waves, wave)
	}
	return sc, nil
}

// Encode writes the scenario in its text form: a seed-stamped header,
// then one operation per line grouped into waves.
func (s *Scenario) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# scenario: deterministic mixed workload; regenerate with Generate(%q, %d, %d)\n",
		s.GraphKey, s.Seed, s.GenWaves)
	fmt.Fprintf(bw, "graph %s\nseed %d\ngenwaves %d\n", s.GraphKey, s.Seed, s.GenWaves)
	for _, wave := range s.Waves {
		fmt.Fprintln(bw, "wave")
		for _, e := range wave.Dels {
			fmt.Fprintf(bw, "del %d %d\n", e.Src, e.Dst)
		}
		for _, e := range wave.Adds {
			fmt.Fprintf(bw, "add %d %d\n", e.Src, e.Dst)
		}
		for _, q := range wave.Queries {
			fmt.Fprintf(bw, "query %d %d %d %s\n", q.S, q.T, q.K, q.Caller)
		}
	}
	return bw.Flush()
}

// WriteFile records the scenario at path.
func (s *Scenario) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Parse reads the text form back. Unknown directives are errors — a
// scenario file that cannot be replayed faithfully must not replay at
// all.
func Parse(r io.Reader) (*Scenario, error) {
	sc := &Scenario{}
	var wave *Wave
	sawGraph := false
	scan := bufio.NewScanner(r)
	line := 0
	for scan.Scan() {
		line++
		text := strings.TrimSpace(scan.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		ints := func(want int) ([]uint64, error) {
			if len(fields) < want+1 {
				return nil, fmt.Errorf("scenario:%d: want %d operands, got %q", line, want, text)
			}
			vals := make([]uint64, want)
			for i := range vals {
				v, err := strconv.ParseUint(fields[i+1], 10, 32)
				if err != nil {
					return nil, fmt.Errorf("scenario:%d: operand %d: %v", line, i+1, err)
				}
				vals[i] = v
			}
			return vals, nil
		}
		switch fields[0] {
		case "graph":
			if len(fields) != 2 {
				return nil, fmt.Errorf("scenario:%d: graph wants one key", line)
			}
			sc.GraphKey, sawGraph = fields[1], true
		case "seed":
			if len(fields) != 2 {
				return nil, fmt.Errorf("scenario:%d: seed wants one value", line)
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("scenario:%d: seed: %v", line, err)
			}
			sc.Seed = v
		case "genwaves":
			if len(fields) != 2 {
				return nil, fmt.Errorf("scenario:%d: genwaves wants one value", line)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("scenario:%d: genwaves: %v", line, err)
			}
			sc.GenWaves = v
		case "wave":
			sc.Waves = append(sc.Waves, Wave{})
			wave = &sc.Waves[len(sc.Waves)-1]
		case "add", "del":
			if wave == nil {
				return nil, fmt.Errorf("scenario:%d: %s before first wave", line, fields[0])
			}
			vals, err := ints(2)
			if err != nil {
				return nil, err
			}
			e := graph.Edge{Src: graph.VertexID(vals[0]), Dst: graph.VertexID(vals[1])}
			if fields[0] == "add" {
				wave.Adds = append(wave.Adds, e)
			} else {
				wave.Dels = append(wave.Dels, e)
			}
		case "query":
			if wave == nil {
				return nil, fmt.Errorf("scenario:%d: query before first wave", line)
			}
			vals, err := ints(3)
			if err != nil {
				return nil, err
			}
			if vals[2] == 0 || vals[2] > 255 {
				return nil, fmt.Errorf("scenario:%d: hop cap %d outside [1, 255]", line, vals[2])
			}
			q := Query{S: graph.VertexID(vals[0]), T: graph.VertexID(vals[1]), K: uint8(vals[2])}
			if len(fields) == 5 {
				q.Caller = fields[4]
			} else if len(fields) != 4 {
				return nil, fmt.Errorf("scenario:%d: query wants 's t k [caller]', got %q", line, text)
			}
			wave.Queries = append(wave.Queries, q)
		default:
			return nil, fmt.Errorf("scenario:%d: unknown directive %q", line, fields[0])
		}
	}
	if err := scan.Err(); err != nil {
		return nil, err
	}
	if !sawGraph {
		return nil, fmt.Errorf("scenario: missing graph key")
	}
	return sc, nil
}

// Load reads a scenario file.
func Load(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// Result is one replay's outcome, indexed by global query position
// (file order: waves in sequence, queries within a wave in file order).
type Result struct {
	Counts []int64
	Errs   []error
	Totals service.Totals
}

// Replay drives the scenario through a fresh service built from cfg:
// per wave, updates apply as one epoch, then the wave's queries are
// submitted concurrently (count mode) and awaited. Counts land at
// deterministic positions regardless of how the collector batches the
// burst. The service is closed before returning.
func Replay(sc *Scenario, cfg service.Config) (*Result, error) {
	g, err := BuildGraph(sc.GraphKey)
	if err != nil {
		return nil, err
	}
	svc := service.New(g, g.Reverse(), cfg)
	defer svc.Close()

	res := &Result{
		Counts: make([]int64, sc.NumQueries()),
		Errs:   make([]error, sc.NumQueries()),
	}
	base := 0
	for wi, wave := range sc.Waves {
		if len(wave.Adds)+len(wave.Dels) > 0 {
			if _, err := svc.ApplyUpdates(wave.Adds, wave.Dels); err != nil {
				return nil, fmt.Errorf("scenario: wave %d updates: %w", wi, err)
			}
		}
		var wg sync.WaitGroup
		for i, q := range wave.Queries {
			wg.Add(1)
			go func(slot int, q Query) {
				defer wg.Done()
				r, err := svc.Submit(context.Background(), q.Caller,
					query.Query{S: q.S, T: q.T, K: q.K}, false)
				if err != nil {
					res.Errs[slot] = err
					return
				}
				res.Counts[slot] = r.Count
				res.Errs[slot] = r.Err
			}(base+i, q)
		}
		wg.Wait()
		base += len(wave.Queries)
	}
	res.Totals = svc.Stats()
	return res, nil
}

// Oracle computes the ground-truth count of every query by mirroring
// the store's update semantics on a plain edge set — deletions before
// additions within a wave, self-loops dropped, vertex space growing to
// fit — and running the brute-force reference enumerator on a graph
// rebuilt from scratch at each wave.
func Oracle(sc *Scenario) ([]int64, error) {
	g, err := BuildGraph(sc.GraphKey)
	if err != nil {
		return nil, err
	}
	edges := make(map[graph.Edge]bool)
	g.Edges(func(src, dst graph.VertexID) bool {
		edges[graph.Edge{Src: src, Dst: dst}] = true
		return true
	})
	maxV := g.NumVertices()

	out := make([]int64, 0, sc.NumQueries())
	for _, wave := range sc.Waves {
		for _, e := range wave.Dels {
			delete(edges, e)
		}
		for _, e := range wave.Adds {
			if e.Src == e.Dst {
				continue
			}
			edges[e] = true
			if v := int(max(e.Src, e.Dst)) + 1; v > maxV {
				maxV = v
			}
		}
		var flat []graph.Edge
		for e := range edges {
			flat = append(flat, e)
		}
		cur := graph.FromEdges(maxV, flat)
		for _, q := range wave.Queries {
			out = append(out, oracle.Count(cur, query.Query{S: q.S, T: q.T, K: q.K}))
		}
	}
	return out, nil
}
