package scenario

import (
	"bytes"
	"errors"
	"flag"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/batchenum"
	"repro/internal/planner"
	"repro/internal/service"
)

// -update regenerates the committed scenario files from their stamped
// generator inputs (see CONTRIBUTING.md on recording new scenarios).
var update = flag.Bool("update", false, "rewrite testdata scenario files")

// golden is the committed corpus: one scenario per testgraphs family,
// each stamped with the generator inputs that reproduce it.
var golden = []struct {
	file     string
	graphKey string
	seed     int64
	waves    int
}{
	{"paper-1.scenario", "paper", 1, 8},
	{"completeDAG7-2.scenario", "completeDAG:7", 2, 6},
	{"cycle8-3.scenario", "cycle:8", 3, 6},
	{"line12-4.scenario", "line:12", 4, 5},
}

func goldenPath(file string) string { return filepath.Join("testdata", file) }

// TestGenerateRoundTrip: Encode then Parse is the identity, so a
// recorded file loses nothing.
func TestGenerateRoundTrip(t *testing.T) {
	sc, err := Generate("paper", 99, 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sc.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, back) {
		t.Fatalf("round trip diverged:\n%+v\nvs\n%+v", sc, back)
	}
}

// TestGoldenFilesReproducible: every committed scenario file is exactly
// what its seed stamp regenerates — replays are reproducible from the
// stamp alone, and any generator change forces a deliberate -update.
func TestGoldenFilesReproducible(t *testing.T) {
	for _, g := range golden {
		t.Run(g.file, func(t *testing.T) {
			want, err := Generate(g.graphKey, g.seed, g.waves)
			if err != nil {
				t.Fatal(err)
			}
			if *update {
				if err := want.WriteFile(goldenPath(g.file)); err != nil {
					t.Fatal(err)
				}
				return
			}
			got, err := Load(goldenPath(g.file))
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/scenario -update` to record)", err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("committed scenario diverges from its seed stamp; regenerate with -update")
			}
		})
	}
}

// replayCfg builds the service configuration of one differential arm.
func replayCfg(plan *planner.Options) service.Config {
	return service.Config{
		MaxBatch: 16,
		MaxWait:  2 * time.Millisecond,
		Engine:   batchenum.Options{Algorithm: batchenum.BatchPlus},
		Workers:  4,
		Plan:     plan,
	}
}

// TestScenarioDifferentialOracle is the harness's reason to exist: on
// every committed scenario — bursts, hostile hop caps, live updates —
// the planned service, an aggressively planned service (thresholds
// forced low so single/splice routes actually fire), and the fixed
// BatchEnum+ service must all return the brute-force oracle's count for
// every query at its wave's graph version. Run under -race this also
// proves the planner's concurrent paths clean.
func TestScenarioDifferentialOracle(t *testing.T) {
	arms := []struct {
		name string
		cfg  service.Config
	}{
		{"fixed", replayCfg(nil)},
		{"planned", replayCfg(&planner.Options{})},
		{"planned-aggressive", replayCfg(&planner.Options{MinSimilarity: 0.01, SpliceQueries: 2})},
	}
	for _, g := range golden {
		t.Run(g.file, func(t *testing.T) {
			sc, err := Load(goldenPath(g.file))
			if err != nil {
				t.Fatal(err)
			}
			want, err := Oracle(sc)
			if err != nil {
				t.Fatal(err)
			}
			for _, arm := range arms {
				res, err := Replay(sc, arm.cfg)
				if err != nil {
					t.Fatalf("%s: %v", arm.name, err)
				}
				if len(res.Counts) != len(want) {
					t.Fatalf("%s: %d counts, want %d", arm.name, len(res.Counts), len(want))
				}
				for i := range want {
					if res.Errs[i] != nil {
						t.Errorf("%s: query %d failed: %v", arm.name, i, res.Errs[i])
						continue
					}
					if res.Counts[i] != want[i] {
						t.Errorf("%s: query %d count %d, oracle %d", arm.name, i, res.Counts[i], want[i])
					}
				}
				if res.Totals.Queries != int64(sc.NumQueries()) {
					t.Errorf("%s: service answered %d queries, scenario holds %d",
						arm.name, res.Totals.Queries, sc.NumQueries())
				}
			}
		})
	}
}

// TestReplayWithAdmissionControl replays a burst-heavy scenario through
// a service with tight admission bounds and per-caller quotas: shed
// queries report ErrOverloaded, and — the no-drop contract — every
// query the service admitted still matches the oracle.
func TestReplayWithAdmissionControl(t *testing.T) {
	sc, err := Load(goldenPath("paper-1.scenario"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Oracle(sc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := replayCfg(&planner.Options{})
	cfg.MaxInFlight = 1
	cfg.MaxQueued = 2
	cfg.MaxPerCaller = 2
	res, err := Replay(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shed := 0
	for i := range want {
		if res.Errs[i] != nil {
			if !errors.Is(res.Errs[i], service.ErrOverloaded) {
				t.Errorf("query %d: non-overload error %v", i, res.Errs[i])
			}
			shed++
			continue
		}
		if res.Counts[i] != want[i] {
			t.Errorf("admitted query %d count %d, oracle %d", i, res.Counts[i], want[i])
		}
	}
	if int64(shed) != res.Totals.Shed {
		t.Errorf("observed %d sheds, Totals.Shed = %d", shed, res.Totals.Shed)
	}
	if res.Totals.Queries+res.Totals.Shed != int64(sc.NumQueries()) {
		t.Errorf("answered %d + shed %d ≠ %d submitted",
			res.Totals.Queries, res.Totals.Shed, sc.NumQueries())
	}
}
