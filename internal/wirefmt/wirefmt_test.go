package wirefmt

import (
	"errors"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var b []byte
	b = AppendU8(b, 0xAB)
	b = AppendU16(b, 0xBEEF)
	b = AppendU32(b, 0xDEADBEEF)
	b = AppendU64(b, 1<<63+5)
	b = AppendI64(b, -42)
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendBytes(b, []byte{1, 2, 3})
	b = AppendString(b, "héllo")

	r := NewReader(b)
	if v := r.U8(); v != 0xAB {
		t.Errorf("U8 = %#x", v)
	}
	if v := r.U16(); v != 0xBEEF {
		t.Errorf("U16 = %#x", v)
	}
	if v := r.U32(); v != 0xDEADBEEF {
		t.Errorf("U32 = %#x", v)
	}
	if v := r.U64(); v != 1<<63+5 {
		t.Errorf("U64 = %d", v)
	}
	if v := r.I64(); v != -42 {
		t.Errorf("I64 = %d", v)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool pair mis-decoded")
	}
	if v := r.Bytes(); len(v) != 3 || v[0] != 1 || v[2] != 3 {
		t.Errorf("Bytes = %v", v)
	}
	if v := r.String(); v != "héllo" {
		t.Errorf("String = %q", v)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestReaderLatchesShort proves the WAL-decoder contract: the first
// out-of-bounds read latches ErrShort, every later read returns zero,
// and no read panics.
func TestReaderLatchesShort(t *testing.T) {
	r := NewReader(AppendU16(nil, 7))
	r.U16()
	if r.U64() != 0 {
		t.Error("read past end returned nonzero")
	}
	if !errors.Is(r.Err(), ErrShort) {
		t.Fatalf("Err() = %v, want ErrShort", r.Err())
	}
	// Still latched: in-bounds-looking reads keep returning zero.
	if r.U8() != 0 || r.Bytes() != nil || r.String() != "" {
		t.Error("latched reader yielded data")
	}
	if !errors.Is(r.Close(), ErrShort) {
		t.Errorf("Close() = %v, want ErrShort", r.Close())
	}
}

func TestCloseRejectsTrailingBytes(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	r.U8()
	if err := r.Close(); err == nil {
		t.Fatal("Close accepted 2 trailing bytes")
	}
}

// TestBytesBoundsCheckedBeforeAllocation feeds a length prefix claiming
// far more data than the payload holds: the reader must latch ErrShort,
// not allocate the claimed size.
func TestBytesBoundsCheckedBeforeAllocation(t *testing.T) {
	r := NewReader(AppendU32(nil, 1<<31))
	if b := r.Bytes(); b != nil {
		t.Fatalf("Bytes returned %d bytes", len(b))
	}
	if !errors.Is(r.Err(), ErrShort) {
		t.Fatalf("Err() = %v, want ErrShort", r.Err())
	}
}

func TestFailLatches(t *testing.T) {
	sentinel := errors.New("bounds check failed")
	r := NewReader(AppendU32(nil, 9))
	r.Fail(sentinel)
	if r.U32() != 0 {
		t.Error("failed reader yielded data")
	}
	if !errors.Is(r.Err(), sentinel) {
		t.Fatalf("Err() = %v, want the sentinel", r.Err())
	}
	// The first latch wins; a later Fail must not overwrite it.
	r.Fail(errors.New("other"))
	if !errors.Is(r.Err(), sentinel) {
		t.Fatalf("Err() = %v after second Fail, want the sentinel", r.Err())
	}
	// Fail(nil) defaults to ErrShort.
	r2 := NewReader(nil)
	r2.Fail(nil)
	if !errors.Is(r2.Err(), ErrShort) {
		t.Fatalf("Fail(nil): Err() = %v, want ErrShort", r2.Err())
	}
}

// TestStringTruncatesAt64K pins the AppendString contract: oversized
// strings are cut at the u16 limit, never silently wrapped.
func TestStringTruncatesAt64K(t *testing.T) {
	in := strings.Repeat("x", 1<<17)
	r := NewReader(AppendString(nil, in))
	got := r.String()
	if len(got) != 1<<16-1 {
		t.Fatalf("decoded %d bytes, want %d", len(got), 1<<16-1)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
