// Package wirefmt holds the primitive little-endian append/read pairs
// shared by the sharded deployment's wire encodings: fixed-width
// integers, bools, and length-prefixed byte strings. The framing layer
// (internal/shard) owns message boundaries and integrity (length
// prefix + CRC); this package only lays fields out inside a frame, so
// every encoding in the repository agrees on byte order and the
// decoders never panic on short or corrupt input — a Reader latches
// its first error and reads zeros from then on, WAL-decoder style.
package wirefmt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrShort is the latched error of a Reader that ran past the end of
// its buffer: the frame was shorter than its encoding claims.
var ErrShort = errors.New("wirefmt: truncated payload")

// Append helpers: each appends one field to dst and returns the
// extended slice, so encoders compose with zero intermediate copies.

func AppendU8(dst []byte, v uint8) []byte   { return append(dst, v) }
func AppendU16(dst []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(dst, v) }
func AppendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }
func AppendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }
func AppendI64(dst []byte, v int64) []byte  { return AppendU64(dst, uint64(v)) }

func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendBytes appends b with a u32 length prefix.
func AppendBytes(dst, b []byte) []byte {
	dst = AppendU32(dst, uint32(len(b)))
	return append(dst, b...)
}

// AppendString appends s with a u16 length prefix, truncating at 64 KiB
// — strings on this wire are error messages and caller tags, never
// payload data.
func AppendString(dst []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	dst = AppendU16(dst, uint16(len(s)))
	return append(dst, s...)
}

// Reader consumes a payload field by field. The zero value over a byte
// slice is ready to use; after the first short read every subsequent
// read returns zero and Err reports ErrShort, so decoders can run
// straight-line and check once at the end.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over b. The slice is aliased, not copied.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the latched decoding error, nil if every read so far was
// in bounds.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// Close verifies the payload was consumed exactly: it returns the
// latched error, or an error if trailing bytes remain. Decoders call
// it last so a frame that is too long is as corrupt as one too short.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("wirefmt: %d trailing bytes after payload", len(r.b)-r.off)
	}
	return nil
}

// Fail latches err — ErrShort when nil — so every later read returns
// zero and Err/Close report the failure. Decoders use it to reject a
// payload whose claimed element count exceeds the bytes that remain,
// before any allocation sized by that count.
func (r *Reader) Fail(err error) {
	if r.err == nil {
		if err == nil {
			err = ErrShort
		}
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b)-r.off < n {
		r.err = ErrShort
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *Reader) I64() int64 { return int64(r.U64()) }

func (r *Reader) Bool() bool { return r.U8() != 0 }

// Bytes reads a u32-length-prefixed byte string. The result aliases
// the underlying buffer. A length running past the payload end latches
// ErrShort, so a corrupt prefix cannot force a huge allocation.
func (r *Reader) Bytes() []byte {
	n := int(r.U32())
	if r.err != nil {
		return nil
	}
	return r.take(n)
}

// String reads a u16-length-prefixed string.
func (r *Reader) String() string {
	n := int(r.U16())
	if r.err != nil {
		return ""
	}
	return string(r.take(n))
}
