package msbfs

import (
	"sync"
	"testing"

	"repro/internal/graph"
)

// benchGraph is a mid-size community graph shared by the benchmarks.
var benchGraph = graph.GenCommunityPowerLaw(20000, 200, 6, 0.97, 3)

// benchReverse lazily builds benchGraph's reverse for the pull-enabled
// variants, outside any timed region.
var benchReverse = sync.OnceValue(func() *graph.Graph { return benchGraph.Reverse() })

// benchDense is a dense Erdős–Rényi graph (avg out-degree 50) whose
// middle BFS levels cross the Beamer threshold, exercising the pull
// direction the community graph's sparse frontiers never reach.
var benchDense = sync.OnceValue(func() *graph.Graph { return graph.GenErdosRenyi(4000, 200000, 7) })

// benchSources picks spread-out sources with cap 6 on g.
func benchSourcesOn(g *graph.Graph, nSrc int) ([]graph.VertexID, []uint8) {
	n := g.NumVertices()
	sources := make([]graph.VertexID, nSrc)
	caps := make([]uint8, nSrc)
	for i := range sources {
		sources[i] = graph.VertexID(i * (n / nSrc))
		caps[i] = 6
	}
	return sources, caps
}

func benchSources() ([]graph.VertexID, []uint8) { return benchSourcesOn(benchGraph, 128) }

// BenchmarkMultiSource measures the bit-parallel 64-way BFS, the index
// construction path of every engine (Then et al. [36]): the sequential
// reference kernel, the parallel direction-optimizing engine, and the
// parallel engine on a dense graph where the Beamer heuristic selects
// pull for the fat middle levels.
func BenchmarkMultiSource(b *testing.B) {
	// run measures one configuration with the pool pre-warmed by an
	// untimed iteration, so allocs/op reports the steady state rather
	// than warm-up amortised over whatever b.N the timer picked.
	run := func(g *graph.Graph, sources []graph.VertexID, caps []uint8, opt BuildOptions) func(*testing.B) {
		return func(b *testing.B) {
			pool := NewPool(g.NumVertices())
			for _, dm := range MultiSourceOpts(g, sources, caps, pool, opt) {
				dm.Release()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, dm := range MultiSourceOpts(g, sources, caps, pool, opt) {
					dm.Release()
				}
			}
		}
	}
	sources, caps := benchSources()
	b.Run("Seq", run(benchGraph, sources, caps, BuildOptions{}))
	b.Run("Par", run(benchGraph, sources, caps, BuildOptions{Workers: 4, Reverse: benchReverse()}))
	dense := benchDense()
	denseSources, denseCaps := benchSourcesOn(dense, 64)
	b.Run("PullDense", run(dense, denseSources, denseCaps, BuildOptions{Workers: 4, Reverse: dense.Reverse()}))
}

// BenchmarkRepeatedSingle is the ablation: the same work as
// BenchmarkMultiSource but one BFS per source, quantifying the gain of
// sharing adjacency scans across 64 concurrent searches.
func BenchmarkRepeatedSingle(b *testing.B) {
	sources, caps := benchSources()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, s := range sources {
			Single(benchGraph, s, caps[j])
		}
	}
}

// BenchmarkFullDistances measures the unbounded oracle BFS.
func BenchmarkFullDistances(b *testing.B) {
	for i := 0; i < b.N; i++ {
		FullDistances(benchGraph, 0)
	}
}
