package msbfs

import (
	"testing"

	"repro/internal/graph"
)

// benchGraph is a mid-size community graph shared by the benchmarks.
var benchGraph = graph.GenCommunityPowerLaw(20000, 200, 6, 0.97, 3)

// benchSources picks 128 spread-out sources with cap 6.
func benchSources() ([]graph.VertexID, []uint8) {
	n := benchGraph.NumVertices()
	sources := make([]graph.VertexID, 128)
	caps := make([]uint8, 128)
	for i := range sources {
		sources[i] = graph.VertexID(i * (n / 128))
		caps[i] = 6
	}
	return sources, caps
}

// BenchmarkMultiSource measures the bit-parallel 64-way BFS, the index
// construction path of every engine (Then et al. [36]).
func BenchmarkMultiSource(b *testing.B) {
	sources, caps := benchSources()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MultiSource(benchGraph, sources, caps)
	}
}

// BenchmarkRepeatedSingle is the ablation: the same work as
// BenchmarkMultiSource but one BFS per source, quantifying the gain of
// sharing adjacency scans across 64 concurrent searches.
func BenchmarkRepeatedSingle(b *testing.B) {
	sources, caps := benchSources()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, s := range sources {
			Single(benchGraph, s, caps[j])
		}
	}
}

// BenchmarkFullDistances measures the unbounded oracle BFS.
func BenchmarkFullDistances(b *testing.B) {
	for i := 0; i < b.N; i++ {
		FullDistances(benchGraph, 0)
	}
}
