package msbfs

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/testgraphs"
)

// naiveBounded is the oracle: plain BFS capped at depth.
func naiveBounded(g *graph.Graph, src graph.VertexID, cap uint8) map[graph.VertexID]uint8 {
	dist := map[graph.VertexID]uint8{src: 0}
	frontier := []graph.VertexID{src}
	for d := uint8(1); d <= cap && len(frontier) > 0; d++ {
		var next []graph.VertexID
		for _, v := range frontier {
			for _, w := range g.OutNeighbors(v) {
				if _, ok := dist[w]; !ok {
					dist[w] = d
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return dist
}

func paperGraph() *graph.Graph { return testgraphs.Paper() }

func TestSingleAgainstOracle(t *testing.T) {
	g := paperGraph()
	for src := 0; src < g.NumVertices(); src++ {
		for cap := uint8(0); cap <= 6; cap++ {
			got := Single(g, graph.VertexID(src), cap)
			want := naiveBounded(g, graph.VertexID(src), cap)
			if len(got.Visited()) != len(want) {
				t.Fatalf("src=%d cap=%d: visited %d want %d", src, cap, len(got.Visited()), len(want))
			}
			for v, d := range want {
				if got.Dist(v) != d {
					t.Fatalf("src=%d cap=%d v=%d: dist %d want %d", src, cap, v, got.Dist(v), d)
				}
			}
		}
	}
}

func TestPaperFig2Index(t *testing.T) {
	// Fig. 2(b): backward distances to v14 on Gr.
	// dist(v6,v14)=1, dist(v3,v14)=2, dist(v15,v14)=2, dist(v9,v14)=3, dist(v4,v14)=4.
	gr := paperGraph().Reverse()
	d := Single(gr, 14, 4)
	want := map[graph.VertexID]uint8{6: 1, 3: 2, 15: 2, 9: 3, 4: 4}
	for v, dv := range want {
		if d.Dist(v) != dv {
			t.Errorf("dist(v%d, v14) = %d, want %d", v, d.Dist(v), dv)
		}
	}
}

func TestMultiSourceMatchesSingles(t *testing.T) {
	g := graph.GenPowerLaw(400, 3, 5)
	rng := rand.New(rand.NewSource(99))
	// 130 sources spans three 64-bit chunks; varied caps.
	var sources []graph.VertexID
	var caps []uint8
	for i := 0; i < 130; i++ {
		sources = append(sources, graph.VertexID(rng.Intn(g.NumVertices())))
		caps = append(caps, uint8(rng.Intn(6)))
	}
	got := MultiSource(g, sources, caps)
	for i := range sources {
		want := Single(g, sources[i], caps[i])
		if got[i].Source != sources[i] || got[i].Cap != caps[i] {
			t.Fatalf("result %d misaligned", i)
		}
		if got[i].NumVisited() != want.NumVisited() {
			t.Fatalf("source %d: |Γ|=%d want %d", i, got[i].NumVisited(), want.NumVisited())
		}
		for _, v := range want.Visited() {
			if got[i].Dist(v) != want.Dist(v) {
				t.Fatalf("source %d vertex %d: %d want %d", i, v, got[i].Dist(v), want.Dist(v))
			}
		}
	}
}

func TestMultiSourceDuplicateSources(t *testing.T) {
	g := paperGraph()
	res := MultiSource(g,
		[]graph.VertexID{0, 0, 0},
		[]uint8{3, 3, 1})
	if res[0].NumVisited() != res[1].NumVisited() {
		t.Fatal("duplicate sources with equal caps differ")
	}
	if res[2].NumVisited() >= res[0].NumVisited() {
		t.Fatal("smaller cap should visit fewer vertices")
	}
	for _, v := range res[2].Visited() {
		if res[2].Dist(v) != res[0].Dist(v) {
			t.Fatalf("dup sources disagree on v=%d", v)
		}
	}
}

func TestCapZero(t *testing.T) {
	g := paperGraph()
	d := Single(g, 0, 0)
	if d.NumVisited() != 1 || d.Dist(0) != 0 {
		t.Fatalf("cap=0 should visit only the source: %v", d.Visited())
	}
	if d.Dist(1) != Unreachable {
		t.Fatal("neighbour should be unreachable at cap 0")
	}
}

func TestVisitedSorted(t *testing.T) {
	g := graph.GenErdosRenyi(300, 2000, 4)
	d := Single(g, 7, 4)
	vs := d.Visited()
	if !sort.SliceIsSorted(vs, func(i, j int) bool { return vs[i] < vs[j] }) {
		t.Fatal("Visited() not sorted")
	}
	seen := map[graph.VertexID]bool{}
	for _, v := range vs {
		if seen[v] {
			t.Fatalf("duplicate vertex %d in Visited()", v)
		}
		seen[v] = true
	}
}

func TestIsolatedSource(t *testing.T) {
	g := graph.FromEdges(5, []graph.Edge{{Src: 1, Dst: 2}})
	d := Single(g, 0, 5)
	if d.NumVisited() != 1 {
		t.Fatalf("isolated source visited %d", d.NumVisited())
	}
}

func TestFullDistances(t *testing.T) {
	g := paperGraph()
	dist := FullDistances(g, 0)
	if dist[0] != 0 || dist[1] != 1 || dist[9] != 2 || dist[14] != 5 {
		t.Fatalf("full distances wrong: %v", dist)
	}
	if dist[2] != Unreachable || dist[5] != Unreachable {
		t.Fatal("v2/v5 should be unreachable from v0")
	}
}

func TestQuickMultiVsOracle(t *testing.T) {
	f := func(seed int64, nSrcRaw uint8) bool {
		g := graph.GenRandom(60, 3, seed)
		rng := rand.New(rand.NewSource(seed + 1))
		nSrc := int(nSrcRaw%80) + 1
		var sources []graph.VertexID
		var caps []uint8
		for i := 0; i < nSrc; i++ {
			sources = append(sources, graph.VertexID(rng.Intn(60)))
			caps = append(caps, uint8(rng.Intn(5)))
		}
		res := MultiSource(g, sources, caps)
		for i := range sources {
			want := naiveBounded(g, sources[i], caps[i])
			if res[i].NumVisited() != len(want) {
				return false
			}
			for v, d := range want {
				if res[i].Dist(v) != d {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLenMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on mismatched lengths")
		}
	}()
	MultiSource(paperGraph(), []graph.VertexID{0, 1}, []uint8{3})
}
