// Package msbfs implements hop-bounded breadth-first searches, including
// the bit-parallel multi-source BFS of Then et al. (VLDB'15) that the
// paper uses for index construction ("we implement their index
// construction following the state-of-the-art multi-source BFSs [36]").
//
// Sources are processed in chunks of 64 so that one machine word carries
// the frontier membership of a whole chunk; a single pass over the
// adjacency lists advances 64 BFSs at once. Each source carries its own
// depth cap (the hop constraint k of its query), enforced with per-level
// bit masks.
package msbfs

import (
	"math/bits"
	"slices"

	"repro/internal/graph"
)

// Unreachable is the distance reported for vertices outside a source's
// hop-bounded reach.
const Unreachable = ^uint8(0)

// DistMap holds the hop-bounded BFS result for one source: the distance
// to every vertex within Cap hops, and the visited vertex set (the
// hop-constrained neighbours Γ of Def. 4.4).
//
// Distances live in a dense per-source array: Dist sits on the hot path
// of every enumeration prune check (Lemma 3.1 fires once per candidate
// expansion), where a hash-map lookup would dominate the whole engine.
// The n-byte array per source is the price; at the batch sizes of the
// paper's workloads (hundreds of sources) it stays in the tens of MB.
type DistMap struct {
	Source graph.VertexID
	Cap    uint8

	dist    []uint8          // len n; Unreachable where unvisited
	visited []graph.VertexID // sorted ascending
}

// Dist returns the shortest-path distance from the source to v, or
// Unreachable if v is farther than Cap hops (or disconnected).
func (d *DistMap) Dist(v graph.VertexID) uint8 {
	return d.dist[v]
}

// Contains reports whether v is within Cap hops of the source, i.e.
// v ∈ Γ. It is the O(1) membership probe the similarity estimator uses.
func (d *DistMap) Contains(v graph.VertexID) bool {
	return d.dist[v] != Unreachable
}

// Visited returns the sorted set of vertices within Cap hops of the
// source (including the source itself). The slice aliases internal
// storage and must not be modified.
func (d *DistMap) Visited() []graph.VertexID { return d.visited }

// NumVisited returns |Γ|.
func (d *DistMap) NumVisited() int { return len(d.visited) }

// MultiSource runs hop-bounded BFSs from every source concurrently using
// 64-way bit parallelism. caps[i] is the depth bound for sources[i];
// len(caps) must equal len(sources). Results are positionally aligned
// with sources. Duplicate sources are allowed (each gets its own result).
func MultiSource(g *graph.Graph, sources []graph.VertexID, caps []uint8) []*DistMap {
	if len(sources) != len(caps) {
		panic("msbfs: len(sources) != len(caps)")
	}
	results := make([]*DistMap, len(sources))
	for lo := 0; lo < len(sources); lo += 64 {
		hi := lo + 64
		if hi > len(sources) {
			hi = len(sources)
		}
		chunkRun(g, sources[lo:hi], caps[lo:hi], results[lo:hi])
	}
	return results
}

// chunkRun advances up to 64 bounded BFSs simultaneously.
func chunkRun(g *graph.Graph, sources []graph.VertexID, caps []uint8, out []*DistMap) {
	n := g.NumVertices()
	k := len(sources)
	maxCap := uint8(0)
	// One flat allocation for all k distance arrays of the chunk.
	flat := make([]uint8, k*n)
	for i := range flat {
		flat[i] = Unreachable
	}
	for i := 0; i < k; i++ {
		out[i] = &DistMap{
			Source: sources[i],
			Cap:    caps[i],
			dist:   flat[i*n : (i+1)*n],
		}
		if caps[i] > maxCap {
			maxCap = caps[i]
		}
	}
	seen := make([]uint64, n)
	frontier := make([]uint64, n)
	next := make([]uint64, n)
	var frontierVerts, nextVerts []graph.VertexID

	record := func(v graph.VertexID, bits uint64, depth uint8) {
		for bits != 0 {
			slot := trailingZeros(bits)
			bits &= bits - 1
			out[slot].dist[v] = depth
			out[slot].visited = append(out[slot].visited, v)
		}
	}

	// Level 0: each source visits itself. Identical sources share a
	// vertex word, which is fine — their bits simply travel together.
	for i, s := range sources {
		bit := uint64(1) << uint(i)
		if seen[s]&bit == 0 {
			seen[s] |= bit
			frontier[s] |= bit
		}
		out[i].dist[s] = 0
		out[i].visited = append(out[i].visited, s)
	}
	for _, s := range sources {
		if frontier[s] != 0 {
			frontierVerts = append(frontierVerts, s)
		}
	}
	frontierVerts = dedupVerts(frontierVerts)

	for depth := uint8(1); depth <= maxCap && len(frontierVerts) > 0; depth++ {
		// Only sources whose cap allows another hop keep propagating.
		var active uint64
		for i := 0; i < k; i++ {
			if caps[i] >= depth {
				active |= uint64(1) << uint(i)
			}
		}
		for _, v := range frontierVerts {
			fb := frontier[v] & active
			frontier[v] = 0
			if fb == 0 {
				continue
			}
			for _, w := range g.OutNeighbors(v) {
				fresh := fb &^ seen[w]
				if fresh == 0 {
					continue
				}
				if next[w] == 0 {
					nextVerts = append(nextVerts, w)
				}
				next[w] |= fresh
				seen[w] |= fresh
			}
		}
		for _, w := range nextVerts {
			record(w, next[w], depth)
		}
		frontier, next = next, frontier
		frontierVerts = frontierVerts[:0]
		frontierVerts, nextVerts = nextVerts, frontierVerts
	}
	for i := range out {
		sortVerts(out[i].visited)
	}
}

// Single runs one hop-bounded BFS; it is MultiSource with a single
// source but avoids the chunk bookkeeping in tests and tools.
func Single(g *graph.Graph, source graph.VertexID, cap uint8) *DistMap {
	return MultiSource(g, []graph.VertexID{source}, []uint8{cap})[0]
}

// FullDistances computes exact unbounded shortest distances from source
// to every vertex with a plain queue BFS; unreachable entries are
// Unreachable. Used as a test oracle and by the KSP baselines. Distances
// beyond 254 saturate.
func FullDistances(g *graph.Graph, source graph.VertexID) []uint8 {
	n := g.NumVertices()
	dist := make([]uint8, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[source] = 0
	queue := []graph.VertexID{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dv := dist[v]
		nd := dv + 1
		if nd == Unreachable {
			nd = Unreachable - 1 // saturate
		}
		for _, w := range g.OutNeighbors(v) {
			if dist[w] == Unreachable {
				dist[w] = nd
				queue = append(queue, w)
			}
		}
	}
	return dist
}

func dedupVerts(vs []graph.VertexID) []graph.VertexID {
	sortVerts(vs)
	outIdx := 0
	for i, v := range vs {
		if i == 0 || v != vs[outIdx-1] {
			vs[outIdx] = v
			outIdx++
		}
	}
	return vs[:outIdx]
}

func sortVerts(vs []graph.VertexID) {
	slices.Sort(vs)
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }
