// Package msbfs implements hop-bounded breadth-first searches, including
// the bit-parallel multi-source BFS of Then et al. (VLDB'15) that the
// paper uses for index construction ("we implement their index
// construction following the state-of-the-art multi-source BFSs [36]").
//
// Sources are processed in chunks of 64 so that one machine word carries
// the frontier membership of a whole chunk; a single pass over the
// adjacency lists advances 64 BFSs at once. Each source carries its own
// depth cap (the hop constraint k of its query), enforced with per-level
// bit masks.
package msbfs

import (
	"fmt"
	"math/bits"
	"slices"
	"sync"

	"repro/internal/graph"
)

// FromVisited reconstructs an unpooled DistMap from its portable
// contents: the source, the hop cap, the dense-array length n (the
// graph's vertex count on the producing side), and the parallel
// visited/dists slices — visited[i] at distance dists[i] from source.
// The shard wire layer uses it to rebuild a worker's map on the far
// side of a connection, so the inputs are validated rather than
// trusted: visited must be sorted ascending, in range, and no entry may
// exceed cap. The visited slice is retained; dists is only read.
func FromVisited(source graph.VertexID, cap uint8, n int, visited []graph.VertexID, dists []uint8) (*DistMap, error) {
	if len(visited) != len(dists) {
		return nil, fmt.Errorf("msbfs: %d visited vertices with %d distances", len(visited), len(dists))
	}
	dist := make([]uint8, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	for i, v := range visited {
		if int(v) >= n {
			return nil, fmt.Errorf("msbfs: visited vertex %d out of range (n=%d)", v, n)
		}
		if i > 0 && visited[i-1] >= v {
			return nil, fmt.Errorf("msbfs: visited set not sorted at index %d", i)
		}
		if dists[i] > cap {
			return nil, fmt.Errorf("msbfs: visited vertex %d at distance %d beyond cap %d", v, dists[i], cap)
		}
		dist[v] = dists[i]
	}
	return &DistMap{Source: source, Cap: cap, dist: dist, visited: visited}, nil
}

// Unreachable is the distance reported for vertices outside a source's
// hop-bounded reach.
const Unreachable = ^uint8(0)

// DistMap holds the hop-bounded BFS result for one source: the distance
// to every vertex within Cap hops, and the visited vertex set (the
// hop-constrained neighbours Γ of Def. 4.4).
//
// Distances live in a dense per-source array: Dist sits on the hot path
// of every enumeration prune check (Lemma 3.1 fires once per candidate
// expansion), where a hash-map lookup would dominate the whole engine.
// The n-byte array per source is the price; at the batch sizes of the
// paper's workloads (hundreds of sources) it stays in the tens of MB.
type DistMap struct {
	Source graph.VertexID
	Cap    uint8

	dist    []uint8          // len n; Unreachable where unvisited
	visited []graph.VertexID // sorted ascending
	pool    *Pool            // nil for unpooled maps and views
}

// Dist returns the shortest-path distance from the source to v, or
// Unreachable if v is farther than Cap hops (or disconnected). The Cap
// comparison makes thresholded Views work on shared storage: a view's
// dist array may hold distances beyond its Cap (written by the wider
// parent map), and they must read as Unreachable.
//
//hcpath:noalloc
func (d *DistMap) Dist(v graph.VertexID) uint8 {
	if dv := d.dist[v]; dv <= d.Cap {
		return dv
	}
	return Unreachable
}

// Contains reports whether v is within Cap hops of the source, i.e.
// v ∈ Γ. It is the O(1) membership probe the similarity estimator uses.
// The explicit Unreachable test matters at Cap = 255, where the Cap
// comparison alone would admit unvisited vertices.
//
//hcpath:noalloc
func (d *DistMap) Contains(v graph.VertexID) bool {
	dv := d.dist[v]
	return dv != Unreachable && dv <= d.Cap
}

// Visited returns the sorted set of vertices within Cap hops of the
// source (including the source itself). The slice aliases internal
// storage and must not be modified.
func (d *DistMap) Visited() []graph.VertexID { return d.visited }

// NumVisited returns |Γ|.
func (d *DistMap) NumVisited() int { return len(d.visited) }

// View returns a map equivalent to a fresh BFS from the same source
// bounded at cap ≤ d.Cap: the dense array is shared (Dist thresholds on
// Cap) and the visited set is filtered once here. A cached index entry
// built at a larger cap can thus serve any narrower query without a
// traversal. The view aliases d's storage: it must not outlive d's
// release, and Release on the view itself is a no-op.
func (d *DistMap) View(cap uint8) *DistMap {
	if cap >= d.Cap {
		return d
	}
	vis := make([]graph.VertexID, 0, len(d.visited))
	for _, v := range d.visited {
		if d.dist[v] <= cap {
			vis = append(vis, v)
		}
	}
	return &DistMap{Source: d.Source, Cap: cap, dist: d.dist, visited: vis}
}

// Release returns a pooled map's storage to its Pool for reuse; for
// unpooled maps and views it is a no-op. The dense array is reset
// sparsely — only the visited entries are cleared, far cheaper than an
// n-byte memset when |Γ| ≪ n — restoring the pool's all-Unreachable
// invariant. The map must not be used afterwards.
//
//hcpath:noalloc
func (d *DistMap) Release() {
	p := d.pool
	if p == nil {
		return
	}
	d.pool = nil
	for _, v := range d.visited {
		d.dist[v] = Unreachable
	}
	p.put(d.dist, d.visited[:0])
	d.dist, d.visited = nil, nil
}

// Pool recycles the dense per-source distance arrays (and visited
// slices) of DistMaps for one graph size, killing the n-byte-per-source
// allocation churn of repeated index builds. Free arrays are kept clean
// (every entry Unreachable), so acquisition skips the initialising
// memset too. The pool also recycles per-chunk traversal scratch —
// the seen/frontier/next bit-word arrays and the pre-sized flat
// frontier vertex arrays — so chunkRun neither reallocates nor grows
// them by append on every build. All methods are safe for concurrent
// use, which is what lets independent 64-source chunks build
// concurrently against one pool.
type Pool struct {
	n int

	mu      sync.Mutex
	dists   [][]uint8          // all entries Unreachable
	visited [][]graph.VertexID // len 0, capacity retained
	scratch []*chunkScratch    // all words zero, vert slices len 0
	allocs  int64
}

// NewPool returns a pool of distance arrays for graphs of n vertices.
func NewPool(n int) *Pool { return &Pool{n: n} }

// NumVertices returns the vertex count the pool's arrays are sized for.
func (p *Pool) NumVertices() int { return p.n }

// Allocs returns how many dense arrays the pool has ever allocated —
// the steady state of a well-sized workload stops growing it.
func (p *Pool) Allocs() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.allocs
}

// get hands out k clean dist arrays and up to k recycled visited
// slices (missing ones are nil). Only the free-list pops happen under
// the mutex; allocating and memsetting the shortfall — n bytes per
// array — runs outside it, so concurrent cold builds don't serialise
// on the lock.
func (p *Pool) get(k int) (dists [][]uint8, visited [][]graph.VertexID) {
	dists = make([][]uint8, 0, k)
	visited = make([][]graph.VertexID, k)
	p.mu.Lock()
	for len(dists) < k && len(p.dists) > 0 {
		l := len(p.dists) - 1
		dists = append(dists, p.dists[l])
		p.dists = p.dists[:l]
	}
	for i := 0; i < k && len(p.visited) > 0; i++ {
		l := len(p.visited) - 1
		visited[i] = p.visited[l]
		p.visited = p.visited[:l]
	}
	p.allocs += int64(k - len(dists))
	p.mu.Unlock()
	for len(dists) < k {
		d := make([]uint8, p.n)
		for i := range d {
			d[i] = Unreachable
		}
		dists = append(dists, d)
	}
	return dists, visited
}

//hcpath:noalloc
func (p *Pool) put(dist []uint8, visited []graph.VertexID) {
	p.mu.Lock()
	p.dists = append(p.dists, dist)
	p.visited = append(p.visited, visited)
	p.mu.Unlock()
}

// chunkScratch is the per-chunk traversal state: one uint64 word per
// vertex for the seen/frontier/next bit sets, one mark bit per vertex
// for the next-frontier membership bitmap the parallel repack scans,
// and two flat vertex arrays pre-sized to n so the level loop never
// grows them by append. Free scratch is kept clean (words zero, vert
// slices length 0); chunkRun restores that invariant sparsely before
// returning it.
type chunkScratch struct {
	seen, frontier, next []uint64
	marks                []uint64 // ⌈n/64⌉ words
	frontierVerts        []graph.VertexID
	nextVerts            []graph.VertexID
}

func newChunkScratch(n int) *chunkScratch {
	return &chunkScratch{
		seen:          make([]uint64, n),
		frontier:      make([]uint64, n),
		next:          make([]uint64, n),
		marks:         make([]uint64, (n+63)/64),
		frontierVerts: make([]graph.VertexID, 0, n),
		nextVerts:     make([]graph.VertexID, 0, n),
	}
}

// acquireScratch hands out clean chunk scratch: pooled when p is
// non-nil, freshly allocated otherwise.
func acquireScratch(p *Pool, n int) *chunkScratch {
	if p == nil {
		return newChunkScratch(n)
	}
	p.mu.Lock()
	if l := len(p.scratch); l > 0 {
		s := p.scratch[l-1]
		p.scratch = p.scratch[:l-1]
		p.mu.Unlock()
		return s
	}
	p.mu.Unlock()
	return newChunkScratch(p.n)
}

// releaseScratch returns scratch to the pool; the caller must already
// have restored the all-zero invariant. Unpooled scratch is dropped.
//
//hcpath:noalloc
func releaseScratch(p *Pool, s *chunkScratch) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.scratch = append(p.scratch, s)
	p.mu.Unlock()
}

// MultiSource runs hop-bounded BFSs from every source concurrently using
// 64-way bit parallelism. caps[i] is the depth bound for sources[i];
// len(caps) must equal len(sources). Results are positionally aligned
// with sources. Duplicate sources are allowed (each gets its own result).
func MultiSource(g *graph.Graph, sources []graph.VertexID, caps []uint8) []*DistMap {
	return MultiSourceIn(g, sources, caps, nil)
}

// MultiSourceIn is MultiSource drawing each result's storage from pool;
// the returned maps must be Released when no longer needed. A nil pool
// falls back to per-chunk flat allocations (never pooled, Release is a
// no-op).
func MultiSourceIn(g *graph.Graph, sources []graph.VertexID, caps []uint8, pool *Pool) []*DistMap {
	return MultiSourceOpts(g, sources, caps, pool, BuildOptions{})
}

// setupChunk claims the chunk's distance storage (pooled or one flat
// allocation) and returns the largest cap of the chunk.
func setupChunk(g *graph.Graph, sources []graph.VertexID, caps []uint8, out []*DistMap, pool *Pool) (maxCap uint8) {
	n := g.NumVertices()
	k := len(sources)
	if pool != nil {
		// Pooled arrays arrive clean, so no initialisation pass.
		dists, visited := pool.get(k)
		for i := 0; i < k; i++ {
			out[i] = &DistMap{Source: sources[i], Cap: caps[i], dist: dists[i], visited: visited[i], pool: pool}
		}
	} else {
		// One flat allocation for all k distance arrays of the chunk.
		flat := make([]uint8, k*n)
		for i := range flat {
			flat[i] = Unreachable
		}
		for i := 0; i < k; i++ {
			out[i] = &DistMap{
				Source: sources[i],
				Cap:    caps[i],
				dist:   flat[i*n : (i+1)*n],
			}
		}
	}
	for i := 0; i < k; i++ {
		if caps[i] > maxCap {
			maxCap = caps[i]
		}
	}
	return maxCap
}

// seedLevel runs level 0: each source visits itself. Identical sources
// share a vertex word, which is fine — their bits simply travel
// together. Returns the initial frontier vertex list (deduplicated via
// the frontier words themselves).
//
//hcpath:noalloc
func seedLevel(sources []graph.VertexID, out []*DistMap, seen, frontier []uint64, frontierVerts []graph.VertexID) []graph.VertexID {
	for i, s := range sources {
		bit := uint64(1) << uint(i)
		if frontier[s] == 0 {
			frontierVerts = append(frontierVerts, s)
		}
		seen[s] |= bit
		frontier[s] |= bit
		out[i].dist[s] = 0
		out[i].visited = append(out[i].visited, s)
	}
	return frontierVerts
}

// recordWord writes one next-frontier vertex into every slot whose bit
// is set: dist gets the level depth, the visited list grows by v.
//
//hcpath:noalloc
func recordWord(out []*DistMap, v graph.VertexID, word uint64, depth uint8) {
	for word != 0 {
		slot := bits.TrailingZeros64(word)
		word &= word - 1
		out[slot].dist[v] = depth
		out[slot].visited = append(out[slot].visited, v)
	}
}

// resetScratch sparsely restores the scratch's all-zero invariant:
// every word a chunk ever touched is indexed by some result's visited
// list (bits only ever enter frontier/next together with seen), so
// clearing at those indices — duplicates included — is exhaustive and
// costs O(Σ|Γ|) instead of an n-word memset.
//
//hcpath:noalloc
func resetScratch(out []*DistMap, seen, frontier, next []uint64) {
	for i := range out {
		for _, v := range out[i].visited {
			seen[v] = 0
			frontier[v] = 0
			next[v] = 0
		}
	}
}

// chunkRun advances up to 64 bounded BFSs simultaneously: the
// single-threaded push-only reference implementation the parallel
// direction-optimizing variant (chunkRunPar) is proven against.
func chunkRun(g *graph.Graph, sources []graph.VertexID, caps []uint8, out []*DistMap, pool *Pool) {
	k := len(sources)
	maxCap := setupChunk(g, sources, caps, out, pool)
	sc := acquireScratch(pool, g.NumVertices())
	seen, frontier, next := sc.seen, sc.frontier, sc.next
	frontierVerts := seedLevel(sources, out, seen, frontier, sc.frontierVerts[:0])
	nextVerts := sc.nextVerts[:0]

	// depth is an int so a 255-hop cap cannot wrap the level counter
	// (uint8 depth overflowed to 0 past level 255, mislabelling
	// distances on graphs of diameter > 255).
	for depth := 1; depth <= int(maxCap) && len(frontierVerts) > 0; depth++ {
		// Only sources whose cap allows another hop keep propagating.
		var active uint64
		for i := 0; i < k; i++ {
			if int(caps[i]) >= depth {
				active |= uint64(1) << uint(i)
			}
		}
		for _, v := range frontierVerts {
			fb := frontier[v] & active
			frontier[v] = 0
			if fb == 0 {
				continue
			}
			for _, w := range g.OutNeighbors(v) {
				fresh := fb &^ seen[w]
				if fresh == 0 {
					continue
				}
				if next[w] == 0 {
					nextVerts = append(nextVerts, w)
				}
				next[w] |= fresh
				seen[w] |= fresh
			}
		}
		for _, w := range nextVerts {
			recordWord(out, w, next[w], uint8(depth))
		}
		frontier, next = next, frontier
		frontierVerts = frontierVerts[:0]
		frontierVerts, nextVerts = nextVerts, frontierVerts
	}
	resetScratch(out, seen, frontier, next)
	sc.frontierVerts, sc.nextVerts = frontierVerts[:0], nextVerts[:0]
	releaseScratch(pool, sc)
	for i := range out {
		sortVerts(out[i].visited)
	}
}

// Single runs one hop-bounded BFS; it is MultiSource with a single
// source but avoids the chunk bookkeeping in tests and tools.
func Single(g *graph.Graph, source graph.VertexID, cap uint8) *DistMap {
	return MultiSource(g, []graph.VertexID{source}, []uint8{cap})[0]
}

// FullDistances computes exact unbounded shortest distances from source
// to every vertex with a plain queue BFS; unreachable entries are
// Unreachable. Used as a test oracle and by the KSP baselines. Distances
// beyond 254 saturate.
func FullDistances(g *graph.Graph, source graph.VertexID) []uint8 {
	n := g.NumVertices()
	dist := make([]uint8, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[source] = 0
	queue := []graph.VertexID{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dv := dist[v]
		nd := dv + 1
		if nd == Unreachable {
			nd = Unreachable - 1 // saturate
		}
		for _, w := range g.OutNeighbors(v) {
			if dist[w] == Unreachable {
				dist[w] = nd
				queue = append(queue, w)
			}
		}
	}
	return dist
}

func sortVerts(vs []graph.VertexID) {
	slices.Sort(vs)
}
