// Parallel, direction-optimizing multi-source BFS. Three forms of
// parallelism stack on the bit-parallel kernel of msbfs.go:
//
//   - within a level, the frontier is partitioned across Workers
//     goroutines that advance the shared next/seen words with
//     atomic-fetch-or (a CAS loop on each uint64, in the style of
//     Cluster-BFS's shared seed-set words), so one chunk's level scans
//     run on every core;
//   - each level chooses its direction Beamer-style: sparse frontiers
//     push along out-edges as usual, while a frontier whose out-degree
//     sum crosses a threshold switches to pull — scanning the
//     in-neighbours of not-yet-saturated vertices on the reverse graph,
//     which stops rescanning edges into vertices the search has already
//     absorbed (Ligra's direction-optimizing switch);
//   - independent 64-source chunks of large batches run concurrently,
//     drawing storage from the already-mutexed Pool.
//
// The next frontier is repacked into a flat vertex array with a
// parlay-style pack_index over a per-vertex mark bitmap: per-worker
// popcounts, a prefix sum, then disjoint writes — ascending vertex
// order, deterministic, no re-sort. Results are byte-identical to the
// sequential reference (chunkRun): the same distances, the same sorted
// visited sets.
package msbfs

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// BuildOptions tunes MultiSourceOpts beyond the sequential defaults.
type BuildOptions struct {
	// Workers is the build parallelism: zero or negative selects the
	// single-threaded push-only reference implementation, a positive
	// count runs the level loops on that many goroutines (and processes
	// independent 64-source chunks concurrently).
	Workers int
	// Reverse, when non-nil, must be the exact edge-reverse of the
	// searched graph (edge (u,v) present iff (v,u) is in Reverse); it
	// enables the pull direction for dense frontiers. A nil Reverse —
	// e.g. an overlay snapshot without a cheap reverse at hand — keeps
	// every level push-only, which is always correct. Ignored by the
	// sequential reference path.
	Reverse *graph.Graph
}

// pullDenom sets the direction switch: a level pulls when the
// frontier's out-degree sum (plus the frontier size) exceeds (m+n)/
// pullDenom, the Beamer/Ligra threshold shape with the usual
// denominator of 20.
const pullDenom = 20

// MultiSourceOpts is MultiSourceIn with explicit build options; zero
// options reproduce MultiSourceIn exactly.
func MultiSourceOpts(g *graph.Graph, sources []graph.VertexID, caps []uint8, pool *Pool, opt BuildOptions) []*DistMap {
	if len(sources) != len(caps) {
		panic("msbfs: len(sources) != len(caps)")
	}
	if pool != nil && pool.n != g.NumVertices() {
		panic("msbfs: pool sized for a different graph")
	}
	if opt.Reverse != nil && opt.Reverse.NumVertices() != g.NumVertices() {
		panic("msbfs: reverse graph sized for a different graph")
	}
	results := make([]*DistMap, len(sources))
	nchunks := (len(sources) + 63) / 64
	if opt.Workers <= 0 {
		for c := 0; c < nchunks; c++ {
			lo, hi := chunkBounds(c, len(sources))
			chunkRun(g, sources[lo:hi], caps[lo:hi], results[lo:hi], pool)
		}
		return results
	}
	if nchunks <= 1 {
		if nchunks == 1 {
			chunkRunPar(g, opt.Reverse, sources, caps, results, pool, opt.Workers)
		}
		return results
	}
	// Spread the worker budget over concurrent chunks: chunks are
	// independent (disjoint result slots, pool access is mutexed), so a
	// claim counter keeps every goroutine busy until the batch drains.
	across := min(nchunks, opt.Workers)
	within := max(1, opt.Workers/across)
	var claim atomic.Int64
	var wg sync.WaitGroup
	wg.Add(across)
	for w := 0; w < across; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(claim.Add(1)) - 1
				if c >= nchunks {
					return
				}
				lo, hi := chunkBounds(c, len(sources))
				chunkRunPar(g, opt.Reverse, sources[lo:hi], caps[lo:hi], results[lo:hi], pool, within)
			}
		}()
	}
	wg.Wait()
	return results
}

// chunkBounds returns the source range of chunk c.
//
//hcpath:noalloc
func chunkBounds(c, total int) (lo, hi int) {
	lo = c * 64
	hi = min(lo+64, total)
	return lo, hi
}

// chunkRunPar advances up to 64 bounded BFSs simultaneously on workers
// goroutines, switching each level between push and pull. rev may be
// nil (push-only). Results are byte-identical to chunkRun's.
func chunkRunPar(g, rev *graph.Graph, sources []graph.VertexID, caps []uint8, out []*DistMap, pool *Pool, workers int) {
	n := g.NumVertices()
	k := len(sources)
	maxCap := setupChunk(g, sources, caps, out, pool)
	sc := acquireScratch(pool, n)
	seen, frontier, next, marks := sc.seen, sc.frontier, sc.next, sc.marks
	frontierVerts := seedLevel(sources, out, seen, frontier, sc.frontierVerts[:0])
	nextVerts := sc.nextVerts
	numWords := len(marks)
	pullAt := (g.NumEdges() + n) / pullDenom
	// offsets[w]..offsets[w+1] is worker w's slice of the packed next
	// frontier; one allocation per chunk, reused every level.
	offsets := make([]int, workers+1)

	// depth is an int so a 255-hop cap cannot wrap the level counter
	// (see chunkRun).
	for depth := 1; depth <= int(maxCap) && len(frontierVerts) > 0; depth++ {
		var active uint64
		for i := 0; i < k; i++ {
			if int(caps[i]) >= depth {
				active |= uint64(1) << uint(i)
			}
		}
		if rev != nil && frontierCost(g, frontierVerts) > pullAt {
			// Pull: every worker owns a 64-aligned vertex range, so all
			// its writes (seen, next, marks) are unshared — no atomics.
			parallelFor(workers, func(w int) {
				loW, hiW := splitRange(numWords, workers, w)
				pullRange(rev, min(loW*64, n), min(hiW*64, n), seen, frontier, next, marks[loW:hiW], active)
			})
		} else {
			// Push: frontier words are read-only this level; seen, next
			// and marks advance by atomic fetch-or.
			parallelFor(workers, func(w int) {
				lo, hi := splitRange(len(frontierVerts), workers, w)
				pushRange(g, frontierVerts[lo:hi], seen, frontier, next, marks, active)
			})
		}

		// Repack the next frontier: per-worker popcounts over the mark
		// bitmap, a prefix sum, then disjoint ascending writes
		// (pack_index). fillMarks clears the marks as it drains them.
		parallelFor(workers, func(w int) {
			lo, hi := splitRange(numWords, workers, w)
			offsets[w+1] = countMarks(marks[lo:hi])
		})
		for w := 0; w < workers; w++ {
			offsets[w+1] += offsets[w]
		}
		nextVerts = nextVerts[:offsets[workers]]
		parallelFor(workers, func(w int) {
			lo, hi := splitRange(numWords, workers, w)
			fillMarks(marks[lo:hi], graph.VertexID(lo*64), nextVerts[offsets[w]:offsets[w+1]])
		})

		// Record distances and visited sets, striping the ≤64 result
		// slots across workers so every visited list has one writer.
		rw := min(workers, k)
		parallelFor(rw, func(w int) {
			recordSlots(out, nextVerts, next, uint8(depth), slotStripeMask(k, rw, w))
		})

		for _, v := range frontierVerts {
			frontier[v] = 0
		}
		frontier, next = next, frontier
		frontierVerts, nextVerts = nextVerts, frontierVerts[:0]
	}
	resetScratch(out, seen, frontier, next)
	sc.seen, sc.frontier, sc.next = seen, frontier, next
	sc.frontierVerts, sc.nextVerts = frontierVerts[:0], nextVerts[:0]
	releaseScratch(pool, sc)
	sw := min(workers, k)
	parallelFor(sw, func(w int) {
		for i := w; i < k; i += sw {
			sortVerts(out[i].visited)
		}
	})
}

// parallelFor runs fn(0..workers-1) concurrently and waits; one worker
// runs inline.
func parallelFor(workers int, fn func(worker int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	fn(0)
	wg.Wait()
}

// splitRange partitions [0, total) into workers near-equal contiguous
// ranges and returns worker w's.
//
//hcpath:noalloc
func splitRange(total, workers, w int) (lo, hi int) {
	lo = total * w / workers
	hi = total * (w + 1) / workers
	return lo, hi
}

// frontierCost estimates a push level's edge-scan cost: the frontier's
// out-degree sum plus its size (Ligra's |F| + outdeg(F)).
//
//hcpath:noalloc
func frontierCost(g *graph.Graph, frontierVerts []graph.VertexID) int {
	cost := len(frontierVerts)
	for _, v := range frontierVerts {
		cost += g.OutDegree(v)
	}
	return cost
}

// fetchOr atomically ors word into *addr and returns the previous
// value: a CAS loop that exits without a write when every bit is
// already present, keeping contended words read-mostly.
//
//hcpath:noalloc
func fetchOr(addr *uint64, word uint64) uint64 {
	for {
		old := atomic.LoadUint64(addr)
		if old&word == word {
			return old
		}
		if atomic.CompareAndSwapUint64(addr, old, old|word) {
			return old
		}
	}
}

// pushRange advances one worker's share of the frontier along
// out-edges. frontier is read-only during the level; seen/next/marks
// words are shared with sibling workers and advance by fetch-or. The
// worker whose fetch-or first populates next[w] marks w for the repack,
// so each next-frontier vertex is marked exactly once.
//
//hcpath:noalloc
func pushRange(g *graph.Graph, verts []graph.VertexID, seen, frontier, next, marks []uint64, active uint64) {
	for _, v := range verts {
		fb := frontier[v] & active
		if fb == 0 {
			continue
		}
		for _, w := range g.OutNeighbors(v) {
			fresh := fb &^ atomic.LoadUint64(&seen[w])
			if fresh == 0 {
				continue
			}
			fresh &^= fetchOr(&seen[w], fresh)
			if fresh == 0 {
				continue
			}
			if fetchOr(&next[w], fresh) == 0 {
				fetchOr(&marks[w>>6], uint64(1)<<(w&63))
			}
		}
	}
}

// pullRange advances vertices [lo, hi) by scanning their in-neighbours
// (rev's out-edges) and gathering frontier bits until the wanted set
// saturates. lo is 64-aligned, so every word this worker touches —
// seen, next, and the mark words — has exactly one writer and no
// atomics are needed; frontier is read-only.
//
//hcpath:noalloc
func pullRange(rev *graph.Graph, lo, hi int, seen, frontier, next, marks []uint64, active uint64) {
	for v := lo; v < hi; v++ {
		want := active &^ seen[v]
		if want == 0 {
			continue
		}
		var gather uint64
		for _, u := range rev.OutNeighbors(graph.VertexID(v)) {
			gather |= frontier[u]
			if gather&want == want {
				break
			}
		}
		fresh := gather & want
		if fresh == 0 {
			continue
		}
		seen[v] |= fresh
		next[v] = fresh
		marks[(v-lo)>>6] |= uint64(1) << (uint(v) & 63)
	}
}

// countMarks popcounts a mark-word range.
//
//hcpath:noalloc
func countMarks(marks []uint64) int {
	total := 0
	for _, word := range marks {
		total += bits.OnesCount64(word)
	}
	return total
}

// fillMarks drains a mark-word range into out — ascending vertex ids,
// exactly len(out) of them — and clears the words behind itself.
//
//hcpath:noalloc
func fillMarks(marks []uint64, base graph.VertexID, out []graph.VertexID) {
	at := 0
	for wi, word := range marks {
		if word == 0 {
			continue
		}
		marks[wi] = 0
		wordBase := base + graph.VertexID(wi)*64
		for word != 0 {
			out[at] = wordBase + graph.VertexID(bits.TrailingZeros64(word))
			word &= word - 1
			at++
		}
	}
}

// recordSlots records the level's next frontier into the result slots
// selected by slotMask: each slot's dist entries and visited list are
// written by exactly one worker, in ascending vertex order.
//
//hcpath:noalloc
func recordSlots(out []*DistMap, verts []graph.VertexID, next []uint64, depth uint8, slotMask uint64) {
	for _, v := range verts {
		word := next[v] & slotMask
		for word != 0 {
			slot := bits.TrailingZeros64(word)
			word &= word - 1
			out[slot].dist[v] = depth
			out[slot].visited = append(out[slot].visited, v)
		}
	}
}

// slotStripeMask selects the result slots worker w owns: bits w, w+rw,
// w+2rw, … below k.
//
//hcpath:noalloc
func slotStripeMask(k, rw, w int) uint64 {
	var mask uint64
	for i := w; i < k; i += rw {
		mask |= uint64(1) << uint(i)
	}
	return mask
}
