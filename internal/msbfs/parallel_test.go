package msbfs

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/store"
	"repro/internal/testgraphs"
)

// requireEqualMaps asserts two positionally aligned result sets are
// byte-identical: same source/cap, same sorted visited sets, same
// distances at every vertex of the graph.
func requireEqualMaps(t *testing.T, n int, got, want []*DistMap) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("result count %d, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Source != w.Source || g.Cap != w.Cap {
			t.Fatalf("result %d misaligned: (%d,%d) want (%d,%d)", i, g.Source, g.Cap, w.Source, w.Cap)
		}
		if g.NumVisited() != w.NumVisited() {
			t.Fatalf("result %d (src=%d cap=%d): |Γ|=%d want %d", i, w.Source, w.Cap, g.NumVisited(), w.NumVisited())
		}
		for j, v := range w.Visited() {
			if g.Visited()[j] != v {
				t.Fatalf("result %d: visited[%d]=%d want %d", i, j, g.Visited()[j], v)
			}
		}
		for v := 0; v < n; v++ {
			if g.Dist(graph.VertexID(v)) != w.Dist(graph.VertexID(v)) {
				t.Fatalf("result %d vertex %d: dist %d want %d", i, v, g.Dist(graph.VertexID(v)), w.Dist(graph.VertexID(v)))
			}
		}
	}
}

// randomSources draws nSrc sources with caps spanning the tricky
// boundary values: 0 (source only), 255 (the Unreachable sentinel cap),
// and small mid-range caps.
func randomSources(rng *rand.Rand, n, nSrc int) ([]graph.VertexID, []uint8) {
	sources := make([]graph.VertexID, nSrc)
	caps := make([]uint8, nSrc)
	for i := range sources {
		sources[i] = graph.VertexID(rng.Intn(n))
		switch rng.Intn(6) {
		case 0:
			caps[i] = 0
		case 1:
			caps[i] = 255
		default:
			caps[i] = uint8(rng.Intn(7))
		}
	}
	return sources, caps
}

// TestParallelMatchesSequential is the differential oracle of the
// parallel direction-optimizing engine: over a corpus of graph shapes,
// random sources (duplicates included) and boundary caps, every
// combination of worker count, pull availability, and pooling must
// reproduce the sequential reference byte for byte.
func TestParallelMatchesSequential(t *testing.T) {
	corpus := map[string]*graph.Graph{
		"paper":     testgraphs.Paper(),
		"diamond":   testgraphs.Diamond(),
		"cycle":     testgraphs.Cycle(40),
		"line":      testgraphs.Line(50),
		"dag":       testgraphs.CompleteDAG(12),
		"powerlaw":  graph.GenPowerLaw(400, 3, 5),
		"erdos":     graph.GenErdosRenyi(300, 2000, 4),
		"community": graph.GenCommunityPowerLaw(800, 40, 4, 0.9, 7),
	}
	rng := rand.New(rand.NewSource(42))
	for name, g := range corpus {
		t.Run(name, func(t *testing.T) {
			n := g.NumVertices()
			rev := g.Reverse()
			// 130 sources spans three chunks (concurrent on Workers>1).
			sources, caps := randomSources(rng, n, 130)
			want := MultiSource(g, sources, caps)
			for _, workers := range []int{1, 2, 3, 8} {
				for _, r := range []*graph.Graph{nil, rev} {
					got := MultiSourceOpts(g, sources, caps, nil, BuildOptions{Workers: workers, Reverse: r})
					requireEqualMaps(t, n, got, want)

					pool := NewPool(n)
					for round := 0; round < 2; round++ {
						pooled := MultiSourceOpts(g, sources, caps, pool, BuildOptions{Workers: workers, Reverse: r})
						requireEqualMaps(t, n, pooled, want)
						for _, dm := range pooled {
							dm.Release()
						}
					}
				}
			}
		})
	}
}

// TestParallelOverlaySnapshots runs the parallel engine on live overlay
// snapshots from the versioned store — the graphs the index layer
// actually builds against after updates — using the snapshot's own
// symmetric reverse for pull, against the sequential reference.
func TestParallelOverlaySnapshots(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := graph.GenErdosRenyi(200, 1200, 3)
	st := store.New(base, store.Options{CompactAfter: -1}) // keep the overlay live
	var adds, dels []graph.Edge
	for i := 0; i < 300; i++ {
		adds = append(adds, graph.Edge{Src: graph.VertexID(rng.Intn(220)), Dst: graph.VertexID(rng.Intn(220))})
	}
	for i := 0; i < 50; i++ {
		dels = append(dels, graph.Edge{Src: graph.VertexID(rng.Intn(200)), Dst: graph.VertexID(rng.Intn(200))})
	}
	snap, err := st.ApplyUpdates(adds, dels)
	if err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}
	g, rev := snap.Graph(), snap.Reverse()
	if !g.IsOverlay() {
		t.Fatal("expected a live overlay snapshot")
	}
	n := g.NumVertices()
	sources, caps := randomSources(rng, n, 100)
	want := MultiSource(g, sources, caps)
	for _, workers := range []int{1, 4} {
		for _, r := range []*graph.Graph{nil, rev} {
			got := MultiSourceOpts(g, sources, caps, nil, BuildOptions{Workers: workers, Reverse: r})
			requireEqualMaps(t, n, got, want)
		}
	}
}

// TestParallelPullFires pins the direction switch itself: on a dense
// graph with large caps the Beamer threshold must select pull for the
// dense middle levels, and the results must still match the reference.
// The frontierCost probe asserts the heuristic actually crosses the
// threshold, so the pull path cannot silently rot into dead code.
func TestParallelPullFires(t *testing.T) {
	g := graph.GenErdosRenyi(500, 25000, 9) // avg out-degree 50
	rev := g.Reverse()
	n := g.NumVertices()
	sources := []graph.VertexID{0, 7, 123, 456}
	caps := []uint8{4, 4, 4, 4}

	// After one hop a 50-degree frontier covers ~10% of the graph;
	// its out-degree sum (~2500+) dwarfs (m+n)/20 = 1275.
	level1 := Single(g, 0, 1)
	if cost := frontierCost(g, level1.Visited()); cost <= (g.NumEdges()+n)/pullDenom {
		t.Fatalf("bench graph too sparse for the pull threshold: cost %d ≤ %d", cost, (g.NumEdges()+n)/pullDenom)
	}

	want := MultiSource(g, sources, caps)
	for _, workers := range []int{1, 4} {
		got := MultiSourceOpts(g, sources, caps, nil, BuildOptions{Workers: workers, Reverse: rev})
		requireEqualMaps(t, n, got, want)
	}
}

// TestParallelConcurrentChunksSharedPool drives several MultiSourceOpts
// runs through one pool from concurrent goroutines — the service's
// shape, where in-flight batches share the cache's per-|V| pool — and
// checks every run against the reference. Run under -race this is the
// chunk-concurrency safety proof.
func TestParallelConcurrentChunksSharedPool(t *testing.T) {
	g := graph.GenPowerLaw(600, 4, 11)
	rev := g.Reverse()
	n := g.NumVertices()
	pool := NewPool(n)
	rng := rand.New(rand.NewSource(23))

	type run struct {
		sources []graph.VertexID
		caps    []uint8
		want    []*DistMap
	}
	runs := make([]run, 4)
	for i := range runs {
		s, c := randomSources(rng, n, 200) // 4 chunks each
		runs[i] = run{s, c, MultiSource(g, s, c)}
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(runs))
	for _, r := range runs {
		wg.Add(1)
		go func(r run) {
			defer wg.Done()
			got := MultiSourceOpts(g, r.sources, r.caps, pool, BuildOptions{Workers: 4, Reverse: rev})
			for i := range got {
				if got[i].NumVisited() != r.want[i].NumVisited() {
					errs <- errMismatch
					return
				}
				for j, v := range r.want[i].Visited() {
					if got[i].Visited()[j] != v || got[i].Dist(v) != r.want[i].Dist(v) {
						errs <- errMismatch
						return
					}
				}
			}
			for _, dm := range got {
				dm.Release()
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestScratchPoolReuse: repeated builds through one pool must stop
// allocating chunk scratch after the first round — the free list and
// the sparse reset keep arrays clean and recycled.
func TestScratchPoolReuse(t *testing.T) {
	g := graph.GenRandom(300, 4, 11)
	pool := NewPool(g.NumVertices())
	sources, caps := randomSources(rand.New(rand.NewSource(5)), g.NumVertices(), 64)
	for round := 0; round < 4; round++ {
		for _, dm := range MultiSourceOpts(g, sources, caps, pool, BuildOptions{Workers: 2, Reverse: g.Reverse()}) {
			dm.Release()
		}
	}
	pool.mu.Lock()
	free := len(pool.scratch)
	pool.mu.Unlock()
	if free != 1 {
		t.Fatalf("pool holds %d free scratch sets after sequentially repeated single-chunk builds, want 1", free)
	}
	// The free scratch must be clean: a fresh pooled run equals the
	// reference (would corrupt distances if any word survived nonzero).
	got := MultiSourceOpts(g, sources, caps, pool, BuildOptions{Workers: 2})
	requireEqualMaps(t, g.NumVertices(), got, MultiSource(g, sources, caps))
}

var errMismatch = errForm("parallel result diverged from sequential reference")

type errForm string

func (e errForm) Error() string { return string(e) }
