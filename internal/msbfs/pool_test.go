package msbfs

import (
	"sync"
	"testing"

	"repro/internal/graph"
)

// TestPooledMatchesUnpooled: pooled MS-BFS must be byte-identical to the
// flat-allocation path, including after storage has cycled through the
// pool (the sparse reset must restore the all-Unreachable invariant).
func TestPooledMatchesUnpooled(t *testing.T) {
	g := graph.GenRandom(300, 4, 11)
	pool := NewPool(g.NumVertices())
	sources := []graph.VertexID{0, 5, 7, 7, 120, 299}
	caps := []uint8{3, 4, 2, 5, 3, 4}
	for round := 0; round < 3; round++ {
		want := MultiSource(g, sources, caps)
		got := MultiSourceIn(g, sources, caps, pool)
		for i := range want {
			if want[i].NumVisited() != got[i].NumVisited() {
				t.Fatalf("round %d source %d: |Γ| %d vs %d", round, i, got[i].NumVisited(), want[i].NumVisited())
			}
			for _, v := range want[i].Visited() {
				if want[i].Dist(v) != got[i].Dist(v) {
					t.Fatalf("round %d source %d vertex %d: dist %d vs %d",
						round, i, v, got[i].Dist(v), want[i].Dist(v))
				}
			}
		}
		for _, dm := range got {
			dm.Release()
		}
	}
	// Six sources per round, three rounds: the free-list must have
	// capped allocations at the high-water mark of one round.
	if a := pool.Allocs(); a != int64(len(sources)) {
		t.Errorf("pool allocated %d arrays, want %d (reuse across rounds)", a, len(sources))
	}
}

// TestViewThresholds: a view at a narrower cap must behave exactly like
// a fresh BFS bounded at that cap.
func TestViewThresholds(t *testing.T) {
	g := graph.GenGrid(8, 8)
	wide := Single(g, 0, 6)
	for _, cap := range []uint8{0, 1, 3, 6, 7} {
		view := wide.View(cap)
		fresh := Single(g, 0, min(cap, 6))
		if cap >= 6 && view != wide {
			t.Errorf("cap %d: expected the identical map back", cap)
		}
		if view.Cap > cap {
			t.Errorf("cap %d: view.Cap = %d", cap, view.Cap)
		}
		if view.NumVisited() != fresh.NumVisited() {
			t.Fatalf("cap %d: |Γ| %d, want %d", cap, view.NumVisited(), fresh.NumVisited())
		}
		for v := graph.VertexID(0); int(v) < g.NumVertices(); v++ {
			if view.Dist(v) != fresh.Dist(v) {
				t.Errorf("cap %d vertex %d: dist %d, want %d", cap, v, view.Dist(v), fresh.Dist(v))
			}
			if view.Contains(v) != fresh.Contains(v) {
				t.Errorf("cap %d vertex %d: contains %v, want %v", cap, v, view.Contains(v), fresh.Contains(v))
			}
		}
	}
}

// TestReleaseIdempotentAndViewNoop: releasing twice and releasing views
// must be harmless (views alias pooled storage they do not own).
func TestReleaseIdempotentAndViewNoop(t *testing.T) {
	g := graph.GenGrid(4, 4)
	pool := NewPool(g.NumVertices())
	dm := MultiSourceIn(g, []graph.VertexID{0}, []uint8{4}, pool)[0]
	view := dm.View(2)
	view.Release() // no-op: must not poison the parent's storage
	if dm.Dist(1) != 1 {
		t.Fatal("parent map corrupted by view release")
	}
	dm.Release()
	dm.Release() // idempotent
	if a := pool.Allocs(); a != 1 {
		t.Fatalf("allocs = %d", a)
	}
	// The recycled array must come back clean.
	dm2 := MultiSourceIn(g, []graph.VertexID{15}, []uint8{1}, pool)[0]
	fresh := Single(g, 15, 1)
	if dm2.NumVisited() != fresh.NumVisited() {
		t.Fatalf("recycled array dirty: |Γ| = %d, want %d", dm2.NumVisited(), fresh.NumVisited())
	}
}

// TestPoolConcurrent exercises acquire/release from many goroutines
// under -race.
func TestPoolConcurrent(t *testing.T) {
	g := graph.GenRandom(200, 3, 5)
	pool := NewPool(g.NumVertices())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				src := graph.VertexID((w*31 + i*7) % 200)
				dm := MultiSourceIn(g, []graph.VertexID{src}, []uint8{3}, pool)[0]
				if dm.Dist(src) != 0 {
					t.Errorf("self distance %d", dm.Dist(src))
				}
				dm.Release()
			}
		}(w)
	}
	wg.Wait()
}

// TestContainsAtMaxCap: with Cap = 255 == Unreachable, the threshold
// compare alone would admit unvisited vertices; Contains must still
// exclude them (regression for the thresholded-view refactor).
func TestContainsAtMaxCap(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}}) // vertex 2 isolated
	dm := Single(g, 0, 255)
	if !dm.Contains(1) {
		t.Error("reachable vertex excluded")
	}
	if dm.Contains(2) {
		t.Error("unreachable vertex admitted at Cap=255")
	}
	if dm.Dist(2) != Unreachable {
		t.Errorf("Dist(2) = %d", dm.Dist(2))
	}
	if dm.NumVisited() != 2 {
		t.Errorf("|Γ| = %d, want 2", dm.NumVisited())
	}
}
