package msbfs

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// FuzzMultiSource differentially checks the chunked engines against
// repeated Single runs: for a fuzzed graph, source multiset, cap mix,
// worker count, and pull availability, MultiSourceOpts must agree with
// one independent BFS per source on every visited set and distance.
// Single itself goes through the sequential one-chunk path, so this
// pins chunk packing, the parallel level loop, and the direction
// switch against the simplest possible oracle composition.
func FuzzMultiSource(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(0), false)
	f.Add(int64(2), uint8(130), uint8(3), true)
	f.Add(int64(3), uint8(70), uint8(8), true)
	f.Add(int64(99), uint8(255), uint8(2), false)
	f.Fuzz(func(t *testing.T, seed int64, nSrcRaw, workersRaw uint8, usePull bool) {
		const n = 60
		g := graph.GenRandom(n, 3, seed)
		rng := rand.New(rand.NewSource(seed + 1))
		nSrc := int(nSrcRaw)%140 + 1 // up to three chunks
		workers := int(workersRaw) % 9
		sources := make([]graph.VertexID, nSrc)
		caps := make([]uint8, nSrc)
		for i := range sources {
			sources[i] = graph.VertexID(rng.Intn(n))
			switch rng.Intn(5) {
			case 0:
				caps[i] = 0
			case 1:
				caps[i] = 255
			default:
				caps[i] = uint8(rng.Intn(6))
			}
		}
		var rev *graph.Graph
		if usePull {
			rev = g.Reverse()
		}
		got := MultiSourceOpts(g, sources, caps, nil, BuildOptions{Workers: workers, Reverse: rev})
		for i := range sources {
			want := Single(g, sources[i], caps[i])
			if got[i].Source != sources[i] || got[i].Cap != caps[i] {
				t.Fatalf("result %d misaligned", i)
			}
			if got[i].NumVisited() != want.NumVisited() {
				t.Fatalf("source %d (v=%d cap=%d): |Γ|=%d want %d",
					i, sources[i], caps[i], got[i].NumVisited(), want.NumVisited())
			}
			for j, v := range want.Visited() {
				if got[i].Visited()[j] != v {
					t.Fatalf("source %d: visited[%d]=%d want %d", i, j, got[i].Visited()[j], v)
				}
				if got[i].Dist(v) != want.Dist(v) {
					t.Fatalf("source %d vertex %d: dist %d want %d", i, v, got[i].Dist(v), want.Dist(v))
				}
			}
		}
	})
}
