package ksp

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/query"
	"repro/internal/testgraphs"
)

func run(t *testing.T, name string, g, gr *graph.Graph, q query.Query) [][]graph.VertexID {
	t.Helper()
	var out [][]graph.VertexID
	collect := func(p []graph.VertexID) {
		cp := make([]graph.VertexID, len(p))
		copy(cp, p)
		out = append(out, cp)
	}
	var ok bool
	switch name {
	case "DkSP":
		ok = DkSP(g, q, nil, collect)
	case "OnePass":
		ok = OnePass(g, gr, q, nil, collect)
	default:
		t.Fatalf("unknown baseline %s", name)
	}
	if !ok {
		t.Fatalf("%s exceeded an unlimited budget", name)
	}
	return out
}

func setOf(paths [][]graph.VertexID) []string {
	keys := make([]string, len(paths))
	for i, p := range paths {
		keys[i] = fmt.Sprint(p)
	}
	sort.Strings(keys)
	return keys
}

// TestBaselinesMatchBruteForce: both adapted KSP algorithms enumerate
// exactly the HC-s-t path set on the paper graph and random graphs.
func TestBaselinesMatchBruteForce(t *testing.T) {
	type tc struct {
		g *graph.Graph
		q query.Query
	}
	cases := []tc{
		{testgraphs.Paper(), query.Query{S: 0, T: 11, K: 5}},
		{testgraphs.Paper(), query.Query{S: 4, T: 14, K: 4}},
		{testgraphs.Paper(), query.Query{S: 2, T: 13, K: 5}},
		{testgraphs.Diamond(), query.Query{S: 0, T: 3, K: 3}},
		{testgraphs.CompleteDAG(7), query.Query{S: 0, T: 6, K: 4}},
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		g := graph.GenRandom(8+rng.Intn(18), 2.0+rng.Float64()*1.5, int64(trial))
		s := graph.VertexID(rng.Intn(g.NumVertices()))
		tt := graph.VertexID(rng.Intn(g.NumVertices()))
		if s == tt {
			continue
		}
		cases = append(cases, tc{g, query.Query{S: s, T: tt, K: uint8(1 + rng.Intn(5))}})
	}
	for i, c := range cases {
		gr := c.g.Reverse()
		var want [][]graph.VertexID
		oracle.Enumerate(c.g, c.q, func(p []graph.VertexID) {
			cp := make([]graph.VertexID, len(p))
			copy(cp, p)
			want = append(want, cp)
		})
		wantSet := setOf(want)
		for _, name := range []string{"DkSP", "OnePass"} {
			got := setOf(run(t, name, c.g, gr, c.q))
			if len(got) != len(wantSet) {
				t.Errorf("case %d %s %v: %d paths, want %d", i, name, c.q, len(got), len(wantSet))
				continue
			}
			for j := range wantSet {
				if got[j] != wantSet[j] {
					t.Errorf("case %d %s: path %d = %s, want %s", i, name, j, got[j], wantSet[j])
					break
				}
			}
		}
	}
}

// TestLengthOrder: both baselines emit paths in non-decreasing hop order
// (the KSP contract the adaptation preserves).
func TestLengthOrder(t *testing.T) {
	g := testgraphs.Paper()
	gr := g.Reverse()
	q := query.Query{S: 0, T: 11, K: 6}
	for _, name := range []string{"DkSP", "OnePass"} {
		paths := run(t, name, g, gr, q)
		for i := 1; i < len(paths); i++ {
			if len(paths[i]) < len(paths[i-1]) {
				t.Errorf("%s: path %d shorter than its predecessor", name, i)
			}
		}
	}
}

// TestUnreachable: no output, clean return.
func TestUnreachable(t *testing.T) {
	g := testgraphs.Line(4)
	gr := g.Reverse()
	q := query.Query{S: 3, T: 0, K: 5}
	for _, name := range []string{"DkSP", "OnePass"} {
		if got := run(t, name, g, gr, q); len(got) != 0 {
			t.Errorf("%s: unreachable query returned %d paths", name, len(got))
		}
	}
}

// TestHopCutoff: paths longer than k are excluded even when shorter ones
// exist to seed the deviation process.
func TestHopCutoff(t *testing.T) {
	// Diamond: 0→3 direct (1 hop) plus two 2-hop paths.
	g := testgraphs.Diamond()
	gr := g.Reverse()
	for _, name := range []string{"DkSP", "OnePass"} {
		if got := run(t, name, g, gr, query.Query{S: 0, T: 3, K: 1}); len(got) != 1 {
			t.Errorf("%s: k=1 returned %d paths, want 1", name, len(got))
		}
		if got := run(t, name, g, gr, query.Query{S: 0, T: 3, K: 2}); len(got) != 3 {
			t.Errorf("%s: k=2 returned %d paths, want 3", name, len(got))
		}
	}
}

// TestBudgetExhaustion: a tiny budget cuts the run short and reports it.
func TestBudgetExhaustion(t *testing.T) {
	g := testgraphs.CompleteDAG(10)
	gr := g.Reverse()
	q := query.Query{S: 0, T: 9, K: 8}
	b := &Budget{MaxExpansions: 5}
	if OnePass(g, gr, q, b, func([]graph.VertexID) {}) {
		t.Error("OnePass completed under a 5-expansion budget")
	}
	if !b.Exceeded() {
		t.Error("budget not marked exceeded")
	}
	b2 := &Budget{MaxExpansions: 5}
	if DkSP(g, q, b2, func([]graph.VertexID) {}) {
		t.Error("DkSP completed under a 5-expansion budget")
	}
}

// TestNilBudgetUnlimited: a nil budget never trips.
func TestNilBudgetUnlimited(t *testing.T) {
	var b *Budget
	if !b.spend(1 << 40) {
		t.Error("nil budget must be unlimited")
	}
	if b.Exceeded() {
		t.Error("nil budget cannot be exceeded")
	}
}

// TestSortPaths orders by hops then lexicographically.
func TestSortPaths(t *testing.T) {
	paths := [][]graph.VertexID{{0, 2, 3}, {0, 1}, {0, 1, 3}}
	SortPaths(paths)
	if fmt.Sprint(paths) != "[[0 1] [0 1 3] [0 2 3]]" {
		t.Errorf("SortPaths = %v", paths)
	}
}
