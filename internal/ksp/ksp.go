// Package ksp implements the two k-shortest-path baselines the paper
// compares against in Exp-6, adapted to HC-s-t path enumeration exactly
// as §V prescribes: "we adapt them to the problem of HC-s-t path
// enumeration by ignoring their similarity constraint and keeping
// generating the path results until reaching the hop constraint".
//
// DkSP (Luo et al., VLDB'22) is a diversified top-k route planner; with
// the similarity constraint dropped its engine is a Yen-style deviation
// enumeration: paths are produced in non-decreasing length order by
// spurring off previously found paths, each spur solved with a masked
// BFS. OnePass (Chondrogiannis et al., VLDBJ'20) expands labels (partial
// paths) in a single best-first pass. Neither uses the hop-aware index
// pruning of PathEnum — the gap the experiment demonstrates.
package ksp

import (
	"container/heap"
	"sort"

	"repro/internal/graph"
	"repro/internal/msbfs"
	"repro/internal/query"
)

// Budget bounds the work of a baseline run so that experiments on
// adversarial inputs terminate; Exceeded reports whether the run was cut
// short (counted as OT in the harness).
type Budget struct {
	// MaxExpansions caps label expansions / spur BFS vertex visits.
	// Zero means unlimited.
	MaxExpansions int64
	used          int64
}

// spend consumes n units and reports whether the budget still holds.
func (b *Budget) spend(n int64) bool {
	if b == nil || b.MaxExpansions <= 0 {
		return true
	}
	b.used += n
	return b.used <= b.MaxExpansions
}

// Exceeded reports whether the run hit its cap.
func (b *Budget) Exceeded() bool {
	return b != nil && b.MaxExpansions > 0 && b.used > b.MaxExpansions
}

// ---------------------------------------------------------------------
// OnePass
// ---------------------------------------------------------------------

// label is a partial path in OnePass's priority queue.
type label struct {
	path []graph.VertexID
}

// labelQueue orders labels by length (hops), then lexicographically for
// determinism.
type labelQueue []*label

func (q labelQueue) Len() int { return len(q) }
func (q labelQueue) Less(i, j int) bool {
	if len(q[i].path) != len(q[j].path) {
		return len(q[i].path) < len(q[j].path)
	}
	a, b := q[i].path, q[j].path
	for x := range a {
		if a[x] != b[x] {
			return a[x] < b[x]
		}
	}
	return false
}
func (q labelQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *labelQueue) Push(x interface{}) { *q = append(*q, x.(*label)) }
func (q *labelQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return x
}

// OnePass enumerates every HC-s-t path of q in non-decreasing hop order
// by best-first label expansion. Labels whose endpoint cannot reach t at
// all are dropped (OnePass's reachability pruning), but no hop-aware
// index pruning is applied — dead branches are only discovered when the
// remaining budget runs out, which is what makes the baseline slow.
// It returns false if the budget was exhausted before completion.
func OnePass(g, gr *graph.Graph, q query.Query, budget *Budget, emit func(path []graph.VertexID)) bool {
	return OnePassControlled(g, gr, q, budget, nil, emit)
}

// OnePassControlled is OnePass under a query.Control: the expansion
// loops poll for cancellation every step via ctrl.Poll (returning
// false, like a blown budget) and emissions are charged against q.ID's
// limit — since labels pop in (hops, lexicographic) order, a limit of
// n yields exactly the n canonically first paths, after which the run
// ends as complete. A nil ctrl reproduces OnePass exactly.
func OnePassControlled(g, gr *graph.Graph, q query.Query, budget *Budget, ctrl *query.Control, emit func(path []graph.VertexID)) bool {
	distToT := msbfs.FullDistances(gr, q.T)
	if distToT[q.S] == msbfs.Unreachable {
		ctrl.MarkComplete(q.ID)
		return true
	}
	pq := labelQueue{{path: []graph.VertexID{q.S}}}
	heap.Init(&pq)
	steps, stopped := 0, false
	for pq.Len() > 0 {
		if stopped || ctrl.Cancelled() {
			return false
		}
		if ctrl.HitLimit(q.ID) {
			break
		}
		if !budget.spend(1) {
			return false
		}
		l := heap.Pop(&pq).(*label)
		v := l.path[len(l.path)-1]
		if v == q.T {
			if ctrl.Allow(q.ID) {
				emit(l.path)
			}
			continue // simple paths cannot extend beyond t and return
		}
		if uint8(len(l.path)-1) >= q.K {
			continue
		}
		for _, w := range g.OutNeighbors(v) {
			if ctrl.Poll(&steps, &stopped) {
				return false
			}
			if distToT[w] == msbfs.Unreachable {
				continue
			}
			if containsVertex(l.path, w) {
				continue
			}
			np := make([]graph.VertexID, len(l.path)+1)
			copy(np, l.path)
			np[len(l.path)] = w
			heap.Push(&pq, &label{path: np})
		}
	}
	ctrl.MarkComplete(q.ID)
	return true
}

// ---------------------------------------------------------------------
// DkSP (Yen-style deviation enumeration)
// ---------------------------------------------------------------------

// candidate is a complete s-t path awaiting output, keyed by its length
// and the spur position it deviated at.
type candidate struct {
	path []graph.VertexID
}

type candQueue []*candidate

func (q candQueue) Len() int { return len(q) }
func (q candQueue) Less(i, j int) bool {
	if len(q[i].path) != len(q[j].path) {
		return len(q[i].path) < len(q[j].path)
	}
	a, b := q[i].path, q[j].path
	for x := range a {
		if a[x] != b[x] {
			return a[x] < b[x]
		}
	}
	return false
}
func (q candQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *candQueue) Push(x interface{}) { *q = append(*q, x.(*candidate)) }
func (q *candQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return x
}

// DkSP enumerates every HC-s-t path of q in non-decreasing hop order
// with Yen's deviation scheme: the shortest path is found by BFS, and
// each output path spawns candidates by re-solving a masked shortest
// path from every spur vertex with the shared prefix's edges and
// vertices removed. Generation stops once the next shortest candidate
// exceeds the hop constraint. It returns false if the budget ran out.
func DkSP(g *graph.Graph, q query.Query, budget *Budget, emit func(path []graph.VertexID)) bool {
	return DkSPControlled(g, q, budget, nil, emit)
}

// DkSPControlled is DkSP under a query.Control: the spur BFSes poll
// for cancellation every expansion step via ctrl.Poll (returning
// false, like a blown budget) and each accepted path is charged
// against q.ID's limit — outputs arrive in (hops, lexicographic)
// order, so a limit of n yields exactly the n canonically first paths
// and skips all further spur searches. A nil ctrl reproduces DkSP
// exactly.
func DkSPControlled(g *graph.Graph, q query.Query, budget *Budget, ctrl *query.Control, emit func(path []graph.VertexID)) bool {
	steps, stopped := 0, false
	first := maskedShortestPath(g, q.S, q.T, nil, nil, budget, ctrl, &steps, &stopped)
	if stopped {
		return false
	}
	if budget.Exceeded() {
		return false
	}
	if first == nil || uint8(len(first)-1) > q.K {
		ctrl.MarkComplete(q.ID)
		return true
	}
	var outputs [][]graph.VertexID
	cands := candQueue{{path: first}}
	heap.Init(&cands)
	seen := map[string]bool{pathString(first): true}

	for cands.Len() > 0 {
		if ctrl.Cancelled() {
			return false
		}
		p := heap.Pop(&cands).(*candidate).path
		if uint8(len(p)-1) > q.K {
			break // candidates only get longer
		}
		if !ctrl.Allow(q.ID) {
			break // limit reached: drop this and all longer candidates
		}
		emit(p)
		outputs = append(outputs, p)

		// Spur: deviate from every prefix position of the accepted path.
		for i := 0; i < len(p)-1; i++ {
			if ctrl.Cancelled() {
				return false
			}
			rootPrefix := p[:i+1]
			spur := p[i]
			// Edges leaving the spur that any previous output with the
			// same root prefix already used are banned.
			bannedEdges := make(map[graph.VertexID]bool)
			for _, out := range outputs {
				if len(out) > i+1 && samePrefix(out, rootPrefix) {
					bannedEdges[out[i+1]] = true
				}
			}
			// Root-prefix vertices (except the spur) are banned to keep
			// the result simple.
			bannedVerts := make(map[graph.VertexID]bool, i)
			for _, v := range rootPrefix[:i] {
				bannedVerts[v] = true
			}
			tail := maskedShortestPath(g, spur, q.T, bannedVerts, bannedEdges, budget, ctrl, &steps, &stopped)
			if stopped {
				return false
			}
			if budget.Exceeded() {
				return false
			}
			if tail == nil {
				continue
			}
			total := make([]graph.VertexID, 0, i+len(tail))
			total = append(total, rootPrefix[:i]...)
			total = append(total, tail...)
			if uint8(len(total)-1) > q.K {
				continue
			}
			key := pathString(total)
			if !seen[key] {
				seen[key] = true
				heap.Push(&cands, &candidate{path: total})
			}
		}
	}
	ctrl.MarkComplete(q.ID)
	return true
}

// maskedShortestPath runs a BFS from s to t on g with banned vertices
// and, for edges leaving s only, banned first-hop targets (Yen's spur
// constraint). It returns the vertex sequence or nil — nil also on
// cancellation, which the caller detects via *stopped. steps/stopped
// are the caller's Poll pair, shared across the run's many BFSes so
// the PollInterval cadence spans them.
func maskedShortestPath(g *graph.Graph, s, t graph.VertexID, bannedVerts map[graph.VertexID]bool, bannedFirstHop map[graph.VertexID]bool, budget *Budget, ctrl *query.Control, steps *int, stopped *bool) []graph.VertexID {
	if s == t {
		return []graph.VertexID{s}
	}
	parent := map[graph.VertexID]graph.VertexID{s: s}
	queue := []graph.VertexID{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if !budget.spend(1) {
			return nil
		}
		for _, w := range g.OutNeighbors(v) {
			if ctrl.Poll(steps, stopped) {
				return nil
			}
			if v == s && bannedFirstHop[w] {
				continue
			}
			if bannedVerts[w] {
				continue
			}
			if _, visited := parent[w]; visited {
				continue
			}
			parent[w] = v
			if w == t {
				return reconstruct(parent, s, t)
			}
			queue = append(queue, w)
		}
	}
	return nil
}

func reconstruct(parent map[graph.VertexID]graph.VertexID, s, t graph.VertexID) []graph.VertexID {
	var rev []graph.VertexID
	for v := t; ; v = parent[v] {
		rev = append(rev, v)
		if v == s {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

func samePrefix(p, prefix []graph.VertexID) bool {
	for i, v := range prefix {
		if p[i] != v {
			return false
		}
	}
	return true
}

func containsVertex(p []graph.VertexID, v graph.VertexID) bool {
	for _, u := range p {
		if u == v {
			return true
		}
	}
	return false
}

func pathString(p []graph.VertexID) string {
	// Fixed-width byte packing: cheap, collision-free map key.
	b := make([]byte, 0, len(p)*4)
	for _, v := range p {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// SortPaths orders paths by (hops, lexicographic), the output order both
// baselines promise; exposed for tests comparing against oracles.
func SortPaths(paths [][]graph.VertexID) {
	sort.Slice(paths, func(i, j int) bool {
		if len(paths[i]) != len(paths[j]) {
			return len(paths[i]) < len(paths[j])
		}
		a, b := paths[i], paths[j]
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})
}
