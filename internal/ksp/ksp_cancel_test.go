package ksp

import (
	"context"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/testgraphs"
)

// cancelledControl builds a Control whose context is already cancelled,
// so the run must stop at its first poll.
func cancelledControl(n int) *query.Control {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return query.NewControl(ctx, time.Time{}, 0, n)
}

// TestDkSPCancelledPreemptsBFS: cancellation must interrupt the spur
// BFS itself, not just the deviation loop around it. On a long chain
// with an unreachable target the whole run is one BFS; before the BFS
// polled the Control, a pre-cancelled run would scan the entire chain,
// find nothing, and return true — claiming a deliberate, complete
// enumeration for a run that was cancelled before it started.
func TestDkSPCancelledPreemptsBFS(t *testing.T) {
	const n = 4096 // >> query.PollInterval expansion steps
	b := graph.NewBuilder(n)
	for i := 1; i < n-1; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID(i+1))
	}
	g := b.Build() // vertex 0 has no in-edges: unreachable from 1
	q := query.Query{ID: 0, S: 1, T: 0, K: 8}

	ctrl := cancelledControl(1)
	if ok := DkSPControlled(g, q, nil, ctrl, func([]graph.VertexID) {}); ok {
		t.Fatal("DkSPControlled reported a complete run under a cancelled Control")
	}
	if ctrl.QueryErr(q.ID) == nil {
		t.Fatal("cancelled query reports no error")
	}

	// The same run uncancelled is a genuine (empty) completion.
	if ok := DkSPControlled(g, q, nil, nil, func(p []graph.VertexID) {
		t.Fatalf("unexpected path %v", p)
	}); !ok {
		t.Fatal("uncontrolled run failed")
	}
}

// TestOnePassCancelMidRun: cancelling from the emit callback stops the
// label expansion promptly — the run returns false and emits only a
// bounded handful of further paths, instead of enumerating the
// exponential remainder.
func TestOnePassCancelMidRun(t *testing.T) {
	g := testgraphs.CompleteDAG(12) // thousands of HC-s-t paths
	gr := g.Reverse()
	q := query.Query{ID: 0, S: 0, T: 11, K: 10}

	ctx, cancel := context.WithCancel(context.Background())
	ctrl := query.NewControl(ctx, time.Time{}, 0, 1)
	emitted := 0
	ok := OnePassControlled(g, gr, q, nil, ctrl, func([]graph.VertexID) {
		emitted++
		cancel()
	})
	if ok {
		t.Fatal("OnePassControlled reported a complete run after cancellation")
	}
	// One emission triggers the cancel; the latched Poll answer must end
	// the run within a poll interval's worth of expansions, each of which
	// emits at most one path.
	if emitted > query.PollInterval {
		t.Fatalf("emitted %d paths after cancellation; want <= %d", emitted, query.PollInterval)
	}
}
