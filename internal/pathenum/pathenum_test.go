package pathenum

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/msbfs"
	"repro/internal/oracle"
	"repro/internal/pathjoin"
	"repro/internal/query"
	"repro/internal/testgraphs"
)

func sorted(paths []string) []string { sort.Strings(paths); return paths }

// posMod is a non-negative modulo for quick-generated (possibly
// negative) seeds.
func posMod(x, m int) int { return ((x % m) + m) % m }

func enumStrings(g, gr *graph.Graph, q query.Query, opts Options) []string {
	var out []string
	EnumerateStandalone(g, gr, q, opts, func(p []graph.VertexID) {
		out = append(out, fmt.Sprint(p))
	})
	return sorted(out)
}

func bruteStrings(g *graph.Graph, q query.Query) []string {
	var out []string
	oracle.Enumerate(g, q, func(p []graph.VertexID) {
		out = append(out, fmt.Sprint(p))
	})
	return sorted(out)
}

func TestPaperGroundTruth(t *testing.T) {
	g := testgraphs.Paper()
	gr := g.Reverse()
	wantCounts := map[int]int{0: 3, 1: 3, 2: 1, 3: 2, 4: 2}
	for i, spec := range testgraphs.PaperQueries() {
		q := query.Query{ID: i, S: spec[0], T: spec[1], K: uint8(spec[2])}
		got := enumStrings(g, gr, q, Options{})
		if len(got) != wantCounts[i] {
			t.Errorf("%s: %d paths, want %d: %v", q, len(got), wantCounts[i], got)
		}
		if brute := bruteStrings(g, q); fmt.Sprint(got) != fmt.Sprint(brute) {
			t.Errorf("%s: PathEnum %v != BruteForce %v", q, got, brute)
		}
	}
}

func TestPaperQ0ExactPaths(t *testing.T) {
	g := testgraphs.Paper()
	gr := g.Reverse()
	q := query.Query{ID: 0, S: 0, T: 11, K: 5}
	got := enumStrings(g, gr, q, Options{})
	want := sorted([]string{
		fmt.Sprint([]graph.VertexID{0, 1, 7, 10, 12, 11}),
		fmt.Sprint([]graph.VertexID{0, 4, 9, 3, 6, 11}),
		fmt.Sprint([]graph.VertexID{0, 4, 9, 15, 6, 11}),
	})
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("q0: got %v want %v", got, want)
	}
}

func TestOptimizedMatchesPlain(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.GenRandom(30, 3.5, seed)
		gr := g.Reverse()
		for trial := 0; trial < 5; trial++ {
			s := graph.VertexID(posMod(int(seed)+trial*3, 30))
			tt := graph.VertexID(posMod(int(seed)*5+trial*11+1, 30))
			if s == tt {
				continue
			}
			k := uint8(trial%6 + 1)
			q := query.Query{S: s, T: tt, K: k}
			plain := enumStrings(g, gr, q, Options{})
			opt := enumStrings(g, gr, q, Options{Optimized: true})
			if fmt.Sprint(plain) != fmt.Sprint(opt) {
				t.Logf("seed=%d q=%v\nplain %v\nopt   %v", seed, q, plain, opt)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAgainstBruteForceRandom(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.GenRandom(24, 3, seed)
		gr := g.Reverse()
		for trial := 0; trial < 4; trial++ {
			s := graph.VertexID(posMod(int(seed)*7+trial, 24))
			tt := graph.VertexID(posMod(int(seed)+trial*5+2, 24))
			if s == tt {
				continue
			}
			k := uint8(trial%7 + 1)
			q := query.Query{S: s, T: tt, K: k}
			if fmt.Sprint(enumStrings(g, gr, q, Options{})) != fmt.Sprint(bruteStrings(g, q)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHopConstraintRespected(t *testing.T) {
	g := testgraphs.Paper()
	gr := g.Reverse()
	for k := uint8(1); k <= 7; k++ {
		q := query.Query{S: 0, T: 11, K: k}
		EnumerateStandalone(g, gr, q, Options{}, func(p []graph.VertexID) {
			if uint8(len(p)-1) > k {
				t.Fatalf("k=%d: path %v exceeds hop constraint", k, p)
			}
			if p[0] != 0 || p[len(p)-1] != 11 {
				t.Fatalf("path %v has wrong endpoints", p)
			}
		})
	}
}

func TestKOne(t *testing.T) {
	g := testgraphs.Diamond()
	gr := g.Reverse()
	// direct edge 0→3 is the only 1-hop path
	got := enumStrings(g, gr, query.Query{S: 0, T: 3, K: 1}, Options{})
	if len(got) != 1 {
		t.Fatalf("k=1: got %v", got)
	}
	// k=2 adds the two 2-hop paths
	got = enumStrings(g, gr, query.Query{S: 0, T: 3, K: 2}, Options{})
	if len(got) != 3 {
		t.Fatalf("k=2: got %v", got)
	}
}

func TestUnreachableTarget(t *testing.T) {
	g := testgraphs.Line(5)
	gr := g.Reverse()
	// 4 cannot reach 0 (edges point forward only)
	got := enumStrings(g, gr, query.Query{S: 4, T: 0, K: 7}, Options{})
	if len(got) != 0 {
		t.Fatalf("got %v for unreachable target", got)
	}
	// 0 reaches 4 in exactly 4 hops; k=3 is too tight
	if got := enumStrings(g, gr, query.Query{S: 0, T: 4, K: 3}, Options{}); len(got) != 0 {
		t.Fatalf("k too small still produced %v", got)
	}
	if got := enumStrings(g, gr, query.Query{S: 0, T: 4, K: 4}, Options{}); len(got) != 1 {
		t.Fatalf("exact-k path missing: %v", got)
	}
}

func TestCycleGraph(t *testing.T) {
	g := testgraphs.Cycle(6)
	gr := g.Reverse()
	// only one simple path 0→3 (through 1,2), length 3
	got := enumStrings(g, gr, query.Query{S: 0, T: 3, K: 6}, Options{})
	if len(got) != 1 {
		t.Fatalf("cycle: got %v", got)
	}
}

func TestEnumerateWithSharedIndex(t *testing.T) {
	// Enumerate (non-standalone) must work with caps larger than k, as
	// the batch index may have been built for a bigger query.
	g := testgraphs.Paper()
	gr := g.Reverse()
	q := query.Query{S: 4, T: 14, K: 4}
	fwd := msbfs.Single(g, q.S, 7)
	bwd := msbfs.Single(gr, q.T, 7)
	var n int
	Enumerate(g, gr, q, fwd, bwd, Options{}, func(p []graph.VertexID) { n++ })
	if n != 2 {
		t.Fatalf("q3 with oversized index: %d paths, want 2", n)
	}
}

// collectResults materialises a query's full results into a store.
func collectResults(g, gr *graph.Graph, q query.Query) *pathjoin.Store {
	s := pathjoin.NewStore(8, 64)
	EnumerateStandalone(g, gr, q, Options{}, func(p []graph.VertexID) { s.Add(p) })
	return s
}

func TestMaterializedScan(t *testing.T) {
	g := testgraphs.Paper()
	gr := g.Reverse()
	q := query.Query{S: 0, T: 11, K: 5}
	store := collectResults(g, gr, q)
	if got := Materialized(store); got != 3 {
		t.Fatalf("Materialized = %d, want 3", got)
	}
}

func TestEmittedSliceReused(t *testing.T) {
	// The emit contract says the slice is reused; verify results stay
	// correct when the caller copies, and that our own internals do not
	// depend on callers keeping the slice intact.
	g := testgraphs.Paper()
	gr := g.Reverse()
	q := query.Query{S: 0, T: 11, K: 5}
	var stash [][]graph.VertexID
	EnumerateStandalone(g, gr, q, Options{}, func(p []graph.VertexID) {
		cp := make([]graph.VertexID, len(p))
		copy(cp, p)
		stash = append(stash, cp)
		for i := range p {
			p[i] = 999 // scribble; engine must not care
		}
	})
	if len(stash) != 3 {
		t.Fatalf("got %d paths", len(stash))
	}
	for _, p := range stash {
		if p[0] != 0 || p[len(p)-1] != 11 {
			t.Fatalf("stashed path corrupted: %v", p)
		}
	}
}
